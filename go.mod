module hvac

go 1.22
