// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§IV). Each BenchmarkFigN/BenchmarkTableN runs the
// corresponding experiment from internal/experiments in scaled mode and
// reports headline numbers as custom metrics; EXPERIMENTS.md records the
// paper-vs-measured comparison. Run with:
//
//	go test -bench=. -benchmem
//
// Use cmd/hvacbench -full for paper-scale node counts and epochs.
package hvac_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hvac"
	"hvac/internal/experiments"
	"hvac/internal/metrics"
)

const benchSeed = 42

func runExperiment(b *testing.B, id string) []*metrics.Table {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*metrics.Table
	for i := 0; i < b.N; i++ {
		tables = exp.Run(experiments.Options{Seed: benchSeed})
	}
	if testing.Verbose() {
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	return tables
}

// BenchmarkTable1NodeSpec regenerates Table I.
func BenchmarkTable1NodeSpec(b *testing.B) {
	tables := runExperiment(b, "tab1")
	if len(tables) != 1 {
		b.Fatal("missing table")
	}
}

// BenchmarkFig3MDTestSmallFiles regenerates the 32 KB MDTest scan: GPFS
// metadata-bound, XFS-on-NVMe scaling linearly.
func BenchmarkFig3MDTestSmallFiles(b *testing.B) {
	runExperiment(b, "fig3")
}

// BenchmarkFig4MDTestLargeFiles regenerates the 8 MB MDTest scan: the
// bottleneck shifts to aggregate bandwidth.
func BenchmarkFig4MDTestLargeFiles(b *testing.B) {
	runExperiment(b, "fig4")
}

// BenchmarkFig8TrainingScaling regenerates the four training-time-vs-nodes
// panels (GPFS vs HVAC 1x1/2x1/4x1 vs XFS-on-NVMe).
func BenchmarkFig8TrainingScaling(b *testing.B) {
	tables := runExperiment(b, "fig8")
	if len(tables) != 4 {
		b.Fatalf("expected 4 panels, got %d", len(tables))
	}
}

// BenchmarkFig9Overheads regenerates the normalised gain/overhead figures
// (shares the memoised Fig. 8 sweep within a process).
func BenchmarkFig9Overheads(b *testing.B) {
	runExperiment(b, "fig9")
}

// BenchmarkFig10EpochScaling regenerates the epoch sweep at 512 nodes.
func BenchmarkFig10EpochScaling(b *testing.B) {
	runExperiment(b, "fig10")
}

// BenchmarkFig11PerEpoch regenerates the first/random/average epoch
// analysis [BS=4, Eps=10, 512 nodes].
func BenchmarkFig11PerEpoch(b *testing.B) {
	runExperiment(b, "fig11")
}

// BenchmarkFig12BatchSize regenerates the batch-size sweep.
func BenchmarkFig12BatchSize(b *testing.B) {
	runExperiment(b, "fig12")
}

// BenchmarkFig13CacheLocality regenerates the forced local/remote cache
// split study on HVAC(1x1).
func BenchmarkFig13CacheLocality(b *testing.B) {
	runExperiment(b, "fig13")
}

// BenchmarkFig14Accuracy regenerates the accuracy-equivalence study.
func BenchmarkFig14Accuracy(b *testing.B) {
	runExperiment(b, "fig14")
}

// BenchmarkFig15LoadDistribution regenerates the per-server file
// distribution study.
func BenchmarkFig15LoadDistribution(b *testing.B) {
	runExperiment(b, "fig15")
}

// BenchmarkAggregateBandwidth checks the §II-C bandwidth headline.
func BenchmarkAggregateBandwidth(b *testing.B) {
	runExperiment(b, "bandwidth")
}

// BenchmarkAblationPlacement compares placement policies.
func BenchmarkAblationPlacement(b *testing.B) {
	runExperiment(b, "ablation-placement")
}

// BenchmarkAblationEviction compares eviction policies under pressure.
func BenchmarkAblationEviction(b *testing.B) {
	runExperiment(b, "ablation-eviction")
}

// BenchmarkAblationInstances sweeps HVAC server instances per node.
func BenchmarkAblationInstances(b *testing.B) {
	runExperiment(b, "ablation-instances")
}

// BenchmarkAblationReplication exercises replication failover.
func BenchmarkAblationReplication(b *testing.B) {
	runExperiment(b, "ablation-replication")
}

// BenchmarkAblationPrefetch compares cold vs pre-populated caches.
func BenchmarkAblationPrefetch(b *testing.B) {
	runExperiment(b, "ablation-prefetch")
}

// BenchmarkAblationSegments compares file- vs segment-level caching under
// skewed file sizes.
func BenchmarkAblationSegments(b *testing.B) {
	runExperiment(b, "ablation-segments")
}

// BenchmarkRelatedWorkBaselines compares HVAC with the LPCC- and
// BeeOND-style systems of §II-D.
func BenchmarkRelatedWorkBaselines(b *testing.B) {
	runExperiment(b, "baselines")
}

// BenchmarkRealModeReadThroughput measures the real client/server path on
// loopback TCP: warm reads of 64 KB files through a live HVAC server.
func BenchmarkRealModeReadThroughput(b *testing.B) {
	work := b.TempDir()
	pfsDir := filepath.Join(work, "pfs")
	os.MkdirAll(pfsDir, 0o755)
	const files = 64
	paths := make([]string, files)
	content := make([]byte, 64<<10)
	for i := range paths {
		paths[i] = filepath.Join(pfsDir, fmt.Sprintf("f%03d.bin", i))
		if err := os.WriteFile(paths[i], content, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := hvac.StartServer(hvac.ServerConfig{
		ListenAddr: "127.0.0.1:0", PFSDir: pfsDir,
		CacheDir: filepath.Join(work, "cache"),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli, err := hvac.NewClient(hvac.ClientConfig{
		Servers: []string{srv.Addr()}, DatasetDir: pfsDir,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	for _, p := range paths { // warm the cache
		if _, err := cli.ReadAll(p); err != nil {
			b.Fatal(err)
		}
	}
	srv.WaitIdle()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.ReadAll(paths[i%files]); err != nil {
			b.Fatal(err)
		}
	}
}
