// Command hvacc is the real-mode HVAC client CLI: it reads dataset files
// through a running hvacd deployment the way a training job's loader
// would, and reports throughput and client-side counters. It doubles as
// the quickest way to eyeball the effect of the client tunables — the
// per-server connection pool size and the sequential-read pipeline.
//
// Usage:
//
//	hvacc -servers host1:7070,host2:7070 -dataset /gpfs/dataset read /gpfs/dataset/*.rec
//	hvacc -servers host1:7070 -dataset /gpfs/dataset -epochs 3 -workers 8 read /gpfs/dataset/*.rec
//	hvacc -servers host1:7070 -dataset /gpfs/dataset -batch-size 256 batch /gpfs/dataset/*.rec
//	hvacc -servers host1:7070 -dataset /gpfs/dataset cat /gpfs/dataset/f0001.rec > local.rec
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hvac"
)

func usage() {
	fmt.Fprintln(os.Stderr, `hvacc: commands
  read <path>...   read every file through HVAC and report throughput
  batch <path>...  read the files in scatter-gather batches (one RPC per server per batch)
  cat <path>       stream one file to stdout (sequential reads, exercises readahead)`)
	flag.PrintDefaults()
}

func main() {
	var (
		servers   = flag.String("servers", "", "comma-separated hvacd addresses (required)")
		dataset   = flag.String("dataset", "", "dataset dir whose reads are redirected (required)")
		poolSize  = flag.Int("pool-size", 0, "idle TCP connections kept per server link; size to the loader worker count (0 = transport default, negative = no pooling)")
		readahead = flag.Int("readahead", 0, "sequential-read pipeline depth for cat (0 = default on, negative = off)")
		segSize   = flag.Int64("segment-size", 0, "segment size in bytes for segment-level caching; must match the servers (0 = whole-file)")
		replicas  = flag.Int("replicas", 1, "replica homes per file; >1 arms live failover across the replica ladder (must match the servers' -replicas)")
		hedge     = flag.Duration("hedge-after", 0, "fire the same read at the next replica when the current one has not answered within this duration (0 = off; needs -replicas > 1)")
		epochs    = flag.Int("epochs", 1, "number of passes over the file list (epoch 2+ should run at cache speed)")
		workers   = flag.Int("workers", 4, "concurrent reader goroutines for read")
		batchSize = flag.Int("batch-size", 256, "files per scatter-gather batch for batch")
		callTO    = flag.Duration("call-timeout", 5*time.Second, "per-RPC deadline (0 = transport default, negative = disabled)")
		retries   = flag.Int("retries", 0, "per-RPC attempt budget, first try included (0 = transport default)")
		planHzn   = flag.Int("plan-horizon", 0, "clairvoyant planning for read: shuffle each epoch with an access oracle, install the per-server plan, keep this many entries prefetched ahead of the read frontier (0 = off)")
		planSeed  = flag.Uint64("plan-seed", 0, "seed for the epoch access oracle used by -plan-horizon")
	)
	flag.Usage = usage
	flag.Parse()
	if *servers == "" || *dataset == "" || flag.NArg() < 2 {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	paths := flag.Args()[1:]

	cli, err := hvac.NewClient(hvac.ClientConfig{
		Servers:       strings.Split(*servers, ","),
		DatasetDir:    *dataset,
		SegmentSize:   *segSize,
		Replicas:      *replicas,
		HedgeAfter:    *hedge,
		CallTimeout:   *callTO,
		RetryAttempts: *retries,
		PoolSize:      *poolSize,
		Readahead:     *readahead,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvacc: %v\n", err)
		os.Exit(1)
	}
	defer cli.Close()

	switch cmd {
	case "read":
		var bytes, fails atomic.Int64
		start := time.Now()
		for e := 0; e < *epochs; e++ {
			epochStart := time.Now()
			order := paths
			if *planHzn > 0 {
				// Clairvoyant epoch: shuffle deterministically, tell every
				// server what it will serve and in what order, then read in
				// exactly that order so the plan pump stays ahead of us.
				oracle := hvac.NewAccessOracle(*planSeed, e, len(paths))
				order = hvac.PlanOrder(oracle, func(i int) string { return paths[i] })
				if n, err := cli.InstallPlan(int64(e), order, *planHzn); err != nil {
					fmt.Fprintf(os.Stderr, "hvacc: plan epoch %d: %d entries installed, %v\n", e, n, err)
				}
			}
			var wg sync.WaitGroup
			next := make(chan string)
			for w := 0; w < *workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for p := range next {
						data, err := cli.ReadAll(p)
						if err != nil {
							fmt.Fprintf(os.Stderr, "hvacc: read %s: %v\n", p, err)
							fails.Add(1)
							continue
						}
						bytes.Add(int64(len(data)))
					}
				}()
			}
			for _, p := range order {
				next <- p
			}
			close(next)
			wg.Wait()
			fmt.Printf("epoch %d: %d files in %v\n", e+1, len(paths), time.Since(epochStart).Round(time.Millisecond))
		}
		elapsed := time.Since(start)
		mb := float64(bytes.Load()) / (1 << 20)
		fmt.Printf("total: %.1f MiB in %v (%.1f MiB/s)\n", mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
		printStats(cli)
		if fails.Load() > 0 {
			os.Exit(1)
		}

	case "batch":
		if *batchSize <= 0 {
			fmt.Fprintln(os.Stderr, "hvacc: -batch-size must be positive")
			os.Exit(2)
		}
		var bytes int64
		fails := 0
		start := time.Now()
		for e := 0; e < *epochs; e++ {
			epochStart := time.Now()
			for off := 0; off < len(paths); off += *batchSize {
				end := off + *batchSize
				if end > len(paths) {
					end = len(paths)
				}
				chunk := paths[off:end]
				out, err := cli.ReadBatch(chunk)
				if err != nil {
					fmt.Fprintf(os.Stderr, "hvacc: batch [%d:%d]: %v\n", off, end, err)
					fails++
					continue
				}
				for _, data := range out {
					bytes += int64(len(data))
				}
			}
			fmt.Printf("epoch %d: %d files in %v\n", e+1, len(paths), time.Since(epochStart).Round(time.Millisecond))
		}
		elapsed := time.Since(start)
		mb := float64(bytes) / (1 << 20)
		fmt.Printf("total: %.1f MiB in %v (%.1f MiB/s)\n", mb, elapsed.Round(time.Millisecond), mb/elapsed.Seconds())
		printStats(cli)
		if fails > 0 {
			os.Exit(1)
		}

	case "cat":
		if len(paths) != 1 {
			usage()
			os.Exit(2)
		}
		f, err := cli.Open(paths[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvacc: %v\n", err)
			os.Exit(1)
		}
		_, err = io.Copy(os.Stdout, f)
		cerr := f.Close()
		if err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvacc: %v\n", err)
			os.Exit(1)
		}
		printStats(cli)

	default:
		fmt.Fprintf(os.Stderr, "hvacc: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}

func printStats(cli *hvac.Client) {
	st := cli.Stats()
	fmt.Fprintf(os.Stderr,
		"client: redirected=%d passthrough=%d fallbacks=%d degrades=%d failovers=%d hedges=%d hedge-wins=%d retries=%d readaheads=%d readahead-hits=%d batch=%d batch-fallbacks=%d bytes=%d\n",
		st.Redirected, st.Passthrough, st.Fallbacks, st.Degrades, st.Failovers, st.Hedges, st.HedgeWins, st.Retries, st.Readaheads, st.ReadaheadHits, st.BatchReads, st.BatchFallbacks, st.BytesRead)
}
