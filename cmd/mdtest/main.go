// Command mdtest runs the MDTest-style <open-read-close> benchmark of
// §II-C against the simulated Summit substrate, comparing GPFS,
// XFS-on-NVMe and HVAC.
//
// Usage:
//
//	mdtest -nodes 512 -procs 6 -ops 64 -size 32768 -fs gpfs
//	mdtest -nodes 512 -procs 6 -ops 64 -size 8388608 -fs xfs
//	mdtest -nodes 512 -procs 6 -ops 64 -size 32768 -fs hvac -instances 2
package main

import (
	"flag"
	"fmt"
	"os"

	"hvac/internal/mdtest"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/vfs"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 16, "compute nodes")
		procs     = flag.Int("procs", 6, "processes per node")
		ops       = flag.Int("ops", 64, "transactions per process")
		size      = flag.Int64("size", 32<<10, "file size in bytes (paper: 32768 and 8388608)")
		files     = flag.Int("files", 0, "file population (default 12 per node, min 256)")
		fsKind    = flag.String("fs", "gpfs", "file system under test: gpfs|xfs|hvac")
		instances = flag.Int("instances", 1, "HVAC server instances per node (with -fs hvac)")
		seed      = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	cfg := mdtest.Config{
		Nodes:        *nodes,
		ProcsPerNode: *procs,
		OpsPerProc:   *ops,
		Files:        *files,
		FileSize:     *size,
		Seed:         *seed,
	}
	if cfg.Files == 0 {
		cfg.Files = *nodes * 12
		if cfg.Files < 256 {
			cfg.Files = 256
		}
	}

	eng := sim.NewEngine()
	cluster := summit.NewCluster(eng, cfg.Nodes, cfg.Namespace())
	cluster.RegisterJob(cfg.Nodes * cfg.ProcsPerNode)

	var fsFor func(node, proc int) vfs.FS
	switch *fsKind {
	case "gpfs":
		fsFor = cluster.GPFSFS()
	case "xfs":
		fsFor = cluster.XFSFS()
	case "hvac":
		job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: *instances, EvictionSeed: *seed})
		fsFor = job.FS()
	default:
		fmt.Fprintf(os.Stderr, "mdtest: unknown -fs %q\n", *fsKind)
		os.Exit(2)
	}

	res, err := mdtest.Run(eng, cfg, fsFor)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mdtest: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("fs=%-5s nodes=%d procs/node=%d ops/proc=%d size=%dB files=%d\n",
		*fsKind, cfg.Nodes, cfg.ProcsPerNode, cfg.OpsPerProc, cfg.FileSize, cfg.Files)
	fmt.Printf("transactions/s: %.0f\n", res.TPS)
	fmt.Printf("aggregate bandwidth: %.2f GB/s\n", res.AggregateBandwidth/1e9)
	fmt.Printf("elapsed (virtual): %v   ops=%d errors=%d\n", res.Elapsed, res.Ops, res.Errors)
}
