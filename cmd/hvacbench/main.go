// Command hvacbench regenerates the paper's tables and figures on the
// simulated Summit substrate.
//
// Usage:
//
//	hvacbench -list
//	hvacbench -experiment fig8
//	hvacbench -experiment all -full
//
// The default (scaled) mode completes in minutes; -full uses paper-scale
// node counts and epochs. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"hvac/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		expID = flag.String("experiment", "all", "experiment id (see -list) or 'all'")
		full  = flag.Bool("full", false, "paper-scale node counts and epochs (slow)")
		seed  = flag.Uint64("seed", 42, "experiment seed; equal seeds replay exactly")
		quiet = flag.Bool("quiet", false, "suppress per-configuration progress lines")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %s\n", e.ID, e.Title)
		}
		return
	}

	opt := experiments.Options{Full: *full, Seed: *seed}
	if !*quiet {
		opt.Progress = os.Stderr
	}

	var selected []experiments.Experiment
	if *expID == "all" {
		selected = experiments.All()
	} else {
		e, ok := experiments.ByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "hvacbench: unknown experiment %q (use -list)\n", *expID)
			os.Exit(2)
		}
		selected = []experiments.Experiment{e}
	}

	for _, e := range selected {
		start := time.Now()
		fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
		for _, t := range e.Run(opt) {
			fmt.Println(t.String())
		}
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
