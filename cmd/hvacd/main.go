// Command hvacd runs a real-mode HVAC server daemon: it caches files from
// a PFS-visible dataset directory onto fast node-local storage and serves
// them to HVAC clients over TCP (the paper's per-node server process,
// normally spawned by the job script's alloc_flags "hvac").
//
// Usage:
//
//	hvacd -listen :7070 -pfs /gpfs/dataset -cache /nvme/hvac \
//	      -capacity 1600000000000 -movers 1 -evict random
//
// Run i copies per node (distinct ports and cache dirs) for the paper's
// HVAC(i×1) deployments, or a single daemon with -movers i.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"hvac"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7070", "TCP listen address")
		pfsDir   = flag.String("pfs", "", "dataset directory on the shared PFS (required)")
		cacheDir = flag.String("cache", "", "node-local cache directory (required)")
		capacity = flag.Int64("capacity", 1600e9, "cache capacity in bytes (default: Summit's 1.6 TB NVMe)")
		movers   = flag.Int("movers", 0, "data-mover workers (0 = default pool, currently 4)")
		demandQ  = flag.Int("demand-queue", 0, "demand fetch queue depth; full queue degrades the request to read-through (0 = default)")
		prefQ    = flag.Int("prefetch-queue", 0, "prefetch hint queue depth; full queue drops hints (0 = default)")
		evict    = flag.String("evict", "random", "eviction policy: random|lru|fifo|clock|clairvoyant")
		planHzn  = flag.Int("plan-horizon", 0, "plan entries the clairvoyant pump keeps prefetched ahead of the read frontier once a client installs a plan (0 = default)")
		peers    = flag.String("peers", "", "comma-separated addresses of every server in the job (self included, same order everywhere); enables replica warming")
		self     = flag.Int("self", 0, "this server's index in -peers")
		replicas = flag.Int("replicas", 1, "replica homes per file; demand fills warm the other homes when -peers is set (must match the clients' -replicas)")
		seed     = flag.Uint64("seed", 0, "seed for random eviction")
		stats    = flag.Duration("stats", 0, "print stats every interval (0 = off)")
		writeTO  = flag.Duration("write-timeout", 0, "per-response write deadline so dead clients cannot pin connections (0 = transport default, negative = disabled)")
		zeroCopy = flag.Bool("zero-copy", runtime.GOOS == "linux", "serve warm cache reads with sendfile from the cache fd (Linux); off (or unsupported) falls back to pooled userspace copies")
	)
	flag.Parse()
	if *pfsDir == "" || *cacheDir == "" {
		fmt.Fprintln(os.Stderr, "hvacd: -pfs and -cache are required")
		flag.Usage()
		os.Exit(2)
	}

	var policy hvac.EvictionPolicy
	switch *evict {
	case "random":
		policy = hvac.RandomEviction(*seed)
	case "lru":
		policy = hvac.LRUEviction()
	case "fifo":
		policy = hvac.FIFOEviction()
	case "clock":
		policy = hvac.ClockEviction()
	case "clairvoyant":
		policy = hvac.ClairvoyantEviction()
	default:
		fmt.Fprintf(os.Stderr, "hvacd: unknown eviction policy %q\n", *evict)
		os.Exit(2)
	}

	srv, err := hvac.StartServer(hvac.ServerConfig{
		ListenAddr:    *listen,
		PFSDir:        *pfsDir,
		CacheDir:      *cacheDir,
		CacheCapacity: *capacity,
		Policy:        policy,
		Movers:        *movers,
		PlanHorizon:   *planHzn,
		DemandQueue:   *demandQ,
		PrefetchQueue: *prefQ,
		WriteTimeout:  *writeTO,
		ZeroCopy:      *zeroCopy,
		Replicas:      *replicas,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hvacd: %v\n", err)
		os.Exit(1)
	}
	if *peers != "" {
		set := strings.Split(*peers, ",")
		if *self < 0 || *self >= len(set) {
			fmt.Fprintf(os.Stderr, "hvacd: -self %d outside -peers (%d entries)\n", *self, len(set))
			srv.Close()
			os.Exit(2)
		}
		srv.SetPeers(set, *self)
		fmt.Printf("hvacd: replica warming across %d peers (self=%d, replicas=%d)\n", len(set), *self, *replicas)
	}
	moverDesc := fmt.Sprintf("%d", *movers)
	if *movers <= 0 {
		moverDesc = "default"
	}
	fmt.Printf("hvacd: serving %s on %s (cache %s, %s movers, %s eviction)\n",
		*pfsDir, srv.Addr(), *cacheDir, moverDesc, *evict)

	stop := make(chan struct{})
	if *stats > 0 {
		go func() {
			t := time.NewTicker(*stats)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					st := srv.Stats()
					fmt.Printf("hvacd: opens=%d hits=%d readthrough=%d misses=%d batch=%d served=%dB fetched=%dB evictions=%d cached=%d files/%dB queue=%d prefetch-drops=%d demand-rejects=%d replica-warms=%d plan=%d/%d@%d zerocopy=%d/%d (%dB, %d fallbacks)\n",
						st.Opens, st.Hits, st.ReadThroughs, st.Misses, st.BatchEntries, st.BytesServed, st.BytesFetched,
						st.Evictions, srv.CachedFiles(), srv.CachedBytes(), st.QueueDepth, st.PrefetchDrops, st.DemandRejects, st.ReplicaWarms,
						st.PlanPrefetches, st.PlanKeys, st.PlanFrontier,
						st.ZeroCopySends, st.ZeroCopyEligible, st.ZeroCopyBytes, st.ZeroCopyFallbacks)
					fmt.Printf("hvacd latencies:\n%s\n", srv.LatencySummary())
				case <-stop:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("hvacd: shutting down, purging cache (job-coupled life cycle)")
	close(stop)
	srv.Close()
}
