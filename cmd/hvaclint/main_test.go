package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hvac/internal/analysis"
)

// TestSuiteHasTwelveAnalyzers pins the suite size: adding or removing
// an analyzer must be a conscious change here, in -list, and in the
// docs.
func TestSuiteHasTwelveAnalyzers(t *testing.T) {
	if got := len(analysis.Analyzers()); got != 12 {
		t.Fatalf("suite has %d analyzers, want 12", got)
	}
}

// TestRulesSubsetsNameNewAnalyzers exercises the -rules resolution
// path for the value-flow analyzers, alone and combined.
func TestRulesSubsetsNameNewAnalyzers(t *testing.T) {
	for _, names := range [][]string{
		{"chanlife"},
		{"blockguard"},
		{"statpair"},
		{"chanlife", "blockguard", "statpair"},
		{"untrustedlen", "ownerpass", "chanlife"},
	} {
		got, err := analysis.ByName(names)
		if err != nil {
			t.Fatalf("ByName(%v): %v", names, err)
		}
		if len(got) != len(names) {
			t.Fatalf("ByName(%v) resolved %d analyzers", names, len(got))
		}
	}
	if _, err := analysis.ByName([]string{"chanlift"}); err == nil {
		t.Fatal("ByName accepted an unknown rule name")
	}
}

// TestJSONStatsRoundTrip runs the driver with -format json -stats
// wired to separate buffers: stdout must round-trip through
// json.Unmarshal (stats never leak into it) and stats must land on
// stderr.
func TestJSONStatsRoundTrip(t *testing.T) {
	analyzers, err := analysis.ByName([]string{"chanlife", "blockguard", "statpair"})
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	findings, err := run([]string{"../../internal/transport"}, analyzers, "json", true, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 {
		t.Fatalf("transport package has %d findings; the module must stay lint-clean", findings)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &parsed); err != nil {
		t.Fatalf("stdout does not round-trip through json.Unmarshal: %v\nstdout:\n%s", err, stdout.String())
	}
	for _, want := range []string{"hvaclint: analyzer findings:", "chanlife", "blockguard", "statpair"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr stats missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestSarifOutput checks the minimal SARIF 2.1.0 shape: version,
// driver name, and rule metadata for every analyzer in the run.
func TestSarifOutput(t *testing.T) {
	analyzers, err := analysis.ByName([]string{"errdrop"})
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if _, err := run([]string{"../../internal/place"}, analyzers, "sarif", false, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("sarif output does not parse: %v\n%s", err, stdout.String())
	}
	if doc.Version != "2.1.0" {
		t.Errorf("sarif version = %q, want 2.1.0", doc.Version)
	}
	if len(doc.Runs) != 1 || doc.Runs[0].Tool.Driver.Name != "hvaclint" {
		t.Fatalf("sarif driver malformed: %+v", doc.Runs)
	}
	if len(doc.Runs[0].Tool.Driver.Rules) != 1 || doc.Runs[0].Tool.Driver.Rules[0].ID != "errdrop" {
		t.Errorf("sarif rules = %+v, want [errdrop]", doc.Runs[0].Tool.Driver.Rules)
	}
}

// TestTextFindingsExitCount runs a subset over a package and checks
// the zero-findings contract of the text path.
func TestTextFindingsExitCount(t *testing.T) {
	analyzers, err := analysis.ByName([]string{"statpair"})
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	findings, err := run([]string{"../../internal/core"}, analyzers, "text", false, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if findings != 0 {
		t.Fatalf("statpair reports %d findings on internal/core:\n%s", findings, stdout.String())
	}
	if strings.Contains(stdout.String(), "finding(s)") {
		t.Errorf("clean run printed a findings summary:\n%s", stdout.String())
	}
}
