// Command hvaclint runs the HVAC-specific static-analysis suite
// (internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	hvaclint [-list] [-rules a,b,...] [-format text|json] [-stats] [packages]
//
// With no arguments or the pattern "./...", every package of the module
// is analysed — as one set, so the interprocedural analyzers (lockorder,
// goroleak, atomicmix, untrustedlen, ownerpass) see the whole call
// graph. Other arguments name package directories relative to the
// working directory. -rules restricts the run to a comma-separated
// subset of the suite (names as printed by -list). Findings print as
//
//	file:line:col: [rule] message
//
// or, with -format json, as a JSON array of
//
//	{"rule": ..., "pos": {"file": ..., "line": ..., "col": ...},
//	 "message": ..., "suppressed": ...}
//
// including suppressed findings (suppressed entries never affect the
// exit status; CI uses them for annotations). -stats appends a
// per-analyzer finding count and wall time, so gate failures name the
// rule and a slow suite names the analyzer. Findings can be suppressed
// per line with //hvaclint:ignore <rule> <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hvac/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	format := flag.String("format", "text", "output format: text or json")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time")
	flag.Parse()
	analyzers := analysis.Analyzers()
	if *rules != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvaclint:", err)
			os.Exit(2)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "hvaclint: unknown -format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	if err := run(flag.Args(), analyzers, *format, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "hvaclint:", err)
		os.Exit(2)
	}
}

// jsonPos is the position part of the stable -format json schema.
type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// jsonFinding is one diagnostic in the stable -format json schema.
type jsonFinding struct {
	Rule       string  `json:"rule"`
	Pos        jsonPos `json:"pos"`
	Message    string  `json:"message"`
	Suppressed bool    `json:"suppressed"`
}

func run(args []string, analyzers []*analysis.Analyzer, format string, stats bool) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	paths, err := selectPackages(l, root, args)
	if err != nil {
		return err
	}
	// Load the selected packages and analyse them as one set: the
	// interprocedural analyzers need the shared call graph.
	var pkgs []*analysis.Package
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return fmt.Errorf("no packages selected")
	}
	diags, timings := analysis.RunPackagesTimed(pkgs, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	findings := 0
	perRule := make(map[string]int)
	for _, d := range diags {
		if !d.Suppressed {
			findings++
			perRule[d.Rule]++
		}
	}

	switch format {
	case "json":
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Rule:       d.Rule,
				Pos:        jsonPos{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column},
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	default:
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	if stats {
		fmt.Fprintf(os.Stderr, "hvaclint: analyzer findings:\n")
		for i, a := range analyzers {
			elapsed := time.Duration(0)
			if i < len(timings) {
				elapsed = timings[i].Elapsed
			}
			fmt.Fprintf(os.Stderr, "  %-16s %-6d %8.1fms\n", a.Name, perRule[a.Name],
				float64(elapsed.Microseconds())/1000)
		}
		if perRule["suppress"] > 0 {
			fmt.Fprintf(os.Stderr, "  %-16s %d\n", "suppress", perRule["suppress"])
		}
	}
	if findings > 0 {
		if format != "json" {
			fmt.Printf("hvaclint: %d finding(s)\n", findings)
		}
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages maps the command-line patterns onto module import
// paths.
func selectPackages(l *analysis.Loader, root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return l.Packages(), nil
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return l.Packages(), nil
		}
		if strings.HasSuffix(arg, "/...") {
			prefix, err := argImportPath(l, root, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			for _, ip := range l.Packages() {
				if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
					out = append(out, ip)
				}
			}
			continue
		}
		ip, err := argImportPath(l, root, arg)
		if err != nil {
			return nil, err
		}
		out = append(out, ip)
	}
	return out, nil
}

// argImportPath resolves one directory argument to an import path.
func argImportPath(l *analysis.Loader, root, arg string) (string, error) {
	if strings.HasPrefix(arg, l.ModulePath()) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %s is outside the module", arg)
	}
	if rel == "." {
		return l.ModulePath(), nil
	}
	return l.ModulePath() + "/" + filepath.ToSlash(rel), nil
}
