// Command hvaclint runs the HVAC-specific static-analysis suite
// (internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	hvaclint [-list] [packages]
//
// With no arguments or the pattern "./...", every package of the module
// is analysed. Other arguments name package directories relative to the
// working directory. Findings print as
//
//	file:line:col: [rule] message
//
// and can be suppressed per line with //hvaclint:ignore <rule> <reason>.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hvac/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()
	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if err := run(flag.Args(), analyzers); err != nil {
		fmt.Fprintln(os.Stderr, "hvaclint:", err)
		os.Exit(2)
	}
}

func run(args []string, analyzers []*analysis.Analyzer) error {
	root, err := moduleRoot()
	if err != nil {
		return err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return err
	}
	paths, err := selectPackages(l, root, args)
	if err != nil {
		return err
	}
	findings := 0
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return err
		}
		for _, d := range analysis.Run(pkg, analyzers) {
			pos := d.Pos
			if rel, err := filepath.Rel(root, pos.Filename); err == nil {
				pos.Filename = rel
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", pos.Filename, pos.Line, pos.Column, d.Rule, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Printf("hvaclint: %d finding(s)\n", findings)
		os.Exit(1)
	}
	return nil
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages maps the command-line patterns onto module import
// paths.
func selectPackages(l *analysis.Loader, root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return l.Packages(), nil
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return l.Packages(), nil
		}
		if strings.HasSuffix(arg, "/...") {
			prefix, err := argImportPath(l, root, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			for _, ip := range l.Packages() {
				if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
					out = append(out, ip)
				}
			}
			continue
		}
		ip, err := argImportPath(l, root, arg)
		if err != nil {
			return nil, err
		}
		out = append(out, ip)
	}
	return out, nil
}

// argImportPath resolves one directory argument to an import path.
func argImportPath(l *analysis.Loader, root, arg string) (string, error) {
	if strings.HasPrefix(arg, l.ModulePath()) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %s is outside the module", arg)
	}
	if rel == "." {
		return l.ModulePath(), nil
	}
	return l.ModulePath() + "/" + filepath.ToSlash(rel), nil
}
