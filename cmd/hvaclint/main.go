// Command hvaclint runs the HVAC-specific static-analysis suite
// (internal/analysis) over the module and exits non-zero on findings.
//
// Usage:
//
//	hvaclint [-list] [-rules a,b,...] [-format text|json|sarif] [-stats] [packages]
//
// With no arguments or the pattern "./...", every package of the module
// is analysed — as one set, so the interprocedural analyzers (lockorder,
// goroleak, atomicmix, untrustedlen, ownerpass) see the whole call
// graph. Other arguments name package directories relative to the
// working directory. -rules restricts the run to a comma-separated
// subset of the suite (names as printed by -list). Findings print as
//
//	file:line:col: [rule] message
//
// or, with -format json, as a JSON array of
//
//	{"rule": ..., "pos": {"file": ..., "line": ..., "col": ...},
//	 "message": ..., "suppressed": ...}
//
// including suppressed findings (suppressed entries never affect the
// exit status; CI uses them for annotations). -format sarif emits a
// minimal SARIF 2.1.0 log for code-scanning upload. -stats appends a
// per-analyzer finding count and wall time, so gate failures name the
// rule and a slow suite names the analyzer; it always writes to
// stderr, so machine-readable stdout (json, sarif) stays parseable
// with -stats on. Findings can be suppressed per line with
// //hvaclint:ignore <rule> <reason>.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"hvac/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	rules := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	format := flag.String("format", "text", "output format: text or json")
	stats := flag.Bool("stats", false, "print per-analyzer finding counts and wall time")
	flag.Parse()
	analyzers := analysis.Analyzers()
	if *rules != "" {
		var err error
		analyzers, err = analysis.ByName(strings.Split(*rules, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "hvaclint:", err)
			os.Exit(2)
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		fmt.Fprintf(os.Stderr, "hvaclint: unknown -format %q (want text, json or sarif)\n", *format)
		os.Exit(2)
	}
	findings, err := run(flag.Args(), analyzers, *format, *stats, os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hvaclint:", err)
		os.Exit(2)
	}
	if findings > 0 {
		os.Exit(1)
	}
}

// jsonPos is the position part of the stable -format json schema.
type jsonPos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// jsonFinding is one diagnostic in the stable -format json schema.
type jsonFinding struct {
	Rule       string  `json:"rule"`
	Pos        jsonPos `json:"pos"`
	Message    string  `json:"message"`
	Suppressed bool    `json:"suppressed"`
}

// run executes the suite and writes findings to stdout (human or
// machine format) and stats to stderr. It returns the number of
// unsuppressed findings; the caller owns the exit code, which keeps
// run testable.
func run(args []string, analyzers []*analysis.Analyzer, format string, stats bool, stdout, stderr io.Writer) (int, error) {
	root, err := moduleRoot()
	if err != nil {
		return 0, err
	}
	l, err := analysis.NewLoader(root)
	if err != nil {
		return 0, err
	}
	paths, err := selectPackages(l, root, args)
	if err != nil {
		return 0, err
	}
	// Load the selected packages and analyse them as one set: the
	// interprocedural analyzers need the shared call graph.
	var pkgs []*analysis.Package
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return 0, err
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		return 0, fmt.Errorf("no packages selected")
	}
	diags, timings := analysis.RunPackagesTimed(pkgs, analyzers)
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}

	findings := 0
	perRule := make(map[string]int)
	for _, d := range diags {
		if !d.Suppressed {
			findings++
			perRule[d.Rule]++
		}
	}

	switch format {
	case "json":
		out := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonFinding{
				Rule:       d.Rule,
				Pos:        jsonPos{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column},
				Message:    d.Message,
				Suppressed: d.Suppressed,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 0, err
		}
	case "sarif":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sarifLog(analyzers, diags)); err != nil {
			return 0, err
		}
	default:
		for _, d := range diags {
			if d.Suppressed {
				continue
			}
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
		}
	}
	// Stats go to stderr unconditionally: stdout stays a clean findings
	// stream (text) or a parseable document (json, sarif).
	if stats {
		fmt.Fprintf(stderr, "hvaclint: analyzer findings:\n")
		for i, a := range analyzers {
			elapsed := time.Duration(0)
			if i < len(timings) {
				elapsed = timings[i].Elapsed
			}
			fmt.Fprintf(stderr, "  %-16s %-6d %8.1fms\n", a.Name, perRule[a.Name],
				float64(elapsed.Microseconds())/1000)
		}
		if perRule["suppress"] > 0 {
			fmt.Fprintf(stderr, "  %-16s %d\n", "suppress", perRule["suppress"])
		}
	}
	if findings > 0 && format == "text" {
		fmt.Fprintf(stdout, "hvaclint: %d finding(s)\n", findings)
	}
	return findings, nil
}

// sarifLog renders the diagnostics as a minimal SARIF 2.1.0 document:
// one run, one driver, rule metadata from the suite, one result per
// finding. Suppressed findings carry an inSource suppression object,
// which code-scanning UIs hide by default.
func sarifLog(analyzers []*analysis.Analyzer, diags []analysis.Diagnostic) map[string]any {
	rules := make([]map[string]any, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, map[string]any{
			"id":               a.Name,
			"shortDescription": map[string]any{"text": a.Doc},
		})
	}
	results := make([]map[string]any, 0, len(diags))
	for _, d := range diags {
		res := map[string]any{
			"ruleId":  d.Rule,
			"level":   "warning",
			"message": map[string]any{"text": d.Message},
			"locations": []map[string]any{{
				"physicalLocation": map[string]any{
					"artifactLocation": map[string]any{"uri": filepath.ToSlash(d.Pos.Filename)},
					"region": map[string]any{
						"startLine":   d.Pos.Line,
						"startColumn": d.Pos.Column,
					},
				},
			}},
		}
		if d.Suppressed {
			res["suppressions"] = []map[string]any{{"kind": "inSource"}}
		}
		results = append(results, res)
	}
	return map[string]any{
		"version": "2.1.0",
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":  "hvaclint",
					"rules": rules,
				},
			},
			"results": results,
		}},
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages maps the command-line patterns onto module import
// paths.
func selectPackages(l *analysis.Loader, root string, args []string) ([]string, error) {
	if len(args) == 0 {
		return l.Packages(), nil
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			return l.Packages(), nil
		}
		if strings.HasSuffix(arg, "/...") {
			prefix, err := argImportPath(l, root, strings.TrimSuffix(arg, "/..."))
			if err != nil {
				return nil, err
			}
			for _, ip := range l.Packages() {
				if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
					out = append(out, ip)
				}
			}
			continue
		}
		ip, err := argImportPath(l, root, arg)
		if err != nil {
			return nil, err
		}
		out = append(out, ip)
	}
	return out, nil
}

// argImportPath resolves one directory argument to an import path.
func argImportPath(l *analysis.Loader, root, arg string) (string, error) {
	if strings.HasPrefix(arg, l.ModulePath()) {
		return arg, nil
	}
	abs, err := filepath.Abs(arg)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("package %s is outside the module", arg)
	}
	if rel == "." {
		return l.ModulePath(), nil
	}
	return l.ModulePath() + "/" + filepath.ToSlash(rel), nil
}
