// Command hvacctl is the operations tool for a running real-mode HVAC
// deployment: liveness probes, file stats, and cache pre-population
// against one or more hvacd servers.
//
// Usage:
//
//	hvacctl -servers host1:7070,host2:7070 ping
//	hvacctl -servers host1:7070,host2:7070 stat /gpfs/dataset/f0001.rec
//	hvacctl -servers host1:7070,host2:7070 -dataset /gpfs/dataset prefetch /gpfs/dataset/*.rec
//	hvacctl -servers host1:7070,host2:7070 home /gpfs/dataset/f0001.rec
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hvac"
	"hvac/internal/transport"
)

func usage() {
	fmt.Fprintln(os.Stderr, `hvacctl: commands
  ping                 probe every server
  stat <path>          report a file's size via its home server
  home <path>...       print each path's home server
  prefetch <path>...   pre-populate the caches with the given files`)
	flag.PrintDefaults()
}

func main() {
	var (
		servers  = flag.String("servers", "", "comma-separated hvacd addresses (required)")
		dataset  = flag.String("dataset", "", "dataset dir for prefetch/home (default: inferred from first path)")
		callTO   = flag.Duration("call-timeout", 5*time.Second, "per-RPC deadline; a hung server fails the call instead of hanging hvacctl (0 = transport default, negative = disabled)")
		retries  = flag.Int("retries", 0, "per-RPC attempt budget, first try included (0 = transport default)")
		poolSize = flag.Int("pool-size", 0, "idle TCP connections kept per server link (0 = transport default, negative = no pooling)")
	)
	flag.Usage = usage
	flag.Parse()
	if *servers == "" || flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}
	addrs := strings.Split(*servers, ",")
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	opts := transport.ClientOptions{
		CallTimeout: *callTO,
		Retry:       transport.RetryPolicy{MaxAttempts: *retries},
		PoolSize:    *poolSize,
	}

	switch cmd {
	case "ping":
		bad := 0
		for _, addr := range addrs {
			cli := transport.DialWith(addr, opts)
			err := cli.Ping()
			cli.Close()
			if err != nil {
				fmt.Printf("%-24s DOWN (%v)\n", addr, err)
				bad++
			} else {
				fmt.Printf("%-24s ok\n", addr)
			}
		}
		if bad > 0 {
			os.Exit(1)
		}

	case "stat", "home", "prefetch":
		if len(args) == 0 {
			usage()
			os.Exit(2)
		}
		dir := *dataset
		if dir == "" {
			// Infer the dataset dir: the directory of the first path.
			dir = args[0]
			if i := strings.LastIndexByte(dir, '/'); i > 0 {
				dir = dir[:i]
			}
		}
		cli, err := hvac.NewClient(hvac.ClientConfig{
			Servers:       addrs,
			DatasetDir:    dir,
			CallTimeout:   *callTO,
			RetryAttempts: *retries,
			PoolSize:      *poolSize,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hvacctl: %v\n", err)
			os.Exit(1)
		}
		defer cli.Close()
		switch cmd {
		case "home":
			for _, p := range args {
				fmt.Printf("%s -> server %d (%s)\n", p, cli.Home(p), addrs[cli.Home(p)])
			}
		case "stat":
			for _, p := range args {
				c := transport.DialWith(addrs[cli.Home(p)], opts)
				resp, err := c.Call(&transport.Request{Op: transport.OpStat, Path: p})
				c.Close()
				if err != nil || !resp.OK() {
					if err == nil {
						err = resp.Error()
						resp.Release()
					}
					fmt.Printf("%s: ERROR %v\n", p, err)
					continue
				}
				fmt.Printf("%s: %d bytes\n", p, resp.Size)
				resp.Release()
			}
		case "prefetch":
			accepted := cli.Prefetch(args)
			fmt.Printf("prefetch accepted for %d of %d files\n", accepted, len(args))
			if accepted < len(args) {
				os.Exit(1)
			}
		}

	default:
		fmt.Fprintf(os.Stderr, "hvacctl: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
}
