// Package loader provides a data-parallel, shuffling batch loader for
// training jobs that read their samples through HVAC (or any byte
// source): the Go analogue of the PyTorch DataLoader + DistributedSampler
// pair whose access pattern the paper profiles (§II-B, §III-F).
//
// Semantics match the paper's description of DL data loading exactly:
//
//   - every epoch visits every sample exactly once, in a fresh
//     pseudo-random order derived from (seed, epoch) — identical across
//     all ranks, so the global shuffle is consistent;
//   - rank r of w takes the strided shard perm[r], perm[r+w], ... ;
//   - each batch's files are fetched with a bounded worker pool, one full
//     <open, read, close> transaction per file.
//
// Because the shuffle depends only on (seed, epoch), two runs over
// different storage backends consume identical byte streams — the
// property behind the paper's Fig. 14 accuracy equivalence.
package loader

import (
	"fmt"
	"sync"

	"hvac/internal/sim"
	"hvac/internal/train"
)

// Source reads one sample file in full. hvac.Client.ReadAll and
// os.ReadFile both satisfy it.
type Source func(path string) ([]byte, error)

// BatchSource reads a whole batch of sample files in one scatter-gather
// pass, returning contents indexed like paths. hvac.Client.ReadBatch
// satisfies it. When set, the loader fetches each batch through it — one
// RPC per (server, batch) instead of one <open, read, close> transaction
// per file — and the worker pool is bypassed.
type BatchSource func(paths []string) ([][]byte, error)

// Config parameterises a Loader.
type Config struct {
	// Paths is the dataset: one sample per file.
	Paths []string
	// BatchSize is samples per batch (per rank). Default 32.
	BatchSize int
	// Workers is the concurrent fetch width within a batch. Default 4.
	Workers int
	// Seed drives the per-epoch shuffles.
	Seed uint64
	// Rank and World shard the dataset for data-parallel training.
	// Defaults: rank 0 of 1.
	Rank, World int
	// DropLast discards a trailing partial batch.
	DropLast bool
	// BatchSource, when non-nil, fetches each batch in one scatter-gather
	// pass instead of per-file Source transactions through the worker
	// pool. The per-file Source remains required: it is the fallback when
	// the batch fetch fails.
	BatchSource BatchSource
}

// Batch is one training batch.
type Batch struct {
	// Epoch and Index locate the batch.
	Epoch, Index int
	// Paths are the sample files, in consumption order.
	Paths []string
	// Data holds the corresponding file contents.
	Data [][]byte
}

// Loader produces shuffled batches from a Source.
type Loader struct {
	src Source
	cfg Config
}

// New validates cfg and builds a Loader.
func New(src Source, cfg Config) (*Loader, error) {
	if src == nil {
		return nil, fmt.Errorf("loader: nil source")
	}
	if len(cfg.Paths) == 0 {
		return nil, fmt.Errorf("loader: empty dataset")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.World <= 0 {
		cfg.World = 1
	}
	if cfg.Rank < 0 || cfg.Rank >= cfg.World {
		return nil, fmt.Errorf("loader: rank %d outside world %d", cfg.Rank, cfg.World)
	}
	return &Loader{src: src, cfg: cfg}, nil
}

// EpochOrder returns this rank's sample paths for epoch e, in consumption
// order (before batching). The order is a pure function of (seed, epoch,
// rank, world).
func (l *Loader) EpochOrder(e int) []string {
	n := len(l.cfg.Paths)
	perm := train.NewPerm(sim.NewRNG(l.cfg.Seed+uint64(e)*0x9e3779b9), n)
	var out []string
	for k := l.cfg.Rank; k < n; k += l.cfg.World {
		out = append(out, l.cfg.Paths[perm.Index(k)])
	}
	return out
}

// BatchesPerEpoch reports how many batches Epoch will yield.
func (l *Loader) BatchesPerEpoch() int {
	n := len(l.cfg.Paths)
	shard := (n - l.cfg.Rank + l.cfg.World - 1) / l.cfg.World
	if l.cfg.DropLast {
		return shard / l.cfg.BatchSize
	}
	return (shard + l.cfg.BatchSize - 1) / l.cfg.BatchSize
}

// Epoch fetches epoch e batch by batch, invoking fn for each. Fetching
// within a batch is concurrent (Config.Workers); batches are delivered in
// order. The first fetch or callback error aborts the epoch.
func (l *Loader) Epoch(e int, fn func(Batch) error) error {
	order := l.EpochOrder(e)
	bs := l.cfg.BatchSize
	idx := 0
	for start := 0; start < len(order); start += bs {
		end := start + bs
		if end > len(order) {
			if l.cfg.DropLast {
				break
			}
			end = len(order)
		}
		batch := Batch{
			Epoch: e,
			Index: idx,
			Paths: order[start:end],
			Data:  make([][]byte, end-start),
		}
		if err := l.fetch(batch.Paths, batch.Data); err != nil {
			return fmt.Errorf("loader: epoch %d batch %d: %w", e, idx, err)
		}
		if err := fn(batch); err != nil {
			return err
		}
		idx++
	}
	return nil
}

// fetch fills data[i] from paths[i]: through one BatchSource pass when
// configured, else with the per-file worker pool. Errors never surface a
// torn batch — a failed fetch zeroes whatever was partially filled.
func (l *Loader) fetch(paths []string, data [][]byte) error {
	if l.cfg.BatchSource != nil {
		out, err := l.cfg.BatchSource(paths)
		if err == nil && len(out) == len(paths) {
			copy(data, out)
			return nil
		}
		// Discard the partial result and degrade to the per-file path,
		// which carries the Source's own fallback behaviour.
	}
	workers := l.cfg.Workers
	if workers > len(paths) {
		workers = len(paths)
	}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		next int
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if err != nil || next >= len(paths) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				b, e := l.src(paths[i])
				if e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					return
				}
				data[i] = b
			}
		}()
	}
	wg.Wait()
	if err != nil {
		// The workers that did not hit the error may have finished their
		// samples: zero the batch so the caller never observes torn data
		// next to a non-nil error.
		for i := range data {
			data[i] = nil
		}
	}
	return err
}
