package loader

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"

	"hvac"
)

func memSource(t *testing.T, n int) (Source, []string) {
	t.Helper()
	files := map[string][]byte{}
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/data/%04d.rec", i)
		files[paths[i]] = []byte(fmt.Sprintf("content-%d", i))
	}
	return func(p string) ([]byte, error) {
		b, ok := files[p]
		if !ok {
			return nil, fmt.Errorf("missing %s", p)
		}
		return b, nil
	}, paths
}

func TestValidation(t *testing.T) {
	src, paths := memSource(t, 4)
	if _, err := New(nil, Config{Paths: paths}); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := New(src, Config{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
	if _, err := New(src, Config{Paths: paths, Rank: 2, World: 2}); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestEpochVisitsEveryFileOnce(t *testing.T) {
	src, paths := memSource(t, 97)
	l, err := New(src, Config{Paths: paths, BatchSize: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	err = l.Epoch(0, func(b Batch) error {
		for i, p := range b.Paths {
			seen[p]++
			if !bytes.Contains(b.Data[i], []byte("content-")) {
				return fmt.Errorf("bad data for %s", p)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 97 {
		t.Fatalf("visited %d files, want 97", len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("%s visited %d times", p, c)
		}
	}
}

func TestShardingPartitionsDataset(t *testing.T) {
	src, paths := memSource(t, 100)
	var all []string
	for rank := 0; rank < 4; rank++ {
		l, err := New(src, Config{Paths: paths, BatchSize: 8, Seed: 5, Rank: rank, World: 4})
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, l.EpochOrder(2)...)
	}
	sort.Strings(all)
	want := append([]string(nil), paths...)
	sort.Strings(want)
	if len(all) != len(want) {
		t.Fatalf("shards cover %d files, want %d", len(all), len(want))
	}
	for i := range all {
		if all[i] != want[i] {
			t.Fatalf("shards are not a partition at %d", i)
		}
	}
}

func TestDeterministicAndEpochVarying(t *testing.T) {
	src, paths := memSource(t, 200)
	l1, _ := New(src, Config{Paths: paths, Seed: 9})
	l2, _ := New(src, Config{Paths: paths, Seed: 9})
	a, b := l1.EpochOrder(0), l2.EpochOrder(0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed+epoch diverged")
		}
	}
	c := l1.EpochOrder(1)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("epochs 0 and 1 share %d/200 positions", same)
	}
}

func TestDropLastAndBatchCount(t *testing.T) {
	src, paths := memSource(t, 25)
	keep, _ := New(src, Config{Paths: paths, BatchSize: 10, Seed: 1})
	drop, _ := New(src, Config{Paths: paths, BatchSize: 10, Seed: 1, DropLast: true})
	if keep.BatchesPerEpoch() != 3 || drop.BatchesPerEpoch() != 2 {
		t.Fatalf("batches = %d/%d, want 3/2", keep.BatchesPerEpoch(), drop.BatchesPerEpoch())
	}
	count := func(l *Loader) (batches, samples int) {
		l.Epoch(0, func(b Batch) error {
			batches++
			samples += len(b.Paths)
			return nil
		})
		return
	}
	if b, s := count(keep); b != 3 || s != 25 {
		t.Fatalf("keep: %d batches, %d samples", b, s)
	}
	if b, s := count(drop); b != 2 || s != 20 {
		t.Fatalf("drop: %d batches, %d samples", b, s)
	}
}

func TestErrorsPropagate(t *testing.T) {
	src, paths := memSource(t, 10)
	failing := func(p string) ([]byte, error) {
		if p == paths[3] {
			return nil, errors.New("injected")
		}
		return src(p)
	}
	l, _ := New(failing, Config{Paths: paths, BatchSize: 10, Workers: 4, Seed: 2})
	if err := l.Epoch(0, func(Batch) error { return nil }); err == nil {
		t.Fatal("fetch error swallowed")
	}
	l2, _ := New(src, Config{Paths: paths, BatchSize: 5, Seed: 2})
	sentinel := errors.New("stop")
	if err := l2.Epoch(0, func(Batch) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error = %v", err)
	}
}

// Property: for any world size, batch size and seed, sharded epochs form
// an exact partition of the dataset.
func TestPartitionProperty(t *testing.T) {
	src, paths := memSource(t, 64)
	f := func(seed uint64, worldRaw, bsRaw uint8) bool {
		world := int(worldRaw%8) + 1
		bs := int(bsRaw%16) + 1
		counts := map[string]int{}
		for rank := 0; rank < world; rank++ {
			l, err := New(src, Config{Paths: paths, BatchSize: bs, Seed: seed, Rank: rank, World: world})
			if err != nil {
				return false
			}
			for _, p := range l.EpochOrder(0) {
				counts[p]++
			}
		}
		if len(counts) != len(paths) {
			return false
		}
		for _, c := range counts {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestThroughHVAC drives the loader through a live HVAC deployment: the
// paper's full client stack under the DL access pattern.
func TestThroughHVAC(t *testing.T) {
	work := t.TempDir()
	pfsDir := filepath.Join(work, "pfs")
	os.MkdirAll(pfsDir, 0o755)
	paths := make([]string, 30)
	for i := range paths {
		paths[i] = filepath.Join(pfsDir, fmt.Sprintf("s%03d.rec", i))
		os.WriteFile(paths[i], bytes.Repeat([]byte{byte(i)}, 256), 0o644)
	}
	srv, err := hvac.StartServer(hvac.ServerConfig{
		ListenAddr: "127.0.0.1:0", PFSDir: pfsDir,
		CacheDir: filepath.Join(work, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := hvac.NewClient(hvac.ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	l, err := New(cli.ReadAll, Config{Paths: paths, BatchSize: 7, Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		samples := 0
		err := l.Epoch(e, func(b Batch) error {
			for i := range b.Paths {
				if len(b.Data[i]) != 256 {
					return fmt.Errorf("short sample %s", b.Paths[i])
				}
				samples++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if samples != 30 {
			t.Fatalf("epoch %d: %d samples", e, samples)
		}
	}
	if st := cli.Stats(); st.Redirected != 60 {
		t.Fatalf("redirected = %d, want 60", st.Redirected)
	}
}

// TestTornBatchZeroed asserts the fetch-error contract: when any sample
// of a batch fails, the callback never runs and the batch's data slots
// are all zeroed — a torn batch (some samples filled, error returned)
// must not be observable.
func TestTornBatchZeroed(t *testing.T) {
	src, paths := memSource(t, 12)
	failing := func(p string) ([]byte, error) {
		if p == paths[5] {
			return nil, errors.New("injected")
		}
		return src(p)
	}
	l, _ := New(failing, Config{Paths: paths, BatchSize: 12, Workers: 4, Seed: 3})
	data := make([][]byte, 12)
	// Reach into fetch directly: Epoch would discard the batch, and the
	// contract is specifically about the buffer fetch leaves behind.
	err := l.fetch(paths, data)
	if err == nil {
		t.Fatal("fetch error swallowed")
	}
	for i, d := range data {
		if d != nil {
			t.Fatalf("slot %d holds %d bytes after failed fetch; torn batch leaked", i, len(d))
		}
	}
}

// TestBatchSourceFastPath routes every batch through one scatter-gather
// call and checks the per-file Source is never consulted.
func TestBatchSourceFastPath(t *testing.T) {
	src, paths := memSource(t, 20)
	perFileCalls := 0
	countingSrc := func(p string) ([]byte, error) {
		perFileCalls++
		return src(p)
	}
	batchCalls := 0
	bs := func(batch []string) ([][]byte, error) {
		batchCalls++
		out := make([][]byte, len(batch))
		for i, p := range batch {
			b, err := src(p)
			if err != nil {
				return nil, err
			}
			out[i] = b
		}
		return out, nil
	}
	l, err := New(countingSrc, Config{Paths: paths, BatchSize: 5, Seed: 9, BatchSource: bs})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	if err := l.Epoch(0, func(b Batch) error {
		for i := range b.Paths {
			want, _ := src(b.Paths[i])
			if !bytes.Equal(b.Data[i], want) {
				return fmt.Errorf("%s: wrong bytes", b.Paths[i])
			}
			seen[b.Paths[i]] = true
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(paths) {
		t.Fatalf("saw %d samples, want %d", len(seen), len(paths))
	}
	if batchCalls != 4 {
		t.Fatalf("BatchSource called %d times, want 4 (one per batch)", batchCalls)
	}
	if perFileCalls != 0 {
		t.Fatalf("per-file Source called %d times despite BatchSource", perFileCalls)
	}
}

// TestBatchSourceFallsBackToSource degrades a failing BatchSource to the
// per-file worker pool, transparently to the consumer.
func TestBatchSourceFallsBackToSource(t *testing.T) {
	src, paths := memSource(t, 10)
	bs := func(batch []string) ([][]byte, error) {
		return nil, errors.New("batch RPC failed")
	}
	l, _ := New(src, Config{Paths: paths, BatchSize: 5, Seed: 1, BatchSource: bs})
	samples := 0
	if err := l.Epoch(0, func(b Batch) error {
		for i := range b.Paths {
			want, _ := src(b.Paths[i])
			if !bytes.Equal(b.Data[i], want) {
				return fmt.Errorf("%s: wrong bytes after fallback", b.Paths[i])
			}
			samples++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if samples != 10 {
		t.Fatalf("samples = %d, want 10", samples)
	}
}

// TestThroughHVACBatched is TestThroughHVAC with the batched fast path:
// Client.ReadBatch as the BatchSource, byte-identical samples, and the
// whole warm epoch costing one RPC per (server, batch).
func TestThroughHVACBatched(t *testing.T) {
	work := t.TempDir()
	pfsDir := filepath.Join(work, "pfs")
	os.MkdirAll(pfsDir, 0o755)
	paths := make([]string, 30)
	for i := range paths {
		paths[i] = filepath.Join(pfsDir, fmt.Sprintf("s%03d.rec", i))
		os.WriteFile(paths[i], bytes.Repeat([]byte{byte(i)}, 256), 0o644)
	}
	srv, err := hvac.StartServer(hvac.ServerConfig{
		ListenAddr: "127.0.0.1:0", PFSDir: pfsDir,
		CacheDir: filepath.Join(work, "cache"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := hvac.NewClient(hvac.ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	l, err := New(cli.ReadAll, Config{
		Paths: paths, BatchSize: 6, Workers: 4, Seed: 11,
		BatchSource: cli.ReadBatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 2; e++ {
		err := l.Epoch(e, func(b Batch) error {
			for i := range b.Paths {
				var want byte
				fmt.Sscanf(filepath.Base(b.Paths[i]), "s%03d.rec", &want)
				if !bytes.Equal(b.Data[i], bytes.Repeat([]byte{want}, 256)) {
					return fmt.Errorf("wrong bytes for %s", b.Paths[i])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := cli.Stats()
	if st.BatchReads != 60 {
		t.Fatalf("BatchReads = %d, want 60 (every sample via batch)", st.BatchReads)
	}
	if st.Redirected != 0 {
		t.Fatalf("Redirected = %d, want 0 (no per-file opens)", st.Redirected)
	}
}
