GO ?= go

.PHONY: build test race lint check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/hvaclint ./...

# The full gate: what CI runs, and what a change must pass before review.
check:
	./scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem
