GO ?= go

.PHONY: build test race lint lint-stats check chaos bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Only hvaclint, with per-analyzer counts and wall time: the fast
# pre-commit path. RULES=a,b restricts the run to named analyzers.
# The full gate (make check) still runs build/vet/gofmt/tests around it.
lint:
	$(GO) run ./cmd/hvaclint -stats $(if $(RULES),-rules $(RULES)) ./...

# Per-analyzer wall time without the findings stream: -stats writes to
# stderr, stdout is dropped. Keeps suite growth accountable — a new
# analyzer that doubles lint time shows up here, named.
lint-stats:
	@$(GO) run ./cmd/hvaclint -stats $(if $(RULES),-rules $(RULES)) ./... > /dev/null || true

# The full gate: what CI runs, and what a change must pass before review.
check:
	./scripts/check.sh

# The chaos tier: seeded fault schedules over real TCP clusters, under the
# race detector with shuffled test order (DESIGN.md §7).
chaos:
	$(GO) test -race -shuffle=on -v -run Chaos ./internal/core
	$(GO) test -race -shuffle=on -v ./internal/faultnet ./internal/testutil
	$(GO) test -race -shuffle=on -v -run 'Retry|Call|TimedOut|Truncated' ./internal/transport

# The short benchmark tier: fixed iteration counts; results land next to
# the committed pre-PR baselines in BENCH_PR4.json (hot path) and
# BENCH_PR5.json (cold path + batched small files).
bench:
	./scripts/bench.sh
