package hvac_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hvac"
	"hvac/internal/vfs"
)

// TestPublicAPIRealMode drives the facade end to end: servers, client,
// placement and eviction constructors.
func TestPublicAPIRealMode(t *testing.T) {
	work := t.TempDir()
	pfsDir := filepath.Join(work, "pfs")
	os.MkdirAll(pfsDir, 0o755)
	var paths []string
	for i := 0; i < 12; i++ {
		p := filepath.Join(pfsDir, fmt.Sprintf("f%02d.bin", i))
		os.WriteFile(p, bytes.Repeat([]byte{byte(i)}, 512), 0o644)
		paths = append(paths, p)
	}
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := hvac.StartServer(hvac.ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(work, fmt.Sprintf("c%d", i)),
			Policy:     hvac.LRUEviction(),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	cli, err := hvac.NewClient(hvac.ClientConfig{
		Servers:    addrs,
		DatasetDir: pfsDir,
		Placement:  hvac.RendezvousPlacement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 512 || got[0] != byte(i) {
			t.Fatalf("file %d: %d bytes, first=%d", i, len(got), got[0])
		}
	}
	if st := cli.Stats(); st.Redirected != 12 {
		t.Fatalf("redirected = %d", st.Redirected)
	}
}

// TestPublicAPISimulation drives the facade's simulation surface.
func TestPublicAPISimulation(t *testing.T) {
	eng := hvac.NewSimEngine()
	ns := hvac.NewNamespace()
	for i := 0; i < 16; i++ {
		ns.Add(fmt.Sprintf("/gpfs/d/%03d", i), 64<<10)
	}
	cluster := hvac.NewSimulatedCluster(eng, 4, ns)
	job := cluster.StartHVAC(hvac.SimHVACOptions{InstancesPerNode: 2})
	client := job.Client(0)
	reads := 0
	eng.Spawn("reader", func(p *hvac.SimProc) {
		for i := 0; i < 16; i++ {
			if _, err := vfs.ReadFile(p, client, fmt.Sprintf("/gpfs/d/%03d", i)); err != nil {
				t.Errorf("sim read: %v", err)
				return
			}
			reads++
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if reads != 16 {
		t.Fatalf("reads = %d", reads)
	}
	if job.TotalStats().Misses != 16 {
		t.Fatalf("misses = %d", job.TotalStats().Misses)
	}
}

func TestExperimentRegistryViaFacade(t *testing.T) {
	if len(hvac.Experiments()) < 12 {
		t.Fatalf("registry too small: %d", len(hvac.Experiments()))
	}
	e, ok := hvac.ExperimentByID("tab1")
	if !ok {
		t.Fatal("tab1 missing")
	}
	tables := e.Run(hvac.ExperimentOptions{})
	if len(tables) != 1 {
		t.Fatal("tab1 produced no table")
	}
}
