// Quickstart: run a 3-server HVAC deployment on the local machine, read a
// synthetic dataset through the cache twice, and watch the second epoch
// hit NVMe-resident copies instead of the "PFS".
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"hvac"
	"hvac/internal/dataset"
)

func main() {
	work, err := os.MkdirTemp("", "hvac-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// 1. Materialise a small synthetic dataset standing in for the PFS.
	pfsDir := filepath.Join(work, "pfs", "dataset")
	spec := dataset.Spec{
		Name: "quickstart", TrainFiles: 200, MeanFileSize: 64 << 10,
		SizeSigma: 0.4, PathPrefix: pfsDir,
	}
	paths, err := spec.Materialize(pfsDir, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d files under %s\n", len(paths), pfsDir)

	// 2. Start three HVAC server instances — the per-node daemons a job
	// script would spawn (alloc_flags "hvac").
	var servers []*hvac.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		srv, err := hvac.StartServer(hvac.ServerConfig{
			ListenAddr:    "127.0.0.1:0",
			PFSDir:        pfsDir,
			CacheDir:      filepath.Join(work, fmt.Sprintf("nvme%d", i)),
			CacheCapacity: 1 << 30,
			Movers:        1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	fmt.Printf("servers: %v\n", addrs)

	// 3. The client intercepts reads under the dataset dir and redirects
	// each file to the server that homes it by hashing — no metadata
	// service anywhere.
	cli, err := hvac.NewClient(hvac.ClientConfig{
		Servers:    addrs,
		DatasetDir: pfsDir,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	epoch := func(label string) {
		start := time.Now()
		var bytes int64
		for _, p := range paths {
			data, err := cli.ReadAll(p)
			if err != nil {
				log.Fatalf("read %s: %v", p, err)
			}
			bytes += int64(len(data))
		}
		fmt.Printf("%s: %d files, %.1f MB in %v\n", label, len(paths), float64(bytes)/1e6, time.Since(start).Round(time.Millisecond))
	}
	epoch("epoch 1 (cold: servers copy PFS -> cache)")
	epoch("epoch 2 (warm: served from cache)")

	var hits, misses int64
	for i, srv := range servers {
		st := srv.Stats()
		hits += st.Hits
		misses += st.Misses
		fmt.Printf("server %d: %d files cached (%d KB), hits=%d misses=%d\n",
			i, srv.CachedFiles(), srv.CachedBytes()/1024, st.Hits, st.Misses)
	}
	fmt.Printf("cluster: hits=%d misses=%d (each file fetched from the PFS exactly once)\n", hits, misses)
	st := cli.Stats()
	fmt.Printf("client: redirected=%d fallbacks=%d bytes=%d\n", st.Redirected, st.Fallbacks, st.BytesRead)
}
