// ImageNet example: simulate ResNet50 data-parallel training on a
// 512-node Summit allocation, comparing GPFS, HVAC(2x1) and XFS-on-NVMe,
// and print the per-epoch timeline — the Fig. 11 story: epoch 1 is
// PFS-bound for HVAC, every later epoch runs at node-local speed.
//
//	go run ./examples/imagenet
package main

import (
	"fmt"
	"log"

	"hvac"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

func main() {
	const nodes = 512
	model := train.ResNet50()
	data := model.Data.Scale(1.0 / 512) // ~23k files; same contention shape
	fmt.Printf("ResNet50 on %s: %d files, %.1f GB, %d nodes, 2 procs/node\n",
		data.Name, data.TrainFiles, float64(data.TotalTrainBytes())/1e9, nodes)

	for _, system := range []string{"gpfs", "hvac(2x1)", "xfs-nvme"} {
		eng := hvac.NewSimEngine()
		ns := hvac.NewNamespace()
		data.Build(ns, false)
		cluster := hvac.NewSimulatedCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)

		var fsFor func(node, proc int) vfs.FS
		switch system {
		case "gpfs":
			fsFor = cluster.GPFSFS()
		case "hvac(2x1)":
			job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: 2})
			fsFor = job.FS()
		case "xfs-nvme":
			fsFor = cluster.XFSFS()
		}

		res, err := train.Run(eng, train.Config{
			Model: model, Data: data, Nodes: nodes,
			BatchSize: 80, Epochs: 5, Seed: 42,
		}, fsFor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s: total %v (%.0f samples/s, rank0 I/O stall %v)\n",
			system, res.TrainTime.Round(1e6), res.SamplesPerSecond(), res.IOTime.Round(1e6))
		for i, e := range res.EpochTimes {
			bar := ""
			for j := 0; j < int(e.Seconds()*100); j++ {
				bar += "#"
			}
			fmt.Printf("  epoch %d: %8v %s\n", i+1, e.Round(1e6), bar)
		}
	}
}
