// Dataloader example: a realistic real-mode training loop — prefetch the
// dataset into a live HVAC deployment (the §IV-C future-work
// pre-population), then iterate shuffled epochs through the public loader
// package, exactly as a PyTorch DataLoader + DistributedSampler would.
//
//	go run ./examples/dataloader
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"hvac"
	"hvac/internal/dataset"
	"hvac/loader"
)

func main() {
	work, err := os.MkdirTemp("", "hvac-dataloader-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Fake PFS dataset: 300 samples, log-normal sizes around 48 KB.
	pfsDir := filepath.Join(work, "pfs")
	spec := dataset.Spec{
		Name: "loaderdemo", TrainFiles: 300, MeanFileSize: 48 << 10,
		SizeSigma: 0.5, PathPrefix: pfsDir,
	}
	paths, err := spec.Materialize(pfsDir, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Two HVAC server instances with LRU eviction.
	var addrs []string
	var servers []*hvac.Server
	for i := 0; i < 2; i++ {
		srv, err := hvac.StartServer(hvac.ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(work, fmt.Sprintf("nvme%d", i)),
			Policy:     hvac.LRUEviction(),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	cli, err := hvac.NewClient(hvac.ClientConfig{Servers: addrs, DatasetDir: pfsDir})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	// Pre-populate the caches before training starts.
	stageStart := time.Now()
	accepted := cli.Prefetch(paths)
	for _, srv := range servers {
		srv.WaitIdle()
	}
	fmt.Printf("prefetch: %d/%d files staged in %v\n",
		accepted, len(paths), time.Since(stageStart).Round(time.Millisecond))

	// Two data-parallel "ranks" sharing the global shuffle.
	const world = 2
	for rank := 0; rank < world; rank++ {
		l, err := loader.New(cli.ReadAll, loader.Config{
			Paths:     paths,
			BatchSize: 16,
			Workers:   4,
			Seed:      2026,
			Rank:      rank,
			World:     world,
		})
		if err != nil {
			log.Fatal(err)
		}
		for epoch := 0; epoch < 2; epoch++ {
			start := time.Now()
			var samples int
			var bytes int64
			err := l.Epoch(epoch, func(b loader.Batch) error {
				for _, d := range b.Data {
					samples++
					bytes += int64(len(d))
				}
				return nil
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("rank %d epoch %d: %3d samples, %5.1f MB in %v\n",
				rank, epoch, samples, float64(bytes)/1e6, time.Since(start).Round(time.Millisecond))
		}
	}

	var hits, misses int64
	for _, srv := range servers {
		st := srv.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	fmt.Printf("\nservers: hits=%d misses=%d (prefetch staged every file exactly once;\n", hits, misses)
	fmt.Println("         every training read was a cache hit)")
	fmt.Printf("server 0 latencies:\n%s\n", servers[0].LatencySummary())
}
