// CosmoFlow example: strong-scaling sweep of the MLPerf-HPC cosmology
// application across Summit node counts — the Fig. 8(c) panel. GPFS
// saturates as the allocation grows; HVAC tracks the XFS-on-NVMe upper
// bound once the cache is warm.
//
//	go run ./examples/cosmoflow
package main

import (
	"fmt"
	"log"

	"hvac"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

func main() {
	model := train.CosmoFlow()
	data := model.Data.Scale(1.0 / 32) // ~16k TFRecord samples of ~2.5 MB
	fmt.Printf("CosmoFlow on %s: %d files, %.1f GB, BS=32, 3 epochs\n\n",
		data.Name, data.TrainFiles, float64(data.TotalTrainBytes())/1e9)
	fmt.Printf("%8s  %10s  %10s  %10s\n", "nodes", "gpfs", "hvac(4x1)", "xfs-nvme")

	for _, nodes := range []int{32, 128, 512, 1024} {
		times := map[string]float64{}
		for _, system := range []string{"gpfs", "hvac(4x1)", "xfs-nvme"} {
			eng := hvac.NewSimEngine()
			ns := hvac.NewNamespace()
			data.Build(ns, false)
			cluster := hvac.NewSimulatedCluster(eng, nodes, ns)
			cluster.RegisterJob(nodes * 2)
			var fsFor func(node, proc int) vfs.FS
			switch system {
			case "gpfs":
				fsFor = cluster.GPFSFS()
			case "hvac(4x1)":
				job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: 4})
				fsFor = job.FS()
			case "xfs-nvme":
				fsFor = cluster.XFSFS()
			}
			res, err := train.Run(eng, train.Config{
				Model: model, Data: data, Nodes: nodes,
				BatchSize: 32, Epochs: 3, Seed: 7,
			}, fsFor)
			if err != nil {
				log.Fatal(err)
			}
			times[system] = res.TrainTime.Seconds()
		}
		fmt.Printf("%8d  %9.2fs  %9.2fs  %9.2fs   (hvac gain over gpfs: %.0f%%)\n",
			nodes, times["gpfs"], times["hvac(4x1)"], times["xfs-nvme"],
			100*(1-times["hvac(4x1)"]/times["gpfs"]))
	}
}
