// Shuffleproof: the Fig. 14 claim, demonstrated end-to-end with a real
// model. A logistic-regression classifier is trained twice with SGD —
// once reading its samples straight from the "PFS" directory, once
// through a live HVAC client/server deployment — using the same per-epoch
// shuffle. The byte streams, loss trajectories and final weights are
// bit-identical: HVAC does not perturb the randomness of SGD.
//
//	go run ./examples/shuffleproof
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"hvac"
	"hvac/internal/sim"
	"hvac/internal/train"
)

const (
	features = 8
	samples  = 400
	epochs   = 5
	lr       = 0.1
)

// sampleFile encodes one training sample: 8 float64 features + 1 label.
func sampleFile(rng *sim.RNG) []byte {
	buf := make([]byte, features*8+1)
	var dot float64
	truth := []float64{1.2, -0.7, 0.4, 0.9, -1.1, 0.3, -0.2, 0.6}
	for f := 0; f < features; f++ {
		x := rng.NormFloat64()
		binary.LittleEndian.PutUint64(buf[f*8:], math.Float64bits(x))
		dot += truth[f] * x
	}
	if dot+0.3*rng.NormFloat64() > 0 {
		buf[features*8] = 1
	}
	return buf
}

func decode(b []byte) (x [features]float64, y float64) {
	for f := 0; f < features; f++ {
		x[f] = math.Float64frombits(binary.LittleEndian.Uint64(b[f*8:]))
	}
	return x, float64(b[features*8])
}

// trainSGD runs logistic-regression SGD reading each sample through read.
func trainSGD(read func(path string) ([]byte, error), paths []string) (w [features]float64, losses []float64) {
	for e := 0; e < epochs; e++ {
		perm := train.NewPerm(sim.NewRNG(uint64(1000+e)), len(paths))
		var epochLoss float64
		for i := range paths {
			raw, err := read(paths[perm.Index(i)])
			if err != nil {
				log.Fatal(err)
			}
			x, y := decode(raw)
			var z float64
			for f := 0; f < features; f++ {
				z += w[f] * x[f]
			}
			p := 1 / (1 + math.Exp(-z))
			epochLoss += -(y*math.Log(p+1e-12) + (1-y)*math.Log(1-p+1e-12))
			for f := 0; f < features; f++ {
				w[f] -= lr * (p - y) * x[f]
			}
		}
		losses = append(losses, epochLoss/float64(len(paths)))
	}
	return w, losses
}

func main() {
	work, err := os.MkdirTemp("", "hvac-shuffleproof-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(work)

	// Materialise the dataset on the "PFS".
	pfsDir := filepath.Join(work, "pfs")
	if err := os.MkdirAll(pfsDir, 0o755); err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRNG(99)
	paths := make([]string, samples)
	for i := range paths {
		paths[i] = filepath.Join(pfsDir, fmt.Sprintf("sample-%04d.bin", i))
		if err := os.WriteFile(paths[i], sampleFile(rng), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	// Run 1: direct PFS reads.
	direct := func(p string) ([]byte, error) { return os.ReadFile(p) }
	wDirect, lossDirect := trainSGD(direct, paths)

	// Run 2: through a live 2-server HVAC deployment.
	var addrs []string
	for i := 0; i < 2; i++ {
		srv, err := hvac.StartServer(hvac.ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(work, fmt.Sprintf("nvme%d", i)),
		})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}
	cli, err := hvac.NewClient(hvac.ClientConfig{Servers: addrs, DatasetDir: pfsDir})
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	wHVAC, lossHVAC := trainSGD(cli.ReadAll, paths)

	fmt.Printf("%-8s %-14s %-14s\n", "epoch", "loss (direct)", "loss (hvac)")
	identical := true
	for e := range lossDirect {
		fmt.Printf("%-8d %-14.8f %-14.8f\n", e+1, lossDirect[e], lossHVAC[e])
		if lossDirect[e] != lossHVAC[e] {
			identical = false
		}
	}
	for f := 0; f < features; f++ {
		if wDirect[f] != wHVAC[f] {
			identical = false
		}
	}
	st := cli.Stats()
	fmt.Printf("\nHVAC served %d opens (%d bytes); fallbacks=%d\n", st.Redirected, st.BytesRead, st.Fallbacks)
	if identical {
		fmt.Println("RESULT: loss curves and final weights are BIT-IDENTICAL —")
		fmt.Println("        HVAC preserves SGD's shuffle exactly (the Fig. 14 claim).")
	} else {
		fmt.Println("RESULT: MISMATCH — HVAC perturbed the training stream!")
		os.Exit(1)
	}
}
