package vfs

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"

	"hvac/internal/sim"
)

func TestNamespace(t *testing.T) {
	ns := NewNamespace()
	ns.Add("/d/a", 100)
	ns.Add("/d/b", 200)
	if ns.Len() != 2 || ns.TotalBytes() != 300 {
		t.Fatalf("len/total = %d/%d", ns.Len(), ns.TotalBytes())
	}
	ns.Add("/d/a", 150) // replace
	if ns.Len() != 2 || ns.TotalBytes() != 350 {
		t.Fatalf("after replace: len/total = %d/%d", ns.Len(), ns.TotalBytes())
	}
	if s, ok := ns.Lookup("/d/a"); !ok || s != 150 {
		t.Fatalf("lookup = %d,%v", s, ok)
	}
	if _, ok := ns.Lookup("/missing"); ok {
		t.Fatal("missing path found")
	}
	paths := ns.Paths()
	if !sort.StringsAreSorted(paths) {
		t.Fatalf("paths not sorted: %v", paths)
	}
}

func TestNamespacePathsCacheInvalidation(t *testing.T) {
	ns := NewNamespace()
	ns.Add("/a", 1)
	_ = ns.Paths()
	ns.Add("/b", 1)
	if got := len(ns.Paths()); got != 2 {
		t.Fatalf("paths after add = %d, want 2", got)
	}
}

func TestHandleTable(t *testing.T) {
	ht := NewHandleTable()
	h1 := ht.Open("/a", 10)
	h2 := ht.Open("/b", 20)
	if h1 == h2 {
		t.Fatal("duplicate handles")
	}
	if p, s, err := ht.Get(h2); err != nil || p != "/b" || s != 20 {
		t.Fatalf("get = %q,%d,%v", p, s, err)
	}
	if err := ht.Close(h1); err != nil {
		t.Fatal(err)
	}
	if err := ht.Close(h1); err == nil {
		t.Fatal("double close should fail")
	}
	if _, _, err := ht.Get(h1); err == nil {
		t.Fatal("get after close should fail")
	}
	if ht.OpenCount() != 1 {
		t.Fatalf("open count = %d, want 1", ht.OpenCount())
	}
}

func TestClampRead(t *testing.T) {
	cases := []struct{ size, off, n, want int64 }{
		{100, 0, 50, 50},
		{100, 50, 100, 50},
		{100, 100, 10, 0},
		{100, 150, 10, 0},
		{100, 0, 0, 0},
		{100, 10, -5, 0},
		{0, 0, 10, 0},
	}
	for _, c := range cases {
		if got := ClampRead(c.size, c.off, c.n); got != c.want {
			t.Fatalf("ClampRead(%d,%d,%d) = %d, want %d", c.size, c.off, c.n, got, c.want)
		}
	}
}

func TestClampReadProperty(t *testing.T) {
	f := func(size, off, n int64) bool {
		size &= 1<<40 - 1
		off &= 1<<40 - 1
		n &= 1<<40 - 1
		got := ClampRead(size, off, n)
		if got < 0 || got > n {
			return false
		}
		return off+got <= size || got == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// memFS is a trivial in-sim FS for exercising ReadFile.
type memFS struct {
	ns *Namespace
	ht *HandleTable
}

func (m *memFS) Name() string { return "mem" }
func (m *memFS) Open(p *sim.Proc, path string) (Handle, int64, error) {
	size, ok := m.ns.Lookup(path)
	if !ok {
		return 0, 0, ErrNotExist
	}
	return m.ht.Open(path, size), size, nil
}
func (m *memFS) ReadAt(p *sim.Proc, h Handle, off, n int64) (int64, error) {
	_, size, err := m.ht.Get(h)
	if err != nil {
		return 0, err
	}
	return ClampRead(size, off, n), nil
}
func (m *memFS) Close(p *sim.Proc, h Handle) error { return m.ht.Close(h) }

func TestReadFileWholeFile(t *testing.T) {
	ns := NewNamespace()
	// Bigger than one 16MB chunk to exercise the loop.
	ns.Add("/big", 40<<20)
	ns.Add("/zero", 0)
	m := &memFS{ns: ns, ht: NewHandleTable()}
	eng := sim.NewEngine()
	eng.Spawn("r", func(p *sim.Proc) {
		n, err := ReadFile(p, m, "/big")
		if err != nil || n != 40<<20 {
			t.Errorf("ReadFile big = %d,%v", n, err)
		}
		n, err = ReadFile(p, m, "/zero")
		if err != nil || n != 0 {
			t.Errorf("ReadFile zero = %d,%v", n, err)
		}
		if _, err = ReadFile(p, m, "/nope"); err == nil {
			t.Error("ReadFile missing should fail")
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if m.ht.OpenCount() != 0 {
		t.Fatalf("%d leaked handles", m.ht.OpenCount())
	}
}

func TestNamespaceScale(t *testing.T) {
	ns := NewNamespace()
	for i := 0; i < 100000; i++ {
		ns.Add(fmt.Sprintf("/data/f%07d", i), int64(i))
	}
	if ns.Len() != 100000 {
		t.Fatalf("len = %d", ns.Len())
	}
	if len(ns.Paths()) != 100000 {
		t.Fatal("paths incomplete")
	}
}
