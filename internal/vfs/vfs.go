// Package vfs defines the simulated file-system interface shared by every
// storage backend in the simulated substrate (GPFS, XFS-on-NVMe, and the
// HVAC cache), plus the Namespace type that holds a dataset's file
// metadata (path -> size).
//
// The interface mirrors the POSIX transaction the paper's workloads
// perform — <open, read, close> (§II-C) — in blocking style against
// virtual time.
package vfs

import (
	"errors"
	"fmt"
	"sort"

	"hvac/internal/sim"
)

// Handle identifies an open file within one FS instance.
type Handle int64

// ErrNotExist is returned when opening a path absent from the namespace.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrBadHandle is returned for operations on unknown or closed handles.
var ErrBadHandle = errors.New("vfs: bad file handle")

// FS is a simulated file system. All calls consume virtual time on p.
type FS interface {
	// Open opens path and returns a handle and the file size.
	Open(p *sim.Proc, path string) (Handle, int64, error)
	// ReadAt reads n bytes at offset off, returning the bytes actually
	// read (short at EOF).
	ReadAt(p *sim.Proc, h Handle, off, n int64) (int64, error)
	// Close releases the handle.
	Close(p *sim.Proc, h Handle) error
	// Name identifies the backend in reports ("gpfs", "xfs-nvme", "hvac").
	Name() string
}

// ReadFile performs the full <open, read-all, close> transaction that DL
// data loaders issue per sample file (§III-F observed exactly this
// pattern), returning the file size.
func ReadFile(p *sim.Proc, fs FS, path string) (int64, error) {
	h, size, err := fs.Open(p, path)
	if err != nil {
		return 0, err
	}
	var off int64
	const chunk = 16 << 20 // profiled ResNet50 issued single 16MB reads
	for off < size {
		n := size - off
		if n > chunk {
			n = chunk
		}
		got, err := fs.ReadAt(p, h, off, n)
		if err != nil {
			_ = fs.Close(p, h)
			return off, err
		}
		off += got
		if got == 0 {
			break
		}
	}
	if err := fs.Close(p, h); err != nil {
		return off, err
	}
	return off, nil
}

// Namespace is an immutable-ish set of files with sizes, the simulated
// equivalent of a dataset directory tree on the PFS.
type Namespace struct {
	sizes map[string]int64
	paths []string // sorted cache; nil when dirty
	total int64
}

// NewNamespace returns an empty namespace.
func NewNamespace() *Namespace {
	return &Namespace{sizes: make(map[string]int64)}
}

// Add inserts or replaces a file.
func (ns *Namespace) Add(path string, size int64) {
	if old, ok := ns.sizes[path]; ok {
		ns.total -= old
	} else {
		ns.paths = nil
	}
	ns.sizes[path] = size
	ns.total += size
}

// Lookup returns the size of path.
func (ns *Namespace) Lookup(path string) (int64, bool) {
	s, ok := ns.sizes[path]
	return s, ok
}

// Len reports the number of files.
func (ns *Namespace) Len() int { return len(ns.sizes) }

// TotalBytes reports the sum of all file sizes.
func (ns *Namespace) TotalBytes() int64 { return ns.total }

// Paths returns all paths in sorted (deterministic) order. The returned
// slice is shared; callers must not modify it.
func (ns *Namespace) Paths() []string {
	if ns.paths == nil {
		ns.paths = make([]string, 0, len(ns.sizes))
		for p := range ns.sizes {
			ns.paths = append(ns.paths, p)
		}
		sort.Strings(ns.paths)
	}
	return ns.paths
}

// HandleTable tracks open handles for an FS implementation.
type HandleTable struct {
	next Handle
	open map[Handle]openFile
}

type openFile struct {
	path string
	size int64
}

// NewHandleTable returns an empty table.
func NewHandleTable() *HandleTable {
	return &HandleTable{open: make(map[Handle]openFile)}
}

// Open allocates a handle for path/size.
func (t *HandleTable) Open(path string, size int64) Handle {
	t.next++
	t.open[t.next] = openFile{path: path, size: size}
	return t.next
}

// Get returns the path and size for h.
func (t *HandleTable) Get(h Handle) (path string, size int64, err error) {
	f, ok := t.open[h]
	if !ok {
		return "", 0, fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	return f.path, f.size, nil
}

// Close releases h.
func (t *HandleTable) Close(h Handle) error {
	if _, ok := t.open[h]; !ok {
		return fmt.Errorf("%w: %d", ErrBadHandle, h)
	}
	delete(t.open, h)
	return nil
}

// OpenCount reports the number of live handles.
func (t *HandleTable) OpenCount() int { return len(t.open) }

// ClampRead bounds a read request to the file size, returning the byte
// count actually transferred.
func ClampRead(size, off, n int64) int64 {
	if off >= size || n <= 0 {
		return 0
	}
	if off+n > size {
		return size - off
	}
	return n
}
