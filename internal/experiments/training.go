package experiments

import (
	"fmt"
	"sync"

	"hvac/internal/metrics"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

func fig8Nodes(opt Options) []int {
	if opt.Full {
		return []int{32, 128, 512, 1024}
	}
	return []int{32, 256, 1024}
}

// fig8Data runs the Fig. 8 sweep once per Options and memoises it so Fig. 8
// and Fig. 9 (which normalises the same data) share the work.
type fig8Key struct {
	full bool
	seed uint64
}

var (
	fig8Mu    sync.Mutex
	fig8Cache = map[fig8Key]map[string]map[int]map[string]float64{}
)

// fig8Results returns trainTime[model][nodes][system] in seconds.
func fig8Results(opt Options) map[string]map[int]map[string]float64 {
	key := fig8Key{full: opt.Full, seed: opt.Seed}
	fig8Mu.Lock()
	defer fig8Mu.Unlock()
	if r, ok := fig8Cache[key]; ok {
		return r
	}
	out := map[string]map[int]map[string]float64{}
	for _, a := range apps() {
		epochs := a.epochsShort
		if opt.Full {
			epochs = a.epochsFull
		}
		byNodes := map[int]map[string]float64{}
		for _, nodes := range fig8Nodes(opt) {
			bySys := map[string]float64{}
			for _, sys := range Systems() {
				cfg := train.Config{
					Model:     a.model,
					Data:      a.data(opt),
					Nodes:     nodes,
					BatchSize: a.batch,
					Epochs:    epochs,
					Seed:      opt.Seed,
				}
				res := runTraining(opt, sys, cfg)
				bySys[sys.Name] = res.TrainTime.Seconds()
				opt.progress("fig8 %s nodes=%d %s: %.1fs", a.model.Name, nodes, sys.Name, res.TrainTime.Seconds())
			}
			byNodes[nodes] = bySys
		}
		out[a.model.Name] = byNodes
	}
	fig8Cache[key] = out
	return out
}

// Fig8 regenerates the training-time-vs-nodes panels for the four
// applications and five systems.
func Fig8(opt Options) []*metrics.Table {
	data := fig8Results(opt)
	var tables []*metrics.Table
	for _, a := range apps() {
		epochs := a.epochsShort
		if opt.Full {
			epochs = a.epochsFull
		}
		t := metrics.NewTable(
			fmt.Sprintf("Fig. 8: %s on %s [BS=%d, Eps=%d, nProcs/node=2] (minutes)",
				a.model.Name, a.data(opt).Name, a.batch, epochs),
			"nodes", "gpfs", "hvac(1x1)", "hvac(2x1)", "hvac(4x1)", "xfs-nvme")
		for _, nodes := range fig8Nodes(opt) {
			row := data[a.model.Name][nodes]
			t.AddFloats(fmt.Sprint(nodes), 3,
				minutes(row["gpfs"]), minutes(row["hvac(1x1)"]), minutes(row["hvac(2x1)"]),
				minutes(row["hvac(4x1)"]), minutes(row["xfs-nvme"]))
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig9 normalises the Fig. 8 data: (a) improvement over GPFS, (b) overhead
// against the XFS-on-NVMe upper bound. Paper headline: ~25% average gain
// over GPFS; 25%/14%/9% overhead ladder for 1x1/2x1/4x1.
func Fig9(opt Options) []*metrics.Table {
	data := fig8Results(opt)
	variants := []string{"hvac(1x1)", "hvac(2x1)", "hvac(4x1)"}

	gain := metrics.NewTable("Fig. 9a: improvement over GPFS, 1 - t/t_gpfs (all apps averaged)",
		"nodes", "hvac(1x1)", "hvac(2x1)", "hvac(4x1)")
	over := metrics.NewTable("Fig. 9b: overhead vs XFS-on-NVMe, t/t_xfs - 1 (all apps averaged)",
		"nodes", "hvac(1x1)", "hvac(2x1)", "hvac(4x1)")
	sumGain := map[string]*metrics.Sample{}
	sumOver := map[string]*metrics.Sample{}
	for _, v := range variants {
		sumGain[v] = &metrics.Sample{}
		sumOver[v] = &metrics.Sample{}
	}
	for _, nodes := range fig8Nodes(opt) {
		var gRow, oRow []float64
		for _, v := range variants {
			var g, o metrics.Sample
			for _, a := range apps() {
				row := data[a.model.Name][nodes]
				g.Add(1 - row[v]/row["gpfs"])
				o.Add(row[v]/row["xfs-nvme"] - 1)
			}
			gRow = append(gRow, g.Mean())
			oRow = append(oRow, o.Mean())
			sumGain[v].Add(g.Mean())
			sumOver[v].Add(o.Mean())
		}
		gain.AddFloats(fmt.Sprint(nodes), 3, gRow...)
		over.AddFloats(fmt.Sprint(nodes), 3, oRow...)
	}
	gain.AddFloats("mean", 3, sumGain["hvac(1x1)"].Mean(), sumGain["hvac(2x1)"].Mean(), sumGain["hvac(4x1)"].Mean())
	over.AddFloats("mean", 3, sumOver["hvac(1x1)"].Mean(), sumOver["hvac(2x1)"].Mean(), sumOver["hvac(4x1)"].Mean())
	return []*metrics.Table{gain, over}
}

// Fig10 regenerates the epoch-count sweep for ResNet50 and CosmoFlow at
// 512 nodes.
func Fig10(opt Options) []*metrics.Table {
	epochsList := []int{2, 4, 8}
	if opt.Full {
		epochsList = []int{2, 4, 8, 16, 32}
	}
	nodes := 512
	var tables []*metrics.Table
	for _, a := range apps() {
		if a.model.Name != "resnet50" && a.model.Name != "cosmoflow" {
			continue
		}
		t := metrics.NewTable(
			fmt.Sprintf("Fig. 10: %s [BS=%d, nNodes=%d] training time vs epochs (minutes)", a.model.Name, a.batch, nodes),
			"epochs", "gpfs", "hvac(1x1)", "hvac(2x1)", "hvac(4x1)", "xfs-nvme")
		for _, eps := range epochsList {
			row := map[string]float64{}
			for _, sys := range Systems() {
				cfg := train.Config{
					Model: a.model, Data: a.data(opt), Nodes: nodes,
					BatchSize: a.batch, Epochs: eps, Seed: opt.Seed,
				}
				row[sys.Name] = runTraining(opt, sys, cfg).TrainTime.Seconds()
			}
			t.AddFloats(fmt.Sprint(eps), 3,
				minutes(row["gpfs"]), minutes(row["hvac(1x1)"]), minutes(row["hvac(2x1)"]),
				minutes(row["hvac(4x1)"]), minutes(row["xfs-nvme"]))
			opt.progress("fig10 %s eps=%d done", a.model.Name, eps)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig11 regenerates the per-epoch analysis [BS=4, Eps=10, nNodes=512]:
// first epoch, best random (non-first) epoch, and average epoch time. The
// paper's findings: epoch 1 is GPFS-bound for every variant; cached
// epochs run ~3x faster than GPFS on HVAC(4x1).
func Fig11(opt Options) []*metrics.Table {
	a := apps()[0] // ResNet50
	nodes := 512
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 11: per-epoch training time [BS=4, Eps=10, nNodes=%d] (seconds)", nodes),
		"system", "epoch-1", "R_epoch", "avg_epoch")
	for _, sys := range Systems() {
		cfg := train.Config{
			Model: a.model, Data: a.data(opt), Nodes: nodes,
			BatchSize: 4, Epochs: 10, Seed: opt.Seed,
		}
		res := runTraining(opt, sys, cfg)
		first := res.EpochTimes[0].Seconds()
		best := res.EpochTimes[1].Seconds()
		var sum float64
		for _, e := range res.EpochTimes {
			sum += e.Seconds()
		}
		for _, e := range res.EpochTimes[1:] {
			if s := e.Seconds(); s < best {
				best = s
			}
		}
		t.AddFloats(sys.Name, 3, first, best, sum/float64(len(res.EpochTimes)))
		opt.progress("fig11 %s done", sys.Name)
	}
	return []*metrics.Table{t}
}

// Fig12 regenerates the batch-size sweep for TResNet_M and DeepCAM at 512
// nodes. The paper's conclusion: batch size barely moves training time on
// any of the systems.
func Fig12(opt Options) []*metrics.Table {
	batches := []int{4, 16, 64, 128}
	nodes := 512
	epochs := 2
	if opt.Full {
		epochs = 10
	}
	var tables []*metrics.Table
	for _, a := range apps() {
		if a.model.Name != "tresnet_m" && a.model.Name != "deepcam" {
			continue
		}
		t := metrics.NewTable(
			fmt.Sprintf("Fig. 12: %s [Eps=%d, nNodes=%d] training time vs batch size (minutes)", a.model.Name, epochs, nodes),
			"batch", "gpfs", "hvac(1x1)", "hvac(2x1)", "hvac(4x1)", "xfs-nvme")
		for _, bs := range batches {
			row := map[string]float64{}
			for _, sys := range Systems() {
				cfg := train.Config{
					Model: a.model, Data: a.data(opt), Nodes: nodes,
					BatchSize: bs, Epochs: epochs, Seed: opt.Seed,
				}
				row[sys.Name] = runTraining(opt, sys, cfg).TrainTime.Seconds()
			}
			t.AddFloats(fmt.Sprint(bs), 3,
				minutes(row["gpfs"]), minutes(row["hvac(1x1)"]), minutes(row["hvac(2x1)"]),
				minutes(row["hvac(4x1)"]), minutes(row["xfs-nvme"]))
			opt.progress("fig12 %s bs=%d done", a.model.Name, bs)
		}
		tables = append(tables, t)
	}
	return tables
}

// Fig13 regenerates the cache-locality study on HVAC(1x1): the fraction of
// the dataset resident on the local node versus remote nodes is forced,
// and training time barely moves — Mercury-over-IB makes remote NVMe
// nearly as close as local NVMe.
func Fig13(opt Options) []*metrics.Table {
	a := apps()[0] // ResNet50, BS=80 per the figure caption
	nodes := 64
	if opt.Full {
		nodes = 512
	}
	splits := []int{100, 75, 50, 25, 0} // L% local
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 13: HVAC(1x1) cache locality [BS=80, nNodes=%d] (minutes)", nodes),
		"L%/R%", "train time", "local opens", "remote opens")
	for _, local := range splits {
		eng := sim.NewEngine()
		data := a.data(opt)
		ns := vfs.NewNamespace()
		data.Build(ns, false)
		cluster := summit.NewCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: 1, EvictionSeed: opt.Seed})
		// Force the local/remote split per client: a file is "local" when
		// its hash bucket falls below L, else it homes on a remote node.
		fsFor := func(node, proc int) vfs.FS {
			cl := job.Client(node)
			cl.SetPlacement(func(path string) int {
				h := placementHash(path)
				if int(h%100) < local {
					return node
				}
				other := int(h/100) % (nodes - 1)
				if other >= node {
					other++
				}
				return other
			})
			return cl
		}
		cfg := train.Config{
			Model: a.model, Data: data, Nodes: nodes,
			BatchSize: 80, Epochs: 3, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, fsFor)
		if err != nil {
			panic(err)
		}
		var localOpens, remoteOpens int64
		for n := 0; n < nodes; n++ {
			st := job.Client(n).Stats()
			localOpens += st.LocalOpens
			remoteOpens += st.RemoteOpens
		}
		t.AddRow(fmt.Sprintf("%d/%d", local, 100-local),
			fmt.Sprintf("%.3f", minutes(res.TrainTime.Seconds())),
			fmt.Sprint(localOpens), fmt.Sprint(remoteOpens))
		opt.progress("fig13 L=%d done", local)
	}
	return []*metrics.Table{t}
}

func placementHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Fig14 regenerates the accuracy study: ResNet50 trained through GPFS and
// through HVAC with the same seed reaches identical top-1/top-5 accuracy
// at every iteration (HVAC does not perturb the shuffle), and HVAC reaches
// each accuracy milestone earlier in wall-clock time.
func Fig14(opt Options) []*metrics.Table {
	a := apps()[0]
	nodes := 64
	epochs := 6
	if opt.Full {
		nodes = 512
		epochs = 10
	}
	run := func(sys System) *train.Result {
		cfg := train.Config{
			Model: a.model, Data: a.data(opt), Nodes: nodes,
			BatchSize: a.batch, Epochs: epochs, Seed: opt.Seed,
			AccuracyEveryIters: 2,
		}
		return runTraining(opt, sys, cfg)
	}
	gp := run(System{Name: "gpfs"})
	hv := run(System{Name: "hvac(4x1)", Instances: 4})

	curve := metrics.NewTable(
		fmt.Sprintf("Fig. 14: ResNet50 accuracy vs iterations [nNodes=%d, Eps=%d]", nodes, epochs),
		"iteration", "gpfs top1", "hvac top1", "gpfs top5", "hvac top5", "delta")
	step := len(gp.Accuracy) / 8
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(gp.Accuracy) && i < len(hv.Accuracy); i += step {
		g, h := gp.Accuracy[i], hv.Accuracy[i]
		delta := g.Top1 - h.Top1
		if delta < 0 {
			delta = -delta
		}
		curve.AddFloats(fmt.Sprint(g.Iteration), 4, g.Top1, h.Top1, g.Top5, h.Top5, delta)
	}

	// Milestones are fractions of the accuracy actually reached in this
	// (scaled) run, so the table is meaningful at any scale.
	final := 0.0
	if len(gp.Accuracy) > 0 {
		final = gp.Accuracy[len(gp.Accuracy)-1].Top1
	}
	milestones := metrics.NewTable(
		"Fig. 14 (wall clock): time to reach top-1 accuracy milestones (minutes)",
		"top1 >=", "gpfs", "hvac(4x1)")
	for _, frac := range []float64{0.25, 0.50, 0.75} {
		target := frac * final
		gt := timeToAccuracy(gp, target, epochs)
		ht := timeToAccuracy(hv, target, epochs)
		milestones.AddFloats(fmt.Sprintf("%.4f", target), 3, minutes(gt), minutes(ht))
	}
	return []*metrics.Table{curve, milestones}
}

// timeToAccuracy estimates when a run first reached the top-1 target, by
// mapping the accuracy curve's iteration to wall-clock via epoch times.
func timeToAccuracy(res *train.Result, target float64, epochs int) float64 {
	totalIters := 0
	if len(res.Accuracy) > 0 {
		totalIters = res.Accuracy[len(res.Accuracy)-1].Iteration
	}
	if totalIters == 0 {
		return 0
	}
	for _, pt := range res.Accuracy {
		if pt.Top1 >= target {
			// Interpolate wall time from cumulative epoch durations.
			frac := float64(pt.Iteration) / float64(totalIters)
			return res.TrainTime.Seconds() * frac
		}
	}
	return res.TrainTime.Seconds()
}

// AblationEviction compares eviction policies under cache pressure: the
// per-instance capacity holds only part of the dataset, so warm epochs
// keep missing; the policy decides how often.
func AblationEviction(opt Options) []*metrics.Table {
	return ablationEvictionTables(opt)
}

// AblationInstances sweeps the paper's i in HVAC(i×1) further than the
// evaluation does (1..8) and reports mover utilisation alongside time.
func AblationInstances(opt Options) []*metrics.Table {
	return ablationInstancesTables(opt)
}

// AblationReplication exercises the §III-H failover design: with dead
// servers in the allocation, replicas keep reads on NVMe; without them,
// reads fall back to GPFS.
func AblationReplication(opt Options) []*metrics.Table {
	return ablationReplicationTables(opt)
}
