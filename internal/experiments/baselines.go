package experiments

import (
	"fmt"

	"hvac/internal/baselines"
	"hvac/internal/metrics"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

// Baselines compares HVAC against the §II-D related-work systems the
// paper argues against — an LPCC-style node-local cache (no cross-node
// sharing) and a BeeOND-style transient shared FS (fast data path, but a
// job-wide metadata service) — alongside the paper's own baselines.
func Baselines(opt Options) []*metrics.Table {
	a := apps()[0] // ResNet50
	data := a.data(opt)
	epochs := 4
	if opt.Full {
		epochs = 10
	}
	nodeCounts := []int{32, 256}
	if opt.Full {
		nodeCounts = []int{32, 256, 1024}
	}
	t := metrics.NewTable(
		fmt.Sprintf("Related-work baselines: %s [BS=%d, Eps=%d] training time (minutes)", data.Name, a.batch, epochs),
		"nodes", "gpfs", "lpcc", "beeond", "hvac(4x1)", "xfs-nvme")
	gpfsTraffic := metrics.NewTable(
		"Related-work baselines: total bytes pulled from GPFS (GB)",
		"nodes", "gpfs", "lpcc", "hvac(4x1)")

	for _, nodes := range nodeCounts {
		times := map[string]float64{}
		traffic := map[string]float64{}
		for _, system := range []string{"gpfs", "lpcc", "beeond", "hvac(4x1)", "xfs-nvme"} {
			eng := sim.NewEngine()
			ns := vfs.NewNamespace()
			data.Build(ns, false)
			cluster := summit.NewCluster(eng, nodes, ns)
			cluster.RegisterJob(nodes * 2)
			var fsFor func(node, proc int) vfs.FS
			switch system {
			case "gpfs":
				fsFor = cluster.GPFSFS()
			case "lpcc":
				fleet := baselines.NewLPCCFleet(eng, cluster.Fabric, cluster.GPFS,
					cluster.Devices, cluster.Spec.NVMe.Capacity, opt.Seed)
				fsFor = baselines.FleetFS(fleet)
			case "beeond":
				b := baselines.NewBeeOND(eng, cluster.Fabric, cluster.Devices, ns,
					baselines.DefaultBeeONDConfig())
				fsFor = b.ClientFS()
			case "hvac(4x1)":
				job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: 4, EvictionSeed: opt.Seed})
				fsFor = job.FS()
			case "xfs-nvme":
				fsFor = cluster.XFSFS()
			}
			res, err := train.Run(eng, train.Config{
				Model: a.model, Data: data, Nodes: nodes,
				BatchSize: a.batch, Epochs: epochs, Seed: opt.Seed,
			}, fsFor)
			if err != nil {
				panic(err)
			}
			times[system] = res.TrainTime.Seconds()
			_, _, bytes := cluster.GPFS.Stats()
			traffic[system] = float64(bytes) / 1e9
			opt.progress("baselines %s nodes=%d done (%.1fs)", system, nodes, times[system])
		}
		t.AddFloats(fmt.Sprint(nodes), 3,
			minutes(times["gpfs"]), minutes(times["lpcc"]), minutes(times["beeond"]),
			minutes(times["hvac(4x1)"]), minutes(times["xfs-nvme"]))
		gpfsTraffic.AddFloats(fmt.Sprint(nodes), 2,
			traffic["gpfs"], traffic["lpcc"], traffic["hvac(4x1)"])
	}
	return []*metrics.Table{t, gpfsTraffic}
}
