// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) on the simulated Summit substrate, plus the ablation
// studies called out in DESIGN.md. Each experiment produces
// metrics.Tables whose rows/series mirror what the paper plots.
//
// Two operating points exist: the default "scaled" mode shrinks datasets
// and epoch counts (factors recorded in each table's title) so the whole
// suite runs in minutes on a laptop, and Full mode uses paper-scale node
// counts and epochs with moderately scaled datasets. Scaling the dataset
// shortens epochs but does not move the contention mechanisms, which
// depend on request *rates* (procs x per-proc demand), so the shapes —
// who wins, roughly by how much, where GPFS saturates — are preserved.
package experiments

import (
	"fmt"
	"io"

	"hvac/internal/dataset"
	"hvac/internal/metrics"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

// Options controls an experiment run.
type Options struct {
	// Full selects paper-scale node counts and epochs.
	Full bool
	// Seed drives all randomness; equal seeds replay exactly.
	Seed uint64
	// Progress, when non-nil, receives one line per completed
	// configuration.
	Progress io.Writer
}

func (o Options) progress(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	// ID is the registry key ("fig8", "tab1", "ablation-eviction", ...).
	ID string
	// Title describes the artefact.
	Title string
	// Run executes it and returns the regenerated tables.
	Run func(Options) []*metrics.Table
}

// All returns every experiment in paper order, ablations last.
func All() []Experiment {
	return []Experiment{
		{ID: "tab1", Title: "Table I: Summit compute-node specification", Run: Table1},
		{ID: "fig3", Title: "Fig. 3: MDTest 32KB open-read-close transactions/s", Run: Fig3},
		{ID: "fig4", Title: "Fig. 4: MDTest 8MB open-read-close transactions/s", Run: Fig4},
		{ID: "fig8", Title: "Fig. 8: training time vs nodes, four applications", Run: Fig8},
		{ID: "fig9", Title: "Fig. 9: gain vs GPFS and overhead vs XFS-on-NVMe", Run: Fig9},
		{ID: "fig10", Title: "Fig. 10: training time vs epochs", Run: Fig10},
		{ID: "fig11", Title: "Fig. 11: first/random/average epoch analysis", Run: Fig11},
		{ID: "fig12", Title: "Fig. 12: training time vs batch size", Run: Fig12},
		{ID: "fig13", Title: "Fig. 13: cache locality split (L%/R%)", Run: Fig13},
		{ID: "fig14", Title: "Fig. 14: ResNet50 accuracy, GPFS vs HVAC", Run: Fig14},
		{ID: "fig15", Title: "Fig. 15: per-server file distribution vs ideal CDF", Run: Fig15},
		{ID: "bandwidth", Title: "§II-C: aggregate NVMe vs GPFS bandwidth", Run: AggregateBandwidth},
		{ID: "ablation-placement", Title: "Ablation: placement policies (balance, reshuffle)", Run: AblationPlacement},
		{ID: "ablation-eviction", Title: "Ablation: eviction policies under cache pressure", Run: AblationEviction},
		{ID: "ablation-instances", Title: "Ablation: server instances per node", Run: AblationInstances},
		{ID: "ablation-replication", Title: "Ablation: replication factor and failover", Run: AblationReplication},
		{ID: "ablation-prefetch", Title: "Ablation: cache pre-population vs cold first epoch (§IV-C future work)", Run: AblationPrefetch},
		{ID: "ablation-segments", Title: "Ablation: segment-level caching under skewed file sizes (§III-E)", Run: AblationSegments},
		{ID: "baselines", Title: "Related work (§II-D): LPCC and BeeOND baselines vs HVAC", Run: Baselines},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// System identifies one of the compared deployments (§IV-A3).
type System struct {
	// Name is the reporting label.
	Name string
	// Instances is the HVAC i in i×1; 0 means not HVAC.
	Instances int
}

// Systems returns the paper's comparison set: GPFS, the three HVAC
// variants, and the XFS-on-NVMe upper bound.
func Systems() []System {
	return []System{
		{Name: "gpfs"},
		{Name: "hvac(1x1)", Instances: 1},
		{Name: "hvac(2x1)", Instances: 2},
		{Name: "hvac(4x1)", Instances: 4},
		{Name: "xfs-nvme", Instances: -1},
	}
}

// app pairs a model with the experiment's dataset scaling.
type app struct {
	model       train.Model
	scaled      float64 // dataset factor in scaled mode
	full        float64 // dataset factor in Full mode
	batch       int
	epochsShort int
	epochsFull  int
}

func apps() []app {
	return []app{
		{model: train.ResNet50(), scaled: 1.0 / 256, full: 1.0 / 64, batch: 80, epochsShort: 4, epochsFull: 10},
		{model: train.TResNetM(), scaled: 1.0 / 256, full: 1.0 / 64, batch: 80, epochsShort: 4, epochsFull: 10},
		{model: train.CosmoFlow(), scaled: 1.0 / 32, full: 1.0 / 8, batch: 32, epochsShort: 4, epochsFull: 10},
		{model: train.DeepCAM(), scaled: 1.0 / 8, full: 1.0 / 2, batch: 8, epochsShort: 4, epochsFull: 10},
	}
}

func (a app) data(opt Options) dataset.Spec {
	f := a.scaled
	if opt.Full {
		f = a.full
	}
	return a.model.Data.Scale(f)
}

// runTraining executes one (system, config) training run on a fresh
// simulated cluster and returns the result.
func runTraining(opt Options, sys System, cfg train.Config) *train.Result {
	eng := sim.NewEngine()
	ns := vfs.NewNamespace()
	data := cfg.Data
	data.Build(ns, false)
	cluster := summit.NewCluster(eng, cfg.Nodes, ns)
	procs := cfg.Nodes * max(cfg.ProcsPerNode, 2)
	cluster.RegisterJob(procs)

	var fsFor func(node, proc int) vfs.FS
	switch {
	case sys.Instances > 0:
		job := cluster.StartHVAC(summit.HVACOptions{
			InstancesPerNode: sys.Instances,
			EvictionSeed:     opt.Seed,
		})
		fsFor = job.FS()
	case sys.Instances < 0:
		fsFor = cluster.XFSFS()
	default:
		fsFor = cluster.GPFSFS()
	}
	res, err := train.Run(eng, cfg, fsFor)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s run failed: %v", sys.Name, err))
	}
	if res.ReadErrors > 0 {
		panic(fmt.Sprintf("experiments: %s run had %d read errors", sys.Name, res.ReadErrors))
	}
	return res
}

// minutes formats a duration column in minutes as the paper's Fig. 8 does.
func minutes(d float64) float64 { return d / 60 }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// cdfSummary condenses a per-server count distribution the way Fig. 15's
// CDF reads: coefficient of variation plus min/max relative to the mean.
func cdfSummary(counts []int) (cv, minRatio, maxRatio float64) {
	var s metrics.Sample
	for _, c := range counts {
		s.Add(float64(c))
	}
	mean := s.Mean()
	if mean == 0 {
		return 0, 0, 0
	}
	return s.CV(), s.Min() / mean, s.Max() / mean
}

// placementCounts places n synthetic ImageNet-style names over servers.
func placementCounts(pol place.Policy, files, servers int) []int {
	counts := make([]int, servers)
	for i := 0; i < files; i++ {
		counts[pol.Place(fmt.Sprintf("/gpfs/alpine/imagenet21k/train/%07d.rec", i), servers)]++
	}
	return counts
}
