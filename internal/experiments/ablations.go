package experiments

import (
	"fmt"

	"hvac/internal/cachestore"
	"hvac/internal/dataset"
	"hvac/internal/metrics"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/train"
	"hvac/internal/vfs"
)

// ablationEvictionTables runs ResNet50 training with per-instance cache
// capacity covering only a fraction of the dataset shard, comparing the
// paper's random eviction with LRU, FIFO and CLOCK.
func ablationEvictionTables(opt Options) []*metrics.Table {
	a := apps()[0]
	nodes := 16
	epochs := 4
	data := a.data(opt)
	// Each of the nodes instances homes ~1/nodes of the dataset; give it
	// room for half its share so every warm epoch still evicts.
	share := data.TotalTrainBytes() / int64(nodes)
	capacity := share / 2

	policies := map[string]func(seed uint64) cachestore.Policy{
		"random": func(seed uint64) cachestore.Policy { return cachestore.NewRandom(seed) },
		"lru":    func(uint64) cachestore.Policy { return cachestore.NewLRU() },
		"fifo":   func(uint64) cachestore.Policy { return cachestore.NewFIFO() },
		"clock":  func(uint64) cachestore.Policy { return cachestore.NewClock() },
	}
	order := []string{"random", "lru", "fifo", "clock"}

	t := metrics.NewTable(
		fmt.Sprintf("Ablation: eviction policy under pressure (capacity = 50%% of per-server share, %s, %d nodes, %d epochs)",
			data.Name, nodes, epochs),
		"policy", "train time (min)", "GPFS re-fetches", "evictions", "hit rate")
	for _, name := range order {
		mk := policies[name]
		eng := sim.NewEngine()
		ns := vfs.NewNamespace()
		data.Build(ns, false)
		cluster := summit.NewCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{
			InstancesPerNode:    1,
			EvictionSeed:        opt.Seed,
			Eviction:            mk,
			CapacityPerInstance: capacity,
		})
		cfg := train.Config{
			Model: a.model, Data: data, Nodes: nodes,
			BatchSize: a.batch, Epochs: epochs, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, job.FS())
		if err != nil {
			panic(err)
		}
		st := job.TotalStats()
		refetches := st.Misses - int64(data.TrainFiles)
		hitRate := float64(st.Hits) / float64(st.Hits+st.Misses)
		t.AddRow(name,
			fmt.Sprintf("%.3f", minutes(res.TrainTime.Seconds())),
			fmt.Sprint(refetches), fmt.Sprint(st.Evictions),
			fmt.Sprintf("%.4f", hitRate))
		opt.progress("ablation-eviction %s done", name)
	}
	return []*metrics.Table{t}
}

// ablationInstancesTables sweeps instances per node beyond the paper's
// 1/2/4 and reports data-mover utilisation, the mechanism behind the
// Fig. 9b ladder.
func ablationInstancesTables(opt Options) []*metrics.Table {
	a := apps()[0]
	nodes := 128
	if opt.Full {
		nodes = 512
	}
	data := a.data(opt)
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: HVAC instances per node (%s, %d nodes, 3 epochs)", data.Name, nodes),
		"instances", "train time (min)", "epoch-1 (s)", "warm epoch (s)", "max mover util")
	for _, inst := range []int{1, 2, 4, 8} {
		eng := sim.NewEngine()
		ns := vfs.NewNamespace()
		data.Build(ns, false)
		cluster := summit.NewCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: inst, EvictionSeed: opt.Seed})
		cfg := train.Config{
			Model: a.model, Data: data, Nodes: nodes,
			BatchSize: a.batch, Epochs: 3, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, job.FS())
		if err != nil {
			panic(err)
		}
		var maxUtil float64
		for _, s := range job.Servers {
			if u := s.MoverUtilization(); u > maxUtil {
				maxUtil = u
			}
		}
		warm := res.EpochTimes[len(res.EpochTimes)-1]
		t.AddFloats(fmt.Sprint(inst), 3,
			minutes(res.TrainTime.Seconds()), res.EpochTimes[0].Seconds(),
			warm.Seconds(), maxUtil)
		opt.progress("ablation-instances i=%d done", inst)
	}
	return []*metrics.Table{t}
}

// AblationPrefetch implements and evaluates the paper's future work
// (§IV-C): pre-populating the HVAC cache before training removes the
// first-epoch overhead, at the cost of an explicit staging phase.
func AblationPrefetch(opt Options) []*metrics.Table {
	a := apps()[0]
	nodes := 128
	if opt.Full {
		nodes = 512
	}
	data := a.data(opt)
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: prefetch pre-population, HVAC(1x1) (%s, %d nodes, 4 epochs)", data.Name, nodes),
		"variant", "stage (s)", "epoch-1 (s)", "warm epoch (s)", "train total (min)")
	for _, prewarm := range []bool{false, true} {
		eng := sim.NewEngine()
		ns := vfs.NewNamespace()
		data.Build(ns, false)
		cluster := summit.NewCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{InstancesPerNode: 1, EvictionSeed: opt.Seed})
		var stage float64
		if prewarm {
			d, err := job.Prewarm()
			if err != nil {
				panic(err)
			}
			stage = d.Seconds()
		}
		cfg := train.Config{
			Model: a.model, Data: data, Nodes: nodes,
			BatchSize: a.batch, Epochs: 4, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, job.FS())
		if err != nil {
			panic(err)
		}
		name := "cold (paper)"
		if prewarm {
			name = "prefetched"
		}
		warm := res.EpochTimes[len(res.EpochTimes)-1]
		t.AddFloats(name, 3, stage, res.EpochTimes[0].Seconds(), warm.Seconds(),
			minutes(res.TrainTime.Seconds()))
		opt.progress("ablation-prefetch prewarm=%v done", prewarm)
	}
	return []*metrics.Table{t}
}

// AblationSegments evaluates segment-level caching (§III-E's suggested
// fix for highly skewed file sizes): per-server byte load at file
// granularity versus segment granularity, plus a training run over a
// skewed dataset.
func AblationSegments(opt Options) []*metrics.Table {
	// A deliberately skewed dataset: log-normal sizes with sigma 1.4
	// around a 2 MB mean — a few files are 50-100x the median.
	skewed := dataset.Spec{
		Name: "skewed", TrainFiles: 4000, MeanFileSize: 2 << 20,
		SizeSigma: 1.4, PathPrefix: "/gpfs/skewed",
	}
	if opt.Full {
		skewed.TrainFiles = 40000
	}
	ns := vfs.NewNamespace()
	skewed.Build(ns, false)
	nodes := 32
	const segSize = 1 << 20

	// Static byte-load balance.
	pol := place.ModHash{}
	fileBytes := make([]int64, nodes)
	segBytes := make([]int64, nodes)
	for _, path := range ns.Paths() {
		size, _ := ns.Lookup(path)
		fileBytes[pol.Place(path, nodes)] += size
		for seg := int64(0); seg*segSize < size; seg++ {
			b := size - seg*segSize
			if b > segSize {
				b = segSize
			}
			segBytes[pol.Place(fmt.Sprintf("%s@%d", path, seg), nodes)] += b
		}
	}
	balance := metrics.NewTable(
		fmt.Sprintf("Ablation: per-server byte load, skewed sizes (%d files, %d servers)", ns.Len(), nodes),
		"granularity", "cv", "max/mean")
	for _, row := range []struct {
		name  string
		bytes []int64
	}{{"file (paper)", fileBytes}, {"1MB segments", segBytes}} {
		var s metrics.Sample
		for _, b := range row.bytes {
			s.Add(float64(b))
		}
		balance.AddFloats(row.name, 4, s.CV(), s.Max()/s.Mean())
	}

	// Dynamic: train over the skewed dataset both ways.
	timing := metrics.NewTable(
		"Ablation: training time over the skewed dataset (HVAC 1x1, 3 epochs)",
		"granularity", "train time (min)")
	for _, seg := range []int64{0, segSize} {
		eng := sim.NewEngine()
		ns2 := vfs.NewNamespace()
		skewed.Build(ns2, false)
		cluster := summit.NewCluster(eng, nodes, ns2)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{
			InstancesPerNode: 1, EvictionSeed: opt.Seed, SegmentSize: seg,
		})
		cfg := train.Config{
			Model: train.CosmoFlow(), Data: skewed, Nodes: nodes,
			BatchSize: 16, Epochs: 3, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, job.FS())
		if err != nil {
			panic(err)
		}
		name := "file (paper)"
		if seg > 0 {
			name = "1MB segments"
		}
		timing.AddFloats(name, 3, minutes(res.TrainTime.Seconds()))
		opt.progress("ablation-segments seg=%d done", seg)
	}
	return []*metrics.Table{balance, timing}
}

// ablationReplicationTables compares replication factors with a batch of
// failed servers in the allocation (§III-H future work, implemented).
func ablationReplicationTables(opt Options) []*metrics.Table {
	a := apps()[0]
	nodes := 64
	data := a.data(opt)
	failures := nodes / 8
	t := metrics.NewTable(
		fmt.Sprintf("Ablation: replication with %d of %d servers failed (%s, 3 epochs)", failures, nodes, data.Name),
		"replicas", "train time (min)", "failovers", "GPFS fallbacks")
	for _, replicas := range []int{1, 2, 3} {
		eng := sim.NewEngine()
		ns := vfs.NewNamespace()
		data.Build(ns, false)
		cluster := summit.NewCluster(eng, nodes, ns)
		cluster.RegisterJob(nodes * 2)
		job := cluster.StartHVAC(summit.HVACOptions{
			InstancesPerNode: 1,
			Replicas:         replicas,
			EvictionSeed:     opt.Seed,
		})
		// Fail a deterministic set of servers before the run: their files
		// must come from replicas (if any) or fall back to the PFS.
		for f := 0; f < failures; f++ {
			job.Servers[(f*7+3)%len(job.Servers)].Fail()
		}
		cfg := train.Config{
			Model: a.model, Data: data, Nodes: nodes,
			BatchSize: a.batch, Epochs: 3, Seed: opt.Seed,
		}
		res, err := train.Run(eng, cfg, job.FS())
		if err != nil {
			panic(err)
		}
		var failovers, fallbacks int64
		for n := 0; n < nodes; n++ {
			st := job.Client(n).Stats()
			failovers += st.Failovers
			fallbacks += st.Fallbacks
		}
		t.AddRow(fmt.Sprint(replicas),
			fmt.Sprintf("%.3f", minutes(res.TrainTime.Seconds())),
			fmt.Sprint(failovers), fmt.Sprint(fallbacks))
		opt.progress("ablation-replication r=%d done", replicas)
	}
	return []*metrics.Table{t}
}
