package experiments

import (
	"fmt"

	"hvac/internal/mdtest"
	"hvac/internal/metrics"
	"hvac/internal/sim"
	"hvac/internal/summit"
	"hvac/internal/vfs"
)

// mdtestSweep runs the §II-C MDTest comparison for one file size.
func mdtestSweep(opt Options, title string, fileSize int64) []*metrics.Table {
	nodeCounts := []int{2, 8, 32, 128, 512}
	opsPerProc := 40
	if opt.Full {
		nodeCounts = []int{2, 8, 32, 128, 512, 2048, 4096}
		opsPerProc = 96
	}
	t := metrics.NewTable(title, "nodes", "gpfs tps", "xfs tps", "xfs/gpfs")
	for _, nodes := range nodeCounts {
		cfg := mdtest.Config{
			Nodes:        nodes,
			ProcsPerNode: 6,
			OpsPerProc:   opsPerProc,
			Files:        max(256, nodes*12),
			FileSize:     fileSize,
			Seed:         opt.Seed,
		}
		run := func(xfs bool) float64 {
			eng := sim.NewEngine()
			cluster := summit.NewCluster(eng, nodes, cfg.Namespace())
			cluster.RegisterJob(nodes * cfg.ProcsPerNode)
			var fsFor func(int, int) vfs.FS
			if xfs {
				fsFor = cluster.XFSFS()
			} else {
				fsFor = cluster.GPFSFS()
			}
			res, err := mdtest.Run(eng, cfg, fsFor)
			if err != nil {
				panic(fmt.Sprintf("mdtest: %v", err))
			}
			return res.TPS
		}
		gp := run(false)
		xf := run(true)
		t.AddRow(fmt.Sprint(nodes),
			fmt.Sprintf("%.0f", gp), fmt.Sprintf("%.0f", xf), fmt.Sprintf("%.2f", xf/gp))
		opt.progress("%s nodes=%d gpfs=%.0f xfs=%.0f", title, nodes, gp, xf)
	}
	return []*metrics.Table{t}
}

// Fig3 regenerates the 32 KB MDTest scan: GPFS saturates on metadata while
// XFS-on-NVMe scales linearly with nodes.
func Fig3(opt Options) []*metrics.Table {
	return mdtestSweep(opt, "Fig. 3: 32KB random open-read-close transactions/s", 32<<10)
}

// Fig4 regenerates the 8 MB MDTest scan: the bottleneck shifts from
// metadata to the 2.5 TB/s aggregate bandwidth.
func Fig4(opt Options) []*metrics.Table {
	return mdtestSweep(opt, "Fig. 4: 8MB random open-read-close transactions/s", 8<<20)
}
