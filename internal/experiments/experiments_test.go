package experiments

import (
	"strings"
	"testing"

	"hvac/internal/dataset"
	"hvac/internal/place"
	"hvac/internal/train"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"tab1", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "bandwidth",
		"ablation-placement", "ablation-eviction", "ablation-instances", "ablation-replication",
		"ablation-prefetch", "ablation-segments", "baselines",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Run == nil || all[i].Title == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig8"); !ok {
		t.Fatal("ByID(fig8) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) succeeded")
	}
}

func TestSystemsMatchPaper(t *testing.T) {
	sys := Systems()
	if len(sys) != 5 {
		t.Fatalf("systems = %d, want 5 (§IV-A3)", len(sys))
	}
	if sys[0].Name != "gpfs" || sys[4].Name != "xfs-nvme" {
		t.Fatalf("system order wrong: %v", sys)
	}
	for i, inst := range []int{1, 2, 4} {
		if sys[i+1].Instances != inst {
			t.Fatalf("hvac variant %d has %d instances", i+1, sys[i+1].Instances)
		}
	}
}

func TestAppsCoverPaperModels(t *testing.T) {
	names := map[string]bool{}
	for _, a := range apps() {
		names[a.model.Name] = true
		if a.scaled <= 0 || a.scaled > a.full {
			t.Fatalf("%s: scaled factor %f should be below full factor %f", a.model.Name, a.scaled, a.full)
		}
	}
	for _, want := range []string{"resnet50", "tresnet_m", "cosmoflow", "deepcam"} {
		if !names[want] {
			t.Fatalf("missing application %s", want)
		}
	}
}

func TestTable1Content(t *testing.T) {
	tabs := Table1(Options{})
	if len(tabs) != 1 {
		t.Fatalf("tables = %d", len(tabs))
	}
	out := tabs[0].String()
	for _, want := range []string{"POWER9", "V100", "512 GB", "1.6 TB", "EDR"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestAggregateBandwidthTable(t *testing.T) {
	out := AggregateBandwidth(Options{})[0].String()
	if !strings.Contains(out, "4096") || !strings.Contains(out, "22.5") {
		t.Fatalf("§II-C numbers missing:\n%s", out)
	}
}

func TestFig15Balance(t *testing.T) {
	tabs := Fig15(Options{Seed: 1})
	out := tabs[0].String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 8 {
		t.Fatalf("fig15 too short:\n%s", out)
	}
	// CV must shrink from the first to the last node count? No — CV in
	// counts grows with servers for fixed files; the paper's metric is
	// deviation from the ideal CDF, which our cv column captures per
	// row. Assert all rows are reasonably balanced instead.
	counts := placementCounts(place.ModHash{}, 100000, 512)
	cv, lo, hi := cdfSummary(counts)
	if cv > 0.1 {
		t.Fatalf("placement cv = %f at 512 servers", cv)
	}
	if lo < 0.7 || hi > 1.3 {
		t.Fatalf("min/max ratio = %f/%f", lo, hi)
	}
}

func TestCdfSummaryEdge(t *testing.T) {
	cv, lo, hi := cdfSummary([]int{0, 0, 0})
	if cv != 0 || lo != 0 || hi != 0 {
		t.Fatal("all-zero counts should give zeros")
	}
	cv, lo, hi = cdfSummary([]int{10, 10, 10})
	if cv != 0 || lo != 1 || hi != 1 {
		t.Fatalf("uniform counts: cv=%f lo=%f hi=%f", cv, lo, hi)
	}
}

func TestAblationPlacementTables(t *testing.T) {
	tabs := AblationPlacement(Options{})
	if len(tabs) != 2 {
		t.Fatalf("tables = %d", len(tabs))
	}
	out := tabs[1].String()
	// modhash must move far more files than rendezvous on growth.
	if !strings.Contains(out, "modhash") || !strings.Contains(out, "rendezvous") {
		t.Fatalf("missing policies:\n%s", out)
	}
}

// A miniature end-to-end check of the Fig. 8 machinery: GPFS must lose to
// XFS at scale and HVAC must land in between, on a small configuration.
func TestRunTrainingOrdering(t *testing.T) {
	small := dataset.Spec{
		Name: "mini", TrainFiles: 4096, MeanFileSize: 96 << 10,
		PathPrefix: "/gpfs/mini",
	}
	cfg := train.Config{
		Model: train.ResNet50(), Data: small,
		Nodes: 256, BatchSize: 16, Epochs: 3, Seed: 5,
	}
	opt := Options{Seed: 5}
	gpfs := runTraining(opt, System{Name: "gpfs"}, cfg).TrainTime
	hvac := runTraining(opt, System{Name: "hvac(4x1)", Instances: 4}, cfg).TrainTime
	xfs := runTraining(opt, System{Name: "xfs-nvme", Instances: -1}, cfg).TrainTime
	if !(xfs < hvac && hvac < gpfs) {
		t.Fatalf("ordering violated: xfs=%v hvac=%v gpfs=%v", xfs, hvac, gpfs)
	}
}
