package experiments

import (
	"fmt"

	"hvac/internal/metrics"
	"hvac/internal/place"
	"hvac/internal/summit"
)

// Table1 prints the Table I node specification the simulation is built on.
func Table1(opt Options) []*metrics.Table {
	spec := summit.TableI()
	t := metrics.NewTable("Table I: Summit compute-node specification", "attribute", "value")
	t.AddRow("CPU", fmt.Sprintf("%d x IBM POWER9 %dCores %.2fGHz", spec.CPUSockets, spec.CoresPerCPU, spec.CPUClockGHz))
	t.AddRow("GPU", fmt.Sprintf("%d x NVIDIA Tesla Volta (V100)", spec.GPUs))
	t.AddRow("Memory Capacity", fmt.Sprintf("%d GB DDR4", spec.MemoryGB))
	t.AddRow("Node-local Storage", fmt.Sprintf("%.1f TB NVMe SSD with XFS", float64(spec.NVMe.Capacity)/1e12))
	t.AddRow("Network Interconnect", fmt.Sprintf("Dual-rail Mellanox EDR InfiniBand (%.0f GB/s)", spec.Interconnect.LinkBandwidth/1e9))
	return []*metrics.Table{t}
}

// AggregateBandwidth reproduces the §II-C headline: node-local NVMe
// aggregates to ~22.5 TB/s at 4,096 nodes against GPFS's 2.5 TB/s.
func AggregateBandwidth(opt Options) []*metrics.Table {
	spec := summit.TableI()
	t := metrics.NewTable("Aggregate read bandwidth (§II-C)", "nodes", "nvme TB/s", "gpfs TB/s", "ratio")
	for _, nodes := range []int{512, 1024, 2048, 4096} {
		nvme := spec.NVMe.ReadBandwidth * float64(nodes) / 1e12
		gpfs := 2.5
		t.AddFloats(fmt.Sprint(nodes), 1, nvme, gpfs, nvme/gpfs)
	}
	return []*metrics.Table{t}
}

// Fig15 regenerates the load-distribution study: the hash places the
// ImageNet21K files nearly uniformly over the allocation's servers, with
// relative deviation shrinking as servers grow — and a visible deviation
// below 128 nodes, as the paper observes.
func Fig15(opt Options) []*metrics.Table {
	files := 200_000
	nodeCounts := []int{32, 64, 128, 256, 512, 1024}
	if opt.Full {
		files = 2_000_000
	}
	t := metrics.NewTable(
		fmt.Sprintf("Fig. 15: per-server file distribution (%d ImageNet-style files, modhash)", files),
		"nodes", "mean files", "cv", "min/mean", "max/mean")
	pol := place.ModHash{}
	for _, n := range nodeCounts {
		counts := placementCounts(pol, files, n)
		cv, lo, hi := cdfSummary(counts)
		t.AddFloats(fmt.Sprint(n), 4, float64(files)/float64(n), cv, lo, hi)
		opt.progress("fig15 nodes=%d cv=%.4f", n, cv)
	}
	return []*metrics.Table{t}
}

// AblationPlacement compares the paper's modulo hash against rendezvous
// and consistent-ring placement on balance and on reshuffle cost when the
// allocation grows by one node.
func AblationPlacement(opt Options) []*metrics.Table {
	files := 120_000
	if opt.Full {
		files = 1_200_000
	}
	policies := []place.Policy{place.ModHash{}, place.Rendezvous{}, &place.Ring{}}
	balance := metrics.NewTable(
		fmt.Sprintf("Ablation: placement balance (%d files)", files),
		"policy", "cv@64", "cv@256", "cv@1024")
	for _, pol := range policies {
		var cvs []float64
		for _, n := range []int{64, 256, 1024} {
			cv, _, _ := cdfSummary(placementCounts(pol, files, n))
			cvs = append(cvs, cv)
		}
		balance.AddFloats(pol.Name(), 4, cvs...)
	}
	reshuffle := metrics.NewTable(
		"Ablation: fraction of files moved when allocation grows 256 -> 257",
		"policy", "moved")
	for _, pol := range policies {
		moved := 0
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/gpfs/alpine/imagenet21k/train/%07d.rec", i)
			if pol.Place(p, 256) != pol.Place(p, 257) {
				moved++
			}
		}
		reshuffle.AddFloats(pol.Name(), 4, float64(moved)/float64(files))
	}
	return []*metrics.Table{balance, reshuffle}
}
