package testutil

import (
	"testing"
	"time"
)

func TestLeakedDetectsAndClears(t *testing.T) {
	before := Snapshot()
	block := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-block
	}()
	<-started

	leaked := Leaked(before, 50*time.Millisecond)
	if len(leaked) != 1 {
		t.Fatalf("leak check found %d goroutines, want the 1 deliberately leaked", len(leaked))
	}
	close(block)
	if leaked := Leaked(before, 2*time.Second); len(leaked) != 0 {
		t.Fatalf("leak reported after the goroutine exited:\n%s", leaked[0])
	}
}

func TestCheckLeaksPassesOnCleanTest(t *testing.T) {
	CheckLeaks(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
