// Package testutil holds shared helpers for HVAC's real-mode tests. The
// centrepiece is a leaktest-style goroutine check: real mode spawns a
// goroutine per accepted connection plus a data-mover pool, and the chaos
// tier's teardown invariant is that none of them survive Close.
package testutil

import (
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// CheckLeaks snapshots the currently running goroutines and registers a
// cleanup that fails the test if goroutines started during the test are
// still running once everything the test itself cleaned up has shut down.
// Register it before any cleanup that stops servers or clients, so the
// leak check runs last.
func CheckLeaks(t testing.TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		leaked := Leaked(before, 2*time.Second)
		if len(leaked) > 0 {
			t.Errorf("testutil: %d goroutine(s) leaked:\n%s", len(leaked), strings.Join(leaked, "\n\n"))
		}
	})
}

// Leaked waits up to timeout for every goroutine not in the before
// snapshot (and not harness-internal) to exit, returning the stacks of
// the survivors. Teardown is asynchronous — a severed peer only notices
// on its next read — so the poll loop is part of the contract.
func Leaked(before map[string]bool, timeout time.Duration) []string {
	deadline := time.Now().Add(timeout)
	var leaked []string
	for {
		leaked = leaked[:0]
		for id, stack := range goroutineStacks() {
			if !before[id] && interesting(stack) {
				leaked = append(leaked, stack)
			}
		}
		if len(leaked) == 0 || time.Now().After(deadline) {
			sort.Strings(leaked)
			return leaked
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Snapshot returns the current goroutine-ID set, for use with Leaked.
func Snapshot() map[string]bool { return goroutineIDs() }

// interesting filters out the goroutines the test harness and runtime own.
func interesting(stack string) bool {
	for _, benign := range []string{
		"testing.Main(",
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.(*M).",
		"testing.runFuzzing(",
		"testing.runFuzzTests(",
		"runtime.goexit",
		"created by runtime.gc",
		"runtime.gcBgMarkWorker",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime.runfinq",
		"runtime.MHeap_Scavenger",
		"signal.signal_recv",
		"os/signal.loop",
		"runtime.ensureSigM",
	} {
		if strings.Contains(stack, benign) {
			return false
		}
	}
	return true
}

// goroutineStacks returns every goroutine's stack keyed by its header ID
// line (e.g. "goroutine 42").
func goroutineStacks() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, g := range strings.Split(string(buf), "\n\n") {
		if id, ok := goroutineID(g); ok {
			out[id] = g
		}
	}
	return out
}

func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for id := range goroutineStacks() {
		ids[id] = true
	}
	return ids
}

// goroutineID extracts "goroutine N" from a stack dump's header line.
func goroutineID(stack string) (string, bool) {
	if !strings.HasPrefix(stack, "goroutine ") {
		return "", false
	}
	head, _, ok := strings.Cut(stack, " [")
	if !ok {
		return "", false
	}
	return head, true
}
