//go:build race

package testutil

// RaceEnabled reports whether the binary was built with the race
// detector. Allocation-budget tests skip under race: race-mode
// sync.Pool randomly drops Puts, so pooled paths legitimately allocate.
const RaceEnabled = true
