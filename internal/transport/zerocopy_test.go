package transport

import (
	"bytes"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
)

// payloadFile writes data to a temp file and opens it for reading.
func payloadFile(t *testing.T, data []byte) *os.File {
	t.Helper()
	path := filepath.Join(t.TempDir(), "payload")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = f.Close() })
	return f
}

// tcpPair returns a connected loopback (server, client) socket pair.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		_ = client.Close()
		t.Fatal(r.err)
	}
	t.Cleanup(func() { _ = r.c.Close(); _ = client.Close() })
	return r.c, client
}

type countReleaser struct{ n atomic.Int64 }

func (c *countReleaser) Release() { c.n.Add(1) }

// TestFileResponseByteIdentityFallback proves the fd-backed encoding is
// bit-identical to the slice encoding on a non-sendfile writer (the
// SimTransport / non-Linux path) across sizes and error strings.
func TestFileResponseByteIdentityFallback(t *testing.T) {
	for _, size := range []int{0, 1, 511, 4096, 64 << 10, (1 << 20) + 7} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i*131 + size)
		}
		f := payloadFile(t, data)

		var want bytes.Buffer
		slice := &Response{Status: StatusOK, Handle: 7, Size: int64(size), Data: data}
		if err := WriteResponse(&want, slice); err != nil {
			t.Fatal(err)
		}

		var got bytes.Buffer
		var st ZeroCopyStats
		fd := &Response{Status: StatusOK, Handle: 7, Size: int64(size)}
		fd.SetPayloadFile(f, 0, int64(size), nil, &st)
		if err := WriteResponse(&got, fd); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("size %d: fd-backed frame differs from slice frame", size)
		}
		if st.Eligible.Load() != 1 || st.Fallbacks.Load() != 1 || st.Sends.Load() != 0 {
			t.Fatalf("size %d: fallback stats = eligible %d sends %d fallbacks %d, want 1/0/1",
				size, st.Eligible.Load(), st.Sends.Load(), st.Fallbacks.Load())
		}
	}
}

// TestFileResponseOverTCP round-trips an fd-backed response through a
// real socket and the normal decoder: the client must be unable to tell
// sendfile served it, and on Linux the payload must have moved through
// the kernel (a send, not a fallback).
func TestFileResponseOverTCP(t *testing.T) {
	const size = 1<<20 + 321
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	f := payloadFile(t, data)
	sconn, cconn := tcpPair(t)

	var st ZeroCopyStats
	rel := &countReleaser{}
	errc := make(chan error, 1)
	go func() {
		resp := &Response{Status: StatusOK, Handle: 3, Size: size}
		resp.SetPayloadFile(f, 0, size, rel, &st)
		err := WriteResponse(newZCWriter(sconn), resp)
		resp.Release()
		errc <- err
	}()

	got, err := ReadResponse(cconn)
	if err != nil {
		t.Fatal(err)
	}
	defer got.Release()
	if werr := <-errc; werr != nil {
		t.Fatalf("write: %v", werr)
	}
	if got.Handle != 3 || got.Size != size || !bytes.Equal(got.Data, data) {
		t.Fatalf("decoded response differs (handle %d size %d datalen %d)", got.Handle, got.Size, len(got.Data))
	}
	if rel.n.Load() != 1 {
		t.Fatalf("payload releaser ran %d times, want 1", rel.n.Load())
	}
	if el, sends, falls := st.Eligible.Load(), st.Sends.Load(), st.Fallbacks.Load(); el != 1 || sends+falls != el {
		t.Fatalf("stats identity broken: eligible %d sends %d fallbacks %d", el, sends, falls)
	}
	if runtime.GOOS == "linux" {
		if st.Sends.Load() != 1 || st.Bytes.Load() != size {
			t.Fatalf("on linux want a pure sendfile serve, got sends %d bytes %d fallbacks %d",
				st.Sends.Load(), st.Bytes.Load(), st.Fallbacks.Load())
		}
	}
}

// TestFileResponseTruncatedSource shrinks the source under a promised
// payload: the write must fail hard (the frame cannot be completed), and
// the serve must still resolve the stats identity as a fallback.
func TestFileResponseTruncatedSource(t *testing.T) {
	data := bytes.Repeat([]byte{0xAB}, 32<<10)
	f := payloadFile(t, data)
	sconn, cconn := tcpPair(t)

	// Drain whatever partial frame arrives so the writer never blocks.
	go func() {
		buf := make([]byte, 1<<16)
		for {
			if _, err := cconn.Read(buf); err != nil {
				return
			}
		}
	}()

	var st ZeroCopyStats
	resp := &Response{Status: StatusOK, Size: 64 << 10}
	resp.SetPayloadFile(f, 0, 64<<10, nil, &st) // 64 KiB promised, 32 KiB exist
	err := WriteResponse(newZCWriter(sconn), resp)
	resp.Release()
	if err == nil {
		t.Fatal("truncated source produced a nil write error; the stream would be desynchronized")
	}
	if el, sends, falls := st.Eligible.Load(), st.Sends.Load(), st.Fallbacks.Load(); el != 1 || sends != 0 || falls != 1 {
		t.Fatalf("stats = eligible %d sends %d fallbacks %d, want 1/0/1", el, sends, falls)
	}
}

// TestFileResponseReleaseWithoutWrite covers the dead-connection case:
// serveConn releases the response even when the write failed, and the
// lease's release must run exactly once.
func TestFileResponseReleaseWithoutWrite(t *testing.T) {
	f := payloadFile(t, []byte("abc"))
	rel := &countReleaser{}
	resp := AcquireResponse()
	resp.Status = StatusOK
	resp.SetPayloadFile(f, 0, 3, rel, nil)
	resp.Release()
	if rel.n.Load() != 1 {
		t.Fatalf("releaser ran %d times, want 1", rel.n.Load())
	}
	// A pooled Response recycled after a file payload must come back clean.
	fresh := AcquireResponse()
	if fresh.FilePayload() {
		t.Fatal("recycled Response still carries a file payload")
	}
	fresh.Release()
}
