package transport

import (
	"bytes"
	"io"
	"testing"
)

// Hot-path codec benchmarks (ISSUE 4). scripts/bench.sh runs these and
// records the numbers in BENCH_PR4.json next to the pre-pooling baseline;
// the allocs/op figures are additionally pinned by alloc_test.go so a
// regression fails `go test`, not just the benchmark comparison.

func BenchmarkWriteResponse64K(b *testing.B) {
	data := make([]byte, 64<<10)
	resp := &Response{Status: StatusOK, Size: int64(len(data)), Data: data}
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if err := WriteResponse(io.Discard, resp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadResponse64K(b *testing.B) {
	data := make([]byte, 64<<10)
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &Response{Status: StatusOK, Size: int64(len(data)), Data: data}); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ReportAllocs()
	b.SetBytes(int64(len(data)))
	rd := bytes.NewReader(wire)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		resp, err := ReadResponse(rd)
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
}

func BenchmarkWriteRequestBase(b *testing.B) {
	req := &Request{Op: OpRead, Handle: 7, Off: 4096, Len: 64 << 10, Path: "/gpfs/dataset/file-000001.rec"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := WriteRequest(io.Discard, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadRequestBase(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpRead, Handle: 7, Off: 4096, Len: 64 << 10, Path: "/gpfs/dataset/file-000001.rec"}); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.ReportAllocs()
	rd := bytes.NewReader(wire)
	var req Request
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		if err := ReadRequestInto(rd, &req); err != nil {
			b.Fatal(err)
		}
	}
}
