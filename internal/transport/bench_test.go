package transport

import "testing"

func BenchmarkRPCRoundTrip(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		return &Response{Status: StatusOK, Size: 128}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(srv.Addr())
	defer cli.Close()
	req := &Request{Op: OpOpen, Path: "/gpfs/dataset/file.rec"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call(req)
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
}

func BenchmarkBulkResponse1MB(b *testing.B) {
	payload := make([]byte, 1<<20)
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		return &Response{Status: StatusOK, Data: payload, Size: int64(len(payload))}
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(srv.Addr())
	defer cli.Close()
	req := &Request{Op: OpRead, Len: 1 << 20}
	b.SetBytes(1 << 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call(req)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Data) != 1<<20 {
			b.Fatal("short payload")
		}
		resp.Release()
	}
}
