package transport

import (
	"bytes"
	"strings"
	"testing"
)

func TestBatchPathsRoundTrip(t *testing.T) {
	paths := []string{"/pfs/a", "/pfs/some/longer/path.bin", "x"}
	blob, err := EncodeBatchPaths(paths)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchPaths(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paths) {
		t.Fatalf("decoded %d paths, want %d", len(got), len(paths))
	}
	for i := range paths {
		if got[i] != paths[i] {
			t.Fatalf("path %d = %q, want %q", i, got[i], paths[i])
		}
	}
}

func TestEncodeBatchPathsLimits(t *testing.T) {
	if _, err := EncodeBatchPaths(nil); err == nil {
		t.Fatal("empty batch encoded")
	}
	big := make([]string, MaxBatchEntries+1)
	for i := range big {
		big[i] = "p"
	}
	if _, err := EncodeBatchPaths(big); err == nil {
		t.Fatal("oversized batch encoded")
	}
	// Paths that individually fit but jointly overflow the u16 field.
	long := strings.Repeat("x", 60000)
	if _, err := EncodeBatchPaths([]string{long, long}); err == nil {
		t.Fatal("batch overflowing the path field encoded")
	}
}

// TestDecodeBatchPathsCorrupt feeds wire-shaped corruption at the decode
// boundary: every length field must be bounds-checked before use.
func TestDecodeBatchPathsCorrupt(t *testing.T) {
	cases := map[string]string{
		"truncated":       "\x05",
		"zero count":      "\x00\x00",
		"huge count":      "\xff\xff",
		"entry overrun":   "\x01\x00\xff\xff" + "short",
		"missing entry":   "\x02\x00\x01\x00a", // claims 2, carries 1
		"trailing bytes":  "\x01\x00\x01\x00a" + "junk",
		"entry truncated": "\x01\x00\x05",
	}
	for name, blob := range cases {
		if _, err := DecodeBatchPaths(blob); err == nil {
			t.Errorf("%s: corrupt batch decoded without error", name)
		}
	}
}

func TestBatchResultsRoundTrip(t *testing.T) {
	var data []byte
	payload := bytes.Repeat([]byte{7}, 100)
	data = AppendBatchEntry(data, StatusOK, payload)
	data = AppendBatchEntry(data, StatusError, []byte("no such file"))
	data = AppendBatchEntry(data, StatusAgain, nil)

	results, err := DecodeBatchResults(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].OK() || !bytes.Equal(results[0].Data, payload) {
		t.Fatal("entry 0 corrupted")
	}
	if results[1].Status != StatusError || results[1].Err != "no such file" {
		t.Fatalf("entry 1 = %+v", results[1])
	}
	if results[2].Status != StatusAgain || results[2].Data != nil {
		t.Fatalf("entry 2 = %+v", results[2])
	}
}

func TestDecodeBatchResultsCorrupt(t *testing.T) {
	good := AppendBatchEntry(nil, StatusOK, []byte("abc"))
	cases := map[string][]byte{
		"truncated header": good[:3],
		"length overrun":   {StatusOK, 0xff, 0xff, 0xff, 0x7f},
		"unknown status":   AppendBatchEntry(nil, 99, nil),
		"trailing bytes":   append(append([]byte{}, good...), 0xde, 0xad),
	}
	for name, data := range cases {
		if _, err := DecodeBatchResults(data, 1); err == nil {
			t.Errorf("%s: corrupt results decoded without error", name)
		}
	}
	if _, err := DecodeBatchResults(good, 2); err == nil {
		t.Error("short result list decoded without error")
	}
	if _, err := DecodeBatchResults(good, 0); err == nil {
		t.Error("zero want accepted")
	}
}
