package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one request and produces its response. Handlers must
// be safe for concurrent use; the server invokes one per in-flight request.
type Handler func(*Request) *Response

// ServerOptions tune a server's connection handling.
type ServerOptions struct {
	// WriteTimeout bounds each response write so a dead or stalled client
	// cannot pin a connection goroutine. 0 means DefaultWriteTimeout;
	// negative disables the deadline.
	WriteTimeout time.Duration
}

// Server accepts HVAC protocol connections and dispatches requests.
type Server struct {
	ln           net.Listener
	handler      Handler
	writeTimeout time.Duration

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with the given
// handler and default options, and begins accepting in the background.
func Serve(addr string, handler Handler) (*Server, error) {
	return ServeWith(addr, handler, ServerOptions{})
}

// ServeWith is Serve with explicit options.
func ServeWith(addr string, handler Handler, opts ServerOptions) (*Server, error) {
	if opts.WriteTimeout == 0 {
		opts.WriteTimeout = DefaultWriteTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{ln: ln, handler: handler, writeTimeout: opts.WriteTimeout, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown; socket is abandoned either way
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		//hvac:blockguard idle conns may sit in ReadRequestInto indefinitely by design; Close severs every tracked conn, unblocking the read
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // connection teardown is best-effort
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	// One Request per connection: ReadRequestInto overwrites every field,
	// so the loop allocates only the decoded path string per call.
	var req Request
	// File-payload responses go through a lazily built per-conn zcWriter
	// (sendfile on Linux). Slice-payload responses must keep writing to
	// the raw conn: net.Buffers' writev fast path type-asserts the conn
	// itself, and any wrapper would demote it to three separate writes.
	var zw *zcWriter
	for {
		if err := ReadRequestInto(conn, &req); err != nil {
			return // EOF or broken peer
		}
		resp := s.handler(&req)
		if resp == nil {
			resp = &Response{Status: StatusError, Err: "nil response from handler"}
		}
		if s.writeTimeout > 0 {
			if err := conn.SetWriteDeadline(time.Now().Add(s.writeTimeout)); err != nil {
				resp.Release()
				return
			}
		}
		dst := io.Writer(conn)
		if resp.FilePayload() {
			if zw == nil {
				zw = newZCWriter(conn)
			}
			dst = zw
		}
		err := WriteResponse(dst, resp)
		// The response is on the wire (or the link is dead): recycle its
		// pooled payload either way. Handlers hand ownership to the server
		// with their return.
		resp.Release()
		if err != nil {
			return
		}
	}
}

// Close stops accepting, severs all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close() // shutting down: accept loop exits on the close either way
	for _, c := range conns {
		_ = c.Close() // severing peers; their next I/O reports the break
	}
	s.wg.Wait()
}

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("transport: client closed")

// DefaultPoolSize is the idle-connection cap of a TCP client when
// ClientOptions.PoolSize is zero.
const DefaultPoolSize = 16

// ClientOptions tune a TCP client's deadlines and retry behaviour.
type ClientOptions struct {
	// DialTimeout bounds connection establishment. 0 means 5 s.
	DialTimeout time.Duration
	// CallTimeout bounds one Call attempt: request write plus response
	// read. 0 means DefaultCallTimeout; negative disables the deadline.
	CallTimeout time.Duration
	// Retry is the per-call retry schedule; zero fields take the package
	// defaults (2 attempts, 2 ms base, 250 ms cap).
	Retry RetryPolicy
	// PoolSize caps the idle connections kept for reuse. 0 means
	// DefaultPoolSize; negative disables pooling (every call dials).
	// Size it to the caller's concurrency: an i×1 deployment driven by w
	// loader workers wants at least w idle slots per server link.
	PoolSize int
}

// Client is a connection-pooling RPC client for one server address. Calls
// are synchronous; the pool bounds concurrent sockets.
type Client struct {
	addr        string
	dialTimeout time.Duration
	callTimeout time.Duration
	retry       RetryPolicy
	poolSize    int
	sleep       func(time.Duration) // test seam for backoff pauses

	retries atomic.Int64
	calls   atomic.Int64

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial returns a client for addr with default options. No connection is
// made until the first Call.
func Dial(addr string) *Client {
	return DialWith(addr, ClientOptions{})
}

// DialWith is Dial with explicit options.
func DialWith(addr string, opts ClientOptions) *Client {
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 5 * time.Second
	}
	if opts.CallTimeout == 0 {
		opts.CallTimeout = DefaultCallTimeout
	}
	switch {
	case opts.PoolSize == 0:
		opts.PoolSize = DefaultPoolSize
	case opts.PoolSize < 0:
		opts.PoolSize = 0
	}
	return &Client{
		addr:        addr,
		dialTimeout: opts.DialTimeout,
		callTimeout: opts.CallTimeout,
		retry:       opts.Retry.withDefaults(),
		poolSize:    opts.PoolSize,
		sleep:       time.Sleep,
	}
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

// Retries reports how many retry attempts (beyond each call's first try)
// the client has spent — the retry-budget accounting surfaced in the HVAC
// client's stats.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Calls reports how many RPCs have been issued (retries not included) —
// the per-file-RPC accounting the batch-read benchmarks compare.
func (c *Client) Calls() int64 { return c.calls.Load() }

func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.DialTimeout("tcp", c.addr, c.dialTimeout)
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= c.poolSize {
		_ = conn.Close() // pool full or closed: surplus socket is discarded
		return
	}
	c.idle = append(c.idle, conn)
}

// Call sends req and waits for the response. Each attempt runs under the
// client's call deadline, so a hung server surfaces as a timeout instead
// of stalling the training loop. Connection-level failures (refused,
// reset, deadline, corrupt frame) are retried on a fresh connection under
// the retry policy's exponential backoff; once the attempt budget is
// spent the last error is returned to the caller, which for an HVAC
// client triggers PFS fallback.
func (c *Client) Call(req *Request) (*Response, error) {
	c.calls.Add(1)
	var lastErr error
	for attempt := 0; attempt < c.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
			c.sleep(c.retry.Backoff(attempt))
		}
		resp, err := c.callOnce(req)
		if err == nil {
			return resp, nil
		}
		if errors.Is(err, ErrClientClosed) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("transport: call %s failed after %d attempts: %w", c.addr, c.retry.MaxAttempts, lastErr)
}

// callOnce runs one request/response exchange on one connection. Any
// failure closes the connection (it may hold a half-written frame); only
// a cleanly completed exchange returns the socket to the pool.
func (c *Client) callOnce(req *Request) (*Response, error) {
	conn, err := c.getConn()
	if err != nil {
		return nil, err
	}
	if c.callTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(c.callTimeout)); err != nil {
			_ = conn.Close() // setting the deadline failed; the socket is suspect
			return nil, err
		}
	}
	if err := WriteRequest(conn, req); err != nil {
		_ = conn.Close() // the write failure is the error that matters
		return nil, err
	}
	resp, err := ReadResponse(conn)
	if err != nil {
		_ = conn.Close() // the read failure is the error that matters
		return nil, err
	}
	if c.callTimeout > 0 {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			_ = conn.Close() // cannot clear the deadline: do not pool the socket
			return resp, nil
		}
	}
	c.putConn(conn)
	return resp, nil
}

// Ping round-trips an OpPing, reporting reachability.
func (c *Client) Ping() error {
	resp, err := c.Call(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	err = resp.Error()
	resp.Release()
	return err
}

// Close releases pooled connections. In-flight calls may fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		_ = conn.Close() // idle pool teardown is best-effort
	}
	c.idle = nil
}
