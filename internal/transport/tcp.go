package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Handler processes one request and produces its response. Handlers must
// be safe for concurrent use; the server invokes one per in-flight request.
type Handler func(*Request) *Response

// Server accepts HVAC protocol connections and dispatches requests.
type Server struct {
	ln      net.Listener
	handler Handler

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") with the given
// handler and begins accepting in the background.
func Serve(addr string, handler Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	s := &Server{ln: ln, handler: handler, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close() // racing shutdown; socket is abandoned either way
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close() // connection teardown is best-effort
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	for {
		req, err := ReadRequest(conn)
		if err != nil {
			return // EOF or broken peer
		}
		resp := s.handler(req)
		if resp == nil {
			resp = &Response{Status: StatusError, Err: "nil response from handler"}
		}
		if err := WriteResponse(conn, resp); err != nil {
			return
		}
	}
}

// Close stops accepting, severs all connections and waits for handlers.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	_ = s.ln.Close() // shutting down: accept loop exits on the close either way
	for _, c := range conns {
		_ = c.Close() // severing peers; their next I/O reports the break
	}
	s.wg.Wait()
}

// ErrClientClosed is returned by Call after Close.
var ErrClientClosed = errors.New("transport: client closed")

// Client is a connection-pooling RPC client for one server address. Calls
// are synchronous; the pool bounds concurrent sockets.
type Client struct {
	addr        string
	dialTimeout time.Duration

	mu     sync.Mutex
	idle   []net.Conn
	closed bool
}

// Dial returns a client for addr. No connection is made until the first
// Call.
func Dial(addr string) *Client {
	return &Client{addr: addr, dialTimeout: 5 * time.Second}
}

// Addr returns the target address.
func (c *Client) Addr() string { return c.addr }

func (c *Client) getConn() (net.Conn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	if n := len(c.idle); n > 0 {
		conn := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return conn, nil
	}
	c.mu.Unlock()
	return net.DialTimeout("tcp", c.addr, c.dialTimeout)
}

func (c *Client) putConn(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || len(c.idle) >= 16 {
		_ = conn.Close() // pool full or closed: surplus socket is discarded
		return
	}
	c.idle = append(c.idle, conn)
}

// Call sends req and waits for the response. A connection-level failure is
// retried once on a fresh connection (the previous socket may have been
// idle-closed by the peer); a second failure is returned to the caller,
// which for an HVAC client triggers PFS fallback.
func (c *Client) Call(req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		conn, err := c.getConn()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if err := WriteRequest(conn, req); err != nil {
			_ = conn.Close() // the write failure is the error that matters
			lastErr = err
			continue
		}
		resp, err := ReadResponse(conn)
		if err != nil {
			_ = conn.Close() // the read failure is the error that matters
			lastErr = err
			continue
		}
		c.putConn(conn)
		return resp, nil
	}
	return nil, fmt.Errorf("transport: call %s failed: %w", c.addr, lastErr)
}

// Ping round-trips an OpPing, reporting reachability.
func (c *Client) Ping() error {
	resp, err := c.Call(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	return resp.Error()
}

// Close releases pooled connections. In-flight calls may fail.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, conn := range c.idle {
		_ = conn.Close() // idle pool teardown is best-effort
	}
	c.idle = nil
}
