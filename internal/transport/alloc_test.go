package transport

import (
	"bytes"
	"io"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"hvac/internal/testutil"
)

// The codec's zero-allocation contract (ISSUE 4 / DESIGN.md §9): once the
// pools are warm, encoding a response, decoding one (with Release), and
// encoding a request allocate nothing; decoding a request allocates only
// the path string. These budgets are regression gates — a change that
// reintroduces a per-call make on the hot path fails here, not in a
// benchmark someone has to remember to run.

// skipUnderRace skips allocation-budget tests under the race detector:
// race-mode sync.Pool randomly drops Puts, so warm pooled paths
// legitimately allocate there.
func skipUnderRace(t *testing.T) {
	t.Helper()
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race (sync.Pool drops Puts)")
	}
}

func warmPools(data []byte) {
	// Prime the frame, net.Buffers and Response pools for every size used
	// by the tests: a few full round trips through the codec.
	var buf bytes.Buffer
	for i := 0; i < 4; i++ {
		buf.Reset()
		_ = WriteResponse(&buf, &Response{Status: StatusOK, Size: int64(len(data)), Data: data})
		resp, err := ReadResponse(bytes.NewReader(buf.Bytes()))
		if err == nil {
			resp.Release()
		}
	}
}

func TestWriteResponseAllocFree(t *testing.T) {
	skipUnderRace(t)
	data := make([]byte, 64<<10)
	resp := &Response{Status: StatusOK, Size: int64(len(data)), Data: data}
	warmPools(data)
	_ = WriteResponse(io.Discard, resp)
	if n := testing.AllocsPerRun(200, func() {
		if err := WriteResponse(io.Discard, resp); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("WriteResponse allocates %.1f/op on the warm path, want 0", n)
	}
}

func TestWriteResponseEmptyAllocFree(t *testing.T) {
	skipUnderRace(t)
	resp := &Response{Status: StatusOK}
	_ = WriteResponse(io.Discard, resp)
	if n := testing.AllocsPerRun(200, func() {
		if err := WriteResponse(io.Discard, resp); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("payload-free WriteResponse allocates %.1f/op, want 0", n)
	}
}

func TestReadResponseAllocFreeWithRelease(t *testing.T) {
	skipUnderRace(t)
	data := make([]byte, 64<<10)
	var buf bytes.Buffer
	if err := WriteResponse(&buf, &Response{Status: StatusOK, Size: int64(len(data)), Data: data}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	warmPools(data)
	rd := bytes.NewReader(wire)
	if n := testing.AllocsPerRun(200, func() {
		rd.Reset(wire)
		resp, err := ReadResponse(rd)
		if err != nil {
			t.Fatal(err)
		}
		resp.Release()
	}); n > 0 {
		t.Errorf("ReadResponse+Release allocates %.1f/op on the warm path, want 0", n)
	}
}

func TestWriteRequestAllocFree(t *testing.T) {
	skipUnderRace(t)
	req := &Request{Op: OpRead, Handle: 7, Off: 4096, Len: 64 << 10, Path: "/gpfs/dataset/file-000001.rec"}
	_ = WriteRequest(io.Discard, req)
	if n := testing.AllocsPerRun(200, func() {
		if err := WriteRequest(io.Discard, req); err != nil {
			t.Fatal(err)
		}
	}); n > 0 {
		t.Errorf("WriteRequest allocates %.1f/op on the warm path, want 0", n)
	}
}

func TestReadRequestIntoAllocsOnlyPath(t *testing.T) {
	skipUnderRace(t)
	var buf bytes.Buffer
	if err := WriteRequest(&buf, &Request{Op: OpRead, Handle: 7, Off: 4096, Len: 64 << 10, Path: "/gpfs/dataset/file-000001.rec"}); err != nil {
		t.Fatal(err)
	}
	wire := buf.Bytes()
	rd := bytes.NewReader(wire)
	var req Request
	rd.Reset(wire)
	if err := ReadRequestInto(rd, &req); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		rd.Reset(wire)
		if err := ReadRequestInto(rd, &req); err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		t.Errorf("ReadRequestInto allocates %.1f/op, want <= 1 (the path string)", n)
	}
}

// TestZeroCopySendAllocFree pins the zero-copy serve budget: once the
// per-connection step closure and the pools are warm, pushing an
// fd-backed 1 MiB payload through sendfile allocates nothing — the
// payload never exists in userspace, so there is no buffer to allocate.
// The draining peer runs the warm pooled decode path (also 0 allocs), so
// the process-wide counter AllocsPerRun reads stays flat.
func TestZeroCopySendAllocFree(t *testing.T) {
	skipUnderRace(t)
	const size = 1 << 20
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, aerr := ln.Accept()
		if aerr == nil {
			accepted <- c
		}
	}()
	cconn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cconn.Close()
	sconn := <-accepted
	defer sconn.Close()

	path := filepath.Join(t.TempDir(), "payload")
	if err := os.WriteFile(path, bytes.Repeat([]byte{0x5A}, size), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Drain on the warm pooled decode path so the peer goroutine does not
	// add allocations of its own to the process-wide counter.
	go func() {
		for {
			resp, rerr := ReadResponse(cconn)
			if rerr != nil {
				return
			}
			resp.Release()
		}
	}()

	var st ZeroCopyStats
	zw := newZCWriter(sconn)
	resp := &Response{Status: StatusOK, Size: size}
	send := func() {
		resp.SetPayloadFile(f, 0, size, nil, &st)
		if err := WriteResponse(zw, resp); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		send() // warm: step closure, frame pools, peer decode pools
	}
	if n := testing.AllocsPerRun(100, send); n > 0 {
		t.Errorf("zero-copy send allocates %.1f/op on the warm path, want 0", n)
	}
	if zw.canSendfile() && st.Fallbacks.Load() != 0 {
		t.Errorf("sendfile-capable conn took %d fallbacks", st.Fallbacks.Load())
	}
}

// TestRoundTripWithRelease checks that pooled decode + Release preserves
// byte identity even when the same pooled buffers are recycled across
// iterations and sizes — the aliasing bug pooling invites.
func TestRoundTripWithRelease(t *testing.T) {
	sizes := []int{0, 1, 511, 512, 513, 4096, 64 << 10, 1 << 20}
	var buf bytes.Buffer
	for round := 0; round < 3; round++ {
		for _, size := range sizes {
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(i*31 + size + round)
			}
			buf.Reset()
			want := &Response{Status: StatusOK, Handle: int64(size), Size: int64(size), Data: data}
			if err := WriteResponse(&buf, want); err != nil {
				t.Fatal(err)
			}
			got, err := ReadResponse(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if got.Handle != int64(size) || got.Size != int64(size) || !bytes.Equal(got.Data, data) {
				t.Fatalf("size %d round %d: decode mismatch", size, round)
			}
			got.Release()
		}
	}
}

// TestConcurrentPoolRoundTrips shakes the pools from many goroutines (run
// under -race by make check): distinct responses must never observe each
// other's recycled buffers.
func TestConcurrentPoolRoundTrips(t *testing.T) {
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed byte) {
			defer wg.Done()
			data := bytes.Repeat([]byte{seed}, 32<<10)
			var buf bytes.Buffer
			for i := 0; i < 200; i++ {
				buf.Reset()
				if err := WriteResponse(&buf, &Response{Status: StatusOK, Size: int64(len(data)), Data: data}); err != nil {
					t.Error(err)
					return
				}
				resp, err := ReadResponse(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Error(err)
					return
				}
				for _, b := range resp.Data {
					if b != seed {
						t.Errorf("worker %d: read back %d, pooled buffer crossed goroutines", seed, b)
						resp.Release()
						return
					}
				}
				resp.Release()
			}
		}(byte(w + 1))
	}
	wg.Wait()
}

func TestGrabReleaseOwnership(t *testing.T) {
	resp := AcquireResponse()
	b1 := resp.Grab(1000)
	if len(b1) != 1000 {
		t.Fatalf("Grab(1000) length = %d", len(b1))
	}
	// A second Grab recycles the first buffer before handing out another.
	b2 := resp.Grab(2000)
	if len(b2) != 2000 {
		t.Fatalf("Grab(2000) length = %d", len(b2))
	}
	resp.Data = b2[:5]
	resp.Release()

	// Release on a plain literal is a safe no-op beyond clearing Data.
	lit := &Response{Status: StatusOK, Data: []byte{1, 2, 3}}
	lit.Release()
	if lit.Data != nil {
		t.Fatal("Release left literal Data set")
	}
}

func TestGetPutBuffer(t *testing.T) {
	for _, n := range []int{0, 1, 512, 1000, 1 << 20} {
		b := GetBuffer(n)
		if len(b) != n {
			t.Fatalf("GetBuffer(%d) length = %d", n, len(b))
		}
		PutBuffer(b)
	}
	// Oversized requests (beyond MaxFrame) still work, just unpooled.
	big := GetBuffer(MaxFrame + 1)
	if len(big) != MaxFrame+1 {
		t.Fatalf("oversized GetBuffer length = %d", len(big))
	}
	PutBuffer(big)
}
