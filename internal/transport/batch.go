package transport

import (
	"encoding/binary"
	"fmt"
)

// OpReadBatch wire format (the FanStore observation: per-file RPC
// overhead dominates small-sample workloads, so file access must be
// batched and compacted). A batch request and its response ride inside
// the ordinary request/response frames:
//
//	request:  the Path field carries the encoded path list
//	          u16 count | count x (u16 pathLen | path)
//	          and the Handle field carries BatchFlag* bits.
//	response: the Data section carries the encoded result list
//	          count x (u8 status | u32 len | len bytes)
//	          where the bytes are the payload for StatusOK, an error
//	          message for StatusError, and empty for StatusAgain.
//	          Response.Size echoes the entry count.
//
// StatusAgain marks an entry the server skipped because the response
// frame budget was exhausted (scatter-gather replies must stay under
// MaxFrame); the client retries those paths individually. Per-entry
// failures therefore never fail the batch: each path degrades on its
// own, which is what the chaos tier asserts.

// BatchFlagPrefetch asks the server to schedule background fills for the
// batch instead of returning payloads: the response carries per-entry
// statuses with empty bodies. Set on Request.Handle (unused otherwise by
// OpReadBatch).
const BatchFlagPrefetch int64 = 1

// MaxBatchEntries bounds the paths in one batch request. The encoded
// path list must also fit the request Path field (u16 length prefix,
// 64 KiB), which EncodeBatchPaths enforces.
const MaxBatchEntries = 512

// batchEntryOverhead is the per-entry framing cost in the response data
// section: one status byte plus the u32 payload length.
const batchEntryOverhead = 1 + 4

// BatchResponseBudget is the payload budget a server packs one batch
// response to: MaxFrame less headroom for the frame header, the per-entry
// framing and the error tail. Entries that do not fit are answered
// StatusAgain and re-fetched individually by the client.
const BatchResponseBudget = MaxFrame - (64 << 10)

// EncodeBatchPaths packs paths into the request Path field. It fails on
// empty batches, batches over MaxBatchEntries, and encodings that would
// overflow the u16 path-length prefix of the request frame.
func EncodeBatchPaths(paths []string) (string, error) {
	if len(paths) == 0 {
		return "", fmt.Errorf("transport: empty batch")
	}
	if len(paths) > MaxBatchEntries {
		return "", fmt.Errorf("transport: batch of %d exceeds %d entries", len(paths), MaxBatchEntries)
	}
	total := 2
	for _, p := range paths {
		if len(p) > 1<<16-1 {
			return "", fmt.Errorf("transport: batch path too long (%d bytes)", len(p))
		}
		total += 2 + len(p)
	}
	if total > 1<<16-1 {
		return "", fmt.Errorf("transport: encoded batch (%d bytes) exceeds the path field", total)
	}
	buf := make([]byte, total)
	binary.LittleEndian.PutUint16(buf, uint16(len(paths)))
	off := 2
	for _, p := range paths {
		binary.LittleEndian.PutUint16(buf[off:], uint16(len(p)))
		off += 2
		off += copy(buf[off:], p)
	}
	return string(buf), nil
}

// DecodeBatchPaths unpacks a batch request's path list. Every decoded
// length is bounds-checked against the remaining blob before use — the
// blob arrived off the wire, so a corrupt count or entry length must
// surface as an error, never as an oversized slice.
func DecodeBatchPaths(blob string) ([]string, error) {
	if len(blob) < 2 {
		return nil, fmt.Errorf("transport: batch request truncated (%d bytes)", len(blob))
	}
	count := int(binary.LittleEndian.Uint16([]byte(blob[:2])))
	if count == 0 || count > MaxBatchEntries {
		return nil, fmt.Errorf("transport: batch count %d out of range", count)
	}
	paths := make([]string, 0, count)
	off := 2
	for i := 0; i < count; i++ {
		if off+2 > len(blob) {
			return nil, fmt.Errorf("transport: batch entry %d overruns the request", i)
		}
		n := int(binary.LittleEndian.Uint16([]byte(blob[off : off+2])))
		off += 2
		if off+n > len(blob) {
			return nil, fmt.Errorf("transport: batch entry %d length %d overruns the request", i, n)
		}
		paths = append(paths, blob[off:off+n])
		off += n
	}
	if off != len(blob) {
		return nil, fmt.Errorf("transport: %d trailing bytes after batch entry %d", len(blob)-off, count-1)
	}
	return paths, nil
}

// BatchResult is one entry of a decoded batch response.
type BatchResult struct {
	// Status is StatusOK, StatusError, or StatusAgain.
	Status uint8
	// Data is the payload for StatusOK entries. It aliases the response
	// frame: consume or copy it before Response.Release.
	Data []byte
	// Err carries the server's message for StatusError entries.
	Err string
}

// OK reports whether the entry carries a payload.
func (r *BatchResult) OK() bool { return r.Status == StatusOK }

// AppendBatchEntry appends one encoded result entry to buf and returns
// the extended slice. Servers build the response data section with it.
func AppendBatchEntry(buf []byte, status uint8, body []byte) []byte {
	var hdr [batchEntryOverhead]byte
	hdr[0] = status
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(body)))
	buf = append(buf, hdr[:]...)
	return append(buf, body...)
}

// DecodeBatchResults unpacks a batch response's data section into want
// entries. Entry lengths come off the wire and are bounds-checked against
// the remaining data before any slice is taken.
func DecodeBatchResults(data []byte, want int) ([]BatchResult, error) {
	if want <= 0 || want > MaxBatchEntries {
		return nil, fmt.Errorf("transport: batch result count %d out of range", want)
	}
	out := make([]BatchResult, 0, want)
	off := 0
	for i := 0; i < want; i++ {
		if off+batchEntryOverhead > len(data) {
			return nil, fmt.Errorf("transport: batch result %d overruns the response", i)
		}
		status := data[off]
		n := int(binary.LittleEndian.Uint32(data[off+1 : off+batchEntryOverhead]))
		off += batchEntryOverhead
		if n < 0 || off+n > len(data) {
			return nil, fmt.Errorf("transport: batch result %d length %d overruns the response", i, n)
		}
		r := BatchResult{Status: status}
		switch status {
		case StatusOK:
			r.Data = data[off : off+n : off+n]
		case StatusError:
			r.Err = string(data[off : off+n])
		case StatusAgain:
			// No body: the client re-reads the path individually.
		default:
			return nil, fmt.Errorf("transport: batch result %d has unknown status %d", i, status)
		}
		off += n
		out = append(out, r)
	}
	if off != len(data) {
		return nil, fmt.Errorf("transport: %d trailing bytes after batch result %d", len(data)-off, want-1)
	}
	return out, nil
}
