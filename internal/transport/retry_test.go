package transport

import (
	"testing"
	"testing/quick"
	"time"

	"hvac/internal/testutil"
)

// Property: the backoff schedule is deterministic for a fixed seed, every
// pause is positive and capped by MaxDelay, and the schedule never
// exceeds the attempt bound.
func TestRetryBackoffDeterministicAndBounded(t *testing.T) {
	f := func(seed uint64, rawAttempts uint8, baseMs, maxMs uint16) bool {
		p := RetryPolicy{
			MaxAttempts: int(rawAttempts%8) + 1,
			BaseDelay:   time.Duration(baseMs) * time.Millisecond,
			MaxDelay:    time.Duration(maxMs) * time.Millisecond,
			Seed:        seed,
		}
		q := p // identical policy, fresh value: must sleep identically
		norm := p.withDefaults()
		var total1, total2 time.Duration
		for retry := 1; retry < norm.MaxAttempts; retry++ {
			d1, d2 := p.Backoff(retry), q.Backoff(retry)
			if d1 != d2 {
				return false // not deterministic
			}
			if d1 <= 0 || d1 > norm.MaxDelay {
				return false // out of bounds
			}
			total1 += d1
			total2 += d2
		}
		return total1 == total2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for any attempt budget, Call gives up after exactly
// MaxAttempts tries and sleeps exactly the policy's backoff schedule —
// the total stall of a failed call is deterministic for a fixed seed.
func TestCallHonoursAttemptBudget(t *testing.T) {
	f := func(seed uint64, rawAttempts uint8) bool {
		policy := RetryPolicy{
			MaxAttempts: int(rawAttempts%5) + 1,
			BaseDelay:   time.Nanosecond, // schedule shape matters, not wall time
			MaxDelay:    time.Microsecond,
			Seed:        seed,
		}
		// 127.0.0.1:1 is reserved (discard) and refuses immediately.
		cli := DialWith("127.0.0.1:1", ClientOptions{DialTimeout: time.Second, Retry: policy})
		defer cli.Close()
		var sleeps []time.Duration
		cli.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
		if _, err := cli.Call(&Request{Op: OpPing}); err == nil {
			return false // there is no server; the call must fail
		}
		norm := policy.withDefaults()
		if len(sleeps) != norm.MaxAttempts-1 {
			return false // attempt bound violated
		}
		if cli.Retries() != int64(norm.MaxAttempts-1) {
			return false // retry budget accounting off
		}
		for i, d := range sleeps {
			if d != norm.Backoff(i+1) {
				return false // slept off-schedule
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Regression for the unbounded-call hazard: a deliberately hung handler
// must fail the call within the per-call deadline instead of blocking the
// training loop forever.
func TestCallTimeoutOnHungHandler(t *testing.T) {
	testutil.CheckLeaks(t)
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		if req.Op == OpRead {
			<-release // hang until the test lets go
		}
		return &Response{Status: StatusOK}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	defer close(release) // unblock the handler before srv.Close waits on it

	cli := DialWith(srv.Addr(), ClientOptions{
		CallTimeout: 50 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 1},
	})
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	start := time.Now()
	_, err = cli.Call(&Request{Op: OpRead, Len: 1})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("call against a hung handler succeeded")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("hung call took %v; the deadline did not fire", elapsed)
	}
}

// A timed-out connection must not be reused: the stale response would be
// delivered to the next call.
func TestTimedOutConnNotPooled(t *testing.T) {
	testutil.CheckLeaks(t)
	release := make(chan struct{})
	srv, err := Serve("127.0.0.1:0", func(req *Request) *Response {
		if req.Op == OpRead {
			<-release
		}
		return &Response{Status: StatusOK, Handle: req.Handle}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	defer close(release)

	cli := DialWith(srv.Addr(), ClientOptions{
		CallTimeout: 50 * time.Millisecond,
		Retry:       RetryPolicy{MaxAttempts: 1},
	})
	defer cli.Close()
	if _, err := cli.Call(&Request{Op: OpRead, Handle: 1}); err == nil {
		t.Fatal("hung read succeeded")
	}
	// The next call must run on a fresh connection and see its own reply.
	resp, err := cli.Call(&Request{Op: OpPing, Handle: 2})
	if err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	if resp.Handle != 2 {
		t.Fatalf("stale response delivered: handle %d, want 2", resp.Handle)
	}
}

// The default options keep the seed behaviour: two attempts, so an
// idle-closed pooled connection is retried transparently.
func TestDefaultPolicyHasRetryBudget(t *testing.T) {
	cli := Dial("127.0.0.1:1")
	defer cli.Close()
	if cli.retry.MaxAttempts != 2 {
		t.Fatalf("default attempts = %d, want 2", cli.retry.MaxAttempts)
	}
	if cli.callTimeout != DefaultCallTimeout {
		t.Fatalf("default call timeout = %v", cli.callTimeout)
	}
}
