package transport

import "time"

// Default retry/deadline parameters, chosen so a hung or dead server costs
// a training loop well under a second of stall before the PFS fallback
// kicks in, while an idle-closed connection is still retried transparently.
const (
	// DefaultCallTimeout bounds one Call attempt (request write + response
	// read) on a TCP client.
	DefaultCallTimeout = 30 * time.Second
	// DefaultWriteTimeout bounds one response write on the server, so a
	// dead client cannot pin a connection goroutine forever.
	DefaultWriteTimeout = 30 * time.Second

	defaultRetryAttempts  = 2
	defaultRetryBaseDelay = 2 * time.Millisecond
	defaultRetryMaxDelay  = 250 * time.Millisecond
)

// RetryPolicy is a bounded exponential-backoff retry schedule with seeded
// jitter. The schedule is a pure function of the policy, so for a fixed
// Seed the pause before every retry — and therefore the total sleep of a
// failed call — is deterministic, which keeps chaos runs replayable.
type RetryPolicy struct {
	// MaxAttempts is the total number of Call attempts (first try
	// included); values below 1 mean the default of 2.
	MaxAttempts int
	// BaseDelay is the pause before the first retry; it doubles per
	// retry. 0 means the 2 ms default.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (jitter included). 0 means the 250 ms
	// default.
	MaxDelay time.Duration
	// Seed drives the jitter stream.
	Seed uint64
}

// withDefaults fills zero fields with the package defaults.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = defaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultRetryBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultRetryMaxDelay
	}
	if p.BaseDelay > p.MaxDelay {
		p.BaseDelay = p.MaxDelay
	}
	return p
}

// Backoff returns the pause before retry number retry (1 = the pause
// between the first and second attempt). The exponential term doubles per
// retry and is capped at MaxDelay; up to half of it is replaced by
// deterministic jitter drawn from Seed.
func (p RetryPolicy) Backoff(retry int) time.Duration {
	p = p.withDefaults()
	if retry < 1 {
		return 0
	}
	d := p.BaseDelay
	for i := 1; i < retry; i++ {
		d *= 2
		if d <= 0 || d >= p.MaxDelay { // overflow or cap
			d = p.MaxDelay
			break
		}
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	// Deterministic jitter: keep half, redraw the other half from the
	// seeded stream so concurrent clients with distinct seeds decorrelate.
	half := d / 2
	if half > 0 {
		d = half + time.Duration(splitmix64(p.Seed^uint64(retry)*0x9e3779b97f4a7c15)%uint64(half)+1)
	}
	return d
}

// splitmix64 is the SplitMix64 mixer: a bijective avalanche function used
// to derive independent deterministic streams from a seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
