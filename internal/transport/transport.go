package transport

import (
	"bytes"
	"sync"
)

// Transport is the client side of one server link: the surface the HVAC
// client (and any decorator, such as the faultnet injector) programs
// against. The TCP implementation is *Client (returned by Dial/DialWith);
// *SimTransport is the in-memory implementation used by deterministic
// tests.
type Transport interface {
	// Call sends one request and waits for its response. A non-nil error
	// means the link failed (connection refused, deadline exceeded,
	// corrupt frame, ...); application-level failures travel inside the
	// Response with StatusError.
	Call(*Request) (*Response, error)
	// Addr names the peer, for placement and error reporting.
	Addr() string
	// Close releases the link. In-flight calls may fail.
	Close()
}

var (
	_ Transport = (*Client)(nil)
	_ Transport = (*SimTransport)(nil)
)

// SimTransport is an in-memory Transport that invokes a Handler directly,
// but round-trips both messages through the wire codec first, so frame
// sizes, encode errors and decode errors behave exactly as they do over
// TCP. Fault-injection decorators therefore exercise the same failure
// surface in simulated and real clusters.
type SimTransport struct {
	name    string
	handler Handler

	mu     sync.Mutex
	closed bool
	calls  int64
}

// NewSim builds an in-memory transport named name (its Addr) over handler.
func NewSim(name string, handler Handler) *SimTransport {
	return &SimTransport{name: name, handler: handler}
}

// Addr returns the transport's name.
func (s *SimTransport) Addr() string { return s.name }

// Calls reports how many calls have been issued.
func (s *SimTransport) Calls() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Call encodes req, decodes it for the handler, and round-trips the
// response the same way.
func (s *SimTransport) Call(req *Request) (*Response, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClientClosed
	}
	s.calls++
	s.mu.Unlock()

	var reqBuf bytes.Buffer
	if err := WriteRequest(&reqBuf, req); err != nil {
		return nil, err
	}
	decoded, err := ReadRequest(&reqBuf)
	if err != nil {
		return nil, err
	}
	resp := s.handler(decoded)
	if resp == nil {
		resp = &Response{Status: StatusError, Err: "nil response from handler"}
	}
	var respBuf bytes.Buffer
	err = WriteResponse(&respBuf, resp)
	// Same ownership contract as the TCP server loop: the handler's
	// response is recycled once encoded.
	resp.Release()
	if err != nil {
		return nil, err
	}
	return ReadResponse(&respBuf)
}

// Close marks the transport closed; later calls fail with ErrClientClosed.
func (s *SimTransport) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
}
