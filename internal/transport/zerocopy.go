package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"os"
	"sync/atomic"
	"syscall"
)

// Zero-copy payload plane (DESIGN.md §13). A response's payload can be
// an fd-backed range (SetPayloadFile) instead of an in-memory slice: the
// server's connection loop then hands the range to sendfile(2), so warm
// cache bytes travel cache-fd → socket entirely inside the kernel. The
// wire framing is unchanged — header, payload bytes, tail are
// bit-identical to the pooled pread+writev path — so the receiving codec
// cannot tell the difference, and any failure mode (non-TCP writer,
// non-Linux build, SimTransport, a short sendfile) falls back to
// userspace copies of exactly the bytes the frame promised.

// PayloadReleaser is the release half of an fd-backed payload: the
// transport calls Release exactly once when the owning Response is
// released, after the payload has been written (or abandoned on a dead
// connection). cachestore.Lease satisfies it.
type PayloadReleaser interface{ Release() }

// ZeroCopyStats counts fd-backed payload serves. Every eligible serve —
// a response carrying a file payload reaching WriteResponse — resolves
// as exactly one of Sends (the payload left through sendfile alone) or
// Fallbacks (any userspace bytes were involved: non-sendfile writer,
// mid-transfer error resume, or header failure). The //hvac:pair lines
// declare that identity to the statpair analyzer; the chaos tier
// asserts it end-to-end with ZeroCopy armed.
type ZeroCopyStats struct {
	//hvac:pair zerocopy left
	Eligible atomic.Int64
	//hvac:pair zerocopy right
	Sends atomic.Int64
	//hvac:pair zerocopy right
	Fallbacks atomic.Int64
	// Bytes counts payload bytes moved by sendfile itself (partial
	// transfers included); outside the pair identity.
	Bytes atomic.Int64
}

// orphanZC absorbs counts from responses whose builder attached no stats
// sink, so writeFileResponse never branches on a nil counter.
var orphanZC ZeroCopyStats

// SetPayloadFile attaches an fd-backed payload to the response: n bytes
// of f starting at off, released through rel when the Response is
// released. It replaces any slice payload (Data must stay nil). st
// receives the zero-copy accounting; nil means an internal sink.
//
//hvac:owns rel
func (r *Response) SetPayloadFile(f *os.File, off, n int64, rel PayloadReleaser, st *ZeroCopyStats) {
	r.srcFile = f
	r.srcOff = off
	r.srcLen = n
	r.srcRel = rel
	if st == nil {
		st = &orphanZC
	}
	r.srcStats = st
}

// FilePayload reports whether the response's payload is fd-backed. The
// server connection loop routes such responses through its
// sendfile-capable writer.
func (r *Response) FilePayload() bool { return r.srcFile != nil }

// releaseSrc drops the fd-backed payload state, invoking the releaser.
func (r *Response) releaseSrc() {
	if r.srcRel != nil {
		r.srcRel.Release()
	}
	r.srcFile = nil
	r.srcOff = 0
	r.srcLen = 0
	r.srcRel = nil
	r.srcStats = nil
}

// fileSender is a writer that may be able to move an fd range to its
// destination without a userspace copy. canSendfile answers per
// connection (TCP on Linux); sendPayload reports how many bytes the
// kernel moved before any error.
type fileSender interface {
	canSendfile() bool
	sendPayload(f *os.File, off, n int64) (int64, error)
}

// zcWriter wraps a server connection for file-payload responses only:
// plain writes delegate to the conn, and the payload goes through
// sendfile when the platform supports it. Normal (slice-payload)
// responses must keep writing to the raw conn — net.Buffers' writev
// fast path type-asserts the conn itself.
type zcWriter struct {
	conn net.Conn
	rc   syscall.RawConn // nil when the conn exposes no raw descriptor

	// sendfile loop state, kept on the struct (with step bound once) so
	// a warm serve allocates nothing per call.
	step   func(fd uintptr) bool
	srcFD  int
	off    int64
	remain int64
	serr   error
}

// newZCWriter builds the file-payload writer for one connection.
func newZCWriter(conn net.Conn) *zcWriter {
	w := &zcWriter{conn: conn}
	if sc, ok := conn.(syscall.Conn); ok {
		if rc, err := sc.SyscallConn(); err == nil {
			w.rc = rc
		}
	}
	return w
}

//hvac:blockguard serveConn sets the per-response write deadline on the underlying conn before routing a response here; a negative WriteTimeout disables it by design
func (w *zcWriter) Write(p []byte) (int, error) { return w.conn.Write(p) }

// writeFileResponse emits a response whose payload is an fd range. The
// frame on the wire is identical to WriteResponse's pooled path; only
// who copies the payload differs. Counter discipline: every path bumps
// Eligible exactly once and exactly one of Sends or Fallbacks — the
// statpair-checked identity the chaos tier asserts.
func writeFileResponse(w io.Writer, resp *Response) error {
	if len(resp.Err) > 1<<16-1 {
		return fmt.Errorf("transport: error string too long")
	}
	frame := respFixedLen + int(resp.srcLen) + len(resp.Err)
	if resp.srcLen < 0 || frame > MaxFrame {
		return ErrFrameTooLarge
	}
	p := getFrameBuf(respHeadLen + 2 + len(resp.Err))
	defer putFrameBuf(p)
	ht := (*p)[:respHeadLen+2+len(resp.Err)]
	binary.LittleEndian.PutUint32(ht[0:], uint32(frame))
	ht[4] = resp.Status
	binary.LittleEndian.PutUint64(ht[5:], uint64(resp.Handle))
	binary.LittleEndian.PutUint64(ht[13:], uint64(resp.Size))
	binary.LittleEndian.PutUint32(ht[21:], uint32(resp.srcLen))
	binary.LittleEndian.PutUint16(ht[respHeadLen:], uint16(len(resp.Err)))
	copy(ht[respHeadLen+2:], resp.Err)

	st := resp.srcStats
	if st == nil {
		st = &orphanZC
	}
	st.Eligible.Add(1)

	if fs, ok := w.(fileSender); ok && fs.canSendfile() {
		// Header first: it must precede the payload on the wire, and a
		// failure here means nothing of the frame went out.
		if _, err := w.Write(ht[:respHeadLen]); err != nil {
			st.Fallbacks.Add(1)
			return err
		}
		sent, err := fs.sendPayload(resp.srcFile, resp.srcOff, resp.srcLen)
		st.Bytes.Add(sent)
		if err == nil && sent == resp.srcLen {
			st.Sends.Add(1)
			_, werr := w.Write(ht[respHeadLen:])
			return werr
		}
		// Mid-transfer trouble (EPIPE, a shrunk source, a deadline):
		// the header already promised srcLen payload bytes, so resume
		// in userspace from wherever the kernel stopped. If the
		// connection is truly dead the resume write fails and the
		// server loop closes it — the client's retry ladder restores
		// byte identity on a fresh connection.
		st.Fallbacks.Add(1)
		if rerr := preadResume(w, resp, sent); rerr != nil {
			return rerr
		}
		_, werr := w.Write(ht[respHeadLen:])
		return werr
	}

	// Not a sendfile-capable destination (SimTransport buffers, non-TCP
	// writers, non-Linux builds): pooled pread plus the same single
	// vectored write the slice-payload path uses.
	st.Fallbacks.Add(1)
	pp := getFrameBuf(int(resp.srcLen))
	defer putFrameBuf(pp)
	payload := (*pp)[:resp.srcLen]
	if err := readPayloadAt(resp.srcFile, payload, resp.srcOff); err != nil {
		return err
	}
	v := respVecPool.Get().(*respVec)
	v.arr = [3][]byte{ht[:respHeadLen], payload, ht[respHeadLen:]}
	v.bufs = v.arr[:]
	_, err := v.bufs.WriteTo(w)
	v.arr = [3][]byte{} // drop payload references before pooling
	respVecPool.Put(v)
	return err
}

// preadResume copies the unsent payload tail [srcOff+sent, srcOff+srcLen)
// through userspace after a partial sendfile.
func preadResume(w io.Writer, resp *Response, sent int64) error {
	remain := resp.srcLen - sent
	if remain <= 0 {
		return nil
	}
	pp := getFrameBuf(int(remain))
	defer putFrameBuf(pp)
	buf := (*pp)[:remain]
	if err := readPayloadAt(resp.srcFile, buf, resp.srcOff+sent); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

// readPayloadAt fills buf from f at off, converting any short read into
// a hard error: the frame header has (or will have) promised exactly
// len(buf) payload bytes, so producing fewer must kill the connection
// rather than desynchronize the stream.
func readPayloadAt(f *os.File, buf []byte, off int64) error {
	n, err := f.ReadAt(buf, off)
	if n == len(buf) {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("transport: file payload short read (%d of %d bytes): %w", n, len(buf), err)
}
