package transport

import (
	"net"
	"sync"
)

// Frame-buffer pooling. Every frame the codec encodes or decodes, and
// every payload a server handler reads into, comes from a set of
// size-classed sync.Pools instead of a fresh make: on the warm read path
// the paper cares about (§IV — a cached read should cost near-NVMe
// latency, not allocator and GC time) the per-call allocation count drops
// to zero once the pools are primed.
//
// Ownership rules (see DESIGN.md §9):
//
//   - Buffers handed out by Response.Grab belong to that Response and are
//     returned by Response.Release — the single place a pooled frame goes
//     back.
//   - The codec's own scratch buffers (request frames, response
//     head/tail) never escape the encode/decode call.
//   - GetBuffer/PutBuffer are the loose ends for callers outside the
//     Response life cycle (chunked reads, copy loops). Forgetting PutBuffer
//     is safe — the GC reclaims the buffer and the pool just misses.

// Size classes are powers of two from 512 B (minBufClass) to MaxFrame
// (64 MiB, maxBufClass); requests above MaxFrame fall back to plain make.
const (
	minBufClass = 9
	maxBufClass = 26
)

var framePools [maxBufClass - minBufClass + 1]sync.Pool

// bufClass maps a byte count to its pool index, or -1 when unpoolable.
func bufClass(n int) int {
	if n < 0 || n > 1<<maxBufClass {
		return -1
	}
	c := minBufClass
	for 1<<c < n {
		c++
	}
	return c - minBufClass
}

// getFrameBuf returns a pooled buffer with capacity >= n. The *[]byte is
// the pool token: hand the same pointer back to putFrameBuf, so the round
// trip allocates nothing.
func getFrameBuf(n int) *[]byte {
	c := bufClass(n)
	if c < 0 {
		b := make([]byte, n)
		return &b
	}
	if p, ok := framePools[c].Get().(*[]byte); ok {
		return p
	}
	b := make([]byte, 1<<(c+minBufClass))
	return &b
}

// putFrameBuf returns a pooled buffer. Buffers whose capacity is not an
// exact size class (oversized make fallbacks) are dropped to the GC.
func putFrameBuf(p *[]byte) {
	n := cap(*p)
	if c := bufClass(n); c >= 0 && 1<<(c+minBufClass) == n {
		*p = (*p)[:n]
		framePools[c].Put(p)
	}
}

// GetBuffer returns a pooled byte slice of length n (capacity may be
// larger). Return it with PutBuffer when done; dropping it instead is
// safe but wastes the pool hit.
func GetBuffer(n int) []byte {
	p := getFrameBuf(n)
	return (*p)[:n]
}

// PutBuffer recycles a slice obtained from GetBuffer (or any slice whose
// capacity is an exact pool size class). The caller must not touch b
// afterwards.
func PutBuffer(b []byte) {
	if cap(b) == 0 {
		return
	}
	b = b[:cap(b)]
	putFrameBuf(&b)
}

// respVec is the pooled vectored-write state for WriteResponse: the
// net.Buffers slice is always rebuilt over the struct's own backing
// array, because Buffers.WriteTo consumes the slice header (advancing it
// past the backing) — pooling the bare header would re-allocate it on
// every reuse.
type respVec struct {
	bufs net.Buffers
	arr  [3][]byte
}

var respVecPool = sync.Pool{New: func() any { return new(respVec) }}

// respPool recycles Response structs between AcquireResponse and Release.
var respPool = sync.Pool{New: func() any { return new(Response) }}

// AcquireResponse returns a zeroed pooled Response. Pair it with Release:
// after Release the Response and any buffer obtained from its Grab must
// not be used. Responses built as plain literals remain valid targets for
// Release (it only recycles what came from a pool).
func AcquireResponse() *Response {
	r := respPool.Get().(*Response)
	r.fromPool = true
	return r
}
