// Fuzzing of damaged frames lives in an external test package so it can
// seed its corpora from the faultnet corrupter (which itself imports
// transport) without an import cycle.
package transport_test

import (
	"bytes"
	"testing"

	"hvac/internal/faultnet"
	"hvac/internal/transport"
)

// sampleFrames returns valid encoded request and response frames to
// damage.
func sampleFrames(t testing.TB) (req, resp []byte) {
	t.Helper()
	var reqBuf, respBuf bytes.Buffer
	if err := transport.WriteRequest(&reqBuf, &transport.Request{
		Op: transport.OpRead, Handle: 7, Off: 4096, Len: 16384, Path: "/gpfs/dataset/f0001.rec",
	}); err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteResponse(&respBuf, &transport.Response{
		Status: transport.StatusOK, Handle: 7, Size: 512, Data: bytes.Repeat([]byte{0x5A}, 512),
	}); err != nil {
		t.Fatal(err)
	}
	return reqBuf.Bytes(), respBuf.Bytes()
}

// FuzzReadRequestDamaged fuzzes the request decoder from corpora produced
// by the faultnet corrupter: truncated and bit-flipped variants of a
// valid frame. Decoding must error or succeed — never panic — and must
// not hand back more bytes than it was given (the frame length field is
// attacker-controlled).
func FuzzReadRequestDamaged(f *testing.F) {
	frame, _ := sampleFrames(f)
	for seed := uint64(1); seed <= 16; seed++ {
		c := faultnet.NewCorrupter(seed)
		f.Add(c.Truncate(append([]byte(nil), frame...)))
		f.Add(c.BitFlip(append([]byte(nil), frame...)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := transport.ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.Path) > len(data) {
			t.Fatalf("decoder over-allocated: %d path bytes from a %d byte input", len(req.Path), len(data))
		}
	})
}

// FuzzReadResponseDamaged is the response-side counterpart.
func FuzzReadResponseDamaged(f *testing.F) {
	_, frame := sampleFrames(f)
	for seed := uint64(1); seed <= 16; seed++ {
		c := faultnet.NewCorrupter(seed)
		f.Add(c.Truncate(append([]byte(nil), frame...)))
		f.Add(c.BitFlip(append([]byte(nil), frame...)))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := transport.ReadResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(resp.Data)+len(resp.Err) > len(data) {
			t.Fatalf("decoder over-allocated: %d payload bytes from a %d byte input",
				len(resp.Data)+len(resp.Err), len(data))
		}
	})
}

// Truncated frames must always fail decode: the length prefix promises
// bytes the reader cannot deliver. (Bit flips may decode — they can land
// in payload bytes — so only truncation gets the hard must-error check.)
func TestTruncatedFramesNeverDecode(t *testing.T) {
	reqFrame, respFrame := sampleFrames(t)
	for seed := uint64(0); seed < 256; seed++ {
		c := faultnet.NewCorrupter(seed)
		cut := c.Truncate(append([]byte(nil), reqFrame...))
		if _, err := transport.ReadRequest(bytes.NewReader(cut)); err == nil {
			t.Fatalf("seed %d: truncated request frame (%d of %d bytes) decoded", seed, len(cut), len(reqFrame))
		}
		cut = c.Truncate(append([]byte(nil), respFrame...))
		if _, err := transport.ReadResponse(bytes.NewReader(cut)); err == nil {
			t.Fatalf("seed %d: truncated response frame (%d of %d bytes) decoded", seed, len(cut), len(respFrame))
		}
	}
}
