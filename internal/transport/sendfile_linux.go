//go:build linux

package transport

import (
	"io"
	"os"
	"syscall"
)

// sendfileChunk caps one sendfile(2) count argument. The kernel caps a
// single transfer at ~2 GiB anyway; 1 GiB keeps the int math safely
// inside 32 bits everywhere.
const sendfileChunk = 1 << 30

// canSendfile reports whether this connection exposes a raw descriptor
// sendfile can target (plain TCP does; a future TLS wrapper would not).
func (w *zcWriter) canSendfile() bool { return w.rc != nil }

// sendPayload moves n bytes of f starting at off into the connection via
// sendfile(2), driven through the runtime netpoller: the step callback
// returns false on EAGAIN so RawConn.Write parks the goroutine until the
// socket is writable again, which also keeps the server's write deadline
// in force. Returns how many bytes the kernel moved, even on error, so
// the caller can resume the remainder in userspace.
func (w *zcWriter) sendPayload(f *os.File, off, n int64) (int64, error) {
	if w.step == nil {
		// Bound once per connection; the loop state lives on the struct
		// so warm serves allocate nothing.
		w.step = w.sendfileStep
	}
	w.srcFD = int(f.Fd())
	w.off = off
	w.remain = n
	w.serr = nil
	err := w.rc.Write(w.step)
	sent := n - w.remain
	if err == nil {
		err = w.serr
	}
	return sent, err
}

// sendfileStep is the RawConn.Write callback: push bytes until the
// socket would block (false → wait for writability), the transfer
// completes, or a real error lands in w.serr (true → stop waiting).
func (w *zcWriter) sendfileStep(fd uintptr) bool {
	for w.remain > 0 {
		chunk := w.remain
		if chunk > sendfileChunk {
			chunk = sendfileChunk
		}
		n, err := syscall.Sendfile(int(fd), w.srcFD, &w.off, int(chunk))
		if n > 0 {
			w.remain -= int64(n)
			continue
		}
		switch err {
		case nil:
			// Zero bytes with no error: the source is shorter than
			// promised (truncated under us).
			w.serr = io.ErrUnexpectedEOF
			return true
		case syscall.EINTR:
			continue
		case syscall.EAGAIN:
			return false
		default:
			w.serr = err
			return true
		}
	}
	return true
}
