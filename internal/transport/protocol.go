// Package transport is the Mercury-equivalent RPC and bulk-transfer layer
// for HVAC's real mode: a compact length-prefixed binary protocol over TCP
// sockets (the paper runs Mercury over InfiniBand; both expose the same two
// primitives — small RPCs and bulk data movement — with the same failure
// surface).
//
// Wire format, little-endian:
//
//	request:  u32 frame | u8 op | u64 handle | u64 off | u64 len | u16 pathLen | path
//	response: u32 frame | u8 status | u64 handle | u64 size | u32 dataLen | data | u16 errLen | err
//
// The frame length counts everything after the length field. Bulk payloads
// ride in the response's data section.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Op identifies an RPC operation.
type Op uint8

// Protocol operations: the three POSIX calls HVAC forwards (§III-D), Stat
// for probes, Ping for liveness, and Prefetch — the paper's future-work
// cache pre-population (§III-H / §IV-C) that hides the first-epoch copy.
const (
	OpOpen Op = iota + 1
	OpRead
	OpClose
	OpStat
	OpPing
	OpPrefetch
	// OpReadAt is a stateless ranged read used by segment-level caching
	// (§III-E mentions HFetch-style segment caching as the fix for
	// datasets with highly skewed file sizes): the byte range names the
	// segment; no server-side handle exists.
	OpReadAt
)

// Status codes.
const (
	StatusOK uint8 = iota
	StatusError
)

// MaxFrame bounds a frame to 64 MiB, comfortably above the 16 MiB reads
// the paper profiled from ResNet50's loader (§III-F).
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports an oversized or corrupt frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// Request is a client->server message.
type Request struct {
	Op     Op
	Handle int64
	Off    int64
	Len    int64
	Path   string
}

// Response is a server->client message.
type Response struct {
	Status uint8
	Handle int64
	Size   int64
	Data   []byte
	Err    string
}

// OK reports whether the response carries no error.
func (r *Response) OK() bool { return r.Status == StatusOK }

// Error converts an error response into a Go error, or nil.
func (r *Response) Error() error {
	if r.Status == StatusOK {
		return nil
	}
	return fmt.Errorf("transport: remote error: %s", r.Err)
}

// WriteRequest encodes req onto w.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.Path) > 1<<16-1 {
		return fmt.Errorf("transport: path too long (%d bytes)", len(req.Path))
	}
	frame := 1 + 8 + 8 + 8 + 2 + len(req.Path)
	buf := make([]byte, 4+frame)
	binary.LittleEndian.PutUint32(buf[0:], uint32(frame))
	buf[4] = byte(req.Op)
	binary.LittleEndian.PutUint64(buf[5:], uint64(req.Handle))
	binary.LittleEndian.PutUint64(buf[13:], uint64(req.Off))
	binary.LittleEndian.PutUint64(buf[21:], uint64(req.Len))
	binary.LittleEndian.PutUint16(buf[29:], uint16(len(req.Path)))
	copy(buf[31:], req.Path)
	_, err := w.Write(buf)
	return err
}

// ReadRequest decodes one request from r.
func ReadRequest(r io.Reader) (*Request, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	frame := binary.LittleEndian.Uint32(lenBuf[:])
	if frame > MaxFrame || frame < 31-4 {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, frame)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	req := &Request{
		Op:     Op(buf[0]),
		Handle: int64(binary.LittleEndian.Uint64(buf[1:])),
		Off:    int64(binary.LittleEndian.Uint64(buf[9:])),
		Len:    int64(binary.LittleEndian.Uint64(buf[17:])),
	}
	pathLen := int(binary.LittleEndian.Uint16(buf[25:]))
	if 27+pathLen > len(buf) {
		return nil, fmt.Errorf("transport: corrupt request: path length %d overruns frame", pathLen)
	}
	req.Path = string(buf[27 : 27+pathLen])
	return req, nil
}

// WriteResponse encodes resp onto w.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Err) > 1<<16-1 {
		return fmt.Errorf("transport: error string too long")
	}
	frame := 1 + 8 + 8 + 4 + len(resp.Data) + 2 + len(resp.Err)
	if frame > MaxFrame {
		return ErrFrameTooLarge
	}
	head := make([]byte, 4+1+8+8+4)
	binary.LittleEndian.PutUint32(head[0:], uint32(frame))
	head[4] = resp.Status
	binary.LittleEndian.PutUint64(head[5:], uint64(resp.Handle))
	binary.LittleEndian.PutUint64(head[13:], uint64(resp.Size))
	binary.LittleEndian.PutUint32(head[21:], uint32(len(resp.Data)))
	if _, err := w.Write(head); err != nil {
		return err
	}
	if len(resp.Data) > 0 {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	tail := make([]byte, 2+len(resp.Err))
	binary.LittleEndian.PutUint16(tail[0:], uint16(len(resp.Err)))
	copy(tail[2:], resp.Err)
	_, err := w.Write(tail)
	return err
}

// ReadResponse decodes one response from r.
func ReadResponse(r io.Reader) (*Response, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	frame := binary.LittleEndian.Uint32(lenBuf[:])
	if frame > MaxFrame || frame < 1+8+8+4+2 {
		return nil, ErrFrameTooLarge
	}
	buf := make([]byte, frame)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	resp := &Response{
		Status: buf[0],
		Handle: int64(binary.LittleEndian.Uint64(buf[1:])),
		Size:   int64(binary.LittleEndian.Uint64(buf[9:])),
	}
	dataLen := int(binary.LittleEndian.Uint32(buf[17:]))
	if 21+dataLen+2 > len(buf) {
		return nil, fmt.Errorf("transport: corrupt response: data length %d overruns frame", dataLen)
	}
	if dataLen > 0 {
		resp.Data = buf[21 : 21+dataLen : 21+dataLen]
	}
	errLen := int(binary.LittleEndian.Uint16(buf[21+dataLen:]))
	if 23+dataLen+errLen > len(buf) {
		return nil, fmt.Errorf("transport: corrupt response: error length %d overruns frame", errLen)
	}
	resp.Err = string(buf[23+dataLen : 23+dataLen+errLen])
	return resp, nil
}
