// Package transport is the Mercury-equivalent RPC and bulk-transfer layer
// for HVAC's real mode: a compact length-prefixed binary protocol over TCP
// sockets (the paper runs Mercury over InfiniBand; both expose the same two
// primitives — small RPCs and bulk data movement — with the same failure
// surface).
//
// Wire format, little-endian:
//
//	request:  u32 frame | u8 op | u64 handle | u64 off | u64 len | u16 pathLen | path
//	response: u32 frame | u8 status | u64 handle | u64 size | u32 dataLen | data | u16 errLen | err
//
// The frame length counts everything after the length field. Bulk payloads
// ride in the response's data section.
//
// The codec is allocation-free on the warm path: frames are encoded into
// and decoded from pooled buffers (pool.go), a response's payload is
// written with a vectored header+payload+tail write (one writev syscall
// on a TCP connection, zero payload copies), and decoded Responses come
// from a pool, returned by Response.Release.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Op identifies an RPC operation.
type Op uint8

// Protocol operations: the three POSIX calls HVAC forwards (§III-D), Stat
// for probes, Ping for liveness, and Prefetch — the paper's future-work
// cache pre-population (§III-H / §IV-C) that hides the first-epoch copy.
const (
	OpOpen Op = iota + 1
	OpRead
	OpClose
	OpStat
	OpPing
	OpPrefetch
	// OpReadAt is a stateless ranged read used by segment-level caching
	// (§III-E mentions HFetch-style segment caching as the fix for
	// datasets with highly skewed file sizes): the byte range names the
	// segment; no server-side handle exists.
	OpReadAt
	// OpReadBatch is a scatter-gather whole-file read: N paths in, N
	// payloads (or per-entry statuses) out, one RPC round trip for a
	// whole loader batch of small samples. See batch.go for the entry
	// encodings and the frame-budget contract.
	OpReadBatch
	// OpPlan installs one chunk of a clairvoyant epoch plan on a server:
	// Path carries a batch-encoded key list in access order (the same
	// encoding as OpReadBatch requests), Handle is the plan generation,
	// Off is the chunk's start index within the plan (0 replaces any
	// previous plan, later chunks must append in order), and Len is the
	// prefetch horizon in plan entries (0 = server default). The plan
	// drives the server's plan pump and Belady eviction scoring; it is
	// advisory — losing it only costs prefetch accuracy, never bytes.
	OpPlan
)

// Status codes. StatusAgain is only meaningful per batch entry: the
// server ran out of response frame budget and the client should retry
// that path individually.
const (
	StatusOK uint8 = iota
	StatusError
	StatusAgain
)

// MaxFrame bounds a frame to 64 MiB, comfortably above the 16 MiB reads
// the paper profiled from ResNet50's loader (§III-F).
const MaxFrame = 64 << 20

// Fixed-layout byte counts of the two frame kinds.
const (
	reqFixedLen  = 1 + 8 + 8 + 8 + 2 // op..pathLen, after the length field
	respHeadLen  = 4 + 1 + 8 + 8 + 4 // length field through dataLen
	respFixedLen = 1 + 8 + 8 + 4 + 2 // status..errLen, after the length field
)

// ErrFrameTooLarge reports an oversized or corrupt frame.
var ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")

// Request is a client->server message. A Request passed to a Handler is
// only valid for the duration of the call: the server decodes into one
// reused Request per connection. Handlers that need a field beyond the
// call must copy it (string fields are safe to retain — Go strings are
// immutable values).
type Request struct {
	Op     Op
	Handle int64
	Off    int64
	Len    int64
	Path   string
}

// Response is a server->client message.
//
// Ownership: a Response obtained from AcquireResponse or ReadResponse —
// and any payload buffer obtained from its Grab — belongs to the caller
// until Release, which recycles both. Release is optional for
// correctness (the GC reclaims unreturned responses) but mandatory for
// the zero-allocation hot path. After Release the Response and its Data
// must not be touched.
type Response struct {
	Status uint8
	Handle int64
	Size   int64
	Data   []byte
	Err    string

	pooled   *[]byte // backing frame/payload buffer owned by this response
	fromPool bool    // struct came from respPool (AcquireResponse/ReadResponse)

	// fd-backed payload (zerocopy.go): when srcFile is set the payload is
	// srcLen bytes of srcFile at srcOff, Data stays nil, and srcRel is
	// released with the response. srcStats receives the serve accounting.
	srcFile  *os.File
	srcOff   int64
	srcLen   int64
	srcRel   PayloadReleaser
	srcStats *ZeroCopyStats
}

// OK reports whether the response carries no error.
func (r *Response) OK() bool { return r.Status == StatusOK }

// Error converts an error response into a Go error, or nil.
func (r *Response) Error() error {
	if r.Status == StatusOK {
		return nil
	}
	return fmt.Errorf("transport: remote error: %s", r.Err)
}

// Grab returns a pooled buffer of length n owned by the response: it is
// recycled by Release. Handlers use it for payloads (set Data to a prefix
// of it) so a served read allocates nothing.
func (r *Response) Grab(n int) []byte {
	if r.pooled != nil {
		putFrameBuf(r.pooled)
	}
	r.pooled = getFrameBuf(n)
	return (*r.pooled)[:n]
}

// Release recycles the response's pooled payload buffer and, when the
// Response itself came from AcquireResponse/ReadResponse, the struct too.
// Calling Release on a literal Response is safe. The Response and any
// buffer from its Grab must not be used afterwards.
func (r *Response) Release() {
	if r.pooled != nil {
		putFrameBuf(r.pooled)
		r.pooled = nil
	}
	if r.srcRel != nil || r.srcFile != nil {
		r.releaseSrc()
	}
	if r.fromPool {
		*r = Response{}
		respPool.Put(r)
		return
	}
	r.Data = nil
}

// WriteRequest encodes req onto w using a pooled scratch frame.
func WriteRequest(w io.Writer, req *Request) error {
	if len(req.Path) > 1<<16-1 {
		return fmt.Errorf("transport: path too long (%d bytes)", len(req.Path))
	}
	frame := reqFixedLen + len(req.Path)
	p := getFrameBuf(4 + frame)
	buf := (*p)[:4+frame]
	binary.LittleEndian.PutUint32(buf[0:], uint32(frame))
	buf[4] = byte(req.Op)
	binary.LittleEndian.PutUint64(buf[5:], uint64(req.Handle))
	binary.LittleEndian.PutUint64(buf[13:], uint64(req.Off))
	binary.LittleEndian.PutUint64(buf[21:], uint64(req.Len))
	binary.LittleEndian.PutUint16(buf[29:], uint16(len(req.Path)))
	copy(buf[31:], req.Path)
	_, err := w.Write(buf)
	putFrameBuf(p)
	return err
}

// ReadRequestInto decodes one request from r into *req, overwriting every
// field. The decode scratch is pooled, so a server connection loop that
// reuses one Request allocates only the path string per call.
func ReadRequestInto(r io.Reader, req *Request) error {
	// The length prefix is read into a pooled scratch, not a stack array:
	// a [4]byte passed through the io.Reader interface escapes, which
	// would cost one heap allocation per decode.
	lp := getFrameBuf(4)
	_, err := io.ReadFull(r, (*lp)[:4])
	frame := binary.LittleEndian.Uint32((*lp)[:4])
	putFrameBuf(lp)
	if err != nil {
		return err
	}
	if frame > MaxFrame || frame < reqFixedLen {
		return ErrFrameTooLarge
	}
	p := getFrameBuf(int(frame))
	buf := (*p)[:frame]
	if _, err := io.ReadFull(r, buf); err != nil {
		putFrameBuf(p)
		return err
	}
	req.Op = Op(buf[0])
	req.Handle = int64(binary.LittleEndian.Uint64(buf[1:]))
	req.Off = int64(binary.LittleEndian.Uint64(buf[9:]))
	req.Len = int64(binary.LittleEndian.Uint64(buf[17:]))
	pathLen := int(binary.LittleEndian.Uint16(buf[25:]))
	if 27+pathLen > len(buf) {
		putFrameBuf(p)
		return fmt.Errorf("transport: corrupt request: path length %d overruns frame", pathLen)
	}
	req.Path = string(buf[27 : 27+pathLen])
	putFrameBuf(p)
	return nil
}

// ReadRequest decodes one request from r.
func ReadRequest(r io.Reader) (*Request, error) {
	req := new(Request)
	if err := ReadRequestInto(r, req); err != nil {
		return nil, err
	}
	return req, nil
}

// WriteResponse encodes resp onto w. The header and tail are built in one
// pooled scratch buffer; when a payload is present the three sections go
// out as a vectored write (net.Buffers), which a TCP connection turns
// into a single writev with no payload copy.
func WriteResponse(w io.Writer, resp *Response) error {
	if resp.srcFile != nil {
		// fd-backed payload: same frame on the wire, but the payload can
		// leave via sendfile when w supports it (zerocopy.go).
		return writeFileResponse(w, resp)
	}
	if len(resp.Err) > 1<<16-1 {
		return fmt.Errorf("transport: error string too long")
	}
	frame := respFixedLen + len(resp.Data) + len(resp.Err)
	if frame > MaxFrame {
		return ErrFrameTooLarge
	}
	p := getFrameBuf(respHeadLen + 2 + len(resp.Err))
	ht := (*p)[:respHeadLen+2+len(resp.Err)]
	binary.LittleEndian.PutUint32(ht[0:], uint32(frame))
	ht[4] = resp.Status
	binary.LittleEndian.PutUint64(ht[5:], uint64(resp.Handle))
	binary.LittleEndian.PutUint64(ht[13:], uint64(resp.Size))
	binary.LittleEndian.PutUint32(ht[21:], uint32(len(resp.Data)))
	binary.LittleEndian.PutUint16(ht[respHeadLen:], uint16(len(resp.Err)))
	copy(ht[respHeadLen+2:], resp.Err)

	var err error
	if len(resp.Data) == 0 {
		// Header and tail are contiguous in the scratch: one plain write.
		_, err = w.Write(ht)
	} else {
		v := respVecPool.Get().(*respVec)
		v.arr = [3][]byte{ht[:respHeadLen], resp.Data, ht[respHeadLen:]}
		v.bufs = v.arr[:]
		_, err = v.bufs.WriteTo(w)
		v.arr = [3][]byte{} // drop payload references before pooling
		respVecPool.Put(v)
	}
	putFrameBuf(p)
	return err
}

// ReadResponse decodes one response from r. The returned Response is
// pooled and its Data aliases a pooled frame buffer: call Release once
// the payload has been consumed (or keep the Response and let the GC
// reclaim it — correct, but off the zero-allocation path).
func ReadResponse(r io.Reader) (*Response, error) {
	// Pooled length-prefix scratch for the same escape reason as
	// ReadRequestInto.
	lp := getFrameBuf(4)
	_, err := io.ReadFull(r, (*lp)[:4])
	frame := binary.LittleEndian.Uint32((*lp)[:4])
	putFrameBuf(lp)
	if err != nil {
		return nil, err
	}
	if frame > MaxFrame || frame < respFixedLen {
		return nil, ErrFrameTooLarge
	}
	resp := AcquireResponse()
	resp.pooled = getFrameBuf(int(frame))
	buf := (*resp.pooled)[:frame]
	if _, err := io.ReadFull(r, buf); err != nil {
		resp.Release()
		return nil, err
	}
	resp.Status = buf[0]
	resp.Handle = int64(binary.LittleEndian.Uint64(buf[1:]))
	resp.Size = int64(binary.LittleEndian.Uint64(buf[9:]))
	dataLen := int(binary.LittleEndian.Uint32(buf[17:]))
	if 21+dataLen+2 > len(buf) {
		resp.Release()
		return nil, fmt.Errorf("transport: corrupt response: data length %d overruns frame", dataLen)
	}
	if dataLen > 0 {
		resp.Data = buf[21 : 21+dataLen : 21+dataLen]
	}
	errLen := int(binary.LittleEndian.Uint16(buf[21+dataLen:]))
	if 23+dataLen+errLen > len(buf) {
		resp.Release()
		return nil, fmt.Errorf("transport: corrupt response: error length %d overruns frame", errLen)
	}
	if errLen > 0 {
		resp.Err = string(buf[23+dataLen : 23+dataLen+errLen])
	}
	return resp, nil
}
