package transport

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	f := func(op uint8, handle, off, length int64, path string) bool {
		if len(path) > 60000 {
			path = path[:60000]
		}
		req := &Request{Op: Op(op), Handle: handle, Off: off, Len: length, Path: path}
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			return false
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(req, got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	f := func(status uint8, handle, size int64, data []byte, errStr string) bool {
		if len(data) > 1<<20 {
			data = data[:1<<20]
		}
		if len(errStr) > 60000 {
			errStr = errStr[:60000]
		}
		if len(data) == 0 {
			data = nil
		}
		resp := &Response{Status: status, Handle: handle, Size: size, Data: data, Err: errStr}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			return false
		}
		got, err := ReadResponse(&buf)
		if err != nil {
			return false
		}
		return got.Status == resp.Status && got.Handle == resp.Handle &&
			got.Size == resp.Size && bytes.Equal(got.Data, resp.Data) && got.Err == resp.Err
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	// Oversized frame length.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadRequest(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Path length overrunning the frame.
	req := &Request{Op: OpOpen, Path: "abc"}
	var b2 bytes.Buffer
	WriteRequest(&b2, req)
	raw := b2.Bytes()
	raw[29] = 0xff // corrupt pathLen
	if _, err := ReadRequest(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupt path length accepted")
	}
}

func TestResponseError(t *testing.T) {
	ok := &Response{Status: StatusOK}
	if !ok.OK() || ok.Error() != nil {
		t.Fatal("ok response misreported")
	}
	bad := &Response{Status: StatusError, Err: "no such file"}
	if bad.OK() || bad.Error() == nil || !strings.Contains(bad.Error().Error(), "no such file") {
		t.Fatalf("bad response: %v", bad.Error())
	}
}

func echoHandler(req *Request) *Response {
	switch req.Op {
	case OpPing:
		return &Response{Status: StatusOK}
	case OpOpen:
		return &Response{Status: StatusOK, Handle: 7, Size: int64(len(req.Path))}
	case OpRead:
		data := make([]byte, req.Len)
		for i := range data {
			data[i] = byte(req.Off + int64(i))
		}
		return &Response{Status: StatusOK, Data: data, Size: req.Len}
	default:
		return &Response{Status: StatusError, Err: fmt.Sprintf("bad op %d", req.Op)}
	}
}

func TestClientServerRPC(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli := Dial(srv.Addr())
	defer cli.Close()

	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	resp, err := cli.Call(&Request{Op: OpOpen, Path: "/data/file"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Handle != 7 || resp.Size != int64(len("/data/file")) {
		t.Fatalf("open resp = %+v", resp)
	}
	resp, err = cli.Call(&Request{Op: OpRead, Off: 3, Len: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, []byte{3, 4, 5, 6, 7}) {
		t.Fatalf("read data = %v", resp.Data)
	}
	resp, err = cli.Call(&Request{Op: OpClose})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("expected error status for unsupported op")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := Dial(srv.Addr())
			defer cli.Close()
			for i := 0; i < 100; i++ {
				resp, err := cli.Call(&Request{Op: OpRead, Off: int64(i), Len: 16})
				if err != nil {
					t.Error(err)
					return
				}
				if len(resp.Data) != 16 || resp.Data[0] != byte(i) {
					t.Errorf("bad payload at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCallAfterServerClose(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(srv.Addr())
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := cli.Ping(); err == nil {
		t.Fatal("ping succeeded against closed server")
	}
}

func TestClientReconnectsAfterIdleConnDrop(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	cli := Dial(srv.Addr())
	defer cli.Close()
	if err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	// Restart the server on the SAME address: pooled conn is now dead and
	// Call must retry on a fresh connection.
	addr := srv.Addr()
	srv.Close()
	srv2, err := Serve(addr, echoHandler)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	if err := cli.Ping(); err != nil {
		t.Fatalf("ping after server restart: %v", err)
	}
}

func TestClientClosed(t *testing.T) {
	cli := Dial("127.0.0.1:1")
	cli.Close()
	if _, err := cli.Call(&Request{Op: OpPing}); err != ErrClientClosed {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
}
