package transport

import (
	"bytes"
	"testing"
)

// FuzzReadRequest ensures arbitrary bytes never panic the request decoder
// and that valid encodings round-trip.
func FuzzReadRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	WriteRequest(&seedBuf, &Request{Op: OpOpen, Handle: 7, Off: 1024, Len: 4096, Path: "/gpfs/a"})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ReadRequest(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully decoded request must re-encode and re-decode to
		// the same value.
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("re-encode of decoded request failed: %v", err)
		}
		req2, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if *req2 != *req {
			t.Fatalf("round trip mismatch: %+v vs %+v", req, req2)
		}
	})
}

// FuzzReadResponse does the same for the response decoder.
func FuzzReadResponse(f *testing.F) {
	var seedBuf bytes.Buffer
	WriteResponse(&seedBuf, &Response{Status: StatusOK, Handle: 3, Size: 99, Data: []byte("xyz"), Err: ""})
	f.Add(seedBuf.Bytes())
	f.Add([]byte{23, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ReadResponse(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteResponse(&buf, resp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		resp2, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if resp2.Status != resp.Status || resp2.Handle != resp.Handle ||
			resp2.Size != resp.Size || !bytes.Equal(resp2.Data, resp.Data) || resp2.Err != resp.Err {
			t.Fatalf("round trip mismatch")
		}
	})
}
