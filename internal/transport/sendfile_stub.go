//go:build !linux

package transport

import (
	"errors"
	"os"
)

// Non-Linux builds have no sendfile path: every file-payload response
// takes writeFileResponse's pooled pread+writev fallback.

func (w *zcWriter) canSendfile() bool { return false }

func (w *zcWriter) sendPayload(f *os.File, off, n int64) (int64, error) {
	return 0, errors.New("transport: sendfile unavailable on this platform")
}
