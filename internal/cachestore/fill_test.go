package cachestore

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// TestCopyFromFinalPartialChunkWakes is the watermark-ordering
// regression promised in CopyFrom's comment: a reader blocked in
// Fill.ReadAt on the final, partial chunk must be woken by that chunk's
// broadcast and observe the bytes. Were written advanced outside the
// broadcast's critical section the reader could consume the wakeup
// before the watermark covered its range and sleep forever — the
// timeout below is the failure mode. The source is a pipe, so on Linux
// this also drives the spliced-ingest path (socket/pipe → transit pipe
// → temp file) end to end, and the committed bytes are checked verbatim.
func TestCopyFromFinalPartialChunkWakes(t *testing.T) {
	s := newTestStore(t, 8<<20, NewLRU())
	const size = fillChunk + 4096 // final chunk is partial
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i*13 + 7)
	}

	f, err := s.PutWriter("k", size)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Acquire() {
		t.Fatal("acquire on a live fill failed")
	}

	// Block on the tail range before a single byte has landed: only the
	// final partial chunk's broadcast can satisfy this read.
	tail := make([]byte, size-fillChunk)
	readDone := make(chan error, 1)
	go func() {
		_, rerr := f.ReadAt(tail, fillChunk)
		readDone <- rerr
	}()

	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	go func() {
		_, _ = pw.Write(data) // pipe capacity < size: feed concurrently
		pw.Close()
	}()

	n, err := f.CopyFrom(pr, 0, size)
	if err != nil || n != size {
		t.Fatalf("CopyFrom moved %d of %d bytes: %v", n, size, err)
	}

	select {
	case rerr := <-readDone:
		if rerr != nil {
			t.Fatalf("tail read: %v", rerr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reader still blocked after the final partial chunk landed (lost wakeup)")
	}
	if !bytes.Equal(tail, data[fillChunk:]) {
		t.Fatal("tail bytes differ from the source")
	}

	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	f.Release()

	// The committed entry must hold the (possibly spliced) bytes verbatim.
	got := make([]byte, size)
	if _, err := s.ReadAt("k", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("committed bytes differ from the pipe source")
	}
}

// TestCopyFromRegularFileSource pins the non-splice ingest lane: a
// regular-file source bypasses the transit pipe (newSplicer declines
// anything that is not a pipe or socket) and lands through ReadFrom,
// byte-identically and with correct chunked watermarks.
func TestCopyFromRegularFileSource(t *testing.T) {
	s := newTestStore(t, 8<<20, NewLRU())
	const size = 2*fillChunk + 123
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	srcPath := s.Dir() + "/src"
	if err := os.WriteFile(srcPath, append([]byte("skip"), data...), 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := os.Open(srcPath)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	f, err := s.PutWriter("k", size)
	if err != nil {
		t.Fatal(err)
	}
	if sp := newSplicer(src, f.file); sp != nil {
		sp.close()
		t.Fatal("splicer accepted a regular file source")
	}
	n, err := f.CopyFrom(src, 4, size) // offset past the "skip" prefix
	if err != nil || n != size {
		t.Fatalf("CopyFrom moved %d of %d bytes: %v", n, size, err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, size)
	if _, err := s.ReadAt("k", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("committed bytes differ from the file source")
	}
	_ = os.Remove(srcPath) // keep the cache dir consistent for other assertions
}
