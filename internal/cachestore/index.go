// Package cachestore implements the node-local cache an HVAC server keeps
// on its fast storage: capacity accounting, pinning of in-use files, and
// the eviction policies from §III-G. The paper evicts randomly (datasets
// rarely outgrow the aggregate NVMe of a 1,024-node allocation); LRU, FIFO
// and CLOCK are included for the ablation benchmarks.
//
// The Index is content-agnostic — it tracks keys, sizes and eviction state
// — so the same logic drives both the real on-disk store (Store) and the
// simulated device-backed store in internal/core.
package cachestore

import (
	"errors"
	"fmt"
)

// ErrTooLarge is returned when an item can never fit the cache.
var ErrTooLarge = errors.New("cachestore: item larger than capacity")

// ErrNoVictim is returned when eviction is needed but every entry is
// pinned by an in-flight read.
var ErrNoVictim = errors.New("cachestore: all entries pinned, nothing evictable")

// Policy chooses eviction victims. Implementations are not safe for
// concurrent use; the Index (or its caller) serialises access.
type Policy interface {
	Name() string
	// OnInsert records a new key.
	OnInsert(key string)
	// OnAccess records a hit on key.
	OnAccess(key string)
	// OnRemove forgets key (evicted or explicitly removed).
	OnRemove(key string)
	// Victim proposes a key to evict, skipping keys for which excluded
	// returns true. It returns "" when nothing qualifies.
	Victim(excluded func(string) bool) string
}

type entry struct {
	size int64
	pins int
}

// Index tracks cached keys against a byte capacity.
type Index struct {
	capacity int64
	used     int64
	policy   Policy
	entries  map[string]*entry

	hits      int64
	misses    int64
	evictions int64
}

// NewIndex builds an index with the given capacity and eviction policy.
func NewIndex(capacity int64, policy Policy) *Index {
	if policy == nil {
		policy = NewRandom(0)
	}
	return &Index{capacity: capacity, policy: policy, entries: make(map[string]*entry)}
}

// Capacity returns the configured byte capacity.
func (ix *Index) Capacity() int64 { return ix.capacity }

// Used returns the bytes currently cached.
func (ix *Index) Used() int64 { return ix.used }

// Len returns the number of cached entries.
func (ix *Index) Len() int { return len(ix.entries) }

// Policy returns the eviction policy.
func (ix *Index) Policy() Policy { return ix.policy }

// Contains reports whether key is cached, updating hit/miss counters and
// recency state.
func (ix *Index) Contains(key string) bool {
	if _, ok := ix.entries[key]; ok {
		ix.hits++
		ix.policy.OnAccess(key)
		return true
	}
	ix.misses++
	return false
}

// Peek reports whether key is cached without touching counters or recency.
func (ix *Index) Peek(key string) bool {
	_, ok := ix.entries[key]
	return ok
}

// Size returns the stored size of key.
func (ix *Index) Size(key string) (int64, bool) {
	e, ok := ix.entries[key]
	if !ok {
		return 0, false
	}
	return e.size, true
}

// Insert admits key with the given size, evicting as needed. It returns
// the keys evicted to make room. Inserting an existing key is a no-op.
func (ix *Index) Insert(key string, size int64) (evicted []string, err error) {
	if _, ok := ix.entries[key]; ok {
		return nil, nil
	}
	if size > ix.capacity {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, size, ix.capacity)
	}
	for ix.used+size > ix.capacity {
		victim := ix.policy.Victim(func(k string) bool { return ix.entries[k].pins > 0 })
		if victim == "" {
			return evicted, fmt.Errorf("%w (need %d bytes, %d used)", ErrNoVictim, size, ix.used)
		}
		ix.removeLocked(victim)
		ix.evictions++
		evicted = append(evicted, victim)
	}
	ix.entries[key] = &entry{size: size}
	ix.used += size
	ix.policy.OnInsert(key)
	return evicted, nil
}

// Remove deletes key regardless of pins (server teardown); it reports
// whether the key was present.
func (ix *Index) Remove(key string) bool {
	if _, ok := ix.entries[key]; !ok {
		return false
	}
	ix.removeLocked(key)
	return true
}

func (ix *Index) removeLocked(key string) {
	e := ix.entries[key]
	ix.used -= e.size
	delete(ix.entries, key)
	ix.policy.OnRemove(key)
}

// Pin marks key in use so it cannot be evicted. Returns false if absent.
func (ix *Index) Pin(key string) bool {
	e, ok := ix.entries[key]
	if !ok {
		return false
	}
	e.pins++
	return true
}

// Unpin releases one pin on key.
func (ix *Index) Unpin(key string) {
	e, ok := ix.entries[key]
	if !ok {
		return
	}
	e.pins--
	if e.pins < 0 {
		panic("cachestore: unpin without pin on " + key)
	}
}

// Keys returns all cached keys in unspecified order.
func (ix *Index) Keys() []string {
	out := make([]string, 0, len(ix.entries))
	for k := range ix.entries {
		out = append(out, k)
	}
	return out
}

// Stats reports hits, misses and evictions since creation.
func (ix *Index) Stats() (hits, misses, evictions int64) {
	return ix.hits, ix.misses, ix.evictions
}
