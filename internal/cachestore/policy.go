package cachestore

import (
	"container/list"

	"hvac/internal/sim"
)

// Random is the paper's eviction policy (§III-G): pick an unpinned victim
// uniformly at random. Deterministic under a fixed seed.
type Random struct {
	rng  *sim.RNG
	keys []string
	pos  map[string]int
}

// NewRandom returns a random policy seeded with seed (0 is a valid seed).
func NewRandom(seed uint64) *Random {
	return &Random{rng: sim.NewRNG(seed), pos: make(map[string]int)}
}

// Name implements Policy.
func (r *Random) Name() string { return "random" }

// OnInsert implements Policy.
func (r *Random) OnInsert(key string) {
	r.pos[key] = len(r.keys)
	r.keys = append(r.keys, key)
}

// OnAccess implements Policy (random ignores recency).
func (r *Random) OnAccess(string) {}

// OnRemove implements Policy with O(1) swap-delete.
func (r *Random) OnRemove(key string) {
	i, ok := r.pos[key]
	if !ok {
		return
	}
	last := len(r.keys) - 1
	r.keys[i] = r.keys[last]
	r.pos[r.keys[i]] = i
	r.keys = r.keys[:last]
	delete(r.pos, key)
}

// Victim implements Policy: random probes, then a linear sweep so a
// mostly-pinned cache still finds the stray evictable entry.
func (r *Random) Victim(excluded func(string) bool) string {
	n := len(r.keys)
	if n == 0 {
		return ""
	}
	for try := 0; try < 8; try++ {
		k := r.keys[r.rng.Intn(n)]
		if !excluded(k) {
			return k
		}
	}
	start := r.rng.Intn(n)
	for i := 0; i < n; i++ {
		k := r.keys[(start+i)%n]
		if !excluded(k) {
			return k
		}
	}
	return ""
}

// listPolicy is the shared shape of LRU and FIFO: a recency/insertion list
// evicting from the front.
type listPolicy struct {
	name      string
	moveOnHit bool
	ll        *list.List
	elems     map[string]*list.Element
}

func newListPolicy(name string, moveOnHit bool) *listPolicy {
	return &listPolicy{name: name, moveOnHit: moveOnHit, ll: list.New(), elems: make(map[string]*list.Element)}
}

// NewLRU returns least-recently-used eviction.
func NewLRU() Policy { return newListPolicy("lru", true) }

// NewFIFO returns insertion-order eviction.
func NewFIFO() Policy { return newListPolicy("fifo", false) }

func (l *listPolicy) Name() string { return l.name }

func (l *listPolicy) OnInsert(key string) {
	l.elems[key] = l.ll.PushBack(key)
}

func (l *listPolicy) OnAccess(key string) {
	if !l.moveOnHit {
		return
	}
	if e, ok := l.elems[key]; ok {
		l.ll.MoveToBack(e)
	}
}

func (l *listPolicy) OnRemove(key string) {
	if e, ok := l.elems[key]; ok {
		l.ll.Remove(e)
		delete(l.elems, key)
	}
}

func (l *listPolicy) Victim(excluded func(string) bool) string {
	for e := l.ll.Front(); e != nil; e = e.Next() {
		k := e.Value.(string)
		if !excluded(k) {
			return k
		}
	}
	return ""
}

// Clock is the second-chance approximation of LRU.
type Clock struct {
	keys []string
	ref  map[string]bool
	pos  map[string]int
	hand int
}

// NewClock returns a CLOCK policy.
func NewClock() *Clock {
	return &Clock{ref: make(map[string]bool), pos: make(map[string]int)}
}

// Name implements Policy.
func (c *Clock) Name() string { return "clock" }

// OnInsert implements Policy.
func (c *Clock) OnInsert(key string) {
	c.pos[key] = len(c.keys)
	c.keys = append(c.keys, key)
	c.ref[key] = false
}

// OnAccess implements Policy: set the reference bit.
func (c *Clock) OnAccess(key string) {
	if _, ok := c.pos[key]; ok {
		c.ref[key] = true
	}
}

// OnRemove implements Policy.
func (c *Clock) OnRemove(key string) {
	i, ok := c.pos[key]
	if !ok {
		return
	}
	last := len(c.keys) - 1
	c.keys[i] = c.keys[last]
	c.pos[c.keys[i]] = i
	c.keys = c.keys[:last]
	delete(c.pos, key)
	delete(c.ref, key)
	if c.hand > last {
		c.hand = 0
	}
}

// Victim implements Policy: sweep clearing reference bits; two full passes
// guarantee an unreferenced, unexcluded entry is found if one exists.
func (c *Clock) Victim(excluded func(string) bool) string {
	n := len(c.keys)
	if n == 0 {
		return ""
	}
	for i := 0; i < 2*n; i++ {
		if c.hand >= len(c.keys) {
			c.hand = 0
		}
		k := c.keys[c.hand]
		c.hand++
		if excluded(k) {
			continue
		}
		if c.ref[k] {
			c.ref[k] = false
			continue
		}
		return k
	}
	return ""
}
