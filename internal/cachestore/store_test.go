package cachestore

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func newTestStore(t *testing.T, capacity int64, p Policy) *Store {
	t.Helper()
	s, err := NewStore(filepath.Join(t.TempDir(), "cache"), capacity, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutOpenRoundTrip(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	content := []byte("hello hvac cache")
	if err := s.Put("/pfs/data/a.bin", int64(len(content)), bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	if !s.Contains("/pfs/data/a.bin") {
		t.Fatal("not cached after Put")
	}
	f, release, err := s.Open("/pfs/data/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	f.Close()
	release()
	if err != nil || !bytes.Equal(got, content) {
		t.Fatalf("read back %q, %v", got, err)
	}
}

func TestPutDuplicateNoop(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	s.Put("k", 3, strings.NewReader("abc"))
	if err := s.Put("k", 3, strings.NewReader("xyz")); err != nil {
		t.Fatal(err)
	}
	f, release, _ := s.Open("k")
	got, _ := io.ReadAll(f)
	f.Close()
	release()
	if string(got) != "abc" {
		t.Fatalf("duplicate Put overwrote content: %q", got)
	}
}

func TestShortSourceFails(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	err := s.Put("k", 100, strings.NewReader("only a few bytes"))
	if err == nil {
		t.Fatal("short copy should fail")
	}
	if s.Contains("k") {
		t.Fatal("failed Put left index entry")
	}
	if s.Used() != 0 {
		t.Fatalf("used = %d after failed put", s.Used())
	}
}

func TestEvictionRemovesFile(t *testing.T) {
	s := newTestStore(t, 10, NewFIFO())
	s.Put("a", 6, strings.NewReader("aaaaaa"))
	s.Put("b", 6, strings.NewReader("bbbbbb")) // evicts a
	if s.Contains("a") {
		t.Fatal("a should be evicted")
	}
	if _, _, err := s.Open("a"); err == nil {
		t.Fatal("open of evicted key should fail")
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("%d files on disk, want 1 (evicted file removed)", len(entries))
	}
}

func TestOpenPinsAgainstEviction(t *testing.T) {
	s := newTestStore(t, 10, NewFIFO())
	s.Put("a", 6, strings.NewReader("aaaaaa"))
	f, release, err := s.Open("a")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// a is pinned: inserting b has no victim.
	if err := s.Put("b", 6, strings.NewReader("bbbbbb")); err == nil {
		t.Fatal("expected ErrNoVictim while a is pinned")
	}
	release()
	release() // idempotent
	if err := s.Put("b", 6, strings.NewReader("bbbbbb")); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestConcurrentPutsAndReads(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("file-%d", (w*50+i)%20)
				content := strings.Repeat("x", 128)
				if err := s.Put(key, 128, strings.NewReader(content)); err != nil {
					t.Error(err)
					return
				}
				f, release, err := s.Open(key)
				if err != nil {
					t.Error(err)
					return
				}
				b, _ := io.ReadAll(f)
				f.Close()
				release()
				if len(b) != 128 {
					t.Errorf("read %d bytes", len(b))
					return
				}
			}
		}()
	}
	wg.Wait()
	if s.Len() != 20 {
		t.Fatalf("len = %d, want 20", s.Len())
	}
}

func TestPurge(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	for i := 0; i < 5; i++ {
		s.Put(fmt.Sprintf("k%d", i), 4, strings.NewReader("data"))
	}
	if err := s.Purge(); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Used() != 0 {
		t.Fatalf("after purge: len=%d used=%d", s.Len(), s.Used())
	}
	entries, _ := os.ReadDir(s.Dir())
	if len(entries) != 0 {
		t.Fatalf("%d files remain after purge", len(entries))
	}
}

func TestKeyCollisionSafety(t *testing.T) {
	// Similar path names must map to distinct cache files.
	s := newTestStore(t, 1<<20, NewLRU())
	s.Put("/data/f1", 1, strings.NewReader("1"))
	s.Put("/data/f2", 1, strings.NewReader("2"))
	f1, r1, err := s.Open("/data/f1")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(f1)
	f1.Close()
	r1()
	if string(b1) != "1" {
		t.Fatalf("f1 content = %q", b1)
	}
}
