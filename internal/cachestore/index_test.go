package cachestore

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	ix := NewIndex(1000, NewRandom(1))
	if _, err := ix.Insert("a", 400); err != nil {
		t.Fatal(err)
	}
	if !ix.Contains("a") {
		t.Fatal("a not found")
	}
	if ix.Contains("b") {
		t.Fatal("phantom b")
	}
	hits, misses, _ := ix.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
	if sz, ok := ix.Size("a"); !ok || sz != 400 {
		t.Fatalf("size = %d,%v", sz, ok)
	}
	if ix.Used() != 400 || ix.Len() != 1 {
		t.Fatalf("used/len = %d/%d", ix.Used(), ix.Len())
	}
}

func TestInsertDuplicateNoop(t *testing.T) {
	ix := NewIndex(1000, NewRandom(1))
	ix.Insert("a", 400)
	ev, err := ix.Insert("a", 400)
	if err != nil || ev != nil {
		t.Fatalf("dup insert = %v,%v", ev, err)
	}
	if ix.Used() != 400 {
		t.Fatalf("used = %d after dup", ix.Used())
	}
}

func TestEvictionMakesRoom(t *testing.T) {
	ix := NewIndex(1000, NewFIFO())
	ix.Insert("a", 400)
	ix.Insert("b", 400)
	ev, err := ix.Insert("c", 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != "a" {
		t.Fatalf("evicted %v, want [a] (FIFO)", ev)
	}
	if ix.Used() != 800 {
		t.Fatalf("used = %d", ix.Used())
	}
	_, _, evictions := ix.Stats()
	if evictions != 1 {
		t.Fatalf("evictions = %d", evictions)
	}
}

func TestTooLarge(t *testing.T) {
	ix := NewIndex(100, NewRandom(1))
	if _, err := ix.Insert("big", 200); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestPinsBlockEviction(t *testing.T) {
	ix := NewIndex(1000, NewFIFO())
	ix.Insert("a", 500)
	ix.Insert("b", 500)
	ix.Pin("a")
	ev, err := ix.Insert("c", 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v, want [b] (a pinned)", ev)
	}
	ix.Pin("c")
	if _, err := ix.Insert("d", 500); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim", err)
	}
	ix.Unpin("a")
	if _, err := ix.Insert("d", 500); err != nil {
		t.Fatalf("after unpin: %v", err)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix := NewIndex(100, NewRandom(1))
	ix.Insert("a", 10)
	ix.Unpin("a")
}

func TestLRUEvictsLeastRecent(t *testing.T) {
	ix := NewIndex(300, NewLRU())
	ix.Insert("a", 100)
	ix.Insert("b", 100)
	ix.Insert("c", 100)
	ix.Contains("a") // refresh a
	ev, _ := ix.Insert("d", 100)
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v, want [b]", ev)
	}
}

func TestClockSecondChance(t *testing.T) {
	ix := NewIndex(300, NewClock())
	ix.Insert("a", 100)
	ix.Insert("b", 100)
	ix.Insert("c", 100)
	ix.Contains("a") // sets a's ref bit
	ev, _ := ix.Insert("d", 100)
	if len(ev) != 1 || ev[0] != "b" {
		t.Fatalf("evicted %v, want [b] (a had its ref bit set)", ev)
	}
}

func TestRandomDeterministicUnderSeed(t *testing.T) {
	run := func() []string {
		ix := NewIndex(10, NewRandom(42))
		var evictions []string
		for i := 0; i < 50; i++ {
			ev, err := ix.Insert(fmt.Sprintf("k%d", i), 1)
			if err != nil {
				t.Fatal(err)
			}
			evictions = append(evictions, ev...)
		}
		return evictions
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("eviction streams differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random policy not deterministic under fixed seed")
		}
	}
}

// Property: under any insert sequence and any policy, used never exceeds
// capacity and equals the sum of resident entries.
func TestCapacityInvariant(t *testing.T) {
	policies := map[string]func() Policy{
		"random": func() Policy { return NewRandom(7) },
		"lru":    NewLRU,
		"fifo":   NewFIFO,
		"clock":  func() Policy { return NewClock() },
	}
	for name, mk := range policies {
		f := func(sizes []uint16) bool {
			ix := NewIndex(4096, mk())
			for i, sz := range sizes {
				size := int64(sz%2048) + 1
				_, err := ix.Insert(fmt.Sprintf("k%d", i), size)
				if err != nil {
					return false
				}
				if ix.Used() > ix.Capacity() {
					return false
				}
				var sum int64
				for _, k := range ix.Keys() {
					s, _ := ix.Size(k)
					sum += s
				}
				if sum != ix.Used() {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestVictimSweepFindsLoneUnpinned(t *testing.T) {
	// Random policy must find the single unpinned entry even when random
	// probes keep hitting pinned ones.
	ix := NewIndex(100, NewRandom(3))
	for i := 0; i < 99; i++ {
		k := fmt.Sprintf("k%d", i)
		ix.Insert(k, 1)
		ix.Pin(k)
	}
	ix.Insert("free", 1)
	ev, err := ix.Insert("new", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0] != "free" {
		t.Fatalf("evicted %v, want [free]", ev)
	}
}

func TestRemove(t *testing.T) {
	ix := NewIndex(100, NewLRU())
	ix.Insert("a", 50)
	if !ix.Remove("a") {
		t.Fatal("remove failed")
	}
	if ix.Remove("a") {
		t.Fatal("double remove succeeded")
	}
	if ix.Used() != 0 {
		t.Fatalf("used = %d", ix.Used())
	}
}
