package cachestore

import (
	"fmt"
	"sort"
	"testing"
)

func noneExcluded(string) bool { return false }

// evictOne asks for a victim and removes it, as Index.Insert would.
func evictOne(t *testing.T, c *Clairvoyant) string {
	t.Helper()
	v := c.Victim(noneExcluded)
	if v == "" {
		t.Fatal("Victim returned no candidate")
	}
	c.OnRemove(v)
	return v
}

// The victim preference order: consumed plan keys (oldest first), then
// unplanned probation, then unplanned protected, and only then the
// planned key with the farthest next access.
func TestClairvoyantVictimOrder(t *testing.T) {
	c := NewClairvoyant()
	c.SetPlan([]string{"a", "b", "c", "d"})
	for _, k := range []string{"a", "b", "c", "d"} {
		c.OnInsert(k)
	}
	c.Advance(2) // a and b consumed

	if v := evictOne(t, c); v != "a" {
		t.Fatalf("first victim %q, want the oldest consumed key a", v)
	}
	if v := evictOne(t, c); v != "b" {
		t.Fatalf("second victim %q, want b", v)
	}

	// Unplanned keys are preferred over unconsumed plan keys.
	c.OnInsert("u1")
	c.OnInsert("u2")
	c.OnAccess("u2") // promotes u2 to protected
	if v := evictOne(t, c); v != "u1" {
		t.Fatalf("victim %q, want the probation key u1", v)
	}
	if v := evictOne(t, c); v != "u2" {
		t.Fatalf("victim %q, want the protected key u2 before any planned key", v)
	}

	// Among unconsumed plan keys: farthest next access first.
	if v := evictOne(t, c); v != "d" {
		t.Fatalf("victim %q, want d (position 3 is farther than c's 2)", v)
	}
	if v := evictOne(t, c); v != "c" {
		t.Fatalf("victim %q, want c", v)
	}
	if v := c.Victim(noneExcluded); v != "" {
		t.Fatalf("empty policy returned victim %q", v)
	}
}

func TestClairvoyantVictimExcluded(t *testing.T) {
	c := NewClairvoyant()
	c.SetPlan([]string{"a", "b", "c"})
	for _, k := range []string{"a", "b", "c"} {
		c.OnInsert(k)
	}
	// All unconsumed: farthest is c, but it is pinned.
	if v := c.Victim(func(k string) bool { return k == "c" }); v != "b" {
		t.Fatalf("victim %q, want b with c excluded", v)
	}
	// The excluded heap entry must survive for later victims.
	c.OnRemove("b")
	if v := c.Victim(noneExcluded); v != "c" {
		t.Fatalf("victim %q, want c once unpinned", v)
	}
}

// A ghost hit skips probation: a key evicted and quickly re-admitted
// enters the protected segment directly.
func TestClairvoyantGhostReadmission(t *testing.T) {
	c := NewClairvoyant()
	c.OnInsert("x")
	c.OnInsert("y")
	if v := evictOne(t, c); v != "x" {
		t.Fatalf("victim %q, want x", v)
	}
	c.OnInsert("x") // ghost hit
	// Probation now holds only y; x sits protected, so y goes first.
	if v := evictOne(t, c); v != "y" {
		t.Fatalf("victim %q, want y (x was re-admitted to protected)", v)
	}
	if v := evictOne(t, c); v != "x" {
		t.Fatalf("victim %q, want x", v)
	}
}

// An explicit removal (not an eviction) must not create a ghost.
func TestClairvoyantExplicitRemoveNoGhost(t *testing.T) {
	c := NewClairvoyant()
	c.OnInsert("x")
	c.OnRemove("x") // no Victim call: a purge, not an eviction
	c.OnInsert("x")
	c.OnInsert("y")
	// Were x ghosted it would sit protected and y would go first; without
	// the ghost both are on probation and x (older) goes first.
	if v := evictOne(t, c); v != "x" {
		t.Fatalf("victim %q, want x (explicit removes must not ghost)", v)
	}
}

// Re-installing a plan re-scores resident keys; keys the new plan drops
// fall to the unplanned segments and evict before planned ones.
func TestClairvoyantReplanReclassifies(t *testing.T) {
	c := NewClairvoyant()
	c.SetPlan([]string{"a", "b", "c"})
	for _, k := range []string{"a", "b", "c"} {
		c.OnInsert(k)
	}
	c.Advance(3) // whole epoch consumed
	c.SetPlan([]string{"c", "a"})
	// b is unplanned now; a and c are future again.
	if v := evictOne(t, c); v != "b" {
		t.Fatalf("victim %q, want the dropped key b", v)
	}
	if v := evictOne(t, c); v != "a" {
		t.Fatalf("victim %q, want a (position 1 is farther than c's 0)", v)
	}
	if v := evictOne(t, c); v != "c" {
		t.Fatalf("victim %q, want c", v)
	}
}

// xorshift is a tiny deterministic PRNG for the ablation traces (the
// test cannot import internal/train: train's tests import core, which
// imports this package).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

// access is one trace step: a key and, when planned, its position in
// the epoch's sample plan (-1 for unplanned traffic).
type access struct {
	key string
	pos int
}

// epochTrace returns epochs passes of the DL access pattern the planner
// exists for — a fresh shuffled scan over n sample keys per epoch —
// interleaved with unplanned traffic over a small hot key set (think
// validation samples or shared metadata the oracle cannot see). The hot
// set is what separates the policies: reuse of hot keys rewards
// recency (LRU over random), and plan-aware eviction protects both the
// hot set and the soonest-needed samples (clairvoyant over LRU).
func epochTrace(seed uint64, n, hot, epochs int) [][]access {
	out := make([][]access, epochs)
	rng := xorshift(seed | 1)
	for e := range out {
		perm := make([]string, n)
		for i := range perm {
			perm[i] = fmt.Sprintf("k%04d", i)
		}
		erng := xorshift(seed + uint64(e)*0x9e3779b9 + 1)
		for i := n - 1; i > 0; i-- {
			j := int(erng.next() % uint64(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		var tr []access
		for step, key := range perm {
			tr = append(tr, access{key: key, pos: step})
			// Every sample read is followed by one hot-set access.
			h := int(rng.next() % uint64(hot))
			tr = append(tr, access{key: fmt.Sprintf("h%03d", h), pos: -1})
		}
		out[e] = tr
	}
	return out
}

// planOf extracts the epoch's sample plan (planned keys in access
// order) from a trace epoch.
func planOf(epoch []access) []string {
	var plan []string
	for _, a := range epoch {
		if a.pos >= 0 {
			plan = append(plan, a.key)
		}
	}
	return plan
}

// runTrace drives an Index over the trace and reports the hit rate.
// When the policy is Clairvoyant the epoch plan is installed and the
// frontier advanced per planned read — exactly what the server does;
// hot keys stay unplanned and exercise the segmented-LRU fallback.
func runTrace(trace [][]access, capacity int64, p Policy) float64 {
	ix := NewIndex(capacity, p)
	cl, _ := p.(*Clairvoyant)
	for _, epoch := range trace {
		if cl != nil {
			cl.SetPlan(planOf(epoch))
		}
		for _, a := range epoch {
			if !ix.Contains(a.key) {
				ix.Insert(a.key, 1)
			}
			if cl != nil && a.pos >= 0 {
				cl.Advance(a.pos + 1)
			}
		}
	}
	hits, misses, _ := ix.Stats()
	return float64(hits) / float64(hits+misses)
}

// The ablation the eviction swap is justified by: at constrained
// capacity, plan-scored Belady eviction beats LRU, which beats random.
// Seeds and trace are fixed, so the hit rates — and therefore the
// ordering — are fully deterministic.
func TestClairvoyantAblationHitRateOrdering(t *testing.T) {
	const (
		n        = 400
		hot      = 40
		capacity = 100 // 25% of the sample working set
		epochs   = 6
	)
	trace := epochTrace(7, n, hot, epochs)
	cl := runTrace(trace, capacity, NewClairvoyant())
	lru := runTrace(trace, capacity, NewLRU())
	rnd := runTrace(trace, capacity, NewRandom(1))
	t.Logf("hit rates at capacity %d (%d samples + %d hot) over %d epochs: clairvoyant=%.3f lru=%.3f random=%.3f",
		capacity, n, hot, epochs, cl, lru, rnd)
	if cl < lru {
		t.Fatalf("clairvoyant hit rate %.3f below lru %.3f", cl, lru)
	}
	if lru < rnd {
		t.Fatalf("lru hit rate %.3f below random %.3f", lru, rnd)
	}
	if cl <= rnd {
		t.Fatalf("clairvoyant hit rate %.3f not above random %.3f", cl, rnd)
	}
}

// Same-seed runs must replay identically (the determinism the sim
// mirror depends on): identical hit rates and identical final resident
// sets. Keys() is map-ordered, so the sets are compared sorted.
func TestClairvoyantDeterministicReplay(t *testing.T) {
	run := func() (float64, []string) {
		trace := epochTrace(11, 200, 8, 4)
		p := NewClairvoyant()
		ix := NewIndex(50, p)
		for _, epoch := range trace {
			p.SetPlan(planOf(epoch))
			for _, a := range epoch {
				if !ix.Contains(a.key) {
					ix.Insert(a.key, 1)
				}
				if a.pos >= 0 {
					p.Advance(a.pos + 1)
				}
			}
		}
		hits, misses, _ := ix.Stats()
		keys := ix.Keys()
		sort.Strings(keys)
		return float64(hits) / float64(hits+misses), keys
	}
	h1, k1 := run()
	h2, k2 := run()
	if h1 != h2 {
		t.Fatalf("hit rate diverged across identical runs: %v vs %v", h1, h2)
	}
	if len(k1) != len(k2) {
		t.Fatalf("resident set size diverged: %d vs %d", len(k1), len(k2))
	}
	for i := range k1 {
		if k1[i] != k2[i] {
			t.Fatalf("resident set diverged at %d: %q vs %q", i, k1[i], k2[i])
		}
	}
}
