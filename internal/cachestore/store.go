package cachestore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Store is the real-mode on-disk cache: files copied from the PFS live in
// a flat directory on the node-local device, named by content-independent
// key digest, with eviction driven by an Index. Store is safe for
// concurrent use.
//
// Lock order: Store.mu may be held while taking the handle pool's lock
// (eviction drops pooled handles); the reverse never happens — ReadAt
// checks the index and releases Store.mu before touching the pool.
type Store struct {
	mu  sync.Mutex
	dir string
	ix  *Index
	hp  *handlePool
}

// handlePoolSize bounds how many cache files Store.ReadAt keeps open for
// reuse. Segment working sets larger than this still work; they just pay
// the open again.
const handlePoolSize = 128

// copyBufPool recycles Put's copy buffers. 512 KiB per slot: large enough
// to amortise syscalls on a GPFS-to-NVMe copy, small enough to pool
// freely.
var copyBufPool = sync.Pool{New: func() any {
	b := make([]byte, 512<<10)
	return &b
}}

// NewStore creates (if needed) dir and returns a store with the given
// capacity and policy.
func NewStore(dir string, capacity int64, policy Policy) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	return &Store{dir: dir, ix: NewIndex(capacity, policy), hp: newHandlePool(handlePoolSize)}, nil
}

// Dir returns the backing directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) pathFor(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:16]))
}

// Contains reports whether key is cached (and counts the hit/miss).
func (s *Store) Contains(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Contains(key)
}

// Resident reports whether key is cached without touching the hit/miss
// counters or the policy's recency state (Index.Peek under the store
// lock). Probes by the plan pump go through this, so planning does not
// distort the hit accounting the benchmarks report.
func (s *Store) Resident(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Peek(key)
}

// Put copies size bytes from src into the cache under key, evicting as
// needed. Partially written files are cleaned up on error. Putting an
// existing key is a no-op (the reader is not consumed).
func (s *Store) Put(key string, size int64, src io.Reader) error {
	s.mu.Lock()
	if s.ix.Peek(key) {
		s.mu.Unlock()
		return nil
	}
	evicted, err := s.ix.Insert(key, size)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for _, victim := range evicted {
		_ = os.Remove(s.pathFor(victim)) // eviction is best-effort; the index entry is already gone
		s.hp.drop(victim)
	}
	// Hold our entry in the index while writing; pin it so a concurrent
	// insert cannot evict the file mid-write.
	s.ix.Pin(key)
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		s.ix.Unpin(key)
		s.mu.Unlock()
	}()

	dst := s.pathFor(key)
	tmp, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		s.dropEntry(key)
		return fmt.Errorf("cachestore: %w", err)
	}
	// An explicit pooled buffer: the generic copy path would otherwise
	// allocate per Put, and the PFS-to-NVMe copy is cross-filesystem, so
	// there is no kernel splice to preserve. writerOnly hides tmp's
	// ReadFrom so io.CopyBuffer actually uses the buffer.
	bp := copyBufPool.Get().(*[]byte)
	n, err := io.CopyBuffer(writerOnly{tmp}, io.LimitReader(src, size), *bp)
	copyBufPool.Put(bp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil && n != size {
		err = fmt.Errorf("cachestore: short copy for %s: %d of %d bytes", key, n, size)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), dst)
	}
	if err != nil {
		_ = os.Remove(tmp.Name()) // the copy failure is the error to report
		s.dropEntry(key)
		return err
	}
	return nil
}

// dropEntry removes a failed Put's index entry; the deferred Unpin in Put
// becomes a no-op once the entry is gone.
func (s *Store) dropEntry(key string) {
	s.mu.Lock()
	s.ix.Remove(key)
	s.mu.Unlock()
}

// Open returns the cached file for key, pinned against eviction. The
// caller must invoke release exactly once after closing the file.
func (s *Store) Open(key string) (f *os.File, release func(), err error) {
	s.mu.Lock()
	if !s.ix.Contains(key) {
		s.mu.Unlock()
		return nil, nil, fmt.Errorf("cachestore: %s not cached", key)
	}
	s.ix.Pin(key)
	s.mu.Unlock()

	f, err = os.Open(s.pathFor(key))
	if err != nil {
		s.mu.Lock()
		s.ix.Unpin(key)
		s.mu.Unlock()
		return nil, nil, err
	}
	var once sync.Once
	release = func() {
		once.Do(func() {
			s.mu.Lock()
			s.ix.Unpin(key)
			s.mu.Unlock()
		})
	}
	return f, release, nil
}

// writerOnly masks every interface of an io.Writer except Write, forcing
// io.CopyBuffer onto its explicit-buffer path.
type writerOnly struct{ io.Writer }

// ReadAt reads from the cached file for key at offset off through a
// short-lived fd lease: a warm segment read costs one pread instead of
// an open/pread/close triple. A miss (not cached, or evicted since the
// caller's Contains check) returns an error; callers read through from
// the PFS instead.
func (s *Store) ReadAt(key string, p []byte, off int64) (int, error) {
	l, err := s.Lease(key)
	if err != nil {
		return 0, err
	}
	n, err := l.ReadAt(p, off)
	l.Release()
	return n, err
}

// Size returns the cached size of key.
func (s *Store) Size(key string) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Size(key)
}

// Used reports cached bytes.
func (s *Store) Used() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Used()
}

// Len reports the number of cached files.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Len()
}

// Stats reports hits, misses and evictions.
func (s *Store) Stats() (hits, misses, evictions int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ix.Stats()
}

// Purge removes every cached file — the job-end teardown (§III-D: the
// cache's life cycle is coupled to the job's).
func (s *Store) Purge() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hp.closeAll()
	var first error
	for _, k := range s.ix.Keys() {
		if err := os.Remove(s.pathFor(k)); err != nil && first == nil {
			first = err
		}
		s.ix.Remove(k)
	}
	return first
}
