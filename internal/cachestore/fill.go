package cachestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Fill is an in-progress streaming Put: the writer (a data-mover)
// appends bytes as they arrive from the PFS while readers are served the
// prefix that has already landed. This is the serve-from-fill primitive:
// a cold read no longer needs its own PFS pass — it attaches to the fill
// and blocks only until the segment it wants is down.
//
// Life cycle: PutWriter creates the fill holding one reference for the
// writer; Commit (or Abort) finishes the write side and drops that
// reference. Readers bracket each ReadAt between Acquire and Release;
// once the last reference is released after the fill has finished, the
// backing read handle closes. A committed fill's bytes stay readable by
// existing holders even if the cache entry is evicted immediately — the
// open descriptor outlives the unlink.
type Fill struct {
	s    *Store
	key  string
	size int64
	// file is both the write handle (the filler appends) and the shared
	// read handle (attached readers pread) — WriteAt/ReadAt carry their
	// own offsets, so one descriptor serves both sides and the second
	// open a split pair would cost is saved on every fill. It closes at
	// the last Release, after Commit/Abort AND every reader are done.
	file *os.File

	mu       sync.Mutex
	cond     *sync.Cond
	written  int64
	err      error // terminal error after Abort
	finished bool  // Commit or Abort has run
	refs     int
}

// PutWriter starts a streaming insert of size bytes under key. Unlike
// Put, nothing is reserved in the index until Commit: Contains stays
// false during the fill (callers attach through their own fill registry,
// not the index).
func (s *Store) PutWriter(key string, size int64) (*Fill, error) {
	if size < 0 {
		return nil, fmt.Errorf("cachestore: negative fill size %d for %s", size, key)
	}
	tmp, err := os.CreateTemp(s.dir, "fill-*") // opened O_RDWR: readers share it
	if err != nil {
		return nil, fmt.Errorf("cachestore: %w", err)
	}
	f := &Fill{s: s, key: key, size: size, file: tmp, refs: 1}
	f.cond = sync.NewCond(&f.mu)
	return f, nil
}

// Key returns the cache key being filled.
func (f *Fill) Key() string { return f.key }

// Size returns the declared total size of the fill.
func (f *Fill) Size() int64 { return f.size }

// Write appends p to the fill and wakes readers waiting for the new
// prefix. Only the creator may call it, sequentially, and never mixed
// with CopyFrom on the same fill.
func (f *Fill) Write(p []byte) (int, error) {
	f.mu.Lock()
	at := f.written
	f.mu.Unlock()
	if at+int64(len(p)) > f.size {
		return 0, fmt.Errorf("cachestore: fill %s overflows declared size %d", f.key, f.size)
	}
	n, err := f.file.WriteAt(p, at)
	f.mu.Lock()
	f.written += int64(n)
	f.cond.Broadcast()
	f.mu.Unlock()
	return n, err
}

// fillChunk bounds one CopyFrom pass, and with it how long an attached
// reader can wait before freshly landed bytes become visible to it.
const fillChunk = 1 << 20

// errSpliceFallback is the splicer's "this pair cannot splice" signal:
// returned only before any byte has moved, so CopyFrom can degrade to
// the userspace loop without losing data.
var errSpliceFallback = errors.New("cachestore: splice unsupported for this source")

// CopyFrom streams size bytes from src at off into the fill without
// bouncing bytes through userspace where the kernel allows: regular
// sources go through os.File.ReadFrom (copy_file_range), and pipe or
// socket sources are spliced through a transit pipe into the temp file
// (splice_linux.go). Filesystems or platforms without an in-kernel path
// fall back to a normal read/write loop. Chunking keeps serve-from-fill
// live: readers wake after every fillChunk, not after the whole file.
//
// Only the creator may call it, and never mixed with Write: CopyFrom
// advances the file handle's own offset, which tracks written only
// while every byte arrives through here.
func (f *Fill) CopyFrom(src *os.File, off, size int64) (int64, error) {
	if off > 0 {
		if _, err := src.Seek(off, io.SeekStart); err != nil {
			return 0, err
		}
	}
	sp := newSplicer(src, f.file)
	if sp != nil {
		defer sp.close()
	}
	var total int64
	for total < size {
		n := min(size-total, fillChunk)
		f.mu.Lock()
		at := f.written
		f.mu.Unlock()
		if at+n > f.size {
			return total, fmt.Errorf("cachestore: fill %s overflows declared size %d", f.key, f.size)
		}
		var w int64
		var err error
		if sp != nil {
			w, err = sp.move(at, n)
			if err == errSpliceFallback {
				// Nothing moved yet for this fill: close the transit pipe
				// and serve the rest through userspace.
				sp.close()
				sp = nil
				err = nil
			}
		}
		if sp == nil && err == nil && w == 0 && n > 0 {
			w, err = f.file.ReadFrom(&io.LimitedReader{R: src, N: n})
		}
		// Watermark ordering: the f.written store and the Broadcast sit in
		// one critical section, for every chunk including the final
		// partial one, so a ReadAt blocked in cond.Wait can never consume
		// a wakeup before the watermark covers the bytes — Wait re-checks
		// f.written under f.mu (regression: TestCopyFromFinalPartialChunkWakes).
		f.mu.Lock()
		f.written += w
		f.cond.Broadcast()
		f.mu.Unlock()
		total += w
		if err != nil {
			return total, err
		}
		if w < n {
			// src ran out early (it shrank under us): stop here and let
			// Commit flag the short fill.
			return total, nil
		}
	}
	return total, nil
}

// Acquire takes a read reference. It fails once the fill has finished
// and every earlier holder released — the backing handle is closed then,
// and the caller should read the committed cache entry (or the PFS)
// instead.
func (f *Fill) Acquire() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.refs == 0 {
		return false
	}
	f.refs++
	return true
}

// Release drops a reference taken by Acquire (or the creator's implicit
// one, dropped by Commit/Abort). The last release after finishing closes
// the shared read handle.
func (f *Fill) Release() {
	f.mu.Lock()
	f.refs--
	done := f.refs == 0
	f.mu.Unlock()
	if done {
		_ = f.file.Close() // best-effort: everything is written and renamed (or removed) by now
	}
}

// ReadAt serves p from the fill at off, blocking until the requested
// range has been written, the fill aborts, or the declared size bounds
// the read (short reads at the tail return io.EOF, matching os.File).
// Callers must hold a reference via Acquire.
func (f *Fill) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("cachestore: negative fill read offset %d", off)
	}
	if off >= f.size {
		return 0, io.EOF
	}
	want := int64(len(p))
	if off+want > f.size {
		want = f.size - off
	}
	f.mu.Lock()
	for f.written < off+want && f.err == nil {
		f.cond.Wait()
	}
	err := f.err
	f.mu.Unlock()
	if err != nil {
		return 0, err
	}
	n, rerr := f.file.ReadAt(p[:want], off)
	if rerr == nil && want < int64(len(p)) {
		rerr = io.EOF
	}
	return n, rerr
}

// Commit completes the fill: the temp file is inserted into the index
// (evicting as needed) and renamed into place. A short fill is an error.
// Either way the writer's reference is dropped and waiting readers are
// woken. Readers holding references keep reading the same descriptor —
// rename does not invalidate it, and the descriptor itself stays open
// until the last Release.
func (f *Fill) Commit() error {
	f.mu.Lock()
	if f.finished {
		f.mu.Unlock()
		return fmt.Errorf("cachestore: fill %s already finished", f.key)
	}
	short := f.written != f.size
	f.mu.Unlock()
	if short {
		err := fmt.Errorf("cachestore: short fill for %s: %d of %d bytes", f.key, f.written, f.size)
		f.Abort(err)
		return err
	}
	if err := f.insert(); err != nil {
		f.mu.Lock()
		f.err = err
		f.finished = true
		f.cond.Broadcast()
		f.mu.Unlock()
		_ = os.Remove(f.file.Name()) // the insert failure is the error to report
		f.Release()
		return err
	}
	f.mu.Lock()
	f.finished = true
	f.cond.Broadcast()
	f.mu.Unlock()
	f.Release()
	return nil
}

// insert admits the finished temp file into the index and renames it to
// its content path, mirroring Put's eviction handling.
func (f *Fill) insert() error {
	s := f.s
	s.mu.Lock()
	if s.ix.Peek(f.key) {
		// A concurrent Put won the key: keep the resident copy.
		s.mu.Unlock()
		return os.Remove(f.file.Name())
	}
	evicted, err := s.ix.Insert(f.key, f.size)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	for _, victim := range evicted {
		_ = os.Remove(s.pathFor(victim)) // eviction is best-effort; the index entry is already gone
		s.hp.drop(victim)
	}
	s.ix.Pin(f.key)
	s.mu.Unlock()

	err = os.Rename(f.file.Name(), s.pathFor(f.key))
	s.mu.Lock()
	s.ix.Unpin(f.key)
	if err != nil {
		s.ix.Remove(f.key)
	}
	s.mu.Unlock()
	return err
}

// Abort terminates the fill with err (which readers will observe),
// removes the temp file, and drops the writer's reference.
func (f *Fill) Abort(err error) {
	if err == nil {
		err = fmt.Errorf("cachestore: fill %s aborted", f.key)
	}
	f.mu.Lock()
	if f.finished {
		f.mu.Unlock()
		return
	}
	f.err = err
	f.finished = true
	f.cond.Broadcast()
	f.mu.Unlock()
	// The unlink does not invalidate the shared descriptor: readers that
	// already passed the error check finish their pread, and the last
	// Release closes it.
	_ = os.Remove(f.file.Name()) // best-effort cleanup of the partial fill
	f.Release()
}
