package cachestore

import (
	"fmt"
	"os"
	"sync"
)

// Lease is a ref-counted fd lease on a cached file: the zero-copy serve
// path hands (fd, off, len) to sendfile while the lease pins the pooled
// handle, so eviction racing the send cannot close the descriptor out
// from under the kernel. Leases are unlink-safe the same way pooled
// handles are — the store evicting (unlinking) the file only marks the
// handle dead, and the inode survives until the last lease releases it.
//
// Ownership: every Lease must be Released exactly once (the ownerpass
// analyzer enforces this statically). The *os.File from File is only
// valid until Release.
type Lease struct {
	hp   *handlePool
	pf   *pooledFile
	size int64
}

// leasePool recycles Lease structs so a warm zero-copy serve allocates
// nothing.
var leasePool = sync.Pool{New: func() any { return new(Lease) }}

// Lease pins an open descriptor for key's cached file and returns it
// with the file's cached size. The hit/miss accounting matches ReadAt:
// exactly one counting index access per call. A miss (not cached, or
// evicted since the caller's probe) returns an error; callers read
// through from the PFS instead.
func (s *Store) Lease(key string) (*Lease, error) {
	s.mu.Lock()
	cached := s.ix.Contains(key)
	size, _ := s.ix.Size(key)
	s.mu.Unlock()
	if !cached {
		return nil, fmt.Errorf("cachestore: %s not cached", key)
	}
	pf, err := s.hp.acquire(key, s.pathFor(key))
	if err != nil {
		return nil, err
	}
	l := leasePool.Get().(*Lease)
	l.hp, l.pf, l.size = s.hp, pf, size
	return l, nil
}

// File exposes the leased descriptor; valid only until Release.
func (l *Lease) File() *os.File { return l.pf.f }

// Size reports the cached file's size as indexed at lease time.
func (l *Lease) Size() int64 { return l.size }

// ReadAt preads from the leased descriptor.
func (l *Lease) ReadAt(p []byte, off int64) (int, error) {
	return l.pf.f.ReadAt(p, off)
}

// Release returns the lease: the pooled handle loses one reference (the
// last release of a dead handle closes it) and the Lease struct is
// recycled. Releasing an already-released lease is a no-op.
func (l *Lease) Release() {
	hp, pf := l.hp, l.pf
	if hp == nil {
		return
	}
	*l = Lease{}
	leasePool.Put(l)
	hp.release(pf)
}
