//go:build linux

package cachestore

import (
	"io"
	"os"
	"syscall"
)

// splicer moves bytes from a pipe/socket source into the fill's temp
// file through a transit pipe: splice(src → pipe) then splice(pipe →
// file@off), so ingested bytes never cross into userspace. Regular-file
// sources don't come here — os.File.ReadFrom already covers them with
// copy_file_range.
type splicer struct {
	src    *os.File
	dst    *os.File
	pr, pw int // transit pipe (read, write ends); -1 once closed
}

// newSplicer returns a splicer for the (src, dst) pair, or nil when the
// source is not a pipe/socket or no transit pipe can be made — the
// caller then uses the userspace loop.
func newSplicer(src, dst *os.File) *splicer {
	st, err := src.Stat()
	if err != nil || st.Mode()&(os.ModeNamedPipe|os.ModeSocket) == 0 {
		return nil
	}
	var p [2]int
	if err := syscall.Pipe2(p[:], syscall.O_CLOEXEC); err != nil {
		return nil
	}
	return &splicer{src: src, dst: dst, pr: p[0], pw: p[1]}
}

// move transfers up to n bytes into the destination file at offset at.
// A short count with nil error means the source hit EOF.
// errSpliceFallback is only returned before any byte has moved, so the
// caller can cleanly degrade to the userspace loop.
func (sp *splicer) move(at, n int64) (int64, error) {
	srcFD := int(sp.src.Fd())
	dstFD := int(sp.dst.Fd())
	var total int64
	for total < n {
		nr, err := syscall.Splice(srcFD, nil, sp.pw, nil, int(n-total), 0)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			if total == 0 && spliceUnsupported(err) {
				return 0, errSpliceFallback
			}
			return total, err
		}
		if nr == 0 {
			return total, nil // source EOF
		}
		// Drain the transit pipe into the file. An error here is hard:
		// bytes already sit in the pipe, so there is no clean fallback.
		woff := at + total
		for nr > 0 {
			nw, werr := syscall.Splice(sp.pr, nil, dstFD, &woff, int(nr), 0)
			if werr == syscall.EINTR {
				continue
			}
			if werr != nil {
				return total, werr
			}
			if nw == 0 {
				return total, io.ErrUnexpectedEOF
			}
			nr -= nw
			total += nw
		}
	}
	return total, nil
}

// spliceUnsupported classifies errors that mean "this fd pair cannot
// splice at all" rather than a transfer failure.
func spliceUnsupported(err error) bool {
	return err == syscall.EINVAL || err == syscall.ENOSYS || err == syscall.EOPNOTSUPP
}

// close releases the transit pipe; safe to call more than once.
func (sp *splicer) close() {
	if sp.pr >= 0 {
		_ = syscall.Close(sp.pr) // transit pipe teardown is best-effort
		_ = syscall.Close(sp.pw)
		sp.pr, sp.pw = -1, -1
	}
}
