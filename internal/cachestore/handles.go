package cachestore

import (
	"os"
	"sync"
)

// handlePool keeps recently used cache files open so the segment-read hot
// path (Store.ReadAt) costs one pread instead of an open/pread/close
// triple per request. Entries are ref-counted: eviction (FIFO once the
// pool is full, or an explicit drop when the store evicts the file) marks
// an entry dead and the last reader closes it. Reading from a dropped
// handle is safe — the unlinked file's inode lives until the descriptor
// closes, and a cache key always names the same bytes.
type handlePool struct {
	mu   sync.Mutex
	max  int
	m    map[string]*pooledFile
	fifo []string
}

type pooledFile struct {
	f    *os.File
	refs int
	dead bool
}

func newHandlePool(max int) *handlePool {
	return &handlePool{max: max, m: make(map[string]*pooledFile)}
}

// acquire returns an open file for key, opening path on a pool miss.
// The caller must pass the returned *pooledFile to release exactly
// once. The open runs under the pool lock, which also serialises
// concurrent misses on the same key (one open, not two). Taking the
// path (not a closure) keeps the warm lease path allocation-free.
func (hp *handlePool) acquire(key, path string) (*pooledFile, error) {
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if pf, ok := hp.m[key]; ok {
		pf.refs++
		return pf, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	pf := &pooledFile{f: f, refs: 1}
	hp.m[key] = pf
	hp.fifo = append(hp.fifo, key)
	for len(hp.m) > hp.max && len(hp.fifo) > 0 {
		victim := hp.fifo[0]
		hp.fifo = hp.fifo[1:]
		hp.dropLocked(victim)
	}
	return pf, nil
}

// release undoes one acquire; the last release of a dead entry closes it.
func (hp *handlePool) release(pf *pooledFile) {
	hp.mu.Lock()
	pf.refs--
	dead := pf.dead && pf.refs == 0
	hp.mu.Unlock()
	if dead {
		_ = pf.f.Close() // nothing to report to: readers are gone
	}
}

// drop removes key from the pool (store eviction or purge); in-flight
// readers keep their descriptor until release.
func (hp *handlePool) drop(key string) {
	hp.mu.Lock()
	hp.dropLocked(key)
	hp.mu.Unlock()
}

func (hp *handlePool) dropLocked(key string) {
	pf, ok := hp.m[key]
	if !ok {
		return
	}
	delete(hp.m, key)
	if pf.refs == 0 {
		_ = pf.f.Close() // no readers left; close is best-effort
		return
	}
	pf.dead = true
}

// closeAll drops every pooled handle, for store teardown.
func (hp *handlePool) closeAll() {
	hp.mu.Lock()
	keys := make([]string, 0, len(hp.m))
	for k := range hp.m {
		keys = append(keys, k)
	}
	for _, k := range keys {
		hp.dropLocked(k)
	}
	hp.fifo = nil
	hp.mu.Unlock()
}
