package cachestore

import (
	"fmt"
	"testing"
)

func benchPolicy(b *testing.B, mk func() Policy) {
	b.Helper()
	ix := NewIndex(1<<20, mk())
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("/gpfs/train/%07d.rec", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		if !ix.Contains(k) {
			// 1 KB entries: steady-state eviction churn.
			if _, err := ix.Insert(k, 1<<10); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIndexRandom(b *testing.B) { benchPolicy(b, func() Policy { return NewRandom(1) }) }
func BenchmarkIndexLRU(b *testing.B)    { benchPolicy(b, NewLRU) }
func BenchmarkIndexFIFO(b *testing.B)   { benchPolicy(b, NewFIFO) }
func BenchmarkIndexClock(b *testing.B)  { benchPolicy(b, func() Policy { return NewClock() }) }
