//go:build !linux

package cachestore

import "os"

// Non-Linux builds have no splice: CopyFrom always takes the userspace
// (ReadFrom) loop.

type splicer struct{}

func newSplicer(src, dst *os.File) *splicer { return nil }

func (sp *splicer) move(at, n int64) (int64, error) { return 0, errSpliceFallback }

func (sp *splicer) close() {}
