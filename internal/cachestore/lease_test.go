package cachestore

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestLeaseReadRoundTrip covers the basic lease contract: Lease on a
// cached key yields the indexed size and a readable descriptor, and
// Release is idempotent on the caller side (the guard, not the pool).
func TestLeaseReadRoundTrip(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	content := []byte("zero-copy lease payload")
	if err := s.Put("k", int64(len(content)), bytes.NewReader(content)); err != nil {
		t.Fatal(err)
	}
	l, err := s.Lease("k")
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() != int64(len(content)) {
		t.Fatalf("lease size %d, want %d", l.Size(), len(content))
	}
	if l.File() == nil {
		t.Fatal("lease exposes no descriptor")
	}
	got := make([]byte, len(content))
	if _, err := l.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("lease read differs from Put content")
	}
	l.Release()
	l.Release() // released lease: no-op, must not double-release the pool
}

func TestLeaseMiss(t *testing.T) {
	s := newTestStore(t, 1<<20, NewLRU())
	if _, err := s.Lease("never-cached"); err == nil {
		t.Fatal("lease on an uncached key must fail")
	}
}

// TestLeaseSurvivesEviction is the zero-copy safety property: eviction
// racing an active lease unlinks the file and marks the pooled handle
// dead, but the descriptor the lease pinned keeps reading the original
// bytes — no EBADF, no new key's bytes — until Release closes it.
func TestLeaseSurvivesEviction(t *testing.T) {
	s := newTestStore(t, 10, NewFIFO())
	if err := s.Put("a", 6, strings.NewReader("aaaaaa")); err != nil {
		t.Fatal(err)
	}
	l, err := s.Lease("a")
	if err != nil {
		t.Fatal(err)
	}
	// A lease does not pin the index entry (the fd, not the key, is what
	// sendfile needs): inserting b evicts a and unlinks its file.
	if err := s.Put("b", 6, strings.NewReader("bbbbbb")); err != nil {
		t.Fatalf("eviction blocked by an fd lease: %v", err)
	}
	if s.Resident("a") {
		t.Fatal("a still indexed after eviction")
	}
	got := make([]byte, 6)
	if _, err := l.ReadAt(got, 0); err != nil {
		t.Fatalf("read through lease after eviction: %v", err)
	}
	if string(got) != "aaaaaa" {
		t.Fatalf("lease read %q after eviction, want the original bytes", got)
	}
	l.Release() // last release of the dead handle closes the orphaned inode

	// A fresh lease on the evicted key must miss, not resurrect the fd.
	if _, err := s.Lease("a"); err == nil {
		t.Fatal("lease on an evicted key must fail")
	}
}

// TestLeaseSharesPooledHandle checks that concurrent leases on one key
// share a descriptor (the pool's whole point) and that the handle stays
// open until the final release even when the key dies in between.
func TestLeaseSharesPooledHandle(t *testing.T) {
	s := newTestStore(t, 10, NewFIFO())
	if err := s.Put("a", 6, strings.NewReader("aaaaaa")); err != nil {
		t.Fatal(err)
	}
	l1, err := s.Lease("a")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := s.Lease("a")
	if err != nil {
		t.Fatal(err)
	}
	if l1.File() != l2.File() {
		t.Fatal("two leases on one key opened two descriptors")
	}
	if err := s.Put("b", 6, strings.NewReader("bbbbbb")); err != nil { // evicts a
		t.Fatal(err)
	}
	l1.Release()
	got := make([]byte, 6)
	if _, err := l2.ReadAt(got, 0); err != nil {
		t.Fatalf("surviving lease read after sibling release: %v", err)
	}
	if string(got) != "aaaaaa" {
		t.Fatalf("surviving lease read %q", got)
	}
	l2.Release()
}

// TestLeaseEvictionChurnRace hammers Lease/ReadAt against continuous
// eviction pressure (run under -race by make check): every lease that
// is granted must read its key's exact bytes, never EBADF and never a
// successor key's content.
func TestLeaseEvictionChurnRace(t *testing.T) {
	const keys = 8
	s := newTestStore(t, 3*64, NewFIFO()) // room for 3 of 8 keys: constant churn
	content := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 64)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < 300; i++ {
				k := (seed + i) % keys
				key := fmt.Sprintf("k%d", k)
				_ = s.Put(key, 64, bytes.NewReader(content(k))) // may fail under pin races; irrelevant here
				l, err := s.Lease(key)
				if err != nil {
					continue // evicted between Put and Lease: a legitimate miss
				}
				if _, err := l.ReadAt(buf, 0); err != nil {
					t.Errorf("lease read for %s: %v", key, err)
				} else if !bytes.Equal(buf, content(k)) {
					t.Errorf("lease for %s read another key's bytes", key)
				}
				l.Release()
			}
		}(w)
	}
	wg.Wait()
}
