package cachestore

import (
	"container/heap"
	"container/list"
	"sync"
)

// Clairvoyant is next-access-distance (Belady MIN) eviction driven by an
// epoch access plan. The planner installs the epoch's key list in access
// order (SetPlan / AppendPlan) and advances a consumption frontier as
// demand reads are observed (Advance); the policy then knows, for every
// planned resident key, exactly how far in the future its next read is.
//
// Victim preference, best first:
//
//  1. consumed plan keys — already read this epoch, next access unknown
//     until the next plan arrives, so their distance is effectively
//     infinite (oldest-consumed first);
//  2. keys the plan does not cover, via a segmented-LRU with a ghost
//     list: unplanned keys start on probation, promote to protected on
//     re-access, and a key re-admitted while its ghost is still warm
//     enters protected directly — the classic scan-resistant fallback
//     for traffic the oracle cannot see;
//  3. unconsumed plan keys, farthest next access first — the Belady
//     choice proper, taken only when nothing dead or unplanned remains.
//
// Unlike the other policies, Clairvoyant is safe for concurrent use: the
// Index drives it under the store lock while the planner installs plans
// and advances the frontier from the RPC path. The internal mutex is
// always innermost and never held across a call out, so it composes with
// Store.mu without ordering hazards.
//
// Determinism: no map is ever iterated — residents live in ordered lists
// and a position heap — so a seeded run replays bit-for-bit, which the
// sim mirror requires.
type Clairvoyant struct {
	mu sync.Mutex

	// Plan state. pos maps key -> plan position (its next-access step);
	// positions below frontier are consumed this epoch.
	pos      map[string]int
	planLen  int
	frontier int

	// Resident keys by class. dead holds consumed plan keys FIFO;
	// prob/prot are the segmented-LRU lists for unplanned keys (front is
	// coldest); future is a lazy-deletion max-heap on plan position for
	// unconsumed plan keys, with byPos finding a resident key by its
	// position when the frontier sweeps past it.
	entries map[string]*centry
	dead    *list.List
	prob    *list.List
	prot    *list.List
	future  planHeap
	byPos   map[int]string

	// Ghost list of recently evicted unplanned keys (key only, no bytes).
	ghost    *list.List
	ghosts   map[string]*list.Element
	ghostCap int

	// lastVictim distinguishes an eviction (Victim then OnRemove) from an
	// explicit removal, so only true evictions feed the ghost list.
	lastVictim string
}

// centry classifies one resident key.
type centry struct {
	seg  uint8
	pos  int           // plan position, valid for segFuture and segDead
	elem *list.Element // list membership, valid for segDead/segProb/segProt
}

const (
	segFuture uint8 = iota // planned, unconsumed: in the position heap
	segDead                // planned, consumed: first to go
	segProb                // unplanned, probation
	segProt                // unplanned, protected
)

// planHeap is a max-heap of (position, key): the root is the resident
// plan key whose next access is farthest in the future. Entries are
// lazily deleted — Victim validates the root against entries/byPos.
type planHeap []planItem

type planItem struct {
	pos int
	key string
}

func (h planHeap) Len() int           { return len(h) }
func (h planHeap) Less(i, j int) bool { return h[i].pos > h[j].pos }
func (h planHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *planHeap) Push(x any)        { *h = append(*h, x.(planItem)) }
func (h *planHeap) Pop() any          { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// NewClairvoyant returns a Belady policy with no plan installed: until
// SetPlan arrives every key is unplanned and the policy degrades to the
// segmented-LRU ghost fallback.
func NewClairvoyant() *Clairvoyant {
	return &Clairvoyant{
		pos:     make(map[string]int),
		entries: make(map[string]*centry),
		dead:    list.New(),
		prob:    list.New(),
		prot:    list.New(),
		byPos:   make(map[int]string),
		ghost:   list.New(),
		ghosts:  make(map[string]*list.Element),
	}
}

// Name implements Policy.
func (c *Clairvoyant) Name() string { return "clairvoyant" }

// SetPlan installs a new plan generation: keys in access order, frontier
// reset to the epoch start. Resident keys are re-scored against the new
// plan; previously planned keys the new plan does not cover drop to the
// unplanned probation segment.
func (c *Clairvoyant) SetPlan(keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetPlanLocked()
	c.appendPlanLocked(0, keys)
}

// AppendPlan extends the current plan with a chunk starting at plan
// position start — plan distribution arrives in bounded RPC chunks. A
// chunk at start 0 is a SetPlan.
func (c *Clairvoyant) AppendPlan(start int, keys []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if start == 0 {
		c.resetPlanLocked()
	}
	c.appendPlanLocked(start, keys)
}

// resetPlanLocked drops the old plan and reclassifies its resident keys
// as unplanned. Only the ordered structures are walked (dead front to
// back, then the heap in position order) — never the entries map — so
// the resulting probation order is deterministic.
func (c *Clairvoyant) resetPlanLocked() {
	c.pos = make(map[string]int, c.planLen)
	c.planLen = 0
	c.frontier = 0
	for el := c.dead.Front(); el != nil; el = c.dead.Front() {
		k := el.Value.(string)
		c.dead.Remove(el)
		e := c.entries[k]
		e.seg = segProb
		e.elem = c.prob.PushBack(k)
	}
	for c.future.Len() > 0 {
		it := heap.Pop(&c.future).(planItem)
		e, ok := c.entries[it.key]
		if !ok || e.seg != segFuture || e.pos != it.pos {
			continue // stale heap entry
		}
		delete(c.byPos, e.pos)
		e.seg = segProb
		e.elem = c.prob.PushBack(it.key)
	}
	c.byPos = make(map[int]string)
}

func (c *Clairvoyant) appendPlanLocked(start int, keys []string) {
	for i, k := range keys {
		p := start + i
		c.pos[k] = p
		if p+1 > c.planLen {
			c.planLen = p + 1
		}
		// A resident key that just became planned moves from the
		// unplanned segments to the future heap.
		e, ok := c.entries[k]
		if !ok {
			continue
		}
		switch e.seg {
		case segProb:
			c.prob.Remove(e.elem)
		case segProt:
			c.prot.Remove(e.elem)
		default:
			continue // already planned under this generation
		}
		e.elem = nil
		c.scoreLocked(k, e, p)
	}
}

// scoreLocked files a resident planned key under its plan position.
func (c *Clairvoyant) scoreLocked(key string, e *centry, p int) {
	e.pos = p
	if p < c.frontier {
		e.seg = segDead
		e.elem = c.dead.PushBack(key)
		return
	}
	e.seg = segFuture
	c.byPos[p] = key
	heap.Push(&c.future, planItem{pos: p, key: key})
}

// Advance moves the consumption frontier to f: every plan position below
// f has been demanded. Resident keys the frontier sweeps past move to
// the dead list (their next access is next epoch at the earliest), which
// is what makes them the first eviction candidates. Advance is monotone;
// an older frontier is ignored.
func (c *Clairvoyant) Advance(f int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f > c.planLen {
		f = c.planLen
	}
	for p := c.frontier; p < f; p++ {
		k, ok := c.byPos[p]
		if !ok {
			continue
		}
		delete(c.byPos, p)
		e := c.entries[k]
		e.seg = segDead
		e.elem = c.dead.PushBack(k)
		// The heap entry goes stale and is lazily dropped by Victim.
	}
	if f > c.frontier {
		c.frontier = f
	}
}

// PlanLen reports the installed plan's length (ablation/test hook).
func (c *Clairvoyant) PlanLen() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.planLen
}

// Frontier reports the current consumption frontier (ablation/test hook).
func (c *Clairvoyant) Frontier() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frontier
}

// OnInsert implements Policy.
func (c *Clairvoyant) OnInsert(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &centry{}
	c.entries[key] = e
	if p, ok := c.pos[key]; ok {
		c.scoreLocked(key, e, p)
		return
	}
	if gel, ok := c.ghosts[key]; ok {
		// Recently evicted and back already: skip probation.
		c.ghost.Remove(gel)
		delete(c.ghosts, key)
		e.seg = segProt
		e.elem = c.prot.PushBack(key)
		c.balanceLocked()
		return
	}
	e.seg = segProb
	e.elem = c.prob.PushBack(key)
}

// OnAccess implements Policy. Planned keys need no recency — their score
// is the plan position, and consumption is driven by Advance — so only
// the unplanned segments move.
func (c *Clairvoyant) OnAccess(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	switch e.seg {
	case segProb:
		c.prob.Remove(e.elem)
		e.seg = segProt
		e.elem = c.prot.PushBack(key)
		c.balanceLocked()
	case segProt:
		c.prot.MoveToBack(e.elem)
	}
}

// balanceLocked caps the protected segment at roughly two thirds of the
// unplanned residents, demoting its coldest entries back to probation —
// the standard SLRU shape, deterministic and allocation-free.
func (c *Clairvoyant) balanceLocked() {
	lim := (c.prot.Len()+c.prob.Len())*2/3 + 1
	for c.prot.Len() > lim {
		el := c.prot.Front()
		k := el.Value.(string)
		c.prot.Remove(el)
		e := c.entries[k]
		e.seg = segProb
		e.elem = c.prob.PushBack(k)
	}
}

// OnRemove implements Policy.
func (c *Clairvoyant) OnRemove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return
	}
	delete(c.entries, key)
	switch e.seg {
	case segFuture:
		delete(c.byPos, e.pos)
		// Heap entry goes stale; Victim lazily drops it.
	case segDead:
		c.dead.Remove(e.elem)
	case segProb, segProt:
		if e.seg == segProb {
			c.prob.Remove(e.elem)
		} else {
			c.prot.Remove(e.elem)
		}
		if key == c.lastVictim {
			c.rememberGhostLocked(key)
		}
	}
	if key == c.lastVictim {
		c.lastVictim = ""
	}
}

// rememberGhostLocked records an evicted unplanned key. The ghost list
// scales with the resident set so its memory stays bounded.
func (c *Clairvoyant) rememberGhostLocked(key string) {
	c.ghosts[key] = c.ghost.PushBack(key)
	cap := c.ghostCap
	if cap <= 0 {
		cap = 2 * (len(c.entries) + 1)
		if cap < 64 {
			cap = 64
		}
	}
	for c.ghost.Len() > cap {
		el := c.ghost.Front()
		delete(c.ghosts, el.Value.(string))
		c.ghost.Remove(el)
	}
}

// Victim implements Policy: dead plan keys first (oldest consumed),
// then the unplanned segmented-LRU (probation before protected), then
// the unconsumed plan key with the farthest next access.
func (c *Clairvoyant) Victim(excluded func(string) bool) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range []*list.List{c.dead, c.prob, c.prot} {
		for el := l.Front(); el != nil; el = el.Next() {
			k := el.Value.(string)
			if !excluded(k) {
				c.lastVictim = k
				return k
			}
		}
	}
	// Lazy max-heap pop: stale entries (consumed, removed, re-scored)
	// are dropped; excluded live entries are stashed and re-pushed.
	var stash []planItem
	victim := ""
	for c.future.Len() > 0 {
		it := heap.Pop(&c.future).(planItem)
		e, ok := c.entries[it.key]
		if !ok || e.seg != segFuture || e.pos != it.pos {
			continue
		}
		if excluded(it.key) {
			stash = append(stash, it)
			continue
		}
		victim = it.key
		// The popped entry is about to be evicted; push it back so the
		// heap stays consistent if the caller does not remove it.
		stash = append(stash, it)
		break
	}
	for _, it := range stash {
		heap.Push(&c.future, it)
	}
	if victim != "" {
		c.lastVictim = victim
	}
	return victim
}
