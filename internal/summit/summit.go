// Package summit assembles the simulated Summit supercomputer (§IV-A1):
// compute nodes per Table I, the Alpine GPFS file system, the dual-rail
// EDR InfiniBand fabric, and the three deployment modes the evaluation
// compares — GPFS, XFS-on-NVMe (pre-staged upper bound) and HVAC(i×1).
package summit

import (
	"fmt"

	"hvac/internal/cachestore"
	"hvac/internal/core"
	"hvac/internal/device"
	"hvac/internal/localfs"
	"hvac/internal/pfs"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

// MaxNodes is Summit's compute-node count.
const MaxNodes = 4608

// NodeSpec is the Table I compute-node specification.
type NodeSpec struct {
	CPUSockets   int
	CoresPerCPU  int
	CPUClockGHz  float64
	GPUs         int // NVIDIA Tesla V100
	MemoryGB     int // DDR4
	NVMe         device.Profile
	Interconnect simnet.Config // dual-rail Mellanox EDR InfiniBand
}

// TableI returns the published node specification.
func TableI() NodeSpec {
	return NodeSpec{
		CPUSockets:   2,
		CoresPerCPU:  22,
		CPUClockGHz:  3.07,
		GPUs:         6,
		MemoryGB:     512,
		NVMe:         device.SummitNVMe(),
		Interconnect: simnet.SummitEDR(),
	}
}

// Cluster is an allocated set of Summit compute nodes plus Alpine.
type Cluster struct {
	Eng     *sim.Engine
	Fabric  *simnet.Fabric
	GPFS    *pfs.GPFS
	Devices []*device.Device
	Spec    NodeSpec
	nodes   int
}

// NewCluster builds an allocation of nodes compute nodes whose GPFS holds
// the files in ns.
func NewCluster(eng *sim.Engine, nodes int, ns *vfs.Namespace) *Cluster {
	if nodes < 1 || nodes > MaxNodes {
		panic(fmt.Sprintf("summit: allocation of %d nodes outside [1, %d]", nodes, MaxNodes))
	}
	spec := TableI()
	c := &Cluster{
		Eng:    eng,
		Fabric: simnet.New(eng, spec.Interconnect, nodes),
		GPFS:   pfs.New(eng, pfs.Alpine(), ns),
		Spec:   spec,
		nodes:  nodes,
	}
	for n := 0; n < nodes; n++ {
		c.Devices = append(c.Devices, device.New(eng, fmt.Sprintf("nvme%d", n), spec.NVMe))
	}
	return c
}

// Nodes reports the allocation size.
func (c *Cluster) Nodes() int { return c.nodes }

// RegisterJob informs GPFS of procs active clients (token-state pressure;
// §II-C). Pair with a negative call at job end if reusing the cluster.
func (c *Cluster) RegisterJob(procs int) { c.GPFS.RegisterClients(procs) }

// GPFSFS returns the per-rank FS provider for the GPFS baseline.
func (c *Cluster) GPFSFS() func(node, proc int) vfs.FS {
	clients := make(map[int]*pfs.Client)
	return func(node, proc int) vfs.FS {
		if fs, ok := clients[node]; ok {
			return fs
		}
		fs := c.GPFS.Client(c.Fabric, simnet.NodeID(node))
		clients[node] = fs
		return fs
	}
}

// XFSFS returns the per-rank FS provider for the XFS-on-NVMe upper bound:
// the dataset is assumed staged onto every node's NVMe before the run
// (the paper excludes staging time). It panics if the dataset cannot fit
// the node NVMe, which is exactly the feasibility constraint that makes
// HVAC's aggregated cache interesting.
func (c *Cluster) XFSFS() func(node, proc int) vfs.FS {
	ns := c.GPFS.Namespace()
	if ns.TotalBytes() > c.Spec.NVMe.Capacity {
		panic(fmt.Sprintf("summit: dataset (%d bytes) exceeds node NVMe (%d bytes); XFS-on-NVMe staging infeasible",
			ns.TotalBytes(), c.Spec.NVMe.Capacity))
	}
	mounts := make(map[int]*localfs.FS)
	return func(node, proc int) vfs.FS {
		if fs, ok := mounts[node]; ok {
			return fs
		}
		fs := localfs.New(localfs.XFS(), c.Devices[node], ns)
		mounts[node] = fs
		return fs
	}
}

// HVACOptions configures an HVAC deployment on the allocation.
type HVACOptions struct {
	// InstancesPerNode is the paper's i in HVAC(i×1).
	InstancesPerNode int
	// Placement is the redirection hash (nil: the paper's ModHash).
	Placement place.Policy
	// Replicas enables §III-H failover when > 1.
	Replicas int
	// EvictionSeed seeds the per-instance random eviction policies.
	EvictionSeed uint64
	// Eviction overrides the policy constructor (nil: random, per paper).
	Eviction func(seed uint64) cachestore.Policy
	// CapacityPerInstance overrides each instance's cache share
	// (default: NVMe capacity / instances).
	CapacityPerInstance int64
	// Costs overrides the calibrated software costs.
	Costs *core.SimCosts
	// NoFallback disables the GPFS fallback path on the clients.
	NoFallback bool
	// SegmentSize > 0 enables segment-level caching (§III-E) on the
	// job's clients.
	SegmentSize int64
}

// HVACJob is a running HVAC deployment: instances x nodes servers plus
// one client per node.
type HVACJob struct {
	Servers []*core.SimServer
	clients map[int]*core.SimClient
	cluster *Cluster
	opts    HVACOptions
}

// StartHVAC spawns the HVAC servers on every node of the allocation — the
// alloc_flags "hvac" equivalent (§III-C).
func (c *Cluster) StartHVAC(opts HVACOptions) *HVACJob {
	if opts.InstancesPerNode <= 0 {
		opts.InstancesPerNode = 1
	}
	if opts.Eviction == nil {
		opts.Eviction = func(seed uint64) cachestore.Policy { return cachestore.NewRandom(seed) }
	}
	costs := core.DefaultSimCosts()
	if opts.Costs != nil {
		costs = *opts.Costs
	}
	capacity := opts.CapacityPerInstance
	if capacity <= 0 {
		capacity = c.Spec.NVMe.Capacity / int64(opts.InstancesPerNode)
	}
	job := &HVACJob{cluster: c, opts: opts, clients: make(map[int]*core.SimClient)}
	for n := 0; n < c.nodes; n++ {
		for k := 0; k < opts.InstancesPerNode; k++ {
			seed := opts.EvictionSeed + uint64(n)*131 + uint64(k)
			srv := core.NewSimServer(c.Eng, simnet.NodeID(n), c.Fabric, c.GPFS,
				c.Devices[n], capacity, opts.Eviction(seed), costs)
			job.Servers = append(job.Servers, srv)
		}
	}
	if opts.Replicas > 1 {
		for i, srv := range job.Servers {
			srv.SetCluster(job.Servers, i, opts.Placement, opts.Replicas)
		}
	}
	return job
}

// Client returns (memoised) the HVAC client for a node.
func (j *HVACJob) Client(node int) *core.SimClient {
	if cl, ok := j.clients[node]; ok {
		return cl
	}
	costs := core.DefaultSimCosts()
	if j.opts.Costs != nil {
		costs = *j.opts.Costs
	}
	g := j.cluster.GPFS
	if j.opts.NoFallback {
		g = nil
	}
	replicas := j.opts.Replicas
	if replicas < 1 {
		replicas = 1
	}
	cl := core.NewSimClient(j.cluster.Eng, simnet.NodeID(node), j.cluster.Fabric,
		j.Servers, j.opts.Placement, replicas, g, costs)
	if j.opts.SegmentSize > 0 {
		cl.SetSegmentSize(j.opts.SegmentSize)
	}
	j.clients[node] = cl
	return cl
}

// FS returns the per-rank FS provider for training runs.
func (j *HVACJob) FS() func(node, proc int) vfs.FS {
	return func(node, proc int) vfs.FS { return j.Client(node) }
}

// Prewarm pre-populates the job's caches with the whole dataset before
// training (the paper's future-work prefetching, §IV-C): every node's
// client prefetches a strided shard of the namespace, each file landing
// on its home server. It runs the engine until the copies complete and
// returns the staging duration in virtual time.
func (j *HVACJob) Prewarm() (sim.Duration, error) {
	c := j.cluster
	paths := c.GPFS.Namespace().Paths()
	start := c.Eng.Now()
	for n := 0; n < c.nodes; n++ {
		n := n
		client := j.Client(n)
		c.Eng.Spawn(fmt.Sprintf("prewarm%d", n), func(p *sim.Proc) {
			var shard []string
			for i := n; i < len(paths); i += c.nodes {
				shard = append(shard, paths[i])
			}
			client.Prefetch(p, shard)
		})
	}
	if err := c.Eng.RunAll(); err != nil {
		return 0, err
	}
	return c.Eng.Now().Sub(start), nil
}

// FileDistribution returns the per-server cached-file counts (Fig. 15).
func (j *HVACJob) FileDistribution() []int {
	out := make([]int, len(j.Servers))
	for i, s := range j.Servers {
		out[i] = s.CachedFiles()
	}
	return out
}

// TotalStats aggregates server counters across the job.
func (j *HVACJob) TotalStats() core.SimServerStats {
	var t core.SimServerStats
	for _, s := range j.Servers {
		st := s.Stats()
		t.Opens += st.Opens
		t.Reads += st.Reads
		t.Closes += st.Closes
		t.Hits += st.Hits
		t.Misses += st.Misses
		t.BytesServed += st.BytesServed
		t.BytesFetched += st.BytesFetched
		t.Evictions += st.Evictions
	}
	return t
}
