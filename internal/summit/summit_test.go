package summit

import (
	"fmt"
	"testing"

	"hvac/internal/sim"
	"hvac/internal/vfs"
)

func smallNS(files int, size int64) *vfs.Namespace {
	ns := vfs.NewNamespace()
	for i := 0; i < files; i++ {
		ns.Add(fmt.Sprintf("/gpfs/d/f%05d", i), size)
	}
	return ns
}

func TestTableI(t *testing.T) {
	spec := TableI()
	if spec.CPUSockets != 2 || spec.CoresPerCPU != 22 || spec.CPUClockGHz != 3.07 {
		t.Fatalf("CPU spec = %+v (Table I: 2x IBM POWER9 22 cores 3.07GHz)", spec)
	}
	if spec.GPUs != 6 {
		t.Fatalf("GPUs = %d, want 6 V100", spec.GPUs)
	}
	if spec.MemoryGB != 512 {
		t.Fatalf("memory = %d, want 512 GB", spec.MemoryGB)
	}
	if spec.NVMe.Capacity != 1600e9 {
		t.Fatalf("NVMe = %d, want 1.6 TB", spec.NVMe.Capacity)
	}
	if spec.Interconnect.LinkBandwidth != 25e9 {
		t.Fatal("interconnect should be dual-rail EDR (25 GB/s)")
	}
}

func TestClusterBounds(t *testing.T) {
	eng := sim.NewEngine()
	for _, bad := range []int{0, -1, MaxNodes + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCluster(%d) did not panic", bad)
				}
			}()
			NewCluster(eng, bad, smallNS(1, 1))
		}()
	}
	c := NewCluster(eng, 4, smallNS(1, 1))
	if c.Nodes() != 4 || len(c.Devices) != 4 {
		t.Fatalf("nodes/devices = %d/%d", c.Nodes(), len(c.Devices))
	}
}

func TestFSProvidersMemoisePerNode(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 2, smallNS(4, 1024))
	g := c.GPFSFS()
	if g(0, 0) != g(0, 1) {
		t.Fatal("GPFS mounts should be shared per node")
	}
	if g(0, 0) == g(1, 0) {
		t.Fatal("GPFS mounts should differ across nodes")
	}
	x := c.XFSFS()
	if x(1, 0) != x(1, 1) {
		t.Fatal("XFS mounts should be shared per node")
	}
}

func TestXFSStagingFeasibilityCheck(t *testing.T) {
	eng := sim.NewEngine()
	big := vfs.NewNamespace()
	big.Add("/gpfs/huge", 2e12) // exceeds the 1.6 TB NVMe
	c := NewCluster(eng, 1, big)
	defer func() {
		if recover() == nil {
			t.Fatal("oversized staging should panic")
		}
	}()
	c.XFSFS()
}

func TestStartHVACInstanceLayout(t *testing.T) {
	eng := sim.NewEngine()
	c := NewCluster(eng, 3, smallNS(8, 1024))
	job := c.StartHVAC(HVACOptions{InstancesPerNode: 4})
	if len(job.Servers) != 12 {
		t.Fatalf("servers = %d, want 3x4", len(job.Servers))
	}
	perNode := map[int]int{}
	for _, s := range job.Servers {
		perNode[int(s.Node())]++
	}
	for n := 0; n < 3; n++ {
		if perNode[n] != 4 {
			t.Fatalf("node %d has %d instances", n, perNode[n])
		}
	}
	if job.Client(1) != job.Client(1) {
		t.Fatal("clients should be memoised")
	}
	if len(job.FileDistribution()) != 12 {
		t.Fatal("file distribution width mismatch")
	}
}

func TestPrewarmStagesWholeDataset(t *testing.T) {
	eng := sim.NewEngine()
	ns := smallNS(40, 128<<10)
	c := NewCluster(eng, 4, ns)
	job := c.StartHVAC(HVACOptions{InstancesPerNode: 2})
	d, err := job.Prewarm()
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("prewarm consumed no virtual time")
	}
	total := 0
	for _, n := range job.FileDistribution() {
		total += n
	}
	if total != 40 {
		t.Fatalf("prewarmed %d files, want 40", total)
	}
	if st := job.TotalStats(); st.Misses != 40 {
		t.Fatalf("misses = %d, want 40 (each file staged once)", st.Misses)
	}
	// Training after prewarm sees only hits.
	var hits int64
	for n := 0; n < 4; n++ {
		fs := job.FS()(n, 0)
		eng.Spawn("r", func(p *sim.Proc) {
			for _, path := range ns.Paths() {
				vfs.ReadFile(p, fs, path)
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	hits = job.TotalStats().Hits
	if hits != 160 {
		t.Fatalf("hits = %d, want 160 (4 nodes x 40 warm reads)", hits)
	}
}

func TestHVACEndToEndOnCluster(t *testing.T) {
	eng := sim.NewEngine()
	ns := smallNS(32, 64<<10)
	c := NewCluster(eng, 4, ns)
	c.RegisterJob(8)
	job := c.StartHVAC(HVACOptions{InstancesPerNode: 2})
	for n := 0; n < 4; n++ {
		fs := job.FS()(n, 0)
		eng.Spawn("reader", func(p *sim.Proc) {
			for _, path := range ns.Paths() {
				if _, err := vfs.ReadFile(p, fs, path); err != nil {
					t.Errorf("read %s: %v", path, err)
				}
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := job.TotalStats()
	if st.Misses != 32 {
		t.Fatalf("misses = %d, want 32", st.Misses)
	}
	total := 0
	for _, n := range job.FileDistribution() {
		total += n
	}
	if total != 32 {
		t.Fatalf("distributed files = %d, want 32", total)
	}
}
