package dataset

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"hvac/internal/vfs"
)

func TestPublishedCounts(t *testing.T) {
	in := ImageNet21K()
	if in.TrainFiles != 11_797_632 || in.ValFiles != 561_052 {
		t.Fatalf("ImageNet21K counts = %d/%d (§IV-A3 says 11,797,632/561,052)", in.TrainFiles, in.ValFiles)
	}
	if tb := in.TotalTrainBytes(); tb < 1.0e12 || tb > 1.3e12 {
		t.Fatalf("ImageNet21K total = %.2f TB, want ~1.1 (§IV-A3)", float64(tb)/1e12)
	}
	cu := CosmoUniverse()
	if cu.TrainFiles != 524_288 || cu.ValFiles != 65_536 {
		t.Fatalf("cosmoUniverse counts = %d/%d", cu.TrainFiles, cu.ValFiles)
	}
	if tb := cu.TotalTrainBytes(); tb < 1.2e12 || tb > 1.45e12 {
		t.Fatalf("cosmoUniverse total = %.2f TB, want ~1.3", float64(tb)/1e12)
	}
}

func TestScale(t *testing.T) {
	s := ImageNet21K().Scale(0.001)
	if s.TrainFiles != 11_797 {
		t.Fatalf("scaled train files = %d", s.TrainFiles)
	}
	if s.MeanFileSize != ImageNet21K().MeanFileSize {
		t.Fatal("scaling must not change file sizes")
	}
	if s.Name == ImageNet21K().Name {
		t.Fatal("scaled spec should be distinguishable")
	}
}

func TestScaleBadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ImageNet21K().Scale(1.5)
}

func TestBuildDeterministic(t *testing.T) {
	s := CosmoUniverse().Scale(0.001)
	a, b := vfs.NewNamespace(), vfs.NewNamespace()
	s.Build(a, false)
	s.Build(b, false)
	if a.Len() != b.Len() || a.TotalBytes() != b.TotalBytes() {
		t.Fatalf("nondeterministic build: %d/%d vs %d/%d", a.Len(), a.TotalBytes(), b.Len(), b.TotalBytes())
	}
	if a.Len() != s.TrainFiles {
		t.Fatalf("built %d files, want %d", a.Len(), s.TrainFiles)
	}
}

func TestBuildIncludesVal(t *testing.T) {
	s := CosmoUniverse().Scale(0.001)
	ns := vfs.NewNamespace()
	s.Build(ns, true)
	if ns.Len() != s.TrainFiles+s.ValFiles {
		t.Fatalf("with val: %d files, want %d", ns.Len(), s.TrainFiles+s.ValFiles)
	}
}

func TestSizeDistributionMean(t *testing.T) {
	s := ImageNet21K().Scale(0.002) // ~23.6k files
	ns := s.Namespace()
	mean := float64(ns.TotalBytes()) / float64(ns.Len())
	want := float64(s.MeanFileSize)
	if math.Abs(mean-want)/want > 0.05 {
		t.Fatalf("sampled mean %.0f deviates >5%% from %d", mean, s.MeanFileSize)
	}
}

func TestSizesVaryWhenSigmaSet(t *testing.T) {
	s := ImageNet21K().Scale(0.0005)
	ns := s.Namespace()
	sizes := map[int64]bool{}
	for _, p := range ns.Paths() {
		sz, _ := ns.Lookup(p)
		sizes[sz] = true
		if sz < 1024 {
			t.Fatalf("file smaller than floor: %d", sz)
		}
	}
	if len(sizes) < ns.Len()/2 {
		t.Fatalf("only %d distinct sizes for %d files", len(sizes), ns.Len())
	}
	// Sigma 0 means fixed sizes.
	fixed := Spec{Name: "fixed", TrainFiles: 100, MeanFileSize: 4096, PathPrefix: "/d"}
	fns := fixed.Namespace()
	for _, p := range fns.Paths() {
		if sz, _ := fns.Lookup(p); sz != 4096 {
			t.Fatalf("sigma=0 size = %d", sz)
		}
	}
}

func TestPathsDistinctAndPrefixed(t *testing.T) {
	s := CosmoUniverse()
	if s.TrainPath(0) == s.TrainPath(1) {
		t.Fatal("duplicate paths")
	}
	if s.TrainPath(5) == s.ValPath(5) {
		t.Fatal("train/val collide")
	}
	if filepath.Dir(filepath.Dir(s.TrainPath(0))) != s.PathPrefix {
		t.Fatalf("path %q not under prefix %q", s.TrainPath(0), s.PathPrefix)
	}
}

func TestMaterialize(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	s := Spec{Name: "tiny", TrainFiles: 50, MeanFileSize: 2048, SizeSigma: 0.3, PathPrefix: "/x"}
	paths, err := s.Materialize(dir, 40*2048)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) > 50 {
		t.Fatalf("materialized %d files", len(paths))
	}
	var total int64
	for _, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
	}
	if total > 40*2048 {
		t.Fatalf("total %d exceeds cap", total)
	}
}
