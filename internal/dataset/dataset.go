// Package dataset describes the training datasets of the paper's
// evaluation (§IV-A3) and generates synthetic equivalents: HVAC never
// inspects file contents, so only the name set and the size distribution
// matter to I/O behaviour. Sizes are drawn from a log-normal fitted to the
// published mean, reproducing the "random sizes of files" that perturb the
// Fig. 15 load balance.
package dataset

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"hvac/internal/sim"
	"hvac/internal/vfs"
)

// Spec describes a dataset.
type Spec struct {
	// Name identifies the dataset in reports.
	Name string
	// TrainFiles and ValFiles are the published sample counts.
	TrainFiles int
	ValFiles   int
	// MeanFileSize is the published average sample size in bytes.
	MeanFileSize int64
	// SizeSigma is the sigma of the underlying normal of the log-normal
	// size distribution; 0 means every file has exactly MeanFileSize.
	SizeSigma float64
	// PathPrefix is the PFS directory the files live under.
	PathPrefix string
}

// ImageNet21K is the dataset used for ResNet50 and TResNet_M: 11,797,632
// training samples across 11,221 classes, 1.1 TB total (§IV-A3). The
// paper's stated ~163 KB average is inconsistent with count x total
// (163 KB x 11.8M = 1.9 TB); we honour the file count and the total
// (=> ~96 KB mean), since the count drives metadata load, the total
// drives bandwidth load, and staging must fit the 1.6 TB node NVMe for
// the XFS-on-NVMe baseline to exist at all.
func ImageNet21K() Spec {
	return Spec{
		Name:         "imagenet21k",
		TrainFiles:   11_797_632,
		ValFiles:     561_052,
		MeanFileSize: 96 << 10,
		SizeSigma:    0.55,
		PathPrefix:   "/gpfs/alpine/imagenet21k",
	}
}

// CosmoUniverse is the CosmoFlow dataset: 524,288 training TFRecord
// samples, 65,536 validation, 1.3 TB total => ~2.5 MB per sample.
func CosmoUniverse() Spec {
	return Spec{
		Name:         "cosmouniverse",
		TrainFiles:   524_288,
		ValFiles:     65_536,
		MeanFileSize: 2_600_000,
		SizeSigma:    0.10,
		PathPrefix:   "/gpfs/alpine/cosmouniverse",
	}
}

// DeepCAMClimate reconstructs the climate-segmentation dataset DeepCAM
// trains on: 768x1152-pixel, 16-channel samples (§IV-A2), far larger than
// ImageNet files. The paper does not tabulate this set; counts follow the
// MLPerf-HPC climate benchmark, sizes from the stated sample geometry.
func DeepCAMClimate() Spec {
	return Spec{
		Name:         "deepcam-climate",
		TrainFiles:   121_266,
		ValFiles:     15_158,
		MeanFileSize: 10_000_000,
		SizeSigma:    0.05,
		PathPrefix:   "/gpfs/alpine/deepcam",
	}
}

// OpenImages is the ~9M-image dataset the introduction cites as a
// metadata stressor.
func OpenImages() Spec {
	return Spec{
		Name:         "openimages",
		TrainFiles:   9_000_000,
		ValFiles:     125_436,
		MeanFileSize: 300 << 10,
		SizeSigma:    0.6,
		PathPrefix:   "/gpfs/alpine/openimages",
	}
}

// Scale returns a proportionally shrunken copy (at least one file), used
// by the scaled benchmark runs; the scale factor is recorded in the name.
func (s Spec) Scale(factor float64) Spec {
	if factor <= 0 || factor > 1 {
		panic("dataset: scale factor must be in (0, 1]")
	}
	if factor == 1 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.4g", s.Name, factor)
	out.TrainFiles = maxInt(1, int(float64(s.TrainFiles)*factor))
	out.ValFiles = maxInt(1, int(float64(s.ValFiles)*factor))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TotalTrainBytes estimates the training set's size.
func (s Spec) TotalTrainBytes() int64 {
	return int64(s.TrainFiles) * s.MeanFileSize
}

// TrainPath returns the i-th training file's path.
func (s Spec) TrainPath(i int) string {
	return fmt.Sprintf("%s/train/%07d.rec", s.PathPrefix, i)
}

// ValPath returns the i-th validation file's path.
func (s Spec) ValPath(i int) string {
	return fmt.Sprintf("%s/val/%07d.rec", s.PathPrefix, i)
}

// size draws the i-th file's size deterministically from the spec's
// distribution (seeded per spec name, independent of call order).
func (s Spec) size(rng *sim.RNG) int64 {
	if s.SizeSigma == 0 {
		return s.MeanFileSize
	}
	// For a log-normal, mean = exp(mu + sigma^2/2); solve mu for the
	// published mean.
	mu := math.Log(float64(s.MeanFileSize)) - s.SizeSigma*s.SizeSigma/2
	sz := int64(rng.LogNormal(mu, s.SizeSigma))
	if sz < 1024 {
		sz = 1024
	}
	return sz
}

func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Build populates a namespace with the training files (and optionally the
// validation files) of the spec. Deterministic for a given spec.
func (s Spec) Build(ns *vfs.Namespace, includeVal bool) {
	rng := sim.NewRNG(seedFor(s.Name))
	for i := 0; i < s.TrainFiles; i++ {
		ns.Add(s.TrainPath(i), s.size(rng))
	}
	if includeVal {
		for i := 0; i < s.ValFiles; i++ {
			ns.Add(s.ValPath(i), s.size(rng))
		}
	}
}

// Namespace builds and returns a fresh namespace with the training files.
func (s Spec) Namespace() *vfs.Namespace {
	ns := vfs.NewNamespace()
	s.Build(ns, false)
	return ns
}

// TrainPaths returns the training file paths in index order.
func (s Spec) TrainPaths() []string {
	out := make([]string, s.TrainFiles)
	for i := range out {
		out[i] = s.TrainPath(i)
	}
	return out
}

// Materialize writes real files with the spec's size distribution under
// dir for real-mode runs, capping the total at maxBytes (0 = no cap).
// It returns the created paths.
func (s Spec) Materialize(dir string, maxBytes int64) ([]string, error) {
	rng := sim.NewRNG(seedFor(s.Name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var total int64
	var paths []string
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i)
	}
	for i := 0; i < s.TrainFiles; i++ {
		size := s.size(rng)
		if maxBytes > 0 && total+size > maxBytes {
			break
		}
		p := filepath.Join(dir, fmt.Sprintf("%07d.rec", i))
		f, err := os.Create(p)
		if err != nil {
			return paths, err
		}
		remaining := size
		for remaining > 0 {
			n := int64(len(buf))
			if n > remaining {
				n = remaining
			}
			if _, err := f.Write(buf[:n]); err != nil {
				_ = f.Close() // the write failure is the error to report
				return paths, err
			}
			remaining -= n
		}
		if err := f.Close(); err != nil {
			return paths, err
		}
		total += size
		paths = append(paths, p)
	}
	return paths, nil
}
