package core

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// The zero-copy serve plane (DESIGN.md §13) end to end: real TCP
// clusters with ServerConfig.ZeroCopy toggled, proving the sendfile
// path is invisible to clients (byte identity), survives connections
// dying mid-payload, and keeps the Sends+Fallbacks == Eligible
// accounting identity.

// writeSizedPFS lays out one file per size so a single cluster run
// covers empty, sub-segment, page-sized, and multi-chunk payloads.
func writeSizedPFS(t *testing.T, dir string, sizes []int) []string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, len(sizes))
	for i, size := range sizes {
		content := make([]byte, size)
		for j := range content {
			content[j] = byte(j*31 + size)
		}
		p := filepath.Join(dir, fmt.Sprintf("s%08d.bin", size))
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

// TestZeroCopyByteIdentityOnOff reads the same dataset through two
// clusters — zero-copy armed and disarmed — across two epochs (the
// second is warm, so the armed cluster serves it through fd leases and
// sendfile) and requires every read to match the PFS bytes. On Linux
// the armed warm epoch must produce actual sendfile sends; disarmed, no
// serve may even be eligible.
func TestZeroCopyByteIdentityOnOff(t *testing.T) {
	sizes := []int{1, 511, 4096, 64 << 10, (1 << 20) + 7}
	for _, zc := range []bool{false, true} {
		name := "off"
		if zc {
			name = "on"
		}
		t.Run(name, func(t *testing.T) {
			pfsDir := filepath.Join(t.TempDir(), "dataset")
			paths := writeSizedPFS(t, pfsDir, sizes)
			want := make(map[string][]byte, len(paths))
			for _, p := range paths {
				content, err := os.ReadFile(p)
				if err != nil {
					t.Fatal(err)
				}
				want[p] = content
			}
			servers, cli := startCluster(t, pfsDir, 2, func(c *ServerConfig) { c.ZeroCopy = zc }, nil)

			for epoch := 0; epoch < 2; epoch++ {
				for _, p := range paths {
					got, err := cli.ReadAll(p)
					if err != nil {
						t.Fatalf("epoch %d: read %s: %v", epoch, p, err)
					}
					if !bytes.Equal(got, want[p]) {
						t.Fatalf("epoch %d: %s differs from the PFS copy (%d bytes, want %d)",
							epoch, p, len(got), len(want[p]))
					}
				}
				for _, s := range servers {
					s.WaitIdle() // warm every cache before the second epoch
				}
			}

			var eligible, sends int64
			for i, s := range servers {
				ss := s.Stats()
				if ss.ZeroCopySends+ss.ZeroCopyFallbacks != ss.ZeroCopyEligible {
					t.Fatalf("srv%d: sends(%d)+fallbacks(%d) != eligible(%d)",
						i, ss.ZeroCopySends, ss.ZeroCopyFallbacks, ss.ZeroCopyEligible)
				}
				eligible += ss.ZeroCopyEligible
				sends += ss.ZeroCopySends
			}
			if !zc && eligible != 0 {
				t.Fatalf("%d zero-copy serves with the plane disarmed", eligible)
			}
			if zc && eligible == 0 {
				t.Fatal("warm epoch produced no zero-copy-eligible serves")
			}
			if zc && runtime.GOOS == "linux" && sends == 0 {
				t.Fatal("warm epoch on linux produced no sendfile sends")
			}
		})
	}
}

// TestZeroCopyMidSendConnectionDeath kills a client connection while
// the server is mid-sendfile on a 1 MiB warm payload: the serve fails
// on that connection only, the stats identity still resolves, and the
// server keeps serving byte-identical reads to healthy clients.
func TestZeroCopyMidSendConnectionDeath(t *testing.T) {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writeSizedPFS(t, pfsDir, []int{1 << 20})
	want, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	servers, cli := startCluster(t, pfsDir, 1, func(c *ServerConfig) { c.ZeroCopy = true }, nil)
	srv := servers[0]

	// Warm the cache so the raw-connection read below is an fd-lease serve.
	if _, err := cli.ReadAll(paths[0]); err != nil {
		t.Fatal(err)
	}
	srv.WaitIdle()

	// A raw protocol speaker: open the warm file, request the whole
	// payload, swallow a token amount, and slam the connection shut while
	// the server's sendfile loop still owes ~1 MiB.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := transport.WriteRequest(conn, &transport.Request{Op: transport.OpOpen, Path: paths[0]}); err != nil {
		t.Fatal(err)
	}
	opened, err := transport.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	handle := opened.Handle
	opened.Release()
	if err := transport.WriteRequest(conn, &transport.Request{Op: transport.OpRead, Handle: handle, Off: 0, Len: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 512)
	if _, err := conn.Read(head); err != nil {
		t.Fatalf("reading the response head: %v", err)
	}
	_ = conn.Close() // mid-payload: the kernel still owes the socket ~1 MiB

	// The server must shrug: a healthy client still gets identical bytes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, rerr := cli.ReadAll(paths[0])
		if rerr != nil {
			t.Fatalf("read after mid-send death: %v", rerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("bytes corrupted after a connection died mid-sendfile")
		}
		ss := srv.Stats()
		if ss.ZeroCopySends+ss.ZeroCopyFallbacks == ss.ZeroCopyEligible {
			if ss.ZeroCopyEligible < 2 {
				t.Fatalf("expected the dead and the healthy serve to be eligible, got %d", ss.ZeroCopyEligible)
			}
			break
		}
		// The dying serve may still be resolving its counters in the
		// server's connection goroutine; give it a moment.
		if time.Now().After(deadline) {
			t.Fatalf("stats identity never resolved: sends(%d)+fallbacks(%d) != eligible(%d)",
				ss.ZeroCopySends, ss.ZeroCopyFallbacks, ss.ZeroCopyEligible)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
