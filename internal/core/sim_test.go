package core

import (
	"fmt"
	"testing"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/device"
	"hvac/internal/pfs"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/trace"
	"hvac/internal/vfs"
)

// simRig is a minimal simulated HVAC deployment for tests.
type simRig struct {
	eng     *sim.Engine
	fabric  *simnet.Fabric
	gpfs    *pfs.GPFS
	devs    []*device.Device
	servers []*SimServer
	clients []*SimClient
	ns      *vfs.Namespace
}

func newSimRig(nodes, instancesPerNode, files int, fileSize int64, capacityPerInstance int64) *simRig {
	eng := sim.NewEngine()
	fabric := simnet.New(eng, simnet.SummitEDR(), nodes)
	ns := vfs.NewNamespace()
	for i := 0; i < files; i++ {
		ns.Add(fmt.Sprintf("/gpfs/dataset/f%06d", i), fileSize)
	}
	g := pfs.New(eng, pfs.Alpine(), ns)
	r := &simRig{eng: eng, fabric: fabric, gpfs: g, ns: ns}
	costs := DefaultSimCosts()
	for n := 0; n < nodes; n++ {
		dev := device.New(eng, fmt.Sprintf("nvme%d", n), device.SummitNVMe())
		r.devs = append(r.devs, dev)
		for k := 0; k < instancesPerNode; k++ {
			seed := uint64(n*1000 + k)
			srv := NewSimServer(eng, simnet.NodeID(n), fabric, g, dev,
				capacityPerInstance, cachestore.NewRandom(seed), costs)
			r.servers = append(r.servers, srv)
		}
	}
	for n := 0; n < nodes; n++ {
		r.clients = append(r.clients, NewSimClient(eng, simnet.NodeID(n), fabric,
			r.servers, nil, 1, g, costs))
	}
	return r
}

func (r *simRig) paths() []string { return r.ns.Paths() }

func TestSimReadThrough(t *testing.T) {
	r := newSimRig(4, 1, 32, 163<<10, 1<<30)
	var epoch1, epoch2 sim.Time
	r.eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range r.paths() {
			n, err := vfs.ReadFile(p, r.clients[0], path)
			if err != nil || n != 163<<10 {
				t.Errorf("read %s = %d, %v", path, n, err)
				return
			}
		}
		epoch1 = p.Now()
		for _, path := range r.paths() {
			if _, err := vfs.ReadFile(p, r.clients[0], path); err != nil {
				t.Error(err)
				return
			}
		}
		epoch2 = p.Now() - epoch1
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if epoch2 >= epoch1 {
		t.Fatalf("cached epoch (%v) not faster than cold epoch (%v)", time.Duration(epoch2), time.Duration(epoch1))
	}
	var misses, hits int64
	cached := 0
	for _, s := range r.servers {
		st := s.Stats()
		misses += st.Misses
		hits += st.Hits
		cached += s.CachedFiles()
	}
	if misses != 32 {
		t.Fatalf("misses = %d, want 32 (one per file)", misses)
	}
	if cached != 32 {
		t.Fatalf("cached files = %d, want 32", cached)
	}
	if hits != 32 {
		t.Fatalf("hits = %d, want 32 (epoch-2 opens served from cache)", hits)
	}
}

func TestSimGPFSTouchedOnlyInFirstEpoch(t *testing.T) {
	r := newSimRig(2, 1, 16, 100<<10, 1<<30)
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 3; e++ {
			for _, path := range r.paths() {
				vfs.ReadFile(p, r.clients[0], path)
			}
			if e == 0 {
				opens, _, _ := r.gpfs.Stats()
				if opens != 16 {
					t.Errorf("epoch1 GPFS opens = %d, want 16", opens)
				}
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	opens, _, bytes := r.gpfs.Stats()
	if opens != 16 {
		t.Fatalf("GPFS opens after 3 epochs = %d, want 16 (epoch 1 only)", opens)
	}
	if bytes != 16*(100<<10) {
		t.Fatalf("GPFS bytes = %d", bytes)
	}
}

func TestSimLocalVsRemoteAccounting(t *testing.T) {
	r := newSimRig(4, 1, 64, 10<<10, 1<<30)
	client := r.clients[1]
	r.eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range r.paths() {
			vfs.ReadFile(p, client, path)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Opens != 64 {
		t.Fatalf("opens = %d", st.Opens)
	}
	if st.LocalOpens+st.RemoteOpens != st.Opens {
		t.Fatalf("local(%d)+remote(%d) != opens(%d)", st.LocalOpens, st.RemoteOpens, st.Opens)
	}
	if st.LocalOpens == 0 || st.RemoteOpens == 0 {
		t.Fatalf("expected a mix of local and remote homes, got %d/%d", st.LocalOpens, st.RemoteOpens)
	}
}

func TestSimSingleCopyUnderConcurrency(t *testing.T) {
	r := newSimRig(4, 1, 1, 1<<20, 1<<30)
	for n := 0; n < 4; n++ {
		client := r.clients[n]
		r.eng.Spawn("proc", func(p *sim.Proc) {
			if _, err := vfs.ReadFile(p, client, r.paths()[0]); err != nil {
				t.Error(err)
			}
		})
	}
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	var misses int64
	for _, s := range r.servers {
		misses += s.Stats().Misses
	}
	if misses != 1 {
		t.Fatalf("misses = %d, want 1 (single copy to the cache)", misses)
	}
	// Concurrent first reads are served read-through, so each reader may
	// touch GPFS once — but never more than the reader count, and the
	// copy itself adds no extra metadata transaction (tee semantics).
	opens, _, _ := r.gpfs.Stats()
	if opens < 1 || opens > 4 {
		t.Fatalf("GPFS opens = %d, want 1..4 (one per concurrent read-through)", opens)
	}
}

func TestSimEvictionUnderPressure(t *testing.T) {
	// Capacity per instance fits 4 of 16 files homed there on average.
	r := newSimRig(1, 1, 16, 1<<20, 4<<20)
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 3; e++ {
			for _, path := range r.paths() {
				if _, err := vfs.ReadFile(p, r.clients[0], path); err != nil {
					t.Error(err)
					return
				}
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := r.servers[0].Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	if r.servers[0].CachedBytes() > 4<<20 {
		t.Fatalf("cache over capacity: %d", r.servers[0].CachedBytes())
	}
	if st.Misses <= 16 {
		t.Fatalf("misses = %d; re-fetches expected after eviction", st.Misses)
	}
}

func TestSimServerFailureFallsBackToGPFS(t *testing.T) {
	r := newSimRig(2, 1, 8, 64<<10, 1<<30)
	r.servers[1].Fail()
	client := r.clients[0]
	r.eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range r.paths() {
			if _, err := vfs.ReadFile(p, client, path); err != nil {
				t.Errorf("read %s: %v", path, err)
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Fallbacks == 0 {
		t.Fatal("no fallbacks despite failed server")
	}
	if st.Fallbacks+r.servers[0].Stats().Hits == 0 {
		t.Fatal("nothing served")
	}
}

func TestSimReplicaFailover(t *testing.T) {
	eng := sim.NewEngine()
	fabric := simnet.New(eng, simnet.SummitEDR(), 3)
	ns := vfs.NewNamespace()
	for i := 0; i < 12; i++ {
		ns.Add(fmt.Sprintf("/gpfs/d/f%03d", i), 32<<10)
	}
	g := pfs.New(eng, pfs.Alpine(), ns)
	costs := DefaultSimCosts()
	var servers []*SimServer
	for n := 0; n < 3; n++ {
		dev := device.New(eng, fmt.Sprintf("nvme%d", n), device.SummitNVMe())
		servers = append(servers, NewSimServer(eng, simnet.NodeID(n), fabric, g, dev, 1<<30, nil, costs))
	}
	client := NewSimClient(eng, 0, fabric, servers, nil, 2, nil, costs) // replicas=2, NO fallback
	servers[1].Fail()
	eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range ns.Paths() {
			if _, err := vfs.ReadFile(p, client, path); err != nil {
				t.Errorf("read %s: %v", path, err)
			}
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if client.Stats().Failovers == 0 {
		t.Fatal("no failovers despite dead primary for some files")
	}
	if client.Stats().Fallbacks != 0 {
		t.Fatal("fallback without GPFS client configured")
	}
}

func TestSimDeterministicReplay(t *testing.T) {
	run := func() sim.Time {
		r := newSimRig(3, 2, 24, 80<<10, 1<<30)
		var end sim.Time
		for n := 0; n < 3; n++ {
			client := r.clients[n]
			r.eng.Spawn("job", func(p *sim.Proc) {
				for e := 0; e < 2; e++ {
					for _, path := range r.paths() {
						vfs.ReadFile(p, client, path)
					}
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		if err := r.eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return end
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSimForcedPlacementFig13Hook(t *testing.T) {
	r := newSimRig(2, 1, 32, 16<<10, 1<<30)
	client := r.clients[0]
	client.SetPlacement(func(path string) int { return 0 }) // all local
	r.eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range r.paths() {
			vfs.ReadFile(p, client, path)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.RemoteOpens != 0 || st.LocalOpens != 32 {
		t.Fatalf("forced-local placement: local=%d remote=%d", st.LocalOpens, st.RemoteOpens)
	}
}

func TestSimPrefetchPopulatesCache(t *testing.T) {
	r := newSimRig(2, 1, 16, 128<<10, 1<<30)
	client := r.clients[0]
	r.eng.Spawn("prefetcher", func(p *sim.Proc) {
		client.Prefetch(p, r.paths())
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	cached := 0
	for _, s := range r.servers {
		cached += s.CachedFiles()
	}
	if cached != 16 {
		t.Fatalf("cached = %d after prefetch, want 16", cached)
	}
	// Reads after prefetch are hits: epoch 1 is already warm.
	r.eng.Spawn("reader", func(p *sim.Proc) {
		for _, path := range r.paths() {
			vfs.ReadFile(p, client, path)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	var hits int64
	for _, s := range r.servers {
		hits += s.Stats().Hits
	}
	if hits != 16 {
		t.Fatalf("hits = %d, want 16 (all reads warm)", hits)
	}
}

func TestSimPrefetchIdempotent(t *testing.T) {
	r := newSimRig(2, 1, 8, 64<<10, 1<<30)
	client := r.clients[0]
	r.eng.Spawn("p", func(p *sim.Proc) {
		client.Prefetch(p, r.paths())
		client.Prefetch(p, r.paths()) // second pass must not re-copy
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	var misses int64
	for _, s := range r.servers {
		misses += s.Stats().Misses
	}
	if misses != 8 {
		t.Fatalf("misses = %d, want 8 (prefetch copies once)", misses)
	}
}

func TestSimPrefetchSkipsFailedServer(t *testing.T) {
	r := newSimRig(2, 1, 8, 64<<10, 1<<30)
	r.servers[1].Fail()
	client := r.clients[0]
	r.eng.Spawn("p", func(p *sim.Proc) {
		client.Prefetch(p, r.paths()) // must not error or deadlock
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if r.servers[1].CachedFiles() != 0 {
		t.Fatal("failed server cached files")
	}
}

func TestSimSegmentedReads(t *testing.T) {
	r := newSimRig(4, 1, 4, 10<<20, 1<<30) // 10 MB files
	client := r.clients[0]
	client.SetSegmentSize(1 << 20) // 1 MB segments -> 10 per file
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 2; e++ {
			for _, path := range r.paths() {
				n, err := vfs.ReadFile(p, client, path)
				if err != nil || n != 10<<20 {
					t.Errorf("segmented read = %d, %v", n, err)
					return
				}
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	totalSegs, serversUsed := 0, 0
	var hits int64
	for _, s := range r.servers {
		if n := s.CachedFiles(); n > 0 {
			serversUsed++
			totalSegs += n
		}
		hits += s.Stats().Hits
	}
	if totalSegs != 40 {
		t.Fatalf("cached segments = %d, want 40 (4 files x 10)", totalSegs)
	}
	if serversUsed < 3 {
		t.Fatalf("segments concentrated on %d servers", serversUsed)
	}
	if hits != 40 {
		t.Fatalf("warm-epoch segment hits = %d, want 40", hits)
	}
}

// Segment-level caching spreads a single huge file's load over every
// server; file-level homing pins it to one (§III-E's motivation).
func TestSimSegmentSpreadsHotFile(t *testing.T) {
	r := newSimRig(4, 1, 1, 64<<20, 1<<30)
	fileLevel := func(seg bool) int {
		rr := newSimRig(4, 1, 1, 64<<20, 1<<30)
		cl := rr.clients[0]
		if seg {
			cl.SetSegmentSize(4 << 20)
		}
		rr.eng.Spawn("j", func(p *sim.Proc) {
			vfs.ReadFile(p, cl, rr.paths()[0])
		})
		if err := rr.eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		used := 0
		for _, s := range rr.servers {
			if s.CachedFiles() > 0 {
				used++
			}
		}
		return used
	}
	_ = r
	if u := fileLevel(false); u != 1 {
		t.Fatalf("file-level homing used %d servers, want 1", u)
	}
	if u := fileLevel(true); u < 3 {
		t.Fatalf("segment-level homing used %d servers, want >= 3", u)
	}
}

func TestSimTraceRecordsTiers(t *testing.T) {
	r := newSimRig(2, 1, 8, 64<<10, 1<<30)
	client := r.clients[0]
	rec := trace.NewRecorder(0)
	client.SetTracer(rec)
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 2; e++ {
			for _, path := range r.paths() {
				vfs.ReadFile(p, client, path)
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	sum := rec.Summarise()
	// Epoch 1 reads are read-through (pfs tier); epoch 2 reads come from
	// the cache, split local/remote.
	pfsReads := int64(0)
	if s := sum[trace.Read][trace.TierPFS]; s != nil {
		pfsReads = s.Ops
	}
	if pfsReads != 8 {
		t.Fatalf("pfs-tier reads = %d, want 8 (epoch 1)", pfsReads)
	}
	cacheReads := int64(0)
	for _, tier := range []trace.Tier{trace.TierCacheLocal, trace.TierCacheRemote} {
		if s := sum[trace.Read][tier]; s != nil {
			cacheReads += s.Ops
		}
	}
	if cacheReads != 8 {
		t.Fatalf("cache-tier reads = %d, want 8 (epoch 2)", cacheReads)
	}
	if rec.Len() != 32 { // 16 opens + 16 reads
		t.Fatalf("events = %d, want 32", rec.Len())
	}
}

// A server failing MID-TRAINING must not lose data or stall the job: the
// remaining reads fall back to GPFS.
func TestSimFailureMidRun(t *testing.T) {
	r := newSimRig(4, 1, 64, 100<<10, 1<<30)
	client := r.clients[0]
	var readsDone int
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 3; e++ {
			for _, path := range r.paths() {
				if _, err := vfs.ReadFile(p, client, path); err != nil {
					t.Errorf("read %s: %v", path, err)
					return
				}
				readsDone++
			}
		}
	})
	// Kill a server partway through epoch 2.
	r.eng.Spawn("chaos", func(p *sim.Proc) {
		p.Sleep(50 * time.Millisecond)
		r.servers[2].Fail()
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if readsDone != 3*64 {
		t.Fatalf("completed %d reads, want %d", readsDone, 3*64)
	}
	if client.Stats().Fallbacks == 0 {
		t.Fatal("no fallbacks despite a mid-run server failure")
	}
}

// Instance scaling: with the same offered load, 4 instances per node keep
// mover queueing lower than 1 instance — the Fig. 9b mechanism.
func TestSimInstanceScalingReducesTime(t *testing.T) {
	elapsed := func(instances int) time.Duration {
		r := newSimRig(2, instances, 128, 163<<10, 1<<30)
		var end sim.Time
		for n := 0; n < 2; n++ {
			for j := 0; j < 2; j++ { // two loader procs per node
				client := r.clients[n]
				start := n*64 + j*32
				r.eng.Spawn("loader", func(p *sim.Proc) {
					paths := r.paths()
					for e := 0; e < 3; e++ {
						for i := 0; i < len(paths); i++ {
							vfs.ReadFile(p, client, paths[(start+i)%len(paths)])
						}
					}
					if p.Now() > end {
						end = p.Now()
					}
				})
			}
		}
		if err := r.eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(end)
	}
	t1 := elapsed(1)
	t4 := elapsed(4)
	if t4 >= t1 {
		t.Fatalf("4 instances (%v) not faster than 1 (%v)", t4, t1)
	}
}

// TestSimBatchRead mirrors the real-mode scatter-gather read: one RPC
// per home server per batch, cache behaviour identical to per-file reads
// (cold entries read through and copy in the background; warm entries
// hit), and per-group PFS fallback when a server dies.
func TestSimBatchRead(t *testing.T) {
	const (
		files    = 24
		fileSize = int64(64 << 10)
	)
	r := newSimRig(3, 1, files, fileSize, 1<<30)
	client := r.clients[0]

	var cold int64
	r.eng.Spawn("cold-batch", func(p *sim.Proc) {
		n, err := client.ReadBatch(p, r.paths())
		if err != nil {
			t.Error(err)
			return
		}
		cold = n
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if cold != files*fileSize {
		t.Fatalf("cold batch read %d bytes, want %d", cold, files*fileSize)
	}
	cached := 0
	for _, s := range r.servers {
		cached += s.CachedFiles()
	}
	if cached != files {
		t.Fatalf("cached = %d after cold batch, want %d", cached, files)
	}
	opens, _, _ := r.gpfs.Stats()
	if opens != files {
		t.Fatalf("GPFS opens = %d after cold batch, want %d", opens, files)
	}

	r.eng.Spawn("warm-batch", func(p *sim.Proc) {
		if n, err := client.ReadBatch(p, r.paths()); err != nil || n != files*fileSize {
			t.Errorf("warm batch = %d, %v", n, err)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	var hits, entries int64
	for _, s := range r.servers {
		hits += s.Stats().Hits
		entries += s.Stats().BatchEntries
	}
	if hits != files {
		t.Fatalf("warm batch hits = %d, want %d", hits, files)
	}
	if entries != 2*files {
		t.Fatalf("BatchEntries = %d, want %d", entries, 2*files)
	}
	if opens, _, _ := r.gpfs.Stats(); opens != files {
		t.Fatalf("warm batch touched GPFS: opens = %d, want %d", opens, files)
	}

	// Kill one server: its group falls back to the PFS per file, the
	// other groups still batch; total bytes unchanged.
	r.servers[0].Fail()
	before := client.Stats().Fallbacks
	r.eng.Spawn("degraded-batch", func(p *sim.Proc) {
		if n, err := client.ReadBatch(p, r.paths()); err != nil || n != files*fileSize {
			t.Errorf("degraded batch = %d, %v", n, err)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := client.Stats().Fallbacks - before; got <= 0 {
		t.Fatalf("Fallbacks = %d after server failure, want > 0", got)
	}
}
