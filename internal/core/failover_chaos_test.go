package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hvac/internal/faultnet"
	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// The live-failover chaos tier (§III-H): a server is killed for good in
// the middle of a training epoch, and the run must finish byte-identical
// with the degradation the replica count predicts — at R=2 entirely from
// the warmed replica caches, at R=1 by falling back to the PFS. Plus the
// tail-latency half of the same machinery: hedged reads racing a hung
// primary, and hedges racing Close under the race detector.

// victimHome picks the server that homes the most files (so the kill has
// real blast radius) and returns its index and file count. Placement is
// basenamePlacement, so the choice is computable before the cluster
// exists and is stable across temp directories.
func victimHome(paths []string, servers int) (victim, count int) {
	perSrv := make([]int, servers)
	for _, p := range paths {
		perSrv[basenamePlacement{}.Place(p, servers)]++
	}
	for i := range perSrv {
		if perSrv[i] > perSrv[victim] {
			victim = i
		}
	}
	return victim, perSrv[victim]
}

// TestChaosKillServerMidEpoch is the tentpole scenario: epoch 1 warms
// the cluster (demand fills forward warm hints to each key's secondary),
// then a Kill schedule takes the busiest server down partway through
// epoch 2 — first mid-read (the handle migrates), then at open time
// (the ladder fails over). At R=2 the surviving replicas serve the rest
// of the epoch from cache: zero PFS fallbacks, zero degrades, zero new
// read-throughs. The R=1 control run on the same shape proves the
// schedule really bites: without a replica the same kill degrades the
// open handle and sends the victim's remaining files back to the PFS.
func TestChaosKillServerMidEpoch(t *testing.T) {
	run := func(t *testing.T, replicas int) (ClientStats, *faultnet.Injector) {
		testutil.CheckLeaks(t)
		tc := chaosCase{
			name: "kill-mid-epoch", servers: 4, files: 24, size: 2048,
			epochs: 2, replicas: replicas,
		}
		pfsDir := filepath.Join(t.TempDir(), "dataset")
		paths := writePFS(t, pfsDir, tc.files, tc.size)
		want := make(map[string][]byte, len(paths))
		for _, p := range paths {
			content, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			want[p] = content
		}

		victim, homed := victimHome(paths, tc.servers)
		if homed < 2 {
			t.Fatalf("victim srv%d homes only %d files; kill-mid-epoch needs at least 2", victim, homed)
		}
		// ReadAll is exactly one OpRead per file per epoch, so the victim
		// answers `homed` reads in epoch 1; killing at index homed+homed/2
		// lands mid-way through its epoch-2 reads — after the warm-up, with
		// victim-homed files still ahead.
		tc.sched = faultnet.Schedule{Seed: 16, Rules: []faultnet.Rule{
			{Server: fmt.Sprintf("srv%d", victim), Op: transport.OpRead,
				Offset: int64(homed + homed/2), Fault: faultnet.Kill},
		}}
		inj := faultnet.New(tc.sched)
		t.Cleanup(inj.Close)
		servers, cli := startChaosCluster(t, pfsDir, tc, inj, nil)
		if replicas > 1 {
			wirePeers(t, servers)
		}

		for _, p := range paths { // epoch 1: fill the primaries, warm the secondaries
			got, err := cli.ReadAll(p)
			if err != nil {
				t.Fatalf("epoch 1: %s: %v", p, err)
			}
			if !bytes.Equal(got, want[p]) {
				t.Fatalf("epoch 1: %s corrupted", p)
			}
		}
		drainFills(servers)
		_, rtWarm := servedTotals(servers)

		for _, p := range paths { // epoch 2: the kill fires mid-epoch
			got, err := cli.ReadAll(p)
			if err != nil {
				t.Fatalf("epoch 2 (kill in flight): %s: %v", p, err)
			}
			if !bytes.Equal(got, want[p]) {
				t.Fatalf("epoch 2: %s corrupted across the kill", p)
			}
		}

		dead := inj.DeadServers()
		if len(dead) != 1 || dead[0] != fmt.Sprintf("srv%d", victim) {
			t.Fatalf("dead servers = %v, want exactly [srv%d]", dead, victim)
		}
		st := cli.Stats()
		if st.HedgeWins > st.Hedges {
			t.Fatalf("hedge wins(%d) exceed hedges(%d)", st.HedgeWins, st.Hedges)
		}
		if replicas > 1 {
			// Served-from-cache fraction of the post-kill epoch: every
			// epoch-2 read — before and after the kill — must be a cache
			// hit, because warming already filled the failover homes.
			_, rtAfter := servedTotals(servers)
			if rtAfter != rtWarm {
				t.Fatalf("%d epoch-2 read-throughs; failover homes were cold despite warming", rtAfter-rtWarm)
			}
		}
		return st, inj
	}

	t.Run("R2-served-from-replicas", func(t *testing.T) {
		st, _ := run(t, 2)
		if st.Fallbacks != 0 {
			t.Fatalf("R=2 kill leaked %d reads to the PFS: %+v", st.Fallbacks, st)
		}
		if st.Failovers == 0 {
			t.Fatalf("kill mid-epoch caused no failovers: %+v", st)
		}
		if st.Degrades != 0 {
			t.Fatalf("R=2 kill degraded %d handles to the PFS instead of migrating them: %+v", st.Degrades, st)
		}
	})
	t.Run("R1-degrades-to-pfs", func(t *testing.T) {
		st, _ := run(t, 1)
		if st.Fallbacks == 0 {
			t.Fatalf("R=1 kill should force PFS fallbacks, got none: %+v", st)
		}
		if st.Degrades == 0 {
			t.Fatalf("R=1 mid-read kill should degrade the open handle: %+v", st)
		}
		if st.Failovers != 0 {
			t.Fatalf("R=1 cannot fail over, yet Failovers=%d: %+v", st.Failovers, st)
		}
	})
}

// A hung primary must not cost the reader the hang timeout: with
// HedgeAfter armed, the replica answers while the primary is still
// stuck, and the win is visible in HedgeWins.
func TestChaosHedgedReadBeatsHungPrimary(t *testing.T) {
	testutil.CheckLeaks(t)
	const (
		hangFor    = 400 * time.Millisecond
		hedgeAfter = 25 * time.Millisecond
	)
	tc := chaosCase{
		name: "hedge-hang", servers: 2, files: 4, size: 2048, epochs: 1, replicas: 2,
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	target := paths[0]
	want, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	primary := basenamePlacement{}.Place(target, tc.servers)
	// Every data read at the target's primary hangs for hangFor; opens
	// and closes stay healthy so only the hedge can rescue the read.
	tc.sched = faultnet.Schedule{Seed: 20, HangTimeout: hangFor, Rules: []faultnet.Rule{
		{Server: fmt.Sprintf("srv%d", primary), Op: transport.OpRead, Fault: faultnet.Hang},
	}}
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, func(c *ClientConfig) {
		c.HedgeAfter = hedgeAfter
	})

	start := time.Now()
	got, err := cli.ReadAll(target)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("hedged read returned wrong bytes")
	}
	// The primary releases its hang only after hangFor; finishing well
	// before that proves the hedge (HedgeAfter + one replica RTT + a PFS
	// read-through) carried the result.
	if elapsed >= hangFor*3/4 {
		t.Fatalf("read took %v; the hedge should finish in ~%v, far below the %v hang", elapsed, hedgeAfter, hangFor)
	}
	st := cli.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hung primary produced no hedge win: %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("hedge path fell back to the PFS: %+v", st)
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the case is vacuous")
	}
}

// Race-stress (run under -race by the check gate): aggressive hedging
// racing File.Close and slow/refused calls must neither leak pooled
// response frames nor double-release them. The invariants are the
// HedgeWins<=Hedges identity, CheckLeaks at teardown, and the race
// detector itself; individual read errors are tolerated.
func TestChaosHedgeRaceWithClose(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "hedge-race", servers: 2, files: 8, size: 4096, epochs: 1, replicas: 2,
		sched: faultnet.Schedule{Seed: 21, Rules: []faultnet.Rule{
			{Op: transport.OpRead, Prob: 0.4, Fault: faultnet.Delay, Delay: 2 * time.Millisecond},
			{Op: transport.OpOpen, Prob: 0.2, Fault: faultnet.Refuse},
		}},
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, func(c *ClientConfig) {
		// Far below the injected delays: most slowed reads fire a hedge.
		c.HedgeAfter = 200 * time.Microsecond
	})

	const workers, iters = 8, 12
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, tc.size)
			for i := 0; i < iters; i++ {
				f, err := cli.Open(paths[(g+i)%len(paths)])
				if err != nil {
					continue
				}
				done := make(chan struct{})
				go func() {
					defer close(done)
					_, _ = f.ReadAt(buf, 0) // may race the Close below
				}()
				if i%2 == 0 {
					_ = f.Close()
				}
				<-done
				_ = f.Close() // idempotent
			}
		}(g)
	}
	wg.Wait()

	st := cli.Stats()
	if st.HedgeWins > st.Hedges {
		t.Fatalf("hedge wins(%d) exceed hedges(%d)", st.HedgeWins, st.Hedges)
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the case is vacuous")
	}
}

// Every committed schedule must be stats-deterministic, not just
// trace-deterministic: two full runs of the same workload over the same
// PFS tree under the same schedule produce bit-identical client stats.
// This is what makes a chaos failure replayable down to its counters.
func TestChaosStatsReplayBitIdentical(t *testing.T) {
	for _, tc := range chaosMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			testutil.CheckLeaks(t)
			pfsDir := filepath.Join(t.TempDir(), "dataset")
			paths := writePFS(t, pfsDir, tc.files, tc.size)
			run := func() ClientStats {
				inj := faultnet.New(tc.sched)
				defer inj.Close()
				_, cli := startChaosCluster(t, pfsDir, tc, inj, nil)
				for e := 0; e < tc.epochs; e++ {
					for _, p := range paths {
						if _, err := cli.ReadAll(p); err != nil {
							t.Fatalf("epoch %d: %s: %v", e, p, err)
						}
					}
					if _, err := cli.ReadBatch(paths); err != nil {
						t.Fatalf("epoch %d: batch: %v", e, err)
					}
				}
				return cli.Stats()
			}
			s1, s2 := run(), run()
			if s1 != s2 {
				t.Fatalf("same schedule, different stats across runs:\nrun1: %+v\nrun2: %+v", s1, s2)
			}
		})
	}
}

// Regression: openSegmented used to consult only the first segment's
// primary home — a refused primary failed the whole open even though a
// live replica held (or could fill) every segment. With the failover
// loop, a fully refused primary costs failovers, never fallbacks.
func TestChaosSegmentedOpenFailsOver(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "seg-open-failover", servers: 3, files: 2, size: 40_000,
		epochs: 2, replicas: 2, segSize: 8 << 10,
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	// Refuse the primary home of file 0's first segment — exactly the
	// server the pre-fix openSegmented was hard-wired to.
	seg0 := basenamePlacement{}.Replicas(segKey(paths[0], 0), tc.servers, tc.replicas)[0]
	tc.sched = faultnet.Schedule{Seed: 22, Rules: []faultnet.Rule{
		{Server: fmt.Sprintf("srv%d", seg0), Fault: faultnet.Refuse},
	}}
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, nil)

	for e := 0; e < tc.epochs; e++ {
		for _, p := range paths {
			got, err := cli.ReadAll(p)
			if err != nil {
				t.Fatalf("epoch %d: segmented read with refused primary: %v", e, err)
			}
			want, rerr := os.ReadFile(p)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("epoch %d: %s corrupted across segment failover", e, p)
			}
		}
	}
	st := cli.Stats()
	if st.Fallbacks != 0 {
		t.Fatalf("segmented open fell back to the PFS instead of failing over: %+v", st)
	}
	if st.Failovers == 0 {
		t.Fatalf("refused segment primary produced no failovers: %+v", st)
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the case is vacuous")
	}
}
