package core

import (
	"bytes"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressParallelClientsWithEviction hammers a single real-mode server
// with parallel clients reading an overlapping file set while the cache is
// too small to hold the dataset, so the evictor churns the whole time. Run
// under -race this exercises the handle table, the data-mover dedup map,
// the cachestore pin/evict protocol, and the stats mutex concurrently.
//
// Afterwards the ServerStats must satisfy the exact accounting identity:
// every open was served either from cache or read through from the PFS
// (Hits + ReadThroughs == Opens), every open was closed, and every byte
// the clients received was counted exactly once.
func TestStressParallelClientsWithEviction(t *testing.T) {
	const (
		files    = 30
		fileSize = 8 << 10
		clients  = 6
		rounds   = 4
		window   = 12 // files per client per round; stride 5 => heavy overlap
	)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, files, fileSize)

	servers, cli := startCluster(t, pfsDir, 1,
		func(cfg *ServerConfig) {
			// ~1/3 of the dataset fits: the evictor stays busy.
			cfg.CacheCapacity = files * fileSize / 3
			cfg.Movers = 4
		},
		func(cfg *ClientConfig) {
			// A server failure must surface as a hard error, not a silent
			// PFS fallback that would skew the accounting below.
			cfg.DisableFallback = true
		})
	srv := servers[0]

	var (
		wg         sync.WaitGroup
		totalOpens atomic.Int64
		totalBytes atomic.Int64
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < window; k++ {
					i := (g*5 + r + k) % files
					got, err := cli.ReadAll(paths[i])
					if err != nil {
						t.Errorf("client %d round %d: ReadAll(%s): %v", g, r, paths[i], err)
						return
					}
					want := bytes.Repeat([]byte{byte(i)}, fileSize)
					if !bytes.Equal(got, want) {
						t.Errorf("client %d round %d: file %d content mismatch (%d bytes)", g, r, i, len(got))
						return
					}
					totalOpens.Add(1)
					totalBytes.Add(int64(len(got)))
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	srv.WaitIdle() // drain the background data-movers before reading stats

	st := srv.Stats()
	if st.Opens != totalOpens.Load() {
		t.Errorf("Opens = %d, want %d (one per successful ReadAll)", st.Opens, totalOpens.Load())
	}
	if st.Closes != st.Opens {
		t.Errorf("Closes = %d, want %d (every open closed)", st.Closes, st.Opens)
	}
	if st.Hits+st.ReadThroughs != st.Opens {
		t.Errorf("Hits (%d) + ReadThroughs (%d) = %d, want Opens = %d",
			st.Hits, st.ReadThroughs, st.Hits+st.ReadThroughs, st.Opens)
	}
	if st.BytesServed != totalBytes.Load() {
		t.Errorf("BytesServed = %d, want %d (every byte counted once)", st.BytesServed, totalBytes.Load())
	}
	if st.Evictions == 0 {
		t.Error("Evictions = 0, want churn: the cache holds 1/3 of the dataset")
	}
	if st.Misses > st.ReadThroughs {
		t.Errorf("Misses (%d) exceed ReadThroughs (%d): the mover completed more copies than read-throughs scheduled", st.Misses, st.ReadThroughs)
	}
	if used, cap := srv.CachedBytes(), int64(files*fileSize/3); used > cap {
		t.Errorf("cache over capacity after stress: used %d > %d", used, cap)
	}
	cs := cli.Stats()
	if cs.Fallbacks != 0 || cs.Passthrough != 0 {
		t.Errorf("client stats = %+v, want zero fallbacks and passthroughs", cs)
	}
}

// TestStressSegmentedParallelClients repeats the stress run in
// segment-level caching mode (§III-E), where the accounting identity
// moves to the read path: every segment read is a Hit or a ReadThrough.
func TestStressSegmentedParallelClients(t *testing.T) {
	const (
		files    = 12
		fileSize = 8 << 10
		segSize  = 1 << 10
		clients  = 4
		rounds   = 3
	)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, files, fileSize)

	servers, cli := startCluster(t, pfsDir, 1,
		func(cfg *ServerConfig) {
			cfg.SegmentSize = segSize
			cfg.CacheCapacity = files * fileSize / 3
			cfg.Movers = 4
		},
		func(cfg *ClientConfig) {
			cfg.SegmentSize = segSize
			cfg.DisableFallback = true
		})
	srv := servers[0]

	var (
		wg         sync.WaitGroup
		totalBytes atomic.Int64
	)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for k := 0; k < files; k++ {
					i := (g*3 + k) % files
					got, err := cli.ReadAll(paths[i])
					if err != nil {
						t.Errorf("client %d round %d: ReadAll(%s): %v", g, r, paths[i], err)
						return
					}
					want := bytes.Repeat([]byte{byte(i)}, fileSize)
					if !bytes.Equal(got, want) {
						t.Errorf("client %d round %d: file %d content mismatch", g, r, i)
						return
					}
					totalBytes.Add(int64(len(got)))
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	srv.WaitIdle()

	st := srv.Stats()
	if st.Hits+st.ReadThroughs != st.Reads {
		t.Errorf("Hits (%d) + ReadThroughs (%d) = %d, want Reads = %d",
			st.Hits, st.ReadThroughs, st.Hits+st.ReadThroughs, st.Reads)
	}
	if st.BytesServed != totalBytes.Load() {
		t.Errorf("BytesServed = %d, want %d", st.BytesServed, totalBytes.Load())
	}
	cs := cli.Stats()
	if cs.Fallbacks != 0 {
		t.Errorf("client stats = %+v, want zero fallbacks", cs)
	}
}
