package core

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/transport"
)

// A plan whose horizon covers the whole epoch warms every file before
// the first read: epoch-1 demand reads all land on cache (or on an
// in-flight fill), with zero read-throughs.
func TestPlanInstallPrefetchesWholeEpoch(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 16, 1024)
	servers, cli := startCluster(t, pfsDir, 1, func(cfg *ServerConfig) {
		cfg.Policy = cachestore.NewClairvoyant()
	}, nil)
	srv := servers[0]

	installed, err := cli.InstallPlan(1, paths, 64)
	if err != nil {
		t.Fatal(err)
	}
	if installed != len(paths) {
		t.Fatalf("installed %d plan entries, want %d", installed, len(paths))
	}
	srv.WaitIdle()
	if got := srv.CachedFiles(); got != len(paths) {
		t.Fatalf("plan pump cached %d files, want %d", got, len(paths))
	}
	st := srv.Stats()
	if st.PlanInstalled != 16 || st.PlanPrefetches != 16 || st.PlanKeys != 16 {
		t.Fatalf("plan stats = installed %d prefetches %d keys %d, want 16/16/16",
			st.PlanInstalled, st.PlanPrefetches, st.PlanKeys)
	}
	if st.PlanFrontier != -1 {
		t.Fatalf("frontier %d before any read, want -1", st.PlanFrontier)
	}

	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	st = srv.Stats()
	if st.ReadThroughs != 0 {
		t.Fatalf("%d read-throughs in a fully planned epoch, want 0", st.ReadThroughs)
	}
	if st.Hits == 0 {
		t.Fatalf("no cache hits in a fully planned epoch: %+v", st)
	}
	if st.PlanFrontier != int64(len(paths)-1) {
		t.Fatalf("frontier %d after the epoch, want %d", st.PlanFrontier, len(paths)-1)
	}
}

// The pump never runs more than horizon entries ahead of the read
// frontier, and observed demand reads advance it.
func TestPlanFrontierBoundsPrefetch(t *testing.T) {
	const horizon = 4
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 16, 512)
	servers, cli := startCluster(t, pfsDir, 1, func(cfg *ServerConfig) {
		cfg.Policy = cachestore.NewClairvoyant()
	}, nil)
	srv := servers[0]

	if _, err := cli.InstallPlan(1, paths, horizon); err != nil {
		t.Fatal(err)
	}
	srv.WaitIdle()
	// Frontier is -1: positions 0..horizon-1 are in the window.
	if got := srv.CachedFiles(); got != horizon {
		t.Fatalf("pump cached %d files at frontier -1, want %d", got, horizon)
	}

	// Reading position 0 slides the window to 0..horizon.
	if _, err := cli.ReadAll(paths[0]); err != nil {
		t.Fatal(err)
	}
	srv.WaitIdle()
	if got := srv.CachedFiles(); got != horizon+1 {
		t.Fatalf("pump cached %d files at frontier 0, want %d", got, horizon+1)
	}

	// Jumping the frontier to position 7 slides it to 0..7+horizon.
	if _, err := cli.ReadAll(paths[7]); err != nil {
		t.Fatal(err)
	}
	srv.WaitIdle()
	if got, want := srv.CachedFiles(), 7+horizon+1; got != want {
		t.Fatalf("pump cached %d files at frontier 7, want %d", got, want)
	}
	if st := srv.Stats(); st.PlanFrontier != 7 {
		t.Fatalf("frontier %d, want 7", st.PlanFrontier)
	}
}

// Chunked installs append in order under one generation; a chunk for a
// different generation or at the wrong offset is refused, as is a
// negative horizon or a key outside the dataset — and a refused chunk
// never corrupts the installed plan.
func TestPlanChunkedInstallRejections(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 4, 256)
	servers, _ := startCluster(t, pfsDir, 1, nil, nil)
	srv := servers[0]

	plan := func(handle, off, ln int64, keys []string) *transport.Response {
		blob, err := transport.EncodeBatchPaths(keys)
		if err != nil {
			t.Fatal(err)
		}
		return srv.handlePlan(&transport.Request{Op: transport.OpPlan, Handle: handle, Off: off, Len: ln, Path: blob})
	}

	if resp := plan(7, 0, 0, paths[:2]); resp.Error() != nil || resp.Size != 2 {
		t.Fatalf("first chunk: err=%v size=%d", resp.Error(), resp.Size)
	}
	if resp := plan(7, 2, 0, paths[2:]); resp.Error() != nil || resp.Size != 4 {
		t.Fatalf("second chunk: err=%v size=%d", resp.Error(), resp.Size)
	}
	if resp := plan(8, 4, 0, paths[:1]); resp.Error() == nil {
		t.Fatal("chunk for a stale generation was accepted")
	}
	if resp := plan(7, 99, 0, paths[:1]); resp.Error() == nil {
		t.Fatal("out-of-order chunk was accepted")
	}
	if resp := plan(7, 4, -1, paths[:1]); resp.Error() == nil {
		t.Fatal("negative horizon was accepted")
	}
	outside := filepath.Join(t.TempDir(), "elsewhere.bin")
	if resp := plan(7, 4, 0, []string{outside}); resp.Error() == nil {
		t.Fatal("plan key outside the dataset was accepted")
	}
	if keys, frontier := srv.planSnapshot(); keys != 4 || frontier != -1 {
		t.Fatalf("plan after refused chunks: keys=%d frontier=%d, want 4/-1", keys, frontier)
	}
	// A new generation at Off 0 replaces everything.
	if resp := plan(9, 0, 0, paths[:1]); resp.Error() != nil || resp.Size != 1 {
		t.Fatalf("replacing generation: err=%v size=%d", resp.Error(), resp.Size)
	}
	srv.WaitIdle()
}

// The default mover pool fills concurrently: two cold prefetches must
// both reach the PFS before either is released. A single-mover pool
// would serialize them and time this out.
func TestMoverDefaultConcurrency(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 2, 1024)
	arrived := make(chan string, 2)
	release := make(chan struct{})
	servers, cli := startCluster(t, pfsDir, 1, func(cfg *ServerConfig) {
		cfg.OpenPFS = func(path string) (*os.File, error) {
			arrived <- path
			<-release
			return os.Open(path) //hvac:pfs-fallback test seam: rendezvous proving concurrent movers
		}
	}, nil)
	srv := servers[0]

	if n := cli.Prefetch(paths); n != 2 {
		t.Fatalf("prefetch accepted %d files, want 2", n)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(10 * time.Second):
			close(release) // unblock the stuck mover before failing
			t.Fatalf("only %d concurrent PFS opens; the default mover pool must fill in parallel", i)
		}
	}
	close(release)
	srv.WaitIdle()
	if got := srv.CachedFiles(); got != 2 {
		t.Fatalf("cached %d files after release, want 2", got)
	}
}
