package core

import "sync"

// handleShards is the stripe count of the server's open-handle table. 16
// stripes of RWMutex keep concurrent readers of distinct handles (the
// common case: every client connection reads through its own fd) from
// serializing on one lock, which is what the paper's i×1 multi-instance
// deployments buy with separate processes.
const handleShards = 16

// handleTable is a sharded fd -> openHandle map. Lookups take only the
// owning shard's read lock, so the hot read path never contends with
// opens and closes on other shards.
type handleTable struct {
	shards [handleShards]handleShard
}

type handleShard struct {
	mu sync.RWMutex
	m  map[int64]*openHandle
}

func (t *handleTable) shard(fd int64) *handleShard {
	return &t.shards[uint64(fd)%handleShards]
}

func (t *handleTable) get(fd int64) (*openHandle, bool) {
	sh := t.shard(fd)
	sh.mu.RLock()
	h, ok := sh.m[fd]
	sh.mu.RUnlock()
	return h, ok
}

func (t *handleTable) put(fd int64, h *openHandle) {
	sh := t.shard(fd)
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[int64]*openHandle)
	}
	sh.m[fd] = h
	sh.mu.Unlock()
}

// take removes and returns the handle for fd.
func (t *handleTable) take(fd int64) (*openHandle, bool) {
	sh := t.shard(fd)
	sh.mu.Lock()
	h, ok := sh.m[fd]
	if ok {
		delete(sh.m, fd)
	}
	sh.mu.Unlock()
	return h, ok
}

// drain empties the table and returns every handle, for teardown.
func (t *handleTable) drain() []*openHandle {
	var out []*openHandle
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, h := range sh.m {
			out = append(out, h)
		}
		sh.m = nil
		sh.mu.Unlock()
	}
	return out
}
