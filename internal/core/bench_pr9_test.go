package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"hvac/internal/cachestore"
)

// The ISSUE 9 clairvoyant benchmarks: how close plan-driven prefetching
// pulls a fully cold first epoch to warm-epoch speed.
//
//   - BenchmarkClairvoyantColdEpoch256 runs one cold epoch (256 x 64 KiB,
//     fresh server and cache per iteration) at plan horizons 0 (no plan
//     installed — the demand-only baseline), 64, 256 and 1024. Reads go
//     in plan order, so at a sufficient horizon the pump stays ahead of
//     the loader and every demand read lands on cache or an in-flight
//     fill: demandfills/op ~ 0, prefetched_frac ~ 1.
//   - BenchmarkWarmEpoch256 is the same epoch read warm — the floor the
//     cold numbers are compared against (the acceptance bar is cold
//     within 1.5x of warm at horizon >= 256).
//
// Metrics: pfsopens/op and pfsbytes/op count PFS traffic through the
// OpenPFS seam (cold epochs copy every byte exactly once, planned or
// not — planning moves the copies off the demand path, it cannot erase
// them); demandfills/op is completed fills that were NOT scheduled by
// the pump (Misses - PlanPrefetches); prefetched_frac is the fraction
// of the dataset the pump scheduled; hitrate is server Hits/Opens.
// Fixed -benchtime iteration counts (scripts/bench.sh) make the numbers
// comparable across runs; BENCH_PR9.json holds the committed baseline.

const (
	pr9Files    = 256
	pr9FileSize = 64 << 10
	pr9Workers  = 4 // loader worker goroutines, the hvacc default
)

// pr9ReadEpoch reads every path once through worker goroutines, in
// order — the shape of a training loader's input pipeline. Workers pull
// from an ordered channel, so reads stay near plan order (skew bounded
// by the worker count) and the frontier advances as the pump expects.
func pr9ReadEpoch(b *testing.B, cli *Client, paths []string) {
	next := make(chan string, pr9Workers)
	errs := make(chan error, pr9Workers)
	for w := 0; w < pr9Workers; w++ {
		go func() {
			var err error
			for p := range next {
				if err == nil {
					_, err = cli.ReadAll(p)
				}
			}
			errs <- err
		}()
	}
	for _, p := range paths {
		next <- p
	}
	close(next)
	for w := 0; w < pr9Workers; w++ {
		if err := <-errs; err != nil {
			b.Fatal(err)
		}
	}
}

func clairvoyantColdEpoch(b *testing.B, horizon int) {
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, pr9Files, pr9FileSize)
	var pfsOpens, pfsBytes atomic.Int64
	var hits, opens, misses, planned int64

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		srv, err := StartServer(ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(b.TempDir(), fmt.Sprintf("nvme%d", i)),
			Policy:     cachestore.NewClairvoyant(),
			OpenPFS: func(path string) (*os.File, error) {
				f, err := os.Open(path) //hvac:pfs-fallback benchmark seam: counting the server's own PFS passes
				if err == nil {
					pfsOpens.Add(1)
					if fi, serr := f.Stat(); serr == nil {
						pfsBytes.Add(fi.Size())
					}
				}
				return f, err
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cli, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if horizon > 0 {
			if _, err := cli.InstallPlan(1, paths, horizon); err != nil {
				b.Fatal(err)
			}
		}
		pr9ReadEpoch(b, cli, paths)
		srv.WaitIdle() // the epoch is not over until the fills land

		b.StopTimer()
		st := srv.Stats()
		hits += st.Hits
		opens += st.Opens
		misses += st.Misses
		planned += st.PlanPrefetches
		cli.Close()
		srv.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(pfsOpens.Load())/float64(b.N), "pfsopens/op")
	b.ReportMetric(float64(pfsBytes.Load())/float64(b.N), "pfsbytes/op")
	b.ReportMetric(float64(misses-planned)/float64(b.N), "demandfills/op")
	b.ReportMetric(float64(planned)/float64(int64(b.N)*pr9Files), "prefetched_frac")
	b.ReportMetric(float64(hits)/float64(opens), "hitrate")
}

func BenchmarkClairvoyantColdEpoch256(b *testing.B) {
	for _, horizon := range []int{0, 64, 256, 1024} {
		b.Run(fmt.Sprintf("horizon%d", horizon), func(b *testing.B) {
			clairvoyantColdEpoch(b, horizon)
		})
	}
}

// BenchmarkWarmEpoch256 reads the same 256 x 64 KiB epoch fully warm:
// the floor cold-with-plan is measured against.
func BenchmarkWarmEpoch256(b *testing.B) {
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, pr9Files, pr9FileSize)
	srv, err := StartServer(ServerConfig{
		ListenAddr: "127.0.0.1:0",
		PFSDir:     pfsDir,
		CacheDir:   filepath.Join(b.TempDir(), "nvme"),
		Policy:     cachestore.NewClairvoyant(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	cli, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cli.Close)
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			b.Fatal(err)
		}
	}
	srv.WaitIdle()
	warm := srv.Stats() // exclude the warmup epoch from the hit rate

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr9ReadEpoch(b, cli, paths)
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.Hits-warm.Hits)/float64(st.Opens-warm.Opens), "hitrate")
}
