package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hvac/internal/cachestore"
	"hvac/internal/place"
	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// writePFS populates a fake PFS directory with deterministic content.
func writePFS(t *testing.T, dir string, files int, size int) []string {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	paths := make([]string, files)
	for i := range paths {
		p := filepath.Join(dir, fmt.Sprintf("f%04d.bin", i))
		content := bytes.Repeat([]byte{byte(i)}, size)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

// startCluster launches n real HVAC servers over pfsDir and a client.
func startCluster(t *testing.T, pfsDir string, n int, cfgMut func(*ServerConfig), cliMut func(*ClientConfig)) ([]*Server, *Client) {
	t.Helper()
	testutil.CheckLeaks(t)
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		cfg := ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(t.TempDir(), fmt.Sprintf("nvme%d", i)),
		}
		if cfgMut != nil {
			cfgMut(&cfg)
		}
		s, err := StartServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers[i] = s
		addrs[i] = s.Addr()
	}
	ccfg := ClientConfig{Servers: addrs, DatasetDir: pfsDir}
	if cliMut != nil {
		cliMut(&ccfg)
	}
	c, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return servers, c
}

func TestRealReadThroughCache(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 10, 1024)
	servers, cli := startCluster(t, pfsDir, 3, nil, nil)

	for i, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 1024)
		if !bytes.Equal(got, want) {
			t.Fatalf("file %d content mismatch (%d bytes)", i, len(got))
		}
	}
	// Every file cached exactly once across the cluster (wait out the
	// background data-mover copies first).
	total := 0
	for _, s := range servers {
		s.WaitIdle()
		total += s.CachedFiles()
	}
	if total != 10 {
		t.Fatalf("cluster caches %d files, want 10", total)
	}
	st := cli.Stats()
	if st.Redirected != 10 || st.Fallbacks != 0 || st.Passthrough != 0 {
		t.Fatalf("client stats = %+v", st)
	}
}

func TestRealSecondReadIsCacheHit(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 4, 256)
	servers, cli := startCluster(t, pfsDir, 2, nil, nil)

	for _, p := range paths {
		cli.ReadAll(p)
	}
	for _, s := range servers {
		s.WaitIdle() // let the background data-movers finish the copies
	}
	var miss1 int64
	for _, s := range servers {
		st := s.Stats()
		miss1 += st.Misses
	}
	for _, p := range paths { // epoch 2
		cli.ReadAll(p)
	}
	var miss2, hits int64
	for _, s := range servers {
		st := s.Stats()
		miss2 += st.Misses
		hits += st.Hits
	}
	if miss1 != 4 {
		t.Fatalf("first epoch misses = %d, want 4", miss1)
	}
	if miss2 != miss1 {
		t.Fatalf("second epoch added misses: %d -> %d", miss1, miss2)
	}
	if hits != 4 {
		t.Fatalf("hits = %d, want 4 (every epoch-2 open served from cache)", hits)
	}
}

func TestRealPlacementIsStable(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 20, 64)
	_, cli := startCluster(t, pfsDir, 4, nil, nil)
	for _, p := range paths {
		if cli.Home(p) != cli.Home(p) {
			t.Fatal("unstable home")
		}
	}
	// Reading twice must not duplicate files across servers.
	for _, p := range paths {
		cli.ReadAll(p)
		cli.ReadAll(p)
	}
}

func TestRealPassthroughOutsideDataset(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	writePFS(t, pfsDir, 1, 64)
	otherDir := t.TempDir()
	other := filepath.Join(otherDir, "outside.txt")
	os.WriteFile(other, []byte("not cached"), 0o644)
	servers, cli := startCluster(t, pfsDir, 2, nil, nil)

	got, err := cli.ReadAll(other)
	if err != nil || string(got) != "not cached" {
		t.Fatalf("passthrough read = %q, %v", got, err)
	}
	st := cli.Stats()
	if st.Passthrough != 1 || st.Redirected != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for _, s := range servers {
		if s.CachedFiles() != 0 {
			t.Fatal("passthrough file was cached")
		}
	}
}

func TestRealServerRefusesOutsideDataset(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	writePFS(t, pfsDir, 1, 64)
	secret := filepath.Join(t.TempDir(), "secret.txt")
	os.WriteFile(secret, []byte("secret"), 0o600)
	_, cli := startCluster(t, pfsDir, 1, nil, func(c *ClientConfig) {
		c.DatasetDir = filepath.Dir(secret) // client would redirect it
		c.DisableFallback = true
	})
	if _, err := cli.Open(secret); err == nil || !strings.Contains(err.Error(), "outside served dataset dir") {
		t.Fatalf("server accepted path outside its dataset dir: %v", err)
	}
}

func TestRealFallbackOnServerFailure(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 24, 128)
	servers, cli := startCluster(t, pfsDir, 2, nil, nil)

	servers[0].Close() // crash one server
	for i, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatalf("read %d after crash: %v", i, err)
		}
		if len(got) != 128 {
			t.Fatalf("read %d: %d bytes", i, len(got))
		}
	}
	st := cli.Stats()
	if st.Fallbacks == 0 {
		t.Fatal("no fallbacks recorded despite a dead server")
	}
	if st.Fallbacks+st.Redirected != 24 {
		t.Fatalf("fallbacks(%d)+redirected(%d) != 24", st.Fallbacks, st.Redirected)
	}
}

func TestRealReplicaFailover(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 30, 128)
	servers, cli := startCluster(t, pfsDir, 3, nil, func(c *ClientConfig) {
		c.Replicas = 2
		c.DisableFallback = true // failover must come from replicas alone
	})
	servers[1].Close()
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatalf("read with replica failover: %v", err)
		}
	}
	st := cli.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded; some files must home on the dead server")
	}
	if st.Fallbacks != 0 {
		t.Fatal("fallback used despite DisableFallback")
	}
}

func TestRealEvictionUnderPressure(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 10, 1000)
	servers, cli := startCluster(t, pfsDir, 1, func(c *ServerConfig) {
		c.CacheCapacity = 3500 // fits 3 of 10 files
		c.Policy = cachestore.NewLRU()
	}, nil)

	for range [3]int{} { // three epochs under pressure
		for _, p := range paths {
			got, err := cli.ReadAll(p)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 1000 {
				t.Fatalf("short read: %d", len(got))
			}
		}
	}
	st := servers[0].Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions despite cache pressure")
	}
	if servers[0].CachedBytes() > 3500 {
		t.Fatalf("cache over capacity: %d", servers[0].CachedBytes())
	}
}

func TestRealConcurrentLoaders(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 30, 2048)
	_, cli := startCluster(t, pfsDir, 3, func(c *ServerConfig) { c.Movers = 2 }, nil)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for e := 0; e < 3; e++ {
				for i := range paths {
					p := paths[(i+w)%len(paths)]
					got, err := cli.ReadAll(p)
					if err != nil {
						t.Error(err)
						return
					}
					if len(got) != 2048 {
						t.Errorf("short read %d", len(got))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	st := cli.Stats()
	if st.Redirected != 8*3*30 {
		t.Fatalf("redirected = %d, want %d", st.Redirected, 8*3*30)
	}
}

// Single-copy semantics: many clients hitting the same cold file cause
// exactly one PFS fetch (the §III-D mutex-on-shared-queue guarantee).
func TestRealSingleCopyUnderConcurrency(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 1, 1<<16)
	servers, cli := startCluster(t, pfsDir, 1, nil, nil)

	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cli.ReadAll(paths[0]); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := servers[0].Stats()
	if st.Misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (single copy)", st.Misses)
	}
	if st.BytesFetched != 1<<16 {
		t.Fatalf("fetched %d bytes, want one file", st.BytesFetched)
	}
}

func TestRealRangedReads(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	p := filepath.Join(pfsDir, "big.bin")
	os.MkdirAll(pfsDir, 0o755)
	content := make([]byte, 100_000)
	for i := range content {
		content[i] = byte(i * 7)
	}
	os.WriteFile(p, content, 0o644)
	_, cli := startCluster(t, pfsDir, 2, nil, nil)

	f, err := cli.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != 100_000 {
		t.Fatalf("size = %d", f.Size())
	}
	buf := make([]byte, 1000)
	if _, err := f.ReadAt(buf, 50_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, content[50_000:51_000]) {
		t.Fatal("ranged read mismatch")
	}
	// Sequential Read advances the offset.
	head := make([]byte, 10)
	f2, _ := cli.Open(p)
	defer f2.Close()
	f2.Read(head)
	next := make([]byte, 10)
	f2.Read(next)
	if !bytes.Equal(head, content[:10]) || !bytes.Equal(next, content[10:20]) {
		t.Fatal("sequential reads misordered")
	}
}

func TestRealOpenMissingFile(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	writePFS(t, pfsDir, 1, 10)
	_, cli := startCluster(t, pfsDir, 1, nil, nil)
	if _, err := cli.Open(filepath.Join(pfsDir, "absent.bin")); err == nil {
		t.Fatal("open of missing file succeeded")
	}
}

func TestRealCloseIdempotentAndPurge(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 2, 64)
	servers, cli := startCluster(t, pfsDir, 1, nil, nil)
	f, err := cli.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
	cacheDir := servers[0].store.Dir()
	servers[0].Close()
	if _, err := os.Stat(cacheDir); !os.IsNotExist(err) {
		t.Fatalf("cache dir survives server close: %v", err)
	}
}

// A server dying between open and read must not fail the application:
// the handle degrades to a direct PFS handle mid-file.
func TestRealMidReadFailover(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 1, 50_000)
	servers, cli := startCluster(t, pfsDir, 1, nil, nil)

	f, err := cli.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	head := make([]byte, 1000)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	servers[0].Close() // crash while the handle is open
	rest := make([]byte, 49_000)
	n, err := f.ReadAt(rest, 1000)
	if err != nil && err != io.EOF {
		t.Fatalf("mid-read failover: %v", err)
	}
	if n != 49_000 {
		t.Fatalf("read %d bytes after failover, want 49000", n)
	}
	for i, b := range rest {
		if b != 0 { // writePFS fills file 0 with byte 0
			t.Fatalf("corrupt byte at %d: %d", i, b)
		}
	}
	if st := cli.Stats(); st.Degrades != 1 || st.Fallbacks != 0 {
		t.Fatalf("degrades = %d fallbacks = %d, want a single mid-read degrade", st.Degrades, st.Fallbacks)
	}
}

func TestRealLatencyHistograms(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 5, 4096)
	servers, cli := startCluster(t, pfsDir, 1, nil, nil)
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	servers[0].WaitIdle()
	srv := servers[0]
	if srv.OpenLatency().Count() != 5 {
		t.Fatalf("open observations = %d", srv.OpenLatency().Count())
	}
	if srv.ReadLatency().Count() != 5 {
		t.Fatalf("read observations = %d", srv.ReadLatency().Count())
	}
	if srv.CopyLatency().Count() != 5 {
		t.Fatalf("copy observations = %d", srv.CopyLatency().Count())
	}
	sum := srv.LatencySummary()
	if !strings.Contains(sum, "open:") || !strings.Contains(sum, "copy:") {
		t.Fatalf("summary missing sections: %q", sum)
	}
}

func TestRealPrefetch(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 12, 512)
	servers, cli := startCluster(t, pfsDir, 2, nil, nil)

	if accepted := cli.Prefetch(paths); accepted != 12 {
		t.Fatalf("accepted = %d, want 12", accepted)
	}
	for _, s := range servers {
		s.WaitIdle()
	}
	cached := 0
	var misses int64
	for _, s := range servers {
		cached += s.CachedFiles()
		misses += s.Stats().Misses
	}
	if cached != 12 || misses != 12 {
		t.Fatalf("cached/misses = %d/%d, want 12/12", cached, misses)
	}
	// All subsequent opens are hits.
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	var hits int64
	for _, s := range servers {
		hits += s.Stats().Hits
	}
	if hits != 12 {
		t.Fatalf("hits = %d, want 12 (prefetch made epoch 1 warm)", hits)
	}
	// Prefetch outside the dataset dir is refused client-side.
	if accepted := cli.Prefetch([]string{"/etc/hosts"}); accepted != 0 {
		t.Fatalf("prefetch outside dataset accepted: %d", accepted)
	}
}

func TestRealSegmentedReads(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	os.MkdirAll(pfsDir, 0o755)
	// One 100 KB file with distinctive content, 16 KB segments.
	content := make([]byte, 100_000)
	for i := range content {
		content[i] = byte(i * 13)
	}
	big := filepath.Join(pfsDir, "big.bin")
	os.WriteFile(big, content, 0o644)

	const segSize = 16 << 10
	servers, cli := startCluster(t, pfsDir, 3,
		func(c *ServerConfig) { c.SegmentSize = segSize },
		func(c *ClientConfig) { c.SegmentSize = segSize })

	got, err := cli.ReadAll(big)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("segmented read corrupted content (%d bytes)", len(got))
	}
	for _, s := range servers {
		s.WaitIdle()
	}
	// Segments spread across multiple servers: 7 segments over 3 servers.
	totalSegs, serversWithSegs := 0, 0
	for _, s := range servers {
		if n := s.CachedFiles(); n > 0 {
			serversWithSegs++
			totalSegs += n
		}
	}
	if totalSegs != 7 {
		t.Fatalf("cached segments = %d, want 7 (100KB / 16KB)", totalSegs)
	}
	if serversWithSegs < 2 {
		t.Fatalf("segments all landed on one server; striping broken")
	}
	// Second read: all hits, byte-identical.
	got2, err := cli.ReadAll(big)
	if err != nil || !bytes.Equal(got2, content) {
		t.Fatalf("warm segmented read: %v", err)
	}
	var hits int64
	for _, s := range servers {
		hits += s.Stats().Hits
	}
	if hits != 7 {
		t.Fatalf("warm segment hits = %d, want 7", hits)
	}
	// Ranged read crossing segment boundaries.
	f, err := cli.Open(big)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	window := make([]byte, 40_000)
	if _, err := f.ReadAt(window, 30_000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(window, content[30_000:70_000]) {
		t.Fatal("cross-segment ranged read mismatch")
	}
}

func TestRealSegmentedFallbackOnFailure(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	os.MkdirAll(pfsDir, 0o755)
	content := bytes.Repeat([]byte{7}, 50_000)
	p := filepath.Join(pfsDir, "f.bin")
	os.WriteFile(p, content, 0o644)
	const segSize = 8 << 10
	servers, cli := startCluster(t, pfsDir, 2,
		func(c *ServerConfig) { c.SegmentSize = segSize },
		func(c *ClientConfig) { c.SegmentSize = segSize })
	servers[1].Close()
	got, err := cli.ReadAll(p)
	if err != nil {
		t.Fatalf("segmented read with dead server: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("content mismatch after fallback")
	}
}

// Protocol-level edge cases against a live server.
func TestRealServerProtocolEdges(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 1, 4096)
	servers, _ := startCluster(t, pfsDir, 1, func(c *ServerConfig) { c.SegmentSize = 1024 }, nil)
	conn := transport.Dial(servers[0].Addr())
	defer conn.Close()

	// Unknown op.
	resp, err := conn.Call(&transport.Request{Op: transport.Op(99)})
	if err != nil || resp.OK() {
		t.Fatalf("unknown op accepted: %v %v", resp, err)
	}
	// Bad handle read/close.
	resp, _ = conn.Call(&transport.Request{Op: transport.OpRead, Handle: 12345, Len: 10})
	if resp.OK() {
		t.Fatal("read on bad handle accepted")
	}
	resp, _ = conn.Call(&transport.Request{Op: transport.OpClose, Handle: 12345})
	if resp.OK() {
		t.Fatal("close on bad handle accepted")
	}
	// Oversized read length.
	open, _ := conn.Call(&transport.Request{Op: transport.OpOpen, Path: paths[0]})
	if !open.OK() {
		t.Fatalf("open failed: %s", open.Err)
	}
	resp, _ = conn.Call(&transport.Request{Op: transport.OpRead, Handle: open.Handle, Len: transport.MaxFrame})
	if resp.OK() {
		t.Fatal("oversized read accepted")
	}
	// Negative length.
	resp, _ = conn.Call(&transport.Request{Op: transport.OpRead, Handle: open.Handle, Len: -1})
	if resp.OK() {
		t.Fatal("negative read accepted")
	}
	// Segment read crossing a boundary is refused.
	resp, _ = conn.Call(&transport.Request{Op: transport.OpReadAt, Path: paths[0], Off: 1000, Len: 100})
	if resp.OK() {
		t.Fatal("cross-boundary segment read accepted")
	}
	if !strings.Contains(resp.Err, "segment boundary") {
		t.Fatalf("err = %q", resp.Err)
	}
	// Stat on a missing file.
	resp, _ = conn.Call(&transport.Request{Op: transport.OpStat, Path: filepath.Join(pfsDir, "gone")})
	if resp.OK() {
		t.Fatal("stat of missing file accepted")
	}
	// Stat on an existing file reports its size.
	resp, _ = conn.Call(&transport.Request{Op: transport.OpStat, Path: paths[0]})
	if !resp.OK() || resp.Size != 4096 {
		t.Fatalf("stat = %+v", resp)
	}
}

// OpReadAt against a server without segment caching enabled is refused.
func TestRealSegmentReadRequiresConfig(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 1, 4096)
	servers, _ := startCluster(t, pfsDir, 1, nil, nil)
	conn := transport.Dial(servers[0].Addr())
	defer conn.Close()
	resp, err := conn.Call(&transport.Request{Op: transport.OpReadAt, Path: paths[0], Off: 0, Len: 100})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK() {
		t.Fatal("segment read accepted without SegmentSize")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{DatasetDir: "/x"}); err == nil {
		t.Fatal("empty server list accepted")
	}
	if _, err := NewClient(ClientConfig{Servers: []string{"a:1"}}); err == nil {
		t.Fatal("empty dataset dir accepted")
	}
	c, err := NewClient(ClientConfig{Servers: []string{"a:1"}, DatasetDir: "/x", Placement: place.Rendezvous{}})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
}
