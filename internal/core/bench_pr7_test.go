package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"hvac/internal/faultnet"
	"hvac/internal/transport"
)

// The ISSUE 7 failover benchmark: one warm epoch re-read while a Kill
// schedule takes the busiest of 3 servers down partway through. The two
// variants bracket the §III-H failover design:
//
//   - BenchmarkFailoverEpochR2: replicas warmed by the fill-time hints
//     absorb the kill — pfsopens/op must be 0 (the epoch never returns
//     to the PFS) and failovers/op counts the migrated opens.
//   - BenchmarkFailoverEpochR1: the degradation control — the same kill
//     with no replica sends the victim's remaining files back to the
//     PFS, so pfsopens/op is the visible cost of running un-replicated.
//
// pfsopens/op sums every PFS pass the measured epoch costs, wherever it
// happens: server read-throughs (counted through the OpenPFS seam) plus
// client fallbacks and mid-read degrades (each opens the PFS once on
// the client). Fixed -benchtime iteration counts (scripts/bench.sh)
// make the numbers comparable; BENCH_PR7.json holds the baseline.

func benchFailoverEpoch(b *testing.B, replicas int) {
	const (
		nServers = 3
		files    = 48
		fileSize = 8 << 10
	)
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, files, fileSize)
	victim, homed := victimHome(paths, nServers)
	if homed < 2 {
		b.Fatalf("victim srv%d homes only %d files", victim, homed)
	}
	// One OpRead per file per epoch: the warm epoch spends `homed` reads
	// at the victim, so the kill lands mid-way through the measured one.
	sched := faultnet.Schedule{Seed: 30, Rules: []faultnet.Rule{
		{Server: fmt.Sprintf("srv%d", victim), Op: transport.OpRead,
			Offset: int64(homed + homed/2), Fault: faultnet.Kill},
	}}
	copts := transport.ClientOptions{
		CallTimeout: chaosCallTimeout,
		Retry:       chaosRetryPolicy(sched.Seed),
	}

	var seamOpens atomic.Int64
	var pfsOpens, failovers int64

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		inj := faultnet.New(sched)
		servers := make([]*Server, nServers)
		addrs := make([]string, nServers)
		for si := range servers {
			srv, err := StartServer(ServerConfig{
				ListenAddr: "127.0.0.1:0",
				PFSDir:     pfsDir,
				CacheDir:   filepath.Join(b.TempDir(), fmt.Sprintf("nvme%d", si)),
				Replicas:   replicas,
				Placement:  basenamePlacement{},
				OpenPFS: func(path string) (*os.File, error) {
					f, err := os.Open(path) //hvac:pfs-fallback benchmark seam: counting the server's own PFS passes
					if err == nil {
						seamOpens.Add(1)
					}
					return f, err
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			servers[si] = srv
			addrs[si] = srv.Addr()
		}
		if replicas > 1 {
			for si, s := range servers {
				s.SetPeers(addrs, si)
			}
		}
		cli, err := NewClient(ClientConfig{
			Servers:    addrs,
			DatasetDir: pfsDir,
			Replicas:   replicas,
			Placement:  basenamePlacement{},
			DialTransport: func(addr string) transport.Transport {
				name := addr
				for ai, a := range addrs {
					if a == addr {
						name = fmt.Sprintf("srv%d", ai)
					}
				}
				return inj.Wrap(name, transport.DialWith(addr, copts))
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		// Warm epoch: fill the primaries, let the hints warm the
		// secondaries, and drain every fill before the clock starts.
		for _, p := range paths {
			if _, err := cli.ReadAll(p); err != nil {
				b.Fatal(err)
			}
		}
		for pass := 0; pass < 2; pass++ {
			for _, s := range servers {
				s.WaitIdle()
			}
		}
		stWarm := cli.Stats()
		seamWarm := seamOpens.Load()
		b.StartTimer()

		for _, p := range paths { // the measured epoch; the kill fires inside it
			if _, err := cli.ReadAll(p); err != nil {
				b.Fatalf("epoch read across kill: %v", err)
			}
		}

		b.StopTimer()
		st := cli.Stats()
		pfsOpens += (seamOpens.Load() - seamWarm) +
			(st.Fallbacks - stWarm.Fallbacks) + (st.Degrades - stWarm.Degrades)
		failovers += st.Failovers - stWarm.Failovers
		cli.Close()
		for _, s := range servers {
			s.Close()
		}
		inj.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(pfsOpens)/float64(b.N), "pfsopens/op")
	b.ReportMetric(float64(failovers)/float64(b.N), "failovers/op")
}

func BenchmarkFailoverEpochR2(b *testing.B) { benchFailoverEpoch(b, 2) }
func BenchmarkFailoverEpochR1(b *testing.B) { benchFailoverEpoch(b, 1) }
