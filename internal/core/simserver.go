package core

import (
	"fmt"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/device"
	"hvac/internal/pfs"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/simnet"
)

// SimCosts are the software overheads of the HVAC implementation in the
// simulated mode, calibrated so that the measured gap to XFS-on-NVMe
// reproduces the paper's ~25%/14%/9% ladder for 1/2/4 instances (Fig. 9b):
// the gap is queueing at the single data-mover thread plus fixed RPC cost.
type SimCosts struct {
	// OpenHandling is data-mover occupancy per forwarded open.
	OpenHandling time.Duration
	// ReadHandling is data-mover occupancy to initiate a cached read
	// (the NVMe transfer itself proceeds without holding the mover; the
	// bulk transfer is RDMA and also asynchronous).
	ReadHandling time.Duration
	// CloseHandling is data-mover occupancy per teardown RPC (§III-D ⑧).
	CloseHandling time.Duration
	// CopyOverhead is extra data-mover occupancy per first-read copy —
	// the fs::copy bookkeeping and cache-allocation cost the paper cites
	// among HVAC's implementation overheads (§IV-B).
	CopyOverhead time.Duration
	// ClientOverhead is client-side interposition CPU per call.
	ClientOverhead time.Duration
	// RPCBytes is the size of a small RPC message.
	RPCBytes int64
}

// DefaultSimCosts returns the calibrated costs.
func DefaultSimCosts() SimCosts {
	return SimCosts{
		OpenHandling:   22 * time.Microsecond,
		ReadHandling:   16 * time.Microsecond,
		CloseHandling:  7 * time.Microsecond,
		CopyOverhead:   600 * time.Microsecond,
		ClientOverhead: 4 * time.Microsecond,
		RPCBytes:       160,
	}
}

// SimServerStats counts simulated server activity.
type SimServerStats struct {
	Opens, Reads, Closes int64
	Hits, Misses         int64
	BatchEntries         int64 // files served through scatter-gather batch reads
	ReplicaWarms         int64 // copies pulled in because a peer's demand fill warmed us
	PlanInstalled        int64 // plan entries accepted (mirror of the real server's OpPlan)
	PlanPrefetches       int64 // background copies the plan pump scheduled
	BytesServed          int64
	BytesFetched         int64
	Evictions            int64
}

// SimServer is one HVAC server instance in the simulated cluster. Multiple
// instances on a node (the paper's i×1 variants) share the node's NVMe
// device but each has its own data-mover thread and cache partition.
type SimServer struct {
	eng    *sim.Engine
	node   simnet.NodeID
	fabric *simnet.Fabric
	gpfs   *pfs.GPFS
	gpfsC  *pfs.Client
	dev    *device.Device
	mover  *sim.Resource
	index  *cachestore.Index
	costs  SimCosts

	// Replica-warming wiring (SetCluster); nil/0 disables warming.
	cluster      []*SimServer
	self         int
	view         *place.View
	replicaCount int

	inflight map[string]bool
	failed   bool
	stats    SimServerStats

	// Clairvoyant plan state — the deterministic single-threaded mirror of
	// the real server's planner: same key list, same frontier/horizon pump
	// semantics, minus the locks and queue backpressure (sim copies always
	// spawn, bounded by the horizon).
	planKeys     []string
	planPos      map[string]int
	planNext     int
	planFrontier int
	planHorizon  int
}

// NewSimServer builds a server instance. capacity is this instance's share
// of the node's NVMe; policy nil means the paper's random eviction.
func NewSimServer(eng *sim.Engine, node simnet.NodeID, fabric *simnet.Fabric,
	g *pfs.GPFS, dev *device.Device, capacity int64, policy cachestore.Policy,
	costs SimCosts) *SimServer {
	return &SimServer{
		eng:      eng,
		node:     node,
		fabric:   fabric,
		gpfs:     g,
		gpfsC:    g.Client(fabric, node),
		dev:      dev,
		mover:    sim.NewResource(eng, fmt.Sprintf("hvacd@%d", node), 1),
		index:    cachestore.NewIndex(capacity, policy),
		costs:    costs,
		inflight: make(map[string]bool),
	}
}

// SetCluster wires this instance into the replicated cluster so its
// demand fills warm the key's other homes — the sim mirror of
// ServerConfig.Peers in real mode. Call once after constructing every
// instance; replicas < 2 disables warming.
func (s *SimServer) SetCluster(servers []*SimServer, self int, policy place.Policy, replicas int) {
	if policy == nil {
		policy = place.ModHash{}
	}
	s.cluster = servers
	s.self = self
	s.view = place.NewView(policy, len(servers))
	s.replicaCount = replicas
}

// View returns the membership view set by SetCluster (nil before).
func (s *SimServer) View() *place.View { return s.view }

// Node returns the compute node hosting this instance.
func (s *SimServer) Node() simnet.NodeID { return s.node }

// Stats returns a snapshot of the server counters.
func (s *SimServer) Stats() SimServerStats { return s.stats }

// CachedFiles reports the resident file count (the Fig. 15 metric).
func (s *SimServer) CachedFiles() int { return s.index.Len() }

// CachedBytes reports resident bytes.
func (s *SimServer) CachedBytes() int64 { return s.index.Used() }

// Fail marks the server crashed: every subsequent request errors, which
// exercises the client failover / PFS-fallback paths.
func (s *SimServer) Fail() { s.failed = true }

// Recover brings a failed server back (empty-cached).
func (s *SimServer) Recover() { s.failed = false }

// Failed reports crash state.
func (s *SimServer) Failed() bool { return s.failed }

// errServerFailed mimics an RPC timeout against a dead peer.
var errServerFailed = fmt.Errorf("hvac sim server: unreachable")

// open services a forwarded open. A cache hit returns the resident size.
// A miss returns the file's size from the PFS metadata path and marks the
// handle for read-through: the client's first read streams from the PFS
// while the data-mover persists the copy to node-local storage
// asynchronously (tee-on-first-read), so epoch 1 proceeds at PFS speed for
// every variant — the Fig. 11 observation — instead of serialising behind
// a single mover thread.
func (s *SimServer) open(p *sim.Proc, path string) (size int64, cached bool, err error) {
	if s.failed {
		return 0, false, errServerFailed
	}
	release := s.mover.Acquire(p)
	p.Sleep(s.costs.OpenHandling)
	s.stats.Opens++
	if s.index.Peek(path) {
		size, _ = s.index.Size(path)
		s.index.Contains(path) // recency + hit accounting
		s.stats.Hits++
		release()
		s.planObserve(path)
		return size, true, nil
	}
	release()
	// Read-through: the PFS metadata transaction happens now, exactly as
	// a direct GPFS open would.
	size, err = s.gpfs.OpenMeta(p, path)
	if err != nil {
		return 0, false, err
	}
	s.planObserve(path)
	return size, false, nil
}

// read services a forwarded read of n bytes to clientNode: brief mover
// occupancy to initiate, then a device (cache hit) or PFS (read-through)
// transfer and the bulk send, concurrent with other requests. On the
// first read-through of a file the server tees the bytes into an
// asynchronous data-mover copy (§III-D ⑤-⑥: the mover tracks and copies;
// the shared-queue mutex guarantees a file is copied only once).
func (s *SimServer) read(p *sim.Proc, path string, off, n, fileSize int64, cached bool, clientNode simnet.NodeID) error {
	if s.failed {
		return errServerFailed
	}
	s.mover.Use(p, s.costs.ReadHandling)
	if cached && s.index.Peek(path) {
		s.index.Contains(path)
		s.dev.Read(p, n)
	} else {
		s.gpfs.ReadBytes(p, n)
		if !cached && off == 0 && !s.inflight[path] && !s.index.Peek(path) {
			s.inflight[path] = true
			s.scheduleCopy(path, fileSize, false)
		}
	}
	if s.fabric != nil {
		s.fabric.Send(p, s.node, clientNode, n)
	}
	s.stats.Reads++
	s.stats.BytesServed += n
	return nil
}

// scheduleCopy enqueues a background data-mover copy. For a teed
// read-through (fromPFS = false) the bytes are already in flight and only
// the NVMe write is charged; for a prefetch (fromPFS = true) the mover
// performs the whole PFS transaction itself.
func (s *SimServer) scheduleCopy(path string, size int64, fromPFS bool) {
	s.eng.Spawn("hvac-copy", func(p *sim.Proc) {
		release := s.mover.Acquire(p)
		defer release()
		defer delete(s.inflight, path)
		if s.failed {
			return
		}
		p.Sleep(s.costs.CopyOverhead)
		if fromPFS {
			got, err := s.gpfs.OpenMeta(p, path)
			if err != nil {
				return
			}
			size = got
			s.gpfs.ReadBytes(p, size)
			if s.fabric != nil {
				s.fabric.Send(p, s.node, s.node, size)
			}
			s.gpfs.CloseMeta(p)
		}
		s.dev.Write(p, size)
		evicted, err := s.index.Insert(path, size)
		if err != nil {
			return // cache cannot admit it (e.g. all pinned); stay uncached
		}
		s.stats.Evictions += int64(len(evicted))
		s.stats.Misses++
		s.stats.BytesFetched += size
		if !fromPFS {
			// A demand fill warms the key's other homes so a failover
			// target already holds the bytes (mirror of warmReplicas in
			// real mode). Prefetch fills never cascade.
			s.warmPeers(path, size)
		}
	})
}

// warmPeers schedules replica-warming copies of key on its other homes.
func (s *SimServer) warmPeers(key string, size int64) {
	if s.view == nil || s.replicaCount < 2 {
		return
	}
	for _, si := range s.view.Replicas(key, s.replicaCount) {
		if si == s.self {
			continue
		}
		s.cluster[si].warm(key, size)
	}
}

// warm schedules a warming copy: this instance pulls size bytes of key
// from the PFS into its own cache. No metadata transaction — the sender
// already resolved the size when it served the demand read.
func (s *SimServer) warm(key string, size int64) {
	if s.failed || s.index.Peek(key) || s.inflight[key] {
		return
	}
	s.inflight[key] = true
	s.eng.Spawn("hvac-warm", func(p *sim.Proc) {
		release := s.mover.Acquire(p)
		defer release()
		defer delete(s.inflight, key)
		if s.failed {
			return
		}
		p.Sleep(s.costs.CopyOverhead)
		s.gpfs.ReadBytes(p, size)
		if s.fabric != nil {
			s.fabric.Send(p, s.node, s.node, size)
		}
		s.dev.Write(p, size)
		evicted, err := s.index.Insert(key, size)
		if err != nil {
			return
		}
		s.stats.Evictions += int64(len(evicted))
		s.stats.ReplicaWarms++
		s.stats.BytesFetched += size
	})
}

// readBatch services a scatter-gather batch read: every path's full
// content in one RPC round trip (the request/response fabric cost is the
// caller's, charged once per batch — that is the point of the op). The
// per-entry mover handling, cache/PFS transfers and background copies
// are identical to the per-file path, so batching changes RPC count, not
// cache behaviour. Returns the total payload bytes for the bulk send.
func (s *SimServer) readBatch(p *sim.Proc, paths []string, clientNode simnet.NodeID) (int64, error) {
	if s.failed {
		return 0, errServerFailed
	}
	var total int64
	for _, path := range paths {
		s.mover.Use(p, s.costs.ReadHandling)
		var size int64
		if s.index.Peek(path) {
			size, _ = s.index.Size(path)
			s.index.Contains(path)
			s.stats.Hits++
			s.dev.Read(p, size)
		} else {
			got, err := s.gpfs.OpenMeta(p, path)
			if err != nil {
				return total, err
			}
			size = got
			s.gpfs.ReadBytes(p, size)
			s.gpfs.CloseMeta(p)
			if !s.inflight[path] {
				s.inflight[path] = true
				s.scheduleCopy(path, size, false)
			}
		}
		s.stats.BatchEntries++
		s.stats.BytesServed += size
		total += size
		s.planObserve(path)
	}
	if s.fabric != nil && total > 0 {
		s.fabric.Send(p, s.node, clientNode, total)
	}
	return total, nil
}

// prefetchBatch accepts one batched pre-population hint: the per-path
// scheduling of prefetch without the per-path RPC.
func (s *SimServer) prefetchBatch(p *sim.Proc, paths []string) error {
	if s.failed {
		return errServerFailed
	}
	for _, path := range paths {
		s.mover.Use(p, s.costs.OpenHandling)
		if s.index.Peek(path) || s.inflight[path] {
			continue
		}
		s.inflight[path] = true
		s.scheduleCopy(path, 0, true)
	}
	return nil
}

// prefetch accepts a pre-population request: the data-mover copies the
// file from the PFS in the background (§IV-C future work, implemented).
func (s *SimServer) prefetch(p *sim.Proc, path string) error {
	if s.failed {
		return errServerFailed
	}
	s.mover.Use(p, s.costs.OpenHandling)
	if s.index.Peek(path) || s.inflight[path] {
		return nil
	}
	s.inflight[path] = true
	s.scheduleCopy(path, 0, true)
	return nil
}

// close services the out-of-band teardown RPC (§III-D ⑧); read-through
// handles also release their PFS token.
func (s *SimServer) close(p *sim.Proc, path string, cached bool) error {
	if s.failed {
		return errServerFailed
	}
	s.mover.Use(p, s.costs.CloseHandling)
	if !cached {
		s.gpfs.CloseMeta(p)
	}
	s.stats.Closes++
	return nil
}

// stat services a segmented open's size probe: one metadata transaction
// against the PFS (the namespace is still owned by GPFS; HVAC never keeps
// its own metadata).
func (s *SimServer) stat(p *sim.Proc, path string) (int64, error) {
	if s.failed {
		return 0, errServerFailed
	}
	s.mover.Use(p, s.costs.OpenHandling)
	size, err := s.gpfs.OpenMeta(p, path)
	if err != nil {
		return 0, err
	}
	s.gpfs.CloseMeta(p)
	s.stats.Opens++
	return size, nil
}

// readSegment services a stateless segment read (§III-E segment-level
// caching): the segment key is cached and homed independently of the
// file; misses are read through from the PFS with a teed background copy.
func (s *SimServer) readSegment(p *sim.Proc, key string, n, segBytes int64, clientNode simnet.NodeID) error {
	if s.failed {
		return errServerFailed
	}
	s.mover.Use(p, s.costs.ReadHandling)
	if s.index.Peek(key) {
		s.index.Contains(key)
		s.stats.Hits++
		s.dev.Read(p, n)
	} else {
		s.gpfs.ReadBytes(p, n)
		if !s.inflight[key] {
			s.inflight[key] = true
			s.scheduleCopy(key, segBytes, false)
		}
	}
	if s.fabric != nil {
		s.fabric.Send(p, s.node, clientNode, n)
	}
	s.stats.Reads++
	s.stats.BytesServed += n
	s.planObserve(key)
	return nil
}

// InstallPlan installs this server's epoch access plan: keys in the
// order the epoch will demand them, horizon entries kept ahead of the
// observed read frontier (0 means defaultPlanHorizon). The sim mirror
// of the real server's OpPlan handler: the plan drives the pump below
// and, when the index runs Clairvoyant eviction, Belady scoring too.
func (s *SimServer) InstallPlan(keys []string, horizon int) {
	if horizon <= 0 {
		horizon = defaultPlanHorizon
	}
	s.planKeys = append(s.planKeys[:0], keys...)
	s.planPos = make(map[string]int, len(keys))
	for i, k := range keys {
		s.planPos[k] = i
	}
	s.planNext = 0
	s.planFrontier = -1
	s.planHorizon = horizon
	s.stats.PlanInstalled += int64(len(keys))
	if cl, ok := s.index.Policy().(*cachestore.Clairvoyant); ok {
		cl.SetPlan(keys)
	}
	s.pumpPlan()
}

// planObserve advances the read frontier when a demand read lands on a
// planned key — mirror of the real server's planObserve, without locks
// (the sim engine is single-threaded).
func (s *SimServer) planObserve(key string) {
	p, ok := s.planPos[key]
	if !ok || p <= s.planFrontier {
		return
	}
	s.planFrontier = p
	if cl, ok := s.index.Policy().(*cachestore.Clairvoyant); ok {
		cl.Advance(p + 1)
	}
	s.pumpPlan()
}

// pumpPlan schedules planned background copies up to horizon entries
// ahead of the frontier. Resident and in-flight keys are skipped; there
// is no queue backpressure in the sim, so the horizon alone bounds the
// outstanding copies.
func (s *SimServer) pumpPlan() {
	for s.planNext < len(s.planKeys) && s.planNext <= s.planFrontier+s.planHorizon {
		key := s.planKeys[s.planNext]
		s.planNext++
		if s.index.Peek(key) || s.inflight[key] {
			continue
		}
		s.inflight[key] = true
		s.stats.PlanPrefetches++
		s.scheduleCopy(key, 0, true)
	}
}

// InFlightCopies reports pending background copies (drains to zero).
func (s *SimServer) InFlightCopies() int { return len(s.inflight) }

// MoverUtilization reports the data-mover thread's mean utilization — the
// instance-scaling diagnostic behind Fig. 9b.
func (s *SimServer) MoverUtilization() float64 { return s.mover.Utilization() }
