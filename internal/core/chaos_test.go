package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/faultnet"
	"hvac/internal/place"
	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// The chaos tier: real TCP client/server clusters driven under seeded
// fault schedules (internal/faultnet), asserting the §III-H resilience
// invariants the paper claims but the hand-rolled failure tests barely
// touch:
//
//  1. every successful read is byte-identical to the PFS copy —
//     including reads through the batched OpReadBatch path;
//  2. the accounting identity holds — client side, every open lands in
//     exactly one of Redirected (which includes Failovers) or Fallbacks,
//     and every batch entry in exactly one of BatchReads or
//     BatchFallbacks; server side, every served open/segment-read/batch
//     entry is exactly one of Hit or ReadThrough;
//  3. teardown leaks no goroutines;
//  4. with DisableFallback, the error chain names the failing server.
//
// Each schedule is seeded, so a failing run replays bit-for-bit.

// chaosCase is one cell of the schedule matrix.
type chaosCase struct {
	name     string
	servers  int
	files    int
	size     int
	epochs   int
	replicas int
	segSize  int64
	capacity int64                    // cache capacity per server (0 = unconstrained)
	policy   func() cachestore.Policy // per-server eviction policy (nil = default)
	zeroCopy bool                     // arm the sendfile warm-serve plane (DESIGN.md §13)
	sched    faultnet.Schedule
}

// chaosMatrix is the full fault-schedule matrix `make chaos` runs; the
// check gate runs it too (small files keep it cheap).
func chaosMatrix() []chaosCase {
	return []chaosCase{
		{
			name: "refuse-one-server", servers: 3, files: 18, size: 1024, epochs: 2,
			sched: faultnet.Schedule{Seed: 1, Rules: []faultnet.Rule{
				{Server: "srv0", Fault: faultnet.Refuse},
			}},
		},
		{
			name: "refuse-every-third-open", servers: 2, files: 12, size: 512, epochs: 2,
			sched: faultnet.Schedule{Seed: 2, Rules: []faultnet.Rule{
				{Op: transport.OpOpen, Every: 3, Fault: faultnet.Refuse},
			}},
		},
		{
			name: "disconnect-mid-call", servers: 2, files: 12, size: 2048, epochs: 2,
			sched: faultnet.Schedule{Seed: 3, Rules: []faultnet.Rule{
				{Op: transport.OpRead, Every: 4, Fault: faultnet.Disconnect},
			}},
		},
		{
			name: "truncated-frames", servers: 2, files: 10, size: 4096, epochs: 2,
			sched: faultnet.Schedule{Seed: 4, Rules: []faultnet.Rule{
				{Prob: 0.2, Fault: faultnet.Truncate},
			}},
		},
		{
			name: "corrupted-frames", servers: 2, files: 10, size: 4096, epochs: 2,
			sched: faultnet.Schedule{Seed: 5, Rules: []faultnet.Rule{
				{Prob: 0.2, Fault: faultnet.Corrupt},
			}},
		},
		{
			name: "slow-server", servers: 2, files: 8, size: 512, epochs: 1,
			sched: faultnet.Schedule{Seed: 6, Rules: []faultnet.Rule{
				{Server: "srv1", Every: 2, Fault: faultnet.Delay, Delay: 2 * time.Millisecond},
			}},
		},
		{
			name: "hung-server", servers: 2, files: 6, size: 256, epochs: 1,
			sched: faultnet.Schedule{Seed: 7, HangTimeout: 20 * time.Millisecond, Rules: []faultnet.Rule{
				{Server: "srv0", Op: transport.OpOpen, Every: 2, Fault: faultnet.Hang},
			}},
		},
		{
			name: "replica-failover", servers: 3, files: 18, size: 1024, epochs: 2, replicas: 2,
			sched: faultnet.Schedule{Seed: 8, Rules: []faultnet.Rule{
				{Server: "srv1", Fault: faultnet.Refuse},
			}},
		},
		{
			name: "segmented-under-corruption", servers: 3, files: 4, size: 40_000, epochs: 2, segSize: 8 << 10,
			sched: faultnet.Schedule{Seed: 9, Rules: []faultnet.Rule{
				{Op: transport.OpReadAt, Prob: 0.15, Fault: faultnet.Truncate},
			}},
		},
		{
			// Faults aimed squarely at OpReadBatch: refused calls burn the
			// retry budget and then degrade the whole chunk to per-file
			// reads; truncated response frames exercise the batch decode
			// error path. Either way the batch must come back intact.
			name: "batch-faults", servers: 3, files: 18, size: 1024, epochs: 2,
			sched: faultnet.Schedule{Seed: 14, Rules: []faultnet.Rule{
				{Op: transport.OpReadBatch, Every: 2, Fault: faultnet.Refuse},
				{Op: transport.OpReadBatch, Prob: 0.3, Fault: faultnet.Truncate},
			}},
		},
		{
			// A server crashes for good mid-run: the 3rd open on srv0
			// trips the Kill and every later call to it — any op — fails.
			// With R=2 its files fail over to live replicas; nothing falls
			// back to the PFS and the bytes stay identical.
			name: "kill-one-server", servers: 3, files: 18, size: 1024, epochs: 2, replicas: 2,
			sched: faultnet.Schedule{Seed: 16, Rules: []faultnet.Rule{
				{Server: "srv0", Op: transport.OpOpen, Offset: 2, Fault: faultnet.Kill},
			}},
		},
		{
			// A server turns permanently slow (no Every/Prob: the rule
			// fires on every matching call from Offset on) — the paper's
			// straggler, not a crash. Everything still completes and
			// accounts correctly; the hedging tier is what turns this from
			// "slow" into "hidden".
			name: "permanently-slow", servers: 2, files: 12, size: 512, epochs: 2,
			sched: faultnet.Schedule{Seed: 17, Rules: []faultnet.Rule{
				{Server: "srv1", Offset: 2, Fault: faultnet.Delay, Delay: 2 * time.Millisecond},
			}},
		},
		{
			name: "fault-storm", servers: 3, files: 15, size: 2048, epochs: 3,
			sched: faultnet.Schedule{Seed: 10, HangTimeout: 10 * time.Millisecond, Rules: []faultnet.Rule{
				{Prob: 0.05, Fault: faultnet.Refuse},
				{Prob: 0.05, Fault: faultnet.Disconnect},
				{Prob: 0.05, Fault: faultnet.Truncate},
				{Prob: 0.05, Fault: faultnet.Corrupt},
				{Prob: 0.05, Fault: faultnet.Hang},
				{Prob: 0.05, Fault: faultnet.Delay, Delay: time.Millisecond},
			}},
		},
	}
}

// basenamePlacement hashes only the file's base name, so the file→server
// assignment is identical no matter which temp directory the PFS tree
// lands in. Chaos schedules scope rules by server name; without this, a
// run whose temp path happened to home no files on the faulted server
// would inject nothing.
type basenamePlacement struct{ inner place.ModHash }

func (basenamePlacement) Name() string { return "chaos-basename" }
func (p basenamePlacement) Place(path string, n int) int {
	return p.inner.Place(filepath.Base(path), n)
}
func (p basenamePlacement) Replicas(path string, n, r int) []int {
	return p.inner.Replicas(filepath.Base(path), n, r)
}

// chaosCallTimeout and chaosRetryPolicy are the fast client transport
// settings every chaos cluster (and the failover benchmark) runs with,
// so fault-heavy runs stay quick and deterministic.
const chaosCallTimeout = 2 * time.Second

func chaosRetryPolicy(seed uint64) transport.RetryPolicy {
	return transport.RetryPolicy{
		MaxAttempts: 2,
		BaseDelay:   100 * time.Microsecond,
		MaxDelay:    time.Millisecond,
		Seed:        seed,
	}
}

// startChaosCluster is startCluster plus the faultnet decoration: every
// server link is wrapped by inj under the stable name "srv<i>", with fast
// retry/timeout settings so fault-heavy runs stay quick.
func startChaosCluster(t *testing.T, pfsDir string, tc chaosCase, inj *faultnet.Injector, cliMut func(*ClientConfig)) ([]*Server, *Client) {
	t.Helper()
	return startCluster(t, pfsDir, tc.servers,
		func(c *ServerConfig) {
			c.SegmentSize = tc.segSize
			c.CacheCapacity = tc.capacity
			c.ZeroCopy = tc.zeroCopy
			if tc.policy != nil {
				c.Policy = tc.policy() // fresh instance per server: policies are stateful
			}
			// Agree with the client on placement and replica count so
			// tests that wire the peer set (wirePeers) warm the same
			// homes the client will fail over to. Without SetPeers these
			// fields are inert.
			c.Replicas = tc.replicas
			c.Placement = basenamePlacement{}
		},
		func(c *ClientConfig) {
			c.Replicas = tc.replicas
			c.SegmentSize = tc.segSize
			c.Placement = basenamePlacement{}
			addrs := append([]string(nil), c.Servers...)
			opts := transport.ClientOptions{
				CallTimeout: chaosCallTimeout,
				Retry:       chaosRetryPolicy(tc.sched.Seed),
			}
			c.DialTransport = func(addr string) transport.Transport {
				name := addr
				for i, a := range addrs {
					if a == addr {
						name = fmt.Sprintf("srv%d", i)
					}
				}
				return inj.Wrap(name, transport.DialWith(addr, opts))
			}
			if cliMut != nil {
				cliMut(c)
			}
		})
}

// maybeWriteCorpus dumps the committed schedule corpus as JSON, one file
// per case, when HVAC_CHAOS_CORPUS names a directory — CI uploads it as
// a build artifact so any matrix failure ships its exact fault plan.
func maybeWriteCorpus(t *testing.T, cases []chaosCase) {
	t.Helper()
	dir := os.Getenv("HVAC_CHAOS_CORPUS")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		blob, err := json.MarshalIndent(struct {
			Name     string
			Servers  int
			Files    int
			Size     int
			Epochs   int
			Replicas int
			SegSize  int64
			Schedule faultnet.Schedule
		}{tc.name, tc.servers, tc.files, tc.size, tc.epochs, tc.replicas, tc.segSize, tc.sched}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, tc.name+".json"), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// runChaosCase drives one matrix cell and asserts the resilience
// invariants. preEpoch, when set, runs before each epoch's reads (the
// planner variant installs the epoch plan there); it must not read data.
// It returns the cell's summed ZeroCopyEligible so armed matrices can
// assert the run actually exercised the sendfile plane.
func runChaosCase(t *testing.T, tc chaosCase, preEpoch func(e int, cli *Client, paths []string)) int64 {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	want := make(map[string][]byte, len(paths))
	for _, p := range paths {
		content, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = content
	}

	inj := faultnet.New(tc.sched)
	defer inj.Close()
	servers, cli := startChaosCluster(t, pfsDir, tc, inj, nil)

	opens, batchEntries := 0, 0
	for e := 0; e < tc.epochs; e++ {
		if preEpoch != nil {
			preEpoch(e, cli, paths)
		}
		for _, p := range paths {
			got, err := cli.ReadAll(p)
			opens++
			if err != nil {
				t.Fatalf("epoch %d: read %s under faults: %v", e, p, err)
			}
			// Invariant 1: byte-identical to the PFS copy.
			if !bytes.Equal(got, want[p]) {
				t.Fatalf("epoch %d: %s corrupted under faults (%d bytes, want %d)", e, p, len(got), len(want[p]))
			}
		}
		// The same epoch again through the scatter-gather path: one
		// OpReadBatch per home server, with whatever degradation the
		// schedule forces, must still return every file intact.
		batch, err := cli.ReadBatch(paths)
		if err != nil {
			t.Fatalf("epoch %d: batch read under faults: %v", e, err)
		}
		for i, p := range paths {
			if !bytes.Equal(batch[i], want[p]) {
				t.Fatalf("epoch %d: batch entry %s corrupted under faults (%d bytes, want %d)", e, p, len(batch[i]), len(want[p]))
			}
		}
		if tc.segSize > 0 {
			// Segmented deployments home each segment independently,
			// so ReadBatch degrades to per-file reads: those land in
			// the open accounting, not the batch counters.
			opens += len(paths)
		} else {
			batchEntries += len(paths)
		}
	}
	if inj.Injected() == 0 {
		t.Fatalf("schedule %q injected no faults; the case is vacuous", tc.name)
	}

	// Invariant 2, client side: every batch entry is exactly one of
	// BatchReads or BatchFallbacks, and every open lands in exactly
	// one of Redirected or Fallbacks. The chaos faults fail whole
	// calls (the files are far below the frame budget and the PFS is
	// healthy, so StatusAgain and per-entry errors cannot occur):
	// each BatchFallback entry is served by exactly one ordinary
	// per-file read, which the open identity has to absorb.
	st := cli.Stats()
	if st.BatchReads+st.BatchFallbacks != int64(batchEntries) {
		t.Fatalf("batch accounting broken: batchreads(%d)+batchfallbacks(%d) != batch entries(%d); stats %+v",
			st.BatchReads, st.BatchFallbacks, batchEntries, st)
	}
	if st.Redirected+st.Fallbacks != int64(opens)+st.BatchFallbacks {
		t.Fatalf("open accounting broken: redirected(%d)+fallbacks(%d) != opens(%d)+batchfallbacks(%d); stats %+v",
			st.Redirected, st.Fallbacks, opens, st.BatchFallbacks, st)
	}
	if st.Failovers > st.Redirected {
		t.Fatalf("failovers(%d) exceed redirected opens(%d)", st.Failovers, st.Redirected)
	}
	if st.Degrades > st.Redirected {
		t.Fatalf("degrades(%d) exceed redirected opens(%d): a handle degraded twice", st.Degrades, st.Redirected)
	}
	if st.HedgeWins > st.Hedges {
		t.Fatalf("hedge wins(%d) exceed hedges fired(%d)", st.HedgeWins, st.Hedges)
	}
	if st.Passthrough != 0 {
		t.Fatalf("chaos reads leaked outside the dataset dir: %+v", st)
	}

	// Invariant 2, server side: everything served — opens, batch
	// entries, and segment reads in segmented mode — is exactly one
	// of Hit or ReadThrough; and every zero-copy-eligible serve (a
	// response that left carrying an fd payload) resolved as exactly
	// one of a sendfile send or a userspace fallback. The zero-copy
	// identity is asserted unconditionally: with ZeroCopy off it holds
	// trivially at 0 == 0.
	var eligible int64
	for i, s := range servers {
		ss := s.Stats()
		served := ss.Opens + ss.BatchEntries
		if tc.segSize > 0 {
			served = ss.Opens + ss.Reads + ss.BatchEntries
		}
		if ss.Hits+ss.ReadThroughs != served {
			t.Fatalf("srv%d: hits(%d)+readthroughs(%d) != served(%d); stats %+v",
				i, ss.Hits, ss.ReadThroughs, served, ss)
		}
		if ss.ZeroCopySends+ss.ZeroCopyFallbacks != ss.ZeroCopyEligible {
			t.Fatalf("srv%d: zerocopy sends(%d)+fallbacks(%d) != eligible(%d); stats %+v",
				i, ss.ZeroCopySends, ss.ZeroCopyFallbacks, ss.ZeroCopyEligible, ss)
		}
		if !tc.zeroCopy && ss.ZeroCopyEligible != 0 {
			t.Fatalf("srv%d: %d zero-copy serves with ZeroCopy off", i, ss.ZeroCopyEligible)
		}
		eligible += ss.ZeroCopyEligible
	}
	return eligible
}

func TestChaosMatrix(t *testing.T) {
	maybeWriteCorpus(t, chaosMatrix())
	for _, tc := range chaosMatrix() {
		t.Run(tc.name, func(t *testing.T) {
			runChaosCase(t, tc, nil)
		})
		// Invariant 3 (no goroutine leaks) asserted by CheckLeaks at
		// subtest teardown, after servers and client close.
	}
}

// installChaosPlan is the preEpoch hook for the planner matrix: install
// the epoch's access plan (the epoch reads paths in order, so the path
// list is the plan) on every server, tagged with the epoch as its
// generation. The schedule may refuse or drop the OpPlan call itself —
// plans are advisory, so install errors are deliberately discarded.
func installChaosPlan(horizon int) func(e int, cli *Client, paths []string) {
	return func(e int, cli *Client, paths []string) {
		_, _ = cli.InstallPlan(int64(e), paths, horizon)
	}
}

// The full fault matrix again, with the clairvoyant machinery live on
// every server: Belady-scored eviction installed as the policy and an
// epoch plan (re)installed before every epoch — under faults that can
// refuse or corrupt the OpPlan install itself. Every invariant of the
// base matrix (byte identity, both accounting identities, leak-free
// teardown) must hold unchanged: plans are advisory and may never
// affect correctness.
func TestChaosMatrixClairvoyantPlanner(t *testing.T) {
	for _, tc := range chaosMatrix() {
		tc.policy = func() cachestore.Policy { return cachestore.NewClairvoyant() }
		t.Run(tc.name, func(t *testing.T) {
			pre := installChaosPlan(8)
			if tc.segSize > 0 {
				// Segmented reads consult segment keys a whole-file plan
				// cannot observe: those cells run Clairvoyant with no plan
				// installed, exercising the unplanned SLRU fallback.
				pre = nil
			}
			runChaosCase(t, tc, pre)
		})
	}
}

// The full fault matrix with the zero-copy plane armed on every server:
// warm serves now travel cache-fd → socket through sendfile, and the
// injected faults (disconnects, hangs, kills mid-payload) hit that path
// directly. Every invariant of the base matrix must hold unchanged —
// byte identity proves the kernel path and its mid-transfer fallbacks
// frame exactly the bytes the pooled path would — plus the per-server
// zero-copy identity, and the armed matrix must produce eligible serves
// somewhere (epoch-2 warm reads), else the arming was vacuous.
func TestChaosMatrixZeroCopy(t *testing.T) {
	var eligible int64
	for _, tc := range chaosMatrix() {
		tc.zeroCopy = true
		t.Run(tc.name, func(t *testing.T) {
			eligible += runChaosCase(t, tc, nil)
		})
	}
	if eligible == 0 {
		t.Fatal("no zero-copy-eligible serves across the armed matrix; the arming is vacuous")
	}
}

// The same seed must replay the same fault schedule bit-for-bit even
// across distinct clusters (ephemeral ports differ; the trace is keyed by
// stable server names).
func TestChaosScheduleReplaysAcrossClusters(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "replay", servers: 2, files: 10, size: 512, epochs: 2,
		sched: faultnet.Schedule{Seed: 77, Rules: []faultnet.Rule{
			{Prob: 0.2, Fault: faultnet.Refuse},
			{Op: transport.OpRead, Prob: 0.2, Fault: faultnet.Truncate},
		}},
	}
	// Both runs share one PFS tree so the call sequence — and therefore
	// the per-(server, op) indices the schedule keys on — is identical.
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	run := func() []faultnet.Event {
		inj := faultnet.New(tc.sched)
		defer inj.Close()
		_, cli := startChaosCluster(t, pfsDir, tc, inj, nil)
		for e := 0; e < tc.epochs; e++ {
			for _, p := range paths {
				if _, err := cli.ReadAll(p); err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
			}
			if _, err := cli.ReadBatch(paths); err != nil {
				t.Fatalf("batch read: %v", err)
			}
		}
		return inj.Trace()
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed, different fault traces across clusters:\nrun1: %d events\nrun2: %d events", len(t1), len(t2))
	}
}

// Invariant 4: with fallback disabled, a fault surfaces as a hard error
// whose chain names the failing server.
func TestChaosDisableFallbackNamesFailingServer(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "hard-fail", servers: 1, files: 2, size: 128, epochs: 1,
		sched: faultnet.Schedule{Seed: 11, Rules: []faultnet.Rule{
			{Server: "srv0", Fault: faultnet.Refuse},
		}},
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, func(c *ClientConfig) { c.DisableFallback = true })

	_, err := cli.Open(paths[0])
	if err == nil {
		t.Fatal("open succeeded with every call refused and fallback disabled")
	}
	if !strings.Contains(err.Error(), "srv0") {
		t.Fatalf("error chain does not name the failing server: %v", err)
	}
	st := cli.Stats()
	if st.Fallbacks != 0 || st.Redirected != 0 {
		t.Fatalf("hard failure was still accounted as served: %+v", st)
	}
}

// Mid-file server loss under a schedule (rather than a hand-rolled
// Close): the handle degrades to the PFS and the bytes stay identical.
func TestChaosMidReadDegradation(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "mid-read", servers: 1, files: 1, size: 64 << 10, epochs: 1,
		sched: faultnet.Schedule{Seed: 12, Rules: []faultnet.Rule{
			// First OpRead works, every later one is refused: the server
			// "dies" with the handle open.
			{Op: transport.OpRead, Offset: 1, Fault: faultnet.Refuse},
		}},
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	want, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, nil)

	f, err := cli.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	head := make([]byte, 4<<10)
	if _, err := f.ReadAt(head, 0); err != nil {
		t.Fatalf("first read: %v", err)
	}
	rest := make([]byte, len(want)-len(head))
	if _, err := f.ReadAt(rest, int64(len(head))); err != nil {
		t.Fatalf("read after injected server loss: %v", err)
	}
	if !bytes.Equal(append(head, rest...), want) {
		t.Fatal("content corrupted across the mid-read degradation")
	}
	if st := cli.Stats(); st.Degrades != 1 {
		t.Fatalf("degrades = %d, want exactly 1 (the degraded handle)", st.Degrades)
	}
}

// Per-entry batch degradation under faults: an entry the home server
// cannot serve (here: outside its PFSDir export) comes back StatusError
// and falls back to the PFS alone, while the rest of the batch — and a
// live fault schedule delaying the calls — proceeds through the cache.
// The chaos matrix cannot reach this path (its faults fail whole calls),
// so it gets its own scheduled case.
func TestChaosBatchPerEntryFallback(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "batch-entry", servers: 2, files: 8, size: 1024, epochs: 2,
		sched: faultnet.Schedule{Seed: 15, Rules: []faultnet.Rule{
			{Op: transport.OpReadBatch, Every: 2, Fault: faultnet.Delay, Delay: time.Millisecond},
		}},
	}
	root := t.TempDir()
	pfsDir := filepath.Join(root, "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	// One batch member lives inside the client's dataset dir but outside
	// the servers' PFSDir export: its home server must fail exactly that
	// entry, never the batch.
	stray := filepath.Join(root, "stray.bin")
	strayContent := bytes.Repeat([]byte{0x5a}, tc.size)
	if err := os.WriteFile(stray, strayContent, 0o644); err != nil {
		t.Fatal(err)
	}
	all := append(append([]string(nil), paths...), stray)

	inj := faultnet.New(tc.sched)
	defer inj.Close()
	_, cli := startChaosCluster(t, pfsDir, tc, inj, func(c *ClientConfig) { c.DatasetDir = root })

	for e := 0; e < tc.epochs; e++ {
		got, err := cli.ReadBatch(all)
		if err != nil {
			t.Fatalf("epoch %d: batch read: %v", e, err)
		}
		for i, p := range paths {
			content, rerr := os.ReadFile(p)
			if rerr != nil {
				t.Fatal(rerr)
			}
			if !bytes.Equal(got[i], content) {
				t.Fatalf("epoch %d: batch entry %s corrupted", e, p)
			}
		}
		if !bytes.Equal(got[len(paths)], strayContent) {
			t.Fatalf("epoch %d: stray entry not served via PFS fallback", e)
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected no faults; the case is vacuous")
	}
	st := cli.Stats()
	if st.BatchFallbacks != int64(tc.epochs) {
		t.Fatalf("batch fallbacks = %d, want %d (one stray entry per epoch)", st.BatchFallbacks, tc.epochs)
	}
	if st.BatchReads != int64(tc.epochs*tc.files) {
		t.Fatalf("batch reads = %d, want %d (every in-export entry batch-served)", st.BatchReads, tc.epochs*tc.files)
	}
}

// Retry accounting: injected refusals burn transport retries, and the
// budget surfaces through ClientStats.
func TestChaosRetryBudgetSurfaced(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "retries", servers: 1, files: 4, size: 256, epochs: 1,
		sched: faultnet.Schedule{Seed: 13},
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	inj := faultnet.New(tc.sched)
	defer inj.Close()
	srvs, cli := startChaosCluster(t, pfsDir, tc, inj, nil)
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	if st := cli.Stats(); st.Retries != 0 {
		t.Fatalf("fault-free run burned %d retries", st.Retries)
	}
	// Kill the server for real: every call now exhausts the 2-attempt
	// budget, spending one retry per call (Close is idempotent, so the
	// cluster cleanup tolerates the early kill).
	for _, s := range srvs {
		s.Close()
	}
	if _, err := cli.ReadAll(paths[0]); err != nil {
		t.Fatalf("read with dead server must fall back, got %v", err)
	}
	if st := cli.Stats(); st.Retries == 0 {
		t.Fatal("dead-server calls burned no transport retries")
	}
}

// Seeded replay must stay bit-for-bit with the planner in the call
// stream: OpPlan installs shift the per-(server, op) fault indices, so
// they must land identically across runs for the schedule to replay.
func TestChaosReplayWithPlanner(t *testing.T) {
	testutil.CheckLeaks(t)
	tc := chaosCase{
		name: "replay-planner", servers: 2, files: 10, size: 512, epochs: 2,
		policy: func() cachestore.Policy { return cachestore.NewClairvoyant() },
		sched: faultnet.Schedule{Seed: 78, Rules: []faultnet.Rule{
			{Prob: 0.2, Fault: faultnet.Refuse},
			{Op: transport.OpPlan, Every: 3, Fault: faultnet.Refuse},
			{Op: transport.OpRead, Prob: 0.2, Fault: faultnet.Truncate},
		}},
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, tc.files, tc.size)
	run := func() []faultnet.Event {
		inj := faultnet.New(tc.sched)
		defer inj.Close()
		_, cli := startChaosCluster(t, pfsDir, tc, inj, nil)
		for e := 0; e < tc.epochs; e++ {
			_, _ = cli.InstallPlan(int64(e), paths, 4) // refusals are part of the schedule
			for _, p := range paths {
				if _, err := cli.ReadAll(p); err != nil {
					t.Fatalf("read %s: %v", p, err)
				}
			}
		}
		return inj.Trace()
	}
	t1, t2 := run(), run()
	if !reflect.DeepEqual(t1, t2) {
		t.Fatalf("same seed, different fault traces with planner installed:\nrun1: %d events\nrun2: %d events", len(t1), len(t2))
	}
}

// Belady-scored eviction under genuine cache pressure, fault-free: the
// cache holds a quarter of the dataset, the plan is reinstalled every
// epoch, and eviction churns throughout. Bytes must stay identical to
// the PFS copies, the server accounting identity must hold, and the
// run must actually have evicted (otherwise the case is vacuous).
func TestClairvoyantUnderEvictionPressure(t *testing.T) {
	const (
		files    = 24
		size     = 4096
		epochs   = 3
		capacity = files * size / 4
	)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, files, size)
	servers, cli := startCluster(t, pfsDir, 2, func(cfg *ServerConfig) {
		cfg.CacheCapacity = capacity
		cfg.Policy = cachestore.NewClairvoyant()
	}, nil)

	for e := 0; e < epochs; e++ {
		if _, err := cli.InstallPlan(int64(e), paths, 8); err != nil {
			t.Fatalf("epoch %d: install plan: %v", e, err)
		}
		for i, p := range paths {
			got, err := cli.ReadAll(p)
			if err != nil {
				t.Fatalf("epoch %d: read %s: %v", e, p, err)
			}
			want := bytes.Repeat([]byte{byte(i)}, size)
			if !bytes.Equal(got, want) {
				t.Fatalf("epoch %d: %s corrupted under eviction pressure", e, p)
			}
		}
	}
	var evictions int64
	for i, s := range servers {
		s.WaitIdle()
		ss := s.Stats()
		if ss.Hits+ss.ReadThroughs != ss.Opens {
			t.Fatalf("srv%d: hits(%d)+readthroughs(%d) != opens(%d); stats %+v",
				i, ss.Hits, ss.ReadThroughs, ss.Opens, ss)
		}
		if s.CachedBytes() > capacity {
			t.Fatalf("srv%d: cached %d bytes over the %d-byte capacity", i, s.CachedBytes(), capacity)
		}
		evictions += ss.Evictions
	}
	if evictions == 0 {
		t.Fatal("no evictions at quarter-capacity; the pressure case is vacuous")
	}
}
