package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// The ISSUE 5 cold-path benchmarks. Two shapes matter for the first
// epoch (the paper's Fig. 6-8 regime, before the cache is warm):
//
//   - BenchmarkColdEpoch64: a full cold epoch — 64 files, every open a
//     miss, each served while the data-mover fills the cache. The
//     pfsopens/op metric counts os.Open calls against the PFS tree;
//     before serve-from-fill each cold file cost two passes (one
//     read-through in the handler, one in the mover's copyIn), after it
//     costs exactly one.
//   - BenchmarkSmallFilesPerFile256 / BenchmarkSmallFilesBatch256: a
//     DeepCAM-shaped small-sample batch (256 x 4 KiB) read warm, per
//     file vs. through one scatter-gather OpReadBatch per server. The
//     rpcs/op metric counts transport-level calls.
//
// Fixed -benchtime iteration counts (scripts/bench.sh) make the numbers
// comparable across runs; BENCH_PR5.json holds the committed baseline.

// benchWritePFS writes files outside the testing.T helpers so benchmarks
// can use it with their own directories.
func benchWritePFS(b *testing.B, dir string, files, size int) []string {
	b.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		b.Fatal(err)
	}
	paths := make([]string, files)
	for i := range paths {
		p := filepath.Join(dir, fmt.Sprintf("f%04d.bin", i))
		content := make([]byte, size)
		for j := range content {
			content[j] = byte(i + j)
		}
		if err := os.WriteFile(p, content, 0o644); err != nil {
			b.Fatal(err)
		}
		paths[i] = p
	}
	return paths
}

// BenchmarkColdEpoch64 measures one fully cold epoch: fresh server and
// cache per iteration, 64 x 64 KiB files read once each. ns/op is the
// cold-epoch wall time; pfsopens/op and pfsbytes/op count the PFS
// traffic the epoch cost.
func BenchmarkColdEpoch64(b *testing.B) {
	const (
		files    = 64
		fileSize = 64 << 10
	)
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, files, fileSize)
	var opens, bytes atomic.Int64 // the default mover pool opens concurrently

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cacheDir := filepath.Join(b.TempDir(), fmt.Sprintf("nvme%d", i))
		srv, err := StartServer(ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   cacheDir,
			OpenPFS: func(path string) (*os.File, error) {
				f, err := os.Open(path) //hvac:pfs-fallback benchmark seam: counting the server's own PFS passes
				if err == nil {
					opens.Add(1)
					if fi, serr := f.Stat(); serr == nil {
						bytes.Add(fi.Size())
					}
				}
				return f, err
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		cli, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		for _, p := range paths {
			if _, err := cli.ReadAll(p); err != nil {
				b.Fatal(err)
			}
		}
		srv.WaitIdle() // the epoch is not over until the fills land

		b.StopTimer()
		cli.Close()
		srv.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(opens.Load())/float64(b.N), "pfsopens/op")
	b.ReportMetric(float64(bytes.Load())/float64(b.N), "pfsbytes/op")
}

// smallFileCluster starts a warm 2-server cluster over 256 x 4 KiB files
// and returns the client plus the paths.
func smallFileCluster(b *testing.B) ([]*Server, *Client, []string) {
	const (
		files    = 256
		fileSize = 4 << 10
	)
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, files, fileSize)
	servers := make([]*Server, 2)
	addrs := make([]string, len(servers))
	for i := range servers {
		srv, err := StartServer(ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(b.TempDir(), fmt.Sprintf("nvme%d", i)),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		servers[i] = srv
		addrs[i] = srv.Addr()
	}
	cli, err := NewClient(ClientConfig{Servers: addrs, DatasetDir: pfsDir})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cli.Close)
	// Warm every cache so both benchmarks measure pure serving cost.
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range servers {
		s.WaitIdle()
	}
	return servers, cli, paths
}

// transportCalls sums the RPC calls issued across the client's links.
func transportCalls(cli *Client) int64 {
	var n int64
	for _, conn := range cli.conns {
		if cc, ok := conn.(interface{ Calls() int64 }); ok {
			n += cc.Calls()
		}
	}
	return n
}

// BenchmarkSmallFilesPerFile256 reads the warm 256-file set one full
// <open, read, close> transaction per file — the pre-batching loader
// access pattern (3 RPCs per file).
func BenchmarkSmallFilesPerFile256(b *testing.B) {
	_, cli, paths := smallFileCluster(b)
	before := transportCalls(cli)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range paths {
			if _, err := cli.ReadAll(p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(transportCalls(cli)-before)/float64(b.N), "rpcs/op")
}

// BenchmarkSmallFilesBatch256 reads the same warm 256-file set through
// ReadBatch: one OpReadBatch round trip per home server instead of 3
// RPCs per file.
func BenchmarkSmallFilesBatch256(b *testing.B) {
	_, cli, paths := smallFileCluster(b)
	before := transportCalls(cli)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := cli.ReadBatch(paths)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != len(paths) || out[0] == nil {
			b.Fatal("batch came back incomplete")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(transportCalls(cli)-before)/float64(b.N), "rpcs/op")
	if st := cli.Stats(); st.BatchFallbacks != 0 {
		b.Fatalf("warm batch benchmark hit %d fallbacks", st.BatchFallbacks)
	}
}
