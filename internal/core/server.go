// Package core implements HVAC itself — the paper's contribution: a
// client/server read-only cache (§III).
//
// Server side: RPC handlers forward file I/O to a pool of data-mover
// workers (§III-D) through a two-level queue: demand misses (a client is
// waiting on the bytes) preempt prefetch hints (§IV-C pre-population).
// On the first read of a file the assigned mover copies it from the PFS
// into the node-local store in a single pass; the requesting handlers
// are served directly from that in-flight fill as the bytes land
// (serve-from-fill), so a cold file costs exactly one PFS read. A file
// is copied at most once even under concurrent requests (the fills are
// single-flighted per cache key).
//
// Client side: an interception layer redirects <open, read, close> for
// paths under the dataset directory (the HVAC_DATASET_DIR contract of
// §III-C) to the server that "homes" the file by hashing (§III-E),
// falling back to the PFS when a server is unreachable.
//
// Both halves exist twice: the real mode below (goroutines, TCP, actual
// files) and a simulated mode (sim*.go) used to reproduce the paper's
// Summit-scale experiments; the placement, queueing and caching logic is
// shared.
//
// The request path is engineered to be allocation- and contention-free
// when warm (DESIGN.md §9): stats are typed atomics, the handle table is
// sharded (handles.go), payload buffers are pooled (transport.Response
// ownership), and the only mutex left — Server.mu — guards just the
// data-mover single-flight map, off the warm read path entirely. The
// cold path's state machine (miss → fill registration → serve-from-fill
// → cache hit) is documented in DESIGN.md §10.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/metrics"
	"hvac/internal/place"
	"hvac/internal/transport"
)

// Default capacities of the two mover queues. Sends never block: a full
// demand queue degrades that request to handler-side read-through, a
// full prefetch queue drops the hint (counted in PrefetchDrops).
const (
	defaultDemandQueue   = 1024
	defaultPrefetchQueue = 4096
)

// defaultMovers is the data-mover pool size when ServerConfig.Movers is
// unset. One mover (the paper's single dedicated thread) serializes
// every cold fill behind one PFS copy at a time, which BENCH_PR5's
// ColdEpoch64 showed dominating first-epoch latency; a small pool keeps
// concurrent demand misses overlapped without approaching the PFS
// connection limits a real deployment budgets per node.
const defaultMovers = 4

// ServerConfig configures a real-mode HVAC server instance.
type ServerConfig struct {
	// ListenAddr is the TCP address to serve on ("127.0.0.1:0" for tests).
	ListenAddr string
	// PFSDir is the parallel-file-system directory this server may cache
	// from; requests outside it are refused.
	PFSDir string
	// CacheDir is the node-local storage directory for cached copies.
	CacheDir string
	// CacheCapacity is the cache size in bytes.
	CacheCapacity int64
	// Policy is the eviction policy; nil means the paper's random policy.
	Policy cachestore.Policy
	// Movers is the number of data-mover workers; 0 means defaultMovers.
	// The paper dedicates one thread per server instance; multi-instance
	// deployments i×1 can equivalently run one server with i movers, and
	// a pool keeps concurrent cold fills from serializing behind a single
	// PFS copy.
	Movers int
	// PlanHorizon is how many plan entries the clairvoyant pump keeps
	// ahead of the observed read frontier once a plan is installed
	// (OpPlan); 0 means defaultPlanHorizon. An install RPC carrying its
	// own horizon overrides this.
	PlanHorizon int
	// SegmentSize > 0 enables segment-level caching (§III-E): files are
	// cached and served in SegmentSize-byte segments, each homed
	// independently, which balances load for datasets with highly skewed
	// file sizes. Clients must use the same value.
	SegmentSize int64
	// WriteTimeout bounds each response write so a dead client cannot pin
	// a connection goroutine; 0 means transport.DefaultWriteTimeout,
	// negative disables the deadline.
	WriteTimeout time.Duration
	// ZeroCopy serves warm whole-file and segment reads from an fd lease
	// on the cached file, letting the transport push the payload with
	// sendfile(2) so the bytes never cross userspace (Linux; every other
	// writer or platform transparently falls back to the pooled
	// pread+writev path). See DESIGN.md §13.
	ZeroCopy bool
	// DemandQueue and PrefetchQueue cap the two mover queues (0 means the
	// package defaults). Demand overflows degrade the request to
	// handler-side read-through; prefetch overflows drop the hint.
	DemandQueue   int
	PrefetchQueue int
	// OpenPFS overrides how the server opens source files on the PFS;
	// nil means os.Open. Tests use it to count PFS passes (the
	// one-read-per-cold-file property), deployments can route it at an
	// alternative PFS mount.
	OpenPFS func(path string) (*os.File, error)
	// Peers, SelfID, Replicas and Placement arm replica warming
	// (§III-H): after a demand fill completes, the server forwards the
	// key to its other replica homes as prefetch hints, so a failover
	// read hits a warm cache instead of triggering a cold PFS storm.
	// Peers lists every server address of the allocation in client
	// order, SelfID is this server's index in it, Replicas is the
	// placement replication factor, and Placement must match the
	// clients' policy (nil means ModHash). Leave any of them zero to
	// disable warming; tests with ephemeral ports can wire the same
	// state after startup via SetPeers.
	Peers     []string
	SelfID    int
	Replicas  int
	Placement place.Policy
	// DialPeer overrides how peer links are dialed (the warm-path test
	// seam); nil means TCP via transport.Dial.
	DialPeer func(addr string) transport.Transport
}

// ServerStats counts server-side activity. The counters satisfy an
// accounting identity checked by the stress and chaos tests: every
// whole-file open, every segment read and every batch entry is served
// either from the cache (Hits) or sourced from the PFS (ReadThroughs),
// so
//
//	Hits + ReadThroughs == Opens + segment Reads + BatchEntries
//
// Misses counts completed background fills, which lag ReadThroughs (the
// data-mover single-flights concurrent first reads and may still be
// streaming when the request is answered from the fill).
//
// The //hvac:pair lines declare that identity to the statpair
// analyzer, which proves per CFG path what the chaos tier asserts at
// the end of a run: every serve event bumps one source side (left)
// and one serve-kind side (right) together. Whole-file handle reads
// are outside the identity (their sourcing was accounted at open);
// the handler that bumps them carries //hvac:pair-split.
type ServerStats struct {
	//hvac:pair served right
	Opens int64
	//hvac:pair served right
	Reads  int64
	Closes int64
	//hvac:pair served left
	Hits   int64
	Misses int64
	//hvac:pair served left
	ReadThroughs int64
	//hvac:pair served right
	BatchEntries int64
	BytesServed  int64
	BytesFetched int64
	Evictions    int64
	// QueueDepth is a gauge: tasks sitting in the two mover queues at
	// snapshot time (demand + prefetch).
	QueueDepth int64
	// PrefetchDrops counts prefetch hints dropped on a full queue —
	// backpressure instead of unbounded blocking sends.
	PrefetchDrops int64
	// DemandRejects counts demand fetches refused on a full queue; the
	// refused request is served read-through by its handler instead.
	DemandRejects int64
	// ReplicaWarms counts warm hints this server sent to peer replicas
	// that were accepted (the peer may still drop the hint under its own
	// prefetch backpressure, counted there as PrefetchDrops).
	ReplicaWarms int64
	// PlanInstalled counts plan entries accepted over OpPlan (across all
	// generations); PlanPrefetches counts fills the plan pump enqueued.
	// Both sit outside the served identity: a planned fill is a prefetch,
	// counted as a Miss when it completes like any other fill.
	PlanInstalled  int64
	PlanPrefetches int64
	// PlanKeys and PlanFrontier are gauges: the installed plan's length
	// and the highest plan position observed as a demand read (-1 before
	// the first).
	PlanKeys     int64
	PlanFrontier int64
	// Zero-copy serve accounting (transport.ZeroCopyStats snapshots).
	// Identity, asserted by the chaos tier with ZeroCopy armed and
	// declared per CFG path on the live counters in the transport:
	//
	//	ZeroCopySends + ZeroCopyFallbacks == ZeroCopyEligible
	//
	// Every response that reached the wire with an fd-backed payload
	// (eligible) either left entirely via sendfile (a send) or involved
	// userspace bytes (a fallback). ZeroCopyBytes counts the bytes
	// sendfile itself moved.
	ZeroCopyEligible  int64
	ZeroCopySends     int64
	ZeroCopyBytes     int64
	ZeroCopyFallbacks int64
}

// serverCounters is the live form of ServerStats: typed atomics, so the
// read path bumps them without any lock (and without tripping the
// atomicmix analyzer — plain access to these fields is unrepresentable).
type serverCounters struct {
	opens, reads, closes atomic.Int64
	hits, misses         atomic.Int64
	readThroughs         atomic.Int64
	batchEntries         atomic.Int64
	bytesServed          atomic.Int64
	bytesFetched         atomic.Int64
	prefetchDrops        atomic.Int64
	demandRejects        atomic.Int64
	replicaWarms         atomic.Int64
	planInstalled        atomic.Int64
	planPrefetches       atomic.Int64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Opens:          c.opens.Load(),
		Reads:          c.reads.Load(),
		Closes:         c.closes.Load(),
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		ReadThroughs:   c.readThroughs.Load(),
		BatchEntries:   c.batchEntries.Load(),
		BytesServed:    c.bytesServed.Load(),
		BytesFetched:   c.bytesFetched.Load(),
		PrefetchDrops:  c.prefetchDrops.Load(),
		DemandRejects:  c.demandRejects.Load(),
		ReplicaWarms:   c.replicaWarms.Load(),
		PlanInstalled:  c.planInstalled.Load(),
		PlanPrefetches: c.planPrefetches.Load(),
	}
}

// errServerClosed fails fetch tasks drained during shutdown.
var errServerClosed = errors.New("hvac server: closed")

// fillEntry is the single-flight record of one in-flight background
// fill. Handlers that hit the same cold key attach to it: ready is
// closed once the mover has opened the source and created the
// cachestore.Fill (or failed trying — fill stays nil then), done is
// closed when the fetch completes and the key leaves the inflight map.
type fillEntry struct {
	once  sync.Once
	ready chan struct{}
	fill  *cachestore.Fill // valid after <-ready; nil if fill creation failed
	done  chan struct{}
	err   error // valid after <-done
}

// publish records the fill (nil on failure) and unblocks attachers.
// Idempotent: only the first call wins.
func (fe *fillEntry) publish(f *cachestore.Fill) {
	fe.once.Do(func() {
		fe.fill = f
		close(fe.ready)
	})
}

// fetchTask names one data-mover copy: a whole file (Len == 0) or one
// segment of it.
type fetchTask struct {
	key     string // cache-store key ("path" or "path@segIdx")
	path    string
	off     int64
	len     int64 // 0 = to EOF (whole file)
	demand  bool  // a client is waiting; completed demand fills warm the replicas
	planned bool  // scheduled by the plan pump; completion re-pumps the plan
	entry   *fillEntry
}

type openHandle struct {
	f       *os.File
	release func() // nil for direct (read-through) PFS handles
	size    int64
	path    string

	// Cold handles are served from the in-flight fill; once the fill is
	// gone they promote — under mu — to the committed cache file (or the
	// PFS on failure).
	fe *fillEntry
	mu sync.Mutex
}

// Server is a real-mode HVAC server instance.
type Server struct {
	cfg     ServerConfig
	store   *cachestore.Store
	rpc     *transport.Server
	openPFS func(path string) (*os.File, error)

	demandQ   chan fetchTask
	prefetchQ chan fetchTask
	stop      chan struct{}
	moverWG   sync.WaitGroup

	handles handleTable
	nextFD  atomic.Int64
	stats   serverCounters
	// zc is the zero-copy serve accounting, bumped by the transport's
	// write path for every fd-backed response this server emits.
	zc transport.ZeroCopyStats

	// Clairvoyant planning state (planner.go). planArmed short-circuits
	// planObserve on the warm read path until a plan is installed;
	// planHorizon is the pump window (install RPCs may override the
	// configured value); belady is cfg.Policy when it is the Clairvoyant
	// eviction policy, so installed plans also score eviction.
	plan        planner
	planArmed   atomic.Bool
	planHorizon atomic.Int64
	belady      *cachestore.Clairvoyant

	// mu guards only the data-mover single-flight state below — nothing
	// on the warm read path takes it.
	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight drains to empty
	inflight map[string]*fillEntry
	closed   bool

	// peerMu guards the replica-warming wiring: the peer address list,
	// its membership view, and the lazily dialed peer links. Never held
	// across a Call.
	peerMu    sync.Mutex
	peers     []string
	self      int
	pview     *place.View
	peerConns []transport.Transport
	dialPeer  func(addr string) transport.Transport

	latOpen  metrics.Histogram
	latRead  metrics.Histogram
	latClose metrics.Histogram
	latCopy  metrics.Histogram
}

// StartServer launches an HVAC server. Stop it with Close.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.PFSDir == "" {
		return nil, errors.New("core: ServerConfig.PFSDir is required")
	}
	if cfg.Movers <= 0 {
		cfg.Movers = defaultMovers
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 1 << 40
	}
	if cfg.DemandQueue <= 0 {
		cfg.DemandQueue = defaultDemandQueue
	}
	if cfg.PrefetchQueue <= 0 {
		cfg.PrefetchQueue = defaultPrefetchQueue
	}
	abs, err := filepath.Abs(cfg.PFSDir)
	if err != nil {
		return nil, err
	}
	cfg.PFSDir = abs
	store, err := cachestore.NewStore(cfg.CacheDir, cfg.CacheCapacity, cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		store:     store,
		openPFS:   cfg.OpenPFS,
		demandQ:   make(chan fetchTask, cfg.DemandQueue),
		prefetchQ: make(chan fetchTask, cfg.PrefetchQueue),
		stop:      make(chan struct{}),
		inflight:  make(map[string]*fillEntry),
	}
	if s.openPFS == nil {
		s.openPFS = os.Open
	}
	if cfg.PlanHorizon > 0 {
		s.planHorizon.Store(int64(cfg.PlanHorizon))
	} else {
		s.planHorizon.Store(defaultPlanHorizon)
	}
	if cl, ok := cfg.Policy.(*cachestore.Clairvoyant); ok {
		s.belady = cl
	}
	s.idle = sync.NewCond(&s.mu)
	if len(cfg.Peers) > 0 {
		s.SetPeers(cfg.Peers, cfg.SelfID)
	}
	for i := 0; i < cfg.Movers; i++ {
		s.moverWG.Add(1)
		go s.mover()
	}
	rpcSrv, err := transport.ServeWith(cfg.ListenAddr, s.handle, transport.ServerOptions{WriteTimeout: cfg.WriteTimeout})
	if err != nil {
		close(s.stop)
		s.moverWG.Wait()
		return nil, err
	}
	s.rpc = rpcSrv
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.rpc.Addr() }

// SetPeers wires (or rewires) the replica-warming peer set: peers is
// every server address of the allocation in client order, self is this
// server's index in it. Tests call it after startup, once the cluster's
// ephemeral ports are known; StartServer calls it for configs that name
// their peers up front. Existing peer links are retired.
func (s *Server) SetPeers(peers []string, self int) {
	var stale []transport.Transport
	s.peerMu.Lock()
	for _, conn := range s.peerConns {
		if conn != nil {
			stale = append(stale, conn)
		}
	}
	s.peers = append([]string(nil), peers...)
	s.self = self
	s.peerConns = make([]transport.Transport, len(peers))
	if len(peers) > 0 {
		pol := s.cfg.Placement
		if pol == nil {
			pol = place.ModHash{}
		}
		s.pview = place.NewView(pol, len(peers))
	} else {
		s.pview = nil
	}
	s.peerMu.Unlock()
	for _, conn := range stale {
		conn.Close()
	}
}

// View returns the server's membership view over its peer set, or nil
// when replica warming is not wired. Leave/Join on it steer warm hints
// away from (or back to) a member.
func (s *Server) View() *place.View {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	return s.pview
}

// peerConn returns the lazily dialed link to peer i, nil for self.
func (s *Server) peerConn(i int) transport.Transport {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if i < 0 || i >= len(s.peerConns) || i == s.self {
		return nil
	}
	if s.peerConns[i] == nil {
		dial := s.cfg.DialPeer
		if dial == nil {
			dial = func(addr string) transport.Transport { return transport.Dial(addr) }
		}
		s.peerConns[i] = dial(s.peers[i])
	}
	return s.peerConns[i]
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	st := s.stats.snapshot()
	_, _, ev := s.store.Stats()
	st.Evictions = ev
	st.QueueDepth = int64(len(s.demandQ) + len(s.prefetchQ))
	keys, frontier := s.planSnapshot()
	st.PlanKeys = int64(keys)
	st.PlanFrontier = frontier
	st.ZeroCopyEligible = s.zc.Eligible.Load()
	st.ZeroCopySends = s.zc.Sends.Load()
	st.ZeroCopyBytes = s.zc.Bytes.Load()
	st.ZeroCopyFallbacks = s.zc.Fallbacks.Load()
	return st
}

// CachedFiles reports the number of files currently cached.
func (s *Server) CachedFiles() int { return s.store.Len() }

// CachedBytes reports the bytes currently cached.
func (s *Server) CachedBytes() int64 { return s.store.Used() }

// Close tears the server down and purges the cache, mirroring the
// job-coupled life cycle of §III-D.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.rpc.Close()
	// Stop the movers, then fail whatever they left queued. No new tasks
	// can arrive: scheduleFetch checks closed under mu before its
	// non-blocking send, so there is no send racing this drain (the old
	// close-the-channel teardown had exactly that panic window).
	close(s.stop)
	s.moverWG.Wait()
	for drained := false; !drained; {
		select {
		case task := <-s.demandQ:
			s.finishFetch(task, errServerClosed)
		case task := <-s.prefetchQ:
			s.finishFetch(task, errServerClosed)
		default:
			drained = true
		}
	}
	for _, h := range s.handles.drain() {
		if h.f != nil {
			_ = h.f.Close() // teardown is best-effort: the job is over
		}
		if h.release != nil {
			h.release()
		}
	}
	s.peerMu.Lock()
	peerConns := s.peerConns
	s.peerConns = nil
	s.peerMu.Unlock()
	for _, conn := range peerConns {
		if conn != nil {
			conn.Close()
		}
	}
	_ = s.store.Purge()          // best-effort: leftover cache files are re-usable garbage
	_ = os.Remove(s.store.Dir()) // fails harmlessly if the purge left files behind
}

// mover is one data-mover worker: it drains the two-level queue — demand
// misses strictly before prefetch hints — and streams each task's bytes
// from the PFS into a cachestore fill that waiting handlers are served
// from.
func (s *Server) mover() {
	defer s.moverWG.Done()
	for {
		// Demand first, without blocking.
		select {
		case task := <-s.demandQ:
			s.runFetch(task)
			continue
		default:
		}
		select {
		case task := <-s.demandQ:
			s.runFetch(task)
		case task := <-s.prefetchQ:
			s.runFetch(task)
		case <-s.stop:
			return
		}
	}
}

// runFetch executes one fetch task end to end. A successful demand fill
// warms the key's replicas before the task retires, so once WaitIdle
// returns on this server every warm hint it owed is already registered
// on the peers (prefetch fills never re-warm — warming cannot cascade).
func (s *Server) runFetch(task fetchTask) {
	start := time.Now()
	err := s.fillIn(task)
	s.latCopy.Observe(time.Since(start))
	if err == nil {
		s.stats.misses.Add(1) // a completed first-read fill
		if task.demand {
			s.warmReplicas(task)
		}
	}
	s.finishFetch(task, err)
	if task.planned {
		// A planned fill retired: the pump may have stopped on prefetch
		// backpressure, so top the window back up.
		s.pumpPlan()
	}
}

// warmReplicas forwards a completed demand fill to the key's other
// replica homes as prefetch hints — the §III-H replica-warming flow:
// the primary serves the cold read, the secondaries fill through their
// low-priority prefetch queue (their own counted backpressure applies),
// and a later failover read finds a warm cache. Segment keys carry
// their byte range so the peer fills exactly the segment it homes.
func (s *Server) warmReplicas(task fetchTask) {
	s.peerMu.Lock()
	view, r := s.pview, s.cfg.Replicas
	s.peerMu.Unlock()
	if view == nil || r < 2 {
		return
	}
	for _, peer := range view.Replicas(task.key, r) {
		conn := s.peerConn(peer) // nil for self
		if conn == nil {
			continue
		}
		resp, err := conn.Call(&transport.Request{
			Op: transport.OpPrefetch, Path: task.path, Off: task.off, Len: task.len,
		})
		if err != nil {
			continue // a dead peer warms on its own first read instead
		}
		if resp.OK() {
			s.stats.replicaWarms.Add(1)
		}
		resp.Release()
	}
}

// finishFetch publishes the task's outcome and retires its single-flight
// entry.
func (s *Server) finishFetch(task fetchTask, err error) {
	task.entry.err = err
	task.entry.publish(nil) // no-op when the fill was published mid-fetch
	s.mu.Lock()
	delete(s.inflight, task.key)
	if len(s.inflight) == 0 {
		s.idle.Broadcast()
	}
	s.mu.Unlock()
	close(task.entry.done)
}

// WaitIdle blocks until every in-flight background fill has completed.
// Useful for tests and for measuring clean warm-epoch performance. The
// movers signal the condition when the inflight map drains, so waiting
// does not re-scan or poll.
func (s *Server) WaitIdle() {
	s.mu.Lock()
	for len(s.inflight) > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

// fillIn is the single PFS pass for one task: open the source once,
// stream it into a cachestore fill (serving attached readers as bytes
// land), and commit the fill into the cache.
func (s *Server) fillIn(task fetchTask) error {
	src, err := s.openPFS(task.path)
	if err != nil {
		return fmt.Errorf("hvac server: pfs open: %w", err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		return fmt.Errorf("hvac server: pfs stat: %w", err)
	}
	size := fi.Size() - task.off
	if size < 0 {
		size = 0
	}
	if task.len > 0 && task.len < size {
		size = task.len
	}
	fill, err := s.store.PutWriter(task.key, size)
	if err != nil {
		return fmt.Errorf("hvac server: cache fill: %w", err)
	}
	task.entry.publish(fill)
	// CopyFrom lets the kernel move the bytes (copy_file_range/sendfile)
	// instead of bouncing them through a user-space buffer; attached
	// readers are still served chunk by chunk as the prefix lands.
	if _, err := fill.CopyFrom(src, task.off, size); err != nil {
		fill.Abort(err)
		return fmt.Errorf("hvac server: cache fill: %w", err)
	}
	if err := fill.Commit(); err != nil {
		return fmt.Errorf("hvac server: cache fill: %w", err)
	}
	s.stats.bytesFetched.Add(size)
	return nil
}

// scheduleFetch registers a background fill for task once per cache key
// (the §III-D single-flight guarantee) and enqueues it at the given
// priority. It returns the fill entry to attach to, or nil when the
// fetch could not be queued — a full demand queue (the handler serves
// read-through itself), a dropped prefetch hint, or a closing server.
// enqueued reports whether this call created the fill (false when the
// caller attached to a fetch already in flight). The non-blocking send
// happens under s.mu, so it cannot race Close's queue drain.
func (s *Server) scheduleFetch(task fetchTask, demand bool) (fe *fillEntry, enqueued bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	if fe, ok := s.inflight[task.key]; ok {
		return fe, false
	}
	fe = &fillEntry{ready: make(chan struct{}), done: make(chan struct{})}
	task.entry = fe
	task.demand = demand
	q := s.prefetchQ
	if demand {
		q = s.demandQ
	}
	select {
	case q <- task:
		s.inflight[task.key] = fe
		return fe, true
	default:
		if demand {
			s.stats.demandRejects.Add(1)
		} else {
			s.stats.prefetchDrops.Add(1)
		}
		return nil, false
	}
}

func errResp(err error) *transport.Response {
	return &transport.Response{Status: transport.StatusError, Err: err.Error()}
}

// checkReadLen bounds a wire-supplied read length before it sizes a
// buffer: negative lengths are nonsense and anything above half a frame
// cannot be answered (the response frame must also carry the header and
// tail). Both handleRead and handleReadAt validate through this one
// helper.
func checkReadLen(n int64) error {
	if n < 0 || n > transport.MaxFrame/2 {
		return fmt.Errorf("hvac server: read length %d out of range", n)
	}
	return nil
}

// segKey names one cached segment. strconv instead of fmt keeps it off
// the Sprintf slow path — this runs per segment read on client and
// server.
func segKey(path string, seg int64) string {
	return path + "@" + strconv.FormatInt(seg, 10)
}

// handle dispatches one RPC, recording per-operation service latency.
func (s *Server) handle(req *transport.Request) *transport.Response {
	start := time.Now()
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{Status: transport.StatusOK}
	case transport.OpOpen:
		defer func() { s.latOpen.Observe(time.Since(start)) }()
		return s.handleOpen(req)
	case transport.OpRead:
		defer func() { s.latRead.Observe(time.Since(start)) }()
		return s.handleRead(req)
	case transport.OpClose:
		defer func() { s.latClose.Observe(time.Since(start)) }()
		return s.handleClose(req)
	case transport.OpStat:
		return s.handleStat(req)
	case transport.OpPrefetch:
		return s.handlePrefetch(req)
	case transport.OpReadAt:
		defer func() { s.latRead.Observe(time.Since(start)) }()
		return s.handleReadAt(req)
	case transport.OpReadBatch:
		defer func() { s.latRead.Observe(time.Since(start)) }()
		return s.handleReadBatch(req)
	case transport.OpPlan:
		return s.handlePlan(req)
	default:
		return errResp(fmt.Errorf("hvac server: unknown op %d", req.Op))
	}
}

// LatencySummary renders the server's per-operation service-time
// histograms (open/read/close handling plus data-mover copies).
func (s *Server) LatencySummary() string {
	return fmt.Sprintf("open: %s\nread: %s\nclose: %s\ncopy: %s",
		s.latOpen.String(), s.latRead.String(), s.latClose.String(), s.latCopy.String())
}

// OpenLatency exposes the open-operation histogram.
func (s *Server) OpenLatency() *metrics.Histogram { return &s.latOpen }

// ReadLatency exposes the read-operation histogram.
func (s *Server) ReadLatency() *metrics.Histogram { return &s.latRead }

// CopyLatency exposes the data-mover copy histogram.
func (s *Server) CopyLatency() *metrics.Histogram { return &s.latCopy }

func (s *Server) allowed(path string) error {
	clean := filepath.Clean(path)
	if clean != s.cfg.PFSDir && !strings.HasPrefix(clean, s.cfg.PFSDir+string(filepath.Separator)) {
		return fmt.Errorf("hvac server: %s outside served dataset dir %s", path, s.cfg.PFSDir)
	}
	return nil
}

// handleOpen serves a forwarded open: from the cache when resident;
// otherwise the miss is registered with the data-mover and the handle is
// served from the in-flight fill (serve-from-fill) — one PFS metadata
// stat now, one PFS data pass total, done by the mover. Only when the
// fetch cannot be queued (backpressure, shutdown) does the handler fall
// back to its own PFS read-through.
func (s *Server) handleOpen(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if s.store.Contains(req.Path) {
		f, release, err := s.store.Open(req.Path)
		if err == nil {
			fi, serr := f.Stat()
			if serr != nil {
				_ = f.Close() // the stat failure is the error to report
				release()
				return errResp(serr)
			}
			fd := s.nextFD.Add(1)
			s.handles.put(fd, &openHandle{f: f, release: release, size: fi.Size(), path: req.Path})
			s.stats.opens.Add(1)
			s.stats.hits.Add(1)
			s.planObserve(req.Path)
			return &transport.Response{Status: transport.StatusOK, Handle: fd, Size: fi.Size()}
		}
		// Evicted between Contains and Open: fall through to the miss path.
	}
	fi, err := os.Stat(req.Path)
	if err != nil {
		return errResp(fmt.Errorf("hvac server: pfs stat: %w", err))
	}
	h := &openHandle{size: fi.Size(), path: req.Path}
	if fe, _ := s.scheduleFetch(fetchTask{key: req.Path, path: req.Path}, true); fe != nil {
		h.fe = fe
	} else if err := s.promote(h); err != nil {
		// Backpressure fallback needs its own PFS handle right away.
		return errResp(err)
	}
	fd := s.nextFD.Add(1)
	s.handles.put(fd, h)
	s.stats.opens.Add(1)
	s.stats.readThroughs.Add(1)
	s.planObserve(req.Path)
	return &transport.Response{Status: transport.StatusOK, Handle: fd, Size: fi.Size()}
}

// promote equips a cold handle with a concrete file: the committed cache
// entry when the fill landed, the PFS file otherwise. Called when the
// handle's fill is no longer consumable (committed and released, failed,
// or never created).
func (s *Server) promote(h *openHandle) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.f != nil {
		return nil
	}
	if f, release, err := s.store.Open(h.path); err == nil {
		h.f, h.release = f, release
		return nil
	}
	f, err := s.openPFS(h.path)
	if err != nil {
		return fmt.Errorf("hvac server: pfs open: %w", err)
	}
	h.f = f
	return nil
}

// leaseResponse builds a zero-copy response serving up to maxLen bytes
// of key's cached file starting at off: the payload is the fd lease
// itself (released by the transport after the write), so warm bytes can
// leave via sendfile without a userspace copy. Returns nil when the key
// cannot be leased — the caller serves through its pooled path instead.
// The byte count mirrors ReadAt-at-EOF semantics: reads past the end
// serve the available prefix (possibly empty) as a short, OK response.
func (s *Server) leaseResponse(key string, off, maxLen int64) (*transport.Response, int64) {
	lz, err := s.store.Lease(key)
	if err != nil {
		return nil, 0
	}
	n := lz.Size() - off
	if n < 0 {
		n = 0
	}
	if n > maxLen {
		n = maxLen
	}
	resp := transport.AcquireResponse()
	resp.Status = transport.StatusOK
	resp.Size = n
	if n == 0 {
		lz.Release()
		return resp, 0
	}
	resp.SetPayloadFile(lz.File(), off, n, lz, &s.zc)
	return resp, n
}

// readHandle serves a ranged read on an open handle: directly from the
// handle's file when it has one, else from the in-flight fill it is
// attached to, promoting to the committed cache entry (or the PFS) when
// the fill is gone.
func (s *Server) readHandle(h *openHandle, buf []byte, off int64) (int, error) {
	if h.fe == nil {
		return h.f.ReadAt(buf, off)
	}
	h.mu.Lock()
	f := h.f
	h.mu.Unlock()
	if f != nil {
		return f.ReadAt(buf, off)
	}
	select {
	case <-h.fe.ready:
	case <-s.stop:
		return 0, errServerClosed
	}
	if fl := h.fe.fill; fl != nil && fl.Acquire() {
		n, err := fl.ReadAt(buf, off)
		fl.Release()
		if err == nil || err == io.EOF {
			return n, err
		}
		// The fill aborted mid-stream: promote and re-read below.
	}
	if err := s.promote(h); err != nil {
		return 0, err
	}
	h.mu.Lock()
	f = h.f
	h.mu.Unlock()
	return f.ReadAt(buf, off)
}

// handleRead serves a ranged read on an open handle. The warm path is
// allocation-free: the payload buffer is pooled (owned by the response,
// recycled by the transport loop after the vectored write), the handle
// lookup takes a sharded read lock, and the counters are atomics.
//
//hvac:pair-split served whole-file handle reads are outside the identity: their Hits/ReadThroughs sourcing was counted at open
func (s *Server) handleRead(req *transport.Request) *transport.Response {
	h, ok := s.handles.get(req.Handle)
	if !ok {
		return errResp(fmt.Errorf("hvac server: bad handle %d", req.Handle))
	}
	if err := checkReadLen(req.Len); err != nil {
		return errResp(err)
	}
	// Zero-copy warm serve: a cache-backed handle (h.release pins the
	// index entry, so the key cannot have been evicted) is served via a
	// fresh fd lease and sendfile instead of a pooled pread. Cold
	// (serve-from-fill) handles keep the watermark path below.
	if s.cfg.ZeroCopy && h.fe == nil && h.release != nil {
		if resp, n := s.leaseResponse(h.path, req.Off, req.Len); resp != nil {
			s.stats.reads.Add(1)
			s.stats.bytesServed.Add(n)
			return resp
		}
	}
	resp := transport.AcquireResponse()
	buf := resp.Grab(int(req.Len))
	n, err := s.readHandle(h, buf, req.Off)
	if err != nil && err != io.EOF {
		resp.Release()
		return errResp(err)
	}
	s.stats.reads.Add(1)
	s.stats.bytesServed.Add(int64(n))
	resp.Status = transport.StatusOK
	resp.Size = int64(n)
	resp.Data = buf[:n]
	return resp
}

func (s *Server) handleClose(req *transport.Request) *transport.Response {
	h, ok := s.handles.take(req.Handle)
	if !ok {
		return errResp(fmt.Errorf("hvac server: bad handle %d", req.Handle))
	}
	s.stats.closes.Add(1)
	h.mu.Lock()
	f := h.f
	h.mu.Unlock()
	var err error
	if f != nil {
		err = f.Close()
	}
	if h.release != nil {
		h.release()
	}
	if err != nil {
		return errResp(fmt.Errorf("hvac server: close handle %d: %w", req.Handle, err))
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handlePrefetch enqueues a background fill of the file without opening
// it — the pre-population path that erases the first-epoch overhead the
// paper leaves to future work (§IV-C). Prefetch hints ride the
// low-priority queue: demand misses preempt them, and a full queue drops
// the hint rather than blocking the handler. A hint with Len > 0 names
// one segment (replica warming forwards segment fills this way); it is
// only honoured when this server caches at the same segment size.
func (s *Server) handlePrefetch(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if req.Len > 0 {
		segSize := s.cfg.SegmentSize
		if segSize <= 0 || req.Len != segSize || req.Off%segSize != 0 {
			return errResp(fmt.Errorf("hvac server: segment hint [%d,%d) does not match segment size %d", req.Off, req.Off+req.Len, segSize))
		}
		segIdx := req.Off / segSize
		key := segKey(req.Path, segIdx)
		if !s.store.Contains(key) {
			s.scheduleFetch(fetchTask{key: key, path: req.Path, off: req.Off, len: segSize}, false)
		}
		return &transport.Response{Status: transport.StatusOK}
	}
	if !s.store.Contains(req.Path) {
		s.scheduleFetch(fetchTask{key: req.Path, path: req.Path}, false)
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handleReadAt serves a stateless segment read: the requested byte range
// must lie within one segment; the segment is served from the cache when
// resident — through the store's shared-handle cache, so a warm segment
// read costs one pread, not an open/read/close triple. A miss registers
// the segment with the data-mover and is served from the in-flight fill;
// only queue backpressure degrades it to handler-side read-through.
func (s *Server) handleReadAt(req *transport.Request) *transport.Response {
	segSize := s.cfg.SegmentSize
	if segSize <= 0 {
		return errResp(errors.New("hvac server: segment-level caching not enabled"))
	}
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if err := checkReadLen(req.Len); err != nil {
		return errResp(err)
	}
	segIdx := req.Off / segSize
	if (req.Off+req.Len-1)/segSize != segIdx && req.Len > 0 {
		return errResp(fmt.Errorf("hvac server: range [%d,%d) crosses a segment boundary", req.Off, req.Off+req.Len))
	}
	key := segKey(req.Path, segIdx)
	s.planObserve(key)
	// Zero-copy warm serve: lease the resident segment and let sendfile
	// move it. A failed lease (not cached, or evicted) falls through to
	// the pooled path, whose own Contains re-probe routes to the miss
	// handling.
	if s.cfg.ZeroCopy {
		if resp, n := s.leaseResponse(key, req.Off-segIdx*segSize, req.Len); resp != nil {
			s.stats.reads.Add(1)
			s.stats.hits.Add(1)
			s.stats.bytesServed.Add(n)
			return resp
		}
	}
	resp := transport.AcquireResponse()
	buf := resp.Grab(int(req.Len))

	if s.store.Contains(key) {
		n, rerr := s.store.ReadAt(key, buf, req.Off-segIdx*segSize)
		if rerr == nil || rerr == io.EOF {
			s.stats.reads.Add(1)
			s.stats.hits.Add(1)
			s.stats.bytesServed.Add(int64(n))
			resp.Status = transport.StatusOK
			resp.Size = int64(n)
			resp.Data = buf[:n]
			return resp
		}
		// Evicted (or the cached copy went bad) between Contains and
		// ReadAt: fall through to the miss path, which serves the same
		// bytes from the PFS.
	}
	// Serve-from-fill: register the segment and read the range out of the
	// fill as it lands — the mover's pass is the only PFS read.
	if fe, _ := s.scheduleFetch(fetchTask{key: key, path: req.Path, off: segIdx * segSize, len: segSize}, true); fe != nil {
		select {
		case <-fe.ready:
		case <-s.stop:
			resp.Release()
			return errResp(errServerClosed)
		}
		if fl := fe.fill; fl != nil && fl.Acquire() {
			n, rerr := fl.ReadAt(buf, req.Off-segIdx*segSize)
			fl.Release()
			if rerr == nil || rerr == io.EOF {
				s.stats.reads.Add(1)
				s.stats.readThroughs.Add(1)
				s.stats.bytesServed.Add(int64(n))
				resp.Status = transport.StatusOK
				resp.Size = int64(n)
				resp.Data = buf[:n]
				return resp
			}
		}
		// The fill was already retired (small segments commit before the
		// handler attaches) or failed after committing nothing: a committed
		// entry serves the same bytes. Still a read-through — this request
		// is what pulled the segment off the PFS.
		if n, rerr := s.store.ReadAt(key, buf, req.Off-segIdx*segSize); rerr == nil || rerr == io.EOF {
			s.stats.reads.Add(1)
			s.stats.readThroughs.Add(1)
			s.stats.bytesServed.Add(int64(n))
			resp.Status = transport.StatusOK
			resp.Size = int64(n)
			resp.Data = buf[:n]
			return resp
		}
	}
	// Read-through from the PFS: backpressure or fill failure.
	f, err := s.openPFS(req.Path)
	if err != nil {
		resp.Release()
		return errResp(fmt.Errorf("hvac server: pfs open: %w", err))
	}
	n, rerr := f.ReadAt(buf, req.Off)
	_ = f.Close() // read-only handle; the ReadAt result is what matters
	if rerr != nil && rerr != io.EOF {
		resp.Release()
		return errResp(rerr)
	}
	s.stats.reads.Add(1)
	s.stats.readThroughs.Add(1)
	s.stats.bytesServed.Add(int64(n))
	resp.Status = transport.StatusOK
	resp.Size = int64(n)
	resp.Data = buf[:n]
	return resp
}

// handleReadBatch serves a scatter-gather whole-file read (or, with
// BatchFlagPrefetch, schedules background fills): one RPC, per-entry
// statuses, never more than BatchResponseBudget payload bytes. Entries
// that would overflow the frame budget are answered StatusAgain and
// fetched individually by the client; per-entry failures degrade only
// their own path.
func (s *Server) handleReadBatch(req *transport.Request) *transport.Response {
	paths, err := transport.DecodeBatchPaths(req.Path)
	if err != nil {
		return errResp(err)
	}
	if req.Handle&transport.BatchFlagPrefetch != 0 {
		out := make([]byte, 0, len(paths)*8)
		for _, p := range paths {
			if err := s.allowed(p); err != nil {
				out = transport.AppendBatchEntry(out, transport.StatusError, []byte(err.Error()))
				continue
			}
			if !s.store.Contains(p) {
				s.scheduleFetch(fetchTask{key: p, path: p}, false)
			}
			out = transport.AppendBatchEntry(out, transport.StatusOK, nil)
		}
		return &transport.Response{Status: transport.StatusOK, Size: int64(len(paths)), Data: out}
	}
	var out []byte
	for _, p := range paths {
		room := transport.BatchResponseBudget - len(out)
		data, hit, err := s.readWhole(p, room)
		switch {
		case err == errBatchAgain:
			out = transport.AppendBatchEntry(out, transport.StatusAgain, nil)
		case err != nil:
			out = transport.AppendBatchEntry(out, transport.StatusError, []byte(err.Error()))
		default:
			out = transport.AppendBatchEntry(out, transport.StatusOK, data)
			s.stats.batchEntries.Add(1)
			s.stats.bytesServed.Add(int64(len(data)))
			if hit {
				s.stats.hits.Add(1)
			} else {
				s.stats.readThroughs.Add(1)
			}
			s.planObserve(p)
		}
	}
	return &transport.Response{Status: transport.StatusOK, Size: int64(len(paths)), Data: out}
}

// errBatchAgain marks a batch entry that did not fit the response frame
// budget; the client re-reads it individually.
var errBatchAgain = errors.New("hvac server: batch entry over frame budget")

// readWhole returns path's full content for a batch entry, serving warm
// keys from the cache and cold ones from the single-flighted in-flight
// fill. room bounds the payload this entry may add to the response.
func (s *Server) readWhole(path string, room int) (data []byte, hit bool, err error) {
	if err := s.allowed(path); err != nil {
		return nil, false, err
	}
	if size, ok := s.store.Size(path); ok {
		if size > int64(room) {
			return nil, false, errBatchAgain
		}
		buf := make([]byte, size)
		if n, rerr := s.store.ReadAt(path, buf, 0); rerr == nil || rerr == io.EOF {
			return buf[:n], true, nil
		}
		// Evicted between Size and ReadAt: continue on the miss path.
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, false, fmt.Errorf("hvac server: pfs stat: %w", err)
	}
	if fi.Size() > int64(room) {
		return nil, false, errBatchAgain
	}
	buf := make([]byte, fi.Size())
	if fe, _ := s.scheduleFetch(fetchTask{key: path, path: path}, true); fe != nil {
		select {
		case <-fe.ready:
		case <-s.stop:
			return nil, false, errServerClosed
		}
		if fl := fe.fill; fl != nil && fl.Acquire() {
			n, rerr := fl.ReadAt(buf, 0)
			fl.Release()
			if rerr == nil || rerr == io.EOF {
				return buf[:n], false, nil
			}
		}
		// Fill gone: committed already, or failed. Try the cache once.
		if n, rerr := s.store.ReadAt(path, buf, 0); rerr == nil || rerr == io.EOF {
			return buf[:n], false, nil
		}
	}
	// Backpressure or fill failure: handler-side read-through.
	f, err := s.openPFS(path)
	if err != nil {
		return nil, false, fmt.Errorf("hvac server: pfs open: %w", err)
	}
	n, rerr := f.ReadAt(buf, 0)
	_ = f.Close() // read-only handle; the ReadAt result is what matters
	if rerr != nil && rerr != io.EOF {
		return nil, false, rerr
	}
	return buf[:n], false, nil
}

func (s *Server) handleStat(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if size, ok := s.store.Size(req.Path); ok {
		return &transport.Response{Status: transport.StatusOK, Size: size}
	}
	fi, err := os.Stat(req.Path)
	if err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK, Size: fi.Size()}
}
