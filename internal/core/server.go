// Package core implements HVAC itself — the paper's contribution: a
// client/server read-only cache (§III).
//
// Server side: RPC handlers enqueue forwarded file I/O onto a shared FIFO
// queue drained by dedicated data-mover workers (§III-D). On the first
// read of a file the data-mover copies it from the PFS to the node-local
// store; subsequent reads are served from the cache, bypassing the PFS
// entirely. A file is copied at most once even under concurrent requests.
//
// Client side: an interception layer redirects <open, read, close> for
// paths under the dataset directory (the HVAC_DATASET_DIR contract of
// §III-C) to the server that "homes" the file by hashing (§III-E),
// falling back to the PFS when a server is unreachable.
//
// Both halves exist twice: the real mode below (goroutines, TCP, actual
// files) and a simulated mode (sim*.go) used to reproduce the paper's
// Summit-scale experiments; the placement, queueing and caching logic is
// shared.
//
// The request path is engineered to be allocation- and contention-free
// when warm (DESIGN.md §9): stats are typed atomics, the handle table is
// sharded (handles.go), payload buffers are pooled (transport.Response
// ownership), and the only mutex left — Server.mu — guards just the
// data-mover dedup map, off the read path entirely.
package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/metrics"
	"hvac/internal/transport"
)

// ServerConfig configures a real-mode HVAC server instance.
type ServerConfig struct {
	// ListenAddr is the TCP address to serve on ("127.0.0.1:0" for tests).
	ListenAddr string
	// PFSDir is the parallel-file-system directory this server may cache
	// from; requests outside it are refused.
	PFSDir string
	// CacheDir is the node-local storage directory for cached copies.
	CacheDir string
	// CacheCapacity is the cache size in bytes.
	CacheCapacity int64
	// Policy is the eviction policy; nil means the paper's random policy.
	Policy cachestore.Policy
	// Movers is the number of data-mover workers (the paper dedicates one
	// thread per server instance; multi-instance deployments i×1 can
	// equivalently run one server with i movers).
	Movers int
	// SegmentSize > 0 enables segment-level caching (§III-E): files are
	// cached and served in SegmentSize-byte segments, each homed
	// independently, which balances load for datasets with highly skewed
	// file sizes. Clients must use the same value.
	SegmentSize int64
	// WriteTimeout bounds each response write so a dead client cannot pin
	// a connection goroutine; 0 means transport.DefaultWriteTimeout,
	// negative disables the deadline.
	WriteTimeout time.Duration
}

// ServerStats counts server-side activity. The counters satisfy an
// accounting identity checked by the stress tests: every whole-file open
// and every segment read is served either from the cache (Hits) or read
// through from the PFS (ReadThroughs), so
//
//	Hits + ReadThroughs == Opens + segment Reads
//
// Misses counts completed background copies, which lag ReadThroughs (the
// data-mover dedups concurrent first reads and runs behind the request
// path).
type ServerStats struct {
	Opens, Reads, Closes int64
	Hits, Misses         int64
	ReadThroughs         int64
	BytesServed          int64
	BytesFetched         int64
	Evictions            int64
}

// serverCounters is the live form of ServerStats: typed atomics, so the
// read path bumps them without any lock (and without tripping the
// atomicmix analyzer — plain access to these fields is unrepresentable).
type serverCounters struct {
	opens, reads, closes atomic.Int64
	hits, misses         atomic.Int64
	readThroughs         atomic.Int64
	bytesServed          atomic.Int64
	bytesFetched         atomic.Int64
}

func (c *serverCounters) snapshot() ServerStats {
	return ServerStats{
		Opens:        c.opens.Load(),
		Reads:        c.reads.Load(),
		Closes:       c.closes.Load(),
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		ReadThroughs: c.readThroughs.Load(),
		BytesServed:  c.bytesServed.Load(),
		BytesFetched: c.bytesFetched.Load(),
	}
}

type fetchResult struct {
	done chan struct{}
	err  error
}

// fetchTask names one data-mover copy: a whole file (Len == 0) or one
// segment of it.
type fetchTask struct {
	key  string // cache-store key ("path" or "path@segIdx")
	path string
	off  int64
	len  int64 // 0 = to EOF (whole file)
}

type openHandle struct {
	f       *os.File
	release func() // nil for direct (read-through) PFS handles
	size    int64
}

// Server is a real-mode HVAC server instance.
type Server struct {
	cfg   ServerConfig
	store *cachestore.Store
	rpc   *transport.Server

	fetchQ  chan fetchTask
	moverWG sync.WaitGroup

	handles handleTable
	nextFD  atomic.Int64
	stats   serverCounters

	// mu guards only the data-mover dedup state below — nothing on the
	// read path takes it.
	mu       sync.Mutex
	idle     *sync.Cond // signalled when inflight drains to empty
	inflight map[string]*fetchResult
	closed   bool

	latOpen  metrics.Histogram
	latRead  metrics.Histogram
	latClose metrics.Histogram
	latCopy  metrics.Histogram
}

// StartServer launches an HVAC server. Stop it with Close.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.PFSDir == "" {
		return nil, errors.New("core: ServerConfig.PFSDir is required")
	}
	if cfg.Movers <= 0 {
		cfg.Movers = 1
	}
	if cfg.CacheCapacity <= 0 {
		cfg.CacheCapacity = 1 << 40
	}
	abs, err := filepath.Abs(cfg.PFSDir)
	if err != nil {
		return nil, err
	}
	cfg.PFSDir = abs
	store, err := cachestore.NewStore(cfg.CacheDir, cfg.CacheCapacity, cfg.Policy)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:      cfg,
		store:    store,
		fetchQ:   make(chan fetchTask, 1024),
		inflight: make(map[string]*fetchResult),
	}
	s.idle = sync.NewCond(&s.mu)
	for i := 0; i < cfg.Movers; i++ {
		s.moverWG.Add(1)
		go s.mover()
	}
	rpcSrv, err := transport.ServeWith(cfg.ListenAddr, s.handle, transport.ServerOptions{WriteTimeout: cfg.WriteTimeout})
	if err != nil {
		close(s.fetchQ)
		s.moverWG.Wait()
		return nil, err
	}
	s.rpc = rpcSrv
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.rpc.Addr() }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() ServerStats {
	st := s.stats.snapshot()
	_, _, ev := s.store.Stats()
	st.Evictions = ev
	return st
}

// CachedFiles reports the number of files currently cached.
func (s *Server) CachedFiles() int { return s.store.Len() }

// CachedBytes reports the bytes currently cached.
func (s *Server) CachedBytes() int64 { return s.store.Used() }

// Close tears the server down and purges the cache, mirroring the
// job-coupled life cycle of §III-D.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()

	s.rpc.Close()
	close(s.fetchQ)
	s.moverWG.Wait()
	for _, h := range s.handles.drain() {
		_ = h.f.Close() // teardown is best-effort: the job is over
		if h.release != nil {
			h.release()
		}
	}
	_ = s.store.Purge()          // best-effort: leftover cache files are re-usable garbage
	_ = os.Remove(s.store.Dir()) // fails harmlessly if the purge left files behind
}

// mover is the data-mover worker: it drains the shared FIFO queue and
// copies requested files from the PFS into the node-local store in the
// background, while first reads are served read-through from the PFS.
func (s *Server) mover() {
	defer s.moverWG.Done()
	for task := range s.fetchQ {
		start := time.Now()
		err := s.copyIn(task)
		s.latCopy.Observe(time.Since(start))
		if err == nil {
			s.stats.misses.Add(1) // a completed first-read copy
		}
		s.mu.Lock()
		fr := s.inflight[task.key]
		if fr != nil {
			fr.err = err
			close(fr.done)
			delete(s.inflight, task.key)
		}
		if len(s.inflight) == 0 {
			s.idle.Broadcast()
		}
		s.mu.Unlock()
	}
}

// WaitIdle blocks until every in-flight background copy has completed.
// Useful for tests and for measuring clean warm-epoch performance. The
// movers signal the condition when the inflight map drains, so waiting
// does not re-scan or poll.
func (s *Server) WaitIdle() {
	s.mu.Lock()
	for len(s.inflight) > 0 {
		s.idle.Wait()
	}
	s.mu.Unlock()
}

func (s *Server) copyIn(task fetchTask) error {
	src, err := os.Open(task.path)
	if err != nil {
		return fmt.Errorf("hvac server: pfs open: %w", err)
	}
	defer src.Close()
	fi, err := src.Stat()
	if err != nil {
		return fmt.Errorf("hvac server: pfs stat: %w", err)
	}
	size := fi.Size() - task.off
	if size < 0 {
		size = 0
	}
	if task.len > 0 && task.len < size {
		size = task.len
	}
	var rd io.Reader = src
	if task.off > 0 || task.len > 0 {
		rd = io.NewSectionReader(src, task.off, size)
	}
	if err := s.store.Put(task.key, size, rd); err != nil {
		return fmt.Errorf("hvac server: cache fill: %w", err)
	}
	s.stats.bytesFetched.Add(size)
	return nil
}

// scheduleFetch enqueues a background copy of path onto the data-mover
// FIFO, once per file (the §III-D mutex-guarded queue guarantees a file
// is copied only once even under concurrent first reads).
func (s *Server) scheduleFetch(task fetchTask) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if _, ok := s.inflight[task.key]; ok {
		s.mu.Unlock()
		return
	}
	fr := &fetchResult{done: make(chan struct{})}
	s.inflight[task.key] = fr
	s.mu.Unlock()
	s.fetchQ <- task
}

func errResp(err error) *transport.Response {
	return &transport.Response{Status: transport.StatusError, Err: err.Error()}
}

// checkReadLen bounds a wire-supplied read length before it sizes a
// buffer: negative lengths are nonsense and anything above half a frame
// cannot be answered (the response frame must also carry the header and
// tail). Both handleRead and handleReadAt validate through this one
// helper.
func checkReadLen(n int64) error {
	if n < 0 || n > transport.MaxFrame/2 {
		return fmt.Errorf("hvac server: read length %d out of range", n)
	}
	return nil
}

// segKey names one cached segment. strconv instead of fmt keeps it off
// the Sprintf slow path — this runs per segment read on client and
// server.
func segKey(path string, seg int64) string {
	return path + "@" + strconv.FormatInt(seg, 10)
}

// handle dispatches one RPC, recording per-operation service latency.
func (s *Server) handle(req *transport.Request) *transport.Response {
	start := time.Now()
	switch req.Op {
	case transport.OpPing:
		return &transport.Response{Status: transport.StatusOK}
	case transport.OpOpen:
		defer func() { s.latOpen.Observe(time.Since(start)) }()
		return s.handleOpen(req)
	case transport.OpRead:
		defer func() { s.latRead.Observe(time.Since(start)) }()
		return s.handleRead(req)
	case transport.OpClose:
		defer func() { s.latClose.Observe(time.Since(start)) }()
		return s.handleClose(req)
	case transport.OpStat:
		return s.handleStat(req)
	case transport.OpPrefetch:
		return s.handlePrefetch(req)
	case transport.OpReadAt:
		defer func() { s.latRead.Observe(time.Since(start)) }()
		return s.handleReadAt(req)
	default:
		return errResp(fmt.Errorf("hvac server: unknown op %d", req.Op))
	}
}

// LatencySummary renders the server's per-operation service-time
// histograms (open/read/close handling plus data-mover copies).
func (s *Server) LatencySummary() string {
	return fmt.Sprintf("open: %s\nread: %s\nclose: %s\ncopy: %s",
		s.latOpen.String(), s.latRead.String(), s.latClose.String(), s.latCopy.String())
}

// OpenLatency exposes the open-operation histogram.
func (s *Server) OpenLatency() *metrics.Histogram { return &s.latOpen }

// ReadLatency exposes the read-operation histogram.
func (s *Server) ReadLatency() *metrics.Histogram { return &s.latRead }

// CopyLatency exposes the data-mover copy histogram.
func (s *Server) CopyLatency() *metrics.Histogram { return &s.latCopy }

func (s *Server) allowed(path string) error {
	clean := filepath.Clean(path)
	if clean != s.cfg.PFSDir && !strings.HasPrefix(clean, s.cfg.PFSDir+string(filepath.Separator)) {
		return fmt.Errorf("hvac server: %s outside served dataset dir %s", path, s.cfg.PFSDir)
	}
	return nil
}

// handleOpen serves a forwarded open: from the cache when resident;
// otherwise read-through — the PFS file itself backs the handle while the
// data-mover persists a copy in the background (tee-on-first-read), so the
// first epoch proceeds at PFS concurrency instead of serialising on the
// mover thread.
func (s *Server) handleOpen(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if s.store.Contains(req.Path) {
		f, release, err := s.store.Open(req.Path)
		if err == nil {
			fi, serr := f.Stat()
			if serr != nil {
				_ = f.Close() // the stat failure is the error to report
				release()
				return errResp(serr)
			}
			fd := s.nextFD.Add(1)
			s.handles.put(fd, &openHandle{f: f, release: release, size: fi.Size()})
			s.stats.opens.Add(1)
			s.stats.hits.Add(1)
			return &transport.Response{Status: transport.StatusOK, Handle: fd, Size: fi.Size()}
		}
		// Evicted between Contains and Open: fall through to read-through.
	}
	f, err := os.Open(req.Path)
	if err != nil {
		return errResp(fmt.Errorf("hvac server: pfs open: %w", err))
	}
	fi, err := f.Stat()
	if err != nil {
		_ = f.Close() // the stat failure is the error to report
		return errResp(err)
	}
	s.scheduleFetch(fetchTask{key: req.Path, path: req.Path})
	fd := s.nextFD.Add(1)
	s.handles.put(fd, &openHandle{f: f, size: fi.Size()})
	s.stats.opens.Add(1)
	s.stats.readThroughs.Add(1)
	return &transport.Response{Status: transport.StatusOK, Handle: fd, Size: fi.Size()}
}

// handleRead serves a ranged read on an open handle. The warm path is
// allocation-free: the payload buffer is pooled (owned by the response,
// recycled by the transport loop after the vectored write), the handle
// lookup takes a sharded read lock, and the counters are atomics.
func (s *Server) handleRead(req *transport.Request) *transport.Response {
	h, ok := s.handles.get(req.Handle)
	if !ok {
		return errResp(fmt.Errorf("hvac server: bad handle %d", req.Handle))
	}
	if err := checkReadLen(req.Len); err != nil {
		return errResp(err)
	}
	resp := transport.AcquireResponse()
	buf := resp.Grab(int(req.Len))
	n, err := h.f.ReadAt(buf, req.Off)
	if err != nil && err != io.EOF {
		resp.Release()
		return errResp(err)
	}
	s.stats.reads.Add(1)
	s.stats.bytesServed.Add(int64(n))
	resp.Status = transport.StatusOK
	resp.Size = int64(n)
	resp.Data = buf[:n]
	return resp
}

func (s *Server) handleClose(req *transport.Request) *transport.Response {
	h, ok := s.handles.take(req.Handle)
	if !ok {
		return errResp(fmt.Errorf("hvac server: bad handle %d", req.Handle))
	}
	s.stats.closes.Add(1)
	err := h.f.Close()
	if h.release != nil {
		h.release()
	}
	if err != nil {
		return errResp(fmt.Errorf("hvac server: close handle %d: %w", req.Handle, err))
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handlePrefetch enqueues a background copy of the file without opening
// it — the pre-population path that erases the first-epoch overhead the
// paper leaves to future work (§IV-C).
func (s *Server) handlePrefetch(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if !s.store.Contains(req.Path) {
		s.scheduleFetch(fetchTask{key: req.Path, path: req.Path})
	}
	return &transport.Response{Status: transport.StatusOK}
}

// handleReadAt serves a stateless segment read: the requested byte range
// must lie within one segment; the segment is served from the cache when
// resident — through the store's shared-handle cache, so a warm segment
// read costs one pread, not an open/read/close triple — and read through
// from the PFS otherwise (with a background segment copy scheduled).
func (s *Server) handleReadAt(req *transport.Request) *transport.Response {
	segSize := s.cfg.SegmentSize
	if segSize <= 0 {
		return errResp(errors.New("hvac server: segment-level caching not enabled"))
	}
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if err := checkReadLen(req.Len); err != nil {
		return errResp(err)
	}
	segIdx := req.Off / segSize
	if (req.Off+req.Len-1)/segSize != segIdx && req.Len > 0 {
		return errResp(fmt.Errorf("hvac server: range [%d,%d) crosses a segment boundary", req.Off, req.Off+req.Len))
	}
	key := segKey(req.Path, segIdx)
	resp := transport.AcquireResponse()
	buf := resp.Grab(int(req.Len))

	if s.store.Contains(key) {
		n, rerr := s.store.ReadAt(key, buf, req.Off-segIdx*segSize)
		if rerr == nil || rerr == io.EOF {
			s.stats.reads.Add(1)
			s.stats.hits.Add(1)
			s.stats.bytesServed.Add(int64(n))
			resp.Status = transport.StatusOK
			resp.Size = int64(n)
			resp.Data = buf[:n]
			return resp
		}
		// Evicted (or the cached copy went bad) between Contains and
		// ReadAt: fall through to read-through, which serves the same
		// bytes from the PFS.
	}
	// Read-through from the PFS; tee a background segment copy.
	f, err := os.Open(req.Path)
	if err != nil {
		resp.Release()
		return errResp(fmt.Errorf("hvac server: pfs open: %w", err))
	}
	n, rerr := f.ReadAt(buf, req.Off)
	_ = f.Close() // read-only handle; the ReadAt result is what matters
	if rerr != nil && rerr != io.EOF {
		resp.Release()
		return errResp(rerr)
	}
	s.scheduleFetch(fetchTask{key: key, path: req.Path, off: segIdx * segSize, len: segSize})
	s.stats.reads.Add(1)
	s.stats.readThroughs.Add(1)
	s.stats.bytesServed.Add(int64(n))
	resp.Status = transport.StatusOK
	resp.Size = int64(n)
	resp.Data = buf[:n]
	return resp
}

func (s *Server) handleStat(req *transport.Request) *transport.Response {
	if err := s.allowed(req.Path); err != nil {
		return errResp(err)
	}
	if size, ok := s.store.Size(req.Path); ok {
		return &transport.Response{Status: transport.StatusOK, Size: size}
	}
	fi, err := os.Stat(req.Path)
	if err != nil {
		return errResp(err)
	}
	return &transport.Response{Status: transport.StatusOK, Size: fi.Size()}
}
