package core

import (
	"fmt"
	"time"

	"hvac/internal/pfs"
	"hvac/internal/place"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/trace"
	"hvac/internal/vfs"
)

// SimClientStats counts simulated client activity.
type SimClientStats struct {
	Opens       int64
	LocalOpens  int64 // home server co-located on this node
	RemoteOpens int64
	Fallbacks   int64 // served from GPFS after server failure
	Failovers   int64 // served by a non-primary replica
	BytesRead   int64
}

// SimClient is the interception layer on one simulated compute node: the
// LD_PRELOAD-equivalent that forwards <open, read, close> to the home
// HVAC server instance chosen by hashing (§III-E). It implements vfs.FS,
// so workloads swap between GPFS, XFS-on-NVMe and HVAC without change —
// the portability property the paper claims.
type SimClient struct {
	eng      *sim.Engine
	node     simnet.NodeID
	fabric   *simnet.Fabric
	servers  []*SimServer
	view     *place.View
	placeFn  func(path string) int
	replicas func(path string) []int
	gpfsC    *pfs.Client // PFS fallback path
	costs    SimCosts
	segSize  int64
	tracer   *trace.Recorder

	handles *vfs.HandleTable
	hServer map[vfs.Handle]*SimServer
	hCached map[vfs.Handle]bool
	hSeg    map[vfs.Handle]bool
	hFall   map[vfs.Handle]vfs.Handle
	stats   SimClientStats
}

// NewSimClient builds a client on node addressing the given global server
// list. policy nil means the paper's ModHash; fallback may be nil to make
// server failures fatal.
func NewSimClient(eng *sim.Engine, node simnet.NodeID, fabric *simnet.Fabric,
	servers []*SimServer, policy place.Policy, replicaCount int,
	g *pfs.GPFS, costs SimCosts) *SimClient {
	if policy == nil {
		policy = place.ModHash{}
	}
	if replicaCount < 1 {
		replicaCount = 1
	}
	view := place.NewView(policy, len(servers))
	c := &SimClient{
		eng:     eng,
		node:    node,
		fabric:  fabric,
		servers: servers,
		view:    view,
		placeFn: func(path string) int { return view.Place(path) },
		replicas: func(path string) []int {
			return view.Replicas(path, replicaCount)
		},
		costs:   costs,
		handles: vfs.NewHandleTable(),
		hServer: make(map[vfs.Handle]*SimServer),
		hCached: make(map[vfs.Handle]bool),
		hSeg:    make(map[vfs.Handle]bool),
		hFall:   make(map[vfs.Handle]vfs.Handle),
	}
	if g != nil {
		c.gpfsC = g.Client(fabric, node)
	}
	return c
}

// SetTracer attaches an I/O trace recorder; nil disables tracing.
func (c *SimClient) SetTracer(r *trace.Recorder) { c.tracer = r }

// record emits one trace event in virtual time.
func (c *SimClient) record(p *sim.Proc, op trace.Op, tier trace.Tier, start sim.Time, bytes int64, path string) {
	if c.tracer == nil {
		return
	}
	c.tracer.Record(trace.Event{
		Start:    time.Duration(start),
		Duration: p.Now().Sub(start),
		Op:       op,
		Tier:     tier,
		Bytes:    bytes,
		Path:     path,
	})
}

// tierOf classifies how a handle is being served.
func (c *SimClient) tierOf(h vfs.Handle) trace.Tier {
	if _, ok := c.hFall[h]; ok {
		return trace.TierPFS
	}
	if srv, ok := c.hServer[h]; ok {
		if !c.hCached[h] {
			return trace.TierPFS // read-through
		}
		if srv.node == c.node {
			return trace.TierCacheLocal
		}
		return trace.TierCacheRemote
	}
	return trace.TierUnknown
}

// SetSegmentSize enables segment-level caching (§III-E): reads are split
// into segSize-byte segments, each homed independently.
func (c *SimClient) SetSegmentSize(segSize int64) { c.segSize = segSize }

// segmentServer returns the home server of segment seg of path.
func (c *SimClient) segmentServer(path string, seg int64) *SimServer {
	return c.servers[c.placeFn(fmt.Sprintf("%s@%d", path, seg))]
}

// SetPlacement overrides the home-server function (the Fig. 13 experiment
// forces local/remote placement fractions this way).
func (c *SimClient) SetPlacement(fn func(path string) int) {
	c.placeFn = fn
	c.replicas = func(path string) []int { return []int{fn(path)} }
}

// View returns the client's versioned membership view. Leave/Join steer
// placement away from departed servers with minimal key movement — the
// sim mirror of Client.View in real mode. Overridden by SetPlacement.
func (c *SimClient) View() *place.View { return c.view }

// Stats returns a snapshot of the client counters.
func (c *SimClient) Stats() SimClientStats { return c.stats }

// Node returns the client's compute node.
func (c *SimClient) Node() simnet.NodeID { return c.node }

var _ vfs.FS = (*SimClient)(nil)

// Name implements vfs.FS.
func (c *SimClient) Name() string { return "hvac" }

func (c *SimClient) rpc(p *sim.Proc, srv *SimServer) {
	if c.fabric != nil {
		c.fabric.RPC(p, c.node, srv.node, c.costs.RPCBytes, c.costs.RPCBytes)
	}
}

// groupByServer splits paths by home server into ordered slices indexed
// by server position — not a map keyed by server, whose iteration order
// would make the simulation nondeterministic.
func (c *SimClient) groupByServer(paths []string) [][]string {
	groups := make([][]string, len(c.servers))
	for _, path := range paths {
		home := c.placeFn(path)
		groups[home] = append(groups[home], path)
	}
	return groups
}

// Prefetch asks each of a file's R homes to pre-populate its cache
// without reading the file — the §IV-C pre-population that hides the
// epoch-1 copy, extended to warm every replica so a failover target is
// already hot. The hints ride one batched RPC per server; failed servers
// are skipped.
func (c *SimClient) Prefetch(p *sim.Proc, paths []string) {
	groups := make([][]string, len(c.servers))
	for _, path := range paths {
		for _, si := range c.replicas(path) {
			groups[si] = append(groups[si], path)
		}
	}
	for si, group := range groups {
		if len(group) == 0 {
			continue
		}
		srv := c.servers[si]
		c.rpc(p, srv)
		_ = srv.prefetchBatch(p, group)
	}
}

// InstallPlan distributes an epoch access plan: order lists every path
// in global access order; each of a path's R homes receives the ordered
// sub-list it serves, one plan-install RPC per server — the sim mirror
// of Client.InstallPlan. Failed servers keep their previous plan.
func (c *SimClient) InstallPlan(p *sim.Proc, order []string, horizon int) {
	groups := make([][]string, len(c.servers))
	for _, path := range order {
		for _, si := range c.replicas(path) {
			groups[si] = append(groups[si], path)
		}
	}
	for si, group := range groups {
		if len(group) == 0 {
			continue
		}
		srv := c.servers[si]
		if srv.Failed() {
			continue
		}
		c.rpc(p, srv)
		srv.InstallPlan(group, horizon)
	}
}

// ReadBatch reads every path's full content through one scatter-gather
// RPC per home server — the batched small-file path mirrored from the
// real client. Entries on failed servers fall back to the PFS per file
// (when a fallback is configured). Returns the total bytes read.
func (c *SimClient) ReadBatch(p *sim.Proc, paths []string) (int64, error) {
	p.Sleep(c.costs.ClientOverhead)
	var total int64
	for si, group := range c.groupByServer(paths) {
		if len(group) == 0 {
			continue
		}
		srv := c.servers[si]
		c.rpc(p, srv)
		n, err := srv.readBatch(p, group, c.node)
		total += n
		if err == nil {
			c.stats.BytesRead += n
			continue
		}
		if c.gpfsC == nil {
			return total, fmt.Errorf("hvac sim client: batch read: %w", err)
		}
		// Per-file PFS fallback for the group the server failed.
		for _, path := range group {
			h, size, gerr := c.gpfsC.Open(p, path)
			if gerr != nil {
				return total, gerr
			}
			if _, gerr = c.gpfsC.ReadAt(p, h, 0, size); gerr != nil {
				return total, gerr
			}
			if gerr = c.gpfsC.Close(p, h); gerr != nil {
				return total, gerr
			}
			c.stats.Fallbacks++
			c.stats.BytesRead += size
			total += size
		}
	}
	return total, nil
}

// Open implements vfs.FS: forward to the home server, fail over to
// replicas, and finally fall back to the PFS (if configured).
func (c *SimClient) Open(p *sim.Proc, path string) (vfs.Handle, int64, error) {
	openStart := p.Now()
	p.Sleep(c.costs.ClientOverhead)
	if c.segSize > 0 {
		srv := c.segmentServer(path, 0)
		c.rpc(p, srv)
		size, err := srv.stat(p, path)
		if err != nil {
			if c.gpfsC == nil {
				return 0, 0, err
			}
			h, sz, gerr := c.gpfsC.Open(p, path)
			if gerr != nil {
				return 0, 0, gerr
			}
			ch := c.handles.Open(path, sz)
			c.hFall[ch] = h
			c.stats.Opens++
			c.stats.Fallbacks++
			return ch, sz, nil
		}
		h := c.handles.Open(path, size)
		c.hSeg[h] = true
		c.stats.Opens++
		return h, size, nil
	}
	var lastErr error
	for i, si := range c.replicas(path) {
		srv := c.servers[si]
		c.rpc(p, srv)
		size, cached, err := srv.open(p, path)
		if err == nil {
			h := c.handles.Open(path, size)
			c.hServer[h] = srv
			c.hCached[h] = cached
			c.stats.Opens++
			if srv.node == c.node {
				c.stats.LocalOpens++
			} else {
				c.stats.RemoteOpens++
			}
			if i > 0 {
				c.stats.Failovers++
			}
			c.record(p, trace.Open, c.tierOf(h), openStart, 0, path)
			return h, size, nil
		}
		lastErr = err
		if err != errServerFailed {
			break // application error; replicas would repeat it
		}
	}
	if c.gpfsC == nil {
		return 0, 0, fmt.Errorf("hvac sim client: open %s: %w", path, lastErr)
	}
	h, size, err := c.gpfsC.Open(p, path)
	if err != nil {
		return 0, 0, err
	}
	ch := c.handles.Open(path, size)
	c.hFall[ch] = h
	c.stats.Opens++
	c.stats.Fallbacks++
	return ch, size, nil
}

// ReadAt implements vfs.FS.
func (c *SimClient) ReadAt(p *sim.Proc, h vfs.Handle, off, n int64) (int64, error) {
	path, size, err := c.handles.Get(h)
	if err != nil {
		return 0, err
	}
	if fh, ok := c.hFall[h]; ok {
		return c.gpfsC.ReadAt(p, fh, off, n)
	}
	n = vfs.ClampRead(size, off, n)
	if n == 0 {
		return 0, nil
	}
	if c.hSeg[h] {
		return c.readAtSegmented(p, path, size, off, n)
	}
	p.Sleep(c.costs.ClientOverhead)
	srv := c.hServer[h]
	c.rpc(p, srv)
	readStart := p.Now()
	if err := srv.read(p, path, off, n, size, c.hCached[h], c.node); err != nil {
		return 0, err
	}
	c.stats.BytesRead += n
	c.record(p, trace.Read, c.tierOf(h), readStart, n, path)
	return n, nil
}

// readAtSegmented splits a read across the per-segment home servers.
func (c *SimClient) readAtSegmented(p *sim.Proc, path string, size, off, n int64) (int64, error) {
	var total int64
	for total < n {
		pos := off + total
		seg := pos / c.segSize
		segStart := seg * c.segSize
		segBytes := c.segSize
		if segStart+segBytes > size {
			segBytes = size - segStart
		}
		want := n - total
		if pos+want > segStart+c.segSize {
			want = segStart + c.segSize - pos
		}
		p.Sleep(c.costs.ClientOverhead)
		srv := c.segmentServer(path, seg)
		c.rpc(p, srv)
		if err := srv.readSegment(p, fmt.Sprintf("%s@%d", path, seg), want, segBytes, c.node); err != nil {
			return total, err
		}
		total += want
		c.stats.BytesRead += want
	}
	return total, nil
}

// Close implements vfs.FS: the out-of-band teardown RPC.
func (c *SimClient) Close(p *sim.Proc, h vfs.Handle) error {
	path, _, err := c.handles.Get(h)
	if err != nil {
		return err
	}
	if seg := c.hSeg[h]; seg {
		delete(c.hSeg, h)
		_ = c.handles.Close(h) // cannot fail: Get(h) above validated the handle
		p.Sleep(c.costs.ClientOverhead)
		_ = path
		return nil // stateless: no server-side handle
	}
	if fh, ok := c.hFall[h]; ok {
		delete(c.hFall, h)
		_ = c.handles.Close(h) // cannot fail: Get(h) above validated the handle
		return c.gpfsC.Close(p, fh)
	}
	srv := c.hServer[h]
	cached := c.hCached[h]
	delete(c.hServer, h)
	delete(c.hCached, h)
	_ = c.handles.Close(h) // cannot fail: Get(h) above validated the handle
	p.Sleep(c.costs.ClientOverhead)
	c.rpc(p, srv)
	if err := srv.close(p, path, cached); err != nil && err != errServerFailed {
		return err
	}
	return nil
}
