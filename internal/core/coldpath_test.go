package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// countingOpens installs a counting OpenPFS seam on a server config and
// returns the per-path open counter. Every PFS data pass the server
// makes — mover fill or handler read-through — goes through it.
func countingOpens(cfg *ServerConfig) *sync.Map {
	var counts sync.Map
	cfg.OpenPFS = func(path string) (*os.File, error) {
		n, _ := counts.LoadOrStore(path, new(atomic.Int64))
		n.(*atomic.Int64).Add(1)
		return os.Open(path)
	}
	return &counts
}

func opensOf(counts *sync.Map, path string) int64 {
	if n, ok := counts.Load(path); ok {
		return n.(*atomic.Int64).Load()
	}
	return 0
}

// TestColdFileSinglePFSOpen is the serve-from-fill acceptance test: a
// cold file costs exactly one PFS data pass — the data-mover's fill —
// where the pre-overhaul path cost two (the handler's read-through plus
// the mover's copy). Warm reads cost zero.
func TestColdFileSinglePFSOpen(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 8, 64<<10)
	var counts *sync.Map
	servers, cli := startCluster(t, pfsDir, 1, func(c *ServerConfig) {
		counts = countingOpens(c)
	}, nil)

	for i, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64<<10)) {
			t.Fatalf("cold read %s returned wrong bytes", p)
		}
	}
	servers[0].WaitIdle()
	for _, p := range paths {
		if n := opensOf(counts, p); n != 1 {
			t.Fatalf("cold file %s cost %d PFS opens, want exactly 1", p, n)
		}
	}

	// Warm epoch: everything from cache, zero new PFS passes.
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range paths {
		if n := opensOf(counts, p); n != 1 {
			t.Fatalf("warm read of %s grew PFS opens to %d", p, n)
		}
	}
	st := servers[0].Stats()
	if st.ReadThroughs != int64(len(paths)) || st.Hits != int64(len(paths)) {
		t.Fatalf("stats = %+v, want %d read-throughs and %d hits", st, len(paths), len(paths))
	}
}

// TestColdConcurrentSingleOpen hammers one cold file from many
// goroutines: the fill is single-flighted, so the file still costs
// exactly one PFS open and every reader gets identical bytes.
func TestColdConcurrentSingleOpen(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 1, 256<<10)
	var counts *sync.Map
	servers, cli := startCluster(t, pfsDir, 1, func(c *ServerConfig) {
		counts = countingOpens(c)
	}, nil)

	want := bytes.Repeat([]byte{0}, 256<<10)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got, err := cli.ReadAll(paths[0])
			if err != nil {
				errs[g] = err
				return
			}
			if !bytes.Equal(got, want) {
				errs[g] = fmt.Errorf("goroutine %d read wrong bytes", g)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	servers[0].WaitIdle()
	if n := opensOf(counts, paths[0]); n != 1 {
		t.Fatalf("concurrent cold reads cost %d PFS opens, want 1 (single-flight)", n)
	}
	if misses := servers[0].Stats().Misses; misses != 1 {
		t.Fatalf("misses = %d, want 1", misses)
	}
}

// TestScheduleFetchCloseRace is the regression test for the
// send-on-closed-channel window the old teardown had: scheduleFetch used
// to enqueue outside the mutex while Close closed the queue channel.
// Hammer concurrent schedulers against Close under -race; the fix keeps
// the non-blocking send under the same mutex that Close uses to flip
// closed, so no send can race the drain.
func TestScheduleFetchCloseRace(t *testing.T) {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 64, 512)

	for round := 0; round < 20; round++ {
		srv, err := StartServer(ServerConfig{
			ListenAddr: "127.0.0.1:0",
			PFSDir:     pfsDir,
			CacheDir:   filepath.Join(t.TempDir(), fmt.Sprintf("nvme%d", round)),
			Movers:     2,
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				<-start
				for i, p := range paths {
					srv.scheduleFetch(fetchTask{key: p, path: p}, (i+g)%2 == 0)
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			srv.Close()
		}()
		close(start)
		wg.Wait()
		srv.Close() // idempotent
	}
}

// TestReadBatchWarmAndCold checks the scatter-gather read end to end
// against a live cluster: a cold batch (served from fills, one PFS pass
// per file) and a warm batch return byte-identical content in path
// order, and the client accounts every file to BatchReads.
func TestReadBatchWarmAndCold(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 30, 4<<10)
	servers, cli := startCluster(t, pfsDir, 3, nil, nil)

	check := func(data [][]byte) {
		t.Helper()
		if len(data) != len(paths) {
			t.Fatalf("batch returned %d entries, want %d", len(data), len(paths))
		}
		for i := range data {
			if !bytes.Equal(data[i], bytes.Repeat([]byte{byte(i)}, 4<<10)) {
				t.Fatalf("batch entry %d has wrong bytes", i)
			}
		}
	}
	cold, err := cli.ReadBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	check(cold)
	for _, s := range servers {
		s.WaitIdle()
	}
	warm, err := cli.ReadBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	check(warm)

	st := cli.Stats()
	if st.BatchReads != int64(2*len(paths)) {
		t.Fatalf("BatchReads = %d, want %d", st.BatchReads, 2*len(paths))
	}
	if st.BatchFallbacks != 0 {
		t.Fatalf("BatchFallbacks = %d, want 0", st.BatchFallbacks)
	}
	var hits, rts, entries int64
	for _, s := range servers {
		ss := s.Stats()
		hits += ss.Hits
		rts += ss.ReadThroughs
		entries += ss.BatchEntries
	}
	if entries != int64(2*len(paths)) || rts != int64(len(paths)) || hits != int64(len(paths)) {
		t.Fatalf("server accounting: entries=%d rts=%d hits=%d, want %d/%d/%d",
			entries, rts, hits, 2*len(paths), len(paths), len(paths))
	}
}

// TestReadBatchPerEntryFallback serves a batch where one path is outside
// every server's allowed tree (but inside the client's dataset dir): the
// server answers that entry StatusError, the client falls back to the
// PFS for it alone, and the rest of the batch is served normally.
func TestReadBatchPerEntryFallback(t *testing.T) {
	root := filepath.Join(t.TempDir(), "pfs")
	pfsDir := filepath.Join(root, "dataset")
	paths := writePFS(t, pfsDir, 6, 2<<10)
	outside := filepath.Join(root, "stray.bin")
	if err := os.WriteFile(outside, bytes.Repeat([]byte{0xAB}, 2<<10), 0o644); err != nil {
		t.Fatal(err)
	}
	// Servers only serve pfsDir; the client intercepts all of root.
	_, cli := startCluster(t, pfsDir, 2, nil, func(c *ClientConfig) {
		c.DatasetDir = root
	})

	batch := append(append([]string{}, paths...), outside)
	data, err := cli.ReadBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if !bytes.Equal(data[i], bytes.Repeat([]byte{byte(i)}, 2<<10)) {
			t.Fatalf("entry %d has wrong bytes", i)
		}
	}
	if !bytes.Equal(data[len(paths)], bytes.Repeat([]byte{0xAB}, 2<<10)) {
		t.Fatal("fallback entry has wrong bytes")
	}
	st := cli.Stats()
	if st.BatchFallbacks != 1 {
		t.Fatalf("BatchFallbacks = %d, want 1", st.BatchFallbacks)
	}
	if st.BatchReads != int64(len(paths)) {
		t.Fatalf("BatchReads = %d, want %d", st.BatchReads, len(paths))
	}
}

// TestReadBatchDisableFallback turns the per-entry degradation into a
// hard error when fallback is disabled.
func TestReadBatchDisableFallback(t *testing.T) {
	root := filepath.Join(t.TempDir(), "pfs")
	pfsDir := filepath.Join(root, "dataset")
	paths := writePFS(t, pfsDir, 2, 1<<10)
	outside := filepath.Join(root, "stray.bin")
	if err := os.WriteFile(outside, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, cli := startCluster(t, pfsDir, 1, nil, func(c *ClientConfig) {
		c.DatasetDir = root
		c.DisableFallback = true
	})
	if _, err := cli.ReadBatch(append([]string{outside}, paths...)); err == nil {
		t.Fatal("ReadBatch with DisableFallback succeeded on a failing entry")
	}
}

// fakeBatchTransport answers OpReadBatch with scripted per-entry
// statuses, so the client's handling of StatusAgain (and decode plumbing)
// can be tested without a 64 MiB file forcing the real frame budget.
type fakeBatchTransport struct {
	t      *testing.T
	again  map[string]bool // paths to answer StatusAgain
	data   map[string][]byte
	opened string // path of the last OpOpen, read back by OpRead
}

func (f *fakeBatchTransport) Call(req *transport.Request) (*transport.Response, error) {
	switch req.Op {
	case transport.OpReadBatch:
		paths, err := transport.DecodeBatchPaths(req.Path)
		if err != nil {
			f.t.Errorf("server-side decode failed: %v", err)
			return nil, err
		}
		var out []byte
		for _, p := range paths {
			if f.again[p] {
				out = transport.AppendBatchEntry(out, transport.StatusAgain, nil)
				continue
			}
			out = transport.AppendBatchEntry(out, transport.StatusOK, f.data[p])
		}
		return &transport.Response{Status: transport.StatusOK, Size: int64(len(paths)), Data: out}, nil
	case transport.OpOpen:
		f.opened = req.Path
		return &transport.Response{Status: transport.StatusOK, Handle: 1, Size: int64(len(f.data[req.Path]))}, nil
	case transport.OpRead:
		data := f.data[f.opened]
		if req.Off >= int64(len(data)) {
			return &transport.Response{Status: transport.StatusOK}, nil
		}
		end := req.Off + req.Len
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		return &transport.Response{Status: transport.StatusOK, Data: data[req.Off:end]}, nil
	case transport.OpClose:
		return &transport.Response{Status: transport.StatusOK}, nil
	default:
		return &transport.Response{Status: transport.StatusError, Err: "unexpected op"}, nil
	}
}

func (f *fakeBatchTransport) Addr() string { return "fake" }
func (f *fakeBatchTransport) Close()       {}

// TestReadBatchAgainRetriesIndividually scripts a StatusAgain entry (the
// over-frame-budget signal) and checks the client re-reads exactly that
// path through the ordinary transaction.
func TestReadBatchAgainRetriesIndividually(t *testing.T) {
	dir := t.TempDir()
	small := filepath.Join(dir, "small.bin")
	big := filepath.Join(dir, "big.bin")
	smallData := bytes.Repeat([]byte{1}, 128)
	bigData := bytes.Repeat([]byte{2}, 4096)
	fake := &fakeBatchTransport{
		t:     t,
		again: map[string]bool{big: true},
		data:  map[string][]byte{small: smallData},
	}
	cli, err := NewClient(ClientConfig{
		Servers:    []string{"fake"},
		DatasetDir: dir,
		DialTransport: func(addr string) transport.Transport {
			return fake
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// The ordinary transaction the retry takes is OpOpen/OpRead/OpClose
	// against the same fake; serve big through it.
	fake.data[big] = bigData

	data, err := cli.ReadBatch([]string{small, big})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data[0], smallData) || !bytes.Equal(data[1], bigData) {
		t.Fatal("batch with StatusAgain entry returned wrong bytes")
	}
	st := cli.Stats()
	if st.BatchReads != 1 || st.BatchFallbacks != 1 {
		t.Fatalf("stats = %+v, want BatchReads=1 BatchFallbacks=1", st)
	}
}

// TestReadBatchCallFailureDegrades severs the only server before a batch
// read: the whole group degrades to per-file reads, which themselves
// fall back to the PFS, and the bytes still come back correct.
func TestReadBatchCallFailureDegrades(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 5, 1<<10)
	servers, cli := startCluster(t, pfsDir, 1, nil, func(c *ClientConfig) {
		c.RetryAttempts = 1
	})
	servers[0].Close()

	data, err := cli.ReadBatch(paths)
	if err != nil {
		t.Fatal(err)
	}
	for i := range paths {
		if !bytes.Equal(data[i], bytes.Repeat([]byte{byte(i)}, 1<<10)) {
			t.Fatalf("degraded batch entry %d has wrong bytes", i)
		}
	}
	st := cli.Stats()
	if st.BatchFallbacks != int64(len(paths)) {
		t.Fatalf("BatchFallbacks = %d, want %d", st.BatchFallbacks, len(paths))
	}
	if st.Fallbacks != int64(len(paths)) {
		t.Fatalf("Fallbacks = %d, want %d (per-file PFS fallback)", st.Fallbacks, len(paths))
	}
}

// TestBatchedPrefetchPopulatesCaches checks Prefetch's batched hint
// path: every file lands in its home server's cache without any client
// read, and the hints cost one RPC per server rather than one per file.
func TestBatchedPrefetchPopulatesCaches(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 24, 2<<10)
	servers, cli := startCluster(t, pfsDir, 3, nil, nil)

	if accepted := cli.Prefetch(paths); accepted != len(paths) {
		t.Fatalf("Prefetch accepted %d, want %d", accepted, len(paths))
	}
	for _, s := range servers {
		s.WaitIdle()
	}
	cached := 0
	for _, s := range servers {
		cached += s.CachedFiles()
	}
	if cached != len(paths) {
		t.Fatalf("cached %d files after batched prefetch, want %d", cached, len(paths))
	}
	var calls int64
	for _, conn := range cli.conns {
		if cc, ok := conn.(interface{ Calls() int64 }); ok {
			calls += cc.Calls()
		}
	}
	if calls != int64(len(servers)) {
		t.Fatalf("batched prefetch cost %d RPCs, want %d (one per server)", calls, len(servers))
	}
}

// TestPrefetchDropsUnderBackpressure wedges the single mover inside its
// PFS open, fills the 2-deep prefetch queue past capacity, and checks
// the overflow hints are dropped and counted — never blocked on — while
// the queued ones complete once the mover is released.
func TestPrefetchDropsUnderBackpressure(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "pfs", "dataset")
	paths := writePFS(t, pfsDir, 8, 256)
	gate := make(chan struct{})
	servers, _ := startCluster(t, pfsDir, 1, func(c *ServerConfig) {
		c.PrefetchQueue = 2
		c.Movers = 1
		c.OpenPFS = func(path string) (*os.File, error) {
			<-gate // wedge every fill until the test opens the gate
			return os.Open(path)
		}
	}, nil)
	srv := servers[0]

	for _, p := range paths {
		srv.scheduleFetch(fetchTask{key: p, path: p}, false)
	}
	// Capacity while wedged: one task in the mover (at most) plus two in
	// the queue; at least five of the eight hints must have been dropped.
	if drops := srv.Stats().PrefetchDrops; drops < 5 {
		t.Fatalf("PrefetchDrops = %d, want >= 5 with a wedged mover and a 2-deep queue", drops)
	}
	close(gate)
	srv.WaitIdle()
	dropped := srv.Stats().PrefetchDrops
	if got := int64(srv.CachedFiles()); got != int64(len(paths))-dropped {
		t.Fatalf("cached %d files, want %d (scheduled hints) after %d drops", got, int64(len(paths))-dropped, dropped)
	}
}
