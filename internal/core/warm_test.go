package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"hvac/internal/testutil"
)

// Replica warming (§III-H): a demand fill on a key's primary forwards
// prefetch hints to the key's other homes, so by the time a failover —
// or a membership change — moves reads to a secondary, the secondary's
// cache is already hot and the epoch never goes back to the PFS.

// wirePeers connects every server of a started cluster into one
// replica-warming peer group. The servers must share the client's
// placement policy and replica count (set via the ServerConfig) so both
// sides agree on each key's homes.
func wirePeers(t *testing.T, servers []*Server) {
	t.Helper()
	addrs := make([]string, len(servers))
	for i, s := range servers {
		addrs[i] = s.Addr()
	}
	for i, s := range servers {
		s.SetPeers(addrs, i)
	}
}

// drainFills retires every background fill and the warm fills those
// fills triggered: a demand fill registers its warm hints on the peers
// before it retires (runFetch warms before finishFetch), so pass 1
// drains the demand fills and pass 2 the warm fills — which never
// cascade, so two passes always suffice.
func drainFills(servers []*Server) {
	for pass := 0; pass < 2; pass++ {
		for _, s := range servers {
			s.WaitIdle()
		}
	}
}

// servedTotals sums the cache-vs-PFS service counters across a cluster.
func servedTotals(servers []*Server) (hits, readThroughs int64) {
	for _, s := range servers {
		ss := s.Stats()
		hits += ss.Hits
		readThroughs += ss.ReadThroughs
	}
	return hits, readThroughs
}

// warmCluster is startCluster plus replica-count/placement agreement on
// both sides and the peer wiring.
func warmCluster(t *testing.T, pfsDir string, n, replicas int, segSize int64) ([]*Server, *Client) {
	t.Helper()
	servers, cli := startCluster(t, pfsDir, n,
		func(c *ServerConfig) {
			c.Replicas = replicas
			c.Placement = basenamePlacement{}
			c.SegmentSize = segSize
		},
		func(c *ClientConfig) {
			c.Replicas = replicas
			c.Placement = basenamePlacement{}
			c.SegmentSize = segSize
		})
	wirePeers(t, servers)
	return servers, cli
}

// A whole-file demand epoch warms every file's secondary; after the
// primary leaves the client's view, the follow-up epoch is served
// entirely from the warmed caches — zero new read-throughs, zero PFS
// fallbacks, bytes identical.
func TestReplicaWarmingServesFailoverEpochFromCache(t *testing.T) {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 12, 2048)
	servers, cli := warmCluster(t, pfsDir, 3, 2, 0)

	for _, p := range paths { // epoch 1: demand fills on the primaries
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	drainFills(servers)

	var warms int64
	for _, s := range servers {
		warms += s.Stats().ReplicaWarms
	}
	if warms != int64(len(paths)) {
		t.Fatalf("replica warms = %d, want %d (every demand fill warms exactly its one secondary)", warms, len(paths))
	}

	// Membership change: srv0 leaves the client's view. Its files move to
	// their secondary home — which warming already filled.
	if !cli.View().Leave(0) {
		t.Fatal("view refused the leave")
	}
	_, rtBefore := servedTotals(servers)
	for _, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		want, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted across the membership change", p)
		}
	}
	_, rtAfter := servedTotals(servers)
	if rtAfter != rtBefore {
		t.Fatalf("%d new read-throughs in the post-leave epoch; replica warming left cold caches", rtAfter-rtBefore)
	}
	if st := cli.Stats(); st.Fallbacks != 0 {
		t.Fatalf("post-leave epoch fell back to the PFS: %+v", st)
	}
}

// Segment-striped warming: demand fills carry their byte range in the
// hint, so each peer fills exactly the segments it homes; after srv0
// leaves the view the segmented epoch stays cache-served.
func TestReplicaWarmingSegmentHints(t *testing.T) {
	testutil.CheckLeaks(t)
	const segSize = 4 << 10
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 2, 20_000) // 5 segments per file
	servers, cli := warmCluster(t, pfsDir, 3, 2, segSize)

	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	drainFills(servers)

	var warms int64
	for _, s := range servers {
		warms += s.Stats().ReplicaWarms
	}
	if want := int64(2 * 5); warms != want {
		t.Fatalf("replica warms = %d, want %d (one per segment fill)", warms, want)
	}

	if !cli.View().Leave(0) {
		t.Fatal("view refused the leave")
	}
	_, rtBefore := servedTotals(servers)
	for _, p := range paths {
		got, err := cli.ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		want, rerr := os.ReadFile(p)
		if rerr != nil {
			t.Fatal(rerr)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s corrupted across the membership change", p)
		}
	}
	if _, rtAfter := servedTotals(servers); rtAfter != rtBefore {
		t.Fatalf("%d new segment read-throughs post-leave; segment hints missed their homes", rtAfter-rtBefore)
	}
}

// Client-driven prefetch populates all R homes, not just the primary:
// after the hints drain, a membership change leaves no cold reads.
func TestPrefetchWarmsAllReplicaHomes(t *testing.T) {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 10, 1024)
	servers, cli := warmCluster(t, pfsDir, 3, 2, 0)

	// Every path is hinted at both of its homes: 2R hints accepted.
	if n := cli.Prefetch(paths); n != 2*len(paths) {
		t.Fatalf("prefetch accepted %d hints, want %d (one per replica home)", n, 2*len(paths))
	}
	drainFills(servers)

	if !cli.View().Leave(0) {
		t.Fatal("view refused the leave")
	}
	_, rtBefore := servedTotals(servers)
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, rtAfter := servedTotals(servers); rtAfter != rtBefore {
		t.Fatalf("%d read-throughs after prefetch + leave; prefetch warmed only the primary", rtAfter-rtBefore)
	}
}

// Without peer wiring (the default), demand fills never leave the
// server: warming is strictly opt-in.
func TestNoWarmingWithoutPeers(t *testing.T) {
	testutil.CheckLeaks(t)
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 6, 512)
	servers, cli := startCluster(t, pfsDir, 2,
		nil,
		func(c *ClientConfig) { c.Replicas = 2 })
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	drainFills(servers)
	for i, s := range servers {
		if w := s.Stats().ReplicaWarms; w != 0 {
			t.Fatalf("srv%d sent %d warm hints with no peer set configured", i, w)
		}
	}
}
