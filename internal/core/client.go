package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"hvac/internal/place"
	"hvac/internal/transport"
)

// ClientConfig configures a real-mode HVAC client.
type ClientConfig struct {
	// Servers are the HVAC server addresses of the job allocation, in
	// allocation order; placement hashes over this list.
	Servers []string
	// DatasetDir is the PFS directory whose reads are redirected —
	// the HVAC_DATASET_DIR contract (§III-C). Paths outside it pass
	// through to the local file system untouched.
	DatasetDir string
	// Placement is the redirection hash; nil means the paper's ModHash.
	Placement place.Policy
	// Replicas > 1 enables the §III-H failover design: if the home server
	// is unreachable the client tries the next replica before falling
	// back to the PFS.
	Replicas int
	// HedgeAfter > 0 arms hedged reads (§III-H tail-latency failover):
	// when a remote call has not answered within HedgeAfter, the same
	// operation is issued to the next replica and the first success wins
	// (losers are drained in the background and their pooled responses
	// and server-side handles retired). 0 disables hedging; replica
	// failover then stays strictly sequential. Only effective with
	// Replicas > 1.
	HedgeAfter time.Duration
	// DisableFallback makes server failures hard errors instead of
	// falling back to direct PFS reads; used in tests.
	DisableFallback bool
	// SegmentSize > 0 enables segment-level caching (§III-E): each
	// SegmentSize-byte segment of a file is homed and cached
	// independently, balancing load under highly skewed file sizes. The
	// servers must be started with the same value.
	SegmentSize int64
	// CallTimeout bounds each RPC attempt so a hung server cannot stall
	// the training loop; 0 means transport.DefaultCallTimeout, negative
	// disables the deadline.
	CallTimeout time.Duration
	// RetryAttempts is the per-call attempt budget on each server link
	// (first try included); values below 1 mean the transport default.
	RetryAttempts int
	// RetryBaseDelay is the backoff before the first retry (doubles per
	// retry, seeded jitter); 0 means the transport default.
	RetryBaseDelay time.Duration
	// RetrySeed seeds the backoff jitter; equal seeds sleep identically.
	RetrySeed uint64
	// PoolSize caps the idle TCP connections kept per server link; 0
	// means transport.DefaultPoolSize, negative disables pooling. Size it
	// to the loader's worker count.
	PoolSize int
	// Readahead controls the sequential-read pipeline of File.Read on
	// remote whole-file handles: while the caller consumes one chunk the
	// client has already issued the RPC for the next (the Clairvoyant
	// Prefetching observation — pipelined fetches hide per-sample
	// latency). 0 enables the default one-chunk pipeline; negative
	// disables readahead. Failed readahead RPCs are discarded and the
	// read retries synchronously, so fallback behaviour is unchanged.
	Readahead int
	// DialTransport overrides how a server link is established — the seam
	// the fault-injection harness decorates. Nil means TCP via
	// transport.DialWith with the timeout/retry settings above.
	DialTransport func(addr string) transport.Transport
}

// ClientStats counts client-side activity.
// The //hvac:pair lines declare open-outcome exclusivity to the
// statpair analyzer: one Open counts exactly one of Redirected,
// Passthrough, or Fallbacks — the identity the chaos tier checks as
// Opens == Redirected + Passthrough + Fallbacks.
type ClientStats struct {
	//hvac:pair open-outcome oneof
	Redirected int64 // opens served via HVAC
	//hvac:pair open-outcome oneof
	Passthrough int64 // opens outside the dataset dir
	//hvac:pair open-outcome oneof
	Fallbacks      int64 // opens that fell back to the PFS after server failure
	Degrades       int64 // redirected handles demoted to PFS mid-read (§III-H)
	Failovers      int64 // opens (or mid-read handle migrations) served by a non-primary replica
	Hedges         int64 // hedge attempts fired after HedgeAfter elapsed unanswered
	HedgeWins      int64 // operations completed by a hedged attempt (HedgeWins <= Hedges)
	Retries        int64 // transport-level retry attempts spent across all server links
	Readaheads     int64 // sequential-read chunks requested ahead of the caller
	ReadaheadHits  int64 // reads served from a completed readahead chunk
	BatchReads     int64 // files served through a scatter-gather OpReadBatch entry
	BatchFallbacks int64 // batch entries that degraded to per-file or PFS reads
	BytesRead      int64
}

// Client is a real-mode HVAC client: the Go equivalent of the LD_PRELOAD
// interposition library (see DESIGN.md for the substitution argument).
type Client struct {
	cfg   ClientConfig
	conns []transport.Transport
	view  *place.View

	// hedgeWG joins every background goroutine the hedging machinery
	// spawns (loser drains, async handle closes); Close waits for them
	// so no pooled Response outlives the client.
	hedgeWG sync.WaitGroup

	mu      sync.Mutex
	stats   ClientStats
	closing bool
}

// NewClient builds a client for the given configuration.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Servers) == 0 {
		return nil, errors.New("core: ClientConfig.Servers is empty")
	}
	if cfg.DatasetDir == "" {
		return nil, errors.New("core: ClientConfig.DatasetDir is required")
	}
	abs, err := filepath.Abs(cfg.DatasetDir)
	if err != nil {
		return nil, err
	}
	cfg.DatasetDir = abs
	if cfg.Placement == nil {
		cfg.Placement = place.ModHash{}
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	dial := cfg.DialTransport
	if dial == nil {
		opts := transport.ClientOptions{
			CallTimeout: cfg.CallTimeout,
			Retry: transport.RetryPolicy{
				MaxAttempts: cfg.RetryAttempts,
				BaseDelay:   cfg.RetryBaseDelay,
				Seed:        cfg.RetrySeed,
			},
			PoolSize: cfg.PoolSize,
		}
		dial = func(addr string) transport.Transport { return transport.DialWith(addr, opts) }
	}
	c := &Client{cfg: cfg, view: place.NewView(cfg.Placement, len(cfg.Servers))}
	for _, addr := range cfg.Servers {
		c.conns = append(c.conns, dial(addr))
	}
	return c, nil
}

// View returns the client's membership view: the versioned server set
// placement hashes over. Leave/Join on it reroute subsequent opens away
// from (or back to) a member without restarting the job; an unchanged
// view places exactly like the configured policy.
func (c *Client) View() *place.View { return c.view }

// Stats returns a snapshot of client counters. Retries is gathered live
// from the server links (each transport keeps its own retry budget).
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	st := c.stats
	c.mu.Unlock()
	for _, conn := range c.conns {
		if rc, ok := conn.(interface{ Retries() int64 }); ok {
			st.Retries += rc.Retries()
		}
	}
	return st
}

// Close joins the hedging machinery's background goroutines (bounded by
// the per-call deadline) and releases all server connections.
func (c *Client) Close() {
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	c.hedgeWG.Wait()
	for _, conn := range c.conns {
		conn.Close()
	}
}

// Intercepts reports whether path falls under the dataset directory and
// would be redirected — the preload library's path test.
func (c *Client) Intercepts(path string) bool {
	abs, err := filepath.Abs(path)
	if err != nil {
		return false
	}
	return abs == c.cfg.DatasetDir ||
		strings.HasPrefix(abs, c.cfg.DatasetDir+string(filepath.Separator))
}

// Home returns the index of the server that homes path under the
// current membership view.
func (c *Client) Home(path string) int {
	return c.view.Place(path)
}

// raResult carries one completed readahead RPC from the pipeline
// goroutine to the consuming Read.
type raResult struct {
	resp *transport.Response
	err  error
}

// File is a read-only remote file handle served by an HVAC server (whole
// file or segment-striped), or a fallback PFS handle. It implements
// io.Reader, io.ReaderAt and io.Closer.
type File struct {
	c         *Client
	conn      transport.Transport
	handle    int64
	size      int64
	path      string
	off       int64
	fallback  *os.File
	segmented bool
	closed    bool
	mu        sync.Mutex

	// replicas is the whole-file replica ladder (server indices, primary
	// first) fixed at open time; srv is the member currently serving the
	// handle. A mid-read failover migrates (conn, handle, srv) — under mu
	// — to the replica that answered.
	replicas []int
	srv      int

	// Sequential-read pipeline (File.Read only): at most one chunk RPC in
	// flight, owned by whoever flips raPending under mu. The WaitGroup
	// joins the pipeline goroutine on Close.
	raCh      chan raResult
	raWG      sync.WaitGroup
	raOff     int64
	raWant    int
	raPending bool
}

// Open opens path through HVAC: redirected to its home server when under
// the dataset dir, passed through to the OS otherwise, with PFS fallback
// on server failure (unless disabled).
func (c *Client) Open(path string) (*File, error) {
	abs, err := filepath.Abs(path)
	if err != nil {
		return nil, err
	}
	if !c.Intercepts(abs) {
		f, err := os.Open(abs) //hvac:pfs-fallback passthrough: path is outside the dataset dir, so the §III-C contract does not redirect it
		if err != nil {
			return nil, err
		}
		c.bump(func(s *ClientStats) { s.Passthrough++ })
		return &File{c: c, fallback: f, path: abs}, nil
	}

	if c.cfg.SegmentSize > 0 {
		return c.openSegmented(abs)
	}
	replicas := c.view.Replicas(abs, c.cfg.Replicas)
	attempts := make([]func() hedgeResult, len(replicas))
	for i, srv := range replicas {
		i, srv, conn := i, srv, c.conns[srv]
		attempts[i] = func() hedgeResult {
			resp, err := conn.Call(&transport.Request{Op: transport.OpOpen, Path: abs})
			if err != nil {
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			if !resp.OK() {
				// The server answered with an application error (e.g. file
				// absent on the PFS): no point trying replicas.
				err = resp.Error()
				resp.Release()
				return hedgeResult{err: err, ladder: i, srv: srv, appErr: true}
			}
			return hedgeResult{resp: resp, ladder: i, srv: srv, conn: conn, handle: resp.Handle, opened: true}
		}
	}
	r := c.ladderCall(attempts)
	if r.resp != nil {
		size := r.resp.Size
		r.resp.Release()
		c.bump(func(s *ClientStats) {
			s.Redirected++
			if r.ladder > 0 {
				s.Failovers++
			}
		})
		return &File{c: c, conn: r.conn, handle: r.handle, size: size, path: abs, replicas: replicas, srv: r.srv}, nil
	}
	if c.cfg.DisableFallback {
		return nil, fmt.Errorf("hvac client: open %s: %w", abs, r.err)
	}
	f, err := os.Open(abs) //hvac:pfs-fallback designated open fallback: every replica failed (§III-H)
	if err != nil {
		return nil, fmt.Errorf("hvac client: open %s: server(s) failed (%v) and PFS fallback failed: %w", abs, r.err, err)
	}
	c.bump(func(s *ClientStats) { s.Fallbacks++ })
	return &File{c: c, fallback: f, path: abs}, nil
}

func (c *Client) bump(f func(*ClientStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// hedgeResult is one replica attempt's outcome. Attempts normalise
// failures before returning: a non-OK response is released inside the
// attempt and surfaces as err (appErr marks server-side application
// errors, which stop the ladder — the server is alive, the request is
// just unserveable). On success resp is owned by the receiver; opened
// marks a live server-side whole-file handle (conn, handle) the
// receiver must adopt or retire.
type hedgeResult struct {
	resp   *transport.Response
	err    error
	ladder int // index into the attempt ladder
	srv    int // server index the attempt spoke to
	conn   transport.Transport
	handle int64
	opened bool
	appErr bool
	hedged bool // set by the engine: won by a timer-launched attempt
}

// spawnHedge runs fn on a goroutine joined by Client.Close. Once Close
// has begun waiting the WaitGroup must not grow, so a closing client
// runs fn synchronously instead (every fn is bounded by the per-call
// deadline).
func (c *Client) spawnHedge(fn func()) {
	c.mu.Lock()
	if c.closing {
		c.mu.Unlock()
		fn()
		return
	}
	c.hedgeWG.Add(1)
	c.mu.Unlock()
	go func() {
		defer c.hedgeWG.Done()
		fn()
	}()
}

// discardHedge retires a losing attempt: its pooled response returns to
// the pool and any server-side handle it opened is closed best-effort.
func (c *Client) discardHedge(r hedgeResult) {
	if r.resp != nil {
		r.resp.Release()
	}
	if r.opened {
		if resp, err := r.conn.Call(&transport.Request{Op: transport.OpClose, Handle: r.handle}); err == nil {
			resp.Release()
		}
	}
}

// drainHedges retires the attempts still in flight after a winner was
// chosen, off the caller's critical path.
func (c *Client) drainHedges(ch chan hedgeResult, outstanding int) {
	if outstanding == 0 {
		return
	}
	c.spawnHedge(func() {
		for i := 0; i < outstanding; i++ {
			//hvac:blockguard every outstanding rung's worker sends exactly once into the ladder-sized buffer, bounded by the call timeout
			c.discardHedge(<-ch)
		}
	})
}

// ladderCall runs an ordered replica-attempt ladder. With hedging
// disabled the rungs run strictly sequentially: first success or
// application error wins, a transport failure moves to the next rung —
// the pre-hedging failover behaviour, byte for byte. With HedgeAfter
// set the ladder races: see runHedged.
func (c *Client) ladderCall(attempts []func() hedgeResult) hedgeResult {
	if c.cfg.HedgeAfter <= 0 || len(attempts) == 1 {
		var last hedgeResult
		for i := range attempts {
			last = attempts[i]()
			if (last.err == nil && last.resp != nil) || last.appErr {
				return last
			}
		}
		return last
	}
	return c.runHedged(attempts)
}

// runHedged races the attempt ladder: rung 0 fires immediately; each
// time HedgeAfter elapses without an answer the next rung fires too
// (counted in Hedges), and a rung that fails on transport error is
// replaced at once. The first success wins — counted in HedgeWins when
// the winner was a timer-launched hedge — and the losers are drained in
// the background. An application error wins negatively: the server
// answered, so further replicas are pointless.
func (c *Client) runHedged(attempts []func() hedgeResult) hedgeResult {
	ch := make(chan hedgeResult, len(attempts)) // buffered to ladder size: attempt sends never block
	timed := make([]bool, len(attempts))
	launched, outstanding := 0, 0
	launch := func(hedge bool) {
		a := attempts[launched]
		timed[launched] = hedge
		launched++
		outstanding++
		c.spawnHedge(func() { ch <- a() })
	}
	launch(false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	rearm := func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.cfg.HedgeAfter)
	}
	var last hedgeResult
	for {
		select {
		case r := <-ch:
			outstanding--
			if (r.err == nil && r.resp != nil) || r.appErr {
				r.hedged = timed[r.ladder]
				if r.hedged && !r.appErr {
					c.bump(func(s *ClientStats) { s.HedgeWins++ })
				}
				c.drainHedges(ch, outstanding)
				return r
			}
			last = r
			if launched < len(attempts) {
				launch(false)
				rearm()
			} else if outstanding == 0 {
				return last
			}
		case <-timer.C:
			if launched < len(attempts) {
				c.bump(func(s *ClientStats) { s.Hedges++ })
				launch(true)
				timer.Reset(c.cfg.HedgeAfter)
			}
		}
	}
}

// closeHandleAsync retires a server-side handle off the caller's
// critical path (the server may be the one that just failed, so the
// close may burn a full call timeout).
func (c *Client) closeHandleAsync(conn transport.Transport, handle int64) {
	c.spawnHedge(func() {
		if resp, err := conn.Call(&transport.Request{Op: transport.OpClose, Handle: handle}); err == nil {
			resp.Release()
		}
	})
}

// segmentReplicas returns the replica ladder (server indices, primary
// first) serving segment seg of path under the current view.
func (c *Client) segmentReplicas(path string, seg int64) []int {
	return c.view.Replicas(segKey(path, seg), c.cfg.Replicas)
}

// openSegmented opens path in segment-striped mode: the size comes from
// a stat walked down segment 0's replica ladder (the same failover loop
// whole-file opens get — a dead segment-0 home no longer forces the PFS
// while its replicas are healthy); reads hit each segment's own homes.
func (c *Client) openSegmented(abs string) (*File, error) {
	replicas := c.segmentReplicas(abs, 0)
	attempts := make([]func() hedgeResult, len(replicas))
	for i, srv := range replicas {
		i, srv, conn := i, srv, c.conns[srv]
		attempts[i] = func() hedgeResult {
			resp, err := conn.Call(&transport.Request{Op: transport.OpStat, Path: abs})
			if err != nil {
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			if !resp.OK() {
				err = resp.Error()
				resp.Release()
				return hedgeResult{err: err, ladder: i, srv: srv, appErr: true}
			}
			return hedgeResult{resp: resp, ladder: i, srv: srv}
		}
	}
	r := c.ladderCall(attempts)
	if r.resp != nil {
		size := r.resp.Size
		r.resp.Release()
		c.bump(func(s *ClientStats) {
			s.Redirected++
			if r.ladder > 0 {
				s.Failovers++
			}
		})
		return &File{c: c, path: abs, size: size, segmented: true}, nil
	}
	err := r.err
	if c.cfg.DisableFallback {
		return nil, fmt.Errorf("hvac client: open %s: %w", abs, err)
	}
	f, ferr := os.Open(abs) //hvac:pfs-fallback designated open fallback: every segment-0 replica failed (§III-H)
	if ferr != nil {
		return nil, fmt.Errorf("hvac client: open %s: server failed (%v) and PFS fallback failed: %w", abs, err, ferr)
	}
	c.bump(func(s *ClientStats) { s.Fallbacks++ })
	return &File{c: c, fallback: f, path: abs}, nil
}

// fetchSegment reads one in-segment range down the segment's replica
// ladder: sequential failover normally, raced when hedging is armed.
// Stateless (OpReadAt carries the path), so no handle migrates.
func (f *File) fetchSegment(seg, pos, want int64) (*transport.Response, error) {
	replicas := f.c.segmentReplicas(f.path, seg)
	attempts := make([]func() hedgeResult, len(replicas))
	for i, srv := range replicas {
		i, srv, conn := i, srv, f.c.conns[srv]
		attempts[i] = func() hedgeResult {
			resp, err := conn.Call(&transport.Request{
				Op: transport.OpReadAt, Path: f.path, Off: pos, Len: want,
			})
			if err != nil {
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			if !resp.OK() {
				// Any failure is worth the next replica: unlike opens, a
				// segment read has no unserveable-path error a replica
				// could not also answer differently.
				err = resp.Error()
				resp.Release()
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			return hedgeResult{resp: resp, ladder: i, srv: srv}
		}
	}
	r := f.c.ladderCall(attempts)
	if r.resp != nil {
		return r.resp, nil
	}
	return nil, r.err
}

// readAtSegmented splits the range over the per-segment home servers.
func (f *File) readAtSegmented(p []byte, off int64) (int, error) {
	segSize := f.c.cfg.SegmentSize
	total := 0
	for total < len(p) {
		pos := off + int64(total)
		if pos >= f.size {
			return total, io.EOF
		}
		seg := pos / segSize
		segEnd := (seg + 1) * segSize
		want := int64(len(p) - total)
		if pos+want > segEnd {
			want = segEnd - pos
		}
		if pos+want > f.size {
			want = f.size - pos
		}
		if want > transport.MaxFrame/2 {
			want = transport.MaxFrame / 2
		}
		resp, err := f.fetchSegment(seg, pos, want)
		if err != nil {
			if f.c.cfg.DisableFallback {
				return total, err
			}
			n, ferr := f.degradeToPFS(p[total:], pos)
			total += n
			if ferr == io.EOF {
				return total, io.EOF
			}
			if ferr != nil {
				return total, fmt.Errorf("hvac client: read %s: server failed (%v) and PFS fallback failed: %w", f.path, err, ferr)
			}
			return total, nil
		}
		n := copy(p[total:], resp.Data)
		resp.Release()
		total += n
		f.c.bump(func(s *ClientStats) { s.BytesRead += int64(n) })
		if int64(n) < want {
			return total, io.EOF
		}
	}
	return total, nil
}

// Size returns the file size (0 for passthrough handles until read).
func (f *File) Size() int64 {
	if f.fallback != nil {
		if fi, err := f.fallback.Stat(); err == nil {
			return fi.Size()
		}
	}
	return f.size
}

// Path returns the opened path.
func (f *File) Path() string { return f.path }

// Remote reports whether the handle is served by an HVAC server.
func (f *File) Remote() bool { return f.fallback == nil }

// ReadAt implements io.ReaderAt. If the serving HVAC server dies
// mid-file, the handle degrades to a direct PFS handle and the read
// continues — a training job survives server loss without noticing.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	f.mu.Lock()
	fb := f.fallback
	f.mu.Unlock()
	if fb != nil {
		return fb.ReadAt(p, off)
	}
	if f.segmented {
		return f.readAtSegmented(p, off)
	}
	total := 0
	for total < len(p) {
		want := int64(len(p) - total)
		if want > transport.MaxFrame/2 {
			want = transport.MaxFrame / 2
		}
		resp, err := f.fetchChunk(off+int64(total), want)
		if err != nil {
			if f.c.cfg.DisableFallback {
				return total, err
			}
			n, ferr := f.degradeToPFS(p[total:], off+int64(total))
			total += n
			if ferr == io.EOF {
				return total, io.EOF
			}
			if ferr != nil {
				return total, fmt.Errorf("hvac client: read %s: server failed (%v) and PFS fallback failed: %w", f.path, err, ferr)
			}
			return total, nil
		}
		n := copy(p[total:], resp.Data)
		resp.Release()
		total += n
		f.c.bump(func(s *ClientStats) { s.BytesRead += int64(n) })
		if int64(n) < want {
			return total, io.EOF
		}
	}
	return total, nil
}

// fetchChunk reads one ranged chunk of a whole-file handle. The first
// rung reads through the current (conn, handle); with Replicas > 1 the
// other replicas form failover rungs that open their own handle on path
// and read the same range — sequentially after a failure, or raced by
// the hedge timer when HedgeAfter is armed. When a replica rung wins,
// the File migrates to its handle (the §III-H failover: later reads go
// straight to the live replica) and the old handle is retired
// best-effort in the background.
func (f *File) fetchChunk(off, want int64) (*transport.Response, error) {
	f.mu.Lock()
	conn, handle, cur := f.conn, f.handle, f.srv
	f.mu.Unlock()
	attempts := []func() hedgeResult{func() hedgeResult {
		resp, err := conn.Call(&transport.Request{Op: transport.OpRead, Handle: handle, Off: off, Len: want})
		if err != nil {
			return hedgeResult{err: err, srv: cur}
		}
		if !resp.OK() {
			err = resp.Error()
			resp.Release()
			return hedgeResult{err: err, srv: cur}
		}
		return hedgeResult{resp: resp, srv: cur, conn: conn, handle: handle}
	}}
	for _, srv := range f.replicas {
		if srv == cur {
			continue
		}
		i, srv, rconn := len(attempts), srv, f.c.conns[srv]
		attempts = append(attempts, func() hedgeResult {
			oresp, err := rconn.Call(&transport.Request{Op: transport.OpOpen, Path: f.path})
			if err != nil {
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			if !oresp.OK() {
				err = oresp.Error()
				oresp.Release()
				return hedgeResult{err: err, ladder: i, srv: srv}
			}
			h := oresp.Handle
			oresp.Release()
			resp, rerr := rconn.Call(&transport.Request{Op: transport.OpRead, Handle: h, Off: off, Len: want})
			if rerr == nil && !resp.OK() {
				rerr = resp.Error()
				resp.Release()
			}
			if rerr != nil {
				// The replica opened but could not read: retire its handle
				// before reporting the rung failed.
				if cresp, cerr := rconn.Call(&transport.Request{Op: transport.OpClose, Handle: h}); cerr == nil {
					cresp.Release()
				}
				return hedgeResult{err: rerr, ladder: i, srv: srv}
			}
			return hedgeResult{resp: resp, ladder: i, srv: srv, conn: rconn, handle: h, opened: true}
		})
	}
	r := f.c.ladderCall(attempts)
	if r.resp == nil {
		return nil, r.err
	}
	if r.opened {
		f.adopt(r.conn, r.handle, r.srv)
	}
	return r.resp, nil
}

// adopt migrates the File to a replica's handle after a mid-read
// failover; the superseded handle is closed in the background. A File
// that already closed retires the new handle instead of keeping it.
func (f *File) adopt(conn transport.Transport, handle int64, srv int) {
	f.mu.Lock()
	if f.closed || f.fallback != nil {
		f.mu.Unlock()
		f.c.closeHandleAsync(conn, handle)
		return
	}
	oldConn, oldHandle := f.conn, f.handle
	f.conn, f.handle, f.srv = conn, handle, srv
	f.mu.Unlock()
	f.c.bump(func(s *ClientStats) { s.Failovers++ })
	f.c.closeHandleAsync(oldConn, oldHandle)
}

// degradeToPFS converts the handle to a direct PFS handle after a server
// failure and completes the read from it.
func (f *File) degradeToPFS(p []byte, off int64) (int, error) {
	f.mu.Lock()
	if f.closed {
		// Close already snapshotted the serving state; opening a PFS
		// handle now would leak it.
		f.mu.Unlock()
		return 0, os.ErrClosed
	}
	if f.fallback == nil {
		pf, err := os.Open(f.path) //hvac:pfs-fallback designated mid-read fallback: the serving server died with the handle open (§III-H)
		if err != nil {
			f.mu.Unlock()
			return 0, err
		}
		f.fallback = pf
		f.c.bump(func(s *ClientStats) { s.Degrades++ })
	}
	fb := f.fallback
	f.mu.Unlock()
	return fb.ReadAt(p, off)
}

// Read implements io.Reader with a sequential-read pipeline: when the
// previous Read left a chunk RPC in flight for exactly this offset, the
// result is consumed directly (ReadaheadHits); otherwise the read runs
// synchronously through ReadAt, with all of its fallback behaviour. A
// failed readahead chunk is discarded and re-read synchronously, so fault
// handling and byte results are identical with the pipeline on or off.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	pending := f.raPending
	match := pending && f.raOff == off
	if pending {
		f.raPending = false // claim the in-flight chunk, matching or stale
	}
	want := f.raWant
	f.mu.Unlock()

	n, err, served := 0, error(nil), false
	if pending {
		//hvac:blockguard the claimed readahead worker sends exactly once into the 1-buffered raCh, bounded by the call timeout
		r := <-f.raCh
		if match {
			n, err, served = f.consumeReadahead(p, r, want)
		} else if r.resp != nil {
			r.resp.Release() // stale chunk: the caller seeked elsewhere
		}
	}
	if !served {
		n, err = f.ReadAt(p, off)
	}
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	if err == nil {
		f.maybeReadahead(off+int64(n), len(p))
	}
	return n, err
}

// consumeReadahead serves a Read from a completed pipeline chunk. A
// transport or server failure yields served == false and no error: the
// caller re-reads synchronously, which applies the normal
// replica/PFS-fallback path.
func (f *File) consumeReadahead(p []byte, r raResult, want int) (int, error, bool) {
	if r.err != nil || r.resp == nil || !r.resp.OK() {
		if r.resp != nil {
			r.resp.Release()
		}
		return 0, nil, false
	}
	data := r.resp.Data
	n := copy(p, data)
	short := len(data) < want // the chunk hit EOF
	r.resp.Release()
	f.c.bump(func(s *ClientStats) {
		s.ReadaheadHits++
		s.BytesRead += int64(n)
	})
	if short && n == len(data) {
		return n, io.EOF, true
	}
	return n, nil, true
}

// maybeReadahead launches the next chunk's RPC at off so it overlaps the
// caller's consumption of the chunk just returned. At most one RPC is in
// flight per File; the goroutine is joined on Close via raWG.
func (f *File) maybeReadahead(off int64, want int) {
	if f.c.cfg.Readahead < 0 || f.segmented || want <= 0 {
		return
	}
	if int64(want) > transport.MaxFrame/2 {
		want = transport.MaxFrame / 2
	}
	f.mu.Lock()
	if f.closed || f.fallback != nil || f.raPending || off >= f.size {
		f.mu.Unlock()
		return
	}
	if f.raCh == nil {
		f.raCh = make(chan raResult, 1)
	}
	f.raPending = true
	f.raOff = off
	f.raWant = want
	conn, handle := f.conn, f.handle
	f.raWG.Add(1)
	f.mu.Unlock()
	f.c.bump(func(s *ClientStats) { s.Readaheads++ })
	go func() {
		defer f.raWG.Done()
		resp, err := conn.Call(&transport.Request{
			Op: transport.OpRead, Handle: handle, Off: off, Len: int64(want),
		})
		f.raCh <- raResult{resp: resp, err: err} // buffered: never blocks
	}()
}

// Close implements io.Closer, releasing the server-side handle.
func (f *File) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	pending := f.raPending
	f.raPending = false
	// Snapshot the serving state under mu: a concurrent read may be
	// degrading to the PFS or adopting a replica handle right now, and
	// whatever lands after this instant cleans up after itself (both
	// check f.closed).
	fb, segmented := f.fallback, f.segmented
	conn, handle := f.conn, f.handle
	f.mu.Unlock()
	if pending {
		// Drain the in-flight chunk so its pooled buffer is recycled; the
		// RPC is bounded by the call timeout.
		//hvac:blockguard the claimed readahead worker sends exactly once into the 1-buffered raCh, bounded by the call timeout
		if r := <-f.raCh; r.resp != nil {
			r.resp.Release()
		}
	}
	f.raWG.Wait()
	if fb != nil {
		return fb.Close()
	}
	if segmented {
		return nil // stateless: no server-side handle to tear down
	}
	resp, err := conn.Call(&transport.Request{Op: transport.OpClose, Handle: handle})
	if err != nil {
		return err
	}
	err = resp.Error()
	resp.Release()
	return err
}

// Prefetch asks the home servers to pre-populate their caches with the
// given dataset files, without reading them — the paper's future-work
// prefetching (§IV-C: "pre-populate the HVAC cache and reduce the
// performance overhead of epoch-1"). It returns the number of files whose
// prefetch was accepted; unreachable servers are skipped (their files
// will be cached on first read instead).
// The hints ride one OpReadBatch (with BatchFlagPrefetch) per home
// server instead of one RPC per file; a failed batch call degrades to
// the per-file OpPrefetch hints. With Replicas > 1 every replica home
// gets the hint, not just the primary, so a failover read after a
// server loss lands on a warm cache (§III-H replica warming).
func (c *Client) Prefetch(paths []string) int {
	// Group by home server into ordered slices (not a map keyed by server:
	// the sim mirror shares this shape and must iterate deterministically).
	groups := make([][]string, len(c.conns))
	for _, path := range paths {
		abs, err := filepath.Abs(path)
		if err != nil || !c.Intercepts(abs) {
			continue
		}
		for _, srv := range c.view.Replicas(abs, c.cfg.Replicas) {
			groups[srv] = append(groups[srv], abs)
		}
	}
	accepted := 0
	for srv, group := range groups {
		for start := 0; start < len(group); {
			end := batchSpan(start, len(group), func(i int) int { return len(group[i]) })
			if end == start {
				// This path alone cannot be encoded; the per-file hint
				// will refuse it too, but keeps the loop moving.
				end = start + 1
			}
			accepted += c.prefetchGroup(srv, group[start:end])
			start = end
		}
	}
	return accepted
}

// prefetchGroup sends one batched prefetch hint to server srv, counting
// accepted entries. Any batch-level failure retries the group as
// per-file OpPrefetch hints.
func (c *Client) prefetchGroup(srv int, paths []string) int {
	if blob, err := transport.EncodeBatchPaths(paths); err == nil {
		resp, cerr := c.conns[srv].Call(&transport.Request{
			Op: transport.OpReadBatch, Handle: transport.BatchFlagPrefetch, Path: blob,
		})
		if cerr == nil {
			if resp.OK() {
				if results, derr := transport.DecodeBatchResults(resp.Data, len(paths)); derr == nil {
					accepted := 0
					for i := range results {
						if results[i].Status == transport.StatusOK {
							accepted++
						}
					}
					resp.Release()
					return accepted
				}
			}
			resp.Release()
		}
	}
	accepted := 0
	for _, p := range paths {
		resp, err := c.conns[srv].Call(&transport.Request{Op: transport.OpPrefetch, Path: p})
		if err == nil {
			if resp.OK() {
				accepted++
			}
			resp.Release()
		}
	}
	return accepted
}

// batchSpan returns the end of the longest run starting at start whose
// batch encoding fits one request: at most MaxBatchEntries entries, and
// a path list within the u16 path field of the request frame. length
// reports the byte length of entry i.
func batchSpan(start, n int, length func(int) int) int {
	total := 2
	end := start
	for end < n && end-start < transport.MaxBatchEntries {
		need := 2 + length(end)
		if total+need > 1<<16-1 {
			break
		}
		total += need
		end++
	}
	return end
}

// ReadBatch reads every path's full content in one scatter-gather pass:
// the paths are grouped by home server and each group fetched through
// OpReadBatch — one RPC round trip per (server, batch) instead of the
// <open, read, close> triple per file, which is where small-sample
// workloads spend their time. The result is indexed like paths.
//
// Degradation is per entry: StatusAgain entries (over the response frame
// budget) are re-read individually, failed entries fall back to the PFS
// (unless DisableFallback, which turns the first failure into an error),
// and a failed batch call degrades its whole group to per-file reads.
// Segment-striped deployments home each segment independently, so
// whole-file batching does not compose there; ReadBatch then reads per
// file.
func (c *Client) ReadBatch(paths []string) ([][]byte, error) {
	out := make([][]byte, len(paths))
	if len(paths) == 0 {
		return out, nil
	}
	if c.cfg.SegmentSize > 0 {
		for i, p := range paths {
			data, err := c.ReadAll(p)
			if err != nil {
				return out, err
			}
			out[i] = data
		}
		return out, nil
	}
	abspaths := make([]string, len(paths))
	groups := make([][]int, len(c.conns)) // path indices by home server, in order
	for i, p := range paths {
		abs, err := filepath.Abs(p)
		if err != nil {
			return out, err
		}
		abspaths[i] = abs
		if !c.Intercepts(abs) {
			data, err := os.ReadFile(abs) //hvac:pfs-fallback passthrough: path is outside the dataset dir, so the §III-C contract does not redirect it
			if err != nil {
				return out, err
			}
			out[i] = data
			c.bump(func(s *ClientStats) { s.Passthrough++ })
			continue
		}
		home := c.Home(abs)
		groups[home] = append(groups[home], i)
	}
	for srv, group := range groups {
		for start := 0; start < len(group); {
			end := batchSpan(start, len(group), func(i int) int { return len(abspaths[group[i]]) })
			if end == start {
				end = start + 1 // unencodable path: the per-file fallback handles it
			}
			if err := c.readBatchGroup(srv, group[start:end], abspaths, out); err != nil {
				return out, err
			}
			start = end
		}
	}
	return out, nil
}

// readBatchGroup fetches one server's batch chunk into out. Batch-level
// failures degrade every entry to readBatchEntryFallback; per-entry
// statuses degrade only their own path.
func (c *Client) readBatchGroup(srv int, idxs []int, abspaths []string, out [][]byte) error {
	group := make([]string, len(idxs))
	for i, ix := range idxs {
		group[i] = abspaths[ix]
	}
	blob, err := transport.EncodeBatchPaths(group)
	if err != nil {
		return c.readBatchDegraded(idxs, abspaths, out)
	}
	resp, err := c.conns[srv].Call(&transport.Request{Op: transport.OpReadBatch, Path: blob})
	if err != nil || !resp.OK() {
		if err == nil {
			resp.Release()
		}
		return c.readBatchDegraded(idxs, abspaths, out)
	}
	results, derr := transport.DecodeBatchResults(resp.Data, len(idxs))
	if derr != nil {
		resp.Release()
		return c.readBatchDegraded(idxs, abspaths, out)
	}
	// Copy the OK payloads out of the pooled frame, remember the rest;
	// their fallbacks run after Release so the frame is not pinned across
	// further RPCs.
	type retry struct {
		ix  int
		err error // nil for StatusAgain (frame budget), set for StatusError
	}
	var retries []retry
	served, bytes := 0, 0
	for i := range results {
		ix := idxs[i]
		switch results[i].Status {
		case transport.StatusOK:
			out[ix] = append([]byte(nil), results[i].Data...)
			served++
			bytes += len(results[i].Data)
		case transport.StatusAgain:
			retries = append(retries, retry{ix: ix})
		default:
			retries = append(retries, retry{ix: ix, err: fmt.Errorf("hvac client: batch read %s: %s", abspaths[ix], results[i].Err)})
		}
	}
	resp.Release()
	if served > 0 {
		c.bump(func(s *ClientStats) {
			s.BatchReads += int64(served)
			s.BytesRead += int64(bytes)
		})
	}
	for _, r := range retries {
		if r.err == nil {
			// Over the frame budget: the server is healthy, the file is just
			// big. Read it through the ordinary transaction.
			data, err := c.ReadAll(abspaths[r.ix])
			if err != nil {
				return err
			}
			out[r.ix] = data
			c.bump(func(s *ClientStats) { s.BatchFallbacks++ })
			continue
		}
		if c.cfg.DisableFallback {
			return r.err
		}
		data, ferr := os.ReadFile(abspaths[r.ix]) //hvac:pfs-fallback designated batch-entry fallback: the home server failed this entry, the rest of the batch proceeds (§III-H)
		if ferr != nil {
			return fmt.Errorf("hvac client: batch read %s: server failed (%v) and PFS fallback failed: %w", abspaths[r.ix], r.err, ferr)
		}
		out[r.ix] = data
		c.bump(func(s *ClientStats) {
			s.BatchFallbacks++
			s.BytesRead += int64(len(data))
		})
	}
	return nil
}

// readBatchDegraded serves a batch chunk whose RPC (or encoding) failed:
// every entry degrades to the ordinary per-file read, which carries its
// own replica and PFS fallback handling.
func (c *Client) readBatchDegraded(idxs []int, abspaths []string, out [][]byte) error {
	c.bump(func(s *ClientStats) { s.BatchFallbacks += int64(len(idxs)) })
	for _, ix := range idxs {
		data, err := c.ReadAll(abspaths[ix])
		if err != nil {
			return err
		}
		out[ix] = data
	}
	return nil
}

// ReadAll reads the whole file through the <open, read, close> transaction
// the DL loaders issue (§III-F).
func (c *Client) ReadAll(path string) ([]byte, error) {
	f, err := c.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// The size came off the wire (Response.Size): bound it before letting
	// it pick the allocation. Oversized or nonsensical values fall back to
	// the chunked path, which grows the buffer only as data arrives.
	size := f.Size()
	if size < 0 || size > transport.MaxFrame {
		return readAllChunked(f)
	}
	buf := make([]byte, size)
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return buf[:n], err
	}
	return buf[:n], nil
}

// readAllChunked reads f in MaxFrame-sized chunks, growing the result as
// bytes actually arrive, so a corrupt or hostile size field never commits
// a huge up-front allocation. The chunk itself is pooled — a 64 MiB make
// per oversized file would be exactly the allocation churn this path is
// meant to avoid.
func readAllChunked(f *File) ([]byte, error) {
	var buf []byte
	chunk := transport.GetBuffer(transport.MaxFrame)
	defer transport.PutBuffer(chunk)
	var off int64
	for {
		n, err := f.ReadAt(chunk, off)
		buf = append(buf, chunk[:n]...)
		off += int64(n)
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
		if n == 0 {
			return buf, nil
		}
	}
}
