package core

import (
	"os"
	"path/filepath"
	"testing"

	"hvac/internal/transport"
)

// Server-side hot-path benchmarks (ISSUE 4). BenchmarkHandleReadWarm
// isolates the handler cost with no network; the concurrent benchmark
// drives the whole stack — pooled frames, vectored writes, sharded
// handle table, atomic stats — from parallel TCP clients.

func benchServer(b *testing.B, fileSize int) (*Server, string) {
	b.Helper()
	pfsDir := b.TempDir()
	p := filepath.Join(pfsDir, "f.bin")
	content := make([]byte, fileSize)
	for i := range content {
		content[i] = byte(i)
	}
	if err := os.WriteFile(p, content, 0o644); err != nil {
		b.Fatal(err)
	}
	srv, err := StartServer(ServerConfig{
		ListenAddr: "127.0.0.1:0",
		PFSDir:     pfsDir,
		CacheDir:   filepath.Join(b.TempDir(), "cache"),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	return srv, p
}

func BenchmarkHandleReadWarm(b *testing.B) {
	srv, p := benchServer(b, 1<<20)
	open := srv.handle(&transport.Request{Op: transport.OpOpen, Path: p})
	if !open.OK() {
		b.Fatal(open.Error())
	}
	srv.WaitIdle()
	req := &transport.Request{Op: transport.OpRead, Handle: open.Handle, Len: 64 << 10}
	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp := srv.handle(req)
		if !resp.OK() {
			b.Fatal(resp.Error())
		}
		resp.Release()
	}
}

func BenchmarkConcurrentClientsRead(b *testing.B) {
	srv, p := benchServer(b, 1<<20)

	// Warm the cache so the measured epoch is the paper's steady state.
	warm, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: filepath.Dir(p)})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.ReadAll(p); err != nil {
		b.Fatal(err)
	}
	srv.WaitIdle()
	warm.Close()

	cli, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: filepath.Dir(p)})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cli.Close)
	f, err := cli.Open(p)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { f.Close() })

	b.ReportAllocs()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		buf := make([]byte, 64<<10)
		off := int64(0)
		for pb.Next() {
			if _, err := f.ReadAt(buf, off); err != nil {
				b.Error(err)
				return
			}
			off = (off + 64<<10) % (1 << 20)
		}
	})
}
