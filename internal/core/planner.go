// Clairvoyant epoch planning: the shuffle that drives an epoch's reads
// is a seeded permutation (train.Perm), so every rank can compute — not
// predict — the exact order its files will be demanded. The client
// derives that order from a train.Oracle, carves out each server's
// sub-plan (the keys the placement view homes there, in access order)
// and installs it over OpPlan. The server then runs a plan pump: a
// bounded window of planned prefetches kept ahead of a read frontier
// that advances as demand reads are observed, so epoch-1 bytes are
// already local (or in flight) when the loader asks. The same plan
// feeds Belady eviction scoring (cachestore.Clairvoyant) under cache
// pressure. Plans are advisory: a lost or stale plan only costs
// prefetch accuracy, never correctness.

package core

import (
	"fmt"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"hvac/internal/place"
	"hvac/internal/transport"
)

// AccessOracle is the epoch access order a plan is derived from —
// satisfied by *train.Oracle (core cannot import train: train's tests
// import core). At maps a global step to the dataset index read at that
// step; StepOf is its inverse.
type AccessOracle interface {
	N() int
	At(step int) int
	StepOf(index int) int
}

// defaultPlanHorizon is how many plan entries the pump keeps ahead of
// the read frontier when neither the install RPC nor the server config
// names a horizon. Far enough ahead to hide a PFS copy behind many
// sample reads, small enough that evicting for prefetched bytes the
// loader will not touch for a while stays rare.
const defaultPlanHorizon = 256

// planner is one server's installed epoch plan and pump cursor.
// Lock order: planner.mu is taken before Server.mu / Store.mu (the pump
// schedules fetches while holding it); nothing takes planner.mu while
// holding either of those.
type planner struct {
	mu       sync.Mutex
	gen      int64          // plan generation (client-chosen, typically the epoch)
	keys     []string       // this server's keys in access order
	pos      map[string]int // key -> plan position
	next     int            // first plan position not yet scheduled
	frontier int            // highest plan position observed as a demand read; -1 before the first
}

// handlePlan installs one chunk of an epoch plan. Off == 0 starts a new
// generation (replacing any previous plan); later chunks must carry the
// same generation in Handle and append exactly at the current plan
// length, so a lost or reordered chunk is refused instead of silently
// corrupting the access order. Len names the prefetch horizon (0 keeps
// the server's configured default). The response Size reports the
// installed plan length.
func (s *Server) handlePlan(req *transport.Request) *transport.Response {
	keys, err := transport.DecodeBatchPaths(req.Path)
	if err != nil {
		return errResp(err)
	}
	for _, k := range keys {
		if err := s.allowed(planKeyPath(k)); err != nil {
			return errResp(err)
		}
	}
	if req.Len < 0 {
		return errResp(fmt.Errorf("hvac server: negative plan horizon %d", req.Len))
	}
	pl := &s.plan
	pl.mu.Lock()
	switch {
	case req.Off == 0:
		pl.gen = req.Handle
		pl.keys = append(pl.keys[:0], keys...)
		pl.pos = make(map[string]int, len(keys))
		for i, k := range keys {
			pl.pos[k] = i
		}
		pl.next = 0
		pl.frontier = -1
	case req.Handle != pl.gen:
		pl.mu.Unlock()
		return errResp(fmt.Errorf("hvac server: plan chunk for generation %d, installed generation is %d", req.Handle, pl.gen))
	case req.Off != int64(len(pl.keys)):
		pl.mu.Unlock()
		return errResp(fmt.Errorf("hvac server: plan chunk at %d, expected %d (chunks must append in order)", req.Off, len(pl.keys)))
	default:
		start := len(pl.keys)
		pl.keys = append(pl.keys, keys...)
		for i, k := range keys {
			pl.pos[k] = start + i
		}
	}
	if req.Len > 0 {
		s.planHorizon.Store(req.Len)
	}
	planLen := len(pl.keys)
	pl.mu.Unlock()

	if s.belady != nil {
		// Mirror the plan into the eviction policy so resident keys are
		// scored by next access. AppendPlan(0, ...) resets, matching the
		// generation semantics above.
		s.belady.AppendPlan(int(req.Off), keys)
	}
	s.stats.planInstalled.Add(int64(len(keys)))
	s.planArmed.Store(true)
	s.pumpPlan()
	return &transport.Response{Status: transport.StatusOK, Size: int64(planLen)}
}

// planObserve advances the read frontier when a demand read lands on a
// planned key, re-scores eviction, and tops the pump back up. The
// planArmed fast path keeps the cost of an uninstalled planner off the
// warm read path at one atomic load.
func (s *Server) planObserve(key string) {
	if !s.planArmed.Load() {
		return
	}
	pl := &s.plan
	pl.mu.Lock()
	p, ok := pl.pos[key]
	if !ok || p <= pl.frontier {
		pl.mu.Unlock()
		return
	}
	pl.frontier = p
	pl.mu.Unlock()
	if s.belady != nil {
		s.belady.Advance(p + 1)
	}
	s.pumpPlan()
}

// pumpPlan schedules planned prefetches up to horizon entries ahead of
// the frontier. Already-resident keys are skipped with a counter-free
// probe (Store.Resident) so planning does not distort hit accounting. A
// full prefetch queue stops the pump without advancing the cursor — the
// counted backpressure is the queue's own PrefetchDrops — and the next
// trigger (a plan install, an observed read, or a planned fetch
// completing) resumes exactly where it stopped.
func (s *Server) pumpPlan() {
	horizon := int(s.planHorizon.Load())
	pl := &s.plan
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for pl.next < len(pl.keys) && pl.next <= pl.frontier+horizon {
		key := pl.keys[pl.next]
		if s.store.Resident(key) {
			pl.next++
			continue
		}
		path, off, length := planKeySpan(key, s.cfg.SegmentSize)
		fe, enqueued := s.scheduleFetch(fetchTask{key: key, path: path, off: off, len: length, planned: true}, false)
		if fe == nil {
			return
		}
		if enqueued {
			s.stats.planPrefetches.Add(1)
		}
		pl.next++
	}
}

// planSnapshot reports the installed plan length and current frontier
// (the Stats gauges).
func (s *Server) planSnapshot() (keys int, frontier int64) {
	pl := &s.plan
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.keys), int64(pl.frontier)
}

// planKeyPath strips a segment suffix ("path@idx") off a plan key so
// the dataset-dir check applies to the underlying file.
func planKeyPath(key string) string {
	if i := strings.LastIndexByte(key, '@'); i >= 0 {
		if _, err := strconv.ParseInt(key[i+1:], 10, 64); err == nil {
			return key[:i]
		}
	}
	return key
}

// planKeySpan resolves a plan key to the PFS byte range its fill must
// copy: whole file normally, one segment when the key carries a segment
// suffix and segment caching is on (plans in segment-striped mode name
// segment keys, because that is the key space reads consult).
func planKeySpan(key string, segSize int64) (path string, off, length int64) {
	if segSize <= 0 {
		return key, 0, 0
	}
	i := strings.LastIndexByte(key, '@')
	if i < 0 {
		return key, 0, 0
	}
	idx, err := strconv.ParseInt(key[i+1:], 10, 64)
	if err != nil {
		return key, 0, 0
	}
	return key[:i], idx * segSize, segSize
}

// PlanOrder enumerates an epoch's global access order: the path read at
// every step, straight off the oracle. pathAt maps a dataset index to
// its file path.
func PlanOrder(o AccessOracle, pathAt func(int) string) []string {
	order := make([]string, o.N())
	for step := 0; step < o.N(); step++ {
		order[step] = pathAt(o.At(step))
	}
	return order
}

// ServerPlan enumerates, in access order, the keys server srv will be
// asked for during the oracle's epoch under view — the per-server plan
// a rank installs on its own server without any central coordination:
// walk the key universe, keep what the placement view homes here
// (OwnedBy over r replicas), sort by the step the oracle assigns.
func ServerPlan(o AccessOracle, view *place.View, srv, r int, pathAt func(int) string) []string {
	type entry struct {
		step int
		path string
	}
	var owned []entry
	for idx := 0; idx < o.N(); idx++ {
		p := pathAt(idx)
		if view.OwnedBy(p, srv, r) {
			owned = append(owned, entry{step: o.StepOf(idx), path: p})
		}
	}
	// Insertion sort by step: owned is already nearly ordered only by
	// accident, but n is per-server plan size and this runs once per
	// epoch; keep it dependency-free and deterministic.
	for i := 1; i < len(owned); i++ {
		for j := i; j > 0 && owned[j].step < owned[j-1].step; j-- {
			owned[j], owned[j-1] = owned[j-1], owned[j]
		}
	}
	keys := make([]string, len(owned))
	for i, e := range owned {
		keys[i] = e.path
	}
	return keys
}

// InstallPlan distributes an epoch's access plan to the servers: order
// lists every interception-eligible path the job will read, in global
// access order; each server receives the ordered sub-list it homes
// (every replica home with Replicas > 1, so a failover read still finds
// planned bytes), chunked into OpPlan RPCs that append in order. gen
// tags the plan generation — reuse the epoch number — and horizon sets
// the servers' prefetch window (0 keeps their default). It returns the
// number of plan entries accepted; a failed server keeps its previous
// plan (prefetch degrades, reads are unaffected) and contributes the
// first error.
func (c *Client) InstallPlan(gen int64, order []string, horizon int) (int, error) {
	// Ordered slices, not a map keyed by server: the sim mirror shares
	// this shape and must iterate deterministically.
	groups := make([][]string, len(c.conns))
	for _, path := range order {
		abs, err := filepath.Abs(path)
		if err != nil || !c.Intercepts(abs) {
			continue
		}
		for _, srv := range c.view.Replicas(abs, c.cfg.Replicas) {
			groups[srv] = append(groups[srv], abs)
		}
	}
	installed := 0
	var firstErr error
	for srv, group := range groups {
		off := 0
		for off < len(group) {
			end := batchSpan(off, len(group), func(i int) int { return len(group[i]) })
			if end == off {
				end = off + 1 // unencodable path: let the server refuse it
			}
			blob, err := transport.EncodeBatchPaths(group[off:end])
			if err == nil {
				var resp *transport.Response
				resp, err = c.conns[srv].Call(&transport.Request{
					Op: transport.OpPlan, Handle: gen, Off: int64(off), Len: int64(horizon), Path: blob,
				})
				if err == nil {
					err = resp.Error()
					resp.Release()
				}
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("hvac client: install plan on server %d: %w", srv, err)
				}
				break // later chunks cannot append past a lost one
			}
			installed += end - off
			off = end
		}
	}
	return installed, firstErr
}
