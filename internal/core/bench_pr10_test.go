package core

import (
	"fmt"
	"path/filepath"
	"testing"
)

// The ISSUE 10 zero-copy benchmarks: warm whole-file reads over real TCP
// with the sendfile serve plane armed and disarmed, at the two payload
// sizes that bracket the deployment (64 KiB segment-ish samples, 1 MiB
// loader records). Everything is measured end to end through the client
// — open, one ranged read of the full payload, close — so ns/op carries
// the RPC fixed cost too; MB/s (b.SetBytes) is the headline number and
// zcsends/op is the stable cross-machine signal that the armed runs
// actually served through sendfile (~1 per warm read on Linux, 0
// disarmed). BENCH_PR10.json holds the committed baseline.

func benchWarmZeroCopy(b *testing.B, size int, zc bool) {
	pfsDir := filepath.Join(b.TempDir(), "dataset")
	paths := benchWritePFS(b, pfsDir, 4, size)
	srv, err := StartServer(ServerConfig{
		ListenAddr: "127.0.0.1:0",
		PFSDir:     pfsDir,
		CacheDir:   filepath.Join(b.TempDir(), "nvme"),
		ZeroCopy:   zc,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	cli, err := NewClient(ClientConfig{Servers: []string{srv.Addr()}, DatasetDir: pfsDir})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(cli.Close)
	for _, p := range paths { // warm the cache; the measured reads never miss
		if _, err := cli.ReadAll(p); err != nil {
			b.Fatal(err)
		}
	}
	srv.WaitIdle()
	warm := srv.Stats()

	b.SetBytes(int64(size))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.ReadAll(paths[i%len(paths)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := srv.Stats()
	b.ReportMetric(float64(st.ZeroCopySends-warm.ZeroCopySends)/float64(b.N), "zcsends/op")
	b.ReportMetric(float64(st.ZeroCopyFallbacks-warm.ZeroCopyFallbacks)/float64(b.N), "zcfallbacks/op")
}

func BenchmarkWarmRead64K(b *testing.B) {
	for _, zc := range []bool{false, true} {
		b.Run(fmt.Sprintf("zerocopy_%v", zc), func(b *testing.B) { benchWarmZeroCopy(b, 64<<10, zc) })
	}
}

func BenchmarkWarmRead1M(b *testing.B) {
	for _, zc := range []bool{false, true} {
		b.Run(fmt.Sprintf("zerocopy_%v", zc), func(b *testing.B) { benchWarmZeroCopy(b, 1<<20, zc) })
	}
}
