package core

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hvac/internal/testutil"
	"hvac/internal/transport"
)

// Tests for the ISSUE 4 hot-path work: wire-length validation, the
// condition-variable WaitIdle, the warm handleRead allocation budget, the
// sharded handle table under concurrency, and the client readahead
// pipeline.

func TestCheckReadLen(t *testing.T) {
	cases := []struct {
		n  int64
		ok bool
	}{
		{0, true},
		{1, true},
		{transport.MaxFrame / 2, true},
		{-1, false},
		{transport.MaxFrame/2 + 1, false},
		{transport.MaxFrame, false},
		{1 << 62, false},
	}
	for _, c := range cases {
		err := checkReadLen(c.n)
		if (err == nil) != c.ok {
			t.Errorf("checkReadLen(%d) = %v, want ok=%v", c.n, err, c.ok)
		}
	}
}

func TestWaitIdle(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 8, 4096)
	servers, cli := startCluster(t, pfsDir, 1, nil, nil)
	srv := servers[0]

	// No in-flight copies: WaitIdle must return immediately, not hang on
	// a condition nobody will ever signal.
	done := make(chan struct{})
	go func() { srv.WaitIdle(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitIdle hung with no in-flight copies")
	}

	// Schedule real copies, then have several waiters block until the
	// movers drain; all must wake.
	for _, p := range paths {
		if _, err := cli.ReadAll(p); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); srv.WaitIdle() }()
	}
	waited := make(chan struct{})
	go func() { wg.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		t.Fatal("WaitIdle waiters never woke after the queue drained")
	}
	if srv.CachedFiles() != len(paths) {
		t.Fatalf("after WaitIdle: %d files cached, want %d", srv.CachedFiles(), len(paths))
	}
}

// TestHandleReadWarmAllocBudget pins the server's warm cached-read cost:
// with the pools primed, serving a 64 KiB read allocates at most one
// object per call (measurement noise headroom — the steady state is
// zero: pooled Response, pooled payload, sharded lookup, atomic stats).
func TestHandleReadWarmAllocBudget(t *testing.T) {
	if testutil.RaceEnabled {
		t.Skip("allocation budgets do not hold under -race (sync.Pool drops Puts)")
	}
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	p := filepath.Join(pfsDir, "f.bin")
	os.MkdirAll(pfsDir, 0o755)
	if err := os.WriteFile(p, make([]byte, 1<<20), 0o644); err != nil {
		t.Fatal(err)
	}
	servers, _ := startCluster(t, pfsDir, 1, nil, nil)
	srv := servers[0]

	open := srv.handle(&transport.Request{Op: transport.OpOpen, Path: p})
	if !open.OK() {
		t.Fatal(open.Error())
	}
	srv.WaitIdle()
	req := &transport.Request{Op: transport.OpRead, Handle: open.Handle, Len: 64 << 10}
	for i := 0; i < 8; i++ {
		srv.handle(req).Release()
	}
	if n := testing.AllocsPerRun(200, func() {
		resp := srv.handle(req)
		if !resp.OK() {
			t.Fatal(resp.Error())
		}
		resp.Release()
	}); n > 1 {
		t.Errorf("warm handleRead allocates %.1f/op, want <= 1", n)
	}
}

// TestConcurrentHandleReads hammers the sharded handle table and atomic
// counters from many goroutines over distinct handles (run under -race
// via make check): every read must see its own file's bytes.
func TestConcurrentHandleReads(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 32, 8192)
	servers, _ := startCluster(t, pfsDir, 1, nil, nil)
	srv := servers[0]

	handles := make([]int64, len(paths))
	for i, p := range paths {
		resp := srv.handle(&transport.Request{Op: transport.OpOpen, Path: p})
		if !resp.OK() {
			t.Fatal(resp.Error())
		}
		handles[i] = resp.Handle
	}
	srv.WaitIdle()

	const perWorker = 200
	var wg sync.WaitGroup
	for i := range handles {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			want := byte(idx)
			req := &transport.Request{Op: transport.OpRead, Handle: handles[idx], Len: 512}
			for j := 0; j < perWorker; j++ {
				req.Off = int64(j % 16 * 512)
				resp := srv.handle(req)
				if !resp.OK() {
					t.Error(resp.Error())
					return
				}
				for _, b := range resp.Data {
					if b != want {
						t.Errorf("handle %d read byte %d, want %d", handles[idx], b, want)
						resp.Release()
						return
					}
				}
				resp.Release()
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	wantReads := int64(len(handles) * perWorker)
	if st.Reads != wantReads {
		t.Errorf("Reads = %d, want %d (atomic counters dropped updates)", st.Reads, wantReads)
	}
	if st.BytesServed != wantReads*512 {
		t.Errorf("BytesServed = %d, want %d", st.BytesServed, wantReads*512)
	}
	for i := range handles {
		if resp := srv.handle(&transport.Request{Op: transport.OpClose, Handle: handles[i]}); !resp.OK() {
			t.Fatal(resp.Error())
		}
	}
}

// TestReadaheadSequential checks byte identity of the pipelined
// sequential-read path against the file content and confirms the
// pipeline actually engaged.
func TestReadaheadSequential(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	p := filepath.Join(pfsDir, "seq.bin")
	os.MkdirAll(pfsDir, 0o755)
	content := make([]byte, 300_000)
	for i := range content {
		content[i] = byte(i * 13)
	}
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	_, cli := startCluster(t, pfsDir, 2, nil, nil)

	f, err := cli.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), content) {
		t.Fatalf("pipelined sequential read returned %d bytes, mismatch with content (%d bytes)", got.Len(), len(content))
	}
	st := cli.Stats()
	if st.Readaheads == 0 {
		t.Error("sequential read issued no readaheads")
	}
	if st.ReadaheadHits == 0 {
		t.Error("sequential read consumed no readahead chunks")
	}
}

// TestReadaheadDisabled: Readahead < 0 turns the pipeline off entirely.
func TestReadaheadDisabled(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	paths := writePFS(t, pfsDir, 1, 50_000)
	_, cli := startCluster(t, pfsDir, 1, nil, func(c *ClientConfig) { c.Readahead = -1 })

	f, err := cli.Open(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	f.Close()
	if got.Len() != 50_000 {
		t.Fatalf("read %d bytes, want 50000", got.Len())
	}
	if st := cli.Stats(); st.Readaheads != 0 || st.ReadaheadHits != 0 {
		t.Fatalf("readahead ran while disabled: %+v", st)
	}
}

// TestReadaheadDegradeOnServerDeath kills the serving server mid-stream:
// the in-flight readahead chunk fails, the read falls back to the PFS,
// and the bytes keep coming out identical.
func TestReadaheadDegradeOnServerDeath(t *testing.T) {
	pfsDir := filepath.Join(t.TempDir(), "dataset")
	p := filepath.Join(pfsDir, "die.bin")
	os.MkdirAll(pfsDir, 0o755)
	content := make([]byte, 200_000)
	for i := range content {
		content[i] = byte(i * 7)
	}
	if err := os.WriteFile(p, content, 0o644); err != nil {
		t.Fatal(err)
	}
	servers, cli := startCluster(t, pfsDir, 1, nil, func(c *ClientConfig) {
		c.CallTimeout = 2 * time.Second
		c.RetryAttempts = 1
	})

	f, err := cli.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	buf := make([]byte, 8192)
	for i := 0; ; i++ {
		if i == 3 {
			servers[0].Close() // the readahead for the next chunk is in flight or about to fail
		}
		n, err := f.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), content) {
		t.Fatalf("read %d bytes after mid-stream server death, content mismatch", got.Len())
	}
	if st := cli.Stats(); st.Degrades == 0 {
		t.Error("server death during pipelined read did not degrade the handle to the PFS")
	}
}
