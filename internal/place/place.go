// Package place implements HVAC's hash-based I/O redirection (§III-E):
// the cache location of a file is computed algorithmically from the file
// path and the job's node allocation, so no metadata store, in-memory
// database or broadcast lookup is ever needed, and load spreads evenly
// across the allocation's HVAC servers.
//
// The paper uses a single hash of (path, allocation) onto the server list;
// that is ModHash here, the default. Rendezvous (highest-random-weight)
// and a consistent-hash ring are provided for the ablation benchmarks, and
// every policy can return R distinct replicas to support the paper's
// future-work replication/failover design (§III-H).
package place

import (
	"hash/fnv"
	"sort"
)

// Policy deterministically maps a file path onto one of n servers.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Place returns the home server index in [0, n) for path.
	Place(path string, n int) int
	// Replicas returns r distinct server indices for path, primary first.
	// r is clamped to n.
	Replicas(path string, n, r int) []int
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	//hvaclint:ignore errdrop hash.Hash.Write is documented never to return an error
	h.Write([]byte(s))
	return h.Sum64()
}

// mix64 is the splitmix64 finalizer, used to combine a path hash with a
// server index with full avalanche — plain FNV over a concatenated suffix
// is too weakly mixed for argmax-style selection (rendezvous) to balance.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ModHash is the paper's placement: FNV-1a over the path, modulo the
// allocation size. An optional AllocationSalt mixes in the job's node
// allocation so distinct jobs spread the same dataset differently.
type ModHash struct {
	AllocationSalt uint64
}

// Name implements Policy.
func (ModHash) Name() string { return "modhash" }

// Place implements Policy.
func (m ModHash) Place(path string, n int) int {
	if n <= 0 {
		panic("place: no servers")
	}
	return int(mix64(hash64(path)^m.AllocationSalt) % uint64(n))
}

// Replicas implements Policy: the primary plus consecutive probe slots.
func (m ModHash) Replicas(path string, n, r int) []int {
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	first := m.Place(path, n)
	out := make([]int, 0, r)
	for i := 0; i < r; i++ {
		out = append(out, (first+i)%n)
	}
	return out
}

// Rendezvous is highest-random-weight hashing: minimal disruption when the
// allocation grows or shrinks, at O(n) per placement.
type Rendezvous struct {
	AllocationSalt uint64
}

// Name implements Policy.
func (Rendezvous) Name() string { return "rendezvous" }

func (rv Rendezvous) weight(path string, server int) uint64 {
	return mix64(hash64(path) ^ rv.AllocationSalt ^ (uint64(server)+1)*0x9e3779b97f4a7c15)
}

// Place implements Policy.
func (rv Rendezvous) Place(path string, n int) int {
	if n <= 0 {
		panic("place: no servers")
	}
	best, bestW := 0, uint64(0)
	for s := 0; s < n; s++ {
		if w := rv.weight(path, s); w >= bestW {
			best, bestW = s, w
		}
	}
	return best
}

// Replicas implements Policy: the r highest-weight servers.
func (rv Rendezvous) Replicas(path string, n, r int) []int {
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	type sw struct {
		s int
		w uint64
	}
	all := make([]sw, n)
	for s := 0; s < n; s++ {
		all[s] = sw{s, rv.weight(path, s)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].s < all[j].s
	})
	out := make([]int, r)
	for i := 0; i < r; i++ {
		out[i] = all[i].s
	}
	return out
}

// Ring is consistent hashing with virtual nodes. Rings are memoised per
// allocation size; a Ring value must not be copied after first use.
type Ring struct {
	// VNodes is the number of virtual nodes per server (default 64).
	VNodes int
	rings  map[int]ringTable
}

type ringTable struct {
	points  []uint64
	servers []int
}

// Name implements Policy.
func (*Ring) Name() string { return "ring" }

func (rg *Ring) table(n int) ringTable {
	if rg.rings == nil {
		rg.rings = make(map[int]ringTable)
	}
	if t, ok := rg.rings[n]; ok {
		return t
	}
	v := rg.VNodes
	if v <= 0 {
		v = 64
	}
	t := ringTable{
		points:  make([]uint64, 0, n*v),
		servers: make([]int, 0, n*v),
	}
	type pt struct {
		p uint64
		s int
	}
	pts := make([]pt, 0, n*v)
	for s := 0; s < n; s++ {
		for k := 0; k < v; k++ {
			pts = append(pts, pt{mix64(uint64(s)<<32 | uint64(k)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].p < pts[j].p })
	for _, e := range pts {
		t.points = append(t.points, e.p)
		t.servers = append(t.servers, e.s)
	}
	rg.rings[n] = t
	return t
}

// Place implements Policy.
func (rg *Ring) Place(path string, n int) int {
	if n <= 0 {
		panic("place: no servers")
	}
	t := rg.table(n)
	h := hash64(path)
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i] >= h })
	if i == len(t.points) {
		i = 0
	}
	return t.servers[i]
}

// Replicas implements Policy: walk the ring collecting distinct servers.
func (rg *Ring) Replicas(path string, n, r int) []int {
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	t := rg.table(n)
	h := hash64(path)
	i := sort.Search(len(t.points), func(i int) bool { return t.points[i] >= h })
	out := make([]int, 0, r)
	seen := make(map[int]bool, r)
	for len(out) < r {
		if i == len(t.points) {
			i = 0
		}
		s := t.servers[i]
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
		i++
	}
	return out
}
