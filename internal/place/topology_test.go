package place

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTopologyPrimaryMatchesBase(t *testing.T) {
	base := ModHash{}
	topo := Topology{Base: base, RackSize: 4}
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/f%04d", i)
		if topo.Place(p, 64) != base.Place(p, 64) {
			t.Fatal("topology changed the primary placement")
		}
	}
}

func TestTopologyReplicasSpanRacks(t *testing.T) {
	topo := Topology{Base: Rendezvous{}, RackSize: 4}
	const n = 64 // 16 racks
	for i := 0; i < 200; i++ {
		p := fmt.Sprintf("/f%04d", i)
		reps := topo.Replicas(p, n, 3)
		if len(reps) != 3 {
			t.Fatalf("replicas = %v", reps)
		}
		racks := map[int]bool{}
		for _, s := range reps {
			racks[s/4] = true
		}
		if len(racks) != 3 {
			t.Fatalf("replicas %v span only %d racks", reps, len(racks))
		}
	}
}

func TestTopologyFallsBackWhenRacksExhausted(t *testing.T) {
	// 4 servers in ONE rack: 3 replicas must still be produced.
	topo := Topology{Base: ModHash{}, RackSize: 8}
	reps := topo.Replicas("/x", 4, 3)
	if len(reps) != 3 {
		t.Fatalf("replicas = %v, want 3 despite a single rack", reps)
	}
	seen := map[int]bool{}
	for _, s := range reps {
		if seen[s] {
			t.Fatalf("duplicate replica in %v", reps)
		}
		seen[s] = true
	}
}

func TestTopologyProperties(t *testing.T) {
	topo := Topology{RackSize: 6}
	f := func(path string, servers, reps uint8) bool {
		n := int(servers%48) + 1
		r := int(reps%6) + 1
		got := topo.Replicas(path, n, r)
		want := r
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		if got[0] != topo.Place(path, n) {
			return false
		}
		seen := map[int]bool{}
		for _, s := range got {
			if s < 0 || s >= n || seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyDefaults(t *testing.T) {
	topo := Topology{}
	if topo.Name() != "topology(modhash)" {
		t.Fatalf("name = %s", topo.Name())
	}
	if got := topo.Place("/a", 10); got < 0 || got >= 10 {
		t.Fatalf("place = %d", got)
	}
	if topo.rackSize() != 18 {
		t.Fatalf("default rack size = %d, want 18 (Summit cabinet)", topo.rackSize())
	}
}
