package place

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func policies() []Policy {
	return []Policy{ModHash{}, Rendezvous{}, &Ring{}}
}

func TestDeterministicAndInRange(t *testing.T) {
	for _, pol := range policies() {
		f := func(path string, servers uint8) bool {
			n := int(servers%64) + 1
			a := pol.Place(path, n)
			b := pol.Place(path, n)
			return a == b && a >= 0 && a < n
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

func TestReplicasDistinctAndPrimaryFirst(t *testing.T) {
	for _, pol := range policies() {
		f := func(path string, servers, reps uint8) bool {
			n := int(servers%32) + 1
			r := int(reps%8) + 1
			got := pol.Replicas(path, n, r)
			want := r
			if want > n {
				want = n
			}
			if len(got) != want {
				return false
			}
			if got[0] != pol.Place(path, n) {
				return false
			}
			seen := map[int]bool{}
			for _, s := range got {
				if s < 0 || s >= n || seen[s] {
					return false
				}
				seen[s] = true
			}
			return true
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// Balance: placing many distinct paths over n servers should come out
// close to uniform — the property Fig. 15 plots.
func TestBalance(t *testing.T) {
	const files = 60000
	for _, pol := range policies() {
		for _, n := range []int{8, 64, 256} {
			counts := make([]int, n)
			for i := 0; i < files; i++ {
				counts[pol.Place(fmt.Sprintf("/data/imagenet/n%08d.JPEG", i), n)]++
			}
			mean := float64(files) / float64(n)
			var ss float64
			for _, c := range counts {
				d := float64(c) - mean
				ss += d * d
			}
			cv := math.Sqrt(ss/float64(n)) / mean
			// Binomial sampling gives cv ~= sqrt(n/files); allow 4x slack.
			limit := 4 * math.Sqrt(float64(n)/float64(files))
			if pol.Name() == "ring" {
				// The ring adds arc-length variance ~ 1/sqrt(vnodes).
				limit += 0.25
			}
			if cv > limit {
				t.Errorf("%s n=%d: cv=%.4f exceeds %.4f", pol.Name(), n, cv, limit)
			}
		}
	}
}

func TestAllocationSaltChangesPlacement(t *testing.T) {
	a := ModHash{AllocationSalt: 1}
	b := ModHash{AllocationSalt: 2}
	diff := 0
	for i := 0; i < 1000; i++ {
		p := fmt.Sprintf("/f%04d", i)
		if a.Place(p, 16) != b.Place(p, 16) {
			diff++
		}
	}
	if diff < 800 {
		t.Fatalf("only %d/1000 placements changed with salt", diff)
	}
}

// Rendezvous moves only ~1/(n+1) of files when a server is added; modulo
// reshuffles almost everything. This is the ablation's point.
func TestReshuffleOnGrowth(t *testing.T) {
	moved := func(pol Policy, n int) float64 {
		const files = 20000
		m := 0
		for i := 0; i < files; i++ {
			p := fmt.Sprintf("/f%06d", i)
			if pol.Place(p, n) != pol.Place(p, n+1) {
				m++
			}
		}
		return float64(m) / files
	}
	rv := moved(Rendezvous{}, 16)
	mh := moved(ModHash{}, 16)
	if rv > 0.12 {
		t.Fatalf("rendezvous moved %.2f of files on growth, want ~1/17", rv)
	}
	if mh < 0.5 {
		t.Fatalf("modhash moved only %.2f on growth; expected a near-total reshuffle", mh)
	}
	rg := moved(&Ring{}, 16)
	if rg > 0.2 {
		t.Fatalf("ring moved %.2f of files on growth, want ~1/17", rg)
	}
}

func TestSingleServer(t *testing.T) {
	for _, pol := range policies() {
		if got := pol.Place("/any", 1); got != 0 {
			t.Fatalf("%s: single server placement = %d", pol.Name(), got)
		}
		if got := pol.Replicas("/any", 1, 3); len(got) != 1 || got[0] != 0 {
			t.Fatalf("%s: single server replicas = %v", pol.Name(), got)
		}
	}
}

func TestPlaceZeroServersPanics(t *testing.T) {
	for _, pol := range policies() {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic with 0 servers", pol.Name())
				}
			}()
			pol.Place("/x", 0)
		}()
	}
}

func TestRingMemoization(t *testing.T) {
	rg := &Ring{VNodes: 16}
	first := rg.Place("/a", 32)
	for i := 0; i < 100; i++ {
		if rg.Place("/a", 32) != first {
			t.Fatal("memoised ring changed placement")
		}
	}
	if len(rg.rings) != 1 {
		t.Fatalf("expected 1 memoised ring, got %d", len(rg.rings))
	}
	rg.Place("/a", 64)
	if len(rg.rings) != 2 {
		t.Fatalf("expected 2 memoised rings, got %d", len(rg.rings))
	}
}
