package place

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestViewFullMembershipMatchesPolicy: with every member active, the view
// is a pass-through — same primary, same replica set as the bare policy.
func TestViewFullMembershipMatchesPolicy(t *testing.T) {
	for _, pol := range policies() {
		f := func(path string, servers, reps uint8) bool {
			n := int(servers%16) + 1
			r := int(reps%4) + 1
			v := NewView(pol, n)
			got := v.Replicas(path, r)
			want := pol.Replicas(path, n, r)
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			return v.Place(path) == pol.Place(path, n) && v.Version() == 0
		}
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// TestViewMinimalMovement is the minimal-key-movement property: under
// Ring and Rendezvous, removing one of n servers relocates exactly the
// keys that were homed on it — about K/n of K keys, never more than a
// hash-imbalance slack over that — and a join that restores the member
// restores every key to its original home. A no-op Leave/Join (member
// already in that state) moves zero keys and leaves Version unchanged.
func TestViewMinimalMovement(t *testing.T) {
	const keys = 512
	for _, pol := range []Policy{Rendezvous{}, &Ring{}} {
		f := func(servers, victimSeed uint8) bool {
			n := int(servers%7) + 2 // 2..8 servers
			victim := int(victimSeed) % n
			v := NewView(pol, n)

			before := make([]int, keys)
			for k := 0; k < keys; k++ {
				before[k] = v.Place(fmt.Sprintf("/data/f%05d.bin", k))
			}

			// No-op membership calls move nothing.
			if v.Join(victim) || v.Leave(-1) || v.Leave(n) {
				return false
			}
			if v.Version() != 0 {
				return false
			}

			if !v.Leave(victim) {
				return false
			}
			moved := 0
			for k := 0; k < keys; k++ {
				after := v.Place(fmt.Sprintf("/data/f%05d.bin", k))
				if after == victim {
					return false // departed member must not be placed
				}
				if after != before[k] {
					// Only keys homed on the victim may move.
					if before[k] != victim {
						return false
					}
					moved++
				} else if before[k] == victim {
					return false
				}
			}
			// ~K/n with slack for hash imbalance (3x expectation).
			if moved > 3*keys/n {
				return false
			}

			// Join restores the exact original placement.
			if !v.Join(victim) {
				return false
			}
			for k := 0; k < keys; k++ {
				if v.Place(fmt.Sprintf("/data/f%05d.bin", k)) != before[k] {
					return false
				}
			}
			return v.Version() == 2
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// TestViewReplicasUnderLeave: after a leave, replica sets stay distinct,
// active-only, primary-first, and clamped to the active member count.
func TestViewReplicasUnderLeave(t *testing.T) {
	for _, pol := range policies() {
		f := func(path string, servers, reps, victimSeed uint8) bool {
			n := int(servers%8) + 2
			r := int(reps%4) + 1
			victim := int(victimSeed) % n
			v := NewView(pol, n)
			v.Leave(victim)
			got := v.Replicas(path, r)
			want := r
			if want > n-1 {
				want = n - 1
			}
			if len(got) != want {
				return false
			}
			if got[0] != v.Place(path) {
				return false
			}
			seen := map[int]bool{}
			for _, s := range got {
				if s == victim || s < 0 || s >= n || seen[s] {
					return false
				}
				seen[s] = true
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
	}
}

// TestViewLastMemberCannotLeave: the view refuses to empty itself.
func TestViewLastMemberCannotLeave(t *testing.T) {
	v := NewView(ModHash{}, 2)
	if !v.Leave(0) {
		t.Fatal("first leave refused")
	}
	if v.Leave(1) {
		t.Fatal("last active member allowed to leave")
	}
	if v.NumActive() != 1 || !v.Alive(1) {
		t.Fatalf("active=%d alive(1)=%v", v.NumActive(), v.Alive(1))
	}
	if got := v.Replicas("/x", 4); len(got) != 1 || got[0] != 1 {
		t.Fatalf("replicas = %v, want [1]", got)
	}
}
