package place

import "sync"

// View is a versioned membership view over a placement Policy: the fixed
// universe of n servers the job was launched with, minus the members that
// have left (crashed, been drained) and not yet rejoined. Placement is
// computed by filtering the base policy's full preference order down to
// the active members, so a view change moves only the keys that were
// homed on the departed server (for Rendezvous and Ring — the minimal
// key range), and an unchanged view places exactly like the bare policy.
//
// The view is safe for concurrent use. Version() increments on every
// effective Join/Leave, so readers can cheaply detect membership changes
// and invalidate anything derived from an older view.
type View struct {
	mu      sync.RWMutex
	base    Policy
	n       int
	version uint64
	down    map[int]bool
}

// NewView wraps base over a universe of n servers, all initially active.
func NewView(base Policy, n int) *View {
	if n <= 0 {
		panic("place: view over no servers")
	}
	return &View{base: base, n: n, down: make(map[int]bool)}
}

// Base returns the wrapped policy.
func (v *View) Base() Policy { return v.base }

// Size returns the universe size n (active and departed members).
func (v *View) Size() int { return v.n }

// Version returns the membership version; it starts at 0 and increments
// on every Join/Leave that changes the active set.
func (v *View) Version() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.version
}

// NumActive returns the number of active members.
func (v *View) NumActive() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.n - len(v.down)
}

// Active returns the active member indices in ascending order.
func (v *View) Active() []int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]int, 0, v.n-len(v.down))
	for i := 0; i < v.n; i++ {
		if !v.down[i] {
			out = append(out, i)
		}
	}
	return out
}

// Alive reports whether member i is active.
func (v *View) Alive(i int) bool {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return i >= 0 && i < v.n && !v.down[i]
}

// Leave removes member i from the active set. It returns true if the
// view changed (i was active), false if i was already down or out of
// range. Removing the last active member is refused.
func (v *View) Leave(i int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i >= v.n || v.down[i] {
		return false
	}
	if len(v.down) == v.n-1 {
		return false
	}
	v.down[i] = true
	v.version++
	return true
}

// Join returns member i to the active set. It returns true if the view
// changed (i was down), false otherwise.
func (v *View) Join(i int) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if i < 0 || i >= v.n || !v.down[i] {
		return false
	}
	delete(v.down, i)
	v.version++
	return true
}

// Place returns the home server for path among the active members: the
// first active server in the base policy's preference order.
func (v *View) Place(path string) int {
	return v.Replicas(path, 1)[0]
}

// OwnedBy reports whether srv is among path's first r replica homes in
// this view. It is the per-server key-enumeration predicate: a planner
// walks its key universe and keeps exactly the keys it owns, instead of
// asking some central party who owns what.
func (v *View) OwnedBy(path string, srv, r int) bool {
	for _, s := range v.Replicas(path, r) {
		if s == srv {
			return true
		}
	}
	return false
}

// Replicas returns up to r distinct active servers for path, primary
// first, by filtering the base policy's full preference order
// base.Replicas(path, n, n) to the active members. With every member
// active this is exactly base.Replicas(path, n, r) (the preference
// order's prefix), so an unchanged view moves zero keys; with one member
// down, only keys that ranked the departed server inside their first r
// choices see any change.
func (v *View) Replicas(path string, r int) []int {
	if r < 1 {
		r = 1
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if len(v.down) == 0 {
		// Fast path: full membership delegates straight to the policy.
		return v.base.Replicas(path, v.n, r)
	}
	active := v.n - len(v.down)
	if r > active {
		r = active
	}
	order := v.base.Replicas(path, v.n, v.n)
	out := make([]int, 0, r)
	for _, s := range order {
		if v.down[s] {
			continue
		}
		out = append(out, s)
		if len(out) == r {
			break
		}
	}
	return out
}
