package place

// Topology makes any placement policy rack-aware, implementing the
// §III-H future-work note that "topology ... will also be considered when
// calculating the location of a given file": the primary copy stays where
// the base policy puts it, but additional replicas are forced into
// *different racks*, so a rack-level failure (switch, power) cannot take
// out every copy of a file.
type Topology struct {
	// Base is the underlying policy (nil means ModHash).
	Base Policy
	// RackSize is the number of consecutive server indices per rack
	// (Summit cabinets hold 18 nodes; the default is 18).
	RackSize int
}

func (t Topology) base() Policy {
	if t.Base == nil {
		return ModHash{}
	}
	return t.Base
}

func (t Topology) rackSize() int {
	if t.RackSize <= 0 {
		return 18
	}
	return t.RackSize
}

// Name implements Policy.
func (t Topology) Name() string { return "topology(" + t.base().Name() + ")" }

// Place implements Policy: identical to the base policy.
func (t Topology) Place(path string, n int) int { return t.base().Place(path, n) }

// rackOf returns the rack index of a server.
func (t Topology) rackOf(server int) int { return server / t.rackSize() }

// Replicas implements Policy: candidates come from the base policy's
// preference order, but a candidate sharing a rack with an already-chosen
// replica is skipped while rack-distinct candidates remain.
func (t Topology) Replicas(path string, n, r int) []int {
	if r > n {
		r = n
	}
	if r < 1 {
		r = 1
	}
	// Base preference order over every server: take the base's full
	// replica list (length n) as the candidate ranking.
	candidates := t.base().Replicas(path, n, n)
	out := make([]int, 0, r)
	usedRacks := make(map[int]bool, r)
	// First pass: rack-distinct picks in preference order.
	for _, s := range candidates {
		if len(out) == r {
			return out
		}
		if usedRacks[t.rackOf(s)] {
			continue
		}
		usedRacks[t.rackOf(s)] = true
		out = append(out, s)
	}
	// Not enough racks: fill with the remaining candidates in order.
	chosen := make(map[int]bool, len(out))
	for _, s := range out {
		chosen[s] = true
	}
	for _, s := range candidates {
		if len(out) == r {
			break
		}
		if !chosen[s] {
			chosen[s] = true
			out = append(out, s)
		}
	}
	return out
}
