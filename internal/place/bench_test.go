package place

import (
	"fmt"
	"testing"
)

func benchPaths(n int) []string {
	paths := make([]string, n)
	for i := range paths {
		paths[i] = fmt.Sprintf("/gpfs/alpine/imagenet21k/train/%07d.rec", i)
	}
	return paths
}

func BenchmarkModHashPlace(b *testing.B) {
	paths := benchPaths(1024)
	pol := ModHash{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Place(paths[i%1024], 1024)
	}
}

func BenchmarkRendezvousPlace(b *testing.B) {
	paths := benchPaths(1024)
	pol := Rendezvous{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Place(paths[i%1024], 1024)
	}
}

func BenchmarkRingPlace(b *testing.B) {
	paths := benchPaths(1024)
	pol := &Ring{}
	pol.Place(paths[0], 1024) // build the ring outside the loop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Place(paths[i%1024], 1024)
	}
}

func BenchmarkModHashReplicas(b *testing.B) {
	paths := benchPaths(1024)
	pol := ModHash{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Replicas(paths[i%1024], 1024, 3)
	}
}
