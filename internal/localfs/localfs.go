// Package localfs models XFS on the node-local NVMe SSD — the paper's
// upper-bound baseline, where the complete dataset is staged to every
// node's 1.6 TB NVMe before the run (§IV-A3, "XFS-on-NVMe").
//
// Unlike GPFS there is no shared metadata service: opens cost only local
// CPU and the device, so aggregate throughput scales linearly with node
// count (§II-C: 22.5 TB/s at 4,096 nodes vs GPFS's 2.5 TB/s).
package localfs

import (
	"fmt"
	"time"

	"hvac/internal/device"
	"hvac/internal/sim"
	"hvac/internal/vfs"
)

// Config describes the local file-system software costs.
type Config struct {
	// OpenCost is the CPU + FS metadata cost of a local open (dentry,
	// inode, no network).
	OpenCost time.Duration
	// CloseCost is the cost of a local close.
	CloseCost time.Duration
	// ReadSetup is the per-read syscall/pagecache-miss overhead on top of
	// the device transfer.
	ReadSetup time.Duration
}

// XFS returns typical XFS-on-NVMe software costs.
func XFS() Config {
	return Config{
		OpenCost:  15 * time.Microsecond,
		CloseCost: 4 * time.Microsecond,
		ReadSetup: 6 * time.Microsecond,
	}
}

// FS is a node-private file system over a block device.
type FS struct {
	cfg     Config
	dev     *device.Device
	ns      *vfs.Namespace
	handles *vfs.HandleTable

	opens int64
	reads int64
	bytes int64
}

// New builds a local FS over dev containing the files in ns (the staged
// dataset copy).
func New(cfg Config, dev *device.Device, ns *vfs.Namespace) *FS {
	return &FS{cfg: cfg, dev: dev, ns: ns, handles: vfs.NewHandleTable()}
}

var _ vfs.FS = (*FS)(nil)

// Name implements vfs.FS.
func (f *FS) Name() string { return "xfs-nvme" }

// Device returns the backing device.
func (f *FS) Device() *device.Device { return f.dev }

// Namespace returns the staged file set.
func (f *FS) Namespace() *vfs.Namespace { return f.ns }

// Open implements vfs.FS with purely local cost.
func (f *FS) Open(p *sim.Proc, path string) (vfs.Handle, int64, error) {
	p.Sleep(f.cfg.OpenCost)
	size, ok := f.ns.Lookup(path)
	if !ok {
		return 0, 0, fmt.Errorf("xfs: open %s: %w", path, vfs.ErrNotExist)
	}
	f.opens++
	return f.handles.Open(path, size), size, nil
}

// ReadAt implements vfs.FS against the NVMe device.
func (f *FS) ReadAt(p *sim.Proc, h vfs.Handle, off, n int64) (int64, error) {
	_, size, err := f.handles.Get(h)
	if err != nil {
		return 0, err
	}
	n = vfs.ClampRead(size, off, n)
	if n == 0 {
		return 0, nil
	}
	p.Sleep(f.cfg.ReadSetup)
	f.dev.Read(p, n)
	f.reads++
	f.bytes += n
	return n, nil
}

// Close implements vfs.FS.
func (f *FS) Close(p *sim.Proc, h vfs.Handle) error {
	if err := f.handles.Close(h); err != nil {
		return err
	}
	p.Sleep(f.cfg.CloseCost)
	return nil
}

// Stats reports op counters: opens, read ops, bytes read.
func (f *FS) Stats() (opens, reads, bytes int64) { return f.opens, f.reads, f.bytes }
