package localfs

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hvac/internal/device"
	"hvac/internal/sim"
	"hvac/internal/vfs"
)

func makeFS(eng *sim.Engine, files int, size int64) *FS {
	ns := vfs.NewNamespace()
	for i := 0; i < files; i++ {
		ns.Add(fmt.Sprintf("/nvme/f%05d", i), size)
	}
	dev := device.New(eng, "nvme0", device.SummitNVMe())
	return New(XFS(), dev, ns)
}

func TestOpenReadClose(t *testing.T) {
	eng := sim.NewEngine()
	f := makeFS(eng, 4, 64<<10)
	eng.Spawn("r", func(p *sim.Proc) {
		n, err := vfs.ReadFile(p, f, "/nvme/f00002")
		if err != nil || n != 64<<10 {
			t.Errorf("read = %d,%v", n, err)
		}
		if _, _, err := f.Open(p, "/gone"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("missing open err = %v", err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	opens, reads, bytes := f.Stats()
	if opens != 1 || reads != 1 || bytes != 64<<10 {
		t.Fatalf("stats = %d,%d,%d", opens, reads, bytes)
	}
}

func TestBadHandle(t *testing.T) {
	eng := sim.NewEngine()
	f := makeFS(eng, 1, 100)
	eng.Spawn("r", func(p *sim.Proc) {
		if _, err := f.ReadAt(p, vfs.Handle(99), 0, 10); !errors.Is(err, vfs.ErrBadHandle) {
			t.Errorf("err = %v", err)
		}
		if err := f.Close(p, vfs.Handle(99)); !errors.Is(err, vfs.ErrBadHandle) {
			t.Errorf("close err = %v", err)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

// Independence: two nodes' local file systems do not contend — aggregate
// scales linearly, the core XFS-on-NVMe property from §II-C.
func TestLinearScaling(t *testing.T) {
	elapsed := func(nodes int) time.Duration {
		eng := sim.NewEngine()
		var end sim.Time
		for n := 0; n < nodes; n++ {
			f := makeFS(eng, 64, 32<<10)
			eng.Spawn("r", func(p *sim.Proc) {
				for i := 0; i < 64; i++ {
					if _, err := vfs.ReadFile(p, f, fmt.Sprintf("/nvme/f%05d", i)); err != nil {
						t.Error(err)
					}
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		if err := eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return time.Duration(end)
	}
	t1 := elapsed(1)
	t16 := elapsed(16)
	// Same per-node work: makespan should be flat as nodes grow.
	if t16 > t1+t1/10 {
		t.Fatalf("16-node makespan %v should equal 1-node %v (independent devices)", t16, t1)
	}
}

func TestDeviceParallelismBoundsNode(t *testing.T) {
	// Many concurrent readers on ONE node share that node's device.
	eng := sim.NewEngine()
	f := makeFS(eng, 256, 1<<20)
	var end sim.Time
	for c := 0; c < 16; c++ {
		c := c
		eng.Spawn("r", func(p *sim.Proc) {
			for i := 0; i < 16; i++ {
				vfs.ReadFile(p, f, fmt.Sprintf("/nvme/f%05d", c*16+i))
			}
			if p.Now() > end {
				end = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	moved := float64(256 * (1 << 20))
	bw := moved / sim.Time(end).Seconds()
	max := device.SummitNVMe().ReadBandwidth
	if bw > max*1.05 {
		t.Fatalf("node read bw %.2f GB/s exceeds device %.2f GB/s", bw/1e9, max/1e9)
	}
	if bw < max*0.5 {
		t.Fatalf("node read bw %.2f GB/s too far below device cap %.2f GB/s", bw/1e9, max/1e9)
	}
}
