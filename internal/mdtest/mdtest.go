// Package mdtest reimplements the MDTest benchmark the paper uses to
// motivate HVAC (§II-C): every process performs timed random
// <open-read-close> transactions against a file system, and the aggregate
// transactions/second exposes metadata-service saturation (32 KB files,
// Fig. 3) versus bandwidth saturation (8 MB files, Fig. 4).
package mdtest

import (
	"fmt"
	"time"

	"hvac/internal/sim"
	"hvac/internal/vfs"
)

// Config parameterises an MDTest run.
type Config struct {
	// Nodes and ProcsPerNode shape the MPI job.
	Nodes        int
	ProcsPerNode int
	// OpsPerProc is the number of <open-read-close> transactions each
	// process performs.
	OpsPerProc int
	// Files is the shared file population size.
	Files int
	// FileSize is the per-file size (32 KB and 8 MB in the paper).
	FileSize int64
	// Seed drives the random file choices.
	Seed uint64
}

// Result reports an MDTest run.
type Result struct {
	// TPS is aggregate transactions per second.
	TPS float64
	// Elapsed is the makespan (slowest process).
	Elapsed time.Duration
	// Ops is the total completed transactions.
	Ops int64
	// Errors counts failed transactions.
	Errors int64
	// AggregateBandwidth is payload bytes per second.
	AggregateBandwidth float64
}

// Namespace builds the file population for cfg.
func (cfg Config) Namespace() *vfs.Namespace {
	ns := vfs.NewNamespace()
	for i := 0; i < cfg.Files; i++ {
		ns.Add(cfg.Path(i), cfg.FileSize)
	}
	return ns
}

// Path returns the i-th test file path.
func (cfg Config) Path(i int) string {
	return fmt.Sprintf("/gpfs/mdtest/%08d.dat", i)
}

// Run executes the benchmark on eng against fsFor-provided file systems
// and drives the engine to completion.
func Run(eng *sim.Engine, cfg Config, fsFor func(node, proc int) vfs.FS) (*Result, error) {
	if cfg.Files <= 0 {
		return nil, fmt.Errorf("mdtest: no files configured")
	}
	if cfg.Nodes <= 0 || cfg.ProcsPerNode <= 0 || cfg.OpsPerProc <= 0 {
		return nil, fmt.Errorf("mdtest: nodes, procs and ops must be positive")
	}
	res := &Result{}
	var makespan sim.Time
	for node := 0; node < cfg.Nodes; node++ {
		for proc := 0; proc < cfg.ProcsPerNode; proc++ {
			rank := node*cfg.ProcsPerNode + proc
			fs := fsFor(node, proc)
			rng := sim.NewRNG(cfg.Seed ^ (uint64(rank)+1)*0x9e3779b97f4a7c15)
			eng.Spawn(fmt.Sprintf("mdtest-rank%d", rank), func(p *sim.Proc) {
				for op := 0; op < cfg.OpsPerProc; op++ {
					path := cfg.Path(rng.Intn(cfg.Files))
					n, err := vfs.ReadFile(p, fs, path)
					if err != nil {
						res.Errors++
						continue
					}
					res.Ops++
					res.AggregateBandwidth += float64(n) // bytes; divided later
				}
				if p.Now() > makespan {
					makespan = p.Now()
				}
			})
		}
	}
	start := eng.Now()
	if err := eng.RunAll(); err != nil {
		return nil, err
	}
	res.Elapsed = makespan.Sub(start)
	if res.Elapsed > 0 {
		sec := res.Elapsed.Seconds()
		res.TPS = float64(res.Ops) / sec
		res.AggregateBandwidth /= sec
	}
	return res, nil
}
