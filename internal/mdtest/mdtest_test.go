package mdtest

import (
	"testing"

	"hvac/internal/sim"
	"hvac/internal/summit"
)

func TestRunGPFS(t *testing.T) {
	cfg := Config{Nodes: 2, ProcsPerNode: 4, OpsPerProc: 25, Files: 64, FileSize: 32 << 10, Seed: 1}
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, cfg.Nodes, cfg.Namespace())
	res, err := Run(eng, cfg, cl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2*4*25 {
		t.Fatalf("ops = %d, want 200", res.Ops)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.TPS <= 0 || res.Elapsed <= 0 {
		t.Fatalf("tps=%f elapsed=%v", res.TPS, res.Elapsed)
	}
	wantBW := res.TPS * float64(32<<10)
	if diff := res.AggregateBandwidth - wantBW; diff > wantBW*0.01 || diff < -wantBW*0.01 {
		t.Fatalf("bandwidth %f inconsistent with tps %f", res.AggregateBandwidth, res.TPS)
	}
}

// The §II-C motivation: XFS-on-NVMe transaction rate scales with nodes
// while GPFS saturates on its metadata pool.
func TestScalingShape(t *testing.T) {
	tps := func(nodes int, xfs bool) float64 {
		cfg := Config{Nodes: nodes, ProcsPerNode: 6, OpsPerProc: 40, Files: 512, FileSize: 32 << 10, Seed: 2}
		eng := sim.NewEngine()
		cl := summit.NewCluster(eng, nodes, cfg.Namespace())
		cl.RegisterJob(nodes * cfg.ProcsPerNode)
		fs := cl.GPFSFS()
		if xfs {
			fs = cl.XFSFS()
		}
		res, err := Run(eng, cfg, fs)
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	gp16, gp256 := tps(16, false), tps(256, false)
	xf16, xf256 := tps(16, true), tps(256, true)
	// XFS scales ~linearly (16x nodes -> >12x tps).
	if xf256 < 12*xf16 {
		t.Fatalf("XFS scaling weak: %f -> %f", xf16, xf256)
	}
	// GPFS saturates on its metadata pool (<8x over the same growth).
	if gp256 > 8*gp16 {
		t.Fatalf("GPFS did not saturate: %f -> %f", gp16, gp256)
	}
	// At 256 nodes XFS is far ahead.
	if xf256 < 3*gp256 {
		t.Fatalf("XFS (%f) should dominate GPFS (%f) at 256 nodes", xf256, gp256)
	}
}

func TestValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := Run(eng, Config{}, nil); err == nil {
		t.Fatal("zero config accepted")
	}
	if _, err := Run(eng, Config{Files: 10}, nil); err == nil {
		t.Fatal("zero procs accepted")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := Config{Nodes: 2, ProcsPerNode: 2, OpsPerProc: 30, Files: 32, FileSize: 8 << 20, Seed: 3}
		eng := sim.NewEngine()
		cl := summit.NewCluster(eng, 2, cfg.Namespace())
		res, err := Run(eng, cfg, cl.GPFSFS())
		if err != nil {
			t.Fatal(err)
		}
		return res.TPS
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic mdtest: %f vs %f", a, b)
	}
}
