// Package baselines implements the two related-work systems the paper
// positions HVAC against (§II-D), so the comparison is reproducible
// rather than rhetorical:
//
//   - LPCC (Lustre persistent client caching, read-only mode): every node
//     caches what *it* reads on its own NVMe. No cross-node sharing, so a
//     job of N nodes pulls the dataset from the PFS up to N times, and
//     the cache "is limited to the size and performance of a single
//     node-local NVMe".
//   - BeeOND (BeeGFS On Demand): a transient shared file system striped
//     over the allocation's NVMe devices — fast data path, but it
//     re-introduces the metadata service HVAC's hash placement removes.
//
// Both implement vfs.FS, so the training simulator compares them against
// GPFS, XFS-on-NVMe and HVAC without modification.
package baselines

import (
	"time"

	"hvac/internal/cachestore"
	"hvac/internal/device"
	"hvac/internal/pfs"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

// LPCCCosts are the client-side software costs of the LPCC-style cache.
type LPCCCosts struct {
	// HitCheck is the local cache-lookup cost per open.
	HitCheck time.Duration
	// FillOverhead is the per-file bookkeeping cost of a cache fill.
	FillOverhead time.Duration
}

// DefaultLPCCCosts returns typical client-cache costs.
func DefaultLPCCCosts() LPCCCosts {
	return LPCCCosts{HitCheck: 6 * time.Microsecond, FillOverhead: 25 * time.Microsecond}
}

// LPCC is a node-private read-only cache over the node's NVMe: the
// §II-D "read-only cache over the SSD of a single client".
type LPCC struct {
	eng     *sim.Engine
	node    simnet.NodeID
	gpfs    *pfs.GPFS
	gpfsC   *pfs.Client
	dev     *device.Device
	index   *cachestore.Index
	costs   LPCCCosts
	handles *vfs.HandleTable
	hCached map[vfs.Handle]bool
	filling map[string]bool

	hits, misses int64
}

// NewLPCC builds the cache for one node. capacity is the NVMe share
// dedicated to the cache; policy nil means random eviction.
func NewLPCC(eng *sim.Engine, node simnet.NodeID, fabric *simnet.Fabric,
	g *pfs.GPFS, dev *device.Device, capacity int64, policy cachestore.Policy) *LPCC {
	return &LPCC{
		eng:     eng,
		node:    node,
		gpfs:    g,
		gpfsC:   g.Client(fabric, node),
		dev:     dev,
		index:   cachestore.NewIndex(capacity, policy),
		costs:   DefaultLPCCCosts(),
		handles: vfs.NewHandleTable(),
		hCached: make(map[vfs.Handle]bool),
		filling: make(map[string]bool),
	}
}

var _ vfs.FS = (*LPCC)(nil)

// Name implements vfs.FS.
func (l *LPCC) Name() string { return "lpcc" }

// Stats reports local cache hits and misses.
func (l *LPCC) Stats() (hits, misses int64) { return l.hits, l.misses }

// CachedFiles reports resident file count.
func (l *LPCC) CachedFiles() int { return l.index.Len() }

// Open implements vfs.FS: a hit opens locally; a miss opens on the PFS
// (read-through) and tees a local fill.
func (l *LPCC) Open(p *sim.Proc, path string) (vfs.Handle, int64, error) {
	p.Sleep(l.costs.HitCheck)
	if l.index.Peek(path) {
		l.index.Contains(path)
		l.hits++
		size, _ := l.index.Size(path)
		h := l.handles.Open(path, size)
		l.hCached[h] = true
		return h, size, nil
	}
	l.misses++
	size, err := l.gpfs.OpenMeta(p, path)
	if err != nil {
		return 0, 0, err
	}
	return l.handles.Open(path, size), size, nil
}

// ReadAt implements vfs.FS.
func (l *LPCC) ReadAt(p *sim.Proc, h vfs.Handle, off, n int64) (int64, error) {
	path, size, err := l.handles.Get(h)
	if err != nil {
		return 0, err
	}
	n = vfs.ClampRead(size, off, n)
	if n == 0 {
		return 0, nil
	}
	if l.hCached[h] && l.index.Peek(path) {
		l.index.Contains(path)
		l.dev.Read(p, n)
		return n, nil
	}
	l.gpfs.ReadBytes(p, n)
	if off == 0 && !l.filling[path] && !l.index.Peek(path) {
		l.filling[path] = true
		l.scheduleFill(path, size)
	}
	return n, nil
}

func (l *LPCC) scheduleFill(path string, size int64) {
	l.eng.Spawn("lpcc-fill", func(p *sim.Proc) {
		defer delete(l.filling, path)
		p.Sleep(l.costs.FillOverhead)
		l.dev.Write(p, size)
		if _, err := l.index.Insert(path, size); err != nil {
			return // file exceeds cache capacity: it simply stays uncached
		}
	})
}

// Close implements vfs.FS.
func (l *LPCC) Close(p *sim.Proc, h vfs.Handle) error {
	cached := l.hCached[h]
	delete(l.hCached, h)
	if err := l.handles.Close(h); err != nil {
		return err
	}
	if !cached {
		l.gpfs.CloseMeta(p)
	}
	return nil
}

// NewLPCCFleet builds one LPCC per node over the given devices, all
// backed by the same GPFS.
func NewLPCCFleet(eng *sim.Engine, fabric *simnet.Fabric, g *pfs.GPFS,
	devs []*device.Device, capacity int64, seed uint64) []*LPCC {
	out := make([]*LPCC, len(devs))
	for n := range devs {
		out[n] = NewLPCC(eng, simnet.NodeID(n), fabric, g, devs[n], capacity,
			cachestore.NewRandom(seed+uint64(n)*7919))
	}
	return out
}

// FleetFS adapts a fleet to the train.Run provider signature.
func FleetFS(fleet []*LPCC) func(node, proc int) vfs.FS {
	return func(node, proc int) vfs.FS { return fleet[node] }
}
