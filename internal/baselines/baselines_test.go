package baselines

import (
	"errors"
	"fmt"
	"testing"

	"hvac/internal/device"
	"hvac/internal/pfs"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

type rig struct {
	eng    *sim.Engine
	fabric *simnet.Fabric
	gpfs   *pfs.GPFS
	devs   []*device.Device
	ns     *vfs.Namespace
}

func newRig(nodes, files int, size int64) *rig {
	eng := sim.NewEngine()
	ns := vfs.NewNamespace()
	for i := 0; i < files; i++ {
		ns.Add(fmt.Sprintf("/gpfs/d/f%05d", i), size)
	}
	r := &rig{
		eng:    eng,
		fabric: simnet.New(eng, simnet.SummitEDR(), nodes),
		gpfs:   pfs.New(eng, pfs.Alpine(), ns),
		ns:     ns,
	}
	for n := 0; n < nodes; n++ {
		r.devs = append(r.devs, device.New(eng, fmt.Sprintf("nvme%d", n), device.SummitNVMe()))
	}
	return r
}

func TestLPCCCachesPerNode(t *testing.T) {
	r := newRig(2, 16, 64<<10)
	fleet := NewLPCCFleet(r.eng, r.fabric, r.gpfs, r.devs, 1<<30, 1)
	for n := 0; n < 2; n++ {
		l := fleet[n]
		r.eng.Spawn("job", func(p *sim.Proc) {
			for e := 0; e < 2; e++ {
				for _, path := range r.ns.Paths() {
					if _, err := vfs.ReadFile(p, l, path); err != nil {
						t.Errorf("read: %v", err)
						return
					}
				}
			}
		})
	}
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// No sharing: EVERY node pulls the whole dataset from GPFS once.
	opens, _, bytes := r.gpfs.Stats()
	if opens != 2*16 {
		t.Fatalf("GPFS opens = %d, want 32 (each node pays its own cold pass)", opens)
	}
	if bytes != 2*16*(64<<10) {
		t.Fatalf("GPFS bytes = %d (the dataset moved twice)", bytes)
	}
	for n, l := range fleet {
		hits, misses := l.Stats()
		if misses != 16 || hits != 16 {
			t.Fatalf("node %d: hits/misses = %d/%d, want 16/16", n, hits, misses)
		}
		if l.CachedFiles() != 16 {
			t.Fatalf("node %d cached %d files", n, l.CachedFiles())
		}
	}
}

func TestLPCCMissingFile(t *testing.T) {
	r := newRig(1, 1, 1024)
	fleet := NewLPCCFleet(r.eng, r.fabric, r.gpfs, r.devs, 1<<30, 1)
	r.eng.Spawn("job", func(p *sim.Proc) {
		if _, _, err := fleet[0].Open(p, "/nope"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLPCCEvictionUnderPressure(t *testing.T) {
	r := newRig(1, 16, 1<<20)
	fleet := NewLPCCFleet(r.eng, r.fabric, r.gpfs, r.devs, 4<<20, 1) // fits 4 of 16
	r.eng.Spawn("job", func(p *sim.Proc) {
		for e := 0; e < 3; e++ {
			for _, path := range r.ns.Paths() {
				vfs.ReadFile(p, fleet[0], path)
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if fleet[0].CachedFiles() > 4 {
		t.Fatalf("cached %d files, capacity only fits 4", fleet[0].CachedFiles())
	}
	hits, misses := fleet[0].Stats()
	if hits+misses != 48 {
		t.Fatalf("hits+misses = %d", hits+misses)
	}
	if misses <= 16 {
		t.Fatalf("misses = %d; eviction should force re-fetches", misses)
	}
}

func TestBeeONDStripesAcrossDevices(t *testing.T) {
	r := newRig(4, 4, 8<<20)
	b := NewBeeOND(r.eng, r.fabric, r.devs, r.ns, DefaultBeeONDConfig())
	client := b.Client(0)
	r.eng.Spawn("job", func(p *sim.Proc) {
		for _, path := range r.ns.Paths() {
			n, err := vfs.ReadFile(p, client, path)
			if err != nil || n != 8<<20 {
				t.Errorf("read = %d, %v", n, err)
			}
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	// 8 MB files with 1 MB stripes over 4 devices: every device serves.
	for n, d := range r.devs {
		if d.ReadsCompleted() == 0 {
			t.Fatalf("device %d served no stripes", n)
		}
	}
	if b.Opens() != 4 {
		t.Fatalf("opens = %d", b.Opens())
	}
	// The PFS is never touched (dataset staged in).
	if opens, _, _ := r.gpfs.Stats(); opens != 0 {
		t.Fatalf("GPFS opens = %d, want 0", opens)
	}
}

// The §II-D argument: BeeOND's metadata service saturates like GPFS's
// (just later), while HVAC has no metadata service at all.
func TestBeeONDMetadataSaturates(t *testing.T) {
	tps := func(nodes int) float64 {
		r := newRig(nodes, 256, 32<<10)
		b := NewBeeOND(r.eng, r.fabric, r.devs, r.ns, DefaultBeeONDConfig())
		var end sim.Time
		for n := 0; n < nodes; n++ {
			client := b.Client(simnet.NodeID(n))
			rng := sim.NewRNG(uint64(n) + 1)
			r.eng.Spawn("proc", func(p *sim.Proc) {
				for i := 0; i < 50; i++ {
					vfs.ReadFile(p, client, fmt.Sprintf("/gpfs/d/f%05d", rng.Intn(256)))
				}
				if p.Now() > end {
					end = p.Now()
				}
			})
		}
		if err := r.eng.RunAll(); err != nil {
			t.Fatal(err)
		}
		return float64(nodes*50) / sim.Time(end).Seconds()
	}
	t16, t256 := tps(16), tps(256)
	if t256 > 10*t16 {
		t.Fatalf("BeeOND metadata did not saturate: %.0f -> %.0f tps", t16, t256)
	}
}

func TestBeeONDMissingFile(t *testing.T) {
	r := newRig(2, 1, 1024)
	b := NewBeeOND(r.eng, r.fabric, r.devs, r.ns, DefaultBeeONDConfig())
	client := b.Client(1)
	r.eng.Spawn("job", func(p *sim.Proc) {
		if _, _, err := client.Open(p, "/gone"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("err = %v", err)
		}
	})
	if err := r.eng.RunAll(); err != nil {
		t.Fatal(err)
	}
}
