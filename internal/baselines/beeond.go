package baselines

import (
	"fmt"
	"time"

	"hvac/internal/device"
	"hvac/internal/sim"
	"hvac/internal/simnet"
	"hvac/internal/vfs"
)

// BeeONDConfig parameterises the transient shared file system.
type BeeONDConfig struct {
	// MetadataServers is the size of the on-demand metadata service
	// (BeeOND defaults to very few; HVAC's point is that *any* metadata
	// service re-creates the §II-C bottleneck).
	MetadataServers int
	// OpenService and CloseService are per-op metadata costs.
	OpenService  time.Duration
	CloseService time.Duration
	// StripeSize is the striping unit across the node NVMes.
	StripeSize int64
}

// DefaultBeeONDConfig returns a typical on-demand deployment: metadata on
// a handful of the job's own nodes (faster per op than GPFS's
// center-wide service, but still a fixed-size pool).
func DefaultBeeONDConfig() BeeONDConfig {
	return BeeONDConfig{
		MetadataServers: 4,
		OpenService:     40 * time.Microsecond,
		CloseService:    10 * time.Microsecond,
		StripeSize:      1 << 20,
	}
}

// BeeOND is the transient striped shared FS over the allocation's NVMe
// devices (§II-D: "aggregate the performance and capacity of internal
// SSDs in compute nodes for the duration of a compute job"). The dataset
// is assumed staged in (like XFS-on-NVMe, stage time excluded); unlike
// HVAC, every open consults the job-wide metadata service.
type BeeOND struct {
	eng    *sim.Engine
	fabric *simnet.Fabric
	devs   []*device.Device
	mds    *sim.Resource
	cfg    BeeONDConfig
	ns     *vfs.Namespace

	opens int64
}

// NewBeeOND builds the transient FS over the allocation.
func NewBeeOND(eng *sim.Engine, fabric *simnet.Fabric, devs []*device.Device,
	ns *vfs.Namespace, cfg BeeONDConfig) *BeeOND {
	if cfg.MetadataServers <= 0 {
		cfg.MetadataServers = 1
	}
	if cfg.StripeSize <= 0 {
		cfg.StripeSize = 1 << 20
	}
	return &BeeOND{
		eng:    eng,
		fabric: fabric,
		devs:   devs,
		mds:    sim.NewResource(eng, "beeond/mds", cfg.MetadataServers),
		cfg:    cfg,
		ns:     ns,
	}
}

// Opens reports metadata opens served.
func (b *BeeOND) Opens() int64 { return b.opens }

// MDSUtilization reports the metadata pool utilization.
func (b *BeeOND) MDSUtilization() float64 { return b.mds.Utilization() }

// Client returns the per-node mount.
func (b *BeeOND) Client(node simnet.NodeID) *BeeONDClient {
	return &BeeONDClient{fs: b, node: node, handles: vfs.NewHandleTable()}
}

// ClientFS adapts per-node mounts to the train.Run provider signature.
func (b *BeeOND) ClientFS() func(node, proc int) vfs.FS {
	mounts := map[int]*BeeONDClient{}
	return func(node, proc int) vfs.FS {
		if m, ok := mounts[node]; ok {
			return m
		}
		m := b.Client(simnet.NodeID(node))
		mounts[node] = m
		return m
	}
}

// BeeONDClient is one node's mount of the transient FS.
type BeeONDClient struct {
	fs      *BeeOND
	node    simnet.NodeID
	handles *vfs.HandleTable
}

var _ vfs.FS = (*BeeONDClient)(nil)

// Name implements vfs.FS.
func (c *BeeONDClient) Name() string { return "beeond" }

// Open implements vfs.FS: one transaction against the job-wide MDS.
func (c *BeeONDClient) Open(p *sim.Proc, path string) (vfs.Handle, int64, error) {
	c.fs.mds.Use(p, c.fs.cfg.OpenService)
	size, ok := c.fs.ns.Lookup(path)
	if !ok {
		return 0, 0, fmt.Errorf("beeond: open %s: %w", path, vfs.ErrNotExist)
	}
	c.fs.opens++
	return c.handles.Open(path, size), size, nil
}

// ReadAt implements vfs.FS: the range is striped over the node NVMes;
// each stripe is read on its owner device and shipped over the fabric.
func (c *BeeONDClient) ReadAt(p *sim.Proc, h vfs.Handle, off, n int64) (int64, error) {
	path, size, err := c.handles.Get(h)
	if err != nil {
		return 0, err
	}
	n = vfs.ClampRead(size, off, n)
	if n == 0 {
		return 0, nil
	}
	stripe := c.fs.cfg.StripeSize
	base := int64(placeHash(path)) % int64(len(c.fs.devs))
	if base < 0 {
		base += int64(len(c.fs.devs))
	}
	var done int64
	for done < n {
		pos := off + done
		idx := pos / stripe
		owner := simnet.NodeID((base + idx) % int64(len(c.fs.devs)))
		chunk := (idx+1)*stripe - pos
		if chunk > n-done {
			chunk = n - done
		}
		c.fs.devs[owner].Read(p, chunk)
		if c.fs.fabric != nil {
			c.fs.fabric.Send(p, owner, c.node, chunk)
		}
		done += chunk
	}
	return n, nil
}

// Close implements vfs.FS.
func (c *BeeONDClient) Close(p *sim.Proc, h vfs.Handle) error {
	if err := c.handles.Close(h); err != nil {
		return err
	}
	c.fs.mds.Use(p, c.fs.cfg.CloseService)
	return nil
}

func placeHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	// splitmix finalizer for stripe-base dispersion
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}
