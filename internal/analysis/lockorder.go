package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hvac/internal/analysis/callgraph"
)

// LockOrder is the interprocedural deadlock analyzer. It summarises, per
// function, which locks are acquired and which calls are made while a
// lock is held, propagates the summaries over the call graph, and
// reports:
//
//   - cycles in the global lock-ordering graph (lock B acquired while A
//     is held in one place, A while B in another — the classic ABBA
//     deadlock, including orders established only through calls);
//   - a write-lock re-acquired on the same expression while already held
//     (self-deadlock);
//   - locks held across calls that (transitively) block on the transport
//     — a stalled peer then pins the lock for the whole call deadline.
//
// Locks are identified by their declaring object (the mutex field or
// variable), so every instance of core.Server.mu is one lock class. The
// path simulation mirrors locksafe's: branch bodies get cloned state and
// are not merged back, keeping the analysis approximate in the
// low-false-positive direction.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "lock-ordering cycles, self-deadlocks, and locks held across blocking transport calls",
	RunModule: runLockOrder,
}

// blockingTransportFuncs are the internal/transport entry points that
// block on the network: RPC round-trips and raw frame I/O.
var blockingTransportFuncs = map[string]bool{
	"Call": true, "Ping": true,
	"ReadRequest": true, "ReadResponse": true,
	"WriteRequest": true, "WriteResponse": true,
}

func isBlockingTransport(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		fn.Pkg().Path() == "hvac/internal/transport" && blockingTransportFuncs[fn.Name()]
}

// lockRef is one classified Lock/RLock/Unlock/RUnlock call.
type lockRef struct {
	obj  *types.Var // declaring mutex field or variable; nil if unresolvable
	key  string     // printed lock expression, "/R" appended for the read side
	expr string     // printed lock expression
	disp string     // human-readable lock name, e.g. (core.Server).mu
	lock bool       // acquire vs release
	read bool       // RLock/RUnlock
	pos  token.Pos
}

// classifyLockRef recognises <expr>.Lock/RLock/Unlock/RUnlock() where the
// method belongs to package sync, and resolves the lock's identity.
func classifyLockRef(info *types.Info, call *ast.CallExpr) (lockRef, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockRef{}, false
	}
	ref := lockRef{expr: types.ExprString(sel.X), pos: call.Pos()}
	ref.key = ref.expr
	switch fn.Name() {
	case "Lock":
		ref.lock = true
	case "RLock":
		ref.lock, ref.read = true, true
		ref.key += "/R"
	case "Unlock":
	case "RUnlock":
		ref.read = true
		ref.key += "/R"
	default:
		return lockRef{}, false
	}
	ref.obj, ref.disp = lockIdentity(info, ast.Unparen(sel.X))
	return ref, true
}

// lockIdentity resolves the lock expression to its declaring object and a
// display name. Fields display as (pkg.Type).field, variables as pkg.var.
func lockIdentity(info *types.Info, expr ast.Expr) (*types.Var, string) {
	qual := func(p *types.Package) string { return p.Name() }
	switch e := expr.(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		if v == nil {
			return nil, e.Name
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v, v.Pkg().Name() + "." + v.Name()
		}
		return v, v.Name()
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		if v == nil {
			return nil, types.ExprString(e)
		}
		recv := info.TypeOf(e.X)
		for {
			if ptr, ok := recv.(*types.Pointer); ok {
				recv = ptr.Elem()
				continue
			}
			break
		}
		if recv != nil {
			return v, "(" + types.TypeString(recv, qual) + ")." + v.Name()
		}
		return v, types.ExprString(e)
	}
	return nil, types.ExprString(expr)
}

// loCallSite is one call expression reached with locks held.
type loCallSite struct {
	call *ast.CallExpr
	held []lockRef
}

// loPair is one observed acquisition order: to acquired while from held.
type loPair struct {
	from, to         *types.Var
	fromDisp, toDisp string
	pos              token.Pos
	via              string // callee name for call-propagated pairs, "" for direct
}

// loLocal is one function's lock summary before propagation.
type loLocal struct {
	acquires map[*types.Var]string // lock -> display
	pairs    []loPair
	calls    []loCallSite
}

type loWalker struct {
	p     *ModulePass
	info  *types.Info
	node  *callgraph.Node
	local *loLocal
}

type loHeldState struct {
	held map[string]lockRef
}

func (st *loHeldState) clone() *loHeldState {
	c := &loHeldState{held: make(map[string]lockRef, len(st.held))}
	for k, v := range st.held {
		c.held[k] = v
	}
	return c
}

// heldRefs returns the held locks sorted by key for deterministic
// snapshots.
func (st *loHeldState) heldRefs() []lockRef {
	keys := make([]string, 0, len(st.held))
	for k := range st.held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]lockRef, 0, len(keys))
	for _, k := range keys {
		out = append(out, st.held[k])
	}
	return out
}

// analyzeLockNode runs the local path simulation over one function body.
func analyzeLockNode(p *ModulePass, node *callgraph.Node) *loLocal {
	w := &loWalker{
		p: p, info: node.Pkg.Info, node: node,
		local: &loLocal{acquires: make(map[*types.Var]string)},
	}
	w.walkStmts(node.Body.List, &loHeldState{held: map[string]lockRef{}})
	return w.local
}

func (w *loWalker) walkStmts(stmts []ast.Stmt, st *loHeldState) {
	for _, s := range stmts {
		w.walkStmt(s, st)
	}
}

func (w *loWalker) walkStmt(s ast.Stmt, st *loHeldState) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if ref, ok := classifyLockRef(w.info, call); ok {
				w.applyLockOp(ref, st)
				w.scanCalls(call, st) // nested calls in the lock's arguments
				return
			}
		}
		w.scanCalls(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanCalls(e, st)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.ReturnStmt:
		w.scanCalls(s, st)
	case *ast.DeferStmt:
		// A deferred unlock releases at function exit: the lock stays held
		// for ordering purposes. Other deferred calls run with an unknown
		// lock state and are skipped (low-false-positive direction).
		if _, ok := classifyLockRef(w.info, s.Call); ok {
			return
		}
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently, not under our locks.
	case *ast.BlockStmt:
		w.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		w.scanCalls(s.Cond, st)
		w.walkStmts(s.Body.List, st.clone())
		if s.Else != nil {
			w.walkStmt(s.Else, st.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			w.scanCalls(s.Cond, st)
		}
		w.walkStmts(s.Body.List, st.clone())
	case *ast.RangeStmt:
		w.scanCalls(s.X, st)
		w.walkStmts(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			w.scanCalls(s.Tag, st)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.walkStmts(cc.Body, st.clone())
			}
		}
	}
}

// applyLockOp updates the held set for one lock/unlock and records
// acquisition orderings against every currently-held lock.
func (w *loWalker) applyLockOp(ref lockRef, st *loHeldState) {
	if !ref.lock {
		delete(st.held, ref.key)
		return
	}
	for _, h := range st.heldRefs() {
		if h.obj == nil || ref.obj == nil {
			continue
		}
		if h.obj == ref.obj {
			// Same lock class: a definite self-deadlock only when the
			// expression names the same instance and the new acquire is a
			// write lock.
			if h.expr == ref.expr && !ref.read {
				w.p.Reportf(ref.pos, "%s.Lock() while %s is already held (acquired at %s): self-deadlock",
					ref.expr, h.expr, w.p.Fset.Position(h.pos))
			}
			continue
		}
		w.local.pairs = append(w.local.pairs, loPair{
			from: h.obj, to: ref.obj,
			fromDisp: h.disp, toDisp: ref.disp, pos: ref.pos,
		})
	}
	if ref.obj != nil {
		w.local.acquires[ref.obj] = ref.disp
	}
	st.held[ref.key] = ref
}

// scanCalls records every call expression under n that executes with the
// current held set non-empty. Function literals own their calls; lock
// operations are recorded by applyLockOp, not here.
func (w *loWalker) scanCalls(n ast.Node, st *loHeldState) {
	if len(st.held) == 0 || n == nil {
		return
	}
	held := st.heldRefs()
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if _, ok := classifyLockRef(w.info, x); ok {
				return true
			}
			w.local.calls = append(w.local.calls, loCallSite{call: x, held: held})
		}
		return true
	})
}

// runLockOrder assembles the per-function summaries into the global
// lock-ordering graph and reports the three violation classes.
func runLockOrder(p *ModulePass) {
	nodes := p.Graph.Nodes()
	locals := make(map[*callgraph.Node]*loLocal)
	for _, n := range nodes {
		if n.Body != nil {
			locals[n] = analyzeLockNode(p, n)
		}
	}

	// Fixed point 1: which functions (transitively) block on the transport.
	blocks := make(map[*callgraph.Node]bool)
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if blocks[n] {
				continue
			}
			for _, e := range n.Out() {
				if isBlockingTransport(e.Target) || (e.Callee != nil && blocks[e.Callee]) {
					blocks[n] = true
					changed = true
					break
				}
			}
		}
	}

	// Fixed point 2: the set of locks each function may acquire,
	// transitively.
	summary := make(map[*callgraph.Node]map[*types.Var]string)
	for n, local := range locals {
		s := make(map[*types.Var]string, len(local.acquires))
		for obj, disp := range local.acquires {
			s[obj] = disp
		}
		summary[n] = s
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			s := summary[n]
			if s == nil {
				continue
			}
			for _, e := range n.Out() {
				for obj, disp := range summary[e.Callee] {
					if _, ok := s[obj]; !ok {
						s[obj] = disp
						changed = true
					}
				}
			}
		}
	}

	// Report locks held across blocking transport calls, and extend the
	// ordering graph with call-propagated acquisition pairs.
	var pairs []loPair
	for _, n := range nodes {
		local := locals[n]
		if local == nil {
			continue
		}
		pairs = append(pairs, local.pairs...)
		siteEdges := make(map[*ast.CallExpr][]*callgraph.Edge)
		for _, e := range n.Out() {
			siteEdges[e.Site] = append(siteEdges[e.Site], e)
		}
		for _, cs := range local.calls {
			edges := siteEdges[cs.call]
			blocking := false
			calleeName := ""
			for _, e := range edges {
				if isBlockingTransport(e.Target) || (e.Callee != nil && blocks[e.Callee]) {
					blocking = true
					if e.Target != nil {
						calleeName = e.Target.FullName()
					} else if e.Callee != nil {
						calleeName = e.Callee.Name
					}
					break
				}
			}
			if blocking {
				names := make([]string, 0, len(cs.held))
				for _, h := range cs.held {
					names = append(names, h.disp)
				}
				p.Reportf(cs.call.Pos(),
					"%s held across a call to %s, which blocks on the transport; a stalled peer pins the lock for the whole call deadline — release before the call",
					strings.Join(names, ", "), calleeName)
			}
			for _, e := range edges {
				if e.Callee == nil {
					continue
				}
				callee := e.Callee
				objs := make([]*types.Var, 0, len(summary[callee]))
				for obj := range summary[callee] {
					objs = append(objs, obj)
				}
				sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
				for _, obj := range objs {
					disp := summary[callee][obj]
					for _, h := range cs.held {
						if h.obj == nil || h.obj == obj {
							continue // same lock class through a call: instance-ambiguous
						}
						pairs = append(pairs, loPair{
							from: h.obj, to: obj,
							fromDisp: h.disp, toDisp: disp,
							pos: cs.call.Pos(), via: callee.Name,
						})
					}
				}
			}
		}
	}

	reportLockCycles(p, pairs)
}

// reportLockCycles finds strongly connected components of the global
// lock-ordering graph and reports every edge inside a component: those
// are exactly the acquisition sites that close an ABBA cycle.
func reportLockCycles(p *ModulePass, pairs []loPair) {
	// Dedup edges by (from, to), keeping the first witness.
	type edgeKey struct{ from, to *types.Var }
	edges := make(map[edgeKey]loPair)
	var order []edgeKey
	for _, pr := range pairs {
		k := edgeKey{pr.from, pr.to}
		if _, ok := edges[k]; !ok {
			edges[k] = pr
			order = append(order, k)
		}
	}
	adj := make(map[*types.Var][]*types.Var)
	var lockOrderNodes []*types.Var
	seen := make(map[*types.Var]bool)
	for _, k := range order {
		adj[k.from] = append(adj[k.from], k.to)
		for _, v := range []*types.Var{k.from, k.to} {
			if !seen[v] {
				seen[v] = true
				lockOrderNodes = append(lockOrderNodes, v)
			}
		}
	}

	// Tarjan SCC.
	index := make(map[*types.Var]int)
	low := make(map[*types.Var]int)
	onStack := make(map[*types.Var]bool)
	comp := make(map[*types.Var]int)
	var stack []*types.Var
	next, compID := 0, 0
	var strongconnect func(v *types.Var)
	strongconnect = func(v *types.Var) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp[w] = compID
				if w == v {
					break
				}
			}
			compID++
		}
	}
	for _, v := range lockOrderNodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	compSize := make(map[int]int)
	for _, c := range comp {
		compSize[c]++
	}
	for _, k := range order {
		if k.from == k.to || comp[k.from] != comp[k.to] || compSize[comp[k.from]] < 2 {
			continue
		}
		pr := edges[k]
		via := ""
		if pr.via != "" {
			via = " (through the call to " + pr.via + ")"
		}
		p.Reportf(pr.pos,
			"lock-ordering cycle: %s acquired while %s is held%s, but elsewhere the opposite order occurs; pick one global order",
			pr.toDisp, pr.fromDisp, via)
	}
}
