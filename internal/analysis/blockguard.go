package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
	"hvac/internal/analysis/valueflow"
)

// BlockGuard proves that the hot loops which keep the cluster live —
// the transport package plus the core server/client files — never
// block forever on a dead peer. Two obligations:
//
//   - Every blocking use of a net.Conn (a Read/Write on it, or passing
//     it to a function that may drive I/O on it) must be preceded on
//     every CFG path by a Set*Deadline call or by a branch on a
//     time.Duration knob (the configured-timeout idiom, where a zero
//     knob is a deliberate opt-out).
//   - Every bare channel receive (one not in a multi-case select and
//     not inherently timed via time.After or a Timer/Ticker C) must
//     offer an alternative: a stop channel, a timeout case, or a
//     documented external unblocker.
//
// A conn received as a parameter transfers the obligation to the
// callers: the call passing the conn is itself a blocking site there.
// Sites with an external unblocker carry a line annotation
//
//	//hvac:blockguard <reason>
//
// on the site's line or the line above.
var BlockGuard = &Analyzer{
	Name:      "blockguard",
	Doc:       "blocking conn I/O and bare receives on live paths have a deadline, timeout knob, or stop alternative",
	RunModule: runBlockGuard,
}

const blockguardMarker = "//hvac:blockguard"

type bgEventKind int

const (
	bgGuard   bgEventKind = iota // a Set*Deadline call or Duration-knob branch
	bgConnIO                     // direct Read/Write on a conn
	bgConnArg                    // conn handed to a function that may drive I/O
	bgRecv                       // bare channel receive
	bgRange                      // range over a channel
)

// bgEvent is one guard trigger or blocking site, in source order
// within its CFG node.
type bgEvent struct {
	kind bgEventKind
	pos  token.Pos
	what string   // printable site description
	conn ast.Expr // the conn value for bgConnIO/bgConnArg
}

type blockGuard struct {
	pass *ModulePass
	conn *types.Interface // net.Conn
	// annotated maps file name -> lines carrying //hvac:blockguard.
	annotated map[string]map[int]bool
}

func runBlockGuard(p *ModulePass) {
	bg := &blockGuard{pass: p, annotated: map[string]map[int]bool{}}
	if netPkg := p.FindPackage("net"); netPkg != nil {
		if tn, ok := netPkg.Scope().Lookup("Conn").(*types.TypeName); ok {
			bg.conn, _ = tn.Type().Underlying().(*types.Interface)
		}
	}
	bg.collectAnnotations()
	for _, n := range p.Graph.Nodes() {
		if n.Body == nil || !bg.inScope(n) {
			continue
		}
		bg.checkNode(n)
	}
}

// inScope limits the analyzer to the code whose loops keep the
// cluster live: all of internal/transport, and the server/client
// files of internal/core (the simulator harness may block at will).
func (bg *blockGuard) inScope(n *callgraph.Node) bool {
	path := n.Pkg.Path
	if strings.HasSuffix(path, "internal/transport") {
		return true
	}
	if !strings.HasSuffix(path, "internal/core") {
		return false
	}
	base := filepath.Base(bg.pass.Fset.Position(n.Pos).Filename)
	return strings.HasPrefix(base, "server") || strings.HasPrefix(base, "client")
}

// collectAnnotations indexes //hvac:blockguard lines per file and
// reports annotations with no reason.
func (bg *blockGuard) collectAnnotations() {
	for _, pkg := range bg.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, blockguardMarker) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, blockguardMarker)
					if strings.TrimSpace(rest) == "" || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
						bg.pass.Reportf(c.Pos(), "malformed blockguard annotation: want //hvac:blockguard <reason>")
						continue
					}
					pos := bg.pass.Fset.Position(c.Pos())
					if bg.annotated[pos.Filename] == nil {
						bg.annotated[pos.Filename] = map[int]bool{}
					}
					bg.annotated[pos.Filename][pos.Line] = true
				}
			}
		}
	}
}

// covered reports whether pos carries a blockguard annotation on its
// line or the line above.
func (bg *blockGuard) covered(pos token.Pos) bool {
	p := bg.pass.Fset.Position(pos)
	lines := bg.annotated[p.Filename]
	return lines[p.Line] || lines[p.Line-1]
}

// implementsConn reports whether a value of type t is a net.Conn.
func (bg *blockGuard) implementsConn(t types.Type) bool {
	if bg.conn == nil || t == nil {
		return false
	}
	return types.Implements(t, bg.conn) || types.Implements(types.NewPointer(t), bg.conn)
}

// exemptConnCallees never drive blocking I/O on a conn argument or
// receiver.
var exemptConnCallees = map[string]bool{
	"Close": true, "LocalAddr": true, "RemoteAddr": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
	"SetNoDelay": true, "SetKeepAlive": true, "SetKeepAlivePeriod": true,
	"SetLinger": true, "String": true, "Network": true,
	"append": true, "len": true, "cap": true, "delete": true, "close": true,
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkNode runs the every-path guard analysis over one function.
func (bg *blockGuard) checkNode(n *callgraph.Node) {
	info := n.Pkg.Info

	// selCases maps each receive expression that is a select comm (or
	// sits directly in one) to the number of clauses of its select.
	// rangeChan marks the ranged-over expressions of channel range
	// loops: the CFG records only the expression, not the RangeStmt.
	selCases := map[ast.Expr]int{}
	rangeChan := map[ast.Node]bool{}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		if r, ok := x.(*ast.RangeStmt); ok {
			if t := info.TypeOf(r.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					rangeChan[r.X] = true
				}
			}
			return true
		}
		sel, ok := x.(*ast.SelectStmt)
		if !ok {
			return true
		}
		clauses := len(sel.Body.List)
		for _, c := range sel.Body.List {
			comm, ok := c.(*ast.CommClause)
			if !ok || comm.Comm == nil {
				continue
			}
			switch s := comm.Comm.(type) {
			case *ast.ExprStmt:
				if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					selCases[u] = clauses
				}
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 {
					if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
						selCases[u] = clauses
					}
				}
			}
		}
		return true
	})

	// Collect guard triggers and blocking sites per CFG node, in
	// source order within the node.
	eventsAt := map[ast.Node][]bgEvent{}
	scan := func(node ast.Node) []bgEvent {
		var evs []bgEvent
		ast.Inspect(node, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false
			}
			switch x := x.(type) {
			case *ast.CallExpr:
				evs = append(evs, bg.callEvents(info, x)...)
			case *ast.BinaryExpr:
				if isComparison(x.Op) && (isDuration(info.TypeOf(x.X)) || isDuration(info.TypeOf(x.Y))) {
					evs = append(evs, bgEvent{kind: bgGuard, pos: x.Pos()})
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && selCases[x] < 2 && !isTimedChannel(info, x.X) {
					evs = append(evs, bgEvent{
						kind: bgRecv, pos: x.Pos(),
						what: "receive from " + types.ExprString(ast.Unparen(x.X)),
					})
				}
			}
			if e, ok := x.(ast.Expr); ok && rangeChan[e] {
				evs = append(evs, bgEvent{
					kind: bgRange, pos: e.Pos(),
					what: "range over " + types.ExprString(ast.Unparen(e)),
				})
			}
			return true
		})
		return evs
	}

	g := cfg.New(n.Body)
	any := false
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			if _, done := eventsAt[node]; done {
				continue
			}
			evs := scan(node)
			eventsAt[node] = evs
			for _, e := range evs {
				if e.kind != bgGuard {
					any = true
				}
			}
		}
	}
	if !any {
		return
	}

	var fl *valueflow.FnFlow
	// isParamConn reports whether every origin of the conn value is a
	// parameter (or receiver) of this declared function: the deadline
	// obligation then belongs to the callers.
	isParamConn := func(e ast.Expr) bool {
		if n.Func == nil || e == nil {
			return false
		}
		if fl == nil {
			fl = valueflow.Flow(bg.pass.Fset, n, g)
		}
		origins := fl.Origins(e)
		if len(origins) == 0 {
			return false
		}
		sig, ok := n.Func.Type().(*types.Signature)
		if !ok {
			return false
		}
		isParam := func(v *types.Var) bool {
			if sig.Recv() == v {
				return true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == v {
					return true
				}
			}
			return false
		}
		for _, v := range origins {
			if !isParam(v) {
				return false
			}
		}
		return true
	}

	// guarded-on-every-path-so-far; meet is AND.
	fw := &cfg.Forward[bool]{
		Graph: g,
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			for _, node := range b.Nodes {
				for _, e := range eventsAt[node] {
					if e.kind == bgGuard {
						in = true
					}
				}
			}
			return in
		},
		Join:  func(a, b bool) bool { return a && b },
		Equal: func(a, b bool) bool { return a == b },
		Clone: func(v bool) bool { return v },
	}
	ins := fw.Fixpoint()

	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		if blk.Index >= len(ins) {
			continue
		}
		guarded := ins[blk.Index]
		for _, node := range blk.Nodes {
			for _, e := range eventsAt[node] {
				switch e.kind {
				case bgGuard:
					guarded = true
				case bgConnIO, bgConnArg:
					if guarded || reported[e.pos] || bg.covered(e.pos) || isParamConn(e.conn) {
						continue
					}
					reported[e.pos] = true
					bg.pass.Reportf(e.pos,
						"blocking %s has no deadline on some path to it: call Set(Read|Write)?Deadline, gate it behind a time.Duration knob, or annotate //hvac:blockguard <reason>",
						e.what)
				case bgRecv, bgRange:
					if reported[e.pos] || bg.covered(e.pos) {
						continue
					}
					reported[e.pos] = true
					verb := "blocking %s has no alternative: select on a stop channel or timer, or annotate //hvac:blockguard <reason>"
					if e.kind == bgRange {
						verb = "%s blocks until the channel closes: select with a stop case inside the loop, or annotate //hvac:blockguard <reason>"
					}
					bg.pass.Reportf(e.pos, verb, e.what)
				}
			}
		}
	}
}

// callEvents classifies one call: a guard (deadline setter), a direct
// blocking conn Read/Write, and/or conn-argument blocking sites.
func (bg *blockGuard) callEvents(info *types.Info, call *ast.CallExpr) []bgEvent {
	// A type conversion is not a call.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	name := calleeName(call)
	var evs []bgEvent
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvT := info.TypeOf(sel.X)
		if bg.implementsConn(recvT) {
			switch name {
			case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
				return []bgEvent{{kind: bgGuard, pos: call.Pos()}}
			case "Read", "Write":
				evs = append(evs, bgEvent{
					kind: bgConnIO, pos: call.Pos(),
					what: types.ExprString(ast.Unparen(sel.X)) + "." + name,
					conn: sel.X,
				})
			}
		}
	}
	if exemptConnCallees[name] {
		return evs
	}
	for _, arg := range call.Args {
		arg = ast.Unparen(arg)
		if !bg.implementsConn(info.TypeOf(arg)) {
			continue
		}
		evs = append(evs, bgEvent{
			kind: bgConnArg, pos: arg.Pos(),
			what: "call to " + calleeLabel(call) + " passing conn " + types.ExprString(arg),
			conn: arg,
		})
	}
	return evs
}

func calleeLabel(call *ast.CallExpr) string {
	if name := calleeName(call); name != "" {
		return name
	}
	return types.ExprString(ast.Unparen(call.Fun))
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// isDuration reports whether t is time.Duration.
func isDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Duration"
}

// isTimedChannel reports whether ch is inherently bounded: the result
// of time.After/time.Tick, or the C field of a time.Timer/Ticker.
func isTimedChannel(info *types.Info, ch ast.Expr) bool {
	switch e := ast.Unparen(ch).(type) {
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
				fn.Pkg().Path() == "time" && (fn.Name() == "After" || fn.Name() == "Tick") {
				return true
			}
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && v.Pkg().Path() == "time" {
			return true
		}
	}
	return false
}
