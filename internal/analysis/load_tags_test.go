package analysis

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func parseForTags(t *testing.T, src string) bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return buildTagOK(f)
}

func TestBuildTagSelection(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"none", "package p\n", true},
		{"race", "//go:build race\n\npackage p\n", false},
		{"notrace", "//go:build !race\n\npackage p\n", true},
		{"goos", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"othergoos", "//go:build plan9\n\npackage p\n", runtime.GOOS == "plan9"},
		{"release", "//go:build go1.18\n\npackage p\n", true},
		{"combo", "//go:build !race && " + runtime.GOOS + "\n\npackage p\n", true},
		{"custom", "//go:build integration\n\npackage p\n", false},
		// A //go:build line after the package clause is not a constraint.
		{"late", "package p\n\n//go:build race\n", true},
	}
	for _, c := range cases {
		if got := parseForTags(t, c.src); got != c.want {
			t.Errorf("%s: buildTagOK = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestLoaderSkipsMismatchedTagFiles: a package split across race/!race
// variants (internal/testutil pattern) must load exactly one of the two,
// not both (which would be a redeclaration error).
func TestLoaderSkipsMismatchedTagFiles(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	files := map[string]string{
		"on.go":  "//go:build race\n\npackage p\n\nconst RaceEnabled = true\n",
		"off.go": "//go:build !race\n\npackage p\n\nconst RaceEnabled = false\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := l.LoadDir(dir, "example.com/tagsplit")
	if err != nil {
		t.Fatalf("loading a race/!race split package: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("loaded %d files, want 1 (the !race variant)", len(pkg.Files))
	}
}
