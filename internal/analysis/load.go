package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// ImportPath is the package's import path (module path + directory).
	ImportPath string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the package's non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's use/def/type maps for Files.
	Info *types.Info
}

// Loader parses and type-checks packages of one Go module using only the
// standard library: module-internal imports are resolved by recursively
// loading their directories; standard-library imports go through the
// compiler "source" importer so no pre-built export data is needed.
type Loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	dirs    map[string]string // import path -> absolute dir
	pkgs    map[string]*Package
	loading map[string]bool
	std     types.Importer
}

// NewLoader scans the module rooted at modRoot (the directory holding
// go.mod) and returns a loader for its packages.
func NewLoader(modRoot string) (*Loader, error) {
	root, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks the standard library from GOROOT
	// sources; with cgo disabled it selects the pure-Go variants, which
	// type-check without a C toolchain.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		modRoot: root,
		modPath: modPath,
		dirs:    make(map[string]string),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
		std:     importer.ForCompiler(fset, "source", nil),
	}
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l, nil
}

// ModulePath returns the module's path (the go.mod "module" line).
func (l *Loader) ModulePath() string { return l.modPath }

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// scan walks the module tree recording every directory that holds
// non-test Go files. testdata, hidden and vendor directories are skipped,
// matching the go tool's convention.
func (l *Loader) scan() error {
	return filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.modRoot, path)
				if err != nil {
					return err
				}
				ip := l.modPath
				if rel != "." {
					ip = l.modPath + "/" + filepath.ToSlash(rel)
				}
				l.dirs[ip] = path
				break
			}
		}
		return nil
	})
}

// buildTagOK reports whether a file's //go:build constraint (if any) is
// satisfied by the default build context, mirroring the go tool's file
// selection: GOOS, GOARCH, the compiler name and release tags are
// satisfied; every other tag (race, integration, ...) is not. Files
// without a constraint are always included.
func buildTagOK(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // unparseable: let the type-checker complain
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					tag == runtime.Compiler ||
					slices.Contains(build.Default.ReleaseTags, tag) ||
					slices.Contains(build.Default.BuildTags, tag)
			})
		}
	}
	return true
}

// Packages returns the import paths of every package in the module,
// sorted.
func (l *Loader) Packages() []string {
	out := make([]string, 0, len(l.dirs))
	for ip := range l.dirs {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// Load type-checks the module package with the given import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.dirs[importPath]
	if !ok {
		return nil, fmt.Errorf("analysis: no package %q in module %s", importPath, l.modPath)
	}
	return l.LoadDir(dir, importPath)
}

// LoadAll loads every package of the module, sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var out []*Package
	for _, ip := range l.Packages() {
		p, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir under the
// given import path. The import path controls how analyzers scope the
// package; fixture tests use it to stand a testdata directory in for a
// real module package.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if !buildTagOK(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	cfg := &types.Config{Importer: l}
	tpkg, err := cfg.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	p := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer: module-internal paths are loaded from
// source; everything else (the standard library) goes through the source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
