package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose behaviour must be a pure
// function of the seed: the discrete-event kernel and every simulated
// component built on it. internal/core is mixed real/sim; only its
// sim*.go files are covered (see simDeterministicFile).
var deterministicPkgs = map[string]bool{
	"hvac/internal/sim":    true,
	"hvac/internal/simnet": true,
	"hvac/internal/device": true,
	"hvac/internal/pfs":    true,
	"hvac/internal/train":  true,
}

// wallClockFuncs are the time functions that read or wait on the wall
// clock. Types like time.Duration remain fine: only calls are flagged.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandAllowed are the math/rand constructors that build explicitly
// seeded generators; every other package-level math/rand function uses
// the process-global source and breaks replay.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// SimDeterminism enforces the sim kernel's bit-for-bit replay promise
// (DESIGN.md): no wall-clock reads, no process-global randomness, and no
// iteration over Go's unordered maps inside the deterministic packages.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global rand and unordered map iteration in deterministic sim packages",
	Run:  runSimDeterminism,
}

// simDeterministicFile reports whether the file at pos in pkg is under
// the determinism contract.
func simDeterministicFile(p *Pass, file *ast.File) bool {
	if deterministicPkgs[p.ImportPath] {
		return true
	}
	if p.ImportPath == "hvac/internal/core" {
		return strings.HasPrefix(p.Filename(file.Pos()), "sim")
	}
	return false
}

func runSimDeterminism(p *Pass) {
	for _, f := range p.Files {
		if !simDeterministicFile(p, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil {
					checkDeterministicCall(p, n, fn)
				}
			case *ast.RangeStmt:
				if t := p.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !orderInsensitiveMapBody(n) {
						p.Reportf(n.Pos(),
							"iteration over map %s is unordered and breaks deterministic replay; iterate sorted keys instead",
							types.ExprString(n.X))
					}
				}
			}
			return true
		})
	}
}

func checkDeterministicCall(p *Pass, call *ast.CallExpr, fn *types.Func) {
	pkgPath := fn.Pkg().Path()
	pkgLevel := fn.Type().(*types.Signature).Recv() == nil
	switch {
	case pkgPath == "time" && pkgLevel && wallClockFuncs[fn.Name()]:
		p.Reportf(call.Pos(),
			"time.%s reads the wall clock; deterministic code must use the engine's virtual clock (sim.Engine.Now)",
			fn.Name())
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && pkgLevel && !globalRandAllowed[fn.Name()]:
		p.Reportf(call.Pos(),
			"%s.%s uses the process-global random source; deterministic code must use a seeded generator (sim.RNG or rand.New)",
			pkgPath, fn.Name())
	}
}

// orderInsensitiveMapBody reports whether a map-range body provably
// cannot leak iteration order: every statement either appends the range
// variables to a slice (the first half of the canonical collect-sort
// idiom) or bumps a counter. Anything richer is flagged and needs the
// sorted-keys rewrite or a reasoned suppression.
func orderInsensitiveMapBody(n *ast.RangeStmt) bool {
	rangeVar := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		for _, v := range []ast.Expr{n.Key, n.Value} {
			if vid, ok := v.(*ast.Ident); ok && vid.Name == id.Name {
				return true
			}
		}
		return false
	}
	for _, stmt := range n.Body.List {
		switch s := stmt.(type) {
		case *ast.IncDecStmt:
			// counting elements is commutative
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
				return false
			}
			lhs, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if !ok {
				return false
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "append" || len(call.Args) < 2 {
				return false
			}
			if dst, ok := call.Args[0].(*ast.Ident); !ok || dst.Name != lhs.Name {
				return false
			}
			for _, arg := range call.Args[1:] {
				if !rangeVar(arg) {
					return false
				}
			}
		default:
			return false
		}
	}
	return true
}

// calleeFunc resolves the called function or method, or nil for indirect
// calls, conversions and built-ins.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
