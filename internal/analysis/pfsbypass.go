package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// directFSFuncs are the os functions that reach the file system
// directly, bypassing the HVAC cache when called from interception code.
var directFSFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true,
	"ReadFile": true, "WriteFile": true,
	"Stat": true, "Lstat": true, "ReadDir": true,
}

// fallbackMarker annotates an intentional direct-PFS site in client
// code: the passthrough path for files outside the dataset directory and
// the §III-H fallback paths taken after server failure.
const fallbackMarker = "//hvac:pfs-fallback"

// PFSBypass enforces the cache-transparency invariant of §III-C: the
// client/interception layer (internal/core's client files and the
// hvac/loader package) must never reach the PFS directly except at sites
// annotated with a reasoned //hvac:pfs-fallback comment.
var PFSBypass = &Analyzer{
	Name: "pfsbypass",
	Doc:  "flag direct os file access in client/interception code outside annotated PFS-fallback sites",
	Run:  runPFSBypass,
}

// pfsClientFile reports whether the file is part of the interception
// layer whose reads must stay inside the cache protocol.
func pfsClientFile(p *Pass, file *ast.File) bool {
	if p.ImportPath == "hvac/loader" {
		return true
	}
	if p.ImportPath == "hvac/internal/core" {
		return strings.HasPrefix(p.Filename(file.Pos()), "client")
	}
	return false
}

func runPFSBypass(p *Pass) {
	for _, f := range p.Files {
		if !pfsClientFile(p, f) {
			continue
		}
		annotated := fallbackLines(p, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" || !directFSFuncs[fn.Name()] {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			line := p.Fset.Position(call.Pos()).Line
			if annotated[line] {
				return true
			}
			p.Reportf(call.Pos(),
				"os.%s bypasses the HVAC cache in client code; route through the server protocol or annotate the site with %s <reason>",
				fn.Name(), fallbackMarker)
			return true
		})
	}
}

// fallbackLines collects the lines covered by //hvac:pfs-fallback
// comments: the comment's own line and the one below it, so the marker
// works trailing or standalone. A marker without a reason covers
// nothing — the justification is the point of the annotation.
func fallbackLines(p *Pass, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, fallbackMarker)
			if !ok || strings.TrimSpace(rest) == "" {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}
