// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies, using only the standard library. It is the engine
// under hvaclint's path-sensitive analyzers (ownerpass): a Graph of
// basic blocks with explicit branch, loop, switch, select, panic and
// return edges, over which dataflow fixpoints (dataflow.go) run.
//
// The graph is purely syntactic — no type information is needed to
// build it — and deterministic: building the same body twice yields
// blocks in the same order with the same indices, so analyzers that
// iterate blocks in index order report findings in a stable order.
package cfg

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// BlockKind distinguishes the two synthetic blocks from ordinary body
// blocks.
type BlockKind uint8

const (
	// KindBody is an ordinary basic block of statements.
	KindBody BlockKind = iota
	// KindEntry is the function entry block (Blocks[0]); it may also
	// hold the first statements of the body.
	KindEntry
	// KindExit is the single synthetic exit block every return, panic
	// and fall-off-the-end edge targets. It holds no nodes.
	KindExit
)

// A Block is one basic block: a maximal straight-line sequence of
// nodes with branching only at the end.
type Block struct {
	// Index is the block's position in Graph.Blocks — deterministic
	// across builds of the same body.
	Index int
	// Kind marks entry/exit blocks.
	Kind BlockKind
	// Nodes are the statements and branch-condition expressions of the
	// block in execution order. Range heads carry the ranged-over
	// expression; switch heads carry the tag; select heads are empty.
	Nodes []ast.Node
	// Cond, when non-nil, is the boolean condition ending the block:
	// Succs[0] is the true edge and Succs[1] the false edge. Blocks
	// with nil Cond and multiple successors (range heads, switch and
	// select dispatch) branch nondeterministically.
	Cond ast.Expr
	// Succs are the successor blocks in deterministic order.
	Succs []*Block
	// Preds are the predecessor blocks.
	Preds []*Block
	// Term records why control leaves the function from this block:
	// the *ast.ReturnStmt or panic *ast.CallExpr behind an edge to
	// Exit, or the *ast.SelectStmt of a case-less select that blocks
	// forever (no exit edge at all). It is nil for the implicit
	// fall-off-the-end edge of a void function.
	Term ast.Node
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks lists every reachable block. Blocks[0] is the entry; the
	// exit block is always last.
	Blocks []*Block
	// Entry is Blocks[0].
	Entry *Block
	// Exit is the synthetic exit block (always present, possibly
	// unreachable in a function that cannot return, e.g. `for {}`).
	Exit *Block
	// Defers lists every defer statement of the body in source order.
	// Deferred calls conceptually run on every edge into Exit;
	// analyses that care apply them when checking exit facts.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of body. A nil body (external or
// assembly function) yields a two-block graph with an entry→exit edge.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{Exit: &Block{Kind: KindExit}}
	b := &builder{g: g, labels: map[string]*Block{}}
	entry := b.newBlock()
	entry.Kind = KindEntry
	g.Entry = entry
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(g.Exit, nil)
	b.finish()
	return g
}

// builder holds the state of one graph construction.
type builder struct {
	g   *Graph
	cur *Block
	// blocks accumulates every created block in creation order; finish
	// prunes the unreachable ones and assigns final indices.
	blocks []*Block
	// breaks and continues are the innermost-first stacks of branch
	// targets; each frame remembers the label of the enclosing labeled
	// statement (empty for unlabeled).
	breaks    []branchTarget
	continues []branchTarget
	// labels maps a label name to its target block, created lazily so
	// forward gotos resolve.
	labels map[string]*Block
	// pendingLabel is the label of the LabeledStmt whose inner
	// statement is about to be processed.
	pendingLabel string
	// fallTarget is the next case clause's body during switch clause
	// processing, the target of a fallthrough statement.
	fallTarget *Block
}

type branchTarget struct {
	label string
	block *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{}
	b.blocks = append(b.blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump ends the current block with an edge to target (recording term
// as the exit reason when target is Exit) and leaves the builder on a
// fresh, unreachable block so statements after a terminator parse
// without special cases — pruning removes the dead block later.
func (b *builder) jump(target *Block, term ast.Node) {
	if term != nil {
		b.cur.Term = term
	}
	addEdge(b.cur, target)
	b.cur = b.newBlock()
}

// add appends a node to the current block.
func (b *builder) add(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// startBlock ends the current block with a fall-through edge into a
// new block and makes the new block current.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	addEdge(b.cur, blk)
	b.cur = blk
	return blk
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// findTarget resolves a break/continue to its target block.
func (b *builder) findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// isPanicCall reports whether e is a call to the predeclared panic.
// Purely syntactic: a shadowed `panic` identifier would be
// misclassified, which the code base never does.
func isPanicCall(e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return nil, false
	}
	return call, true
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label block is the goto/continue target; fall into it.
		lb := b.labelBlock(s.Label.Name)
		addEdge(b.cur, lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s.Body)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s.Body)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit, s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := isPanicCall(s.X); ok {
			b.jump(b.g.Exit, call)
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, GoStmt, SendStmt, IncDecStmt, ...
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	b.takeLabel() // a label on an if only names a goto target
	if s.Init != nil {
		b.stmt(s.Init)
	}
	b.add(s.Cond)
	cond := b.cur
	cond.Cond = s.Cond

	then := b.newBlock()
	addEdge(cond, then) // Succs[0]: true edge
	var elseBlk *Block
	if s.Else != nil {
		elseBlk = b.newBlock()
		addEdge(cond, elseBlk) // Succs[1]: false edge
	}
	after := b.newBlock()
	if elseBlk == nil {
		addEdge(cond, after) // Succs[1]: false edge
	}

	b.cur = then
	b.stmt(s.Body)
	addEdge(b.cur, after)

	if elseBlk != nil {
		b.cur = elseBlk
		b.stmt(s.Else)
		addEdge(b.cur, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt) {
	label := b.takeLabel()
	if s.Init != nil {
		b.stmt(s.Init)
	}
	head := b.startBlock()
	body := b.newBlock()
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
	}
	after := b.newBlock()

	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		head.Cond = s.Cond
		addEdge(head, body)  // true
		addEdge(head, after) // false
	} else {
		addEdge(head, body) // `for {`: only exit is break/return
	}

	contTarget := head
	if post != nil {
		contTarget = post
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, contTarget})
	b.cur = body
	b.stmt(s.Body)
	addEdge(b.cur, contTarget)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]

	if post != nil {
		b.cur = post
		b.stmt(s.Post)
		addEdge(b.cur, head) // back edge
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	label := b.takeLabel()
	head := b.startBlock()
	// The ranged-over expression is evaluated once at the head; the
	// key/value assignment happens implicitly per iteration.
	head.Nodes = append(head.Nodes, s.X)
	body := b.newBlock()
	after := b.newBlock()
	addEdge(head, body)  // iterate
	addEdge(head, after) // done (nondeterministic: Cond stays nil)

	b.breaks = append(b.breaks, branchTarget{label, after})
	b.continues = append(b.continues, branchTarget{label, head})
	b.cur = body
	b.stmt(s.Body)
	addEdge(b.cur, head) // back edge
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	b.cur = after
}

// switchBody wires the clause blocks of a switch or type switch. The
// head (current block) branches to every clause and, when there is no
// default clause, to the after block.
func (b *builder) switchBody(body *ast.BlockStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()

	var clauses []*ast.CaseClause
	clauseBlocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses = append(clauses, cc)
		blk := b.newBlock()
		clauseBlocks = append(clauseBlocks, blk)
		addEdge(head, blk)
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(head, after)
	}

	b.breaks = append(b.breaks, branchTarget{label, after})
	for i, cc := range clauses {
		b.cur = clauseBlocks[i]
		// Case expressions are evaluated when the clause is considered.
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(clauseBlocks) {
			b.fallTarget = clauseBlocks[i+1]
		} else {
			b.fallTarget = nil
		}
		b.stmtList(cc.Body)
		b.fallTarget = nil
		addEdge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	label := b.takeLabel()
	head := b.cur
	after := b.newBlock()

	if len(s.Body.List) == 0 {
		// `select {}` blocks forever: control never leaves the head.
		head.Term = s
	}
	b.breaks = append(b.breaks, branchTarget{label, after})
	for _, cs := range s.Body.List {
		cc := cs.(*ast.CommClause)
		blk := b.newBlock()
		addEdge(head, blk)
		b.cur = blk
		if cc.Comm != nil {
			b.stmt(cc.Comm)
		}
		b.stmtList(cc.Body)
		addEdge(b.cur, after)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	// A select with no default blocks until a case fires: there is no
	// direct head→after edge, so `select {}` leaves after unreachable.
	b.cur = after
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		if t := b.findTarget(b.breaks, label); t != nil {
			b.jump(t, nil)
		}
	case token.CONTINUE:
		if t := b.findTarget(b.continues, label); t != nil {
			b.jump(t, nil)
		}
	case token.GOTO:
		b.jump(b.labelBlock(label), nil)
	case token.FALLTHROUGH:
		if b.fallTarget != nil {
			b.jump(b.fallTarget, nil)
		}
	}
}

// finish prunes unreachable blocks, appends the exit block, and
// assigns final indices. Reachability is computed over successor
// edges from the entry; predecessor lists are filtered to the kept
// set so no edge dangles.
func (b *builder) finish() {
	reach := map[*Block]bool{b.g.Entry: true}
	work := []*Block{b.g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	var kept []*Block
	for _, blk := range b.blocks {
		if reach[blk] {
			kept = append(kept, blk)
		}
	}
	kept = append(kept, b.g.Exit)
	reach[b.g.Exit] = true
	for i, blk := range kept {
		blk.Index = i
		preds := blk.Preds[:0]
		for _, p := range blk.Preds {
			if reach[p] {
				preds = append(preds, p)
			}
		}
		blk.Preds = preds
	}
	// Successor edges from kept blocks always target kept blocks, but
	// an unreachable block may still point into the kept set; its
	// entries were just filtered from Preds above.
	b.g.Blocks = kept
}

// String renders the graph compactly for tests and debugging:
// one line per block with its kind, node count and successor indices.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		kind := ""
		switch blk.Kind {
		case KindEntry:
			kind = " entry"
		case KindExit:
			kind = " exit"
		}
		succs := make([]string, len(blk.Succs))
		for i, s := range blk.Succs {
			succs[i] = fmt.Sprintf("%d", s.Index)
		}
		cond := ""
		if blk.Cond != nil {
			cond = " cond"
		}
		fmt.Fprintf(&sb, "b%d%s%s: %d nodes -> [%s]\n",
			blk.Index, kind, cond, len(blk.Nodes), strings.Join(succs, " "))
	}
	return sb.String()
}

// Fingerprint hashes the graph's structure — block order, node
// positions, conditions, terminators and edges — so tests can assert
// that two builds of the same body are identical.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // hash.Hash never errors
	}
	for _, blk := range g.Blocks {
		word(uint64(blk.Index))
		word(uint64(blk.Kind))
		for _, n := range blk.Nodes {
			word(uint64(n.Pos()))
		}
		if blk.Cond != nil {
			word(uint64(blk.Cond.Pos()))
		}
		if blk.Term != nil {
			word(uint64(blk.Term.Pos()))
		}
		for _, s := range blk.Succs {
			word(uint64(s.Index))
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
