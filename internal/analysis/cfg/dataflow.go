package cfg

// Forward is a generic forward dataflow problem over a Graph. The
// analyzer supplies the lattice operations; Fixpoint iterates blocks
// in deterministic index order until the in-facts stabilize.
//
// F is the fact type (typically a pointer to a state struct). The
// engine never aliases facts across blocks: Transfer and Refine
// receive a private copy (via Clone) they may mutate and return.
type Forward[F any] struct {
	// Graph is the function's control-flow graph.
	Graph *Graph
	// Entry is the fact on entry to Blocks[0].
	Entry F
	// Transfer applies the block's nodes to in, returning the out fact.
	// It may mutate and return in.
	Transfer func(b *Block, in F) F
	// Refine, if non-nil, adapts the out fact along the edge to
	// b.Succs[i] — the hook for branch-condition refinement (e.g.
	// "err == nil on the true edge"). It may mutate and return out.
	Refine func(b *Block, i int, out F) F
	// Join merges two facts at a control-flow merge. It may mutate and
	// return a.
	Join func(a, b F) F
	// Equal reports whether two facts are equivalent (fixpoint test).
	Equal func(a, b F) bool
	// Clone deep-copies a fact.
	Clone func(F) F
}

// maxRounds bounds fixpoint iteration. The lattices hvaclint runs are
// finite and small (bitmask states per token), so a fixpoint arrives
// within a handful of rounds; the cap is a defensive backstop against
// a non-monotone Transfer looping forever.
const maxRounds = 64

// Fixpoint computes the stable in-fact of every block, keyed by block
// index. The entry block's in-fact is Entry; facts flow along edges,
// refined by Refine and merged by Join.
func (fw *Forward[F]) Fixpoint() []F {
	n := len(fw.Graph.Blocks)
	ins := make([]F, n)
	has := make([]bool, n)
	ins[fw.Graph.Entry.Index] = fw.Entry
	has[fw.Graph.Entry.Index] = true

	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, blk := range fw.Graph.Blocks {
			if !has[blk.Index] {
				continue // not yet reached
			}
			out := fw.Transfer(blk, fw.Clone(ins[blk.Index]))
			for i, succ := range blk.Succs {
				edge := fw.Clone(out)
				if fw.Refine != nil {
					edge = fw.Refine(blk, i, edge)
				}
				j := succ.Index
				if !has[j] {
					ins[j] = edge
					has[j] = true
					changed = true
					continue
				}
				merged := fw.Join(fw.Clone(ins[j]), edge)
				if !fw.Equal(merged, ins[j]) {
					ins[j] = merged
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return ins
}
