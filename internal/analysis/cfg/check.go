package cfg

import "fmt"

// Check validates the structural invariants of a built graph:
//
//   - Blocks[0] is the entry and the last block is the exit.
//   - Block indices match slice positions (deterministic ordering).
//   - Every non-exit block is reachable from the entry (pruning
//     worked) and has at least one successor (control always flows
//     somewhere; only the exit terminates).
//   - The exit has no successors and holds no nodes.
//   - A block with a condition has exactly two successors.
//   - Successor/predecessor lists are mutually consistent and stay
//     within the kept block set.
//
// The self-analysis regression test runs Check over every function in
// the module so the builder cannot silently misparse new syntax.
func Check(g *Graph) error {
	if len(g.Blocks) < 2 {
		return fmt.Errorf("graph has %d blocks; want at least entry+exit", len(g.Blocks))
	}
	if g.Blocks[0] != g.Entry || g.Entry.Kind != KindEntry {
		return fmt.Errorf("Blocks[0] is not the entry")
	}
	if g.Blocks[len(g.Blocks)-1] != g.Exit || g.Exit.Kind != KindExit {
		return fmt.Errorf("last block is not the exit")
	}
	inSet := make(map[*Block]bool, len(g.Blocks))
	for i, b := range g.Blocks {
		if b.Index != i {
			return fmt.Errorf("block at position %d has index %d", i, b.Index)
		}
		inSet[b] = true
	}
	if len(g.Exit.Succs) != 0 || len(g.Exit.Nodes) != 0 {
		return fmt.Errorf("exit block must have no successors and no nodes")
	}
	// Edge consistency.
	for _, b := range g.Blocks {
		if b.Cond != nil && len(b.Succs) != 2 {
			return fmt.Errorf("b%d has a condition but %d successors", b.Index, len(b.Succs))
		}
		if b.Kind != KindExit && len(b.Succs) == 0 && b.Term == nil {
			// A block may legitimately end control flow without an
			// exit edge only when it blocks forever (`select {}`),
			// recorded via Term.
			return fmt.Errorf("b%d has no successors but is not the exit", b.Index)
		}
		for _, s := range b.Succs {
			if !inSet[s] {
				return fmt.Errorf("b%d has a successor outside the graph", b.Index)
			}
			if !containsBlock(s.Preds, b) {
				return fmt.Errorf("b%d -> b%d edge missing from preds", b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !inSet[p] {
				return fmt.Errorf("b%d has a predecessor outside the graph", b.Index)
			}
			if !containsBlock(p.Succs, b) {
				return fmt.Errorf("b%d pred b%d lacks the succ edge", b.Index, p.Index)
			}
		}
	}
	// Reachability from the entry.
	reach := map[*Block]bool{g.Entry: true}
	work := []*Block{g.Entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range blk.Succs {
			if !reach[s] {
				reach[s] = true
				work = append(work, s)
			}
		}
	}
	for _, b := range g.Blocks {
		if b.Kind != KindExit && !reach[b] {
			return fmt.Errorf("b%d is unreachable from the entry", b.Index)
		}
	}
	return nil
}

func containsBlock(list []*Block, b *Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
