package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of a function declaration and
// returns its block statement.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() " + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// checkInvariants asserts the structural invariants every graph must
// satisfy; the module-wide self-analysis test reuses the same checks
// via Check.
func checkInvariants(t *testing.T, g *Graph) {
	t.Helper()
	if err := Check(g); err != nil {
		t.Fatalf("invariants: %v\n%s", err, g)
	}
}

func build(t *testing.T, body string) *Graph {
	t.Helper()
	g := New(parseBody(t, body))
	checkInvariants(t, g)
	return g
}

func TestLinear(t *testing.T) {
	g := build(t, `{ x := 1; x++; _ = x }`)
	if len(g.Blocks) != 2 {
		t.Fatalf("want entry+exit, got:\n%s", g)
	}
	if got := len(g.Entry.Nodes); got != 3 {
		t.Fatalf("entry nodes = %d, want 3", got)
	}
	if g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry must fall into exit:\n%s", g)
	}
}

func TestIfElse(t *testing.T) {
	g := build(t, `{ if x := 1; x > 0 { x-- } else { x++ }; _ = 0 }`)
	cond := g.Entry
	if cond.Cond == nil || len(cond.Succs) != 2 {
		t.Fatalf("entry should end in a 2-way condition:\n%s", g)
	}
	// true edge is Succs[0], false edge Succs[1]; both rejoin.
	thenB, elseB := cond.Succs[0], cond.Succs[1]
	if thenB.Succs[0] != elseB.Succs[0] {
		t.Fatalf("branches must rejoin:\n%s", g)
	}
}

func TestIfReturnPrunesJoinEdge(t *testing.T) {
	g := build(t, `{ if true { return }; _ = 1 }`)
	var returns int
	for _, b := range g.Blocks {
		if _, ok := b.Term.(*ast.ReturnStmt); ok {
			returns++
		}
	}
	if returns != 1 {
		t.Fatalf("want one return terminator:\n%s", g)
	}
}

func TestForLoop(t *testing.T) {
	g := build(t, `{ for i := 0; i < 3; i++ { if i == 1 { continue }; if i == 2 { break } } }`)
	// The head must have a back edge: some block's successor list
	// includes a block with a smaller index.
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index <= b.Index && s != b {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("loop needs a back edge:\n%s", g)
	}
}

func TestInfiniteLoopExitUnreachable(t *testing.T) {
	g := build(t, `{ for { } }`)
	if len(g.Exit.Preds) != 0 {
		t.Fatalf("for{} cannot reach exit:\n%s", g)
	}
}

func TestRange(t *testing.T) {
	g := build(t, `{ s := []int{1}; for _, v := range s { _ = v } }`)
	// Range head: nil Cond, two successors (iterate / done).
	found := false
	for _, b := range g.Blocks {
		if b.Cond == nil && len(b.Succs) == 2 && b.Kind == KindBody {
			found = true
		}
	}
	if !found {
		t.Fatalf("range head with 2 succs not found:\n%s", g)
	}
}

func TestSwitchFallthroughAndDefault(t *testing.T) {
	g := build(t, `{ switch x := 1; x { case 1: x++; fallthrough; case 2: x--; default: x = 0 }; _ = 1 }`)
	checkInvariants(t, g)
	// No default → head must edge to after; with default it must not.
	g2 := build(t, `{ switch 1 { case 1: } ; _ = 2 }`)
	head := g2.Entry
	if len(head.Succs) != 2 {
		t.Fatalf("switch head without default needs case+after succs:\n%s", g2)
	}
}

func TestSelect(t *testing.T) {
	g := build(t, `{ ch := make(chan int); select { case v := <-ch: _ = v; default: } }`)
	checkInvariants(t, g)
	g2 := build(t, `{ select {} }`)
	if len(g2.Exit.Preds) != 0 {
		t.Fatalf("select{} blocks forever; exit unreachable:\n%s", g2)
	}
}

func TestGotoAndLabels(t *testing.T) {
	g := build(t, `{ i := 0
loop:
	i++
	if i < 3 { goto loop }
	_ = i }`)
	checkInvariants(t, g)
	hasBack := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s.Index < b.Index {
				hasBack = true
			}
		}
	}
	if !hasBack {
		t.Fatalf("goto loop needs a back edge:\n%s", g)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	g := build(t, `{
outer:
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if j == 1 { continue outer }
			if j == 2 { break outer }
		}
	}
	_ = 1 }`)
	checkInvariants(t, g)
}

func TestPanicTerminates(t *testing.T) {
	g := build(t, `{ if true { panic("boom") }; _ = 1 }`)
	var panics int
	for _, b := range g.Blocks {
		if c, ok := b.Term.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				panics++
			}
		}
	}
	if panics != 1 {
		t.Fatalf("want one panic terminator:\n%s", g)
	}
}

func TestDefersRecorded(t *testing.T) {
	g := build(t, `{ defer f(); if true { defer f() } }`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 defers, got %d", len(g.Defers))
	}
}

func TestUnreachableCodePruned(t *testing.T) {
	g := build(t, `{ return; _ = 1 }`) //nolint: dead code on purpose
	for _, b := range g.Blocks {
		if b.Kind == KindBody && len(b.Nodes) == 1 {
			if _, ok := b.Nodes[0].(*ast.AssignStmt); ok {
				t.Fatalf("dead assignment survived pruning:\n%s", g)
			}
		}
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	checkInvariants(t, g)
	if len(g.Blocks) != 2 {
		t.Fatalf("nil body: want entry+exit, got:\n%s", g)
	}
}

func TestDeterministic(t *testing.T) {
	const body = `{
	for i := 0; i < 4; i++ {
		switch {
		case i == 1:
			continue
		case i == 2:
			break
		}
		select {
		default:
		}
	}
	if x := 1; x > 0 {
		return
	}
}`
	a := build(t, body).Fingerprint()
	bOnce := build(t, body)
	if got := bOnce.Fingerprint(); got != a {
		t.Fatalf("fingerprint not deterministic: %s vs %s", a, got)
	}
}

// TestForwardFixpoint runs a tiny must-assign analysis over a diamond
// to smoke-test the dataflow engine: a variable assigned on only one
// branch must not be "definitely assigned" after the join.
func TestForwardFixpoint(t *testing.T) {
	g := build(t, `{ x := 0; if x > 0 { y := 1; _ = y } else { _ = 2 }; _ = 3 }`)

	type fact = map[string]bool // var name → definitely assigned
	fw := &Forward[fact]{
		Graph: g,
		Entry: fact{},
		Transfer: func(b *Block, in fact) fact {
			for _, n := range b.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok {
					for _, l := range as.Lhs {
						if id, ok := l.(*ast.Ident); ok {
							in[id.Name] = true
						}
					}
				}
			}
			return in
		},
		Join: func(a, b fact) fact {
			for k := range a {
				if !b[k] {
					delete(a, k)
				}
			}
			return a
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
		Clone: func(f fact) fact {
			out := make(fact, len(f))
			for k, v := range f {
				out[k] = v
			}
			return out
		},
	}
	ins := fw.Fixpoint()
	exitIn := ins[g.Exit.Index]
	if !exitIn["x"] {
		t.Fatalf("x assigned on every path; exit fact %v", exitIn)
	}
	if exitIn["y"] {
		t.Fatalf("y assigned on one branch only; exit fact %v", exitIn)
	}
}
