package gorofix

// background runs for the process lifetime by design: nothing restarts
// it, and process exit tears it down.
func background() {
	//hvaclint:ignore goroleak process-lifetime pump; torn down only by process exit
	go func() {
		for {
			step()
		}
	}()
}
