package gorofix

import "time"

// tickForever spins on a channel the runtime never closes: nothing can
// stop it.
func tickForever(d time.Duration) {
	go func() { // want "goroutine .* has no termination path"
		for range time.Tick(d) {
			step()
		}
	}()
}

// tickerForever is the same leak through an explicit Ticker: its C is
// never closed either.
func tickerForever(t *time.Ticker) {
	go func() { // want "goroutine .* has no termination path"
		for range t.C {
			step()
		}
	}()
}

// spin loops unconditionally with no receive, select, or WaitGroup.
func spin() {
	for {
		step()
	}
}

func spawnSpin() {
	go spin() // want "goroutine .* has no termination path"
}

func step() {}
