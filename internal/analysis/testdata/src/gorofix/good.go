package gorofix

import (
	"sync"
	"time"
)

// stoppable parks on a select with a stop channel: close(stop) ends it.
func stoppable(stop <-chan struct{}, d time.Duration) {
	go func() {
		t := time.NewTicker(d)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				step()
			case <-stop:
				return
			}
		}
	}()
}

// joined signals a WaitGroup its spawner waits on.
func joined(wg *sync.WaitGroup, work []int) {
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
			step()
		}()
	}
	wg.Wait()
}

// drains exits when the producer closes the channel.
func drains(ch <-chan int) {
	go func() {
		for range ch {
			step()
		}
	}()
}

// spawnOneShot runs a straight-line body: it terminates by construction.
func spawnOneShot() {
	go step()
}

// waitLoop's termination path (the receive) is one call away; the
// analyzer sees it through the call graph.
func waitLoop(stop <-chan struct{}) {
	for {
		<-stop
		return
	}
}

func spawnHelper(stop <-chan struct{}) {
	go waitLoop(stop)
}
