package transport

import (
	"net"
	"time"
)

type frame struct{ n int }

// acceptLoop hands fresh conns to a handler without any deadline set:
// the handler's conn is a parameter, so the obligation lands on this
// call site, not inside serveConn.
func acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go serveConn(conn) // want "blocking call to serveConn passing conn conn has no deadline"
	}
}

// serveConn's conn is a parameter: its Read is the caller's
// obligation, so no finding here — the bug is reported in acceptLoop.
func serveConn(conn net.Conn) {
	buf := make([]byte, 64)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// dialAndRead reads a conn it made itself with no deadline anywhere.
func dialAndRead(addr string) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	buf := make([]byte, 32)
	_, err = conn.Read(buf) // want "blocking conn.Read has no deadline on some path"
	return buf, err
}

// halfGuarded sets a deadline on only one branch; the write below the
// merge is unguarded on the other path.
func halfGuarded(mk func() net.Conn, fast bool, d time.Duration) {
	conn := mk()
	if fast {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	conn.Write([]byte("ping")) // want "blocking conn.Write has no deadline on some path"
}

// waitAck blocks on a bare receive with no stop or timeout case.
func waitAck(ch chan frame) frame {
	return <-ch // want "blocking receive from ch has no alternative"
}

// singleSelect is a bare receive in disguise: one case and no default
// blocks exactly like <-ch.
func singleSelect(ch chan frame) {
	select {
	case <-ch: // want "blocking receive from ch has no alternative"
	}
}

// drain ranges over a channel nothing is obliged to close.
func drain(ch chan frame) {
	for range ch { // want "range over ch blocks until the channel closes"
	}
}
