package transport

// legacyWait predates the stop-channel plumbing; the suppression
// documents the external guarantee the analyzer cannot see.
func legacyWait(ch chan frame) frame {
	//hvaclint:ignore blockguard the dispatcher tears this goroutine down with the process
	return <-ch
}

// wrongRuleWait shows suppressions are per-rule: naming a different
// analyzer does not silence blockguard.
func wrongRuleWait(ch chan frame) frame {
	//hvaclint:ignore goroleak wrong rule on purpose
	return <-ch // want "blocking receive from ch has no alternative"
}
