package transport

import (
	"net"
	"time"
)

// deadlineRead sets a read deadline on every path before blocking.
func deadlineRead(addr string, d time.Duration) ([]byte, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	conn.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 32)
	_, err = conn.Read(buf)
	return buf, err
}

// knobGated is the configured-timeout idiom: branching on the
// time.Duration knob guards both edges — a zero knob is a deliberate
// opt-out, not an oversight.
func knobGated(mk func() net.Conn, d time.Duration) {
	conn := mk()
	if d > 0 {
		conn.SetWriteDeadline(time.Now().Add(d))
	}
	conn.Write([]byte("ping"))
}

// guardedHandoff sets the deadline before handing the conn off, so
// the conn-argument site is covered.
func guardedHandoff(mk func() net.Conn, d time.Duration) {
	conn := mk()
	conn.SetDeadline(time.Now().Add(d))
	go serveConn(conn)
}

// stopSelect offers an alternative on every blocking receive.
func stopSelect(ch chan frame, stop chan struct{}) (frame, bool) {
	select {
	case f := <-ch:
		return f, true
	case <-stop:
		return frame{}, false
	}
}

// timedWait blocks on inherently bounded channels only.
func timedWait(d time.Duration) {
	<-time.After(d)
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// annotatedRecv documents its external unblocker: the worker always
// sends exactly once into a buffered channel.
func annotatedRecv(ch chan frame) frame {
	//hvac:blockguard the worker always sends exactly once into a buffered channel
	return <-ch
}

// annotatedDrain documents that the producer closes the channel when
// the transfer ends.
func annotatedDrain(ch chan frame) {
	for range ch { //hvac:blockguard producer closes ch when the transfer completes
	}
}
