package atomfix

import "sync/atomic"

type counterBad struct {
	hits int64
}

// incr commits hits to sync/atomic access...
func (c *counterBad) incr() {
	atomic.AddInt64(&c.hits, 1)
}

// ...so the plain load here races with it.
func (c *counterBad) snapshot() int64 {
	return c.hits // want "hits is accessed with sync/atomic at .* but with a plain load/store here"
}

// reset races on the store side.
func (c *counterBad) reset() {
	c.hits = 0 // want "hits is accessed with sync/atomic at .* but with a plain load/store here"
}
