package atomfix

import "sync/atomic"

type counterSup struct {
	n int64
}

func (c *counterSup) incr() {
	atomic.AddInt64(&c.n, 1)
}

// lastReport reads the counter during single-threaded shutdown, after
// every writer has been joined.
func (c *counterSup) lastReport() int64 {
	//hvaclint:ignore atomicmix read runs after shutdown joins every writer; no concurrent access remains
	return c.n
}
