package atomfix

import "sync/atomic"

// counterGood uses the typed atomic: a plain access of the value is
// unrepresentable.
type counterGood struct {
	hits atomic.Int64
	name string
}

func (c *counterGood) incr() {
	c.hits.Add(1)
}

func (c *counterGood) snapshot() int64 {
	return c.hits.Load()
}

func (c *counterGood) label() string {
	return c.name
}

// rawGood keeps every access of the raw field atomic.
type rawGood struct {
	n int64
}

func (r *rawGood) incr() {
	atomic.AddInt64(&r.n, 1)
}

func (r *rawGood) load() int64 {
	return atomic.LoadInt64(&r.n)
}
