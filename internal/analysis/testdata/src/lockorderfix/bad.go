package lockorderfix

import (
	"sync"

	"hvac/internal/transport"
)

type pair struct {
	a, b sync.Mutex
	n    int
}

// lockAB and lockBA close the classic ABBA deadlock: each waits for the
// lock the other holds.
func lockAB(p *pair) {
	p.a.Lock()
	p.b.Lock() // want "lock-ordering cycle: .* acquired while .* is held"
	p.n++
	p.b.Unlock()
	p.a.Unlock()
}

func lockBA(p *pair) {
	p.b.Lock()
	p.a.Lock() // want "lock-ordering cycle: .* acquired while .* is held"
	p.n++
	p.a.Unlock()
	p.b.Unlock()
}

// double re-acquires the very lock it already holds.
func double(p *pair) {
	p.a.Lock()
	p.a.Lock() // want "self-deadlock"
	p.n++
	p.a.Unlock()
	p.a.Unlock()
}

// heldAcross pins the mutex for the whole network round-trip.
func heldAcross(p *pair, c *transport.Client) error {
	p.a.Lock()
	defer p.a.Unlock()
	return c.Ping() // want "held across a call to .*Ping.* blocks on the transport"
}

// pingHelper makes heldAcrossIndirect block one call away.
func pingHelper(c *transport.Client) error {
	return c.Ping()
}

func heldAcrossIndirect(p *pair, c *transport.Client) error {
	p.b.Lock()
	defer p.b.Unlock()
	return pingHelper(c) // want "held across a call to .*pingHelper.* blocks on the transport"
}
