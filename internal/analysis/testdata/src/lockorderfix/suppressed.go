package lockorderfix

import (
	"sync"

	"hvac/internal/transport"
)

type guard struct {
	mu sync.Mutex
}

// flushUnderLock intentionally holds the lock across the round-trip: the
// client's call deadline bounds the hold time and the lock protects
// exactly the in-flight frame.
func flushUnderLock(g *guard, c *transport.Client) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	//hvaclint:ignore lockorder call deadline bounds the hold time; the lock serialises the in-flight frame by design
	return c.Ping()
}
