package lockorderfix

import (
	"sync"

	"hvac/internal/transport"
)

type state struct {
	a, b sync.Mutex
	n    int
}

// consistentOne and consistentTwo always take a before b: one global
// order, no cycle.
func consistentOne(s *state) {
	s.a.Lock()
	s.b.Lock()
	s.n++
	s.b.Unlock()
	s.a.Unlock()
}

func consistentTwo(s *state) {
	s.a.Lock()
	s.b.Lock()
	s.n--
	s.b.Unlock()
	s.a.Unlock()
}

// releaseFirst drops the lock before the blocking round-trip.
func releaseFirst(s *state, c *transport.Client) error {
	s.a.Lock()
	s.n++
	s.a.Unlock()
	return c.Ping()
}

type rstate struct {
	mu sync.RWMutex
	n  int
}

// readers may re-enter the read side of an RWMutex.
func readNested(r *rstate) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
