package statfix

// legacyTally predates the pair annotations; the suppression records
// why the skew is deliberate.
func legacyTally(s *ServerStats) {
	s.Misses++
	s.Hits++
	//hvaclint:ignore statpair hits here are re-counted by the collector, which owes the open
	return
}

// wrongRuleTally shows suppressions are per-rule: naming a different
// analyzer does not silence statpair.
func wrongRuleTally(s *ServerStats) {
	s.Hits++
	//hvaclint:ignore goroleak wrong rule on purpose
	return // want "path exits with pair group \"served\" unbalanced \(left-right = \+1\)"
}
