package statfix

// hitBalanced pairs every left bump with a right bump on every path.
func hitBalanced(s *ServerStats, hit bool) {
	s.Opens++
	if hit {
		s.Hits++
	} else {
		s.ReadThroughs++
	}
}

// batchBalanced cancels symbolic amounts: both sides move by the same
// expression.
func batchBalanced(s *ServerStats, n int) {
	s.ReadThroughs += int64(n)
	s.BatchEntries += int64(n)
}

// loopBalanced is the read-batch shape: each iteration settles its
// own accounting, so the loop balance stays put.
func loopBalanced(s *ServerStats, batch []int) {
	for range batch {
		s.Hits++
		s.BatchEntries++
	}
}

// mirrorBalanced moves the atomic mirrors together.
func mirrorBalanced(c *liveCounters) {
	c.hits.Add(1)
	c.opens.Add(1)
}

// oneOutcome counts exactly one outcome per path; repeating the same
// member (the looped passthrough) is not a violation.
func oneOutcome(c *ClientStats, redirected bool, parts int) {
	if redirected {
		c.Redirected++
		return
	}
	for i := 0; i < parts; i++ {
		c.Passthrough++
	}
}

// litBalanced bumps both sides through the deferred-update literal.
func litBalanced(s *ServerStats, apply func(func(*ServerStats))) {
	apply(func(st *ServerStats) {
		st.Hits++
		st.Opens++
	})
}

//hvac:pair-split served cold-start accounting: opens are counted when the fill completes, not here
func declaredSplit(s *ServerStats) {
	s.Hits++
}
