package statfix

import "sync/atomic"

// ServerStats declares the served identity the chaos tier asserts
// dynamically: Hits+ReadThroughs must equal Opens+BatchEntries.
type ServerStats struct {
	//hvac:pair served left
	Hits int64
	//hvac:pair served left
	ReadThroughs int64
	//hvac:pair served right
	Opens int64
	//hvac:pair served right
	BatchEntries int64
	// Misses carries no identity and may move alone.
	Misses int64
}

// ClientStats declares open-outcome exclusivity: one call counts
// exactly one outcome.
type ClientStats struct {
	//hvac:pair outcome oneof
	Passthrough int64
	//hvac:pair outcome oneof
	Redirected int64
	//hvac:pair outcome oneof
	Fallbacks int64
}

// liveCounters is the atomic mirror: its fields join the groups by
// case-insensitive name match.
type liveCounters struct {
	hits  atomic.Int64
	opens atomic.Int64
}

// hitWithoutOpen bumps the left side of served and returns.
func hitWithoutOpen(s *ServerStats) {
	s.Hits++
	return // want "path exits with pair group \"served\" unbalanced \(left-right = \+1\)"
}

// mirrorSkew bumps only the atomic mirror of the right side.
func mirrorSkew(c *liveCounters) {
	c.opens.Add(1)
	return // want "path exits with pair group \"served\" unbalanced \(left-right = -1\)"
}

// branchSkew balances one branch but not the other: the merged exit
// carries both balances, and the skewed one reports.
func branchSkew(s *ServerStats, hit bool) {
	s.Opens++
	if hit {
		s.Hits++
	}
	return // want "path exits with pair group \"served\" unbalanced \(left-right = -1\)"
}

// loopSkew bumps one side per iteration: the balance set diverges and
// poisons the exit.
func loopSkew(s *ServerStats, batch []int) {
	s.Hits++
	for range batch {
		s.BatchEntries++
	}
	return // want "a loop on this path bumps pair group \"served\" unevenly"
}

// doubleOutcome counts two different outcomes for one call.
func doubleOutcome(c *ClientStats) {
	c.Redirected++
	c.Fallbacks++ // want "path already counted Redirected of oneof group \"outcome\""
}

// litSkew bumps through a deferred-update literal, the client's
// bump(func(...)) idiom: the literal's bumps attribute to this path.
func litSkew(s *ServerStats, apply func(func(*ServerStats))) {
	apply(func(st *ServerStats) {
		st.ReadThroughs++
	})
	return // want "path exits with pair group \"served\" unbalanced \(left-right = \+1\)"
}

type malformed struct {
	X int64 //hvac:pair served // want "malformed pair annotation"
}
