package transport

import (
	"encoding/binary"
	"io"
)

// Batch-decode shapes (OpReadBatch): the blob carries a u16 entry count
// and a per-entry u32 payload length, every one of them peer-chosen.
// Each must be compared against the remaining input before it sizes an
// allocation or a copy.

const maxBatch = 512

// decodeBatchBad trusts both wire lengths: the count picks the slice
// allocation and each entry length picks a payload allocation.
func decodeBatchBad(blob []byte) [][]byte {
	count := int(binary.LittleEndian.Uint16(blob))
	out := make([][]byte, 0, count) // want "make size .* derives from a wire-decoded length"
	off := 2
	for len(out) < count && off+5 <= len(blob) {
		n := binary.LittleEndian.Uint32(blob[off+1:])
		off += 5
		buf := make([]byte, n) // want "make size .* derives from a wire-decoded length"
		copy(buf, blob[off:])
		out = append(out, buf)
		off += int(n)
	}
	return out
}

// relayBatchEntryBad streams a peer-chosen number of payload bytes.
func relayBatchEntryBad(w io.Writer, r io.Reader, hdr []byte) error {
	n := binary.LittleEndian.Uint32(hdr[1:])
	_, err := io.CopyN(w, r, int64(n)) // want "io.CopyN size .* derives from a wire-decoded length"
	return err
}

// decodeBatchChecked bounds the count against a protocol limit and each
// entry length against the bytes actually present before trusting them —
// the shape DecodeBatchResults uses.
func decodeBatchChecked(blob []byte) ([][]byte, error) {
	count := int(binary.LittleEndian.Uint16(blob))
	if count == 0 || count > maxBatch {
		return nil, io.ErrUnexpectedEOF
	}
	out := make([][]byte, 0, count)
	off := 2
	for len(out) < count {
		if off+5 > len(blob) {
			return nil, io.ErrUnexpectedEOF
		}
		n := binary.LittleEndian.Uint32(blob[off+1:])
		off += 5
		if int64(n) > int64(len(blob)-off) {
			return nil, io.ErrUnexpectedEOF
		}
		buf := make([]byte, n)
		copy(buf, blob[off:])
		out = append(out, buf)
		off += int(n)
	}
	return out, nil
}
