package transport

import (
	"encoding/binary"
	"io"
)

type respBad struct {
	Size uint64
}

// readBody sizes the allocation straight off the wire: a corrupt frame
// picks the allocation.
func readBody(r io.Reader, rs *respBad) ([]byte, error) {
	buf := make([]byte, rs.Size) // want "make size .* derives from a wire-decoded length"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// readFrame decodes the length itself and trusts it.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	buf := make([]byte, n) // want "make size .* derives from a wire-decoded length"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// bodyLen launders the wire length through a helper; the call graph
// carries the taint back.
func bodyLen(rs *respBad) int {
	return int(rs.Size)
}

func readChained(r io.Reader, rs *respBad) ([]byte, error) {
	n := bodyLen(rs)
	buf := make([]byte, n) // want "make size .* derives from a wire-decoded length"
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// copyBody streams a peer-chosen number of bytes.
func copyBody(w io.Writer, r io.Reader, rs *respBad) error {
	_, err := io.CopyN(w, r, int64(rs.Size)) // want "io.CopyN size .* derives from a wire-decoded length"
	return err
}

// fillHeader reslices a buffer to a peer-chosen length.
func fillHeader(r io.Reader, buf []byte, rs *respBad) error {
	n := int(rs.Size)
	_, err := io.ReadFull(r, buf[:n]) // want "io.ReadFull size .* derives from a wire-decoded length"
	return err
}
