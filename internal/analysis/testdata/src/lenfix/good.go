package transport

import (
	"encoding/binary"
	"io"
)

const maxBody = 1 << 20

type respGood struct {
	Size uint64
}

// readBodyChecked clamps the wire length before allocating.
func readBodyChecked(r io.Reader, rs *respGood) ([]byte, error) {
	if rs.Size > maxBody {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, rs.Size)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// readFrameChecked bounds the decoded length before trusting it.
func readFrameChecked(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxBody {
		return nil, io.ErrUnexpectedEOF
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// fixedAlloc has no wire-derived size at all.
func fixedAlloc() []byte {
	return make([]byte, 64)
}
