package transport

import "io"

type respSup struct {
	Size uint64
}

// mirrorBody trusts the peer: this path only runs against the in-process
// loopback transport used by the simulator.
func mirrorBody(r io.Reader, rs *respSup) ([]byte, error) {
	//hvaclint:ignore untrustedlen loopback-only path; the in-process peer echoes a size it just produced
	buf := make([]byte, rs.Size)
	_, err := io.ReadFull(r, buf)
	return buf, err
}
