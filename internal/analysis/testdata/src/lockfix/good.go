package lockfix

import "sync"

type gauge struct {
	mu sync.Mutex
	n  int
}

// incr uses the canonical lock/defer-unlock pair.
func (g *gauge) incr() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

// tryGet unlocks on every return path explicitly.
func (g *gauge) tryGet(ok bool) (int, bool) {
	g.mu.Lock()
	if !ok {
		g.mu.Unlock()
		return 0, false
	}
	n := g.n
	g.mu.Unlock()
	return n, true
}

// perItem locks and unlocks inside the loop body: no deferred unlock.
func perItem(gs []*gauge) int {
	total := 0
	for _, g := range gs {
		g.mu.Lock()
		total += g.n
		g.mu.Unlock()
	}
	return total
}

// byPointer passes the lock by reference: fine.
func byPointer(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
}
