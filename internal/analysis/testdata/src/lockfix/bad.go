package lockfix

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

// byValueParam copies the embedded mutex into the callee.
func byValueParam(c counter) int { // want "parameter passes lock by value"
	return c.n
}

// byValueRecv copies the embedded mutex on every call.
func (c counter) byValueRecv() int { // want "receiver passes lock by value"
	return c.n
}

// byValueResult returns a fresh copy of a held lock.
func byValueResult(c *counter) sync.Mutex { // want "result passes lock by value"
	return c.mu
}

// earlyReturn leaks the lock on the conditional path.
func earlyReturn(c *counter, cond bool) int {
	c.mu.Lock()
	if cond {
		return c.n // want "return while lock c.mu is held"
	}
	c.mu.Unlock()
	return 0
}

// fallThrough never releases at all.
func fallThrough(c *counter) {
	c.mu.Lock() // want "lock c.mu is not released on the fall-through exit"
	c.n++
}

// deferInLoop holds every lock until function exit, serialising the
// whole slice after the first iteration.
func deferInLoop(cs []*counter) {
	for _, c := range cs {
		c.mu.Lock()
		defer c.mu.Unlock() // want "deferred unlock of c.mu inside a loop"
		c.n++
	}
}

// readLeak pairs RLock with a return path that skips RUnlock.
func readLeak(mu *sync.RWMutex, m map[string]int) int {
	mu.RLock()
	if v, ok := m["x"]; ok {
		mu.RUnlock()
		return v
	}
	return 0 // want "return while lock mu is held"
}
