package lockfix

import "sync"

type pipeline struct {
	mu sync.Mutex
}

// lockForCaller transfers lock ownership to the caller through the
// returned release function — a pattern the path analysis cannot see,
// recorded with a reasoned suppression.
func (p *pipeline) lockForCaller() func() {
	p.mu.Lock()
	//hvaclint:ignore locksafe ownership transfers to the returned release closure; the caller must invoke it
	return p.mu.Unlock
}
