package pfsfix

import "os"

// openDirect bypasses the cache with no annotation: the core violation.
func openDirect(path string) (*os.File, error) {
	return os.Open(path) // want "os.Open bypasses the HVAC cache"
}

// readDirect shows the whole os read family is covered.
func readDirect(path string) ([]byte, error) {
	return os.ReadFile(path) // want "os.ReadFile bypasses the HVAC cache"
}

// openFallback is a designated fallback site: the trailing annotation
// with a reason silences the analyzer.
func openFallback(path string) (*os.File, error) {
	return os.Open(path) //hvac:pfs-fallback fixture: designated fallback site with a reason
}

// statAnnotatedAbove shows the standalone form of the annotation.
func statAnnotatedAbove(path string) (os.FileInfo, error) {
	//hvac:pfs-fallback fixture: standalone annotation covers the next line
	return os.Stat(path)
}

// statBareMarker shows that a marker without a reason covers nothing:
// the justification is the point of the annotation.
func statBareMarker(path string) (os.FileInfo, error) {
	//hvac:pfs-fallback
	return os.Stat(path) // want "os.Stat bypasses the HVAC cache"
}
