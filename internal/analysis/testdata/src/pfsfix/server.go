package pfsfix

import "os"

// serverSide mirrors the real server: reaching the PFS directly is its
// job, and pfsbypass's file scope (client*.go) leaves this file alone.
func serverSide(path string) (*os.File, error) {
	return os.Open(path)
}
