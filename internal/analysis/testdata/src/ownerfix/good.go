package ownerfix

import (
	"hvac/internal/cachestore"
	"hvac/internal/transport"
)

// deferRelease is the canonical idiom: err-guarded acquisition, defer
// release, every later path covered.
func deferRelease(t transport.Transport) (int64, error) {
	resp, err := t.Call(&transport.Request{Op: transport.OpStat, Path: "f"})
	if err != nil {
		return 0, err
	}
	defer resp.Release()
	if !resp.OK() {
		return 0, resp.Error()
	}
	return resp.Size, nil
}

// bufferRoundTrip releases the buffer on the straight-line path.
func bufferRoundTrip(n int) int {
	buf := transport.GetBuffer(n)
	m := use(buf)
	transport.PutBuffer(buf)
	return m
}

// returnDirect hands the call's response straight to the caller: the
// obligation transfers with the return value.
func returnDirect(t transport.Transport) (*transport.Response, error) {
	return t.Call(&transport.Request{Op: transport.OpPing})
}

// returnBound transfers a bound response to the caller after vetting.
func returnBound(t transport.Transport) (*transport.Response, error) {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// sendTransfer moves the response into a channel; the receiver now
// owns the release.
func sendTransfer(t transport.Transport, out chan<- *transport.Response) error {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return err
	}
	out <- resp
	return nil
}

// finish releases a response defensively. The analyzer infers that
// every non-nil path releases, so callers of finish hand ownership
// over — no annotation needed.
func finish(resp *transport.Response) {
	if resp != nil {
		resp.Release()
	}
}

// helperTransfer releases through finish: interprocedural summary
// inference recognizes the transfer.
func helperTransfer(t transport.Transport) error {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return err
	}
	finish(resp)
	return nil
}

// consume takes ownership of b and recycles it. []byte parameters are
// too generic for inference, so the transfer is declared explicitly.
//
//hvac:owns b
func consume(b []byte) int {
	n := use(b)
	transport.PutBuffer(b)
	return n
}

// annotatedTransfer hands the buffer to the annotated consumer.
func annotatedTransfer(n int) int {
	buf := transport.GetBuffer(n)
	return consume(buf)
}

// goRelease moves the buffer into a goroutine that visibly returns it
// to the pool: ownership transfer, not an escape.
func goRelease(n int) {
	buf := transport.GetBuffer(n)
	go func() {
		use(buf)
		transport.PutBuffer(buf)
	}()
}

// fillCommit drives the fill protocol correctly: Abort on the error
// path, Commit on success.
func fillCommit(s *cachestore.Store, key string, data []byte) error {
	fl, err := s.PutWriter(key, int64(len(data)))
	if err != nil {
		return err
	}
	if _, err := fl.Write(data); err != nil {
		fl.Abort(err)
		return err
	}
	return fl.Commit()
}

// fillRead is the guarded read-reference idiom from the server's warm
// path: the short-circuit guarantees Acquire ran iff the body runs.
func fillRead(fl *cachestore.Fill, p []byte) int {
	if fl != nil && fl.Acquire() {
		n, _ := fl.ReadAt(p, 0)
		fl.Release()
		return n
	}
	return 0
}

// leaseRead is the zero-copy serve idiom: err-guarded lease, released
// on every later path.
func leaseRead(s *cachestore.Store, key string, p []byte) (int, error) {
	lz, err := s.Lease(key)
	if err != nil {
		return 0, err
	}
	defer lz.Release()
	return lz.ReadAt(p, 0)
}

// leaseHandoff returns the lease to the caller: the release obligation
// transfers with the return value.
func leaseHandoff(s *cachestore.Store, key string) (*cachestore.Lease, error) {
	return s.Lease(key)
}
