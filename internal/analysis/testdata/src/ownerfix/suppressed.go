package ownerfix

import "hvac/internal/transport"

// probeFireAndForget deliberately abandons the response: this is a
// latency probe whose payload is zero-length, so the pool loses
// nothing. The pragma silences ownerpass for exactly this line.
func probeFireAndForget(t transport.Transport) {
	//hvaclint:ignore ownerpass zero-payload probe; nothing to recycle
	resp, _ := t.Call(&transport.Request{Op: transport.OpPing})
	_ = resp
}

// wrongRule shows the suppression is per-rule: a pragma naming a
// different analyzer does not silence ownerpass.
func wrongRule(t transport.Transport) {
	//hvaclint:ignore errdrop wrong rule on purpose
	resp, _ := t.Call(&transport.Request{Op: transport.OpPing}) // want "pooled response .* may leak"
	_ = resp
}
