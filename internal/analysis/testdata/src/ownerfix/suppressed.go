package ownerfix

import (
	"hvac/internal/cachestore"

	"hvac/internal/transport"
)

// probeFireAndForget deliberately abandons the response: this is a
// latency probe whose payload is zero-length, so the pool loses
// nothing. The pragma silences ownerpass for exactly this line.
func probeFireAndForget(t transport.Transport) {
	//hvaclint:ignore ownerpass zero-payload probe; nothing to recycle
	resp, _ := t.Call(&transport.Request{Op: transport.OpPing})
	_ = resp
}

// wrongRule shows the suppression is per-rule: a pragma naming a
// different analyzer does not silence ownerpass.
func wrongRule(t transport.Transport) {
	//hvaclint:ignore errdrop wrong rule on purpose
	resp, _ := t.Call(&transport.Request{Op: transport.OpPing}) // want "pooled response .* may leak"
	_ = resp
}

// leaseParked hands the lease to a registry that releases it later; the
// transfer is invisible to the analyzer, so the line is suppressed.
func leaseParked(s *cachestore.Store, reg map[string]*cachestore.Lease, key string) {
	//hvaclint:ignore ownerpass lease parked in a registry torn down elsewhere
	lz, err := s.Lease(key)
	if err == nil {
		reg[key] = lz
	}
}
