// Package ownerfix exercises the ownerpass analyzer: every function in
// this file violates a resource-release protocol on at least one path.
package ownerfix

import (
	"errors"

	"hvac/internal/cachestore"
	"hvac/internal/transport"
)

var errTooBig = errors.New("ownerfix: too big")

func use(b []byte) int { return len(b) }

// leakOnErrorPath releases only on the happy path: the !resp.OK()
// return leaks the pooled response.
func leakOnErrorPath(t transport.Transport) error {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing}) // want "pooled response .* may leak"
	if err != nil {
		return err
	}
	if !resp.OK() {
		return errTooBig
	}
	resp.Release()
	return nil
}

// leakBuffer forgets the buffer on the early return.
func leakBuffer(n int) error {
	buf := transport.GetBuffer(n) // want "pooled buffer from transport.GetBuffer may leak"
	if n > 1<<20 {
		return errTooBig
	}
	use(buf)
	transport.PutBuffer(buf)
	return nil
}

// doubleRelease releases the same response twice; the second call
// would recycle a payload another caller may already hold.
func doubleRelease(t transport.Transport) {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return
	}
	resp.Release()
	resp.Release() // want "double release"
}

// discardResponse drops the response without ever binding it.
func discardResponse(t transport.Transport) {
	_, _ = t.Call(&transport.Request{Op: transport.OpPing}) // want "pooled response .* is discarded"
}

type holder struct {
	resp *transport.Response
}

// escapeField parks the response in a struct field: the release
// obligation silently moves to whoever owns the holder.
func escapeField(h *holder, t transport.Transport) {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return
	}
	h.resp = resp // want "pooled response .* escapes to a long-lived location"
}

var lastResp *transport.Response

// escapeGlobal parks the response in a package-level variable.
func escapeGlobal(t transport.Transport) {
	resp, err := t.Call(&transport.Request{Op: transport.OpPing})
	if err != nil {
		return
	}
	lastResp = resp // want "pooled response .* escapes to a long-lived location"
}

// escapeGoroutine captures the buffer in a goroutine that never
// returns it to the pool.
func escapeGoroutine(n int) {
	buf := transport.GetBuffer(n)
	go func() { // want "pooled buffer .* escapes into a goroutine"
		use(buf)
	}()
}

// fillLeak abandons the in-progress fill on the write-error path:
// neither Commit nor Abort runs, so the entry stays filling forever.
func fillLeak(s *cachestore.Store, key string, data []byte) error {
	fl, err := s.PutWriter(key, int64(len(data))) // want "in-progress fill .* may leak"
	if err != nil {
		return err
	}
	if _, err := fl.Write(data); err != nil {
		return err
	}
	return fl.Commit()
}

// fillRefLeak takes a read reference and returns without dropping it,
// pinning the entry against eviction.
func fillRefLeak(fl *cachestore.Fill, p []byte) int {
	if fl.Acquire() { // want "fill reference .* may leak"
		n, _ := fl.ReadAt(p, 0)
		return n
	}
	return 0
}

// leaseLeakOnError leases the cached file for a zero-copy serve but
// leaks the lease when the read fails: the fd stays pinned in the
// handle pool and an evicted file can never close.
func leaseLeakOnError(s *cachestore.Store, key string, p []byte) (int, error) {
	lz, err := s.Lease(key) // want "fd lease .* may leak"
	if err != nil {
		return 0, err
	}
	n, rerr := lz.ReadAt(p, 0)
	if rerr != nil {
		return 0, rerr
	}
	lz.Release()
	return n, nil
}

// leaseDoubleRelease violates the protocol even though the runtime
// guard happens to tolerate it: releasing twice is a latent bug once a
// second holder recycles the pooled Lease struct in between.
func leaseDoubleRelease(s *cachestore.Store, key string) {
	lz, err := s.Lease(key)
	if err != nil {
		return
	}
	lz.Release()
	lz.Release() // want "double release"
}
