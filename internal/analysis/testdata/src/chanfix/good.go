package chanfix

// goodServer is the PR-5 fix shape: the queues are never closed —
// shutdown closes the stop channel, senders check a closed flag and
// fall through on a full buffer, and Close drains what was queued.
type goodServer struct {
	fetchQ chan task
	stop   chan struct{}
	closed bool
}

func (s *goodServer) Close() {
	s.closed = true
	close(s.stop)
	for {
		select {
		case <-s.fetchQ:
		default:
			return
		}
	}
}

func (s *goodServer) scheduleFetch(t task) {
	if s.closed {
		return
	}
	select {
	case s.fetchQ <- t:
	default: // queue full: drop, never block
	}
}

// stopGuarded closes its queue, but every send sits in a select with a
// stop-channel receive case — the declared shutdown idiom chanlife
// accepts.
type stopGuarded struct {
	q    chan int
	stop chan struct{}
}

func (s *stopGuarded) Close() {
	close(s.stop)
	close(s.q)
}

func (s *stopGuarded) send(v int) {
	select {
	case s.q <- v:
	case <-s.stop:
	}
}

// producer owns its channel and follows the sender-closes protocol:
// every send happens-before the close on the one path through.
func producer(vals []int) chan int {
	ch := make(chan int, len(vals))
	for _, v := range vals {
		ch <- v
	}
	close(ch)
	return ch
}

// reopened is reassigned between the close and the send: a fresh
// channel value, not a double use.
func reopened(mk func() chan int) {
	ch := mk()
	close(ch)
	ch = mk()
	ch <- 1
	close(ch)
}
