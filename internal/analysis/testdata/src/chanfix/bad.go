package chanfix

type task struct{ n int }

// badServer reproduces the PR-5 teardown bug shape byte for byte:
// Close closes the fetch queue while scheduleFetch can still send into
// it from another goroutine — the send panics when it loses the race.
type badServer struct {
	fetchQ chan task
	stop   chan struct{}
}

func (s *badServer) Close() {
	close(s.stop)
	close(s.fetchQ)
}

func (s *badServer) scheduleFetch(t task) {
	s.fetchQ <- t // want "send on fetchQ may race close\(fetchQ\) in badServer.Close"
}

// dualServer sends through a local alias that may name either queue;
// the def-use chains must resolve the alias back to the closed field.
type dualServer struct {
	demandQ   chan task
	prefetchQ chan task
}

func (s *dualServer) Close() {
	close(s.demandQ)
}

func (s *dualServer) schedule(t task, demand bool) {
	q := s.prefetchQ
	if demand {
		q = s.demandQ
	}
	q <- t // want "send on demandQ may race close\(demandQ\) in dualServer.Close"
}

// doubleClose closes the same channel twice on one path.
func doubleClose(mk func() chan int) {
	ch := mk()
	close(ch)
	close(ch) // want "ch may already be closed on this path"
}

// sendAfterClose sends after closing on the same path.
func sendAfterClose(mk func() chan int) {
	ch := mk()
	close(ch)
	ch <- 1 // want "send on ch is reachable after its close"
}

// branchClose closes on one branch only; the send after the merge is
// still reachable after the close.
func branchClose(mk func() chan int, done bool) {
	ch := mk()
	if done {
		close(ch)
	}
	ch <- 2 // want "send on ch is reachable after its close"
}

// drainAndClose closes a channel it does not own.
func drainAndClose(ch chan int) {
	for range ch {
	}
	close(ch) // want "close of channel parameter ch"
}
