package chanfix

// legacyQueue predates the stop-channel teardown; its Close only runs
// after the single producer goroutine has exited, which the analyzer
// cannot see. The pragma documents that external ordering.
type legacyQueue struct {
	q chan int
}

func (s *legacyQueue) Close() {
	close(s.q)
}

func (s *legacyQueue) push(v int) {
	//hvaclint:ignore chanlife Close is sequenced after the producer exits; no send can race it
	s.q <- v
}

// wrongRule shows the suppression is per-rule: naming a different
// analyzer does not silence chanlife.
type wrongRuleQueue struct {
	q chan int
}

func (s *wrongRuleQueue) Close() {
	close(s.q)
}

func (s *wrongRuleQueue) push(v int) {
	//hvaclint:ignore goroleak wrong rule on purpose
	s.q <- v // want "send on q may race close\(q\) in wrongRuleQueue.Close"
}
