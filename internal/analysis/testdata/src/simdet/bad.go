package simdet

import (
	"math/rand"
	"time"
)

// Events stands in for the sim kernel's event queue: anything pushed
// here in nondeterministic order breaks bit-for-bit replay.
type Events struct{ at []time.Duration }

func (e *Events) push(d time.Duration) { e.at = append(e.at, d) }

func wallClock(e *Events) {
	e.push(time.Duration(time.Now().UnixNano())) // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)                 // want "time.Sleep reads the wall clock"
	e.push(time.Since(time.Unix(0, 0)))          // want "time.Since reads the wall clock"
}

func globalRand(n int) int {
	return rand.Intn(n) // want "math/rand.Intn uses the process-global random source"
}

func drainUnordered(e *Events, pending map[string]time.Duration) {
	for _, d := range pending { // want "iteration over map pending is unordered"
		e.push(d)
	}
}
