package simdet

import "time"

// total sums map values: commutative, so iteration order cannot leak,
// but the body is richer than key collection and the analyzer cannot
// prove it. A reasoned suppression records the argument.
func total(samples map[string]time.Duration) time.Duration {
	var sum time.Duration
	//hvaclint:ignore simdeterminism summation is commutative so iteration order cannot reach the event queue
	for _, d := range samples {
		sum += d
	}
	return sum
}
