package simdet

import (
	"math/rand"
	"sort"
	"time"
)

// seeded uses an explicitly seeded generator: deterministic, allowed.
func seeded(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// durations only name time types; no wall-clock call is made.
func durations(d time.Duration) time.Duration {
	return d + time.Millisecond
}

// drainSorted is the canonical rewrite: the key-collection range is
// order-insensitive and the event-feeding loop runs over sorted keys.
func drainSorted(e *Events, pending map[string]time.Duration) {
	keys := make([]string, 0, len(pending))
	n := 0
	for k := range pending {
		keys = append(keys, k)
		n++
	}
	sort.Strings(keys)
	for _, k := range keys {
		e.push(pending[k])
	}
}
