package errfix

import "hash/fnv"

// digest drops the hash writer's error result, which is documented
// never to be non-nil; the suppression records that argument.
func digest(b []byte) uint64 {
	h := fnv.New64a()
	//hvaclint:ignore errdrop hash.Hash.Write is documented never to return an error
	h.Write(b)
	return h.Sum64()
}
