package errfix

import (
	"os"

	"hvac/internal/transport"
)

// cleanup drops the Remove error: a failed cleanup goes unnoticed.
func cleanup(dir string) {
	os.Remove(dir) // want "error result of os.Remove is discarded"
}

// closeFile drops a Close error outside a defer.
func closeFile(f *os.File) {
	f.Close() // want "error result of os.Close is discarded"
}

// ping drops a transport error: the module's own packages are covered.
func ping(addr string) {
	transport.Dial(addr).Ping() // want "error result of transport.Ping is discarded"
}
