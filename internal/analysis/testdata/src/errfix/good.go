package errfix

import (
	"fmt"
	"os"
)

// remove handles the error.
func remove(dir string) error {
	if err := os.Remove(dir); err != nil {
		return fmt.Errorf("cleanup: %w", err)
	}
	return nil
}

// bestEffort documents the discard explicitly.
func bestEffort(f *os.File) {
	_ = f.Close()
}

// deferred close on a read-only file is the accepted idiom and exempt.
func deferred(f *os.File) error {
	defer f.Close()
	var buf [8]byte
	_, err := f.Read(buf[:])
	return err
}
