// Package valueflow is hvaclint's reusable interprocedural value-flow
// engine, built on the cfg package's basic-block graphs and the CHA
// call graph. It owns the machinery the module analyzers used to
// hand-roll per rule:
//
//   - Taint: a module-wide may-flow fixpoint over fields, locals and
//     function results — seeded by the analyzer, propagated through
//     assignments, composite literals, arithmetic, conversions,
//     returns and (optionally) call arguments, until nothing new
//     flows. untrustedlen's wire-length tracking runs on it.
//   - Flow: per-function def-use chains (reaching definitions over
//     the CFG) plus alias-root resolution, so an analyzer can ask
//     "which fields can this local name?" — chanlife resolves channel
//     sends through local aliases with it.
//   - Fixpoint: the generic grow-only summary iteration ownerpass
//     runs its interprocedural ownership contracts on.
//
// Everything is deterministic: iteration follows Graph.Nodes() order
// and block index order, and Fingerprint hashes are stable across
// runs over the same source, which the driver tests pin.
package valueflow

// Fixpoint drives a grow-only summary iteration: round is called until
// it reports no change or maxRounds elapse. It returns the number of
// rounds run. The caller's summaries must only grow for termination to
// mean convergence; the cap is the defensive backstop.
func Fixpoint(maxRounds int, round func() bool) int {
	for r := 1; r <= maxRounds; r++ {
		if !round() {
			return r
		}
	}
	return maxRounds
}

// AddSet appends v to list if absent, preserving order. The module
// analyzers use it for small deterministic value sets where a map
// would scramble reporting order.
func AddSet[T comparable](list []T, v T) []T {
	for _, x := range list {
		if x == v {
			return list
		}
	}
	return append(list, v)
}
