package valueflow

import (
	"go/ast"
	"go/types"

	"hvac/internal/analysis/callgraph"
)

// Taint is a module-wide may-flow analysis: the analyzer seeds it with
// field variables (and optionally a call classifier) and Run iterates
// the whole module to a fixed point. Afterwards Tainted answers
// per-expression queries inside any node.
//
// Flow is tracked through three stores:
//
//   - struct fields, module-global (an assignment anywhere taints the
//     field for every reader),
//   - per-node locals,
//   - function results (a tainted return taints every call site).
//
// Propagation covers assignments, var specs, composite literals,
// binary arithmetic, conversions and returns. With PropagateArgs set,
// a tainted call argument also taints the callee's parameter — the
// direction untrustedlen deliberately leaves off (its sinks care about
// where lengths land, not every helper they pass through).
type Taint struct {
	// Graph is the module call graph; iteration follows Nodes() order.
	Graph *callgraph.Graph
	// Seeds are the a-priori tainted struct fields.
	Seeds map[*types.Var]bool
	// SourceCall, if non-nil, classifies a call expression as an
	// original taint source in node n (e.g. a raw wire decode).
	SourceCall func(n *callgraph.Node, call *ast.CallExpr) bool
	// PropagateArgs, if set, flows taint from call arguments into the
	// matching parameter of statically-resolved in-module callees.
	PropagateArgs bool

	fields  map[*types.Var]bool
	returns map[*callgraph.Node]bool
	locals  map[*callgraph.Node]map[*types.Var]bool
	changed bool
}

// taintRounds caps the module fixpoint. Taint only grows, so the loop
// terminates on its own; the cap guards against a non-monotone
// SourceCall hook.
const taintRounds = 512

// Run iterates propagation over every node until no new field, local
// or return taint appears.
func (t *Taint) Run() {
	t.fields = make(map[*types.Var]bool, len(t.Seeds))
	for v := range t.Seeds {
		t.fields[v] = true
	}
	t.returns = make(map[*callgraph.Node]bool)
	t.locals = make(map[*callgraph.Node]map[*types.Var]bool)
	for _, n := range t.Graph.Nodes() {
		t.locals[n] = make(map[*types.Var]bool)
	}
	Fixpoint(taintRounds, func() bool {
		t.changed = false
		for _, n := range t.Graph.Nodes() {
			if n.Body != nil {
				t.propagate(n)
			}
		}
		return t.changed
	})
}

// TaintedField reports whether the field variable carries taint.
func (t *Taint) TaintedField(v *types.Var) bool { return t.fields[v] }

// ReturnsTainted reports whether the node's result carries taint.
func (t *Taint) ReturnsTainted(n *callgraph.Node) bool { return t.returns[n] }

// propagate runs one round over n's body.
func (t *Taint) propagate(n *callgraph.Node) {
	info := n.Pkg.Info
	local := t.locals[n]
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false // nested literals are their own nodes
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break // multi-value RHS: no claim
				}
				if !t.Tainted(n, x.Rhs[i]) {
					continue
				}
				t.taintTarget(info, local, lhs)
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) && t.Tainted(n, x.Values[i]) {
					if v, ok := info.Defs[name].(*types.Var); ok {
						t.mark(local, v)
					}
				}
			}
		case *ast.CompositeLit:
			t.taintCompositeLit(n, x)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if t.Tainted(n, res) && !t.returns[n] {
					t.returns[n] = true
					t.changed = true
				}
			}
		case *ast.CallExpr:
			if t.PropagateArgs {
				t.taintArgs(n, x)
			}
		}
		return true
	})
}

// taintArgs flows tainted arguments into the parameters of a
// statically-resolved in-module callee.
func (t *Taint) taintArgs(n *callgraph.Node, call *ast.CallExpr) {
	fn := StaticCallee(n.Pkg.Info, call)
	if fn == nil {
		return
	}
	callee := t.Graph.NodeOf(fn)
	if callee == nil || callee.Body == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break // variadic tail: the slice parameter is not a scalar flow
		}
		if t.Tainted(n, arg) {
			t.mark(t.locals[callee], sig.Params().At(i))
		}
	}
}

// taintTarget marks an assignment target: a local variable or a struct
// field (which taints the field module-wide).
func (t *Taint) taintTarget(info *types.Info, local map[*types.Var]bool, lhs ast.Expr) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.Defs[e].(*types.Var); ok {
			t.mark(local, v)
		} else if v, ok := info.Uses[e].(*types.Var); ok {
			t.mark(local, v)
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			t.markField(v)
		}
	}
}

// taintCompositeLit taints struct fields initialized from tainted
// values, e.g. &File{size: int64(resp.Size)}.
func (t *Taint) taintCompositeLit(n *callgraph.Node, lit *ast.CompositeLit) {
	info := n.Pkg.Info
	typ := info.TypeOf(lit)
	if typ == nil {
		return
	}
	if ptr, ok := typ.Underlying().(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	strct, ok := typ.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !t.Tainted(n, kv.Value) {
				continue
			}
			if v, ok := info.Uses[key].(*types.Var); ok {
				t.markField(v)
			}
		} else if i < strct.NumFields() && t.Tainted(n, elt) {
			t.markField(strct.Field(i))
		}
	}
}

func (t *Taint) mark(local map[*types.Var]bool, v *types.Var) {
	if v.IsField() {
		t.markField(v)
		return
	}
	if !local[v] {
		local[v] = true
		t.changed = true
	}
}

func (t *Taint) markField(v *types.Var) {
	if !t.fields[v] {
		t.fields[v] = true
		t.changed = true
	}
}

// Tainted reports whether the expression carries taint in node n.
func (t *Taint) Tainted(n *callgraph.Node, expr ast.Expr) bool {
	info := n.Pkg.Info
	local := t.locals[n]
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return local[v] || (v.IsField() && t.fields[v])
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return t.fields[v]
		}
	case *ast.BinaryExpr:
		return t.Tainted(n, e.X) || t.Tainted(n, e.Y)
	case *ast.CallExpr:
		// Conversion: int64(x) carries x's taint.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return t.Tainted(n, e.Args[0])
		}
		if t.SourceCall != nil && t.SourceCall(n, e) {
			return true
		}
		if fn := StaticCallee(info, e); fn != nil {
			if callee := t.Graph.NodeOf(fn); callee != nil {
				return t.returns[callee]
			}
		}
	}
	return false
}

// StaticCallee resolves a call expression to its statically-known
// function or method object, or nil for dynamic and literal calls.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
