package valueflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
)

// loadSrc type-checks one source string into a callgraph over it.
func loadSrc(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Build(fset, []*callgraph.Package{{
		Path: "p", Files: []*ast.File{f}, Info: info, Types: pkg,
	}})
}

func nodeNamed(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Func != nil && n.Func.Name() == name {
			return n
		}
	}
	t.Fatalf("no function %q in graph", name)
	return nil
}

const aliasSrc = `package p

type server struct {
	demandQ   chan int
	prefetchQ chan int
}

func (s *server) schedule(demand bool, v int) {
	q := s.prefetchQ
	if demand {
		q = s.demandQ
	}
	q <- v
}
`

// TestOriginsThroughBranches pins the alias resolution chanlife relies
// on: a local assigned from different channel fields per branch
// resolves to both fields at the send.
func TestOriginsThroughBranches(t *testing.T) {
	g := loadSrc(t, aliasSrc)
	n := nodeNamed(t, g, "schedule")
	fl := Flow(g.Fset(), n, cfg.New(n.Body))

	var send *ast.SendStmt
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if s, ok := x.(*ast.SendStmt); ok {
			send = s
		}
		return true
	})
	if send == nil {
		t.Fatal("no send statement found")
	}
	roots := fl.Origins(send.Chan)
	names := map[string]bool{}
	for _, v := range roots {
		names[v.Name()] = true
	}
	if !names["demandQ"] || !names["prefetchQ"] || len(names) != 2 {
		t.Fatalf("Origins(q) = %v; want exactly {demandQ, prefetchQ}", names)
	}
}

// TestDefUseChains checks that a redefinition kills the earlier
// definition and that uses see exactly the reaching ones.
func TestDefUseChains(t *testing.T) {
	g := loadSrc(t, `package p
func f(a int) int {
	x := a
	x = x + 1
	return x
}
`)
	n := nodeNamed(t, g, "f")
	fl := Flow(g.Fset(), n, cfg.New(n.Body))
	fset := g.Fset()

	// The use of x in `return x` must reach only the second definition.
	var retUse *Use
	for _, u := range fl.Uses {
		if u.Var.Name() == "x" && fset.Position(u.Pos).Line == 5 {
			retUse = u
		}
	}
	if retUse == nil {
		t.Fatal("no use of x on the return line")
	}
	if len(retUse.Defs) != 1 || fset.Position(retUse.Defs[0].Pos).Line != 4 {
		t.Fatalf("return-use of x reaches %d defs (want the line-4 one)", len(retUse.Defs))
	}
	// The parameter read feeding x's first definition reaches the entry def.
	found := false
	for _, u := range fl.Uses {
		if u.Var.Name() == "a" && len(u.Defs) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("use of parameter a does not reach its entry definition")
	}
}

// TestFlowFingerprintDeterminism builds the same function's flow twice
// and expects identical hashes.
func TestFlowFingerprintDeterminism(t *testing.T) {
	g := loadSrc(t, aliasSrc)
	n := nodeNamed(t, g, "schedule")
	a := Flow(g.Fset(), n, cfg.New(n.Body)).Fingerprint()
	b := Flow(g.Fset(), n, cfg.New(n.Body)).Fingerprint()
	if a != b {
		t.Fatalf("fingerprints differ: %s != %s", a, b)
	}
}

const taintSrc = `package p

type frame struct{ Len int }
type sized struct{ n int }

func depth(f *frame) int { return f.Len + 1 }

func build(f *frame) *sized {
	d := depth(f)
	return &sized{n: d}
}
`

// TestTaintPropagation seeds the frame.Len field and expects taint to
// reach depth's return, build's local, and the sized.n field.
func TestTaintPropagation(t *testing.T) {
	g := loadSrc(t, taintSrc)
	var lenField, nField *types.Var
	for _, n := range g.Nodes() {
		scope := n.Pkg.Types.Scope()
		for _, name := range []string{"frame", "sized"} {
			tn := scope.Lookup(name).(*types.TypeName)
			st := tn.Type().Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				switch st.Field(i).Name() {
				case "Len":
					lenField = st.Field(i)
				case "n":
					nField = st.Field(i)
				}
			}
		}
		break
	}
	ta := &Taint{Graph: g, Seeds: map[*types.Var]bool{lenField: true}}
	ta.Run()
	if !ta.ReturnsTainted(nodeNamed(t, g, "depth")) {
		t.Error("depth's return should be tainted (returns f.Len + 1)")
	}
	if !ta.TaintedField(nField) {
		t.Error("sized.n should be tainted (composite literal from tainted local)")
	}
	if a, b := ta.Fingerprint(), ta.Fingerprint(); a != b {
		t.Errorf("taint fingerprint not deterministic: %s != %s", a, b)
	}
}
