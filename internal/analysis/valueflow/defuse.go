package valueflow

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
)

// A Def is one definition site of a function-local variable: a
// parameter or named result (defined at entry), a declaration, an
// assignment, or an increment.
type Def struct {
	// Var is the defined variable.
	Var *types.Var
	// Pos locates the defining node (the parameter name for entry
	// defs).
	Pos token.Pos
	// RHS is the defining expression for plain assignments and
	// declarations, nil for parameters, increments, range bindings and
	// op= updates — sites where the new value is not a simple copy.
	RHS ast.Expr
}

// A Use is one read of a function-local variable, with the definitions
// that reach it along some CFG path.
type Use struct {
	// Var is the variable read.
	Var *types.Var
	// Pos locates the reading identifier.
	Pos token.Pos
	// Defs are the reaching definitions in deterministic (position)
	// order. Empty for free variables captured from an enclosing
	// function.
	Defs []*Def
}

// FnFlow is the def-use view of one function: every definition and use
// of its local variables, chained by reaching definitions over the
// CFG.
type FnFlow struct {
	// Node is the function analyzed.
	Node *callgraph.Node
	// Graph is its control-flow graph.
	Graph *cfg.Graph
	// Defs lists every definition site in source order.
	Defs []*Def
	// Uses lists every use site in source order.
	Uses []*Use

	fset  *token.FileSet
	byVar map[*types.Var][]*Def
}

// Flow computes the def-use chains of node n over its CFG g via a
// reaching-definitions fixpoint: a definition kills the variable's
// previous definitions in its block, facts merge by union, and every
// identifier read records the definitions live at that point.
func Flow(fset *token.FileSet, n *callgraph.Node, g *cfg.Graph) *FnFlow {
	fl := &FnFlow{Node: n, Graph: g, fset: fset, byVar: map[*types.Var][]*Def{}}
	info := n.Pkg.Info

	// Entry definitions: parameters, receivers and named results.
	entry := map[*types.Var][]*Def{}
	addEntryDef := func(name *ast.Ident) {
		if v, ok := info.Defs[name].(*types.Var); ok && name.Name != "_" {
			d := &Def{Var: v, Pos: name.Pos()}
			fl.record(d)
			entry[v] = []*Def{d}
		}
	}
	switch {
	case n.Func != nil:
		if fd := fl.funcDecl(); fd != nil {
			if fd.Recv != nil {
				for _, f := range fd.Recv.List {
					for _, name := range f.Names {
						addEntryDef(name)
					}
				}
			}
			forFieldNames(fd.Type, addEntryDef)
		}
	case n.Lit != nil:
		forFieldNames(n.Lit.Type, addEntryDef)
	}

	// Pre-scan every block node for its definitions so the transfer
	// function is a cheap replay.
	defsAt := map[ast.Node][]*Def{}
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			fl.scanDefs(info, node, defsAt)
		}
	}

	type fact = map[*types.Var]map[*Def]bool
	transfer := func(b *cfg.Block, in fact) fact {
		for _, node := range b.Nodes {
			for _, d := range defsAt[node] {
				in[d.Var] = map[*Def]bool{d: true}
			}
		}
		return in
	}
	fw := &cfg.Forward[fact]{
		Graph:    g,
		Entry:    entryFact(entry),
		Transfer: transfer,
		Join: func(a, b fact) fact {
			for v, defs := range b {
				if a[v] == nil {
					a[v] = map[*Def]bool{}
				}
				for d := range defs {
					a[v][d] = true
				}
			}
			return a
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for v, da := range a {
				db, ok := b[v]
				if !ok || len(da) != len(db) {
					return false
				}
				for d := range da {
					if !db[d] {
						return false
					}
				}
			}
			return true
		},
		Clone: func(f fact) fact {
			out := make(fact, len(f))
			for v, defs := range f {
				m := make(map[*Def]bool, len(defs))
				for d := range defs {
					m[d] = true
				}
				out[v] = m
			}
			return out
		},
	}
	ins := fw.Fixpoint()

	// Replay each block from its in-fact, recording uses as they are
	// read and applying definitions as they happen.
	for _, blk := range g.Blocks {
		if blk.Index >= len(ins) || ins[blk.Index] == nil {
			continue
		}
		cur := fw.Clone(ins[blk.Index])
		for _, node := range blk.Nodes {
			fl.scanUses(info, node, cur)
			for _, d := range defsAt[node] {
				cur[d.Var] = map[*Def]bool{d: true}
			}
		}
	}
	sort.Slice(fl.Uses, func(i, j int) bool { return fl.Uses[i].Pos < fl.Uses[j].Pos })
	sort.Slice(fl.Defs, func(i, j int) bool { return fl.Defs[i].Pos < fl.Defs[j].Pos })
	return fl
}

func entryFact(entry map[*types.Var][]*Def) map[*types.Var]map[*Def]bool {
	f := make(map[*types.Var]map[*Def]bool, len(entry))
	for v, defs := range entry {
		m := map[*Def]bool{}
		for _, d := range defs {
			m[d] = true
		}
		f[v] = m
	}
	return f
}

// funcDecl finds the declaration node of a declared function, walking
// the file it was declared in.
func (fl *FnFlow) funcDecl() *ast.FuncDecl {
	for _, f := range fl.Node.Pkg.Files {
		if f.Pos() <= fl.Node.Pos && fl.Node.Pos < f.End() {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fl.Node.Pkg.Info.Defs[fd.Name] == fl.Node.Func {
					return fd
				}
			}
		}
	}
	return nil
}

func forFieldNames(ft *ast.FuncType, visit func(*ast.Ident)) {
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				visit(name)
			}
		}
	}
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, name := range f.Names {
				visit(name)
			}
		}
	}
}

func (fl *FnFlow) record(d *Def) {
	fl.Defs = append(fl.Defs, d)
	fl.byVar[d.Var] = append(fl.byVar[d.Var], d)
}

// scanDefs collects the definitions a block node performs, in
// execution order. Compound statements never appear in block node
// lists (the CFG decomposes them), so a shallow walk that skips
// function literals sees exactly the block's own effects.
func (fl *FnFlow) scanDefs(info *types.Info, node ast.Node, defsAt map[ast.Node][]*Def) {
	if _, done := defsAt[node]; done {
		return
	}
	var defs []*Def
	add := func(id *ast.Ident, rhs ast.Expr) {
		if id.Name == "_" {
			return
		}
		v, ok := info.Defs[id].(*types.Var)
		if !ok {
			v, ok = info.Uses[id].(*types.Var)
		}
		if !ok || v.IsField() {
			return
		}
		d := &Def{Var: v, Pos: id.Pos(), RHS: rhs}
		fl.record(d)
		defs = append(defs, d)
	}
	ast.Inspect(node, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			copies := x.Tok == token.ASSIGN || x.Tok == token.DEFINE
			for i, lhs := range x.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var rhs ast.Expr
				if copies && len(x.Lhs) == len(x.Rhs) {
					rhs = x.Rhs[i]
				}
				add(id, rhs)
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				var rhs ast.Expr
				if i < len(x.Values) && len(x.Values) == len(x.Names) {
					rhs = x.Values[i]
				}
				add(name, rhs)
			}
		case *ast.IncDecStmt:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				add(id, nil)
			}
		case *ast.RangeStmt:
			// Range heads carry the ranged expression in the block; the
			// key/value bindings are definitions on every iteration edge.
			if id, ok := x.Key.(*ast.Ident); ok {
				add(id, nil)
			}
			if id, ok := x.Value.(*ast.Ident); ok {
				add(id, nil)
			}
		}
		return true
	})
	defsAt[node] = defs
}

// scanUses records every identifier read in the node against the
// current reaching-definition fact.
func (fl *FnFlow) scanUses(info *types.Info, node ast.Node, cur map[*types.Var]map[*Def]bool) {
	ast.Inspect(node, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if ok {
			// Only the base expression reads a local; the selector name
			// resolves a member.
			ast.Inspect(sel.X, func(y ast.Node) bool { fl.useIdent(info, y, cur); return true })
			return false
		}
		fl.useIdent(info, x, cur)
		return true
	})
}

func (fl *FnFlow) useIdent(info *types.Info, x ast.Node, cur map[*types.Var]map[*Def]bool) {
	id, ok := x.(*ast.Ident)
	if !ok {
		return
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() {
		return
	}
	u := &Use{Var: v, Pos: id.Pos()}
	for d := range cur[v] {
		u.Defs = append(u.Defs, d)
	}
	sort.Slice(u.Defs, func(i, j int) bool { return u.Defs[i].Pos < u.Defs[j].Pos })
	fl.Uses = append(fl.Uses, u)
}

// DefsOf returns every definition site of v, in source order.
func (fl *FnFlow) DefsOf(v *types.Var) []*Def {
	defs := append([]*Def(nil), fl.byVar[v]...)
	sort.Slice(defs, func(i, j int) bool { return defs[i].Pos < defs[j].Pos })
	return defs
}

// Origins resolves an expression to the set of root variables it may
// alias: struct fields, parameters, and locals whose definitions the
// chains cannot see through. A local assigned from a field in one
// branch and another field in the other resolves to both fields —
// flow-insensitive, which is the sound direction for lifecycle
// checks.
func (fl *FnFlow) Origins(e ast.Expr) []*types.Var {
	return fl.origins(e, map[*types.Var]bool{})
}

func (fl *FnFlow) origins(e ast.Expr, seen map[*types.Var]bool) []*types.Var {
	info := fl.Node.Pkg.Info
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return []*types.Var{v}
		}
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok {
			if v, ok = info.Defs[e].(*types.Var); !ok {
				return nil
			}
		}
		if v.IsField() {
			return []*types.Var{v}
		}
		if seen[v] {
			return nil
		}
		seen[v] = true
		defs := fl.byVar[v]
		if len(defs) == 0 {
			return []*types.Var{v} // parameter, free variable, or opaque binding
		}
		var roots []*types.Var
		for _, d := range defs {
			if d.RHS == nil {
				roots = AddSet(roots, v)
				continue
			}
			sub := fl.origins(d.RHS, seen)
			if len(sub) == 0 {
				roots = AddSet(roots, v)
			}
			for _, r := range sub {
				roots = AddSet(roots, r)
			}
		}
		return roots
	}
	return nil
}

// Fingerprint hashes the def-use chains — every definition, every use,
// and each use's reaching definitions by position — so driver tests
// can pin that two builds of the same function flow identically.
func (fl *FnFlow) Fingerprint() string {
	var b strings.Builder
	for _, d := range fl.Defs {
		fmt.Fprintf(&b, "def %s %s\n", d.Var.Name(), posString(fl.fset, d.Pos))
	}
	for _, u := range fl.Uses {
		fmt.Fprintf(&b, "use %s %s <-", u.Var.Name(), posString(fl.fset, u.Pos))
		for _, d := range u.Defs {
			fmt.Fprintf(&b, " %s", posString(fl.fset, d.Pos))
		}
		b.WriteByte('\n')
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ModuleFingerprint builds the def-use flow of every function in the
// graph and hashes the per-function fingerprints in node order: one
// stable hash for the whole module's value flow.
func ModuleFingerprint(g *callgraph.Graph) string {
	var b strings.Builder
	for _, n := range g.Nodes() {
		if n.Body == nil {
			continue
		}
		fl := Flow(g.Fset(), n, cfg.New(n.Body))
		fmt.Fprintf(&b, "%s %s\n", n.Name, fl.Fingerprint())
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Fingerprint hashes the taint fixpoint's result — tainted fields,
// tainted returns, and per-node tainted locals, all by position — for
// determinism tests.
func (t *Taint) Fingerprint() string {
	fset := t.Graph.Fset()
	var lines []string
	for v := range t.fields {
		lines = append(lines, "field "+v.Name()+" "+posString(fset, v.Pos()))
	}
	for n, ok := range t.returns {
		if ok {
			lines = append(lines, "return "+n.Name)
		}
	}
	for n, m := range t.locals {
		for v := range m {
			lines = append(lines, "local "+n.Name+" "+v.Name()+" "+posString(fset, v.Pos()))
		}
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:])
}

func posString(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%s:%d:%d", p.Filename, p.Line, p.Column)
}
