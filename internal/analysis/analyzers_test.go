package analysis

import "testing"

// The fixture packages are loaded under the import paths of the real
// packages they stand in for, so each analyzer's scoping rules apply
// exactly as they do in production.

func TestSimDeterminismFixtures(t *testing.T) {
	fixtureTest(t, SimDeterminism, "simdet", "hvac/internal/sim")
}

func TestPFSBypassFixtures(t *testing.T) {
	fixtureTest(t, PFSBypass, "pfsfix", "hvac/internal/core")
}

func TestLockSafeFixtures(t *testing.T) {
	fixtureTest(t, LockSafe, "lockfix", "hvac/internal/lockfix")
}

func TestErrDropFixtures(t *testing.T) {
	fixtureTest(t, ErrDrop, "errfix", "hvac/internal/errfix")
}

func TestLockOrderFixtures(t *testing.T) {
	fixtureTest(t, LockOrder, "lockorderfix", "hvac/internal/lockorderfix")
}

func TestGoroLeakFixtures(t *testing.T) {
	fixtureTest(t, GoroLeak, "gorofix", "hvac/internal/gorofix")
}

func TestAtomicMixFixtures(t *testing.T) {
	fixtureTest(t, AtomicMix, "atomfix", "hvac/internal/atomfix")
}

func TestOwnerPassFixtures(t *testing.T) {
	fixtureTest(t, OwnerPass, "ownerfix", "hvac/internal/ownerfix")
}

func TestChanLifeFixtures(t *testing.T) {
	fixtureTest(t, ChanLife, "chanfix", "hvac/internal/chanfix")
}

// The blockfix fixture stands in for internal/transport: blockguard
// scopes its checks to the transport package plus the core
// server/client files.
func TestBlockGuardFixtures(t *testing.T) {
	fixtureTest(t, BlockGuard, "blockfix", "hvac/internal/transport")
}

func TestStatPairFixtures(t *testing.T) {
	fixtureTest(t, StatPair, "statfix", "hvac/internal/statfix")
}

// The lenfix fixture stands in for internal/transport itself: the
// untrustedlen analyzer seeds its taint from length fields declared in a
// package with that import path.
func TestUntrustedLenFixtures(t *testing.T) {
	fixtureTest(t, UntrustedLen, "lenfix", "hvac/internal/transport")
}
