package analysis

import "testing"

// The fixture packages are loaded under the import paths of the real
// packages they stand in for, so each analyzer's scoping rules apply
// exactly as they do in production.

func TestSimDeterminismFixtures(t *testing.T) {
	fixtureTest(t, SimDeterminism, "simdet", "hvac/internal/sim")
}

func TestPFSBypassFixtures(t *testing.T) {
	fixtureTest(t, PFSBypass, "pfsfix", "hvac/internal/core")
}

func TestLockSafeFixtures(t *testing.T) {
	fixtureTest(t, LockSafe, "lockfix", "hvac/internal/lockfix")
}

func TestErrDropFixtures(t *testing.T) {
	fixtureTest(t, ErrDrop, "errfix", "hvac/internal/errfix")
}
