package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafe checks mutex discipline across the whole module: locks copied
// by value through signatures, Lock calls that can reach a return (or
// fall off the function) without a matching Unlock, and defer'd unlocks
// inside loops (which run at function exit, not loop exit, serialising
// every later iteration).
//
// The path analysis is deliberately approximate in the low-false-positive
// direction: branch bodies are analysed with a copy of the lock state and
// their effects are not merged back, so conditional lock/unlock pairs
// split across branches are accepted.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "mutex copied by value; Lock without Unlock on an exit path; deferred unlock inside a loop",
	Run:  runLockSafe,
}

func runLockSafe(p *Pass) {
	for _, f := range p.Files {
		// The statement walk below never descends into FuncLit
		// expressions, so visiting every FuncDecl and FuncLit here
		// analyses each function body exactly once.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkSignatureCopies(p, n.Recv, n.Type)
				if n.Body != nil {
					checkLockPaths(p, n.Body)
				}
			case *ast.FuncLit:
				checkSignatureCopies(p, nil, n.Type)
				checkLockPaths(p, n.Body)
			}
			return true
		})
	}
}

// --- lock copied by value -------------------------------------------------

// checkSignatureCopies flags receivers, parameters and results that pass
// a sync lock (or a struct containing one) by value.
func checkSignatureCopies(p *Pass, recv *ast.FieldList, ft *ast.FuncType) {
	for _, fl := range []*ast.FieldList{recv, ft.Params, ft.Results} {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if path := lockPath(t, nil); path != nil {
				p.Reportf(field.Pos(), "%s passes lock by value: %s contains %s",
					fieldKind(fl, recv, ft), t.String(), path.String())
			}
		}
	}
}

func fieldKind(fl, recv *ast.FieldList, ft *ast.FuncType) string {
	switch fl {
	case recv:
		return "receiver"
	case ft.Results:
		return "result"
	default:
		return "parameter"
	}
}

// lockPath returns the type of the first lock found inside t by value
// (t itself, or a struct field chain), or nil. seen guards recursion.
func lockPath(t types.Type, seen []types.Type) types.Type {
	for _, s := range seen {
		if types.Identical(s, t) {
			return nil
		}
	}
	seen = append(seen, t)
	if isSyncLock(t) {
		return t
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if found := lockPath(st.Field(i).Type(), seen); found != nil {
			return found
		}
	}
	return nil
}

// isSyncLock reports whether t is one of the sync types that must not be
// copied after first use.
func isSyncLock(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	switch obj.Name() {
	case "Mutex", "RWMutex", "WaitGroup", "Cond", "Once", "Pool", "Map":
		return true
	}
	return false
}

// --- Lock/Unlock pairing --------------------------------------------------

// lockOp classifies a statement as a lock or unlock on a receiver. The
// key is the receiver's printed form ("s.mu"), with "/R" appended for
// the read side of an RWMutex so RLock must pair with RUnlock.
type lockOp struct {
	key  string
	lock bool
	pos  token.Pos
}

// classifyLockCall recognises <expr>.Lock/RLock/Unlock/RUnlock() where
// the method belongs to package sync.
func classifyLockCall(p *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	op := lockOp{key: types.ExprString(sel.X), pos: call.Pos()}
	switch fn.Name() {
	case "Lock":
		op.lock = true
	case "RLock":
		op.lock = true
		op.key += "/R"
	case "Unlock":
	case "RUnlock":
		op.key += "/R"
	default:
		return lockOp{}, false
	}
	return op, true
}

// lockState tracks which keys are held and which have a deferred unlock
// at one point of one path.
type lockState struct {
	held     map[string]token.Pos
	deferred map[string]bool
}

func newLockState() *lockState {
	return &lockState{held: map[string]token.Pos{}, deferred: map[string]bool{}}
}

// displayKey strips the internal read-lock suffix for messages.
func displayKey(key string) string {
	return strings.TrimSuffix(key, "/R")
}

func (st *lockState) clone() *lockState {
	c := newLockState()
	for k, v := range st.held {
		c.held[k] = v
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// checkLockPaths runs the approximate path simulation over one function
// body.
func checkLockPaths(p *Pass, body *ast.BlockStmt) {
	st := newLockState()
	walkLockStmts(p, body.List, st, false)
	// Falling off the end of the function with a lock held and no
	// deferred unlock: the lock leaks unless every exit was a return
	// (returns report themselves during the walk).
	if !terminates(body.List) {
		for key, pos := range st.held {
			if !st.deferred[key] {
				p.Reportf(pos, "lock %s is not released on the fall-through exit of this function", displayKey(key))
			}
		}
	}
}

// walkLockStmts simulates stmts in order, updating st and reporting
// returns that would leak a held lock. Branch bodies get cloned state;
// their effects are not merged back (see LockSafe doc comment).
func walkLockStmts(p *Pass, stmts []ast.Stmt, st *lockState, inLoop bool) {
	for _, s := range stmts {
		walkLockStmt(p, s, st, inLoop)
	}
}

func walkLockStmt(p *Pass, s ast.Stmt, st *lockState, inLoop bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if op, ok := classifyLockCall(p, call); ok {
				if op.lock {
					st.held[op.key] = op.pos
				} else {
					delete(st.held, op.key)
				}
			}
		}
	case *ast.DeferStmt:
		if op, ok := classifyLockCall(p, s.Call); ok && !op.lock {
			if inLoop {
				p.Reportf(s.Pos(), "deferred unlock of %s inside a loop runs at function exit, not loop exit; unlock explicitly or hoist the loop body into a function", displayKey(op.key))
			}
			st.deferred[op.key] = true
		}
	case *ast.ReturnStmt:
		for key, pos := range st.held {
			if !st.deferred[key] {
				p.Reportf(s.Pos(), "return while lock %s is held (acquired at %s) with no unlock on this path", displayKey(key), p.Fset.Position(pos))
			}
		}
	case *ast.BlockStmt:
		walkLockStmts(p, s.List, st, inLoop)
	case *ast.LabeledStmt:
		walkLockStmt(p, s.Stmt, st, inLoop)
	case *ast.IfStmt:
		walkLockStmts(p, s.Body.List, st.clone(), inLoop)
		if s.Else != nil {
			walkLockStmt(p, s.Else, st.clone(), inLoop)
		}
	case *ast.ForStmt:
		walkLockStmts(p, s.Body.List, st.clone(), true)
	case *ast.RangeStmt:
		walkLockStmts(p, s.Body.List, st.clone(), true)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(p, cc.Body, st.clone(), inLoop)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				walkLockStmts(p, cc.Body, st.clone(), inLoop)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				walkLockStmts(p, cc.Body, st.clone(), inLoop)
			}
		}
	}
}

// terminates reports whether the statement list cannot fall through:
// its last statement is a return or an unconditional control transfer.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return terminates(last.List)
	case *ast.IfStmt:
		if last.Else == nil {
			return false
		}
		elseTerm := false
		switch e := last.Else.(type) {
		case *ast.BlockStmt:
			elseTerm = terminates(e.List)
		case *ast.IfStmt:
			elseTerm = terminates([]ast.Stmt{e})
		}
		return terminates(last.Body.List) && elseTerm
	}
	return false
}
