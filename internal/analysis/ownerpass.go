package analysis

// ownerpass: a must-release ownership analysis over the cfg package's
// control-flow graphs.
//
// Every pooled or refcounted resource in HVAC follows an
// acquire/release protocol the compiler cannot check:
//
//   - transport.GetBuffer        → transport.PutBuffer
//   - calls returning *Response  → (*Response).Release
//   - (*Store).PutWriter         → (*Fill).Commit or (*Fill).Abort
//   - (*Fill).Acquire            → (*Fill).Release
//   - (*handlePool).acquire      → (*handlePool).release
//   - (*Store).Lease             → (*Lease).Release
//
// The analyzer tracks a token per acquisition site through a forward
// dataflow over the function's CFG: assignments alias it, returns and
// channel sends transfer it, release calls retire it. Branch edges
// are refined against the dominant HVAC idiom (`resp, err := Call();
// if err != nil { ... }`): on the error edge the token was never
// handed out, on the nil-error edge it is live. A path that reaches a
// return with a live token is a leak; a release of an
// already-released token is a double release; a pooled buffer or
// response stored into a field, global or goroutine that never
// releases it is an escape.
//
// Interprocedural transfer uses per-function summaries propagated
// over the CHA call graph: a callee that releases (or returns) a
// resource parameter on every path takes ownership at the call site.
// Where inference cannot see the transfer, the callee can be
// annotated explicitly:
//
//	//hvac:owns <param-name> [<param-name>...]
//
// The analysis stays approximate in the low-false-positive direction:
// wrapping a token in a composite literal or passing it to an
// unresolved callee makes the analyzer drop its claim on the token
// rather than report.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
	"hvac/internal/analysis/valueflow"
)

// OwnerPass reports resource-protocol violations: leaked, double-
// released, discarded, and escaping pooled buffers, responses, fills
// and file handles.
var OwnerPass = &Analyzer{
	Name:      "ownerpass",
	Doc:       "pooled buffers, responses, fills, handles and fd leases must be released on every path",
	RunModule: runOwnerPass,
}

// resKind classifies a tracked resource by its release protocol.
type resKind uint8

const (
	resBuffer   resKind = iota // transport.GetBuffer → PutBuffer
	resResponse                // *transport.Response → Release
	resFill                    // (*Store).PutWriter → Commit or Abort
	resFillRef                 // (*Fill).Acquire → Release
	resHandle                  // (*handlePool).acquire → release
	resFillAny                 // a *Fill parameter: any of Commit/Abort/Release retires it
	resLease                   // (*Store).Lease → (*Lease).Release
)

func (k resKind) noun() string {
	switch k {
	case resBuffer:
		return "pooled buffer"
	case resResponse:
		return "pooled response"
	case resFill:
		return "in-progress fill"
	case resFillRef:
		return "fill reference"
	case resHandle:
		return "pooled file handle"
	case resLease:
		return "fd lease"
	}
	return "fill"
}

func (k resKind) releaseVerb() string {
	switch k {
	case resBuffer:
		return "transport.PutBuffer"
	case resResponse:
		return "Release"
	case resFill:
		return "Commit or Abort"
	case resFillRef:
		return "Release"
	case resHandle:
		return "handlePool.release"
	case resLease:
		return "Release"
	}
	return "a release"
}

// longLived reports whether parking the resource in a long-lived
// location (field, global, goroutine) without a visible release is
// a reportable escape. Fill lifecycles legitimately continue in other
// structures (fillEntry.publish), so only the pooled kinds report.
func (k resKind) longLivedEscapes() bool {
	return k == resBuffer || k == resResponse
}

const (
	transportPath  = "hvac/internal/transport"
	cachestorePath = "hvac/internal/cachestore"
)

// tokState is the per-path lifecycle state of one token, a bitmask so
// joins accumulate possibilities.
type tokState uint8

const (
	stUnborn   tokState = 1 << iota // not acquired on this path
	stLive                          // acquired; release still owed
	stReleased                      // released or ownership transferred
)

// resToken is one acquisition site's obligation.
type resToken struct {
	id   int
	kind resKind
	pos  token.Pos
	what string // human name of the acquiring call
}

// guardInfo records how a token's liveness can be refined at branches.
type guardInfo struct {
	// err: token live iff this error variable is nil.
	err *types.Var
	// ok: token live iff this boolean variable is true.
	ok *types.Var
	// call: token live iff this condition-position call returned true.
	call *ast.CallExpr
}

// opFact is the dataflow fact: token states, variable bindings and
// branch guards.
type opFact struct {
	st    map[*resToken]tokState
	bind  map[*types.Var][]*resToken
	guard map[*resToken]guardInfo
}

func newFact() *opFact {
	return &opFact{
		st:    map[*resToken]tokState{},
		bind:  map[*types.Var][]*resToken{},
		guard: map[*resToken]guardInfo{},
	}
}

func cloneFact(f *opFact) *opFact {
	out := &opFact{
		st:    make(map[*resToken]tokState, len(f.st)),
		bind:  make(map[*types.Var][]*resToken, len(f.bind)),
		guard: make(map[*resToken]guardInfo, len(f.guard)),
	}
	for k, v := range f.st {
		out.st[k] = v
	}
	for k, v := range f.bind {
		out.bind[k] = append([]*resToken(nil), v...)
	}
	for k, v := range f.guard {
		out.guard[k] = v
	}
	return out
}

// joinFact merges b into a (the control-flow merge): states union
// their bitmasks (absent = unborn), bindings union, and guards that
// disagree are dropped.
func joinFact(a, b *opFact) *opFact {
	for t, vb := range b.st {
		a.st[t] = a.st[t] | vb | unbornIfAbsent(a.st, t)
	}
	for t, va := range a.st {
		if _, ok := b.st[t]; !ok {
			a.st[t] = va | stUnborn
		}
	}
	for v, list := range b.bind {
		a.bind[v] = unionTokens(a.bind[v], list)
	}
	for t, gb := range b.guard {
		if ga, ok := a.guard[t]; !ok || ga != gb {
			delete(a.guard, t)
		}
	}
	for t := range a.guard {
		if _, ok := b.guard[t]; !ok {
			delete(a.guard, t)
		}
	}
	return a
}

func unbornIfAbsent(m map[*resToken]tokState, t *resToken) tokState {
	if _, ok := m[t]; !ok {
		return stUnborn
	}
	return 0
}

func unionTokens(a, b []*resToken) []*resToken {
	for _, t := range b {
		if !containsToken(a, t) {
			a = append(a, t)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i].id < a[j].id })
	return a
}

func containsToken(list []*resToken, t *resToken) bool {
	for _, x := range list {
		if x == t {
			return true
		}
	}
	return false
}

func equalFact(a, b *opFact) bool {
	if len(a.st) != len(b.st) || len(a.bind) != len(b.bind) || len(a.guard) != len(b.guard) {
		return false
	}
	for t, v := range a.st {
		if b.st[t] != v {
			return false
		}
	}
	for v, la := range a.bind {
		lb, ok := b.bind[v]
		if !ok || len(la) != len(lb) {
			return false
		}
		for i := range la {
			if la[i] != lb[i] {
				return false
			}
		}
	}
	for t, g := range a.guard {
		if gb, ok := b.guard[t]; !ok || gb != g {
			return false
		}
	}
	return true
}

// fnSummary is a function's interprocedural contract for its
// resource-typed parameters.
type fnSummary struct {
	// owns: parameter index → released (or ownership transferred) on
	// every non-panic path: callers hand the obligation over.
	owns map[int]bool
	// some: released on at least one path (mixed): callers drop their
	// claim rather than report a leak they cannot prove.
	some map[int]bool
}

// ownerPass is the per-run state of the analyzer.
type ownerPass struct {
	pass      *ModulePass
	summaries map[*types.Func]*fnSummary
	decls     map[*types.Func]*ast.FuncDecl
	cfgs      map[*callgraph.Node]*cfg.Graph
}

func runOwnerPass(p *ModulePass) {
	op := &ownerPass{
		pass:      p,
		summaries: map[*types.Func]*fnSummary{},
		decls:     map[*types.Func]*ast.FuncDecl{},
		cfgs:      map[*callgraph.Node]*cfg.Graph{},
	}
	op.collectDecls()
	op.seedBuiltinSummaries()
	op.seedAnnotations()
	op.summaryFixpoint()
	for _, n := range p.Graph.Nodes() {
		if n.Body == nil {
			continue
		}
		op.analyzeFunc(n, true)
	}
}

func (op *ownerPass) collectDecls() {
	for _, pkg := range op.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					op.decls[fn] = fd
				}
			}
		}
	}
}

// seedBuiltinSummaries installs the release functions whose ownership
// the analyzer knows a priori: transport.PutBuffer consumes its
// buffer, (*handlePool).release consumes its pooled file.
func (op *ownerPass) seedBuiltinSummaries() {
	if tp := op.pass.FindPackage(transportPath); tp != nil {
		if fn, ok := tp.Scope().Lookup("PutBuffer").(*types.Func); ok {
			op.summaries[fn] = &fnSummary{owns: map[int]bool{0: true}, some: map[int]bool{0: true}}
		}
	}
	if cp := op.pass.FindPackage(cachestorePath); cp != nil {
		if tn, ok := cp.Scope().Lookup("handlePool").(*types.TypeName); ok {
			if named, ok := tn.Type().(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					if m := named.Method(i); m.Name() == "release" {
						op.summaries[m] = &fnSummary{owns: map[int]bool{0: true}, some: map[int]bool{0: true}}
					}
				}
			}
		}
	}
}

// seedAnnotations parses //hvac:owns doc-comment lines into forced
// summaries, for transfers inference cannot see.
func (op *ownerPass) seedAnnotations() {
	for fn, fd := range op.decls {
		if fd.Doc == nil {
			continue
		}
		sig := fn.Type().(*types.Signature)
		for _, c := range fd.Doc.List {
			if !strings.HasPrefix(c.Text, "//hvac:owns") {
				continue
			}
			names := strings.Fields(strings.TrimPrefix(c.Text, "//hvac:owns"))
			s := op.summaryFor(fn)
			for _, name := range names {
				for i := 0; i < sig.Params().Len(); i++ {
					if sig.Params().At(i).Name() == name {
						s.owns[i] = true
						s.some[i] = true
					}
				}
			}
		}
	}
}

func (op *ownerPass) summaryFor(fn *types.Func) *fnSummary {
	s, ok := op.summaries[fn]
	if !ok {
		s = &fnSummary{owns: map[int]bool{}, some: map[int]bool{}}
		op.summaries[fn] = s
	}
	return s
}

// summaryFixpoint infers owns/some for every declared function with
// resource-typed parameters, iterating so wrapper chains (A releases
// by calling B, which releases) converge. The owns/some sets only
// grow, so the valueflow round driver converges in a handful of
// rounds.
func (op *ownerPass) summaryFixpoint() {
	var cands []*callgraph.Node
	for _, n := range op.pass.Graph.Nodes() {
		if n.Func == nil || n.Body == nil {
			continue
		}
		sig := n.Func.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			if _, ok := paramResKind(sig.Params().At(i).Type()); ok {
				cands = append(cands, n)
				break
			}
		}
	}
	valueflow.Fixpoint(8, func() bool {
		changed := false
		for _, n := range cands {
			res := op.analyzeFunc(n, false)
			s := op.summaryFor(n.Func)
			for i, all := range res.releasedAll {
				if all && !s.owns[i] {
					s.owns[i] = true
					changed = true
				}
			}
			for i, some := range res.releasedSome {
				if some && !s.some[i] {
					s.some[i] = true
					changed = true
				}
			}
		}
		return changed
	})
}

// paramResKind classifies a parameter type as a trackable resource.
// []byte parameters are deliberately excluded (too generic); buffer
// ownership transfer through helpers uses the //hvac:owns annotation.
func paramResKind(t types.Type) (resKind, bool) {
	switch path, name := namedPtrPath(t); {
	case path == transportPath && name == "Response":
		return resResponse, true
	case path == cachestorePath && name == "Fill":
		return resFillAny, true
	case path == cachestorePath && name == "pooledFile":
		return resHandle, true
	case path == cachestorePath && name == "Lease":
		return resLease, true
	}
	return 0, false
}

// namedPtrPath unwraps *pkg.Name into its package path and type name.
func namedPtrPath(t types.Type) (string, string) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// shortName compresses a types.Func full name for diagnostics:
// "(*hvac/internal/cachestore.Store).PutWriter" → "(*cachestore.Store).PutWriter".
func shortName(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "hvac/internal/", "")
}

// fnResult is the summary-mode outcome of one function analysis.
type fnResult struct {
	releasedAll  map[int]bool
	releasedSome map[int]bool
}

// exprCtx tells handleCall what happens to the call's results.
type exprCtx uint8

const (
	ctxNested   exprCtx = iota // value flows somewhere untracked
	ctxDiscard                 // expression statement / blank assign
	ctxCond                    // branch condition: guarded acquisition
	ctxTransfer                // return or send position
	ctxBound                   // an assignment will bind the results
)

// reportKey dedupes diagnostics: one report per (token, category).
type reportKey struct {
	t   *resToken
	cat uint8
}

const (
	repLeak uint8 = iota
	repDiscard
	repEscape
	repGoroutine
	repReacquire
	repDouble
)

// fnAnalysis is the per-function walk state.
type fnAnalysis struct {
	op        *ownerPass
	node      *callgraph.Node
	info      *types.Info
	tokens    []*resToken
	bySite    map[ast.Node]*resToken
	noclaim   map[*resToken]bool
	reported  map[reportKey]bool
	params    map[int]*resToken // summary mode: parameter tokens
	reporting bool
}

// reportOnce emits one diagnostic per (token, category); the fixpoint
// phase never reports, so markers are only set during the final sweep.
func (fa *fnAnalysis) reportOnce(t *resToken, cat uint8, pos token.Pos, format string, args ...any) {
	if !fa.reporting || fa.reported[reportKey{t, cat}] {
		return
	}
	fa.reported[reportKey{t, cat}] = true
	fa.op.pass.Reportf(pos, format, args...)
}

// analyzeFunc runs the dataflow over one function. With report=false
// it returns the parameter release summary; with report=true it emits
// diagnostics through the module pass.
func (op *ownerPass) analyzeFunc(n *callgraph.Node, report bool) *fnResult {
	g, ok := op.cfgs[n]
	if !ok {
		g = cfg.New(n.Body)
		op.cfgs[n] = g
	}
	fa := &fnAnalysis{
		op:       op,
		node:     n,
		info:     n.Pkg.Info,
		bySite:   map[ast.Node]*resToken{},
		noclaim:  map[*resToken]bool{},
		reported: map[reportKey]bool{},
		params:   map[int]*resToken{},
	}
	entry := newFact()
	if !report && n.Func != nil {
		sig := n.Func.Type().(*types.Signature)
		for i := 0; i < sig.Params().Len(); i++ {
			v := sig.Params().At(i)
			if kind, ok := paramResKind(v.Type()); ok {
				t := fa.newToken(kind, v.Pos(), "parameter "+v.Name())
				fa.params[i] = t
				entry.st[t] = stLive
				entry.bind[v] = []*resToken{t}
			}
		}
	}
	fw := &cfg.Forward[*opFact]{
		Graph:    g,
		Entry:    entry,
		Transfer: fa.transferBlock,
		Refine:   fa.refineEdge,
		Join:     joinFact,
		Equal:    equalFact,
		Clone:    cloneFact,
	}
	ins := fw.Fixpoint()

	// Final sweep in block order: reports (or the summary) come from
	// the stable in-facts, each block visited exactly once.
	res := &fnResult{releasedAll: map[int]bool{}, releasedSome: map[int]bool{}}
	for i := range fa.params {
		res.releasedAll[i] = true
	}
	fa.reporting = report
	for _, blk := range g.Blocks {
		if blk.Kind == cfg.KindExit {
			continue
		}
		f := fa.transferBlock(blk, cloneFact(ins[blk.Index]))
		for _, succ := range blk.Succs {
			if succ == g.Exit {
				fa.checkExit(blk, f, res)
			}
		}
	}
	return res
}

func (fa *fnAnalysis) newToken(kind resKind, pos token.Pos, what string) *resToken {
	t := &resToken{id: len(fa.tokens), kind: kind, pos: pos, what: what}
	fa.tokens = append(fa.tokens, t)
	return t
}

// checkExit inspects the fact leaving blk on its edge into the exit
// block: live tokens leak (unless the exit is a panic), and parameter
// tokens feed the summary.
func (fa *fnAnalysis) checkExit(blk *cfg.Block, f *opFact, res *fnResult) {
	if _, isPanic := blk.Term.(*ast.CallExpr); isPanic {
		return // a panicking path tolerates leaks: the pool just misses
	}
	for i, t := range fa.params {
		st, ok := f.st[t]
		if !ok {
			st = stUnborn
		}
		if st&stLive != 0 {
			res.releasedAll[i] = false
		}
		if st&stReleased != 0 {
			res.releasedSome[i] = true
		}
	}
	if !fa.reporting {
		return
	}
	exitLine := fa.exitLine(blk)
	for _, t := range fa.tokens {
		if fa.noclaim[t] || f.st[t]&stLive == 0 {
			continue
		}
		fa.reportOnce(t, repLeak, t.pos, "%s from %s may leak: a path reaches the function exit at line %d without %s",
			t.kind.noun(), t.what, exitLine, t.kind.releaseVerb())
	}
}

func (fa *fnAnalysis) exitLine(blk *cfg.Block) int {
	pos := fa.node.Body.End()
	if blk.Term != nil {
		pos = blk.Term.Pos()
	} else if len(blk.Nodes) > 0 {
		pos = blk.Nodes[len(blk.Nodes)-1].Pos()
	}
	return fa.op.pass.Fset.Position(pos).Line
}

// transferBlock applies every node of the block to the fact.
func (fa *fnAnalysis) transferBlock(blk *cfg.Block, f *opFact) *opFact {
	for _, n := range blk.Nodes {
		fa.applyNode(n, f)
	}
	return f
}

func (fa *fnAnalysis) applyNode(n ast.Node, f *opFact) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		fa.assign(n.Lhs, n.Rhs, f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, id := range vs.Names {
					lhs[i] = id
				}
				fa.assign(lhs, vs.Values, f)
			}
		}
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			fa.handleCall(call, f, ctxDiscard)
		} else {
			fa.scanCalls(n.X, f, ctxNested)
		}
	case *ast.DeferStmt:
		fa.handleCall(n.Call, f, ctxDiscard)
	case *ast.GoStmt:
		fa.goStmt(n, f)
	case *ast.SendStmt:
		fa.scanCalls(n.Chan, f, ctxNested)
		fa.scanCalls(n.Value, f, ctxTransfer)
		fa.transferIdents(n.Value, f)
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			fa.scanCalls(r, f, ctxTransfer)
			fa.transferIdents(r, f)
		}
	case *ast.IncDecStmt:
		// no effect
	case ast.Expr:
		// A branch condition, range/switch head expression or case
		// expression: calls acquire under a condition guard.
		fa.scanCalls(n, f, ctxCond)
	default:
		if stmt, ok := n.(ast.Stmt); ok {
			fa.scanStmtExprs(stmt, f)
		}
	}
}

// scanStmtExprs conservatively processes the calls of an otherwise
// unmodeled statement.
func (fa *fnAnalysis) scanStmtExprs(s ast.Stmt, f *opFact) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fa.handleCall(n, f, ctxNested)
			return false
		}
		return true
	})
}

// assign handles both forms of Go assignment. A single multi-value
// call on the right binds its resource results to the left-hand
// variables; otherwise values pair off positionally.
func (fa *fnAnalysis) assign(lhs, rhs []ast.Expr, f *opFact) {
	if len(rhs) == 1 {
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			fa.assignCall(lhs, call, f)
			return
		}
	}
	for i, r := range rhs {
		var l ast.Expr
		if i < len(lhs) {
			l = lhs[i]
		}
		fa.assignOne(l, r, f)
	}
}

// assignCall binds the resource results of a call to the assignment's
// left-hand side, attaching an error-variable guard when the call
// also returns an error.
func (fa *fnAnalysis) assignCall(lhs []ast.Expr, call *ast.CallExpr, f *opFact) {
	fa.callEffects(call, f)

	var errVar *types.Var
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
			if v, ok := fa.info.ObjectOf(id).(*types.Var); ok && isErrorType(v.Type()) {
				errVar = v
			}
		}
	}

	for _, acq := range fa.acquisitions(call) {
		if acq.recv != nil {
			// Receiver-subject acquisition (Fill.Acquire): the token
			// lives on the receiver, guarded by the boolean result.
			t := fa.acquire(acq, call, f)
			fa.bindVar(f, acq.recv, t)
			g := guardInfo{}
			if len(lhs) > 0 {
				if id, ok := lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if v, ok := fa.info.ObjectOf(id).(*types.Var); ok {
						g.ok = v
					}
				}
			}
			f.guard[t] = g
			continue
		}
		var l ast.Expr
		if acq.index < len(lhs) {
			l = lhs[acq.index]
		}
		t := fa.acquire(acq, call, f)
		if errVar != nil {
			f.guard[t] = guardInfo{err: errVar}
		}
		switch l := l.(type) {
		case *ast.Ident:
			if l.Name == "_" {
				fa.discard(t, call, f)
				continue
			}
			if v, ok := fa.info.ObjectOf(l).(*types.Var); ok {
				fa.bindVar(f, v, t)
			}
		case nil:
			fa.discard(t, call, f)
		default:
			// Field, index or dereference target: the token escapes
			// the frame immediately.
			fa.escapeStore(t, l, f)
		}
	}
}

// assignOne handles one positional lhs = rhs pair: aliasing, escapes
// and rebinding.
func (fa *fnAnalysis) assignOne(l, r ast.Expr, f *opFact) {
	fa.scanCalls(r, f, ctxNested)
	toks := fa.boundTokens(r, f)
	lid, _ := l.(*ast.Ident)
	if len(toks) > 0 {
		switch {
		case lid != nil && lid.Name == "_":
			// `_ = tok` silences the compiler; not a transfer.
		case lid != nil:
			if v, ok := fa.info.ObjectOf(lid).(*types.Var); ok {
				if fa.isLongLivedVar(v) {
					for _, t := range toks {
						fa.escapeStore(t, l, f)
					}
					return
				}
				f.bind[v] = unionTokens(nil, toks)
			}
		case l != nil:
			for _, t := range toks {
				fa.escapeStore(t, l, f)
			}
		}
		return
	}
	// Rebinding a tracked variable to a non-token value drops the
	// binding; the token itself stays tracked for the exit check.
	if lid != nil && lid.Name != "_" {
		if v, ok := fa.info.ObjectOf(lid).(*types.Var); ok {
			delete(f.bind, v)
		}
	}
}

// isLongLivedVar reports whether v is a package-level variable.
func (fa *fnAnalysis) isLongLivedVar(v *types.Var) bool {
	return v.Parent() != nil && fa.node.Pkg.Types != nil && v.Parent() == fa.node.Pkg.Types.Scope()
}

// boundTokens returns the tokens bound to r when r is (the address
// of) a simple identifier.
func (fa *fnAnalysis) boundTokens(r ast.Expr, f *opFact) []*resToken {
	switch r := ast.Unparen(r).(type) {
	case *ast.Ident:
		if v, ok := fa.info.ObjectOf(r).(*types.Var); ok {
			return f.bind[v]
		}
	case *ast.UnaryExpr:
		if r.Op == token.AND {
			return fa.boundTokens(r.X, f)
		}
	}
	return nil
}

// transferIdents retires every token whose variable appears as a
// whole value in e (return results, channel sends, composite-literal
// elements): ownership moves to the receiver.
func (fa *fnAnalysis) transferIdents(e ast.Expr, f *opFact) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		for _, t := range fa.boundTokens(e, f) {
			f.st[t] = stReleased
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			fa.transferIdents(e.X, f)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				fa.transferIdents(kv.Value, f)
				continue
			}
			fa.transferIdents(el, f)
		}
	}
}

// discard reports a dropped acquisition and stops tracking the token.
func (fa *fnAnalysis) discard(t *resToken, call *ast.CallExpr, f *opFact) {
	fa.reportOnce(t, repDiscard, call.Pos(), "%s from %s is discarded: bind the result and %s it",
		t.kind.noun(), t.what, t.kind.releaseVerb())
	fa.noclaim[t] = true
	f.st[t] = stReleased
}

// escapeStore handles a token stored into a field, element or global:
// pooled kinds report, fill lifecycles just drop the claim.
func (fa *fnAnalysis) escapeStore(t *resToken, l ast.Expr, f *opFact) {
	if t.kind.longLivedEscapes() {
		fa.reportOnce(t, repEscape, l.Pos(), "%s from %s escapes to a long-lived location without ownership transfer: release it here or move the release with the value",
			t.kind.noun(), t.what)
	}
	fa.noclaim[t] = true
	f.st[t] = stReleased
}

// goStmt hands tokens captured by a spawned goroutine over when the
// goroutine visibly releases them, and reports pooled kinds that
// escape without a release.
func (fa *fnAnalysis) goStmt(s *ast.GoStmt, f *opFact) {
	call := s.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		fa.funcLitEffects(lit, call.Pos(), f, true)
		for _, arg := range call.Args {
			fa.argTransfer(arg, call.Pos(), f)
		}
		return
	}
	fa.callEffects(call, f)
	for _, arg := range call.Args {
		fa.argTransfer(arg, call.Pos(), f)
	}
}

// argTransfer treats a token argument of a go statement as moved into
// the goroutine; the callee summary (applied by callEffects) already
// released owned parameters, so what remains is an escape for pooled
// kinds.
func (fa *fnAnalysis) argTransfer(arg ast.Expr, pos token.Pos, f *opFact) {
	for _, t := range fa.boundTokens(arg, f) {
		if f.st[t]&stLive != 0 && t.kind.longLivedEscapes() {
			fa.reportOnce(t, repGoroutine, pos, "%s from %s escapes into a goroutine that never releases it",
				t.kind.noun(), t.what)
		}
		fa.noclaim[t] = true
		f.st[t] = stReleased
	}
}

// funcLitEffects processes a literal passed somewhere (goroutine,
// deferred wrapper, callback): tokens it releases are handed over;
// tokens it merely captures escape when spawned as a goroutine.
func (fa *fnAnalysis) funcLitEffects(lit *ast.FuncLit, pos token.Pos, f *opFact, spawned bool) {
	vars := make([]*types.Var, 0, len(f.bind))
	for v := range f.bind {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })
	for _, v := range vars {
		if !identUsed(lit.Body, fa.info, v) {
			continue
		}
		released := fa.litReleases(lit.Body, v)
		for _, t := range f.bind[v] {
			if released {
				f.st[t] = stReleased
				continue
			}
			if spawned {
				if f.st[t]&stLive != 0 && t.kind.longLivedEscapes() {
					fa.reportOnce(t, repGoroutine, pos, "%s from %s escapes into a goroutine that never releases it",
						t.kind.noun(), t.what)
				}
				fa.noclaim[t] = true
				f.st[t] = stReleased
			}
			// Captured by a non-spawned literal (callback): borrow —
			// the token's state is untouched.
		}
	}
}

func identUsed(body ast.Node, info *types.Info, v *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == v {
			used = true
		}
		return !used
	})
	return used
}

// litReleases reports whether the literal body releases v through any
// recognized release form.
func (fa *fnAnalysis) litReleases(body ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if recv, _ := fa.releaseTarget(call); recv != nil && fa.info.ObjectOf(recv) == v {
			found = true
		}
		if s := fa.calleeSummary(call); s != nil {
			for i, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && fa.info.ObjectOf(id) == v && s.owns[i] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// scanCalls processes every outermost call in e with the given
// context, plus transfers for composite wrapping when ctxTransfer.
func (fa *fnAnalysis) scanCalls(e ast.Expr, f *opFact, ctx exprCtx) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			fa.handleCall(n, f, ctx)
			return false
		}
		return true
	})
}

// handleCall is the single entry point for one call expression: it
// applies release semantics, argument effects, nested calls and —
// depending on context — acquisition tracking.
func (fa *fnAnalysis) handleCall(call *ast.CallExpr, f *opFact, ctx exprCtx) {
	fa.callEffects(call, f)
	for _, acq := range fa.acquisitions(call) {
		t := fa.acquire(acq, call, f)
		switch {
		case acq.recv != nil:
			// Condition-position Fill.Acquire: bind the receiver and
			// guard on the call itself.
			fa.bindVar(f, acq.recv, t)
			if ctx == ctxCond {
				f.guard[t] = guardInfo{call: call}
			} else {
				fa.noclaim[t] = true
			}
		case ctx == ctxTransfer:
			f.st[t] = stReleased // created and immediately handed out
		case ctx == ctxDiscard:
			fa.discard(t, call, f)
		case ctx == ctxCond:
			f.guard[t] = guardInfo{call: call}
		default: // ctxNested: flows somewhere this analysis cannot follow
			fa.noclaim[t] = true
		}
	}
}

// acquire returns the (site-stable) token for one acquisition,
// flagging loop iterations that re-acquire while the previous token
// is still unreleased on every path back.
func (fa *fnAnalysis) acquire(acq acqSite, call *ast.CallExpr, f *opFact) *resToken {
	key := ast.Node(call)
	t, ok := fa.bySite[key]
	if !ok {
		t = fa.newToken(acq.kind, call.Pos(), acq.what)
		fa.bySite[key] = t
	}
	if prev, ok := f.st[t]; ok && prev == stLive && !fa.noclaim[t] {
		fa.reportOnce(t, repReacquire, call.Pos(), "%s from %s is re-acquired while the previous acquisition is still live on every looping path: missing %s inside the loop",
			t.kind.noun(), t.what, t.kind.releaseVerb())
	}
	f.st[t] = stLive
	delete(f.guard, t)
	return t
}

func (fa *fnAnalysis) bindVar(f *opFact, v *types.Var, t *resToken) {
	f.bind[v] = unionTokens(nil, []*resToken{t})
}

// callEffects applies a call's release semantics: method releases,
// callee-summary ownership of arguments, literal callbacks and
// composite-wrapped tokens. Nested calls inside arguments recurse.
func (fa *fnAnalysis) callEffects(call *ast.CallExpr, f *opFact) {
	if recv, kinds := fa.releaseTarget(call); recv != nil {
		if v, ok := fa.info.ObjectOf(recv).(*types.Var); ok {
			fa.applyRelease(call, f, f.bind[v], kinds)
		}
		for _, arg := range call.Args {
			fa.scanCalls(arg, f, ctxNested)
		}
		return
	}
	s := fa.calleeSummary(call)
	for i, arg := range call.Args {
		switch arg := ast.Unparen(arg).(type) {
		case *ast.Ident:
			toks := fa.boundTokens(arg, f)
			if len(toks) == 0 {
				continue
			}
			switch {
			case s != nil && s.owns[i]:
				fa.applyReleaseTokens(call, f, toks)
			case s != nil && s.some[i]:
				for _, t := range toks {
					fa.noclaim[t] = true
				}
			}
			// Otherwise the callee borrows: no state change.
		case *ast.UnaryExpr:
			if arg.Op == token.AND {
				if toks := fa.boundTokens(arg, f); len(toks) > 0 && s != nil && s.owns[i] {
					fa.applyReleaseTokens(call, f, toks)
				}
				continue
			}
			fa.scanCalls(arg, f, ctxNested)
		case *ast.CompositeLit:
			// Wrapping a token in a composite argument: for fills the
			// wrapper (fillWriter) borrows — the Commit/Abort
			// obligation stays here; pooled kinds lose the claim.
			for _, t := range fa.compositeTokens(arg, f) {
				if t.kind.longLivedEscapes() {
					fa.noclaim[t] = true
					f.st[t] = stReleased
				}
			}
			fa.scanCalls(arg, f, ctxNested)
		case *ast.FuncLit:
			fa.funcLitEffects(arg, call.Pos(), f, false)
		default:
			fa.scanCalls(arg, f, ctxNested)
		}
	}
}

func (fa *fnAnalysis) compositeTokens(cl *ast.CompositeLit, f *opFact) []*resToken {
	var out []*resToken
	for _, el := range cl.Elts {
		e := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			e = kv.Value
		}
		out = append(out, fa.boundTokens(e, f)...)
	}
	return out
}

// applyRelease retires the receiver-bound tokens matching the release
// kinds, reporting a double release when every path has already
// released the token.
func (fa *fnAnalysis) applyRelease(call *ast.CallExpr, f *opFact, toks []*resToken, kinds map[resKind]bool) {
	matched := toks[:0:0]
	for _, t := range toks {
		if kinds[t.kind] {
			matched = append(matched, t)
		}
	}
	fa.applyReleaseTokens(call, f, matched)
}

func (fa *fnAnalysis) applyReleaseTokens(call *ast.CallExpr, f *opFact, toks []*resToken) {
	for _, t := range toks {
		if st, ok := f.st[t]; ok && st == stReleased && !fa.noclaim[t] && fa.reporting {
			// Keyed by token only: one double-release report per token
			// keeps loops from repeating it.
			fa.reportOnce(t, repDouble, call.Pos(), "double release: the %s from %s was already released on every path reaching this call",
				t.kind.noun(), t.what)
		}
		f.st[t] = stReleased
	}
}

// releaseTarget recognizes the method-form releases and returns the
// receiver identifier plus the token kinds the method retires.
func (fa *fnAnalysis) releaseTarget(call *ast.CallExpr) (*ast.Ident, map[resKind]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	recv, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil, nil
	}
	fn := fa.staticCallee(call)
	if fn == nil {
		return nil, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil, nil
	}
	path, name := recvTypePath(sig.Recv().Type())
	switch {
	case path == transportPath && name == "Response" && fn.Name() == "Release":
		return recv, map[resKind]bool{resResponse: true}
	case path == cachestorePath && name == "Fill" && (fn.Name() == "Commit" || fn.Name() == "Abort"):
		return recv, map[resKind]bool{resFill: true, resFillAny: true}
	case path == cachestorePath && name == "Fill" && fn.Name() == "Release":
		return recv, map[resKind]bool{resFillRef: true, resFillAny: true}
	case path == cachestorePath && name == "Lease" && fn.Name() == "Release":
		return recv, map[resKind]bool{resLease: true}
	}
	return nil, nil
}

func recvTypePath(t types.Type) (string, string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

func (fa *fnAnalysis) calleeSummary(call *ast.CallExpr) *fnSummary {
	fn := fa.staticCallee(call)
	if fn == nil {
		return nil
	}
	return fa.op.summaries[fn]
}

func (fa *fnAnalysis) staticCallee(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := fa.info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := fa.info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// acqSite describes one acquisition a call performs.
type acqSite struct {
	index int        // result index carrying the resource
	kind  resKind    //
	what  string     // human name for diagnostics
	recv  *types.Var // receiver-subject acquisitions (Fill.Acquire)
}

// acquisitions classifies a call's resource outputs: any result typed
// *transport.Response, *cachestore.Fill or *cachestore.pooledFile,
// []byte from transport.GetBuffer, and the receiver of Fill.Acquire.
func (fa *fnAnalysis) acquisitions(call *ast.CallExpr) []acqSite {
	// Skip conversions (`T(x)`) — they have no callee signature.
	if tv, ok := fa.info.Types[call.Fun]; ok && tv.IsType() {
		return nil
	}
	fn := fa.staticCallee(call)

	// Receiver-subject: fl.Acquire() acquires a reference on fl.
	if fn != nil && fn.Name() == "Acquire" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if path, name := recvTypePath(sig.Recv().Type()); path == cachestorePath && name == "Fill" {
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if v, ok := fa.info.ObjectOf(id).(*types.Var); ok {
							return []acqSite{{kind: resFillRef, what: "(*cachestore.Fill).Acquire", recv: v}}
						}
					}
				}
				return nil
			}
		}
	}

	ft := fa.info.TypeOf(call.Fun)
	if ft == nil {
		return nil
	}
	sig, ok := ft.Underlying().(*types.Signature)
	if !ok {
		return nil // builtin
	}
	what := "a call"
	if fn != nil {
		what = shortName(fn)
	}
	var out []acqSite
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		switch path, name := namedPtrPath(results.At(i).Type()); {
		case path == transportPath && name == "Response":
			out = append(out, acqSite{index: i, kind: resResponse, what: what})
		case path == cachestorePath && name == "Fill":
			out = append(out, acqSite{index: i, kind: resFill, what: what})
		case path == cachestorePath && name == "pooledFile":
			out = append(out, acqSite{index: i, kind: resHandle, what: what})
		case path == cachestorePath && name == "Lease":
			out = append(out, acqSite{index: i, kind: resLease, what: what})
		}
	}
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == transportPath && fn.Name() == "GetBuffer" {
		out = append(out, acqSite{index: 0, kind: resBuffer, what: "transport.GetBuffer"})
	}
	return out
}

// refineEdge sharpens token states along a conditional branch edge.
func (fa *fnAnalysis) refineEdge(blk *cfg.Block, i int, f *opFact) *opFact {
	if blk.Cond == nil {
		return f
	}
	branch := i == 0
	fa.refineCond(blk.Cond, branch, f)
	if !branch {
		// Short-circuit: when a guard call (fl.Acquire()) is a
		// positive conjunct of the whole condition, a false outcome
		// means the acquisition either never ran or returned false —
		// the token is not held on this edge.
		for _, t := range fa.tokens {
			if g, ok := f.guard[t]; ok && g.call != nil && positiveConjunct(blk.Cond, g.call) {
				f.st[t] = stUnborn
			}
		}
	}
	return f
}

// positiveConjunct reports whether call appears as a bare conjunct of
// e (e itself, or an operand of a && chain) — the positions where the
// condition being false implies the call was skipped or returned
// false.
func positiveConjunct(e ast.Expr, call *ast.CallExpr) bool {
	e = ast.Unparen(e)
	if e == ast.Expr(call) {
		return true
	}
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LAND {
		return positiveConjunct(b.X, call) || positiveConjunct(b.Y, call)
	}
	return false
}

// refineCond decomposes the condition into refinable atoms:
// err == nil / err != nil, tok == nil / tok != nil, guard booleans,
// guard calls, and &&/||/! combinations thereof.
func (fa *fnAnalysis) refineCond(e ast.Expr, branch bool, f *opFact) {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			fa.refineCond(e.X, !branch, f)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if branch {
				fa.refineCond(e.X, true, f)
				fa.refineCond(e.Y, true, f)
			}
		case token.LOR:
			if !branch {
				fa.refineCond(e.X, false, f)
				fa.refineCond(e.Y, false, f)
			}
		case token.EQL, token.NEQ:
			fa.refineComparison(e, branch, f)
		}
	case *ast.Ident:
		fa.refineBool(e, branch, f)
	case *ast.CallExpr:
		fa.refineCall(e, branch, f)
	}
}

func (fa *fnAnalysis) refineComparison(e *ast.BinaryExpr, branch bool, f *opFact) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	id, ok := x.(*ast.Ident)
	other := y
	if !ok {
		id, ok = y.(*ast.Ident)
		other = x
	}
	if !ok || !isNilIdent(other) {
		return
	}
	// `id == nil` true (or `id != nil` false) ⇒ nil on this edge.
	isNilEdge := branch == (e.Op == token.EQL)
	v, ok := fa.info.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	// The identifier may be the token itself...
	for _, t := range f.bind[v] {
		if isNilEdge {
			f.st[t] = stUnborn
		} else {
			f.st[t] = stLive
		}
	}
	// ...or the error variable guarding one or more tokens.
	if isErrorType(v.Type()) {
		for _, t := range fa.tokens {
			if g, ok := f.guard[t]; ok && g.err == v {
				if isNilEdge {
					f.st[t] = stLive // err == nil ⇒ acquisition succeeded
				} else {
					f.st[t] = stUnborn
				}
			}
		}
	}
}

func (fa *fnAnalysis) refineBool(id *ast.Ident, branch bool, f *opFact) {
	v, ok := fa.info.ObjectOf(id).(*types.Var)
	if !ok {
		return
	}
	for _, t := range fa.tokens {
		if g, ok := f.guard[t]; ok && g.ok == v {
			if branch {
				f.st[t] = stLive
			} else {
				f.st[t] = stUnborn
			}
		}
	}
}

func (fa *fnAnalysis) refineCall(call *ast.CallExpr, branch bool, f *opFact) {
	for _, t := range fa.tokens {
		if g, ok := f.guard[t]; ok && g.call == call {
			if branch {
				f.st[t] = stLive
			} else {
				f.st[t] = stUnborn
			}
		}
	}
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
