package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
	"hvac/internal/analysis/valueflow"
)

// ChanLife checks channel lifecycle ownership module-wide — the bug
// class behind PR 5's scheduleFetch panic, where Close() closed the
// fetch queue while a concurrent sender was still pushing tasks.
//
// Three rules:
//
//   - A function must not close a channel it received as a parameter:
//     the creator/sender side owns the close.
//   - A close reachable after a close of the same channel value on one
//     CFG path is a double close (panics).
//   - A send on a channel value that some other function closes may
//     race that close (send on a closed channel panics), unless the
//     send sits in a select with a stop-channel receive case — the
//     declared shutdown idiom. Within one function the same rule runs
//     path-sensitively over the CFG.
//
// Channel values resolve through valueflow def-use chains, so a local
// alias (`q := s.prefetchQ; ... q <- task`) is tracked back to the
// fields it may name.
var ChanLife = &Analyzer{
	Name:      "chanlife",
	Doc:       "channel lifecycle: close ownership, double close, sends racing a close",
	RunModule: runChanLife,
}

const (
	chanClose = iota
	chanSend
)

// chanEvent is one close or send site inside one function.
type chanEvent struct {
	kind    int
	node    *callgraph.Node
	pos     token.Pos
	origins []*types.Var
	guarded bool // send inside a stop-guard select
	fnLabel string
}

type chanLife struct {
	pass        *ModulePass
	closes      map[*types.Var][]*chanEvent
	sends       map[*types.Var][]*chanEvent
	originOrder []*types.Var
	reported    map[token.Pos]bool
}

func runChanLife(p *ModulePass) {
	cl := &chanLife{
		pass:     p,
		closes:   map[*types.Var][]*chanEvent{},
		sends:    map[*types.Var][]*chanEvent{},
		reported: map[token.Pos]bool{},
	}
	for _, n := range p.Graph.Nodes() {
		if n.Body != nil {
			cl.analyzeNode(n)
		}
	}
	cl.crossFunction()
}

// nodeLabel is the short human name of a function for messages.
func nodeLabel(n *callgraph.Node) string {
	if n.Func != nil {
		name := n.Func.Name()
		if sig, ok := n.Func.Type().(*types.Signature); ok && sig.Recv() != nil {
			if _, tn := recvShortName(sig.Recv().Type()); tn != "" {
				return tn + "." + name
			}
		}
		return name
	}
	if i := strings.LastIndex(n.Name, "."); i >= 0 {
		return n.Name[i+1:]
	}
	return n.Name
}

// recvShortName unwraps a receiver type to its named-type name.
func recvShortName(t types.Type) (string, string) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		return named.Obj().Pkg().Path(), named.Obj().Name()
	}
	return "", ""
}

// analyzeNode collects n's close/send events, reports the
// close-of-parameter and intra-function path rules, and aggregates
// events for the cross-function pass.
func (cl *chanLife) analyzeNode(n *callgraph.Node) {
	info := n.Pkg.Info

	// Quick scan: skip functions without channel closes or sends.
	var closeCalls []*ast.CallExpr
	var sendStmts []*ast.SendStmt
	guardedSends := map[*ast.SendStmt]bool{}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" && len(x.Args) == 1 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					closeCalls = append(closeCalls, x)
				}
			}
		case *ast.SendStmt:
			sendStmts = append(sendStmts, x)
		case *ast.SelectStmt:
			markGuardedSends(x, guardedSends)
		}
		return true
	})
	if len(closeCalls) == 0 && len(sendStmts) == 0 {
		return
	}

	fl := valueflow.Flow(cl.pass.Fset, n, cfg.New(n.Body))
	params := nodeParams(n)

	events := map[ast.Node]*chanEvent{} // keyed by the close call / send stmt
	addEvent := func(kind int, m map[*types.Var][]*chanEvent, site ast.Node, target ast.Expr, guarded bool) *chanEvent {
		ev := &chanEvent{
			kind: kind, node: n, pos: site.Pos(), guarded: guarded,
			fnLabel: nodeLabel(n), origins: fl.Origins(target),
		}
		for _, v := range ev.origins {
			cl.originOrder = valueflow.AddSet(cl.originOrder, v)
			m[v] = append(m[v], ev)
		}
		events[site] = ev
		return ev
	}

	for _, call := range closeCalls {
		ev := addEvent(chanClose, cl.closes, call, call.Args[0], false)
		for _, v := range ev.origins {
			if params[v] {
				cl.pass.Reportf(call.Pos(),
					"close of channel parameter %s in %s: the function does not own it; only the creator/sender side should close",
					v.Name(), ev.fnLabel)
			}
		}
	}
	for _, s := range sendStmts {
		addEvent(chanSend, cl.sends, s, s.Chan, guardedSends[s])
	}

	cl.pathCheck(n, events)
}

// markGuardedSends records the send clauses of a select that also has
// a receive case — the stop-guard shutdown idiom. A bare default does
// not guard: it skips a full buffer, not a closed channel.
func markGuardedSends(sel *ast.SelectStmt, guarded map[*ast.SendStmt]bool) {
	var sends []*ast.SendStmt
	hasReceive := false
	for _, cs := range sel.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			sends = append(sends, comm)
		case *ast.ExprStmt:
			if isReceiveExpr(comm.X) {
				hasReceive = true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if isReceiveExpr(r) {
					hasReceive = true
				}
			}
		}
	}
	if hasReceive {
		for _, s := range sends {
			guarded[s] = true
		}
	}
}

func isReceiveExpr(e ast.Expr) bool {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	return ok && u.Op == token.ARROW
}

// nodeParams returns the channel-typed parameters of n.
func nodeParams(n *callgraph.Node) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	var sig *types.Signature
	if n.Func != nil {
		sig = n.Func.Type().(*types.Signature)
	} else if n.Lit != nil {
		sig, _ = n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
	}
	if sig == nil {
		return out
	}
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if _, ok := p.Type().Underlying().(*types.Chan); ok {
			out[p] = true
		}
	}
	return out
}

// pathCheck runs the intra-function state machine over the CFG: a
// channel origin that may be closed on the current path makes a later
// close a double close and a later send a send-on-closed.
func (cl *chanLife) pathCheck(n *callgraph.Node, events map[ast.Node]*chanEvent) {
	g := cfg.New(n.Body)
	info := n.Pkg.Info
	type fact = map[*types.Var]bool // origin -> may be closed on this path

	// apply replays one block node against the fact; when report is
	// set, path violations are diagnosed as they are encountered.
	apply := func(node ast.Node, f fact, report bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			// A reassignment reopens the value for this path.
			if as, ok := x.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					switch l := ast.Unparen(lhs).(type) {
					case *ast.Ident:
						if v, ok := info.Defs[l].(*types.Var); ok {
							delete(f, v)
						} else if v, ok := info.Uses[l].(*types.Var); ok {
							delete(f, v)
						}
					case *ast.SelectorExpr:
						if v, ok := info.Uses[l.Sel].(*types.Var); ok && v.IsField() {
							delete(f, v)
						}
					}
				}
			}
			ev, ok := events[x]
			if !ok {
				return true
			}
			for _, v := range ev.origins {
				closed := f[v]
				switch {
				case ev.kind == chanClose && closed && report && !cl.reported[ev.pos]:
					cl.reported[ev.pos] = true
					cl.pass.Reportf(ev.pos,
						"%s may already be closed on this path: double close panics", v.Name())
				case ev.kind == chanSend && closed && !ev.guarded && report && !cl.reported[ev.pos]:
					cl.reported[ev.pos] = true
					cl.pass.Reportf(ev.pos,
						"send on %s is reachable after its close in %s: send on a closed channel panics", v.Name(), ev.fnLabel)
				}
				if ev.kind == chanClose {
					f[v] = true
				}
			}
			return true
		})
	}

	fw := &cfg.Forward[fact]{
		Graph: g,
		Entry: fact{},
		Transfer: func(b *cfg.Block, in fact) fact { // facts only; reporting happens in the replay
			for _, node := range b.Nodes {
				apply(node, in, false)
			}
			return in
		},
		Join: func(a, b fact) fact {
			for v := range b {
				a[v] = true
			}
			return a
		},
		Equal: func(a, b fact) bool {
			if len(a) != len(b) {
				return false
			}
			for v := range a {
				if !b[v] {
					return false
				}
			}
			return true
		},
		Clone: func(f fact) fact {
			out := make(fact, len(f))
			for v := range f {
				out[v] = true
			}
			return out
		},
	}
	ins := fw.Fixpoint()
	for _, blk := range g.Blocks {
		if blk.Index >= len(ins) || ins[blk.Index] == nil {
			continue
		}
		cur := fw.Clone(ins[blk.Index])
		for _, node := range blk.Nodes {
			apply(node, cur, true)
		}
	}
}

// crossFunction reports sends that may race a close performed by a
// different function. Ordering follows origin discovery order, which
// follows Graph.Nodes() order — deterministic.
func (cl *chanLife) crossFunction() {
	for _, v := range cl.originOrder {
		closes, sends := cl.closes[v], cl.sends[v]
		if len(closes) == 0 || len(sends) == 0 {
			continue
		}
		for _, send := range sends {
			if send.guarded || cl.reported[send.pos] {
				continue
			}
			var otherFn string
			for _, c := range closes {
				if c.node != send.node {
					otherFn = c.fnLabel
					break
				}
			}
			if otherFn == "" {
				continue // same-function ordering was already path-checked
			}
			cl.reported[send.pos] = true
			cl.pass.Reportf(send.pos,
				"send on %s may race close(%s) in %s: guard the send with a stop-channel select or leave the channel open for the collector",
				v.Name(), v.Name(), otherFn)
		}
	}
}
