package analysis

import (
	"go/ast"
	"go/types"
)

// errCheckedPkgs are the packages whose error returns must not be
// silently dropped: OS and network I/O plus HVAC's own transport, cache
// store and client layers. A write that fails in these layers corrupts
// the cache or loses data; a read that fails must surface to trigger the
// PFS fallback.
var errCheckedPkgs = map[string]bool{
	"os":                       true,
	"io":                       true,
	"net":                      true,
	"bufio":                    true,
	"hvac/internal/transport":  true,
	"hvac/internal/cachestore": true,
	"hvac/internal/core":       true,
	"hvac/internal/localfs":    true,
	"hvac/internal/vfs":        true,
}

// ErrDrop flags expression statements that call an I/O, transport,
// cache-store or client function returning an error and ignore the
// result. Deferred and go statements are exempt (deferred Close on a
// read-only file is the established idiom); an explicit `_ =` assignment
// documents intent and is likewise accepted.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "discarded error results from I/O, transport and cachestore calls",
	Run:  runErrDrop,
}

func runErrDrop(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || !errCheckedPkgs[fn.Pkg().Path()] {
				return true
			}
			if !lastResultIsError(fn) {
				return true
			}
			p.Reportf(call.Pos(), "error result of %s.%s is discarded; handle it or assign to _ to document intent",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

// lastResultIsError reports whether fn's final result is of type error.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}
