// Package callgraph builds a module-wide call graph for hvaclint's
// interprocedural analyzers, using only the standard library's go/ast and
// go/types.
//
// The graph is CHA-style (class-hierarchy analysis): a call through an
// interface method conservatively fans out to every concrete method of an
// analyzed type that implements the interface. Calls through plain
// function values stay unresolved — the analyzers that consume the graph
// are written to stay approximate in the low-false-positive direction, so
// an unresolved edge means "no claim", never "safe by omission".
//
// Nodes cover both declared functions/methods and function literals;
// literals are named after their enclosing function ("pkg.F$1", "$2", ...
// in source order) so diagnostics and fingerprints are stable. All node
// and edge slices are in deterministic (source) order: building the graph
// twice over the same packages yields the same Fingerprint.
package callgraph

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Package is one analyzed package: the subset of the loader's package
// data the graph builder needs. Keeping it a plain struct avoids an
// import cycle with the analysis driver.
type Package struct {
	// Path is the package's import path.
	Path string
	// Files are the package's parsed source files.
	Files []*ast.File
	// Info carries the type-checker's use/def/selection maps for Files.
	Info *types.Info
	// Types is the type-checked package (used to enumerate named types
	// for CHA resolution).
	Types *types.Package
}

// A Node is one function in the graph: a declared function or method
// (Func != nil) or a function literal (Lit != nil).
type Node struct {
	// Name is the stable printable name: types.Func.FullName for
	// declarations, "enclosing$N" for literals.
	Name string
	// Func is the declared function object, nil for literals.
	Func *types.Func
	// Lit is the literal, nil for declarations.
	Lit *ast.FuncLit
	// Body is the function body; nil for bodyless declarations.
	Body *ast.BlockStmt
	// Pkg is the package the node was declared in.
	Pkg *Package
	// Pos locates the declaration.
	Pos token.Pos

	out []*Edge
	in  []*Edge
}

// An Edge is one call site resolved to one callee.
type Edge struct {
	// Caller is the node containing the call site.
	Caller *Node
	// Callee is the resolved target node, or nil when the target is
	// outside the analyzed packages (standard library, unresolved).
	Callee *Node
	// Target is the called function object as the type checker sees it:
	// the static callee, or the interface method for dynamic calls. Nil
	// only for direct calls of a function literal.
	Target *types.Func
	// Site is the call expression.
	Site *ast.CallExpr
	// Dynamic marks a CHA-resolved interface-call edge; the call may
	// reach any of its co-sited dynamic edges at run time.
	Dynamic bool
}

// Graph is the module call graph.
type Graph struct {
	fset   *token.FileSet
	nodes  []*Node
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// Fset returns the file set positioning the graph's nodes.
func (g *Graph) Fset() *token.FileSet { return g.fset }

// Nodes returns every node in deterministic (package, file, source)
// order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// NodeOf returns the node for a declared function or method, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// LitNode returns the node for a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Out returns the node's call edges in source order.
func (n *Node) Out() []*Edge { return n.out }

// In returns the edges calling this node.
func (n *Node) In() []*Edge { return n.in }

// Transitive visits every node reachable from start over call edges
// (start included), in deterministic order. Dynamic (CHA-resolved)
// edges are followed only when dyn is true.
func (g *Graph) Transitive(start *Node, dyn bool, visit func(*Node)) {
	seen := map[*Node]bool{}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		visit(n)
		for _, e := range n.out {
			if e.Dynamic && !dyn {
				continue
			}
			walk(e.Callee)
		}
	}
	walk(start)
}

// Fingerprint returns a stable hash of the graph's shape: node names
// plus caller→callee edges with their call-site positions. Two builds
// over the same source yield the same fingerprint; the driver tests use
// this to pin graph construction down as deterministic.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	for _, n := range g.nodes {
		fmt.Fprintf(h, "node %s\n", n.Name)
		for _, e := range n.out {
			callee := "<external>"
			if e.Callee != nil {
				callee = e.Callee.Name
			}
			target := "<lit>"
			if e.Target != nil {
				target = e.Target.FullName()
			}
			pos := g.fset.Position(e.Site.Pos())
			fmt.Fprintf(h, "edge %s -> %s (%s dyn=%v) @%d:%d\n",
				n.Name, callee, target, e.Dynamic, pos.Line, pos.Column)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Build constructs the call graph over pkgs. The packages must share
// fset and should be passed in deterministic order (the loader returns
// them sorted by import path).
func Build(fset *token.FileSet, pkgs []*Package) *Graph {
	g := &Graph{
		fset:   fset,
		byFunc: make(map[*types.Func]*Node),
		byLit:  make(map[*ast.FuncLit]*Node),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.collectFile(pkg, f)
		}
	}
	idx := buildCHAIndex(pkgs)
	for _, n := range g.nodes {
		if n.Body != nil {
			g.addEdges(n, idx)
		}
	}
	return g
}

// collectFile adds a node for every function declaration and literal in
// the file, naming literals after their enclosing declaration.
func (g *Graph) collectFile(pkg *Package, f *ast.File) {
	litSeq := make(map[string]int)
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			fn, _ := pkg.Info.Defs[d.Name].(*types.Func)
			if fn == nil {
				continue
			}
			n := &Node{Name: fn.FullName(), Func: fn, Body: d.Body, Pkg: pkg, Pos: d.Pos()}
			g.nodes = append(g.nodes, n)
			g.byFunc[fn] = n
			if d.Body != nil {
				g.collectLits(pkg, d.Body, n.Name, litSeq)
			}
		case *ast.GenDecl:
			// Function literals in package-level initializers.
			g.collectLits(pkg, d, pkg.Path+".init", litSeq)
		}
	}
}

// collectLits adds nodes for the function literals under root (skipping
// those nested in deeper literals, which recurse with their own name).
func (g *Graph) collectLits(pkg *Package, root ast.Node, enclosing string, seq map[string]int) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || n == root {
			return true
		}
		seq[enclosing]++
		node := &Node{
			Name: fmt.Sprintf("%s$%d", enclosing, seq[enclosing]),
			Lit:  lit, Body: lit.Body, Pkg: pkg, Pos: lit.Pos(),
		}
		g.nodes = append(g.nodes, node)
		g.byLit[lit] = node
		g.collectLits(pkg, lit.Body, node.Name, seq)
		return false
	})
}

// addEdges resolves every call expression in n's body (excluding nested
// literals, which own their calls) to graph edges.
func (g *Graph) addEdges(n *Node, idx *chaIndex) {
	info := n.Pkg.Info
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.FuncLit:
			g.link(&Edge{Caller: n, Callee: g.byLit[fun], Site: call})
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				g.link(&Edge{Caller: n, Callee: g.byFunc[fn], Target: fn, Site: call})
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[fun.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
				// Interface method call: one static edge recording the
				// interface target, plus a CHA fan-out to every analyzed
				// implementation.
				g.link(&Edge{Caller: n, Target: fn, Site: call, Dynamic: true})
				for _, impl := range idx.implementations(fn) {
					g.link(&Edge{Caller: n, Callee: g.byFunc[impl], Target: impl, Site: call, Dynamic: true})
				}
				return true
			}
			g.link(&Edge{Caller: n, Callee: g.byFunc[fn], Target: fn, Site: call})
		}
		return true
	})
}

func (g *Graph) link(e *Edge) {
	e.Caller.out = append(e.Caller.out, e)
	if e.Callee != nil {
		e.Callee.in = append(e.Callee.in, e)
	}
}

// chaIndex holds the named (non-interface) types of the analyzed
// packages, in deterministic order, for interface-call resolution.
type chaIndex struct {
	named []*types.Named
}

func buildCHAIndex(pkgs []*Package) *chaIndex {
	idx := &chaIndex{}
	for _, pkg := range pkgs {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			idx.named = append(idx.named, named)
		}
	}
	return idx
}

// implementations returns the concrete analyzed methods an interface
// method call may dispatch to.
func (idx *chaIndex) implementations(ifaceMethod *types.Func) []*types.Func {
	recv := ifaceMethod.Type().(*types.Signature).Recv().Type()
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	for _, named := range idx.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(ifaceMethod.Pkg(), ifaceMethod.Name())
		if sel == nil {
			continue
		}
		if m, ok := sel.Obj().(*types.Func); ok {
			out = append(out, m)
		}
	}
	return out
}
