package analysis

import (
	"go/ast"
	"testing"

	"hvac/internal/analysis/cfg"
)

// TestCFGOverWholeModule is the cfg package's regression net: it builds
// a control-flow graph for every function and function literal in the
// module — every real control shape the codebase uses — and holds each
// one to the structural invariants (entry/exit placement, edge
// symmetry, reachability). A builder bug that survives the unit tests'
// hand-written shapes gets caught here by whatever real function uses
// the shape.
func TestCFGOverWholeModule(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	fset := l.Fset()
	built := 0
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch n := n.(type) {
				case *ast.FuncDecl:
					body = n.Body
				case *ast.FuncLit:
					body = n.Body
				}
				if body == nil {
					return true
				}
				g := cfg.New(body)
				if err := cfg.Check(g); err != nil {
					t.Errorf("%s: %v", fset.Position(body.Pos()), err)
				}
				// Rebuilding must reproduce the graph bit-for-bit:
				// analyzer output ordering depends on it.
				if a, b := g.Fingerprint(), cfg.New(body).Fingerprint(); a != b {
					t.Errorf("%s: fingerprint not deterministic: %x != %x", fset.Position(body.Pos()), a, b)
				}
				built++
				return true
			})
		}
	}
	if built < 100 {
		t.Fatalf("built only %d CFGs; expected the whole module (loader regression?)", built)
	}
}
