package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/cfg"
)

// StatPair enforces the counter-accounting identities the chaos tier
// checks dynamically (Hits+ReadThroughs == served, one open outcome
// per call), declared in source via //hvac:pair comments on stats
// struct fields:
//
//	//hvac:pair <group> left|right   — sum-equality: every CFG path
//	    must bump the left and right sides of <group> by equal
//	    amounts before returning.
//	//hvac:pair <group> oneof        — exclusivity: no CFG path may
//	    bump two different members of <group>.
//
// Fields of sync/atomic integer mirrors (the live-counter struct
// behind a snapshot) join a group automatically when their name
// matches a declared member case-insensitively, so `s.stats.opens`
// counts as ServerStats.Opens.
//
// Bumps are recognized as field++ / field += e / field.Add(e),
// including inside function literals passed to a call on the current
// path (the client's c.bump(func(s *ClientStats){...}) idiom). A
// function whose one-sided bump is deliberate carries a doc line
//
//	//hvac:pair-split <group> <reason>
//
// which exempts exactly that group in that function.
var StatPair = &Analyzer{
	Name:      "statpair",
	Doc:       "declared //hvac:pair counter identities hold on every CFG path",
	RunModule: runStatPair,
}

const (
	pairMarker      = "//hvac:pair "
	pairSplitMarker = "//hvac:pair-split"
)

// pairGroup is one declared identity.
type pairGroup struct {
	name  string
	oneof bool
	pos   token.Pos
	// members lists declared and mirror fields in declaration order.
	members []*types.Var
	roles   map[*types.Var]string // left | right | oneof
}

type statPair struct {
	pass     *ModulePass
	groups   map[string]*pairGroup
	order    []string
	memberOf map[*types.Var]*pairGroup
	// split maps function -> groups its doc exempts.
	split map[*types.Func]map[string]bool
}

func runStatPair(p *ModulePass) {
	sp := &statPair{
		pass:     p,
		groups:   map[string]*pairGroup{},
		memberOf: map[*types.Var]*pairGroup{},
		split:    map[*types.Func]map[string]bool{},
	}
	sp.collectGroups()
	if len(sp.groups) == 0 {
		return
	}
	sp.collectMirrors()
	sp.collectSplits()
	sp.validateGroups()
	for _, n := range p.Graph.Nodes() {
		// Function literals are analyzed inline at their call sites: the
		// bump(func(s *Stats){...}) idiom attributes the literal's bumps
		// to the calling path.
		if n.Body == nil || n.Func == nil {
			continue
		}
		sp.checkFunc(n)
	}
}

// collectGroups parses //hvac:pair field annotations.
func (sp *statPair) collectGroups() {
	for _, pkg := range sp.pass.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				st, ok := x.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg == nil {
							continue
						}
						for _, c := range cg.List {
							if strings.HasPrefix(c.Text, pairMarker) {
								sp.addMember(pkg, field, c)
							}
						}
					}
				}
				return true
			})
		}
	}
}

func (sp *statPair) addMember(pkg *Package, field *ast.Field, c *ast.Comment) {
	parts := strings.Fields(strings.TrimPrefix(c.Text, pairMarker))
	if len(parts) != 2 || (parts[1] != "left" && parts[1] != "right" && parts[1] != "oneof") {
		sp.pass.Reportf(c.Pos(), "malformed pair annotation: want //hvac:pair <group> left|right|oneof")
		return
	}
	group, role := parts[0], parts[1]
	g := sp.groups[group]
	if g == nil {
		g = &pairGroup{name: group, roles: map[*types.Var]string{}, pos: c.Pos(), oneof: role == "oneof"}
		sp.groups[group] = g
		sp.order = append(sp.order, group)
	}
	for _, name := range field.Names {
		v, ok := pkg.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		g.members = append(g.members, v)
		g.roles[v] = role
		sp.memberOf[v] = g
	}
}

// collectMirrors joins sync/atomic integer fields whose names match a
// declared member case-insensitively — the live-counter struct behind
// a stats snapshot.
func (sp *statPair) collectMirrors() {
	want := map[string]*types.Var{} // lowercase member name -> declared member
	for _, gname := range sp.order {
		for _, m := range sp.groups[gname].members {
			want[strings.ToLower(m.Name())] = m
		}
	}
	for _, pkg := range sp.pass.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if sp.memberOf[f] != nil || !isAtomicInt(f.Type()) {
					continue
				}
				decl, ok := want[strings.ToLower(f.Name())]
				if !ok || decl.Pkg() != f.Pkg() {
					continue
				}
				g := sp.memberOf[decl]
				g.members = append(g.members, f)
				g.roles[f] = g.roles[decl]
				sp.memberOf[f] = g
			}
		}
	}
}

// isAtomicInt reports whether t is a sync/atomic integer counter.
func isAtomicInt(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch named.Obj().Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}

// collectSplits parses //hvac:pair-split function doc exemptions.
func (sp *statPair) collectSplits() {
	for _, pkg := range sp.pass.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				for _, c := range fd.Doc.List {
					if !strings.HasPrefix(c.Text, pairSplitMarker) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(c.Text, pairSplitMarker))
					group, reason, _ := strings.Cut(rest, " ")
					if group == "" || strings.TrimSpace(reason) == "" {
						sp.pass.Reportf(c.Pos(), "malformed pair-split annotation: want //hvac:pair-split <group> <reason>")
						continue
					}
					if sp.groups[group] == nil {
						sp.pass.Reportf(c.Pos(), "pair-split names unknown group %q", group)
						continue
					}
					if fn != nil {
						if sp.split[fn] == nil {
							sp.split[fn] = map[string]bool{}
						}
						sp.split[fn][group] = true
					}
				}
			}
		}
	}
}

// validateGroups reports structurally broken groups and prunes them.
func (sp *statPair) validateGroups() {
	valid := sp.order[:0]
	for _, name := range sp.order {
		g := sp.groups[name]
		var left, right, oneof int
		for _, m := range g.members {
			switch g.roles[m] {
			case "left":
				left++
			case "right":
				right++
			case "oneof":
				oneof++
			}
		}
		switch {
		case oneof > 0 && (left > 0 || right > 0):
			sp.pass.Reportf(g.pos, "pair group %q mixes oneof with left/right roles", name)
			delete(sp.groups, name)
		case oneof == 0 && (left == 0 || right == 0):
			sp.pass.Reportf(g.pos, "pair group %q needs at least one left and one right member", name)
			delete(sp.groups, name)
		default:
			valid = append(valid, name)
			continue
		}
		for v, g2 := range sp.memberOf {
			if g2.name == name {
				delete(sp.memberOf, v)
			}
		}
	}
	sp.order = valid
}

// pairDelta is one path's left-minus-right balance for one group: a
// constant part plus symbolic bump amounts by expression text.
type pairDelta struct {
	c   int64
	sym map[string]int64
}

func (d pairDelta) add(sign int64, c int64, sym string) pairDelta {
	out := pairDelta{c: d.c, sym: map[string]int64{}}
	for k, v := range d.sym {
		out.sym[k] = v
	}
	if sym == "" {
		out.c += sign * c
	} else {
		out.sym[sym] += sign * c
		if out.sym[sym] == 0 {
			delete(out.sym, sym)
		}
	}
	return out
}

func (d pairDelta) zero() bool { return d.c == 0 && len(d.sym) == 0 }

func (d pairDelta) String() string {
	var parts []string
	if d.c != 0 {
		parts = append(parts, fmt.Sprintf("%+d", d.c))
	}
	keys := make([]string, 0, len(d.sym))
	for k := range d.sym {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%+d*(%s)", d.sym[k], k))
	}
	if len(parts) == 0 {
		return "0"
	}
	return strings.Join(parts, " ")
}

func (d pairDelta) key() string { return d.String() }

// groupFact is the per-path state of one group: the set of possible
// balances (equality groups) or the members already bumped (oneof).
type groupFact struct {
	nets    map[string]pairDelta
	members []*types.Var
	poison  bool
}

// maxNets caps the balance set; an overflowing set (an unbalanced
// loop) poisons the fact, which reports at the exits.
const maxNets = 8

// bump is one recognized counter increment.
type statBump struct {
	member *types.Var
	sign   int64 // +1 for ++, Add(e), += e; -1 for --, -= e
	c      int64
	sym    string
	pos    token.Pos
}

// checkFunc runs the per-path identity check over one declared
// function.
func (sp *statPair) checkFunc(n *callgraph.Node) {
	// Index the bumps each CFG block node contains (inlining function
	// literals passed as call arguments on the path).
	bumpsAt := map[ast.Node][]statBump{}
	found := false
	var scanLit func(node ast.Node) []statBump
	scanLit = func(node ast.Node) []statBump {
		var out []statBump
		ast.Inspect(node, func(x ast.Node) bool {
			if b, ok := sp.bumpOf(n, x); ok {
				out = append(out, b)
			}
			return true
		})
		return out
	}
	scanNode := func(node ast.Node) []statBump {
		var out []statBump
		ast.Inspect(node, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				// A literal argument runs (at most once) when the call
				// runs: attribute its bumps to this path.
				out = append(out, scanLit(lit.Body)...)
				return false
			}
			if b, ok := sp.bumpOf(n, x); ok {
				out = append(out, b)
			}
			return true
		})
		return out
	}

	g := cfg.New(n.Body)
	for _, blk := range g.Blocks {
		for _, node := range blk.Nodes {
			if _, done := bumpsAt[node]; done {
				continue
			}
			bs := scanNode(node)
			bumpsAt[node] = bs
			if len(bs) > 0 {
				found = true
			}
		}
	}
	if !found {
		return
	}

	skip := sp.split[n.Func]
	type fact = map[string]*groupFact
	getGF := func(f fact, name string) *groupFact {
		gf := f[name]
		if gf == nil {
			gf = &groupFact{nets: map[string]pairDelta{"0": {}}}
			f[name] = gf
		}
		return gf
	}
	apply := func(f fact, b statBump, report bool) {
		grp := sp.memberOf[b.member]
		if grp == nil || skip[grp.name] {
			return
		}
		gf := getGF(f, grp.name)
		if grp.oneof {
			if report {
				for _, m := range gf.members {
					if m != b.member && declaredPeer(grp, m) != declaredPeer(grp, b.member) {
						sp.pass.Reportf(b.pos,
							"path already counted %s of oneof group %q; one call must count one outcome (or annotate //hvac:pair-split %s <reason>)",
							m.Name(), grp.name, grp.name)
						break
					}
				}
			}
			found := false
			for _, m := range gf.members {
				if m == b.member {
					found = true
				}
			}
			if !found {
				gf.members = append(gf.members, b.member)
			}
			return
		}
		sign := b.sign
		if grp.roles[b.member] == "right" {
			sign = -sign
		}
		next := map[string]pairDelta{}
		for _, d := range gf.nets {
			nd := d.add(sign, b.c, b.sym)
			next[nd.key()] = nd
		}
		gf.nets = next
		if len(gf.nets) > maxNets {
			gf.poison = true
		}
	}

	fw := &cfg.Forward[fact]{
		Graph: g,
		Entry: fact{},
		Transfer: func(b *cfg.Block, in fact) fact {
			for _, node := range b.Nodes {
				for _, bump := range bumpsAt[node] {
					apply(in, bump, false)
				}
			}
			return in
		},
		Join:  joinPairFacts,
		Equal: equalPairFacts,
		Clone: clonePairFacts,
	}
	ins := fw.Fixpoint()

	// Replay for oneof reporting and collect exit balances.
	for _, blk := range g.Blocks {
		if blk.Index >= len(ins) || ins[blk.Index] == nil {
			continue
		}
		cur := clonePairFacts(ins[blk.Index])
		for _, node := range blk.Nodes {
			for _, bump := range bumpsAt[node] {
				apply(cur, bump, true)
			}
		}
		exits := false
		for _, succ := range blk.Succs {
			if succ == g.Exit {
				exits = true
			}
		}
		if !exits || isPanicExit(blk) {
			continue
		}
		pos := n.Pos
		if blk.Term != nil {
			pos = blk.Term.Pos()
		}
		for _, name := range sp.order {
			gf := cur[name]
			if gf == nil || sp.groups[name] == nil || sp.groups[name].oneof || skip[name] {
				continue
			}
			if gf.poison {
				sp.pass.Reportf(pos,
					"a loop on this path bumps pair group %q unevenly: balance the counters per iteration or annotate //hvac:pair-split %s <reason>",
					name, name)
				continue
			}
			nets := make([]string, 0, len(gf.nets))
			for _, d := range gf.nets {
				if !d.zero() {
					nets = append(nets, d.String())
				}
			}
			if len(nets) == 0 {
				continue
			}
			sort.Strings(nets)
			sp.pass.Reportf(pos,
				"path exits with pair group %q unbalanced (left-right = %s): bump the balancing side or annotate //hvac:pair-split %s <reason>",
				name, strings.Join(nets, " | "), name)
		}
	}
}

// declaredPeer maps a mirror member back to its declared field, so a
// declared counter and its atomic mirror never conflict with each
// other in a oneof group.
func declaredPeer(g *pairGroup, m *types.Var) string { return strings.ToLower(m.Name()) }

// isPanicExit reports whether the block leaves the function by
// panicking — crash paths do not owe balanced counters.
func isPanicExit(blk *cfg.Block) bool {
	call, ok := blk.Term.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// bumpOf recognizes one counter increment statement or call.
func (sp *statPair) bumpOf(n *callgraph.Node, x ast.Node) (statBump, bool) {
	info := n.Pkg.Info
	switch x := x.(type) {
	case *ast.IncDecStmt:
		if v := selectedField(info, x.X); v != nil && sp.memberOf[v] != nil {
			sign := int64(1)
			if x.Tok == token.DEC {
				sign = -1
			}
			return statBump{member: v, sign: sign, c: 1, pos: x.Pos()}, true
		}
	case *ast.AssignStmt:
		if len(x.Lhs) != 1 || len(x.Rhs) != 1 {
			break
		}
		var sign int64
		switch x.Tok {
		case token.ADD_ASSIGN:
			sign = 1
		case token.SUB_ASSIGN:
			sign = -1
		default:
			return statBump{}, false
		}
		if v := selectedField(info, x.Lhs[0]); v != nil && sp.memberOf[v] != nil {
			c, sym := amountOf(info, x.Rhs[0])
			return statBump{member: v, sign: sign, c: c, sym: sym, pos: x.Pos()}, true
		}
	case *ast.CallExpr:
		sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" || len(x.Args) != 1 {
			break
		}
		if v := selectedField(info, sel.X); v != nil && sp.memberOf[v] != nil {
			c, sym := amountOf(info, x.Args[0])
			return statBump{member: v, sign: 1, c: c, sym: sym, pos: x.Pos()}, true
		}
	}
	return statBump{}, false
}

// selectedField resolves expr to the struct field it selects, or nil.
func selectedField(info *types.Info, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}

// amountOf evaluates a bump amount: a constant int when the type
// checker knows one, otherwise the expression text as a symbolic unit
// (so `+= int64(n)` on both sides cancels).
func amountOf(info *types.Info, e ast.Expr) (int64, string) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if c, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact {
			return c, ""
		}
	}
	return 1, types.ExprString(ast.Unparen(e))
}

func joinPairFacts(a, b map[string]*groupFact) map[string]*groupFact {
	for name, gb := range b {
		ga := a[name]
		if ga == nil {
			a[name] = cloneGroupFact(gb)
			continue
		}
		for k, d := range gb.nets {
			ga.nets[k] = d
		}
		if len(ga.nets) > maxNets {
			ga.poison = true
		}
		for _, m := range gb.members {
			found := false
			for _, ma := range ga.members {
				if ma == m {
					found = true
				}
			}
			if !found {
				ga.members = append(ga.members, m)
			}
		}
		ga.poison = ga.poison || gb.poison
	}
	return a
}

func equalPairFacts(a, b map[string]*groupFact) bool {
	if len(a) != len(b) {
		return false
	}
	for name, ga := range a {
		gb := b[name]
		if gb == nil || ga.poison != gb.poison || len(ga.nets) != len(gb.nets) || len(ga.members) != len(gb.members) {
			return false
		}
		for k := range ga.nets {
			if _, ok := gb.nets[k]; !ok {
				return false
			}
		}
		for _, m := range ga.members {
			found := false
			for _, mb := range gb.members {
				if mb == m {
					found = true
				}
			}
			if !found {
				return false
			}
		}
	}
	return true
}

func clonePairFacts(f map[string]*groupFact) map[string]*groupFact {
	out := make(map[string]*groupFact, len(f))
	for name, gf := range f {
		out[name] = cloneGroupFact(gf)
	}
	return out
}

func cloneGroupFact(gf *groupFact) *groupFact {
	ng := &groupFact{nets: make(map[string]pairDelta, len(gf.nets)), poison: gf.poison}
	for k, d := range gf.nets {
		ng.nets[k] = d
	}
	ng.members = append(ng.members, gf.members...)
	return ng
}
