package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hvac/internal/analysis/callgraph"
)

// UntrustedLen tracks dataflow from wire-decoded length fields in
// internal/transport (Request.Len/Off, Response.Size, and raw
// binary.*Endian.UintN decodes in that package) to allocation and read
// sizes — make, io.CopyN, io.ReadFull on a resliced buffer — that are
// reached without a bounds check. A corrupt or hostile frame then picks
// the allocation size, which is the DoS the faultnet Corrupter probes
// dynamically; this analyzer proves the absence of the path statically.
//
// Taint propagates through assignments, struct fields, composite
// literals, arithmetic, conversions, and (via the call graph) function
// results. A comparison against a tainted value in an if condition
// before the sink sanitizes it.
var UntrustedLen = &Analyzer{
	Name:      "untrustedlen",
	Doc:       "wire-decoded lengths reaching make/io.ReadFull sizes without a bounds check",
	RunModule: runUntrustedLen,
}

const transportPathSuffix = "internal/transport"

// ulState is the module-wide fixed point: which fields carry untrusted
// lengths, which functions return them, and each function's tainted
// locals.
type ulState struct {
	pass    *ModulePass
	fields  map[*types.Var]bool      // tainted struct fields (seeded from transport)
	returns map[*callgraph.Node]bool // functions whose result is tainted
	locals  map[*callgraph.Node]map[*types.Var]bool
	changed bool
}

func runUntrustedLen(p *ModulePass) {
	st := &ulState{
		pass:    p,
		fields:  seedTransportFields(p),
		returns: make(map[*callgraph.Node]bool),
		locals:  make(map[*callgraph.Node]map[*types.Var]bool),
	}
	if len(st.fields) == 0 {
		return // no transport package in scope: nothing is untrusted
	}
	for _, n := range p.Graph.Nodes() {
		st.locals[n] = make(map[*types.Var]bool)
	}
	// Propagate until no new field, local, or return taint appears. Each
	// round re-walks every body, so taint crosses package boundaries in
	// whichever direction the call graph runs.
	for {
		st.changed = false
		for _, n := range p.Graph.Nodes() {
			if n.Body != nil {
				st.propagate(n)
			}
		}
		if !st.changed {
			break
		}
	}
	for _, n := range p.Graph.Nodes() {
		if n.Body != nil {
			st.reportSinks(n)
		}
	}
}

// seedTransportFields marks the wire-decoded integer length fields of the
// transport package's exported structs as taint sources.
func seedTransportFields(p *ModulePass) map[*types.Var]bool {
	seeds := make(map[*types.Var]bool)
	var tpkgs []*types.Package
	for _, pkg := range p.Pkgs {
		if strings.HasSuffix(pkg.ImportPath, transportPathSuffix) {
			tpkgs = append(tpkgs, pkg.Types)
		}
	}
	if len(tpkgs) == 0 {
		if t := p.FindPackage("hvac/" + transportPathSuffix); t != nil {
			tpkgs = append(tpkgs, t)
		}
	}
	for _, tpkg := range tpkgs {
		if tpkg == nil {
			continue
		}
		scope := tpkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			strct, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < strct.NumFields(); i++ {
				f := strct.Field(i)
				switch f.Name() {
				case "Len", "Off", "Size":
					if basic, ok := f.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
						seeds[f] = true
					}
				}
			}
		}
	}
	return seeds
}

// propagate runs one round of taint propagation over n's body.
func (st *ulState) propagate(n *callgraph.Node) {
	info := n.Pkg.Info
	local := st.locals[n]
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break // multi-value RHS: no claim
				}
				if !st.tainted(n, x.Rhs[i]) {
					continue
				}
				st.taintTarget(info, local, lhs)
			}
		case *ast.ValueSpec:
			for i, name := range x.Names {
				if i < len(x.Values) && st.tainted(n, x.Values[i]) {
					if v, ok := info.Defs[name].(*types.Var); ok {
						st.mark(local, v)
					}
				}
			}
		case *ast.CompositeLit:
			st.taintCompositeLit(n, x)
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if st.tainted(n, res) && !st.returns[n] {
					st.returns[n] = true
					st.changed = true
				}
			}
		}
		return true
	})
}

// taintTarget marks an assignment target: a local variable or a struct
// field (which taints the field module-wide).
func (st *ulState) taintTarget(info *types.Info, local map[*types.Var]bool, lhs ast.Expr) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, ok := info.Defs[e].(*types.Var); ok {
			st.mark(local, v)
		} else if v, ok := info.Uses[e].(*types.Var); ok {
			st.mark(local, v)
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			st.markField(v)
		}
	}
}

// taintCompositeLit taints struct fields initialized from tainted values,
// e.g. &File{size: int64(resp.Size)}.
func (st *ulState) taintCompositeLit(n *callgraph.Node, lit *ast.CompositeLit) {
	info := n.Pkg.Info
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !st.tainted(n, kv.Value) {
				continue
			}
			if v, ok := info.Uses[key].(*types.Var); ok {
				st.markField(v)
			}
		} else if i < strct.NumFields() && st.tainted(n, elt) {
			st.markField(strct.Field(i))
		}
	}
}

func (st *ulState) mark(local map[*types.Var]bool, v *types.Var) {
	if v.IsField() {
		st.markField(v)
		return
	}
	if !local[v] {
		local[v] = true
		st.changed = true
	}
}

func (st *ulState) markField(v *types.Var) {
	if !st.fields[v] {
		st.fields[v] = true
		st.changed = true
	}
}

// tainted reports whether the expression carries an untrusted length in
// node n.
func (st *ulState) tainted(n *callgraph.Node, expr ast.Expr) bool {
	info := n.Pkg.Info
	local := st.locals[n]
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok {
			return local[v] || (v.IsField() && st.fields[v])
		}
	case *ast.SelectorExpr:
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return st.fields[v]
		}
	case *ast.BinaryExpr:
		return st.tainted(n, e.X) || st.tainted(n, e.Y)
	case *ast.CallExpr:
		// Conversion: int64(x) carries x's taint.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return st.tainted(n, e.Args[0])
		}
		if fn := calleeFunc2(info, e); fn != nil {
			// Raw wire decode inside the transport package.
			if fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
				strings.HasPrefix(fn.Name(), "Uint") &&
				strings.HasSuffix(n.Pkg.Path, transportPathSuffix) {
				return true
			}
			if callee := st.pass.Graph.NodeOf(fn); callee != nil {
				return st.returns[callee]
			}
		}
	}
	return false
}

// lenCheck records a comparison over an object in an if condition; a
// later sink over the same object counts as bounds-checked.
type lenCheck struct {
	obj *types.Var
	pos token.Pos
}

// reportSinks scans n for make/io.CopyN/io.ReadFull sites fed by tainted
// lengths with no prior comparison on the same variable.
func (st *ulState) reportSinks(n *callgraph.Node) {
	info := n.Pkg.Info
	var checks []lenCheck
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		switch x := x.(type) {
		case *ast.IfStmt:
			ast.Inspect(x.Cond, func(y ast.Node) bool {
				if v := exprVar(info, y); v != nil {
					checks = append(checks, lenCheck{obj: v, pos: x.Pos()})
				}
				return true
			})
		case *ast.CallExpr:
			st.checkSink(n, x, checks)
		}
		return true
	})
}

// checkSink reports one sink call if any of its size arguments is tainted
// and unchecked.
func (st *ulState) checkSink(n *callgraph.Node, call *ast.CallExpr, checks []lenCheck) {
	info := n.Pkg.Info
	var sizeArgs []ast.Expr
	var what string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "make" && len(call.Args) >= 2 {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				sizeArgs, what = call.Args[1:], "make"
			}
		}
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "io" {
			break
		}
		switch fn.Name() {
		case "CopyN":
			if len(call.Args) == 3 {
				sizeArgs, what = call.Args[2:], "io.CopyN"
			}
		case "ReadFull", "ReadAtLeast":
			// The read size is the buffer length: flag buf[:n] reslices.
			if len(call.Args) >= 2 {
				if sl, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr); ok && sl.High != nil {
					sizeArgs, what = []ast.Expr{sl.High}, "io."+fn.Name()
				}
			}
		}
	}
	for _, arg := range sizeArgs {
		if !st.tainted(n, arg) || st.checked(info, arg, checks, call.Pos()) {
			continue
		}
		st.pass.Reportf(call.Pos(),
			"%s size %s derives from a wire-decoded length without a bounds check; compare it against a limit (e.g. transport.MaxFrame) before this call",
			what, types.ExprString(arg))
	}
}

// checked reports whether some variable of the sink argument appears in
// an if-condition comparison before the sink.
func (st *ulState) checked(info *types.Info, arg ast.Expr, checks []lenCheck, sink token.Pos) bool {
	ok := false
	ast.Inspect(arg, func(y ast.Node) bool {
		v := exprVar(info, y)
		if v == nil {
			return true
		}
		for _, c := range checks {
			if c.obj == v && c.pos < sink {
				ok = true
			}
		}
		return true
	})
	return ok
}

// exprVar resolves an identifier node to its variable object, or nil.
func exprVar(info *types.Info, x ast.Node) *types.Var {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
