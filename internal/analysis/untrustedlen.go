package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hvac/internal/analysis/callgraph"
	"hvac/internal/analysis/valueflow"
)

// UntrustedLen tracks dataflow from wire-decoded length fields in
// internal/transport (Request.Len/Off, Response.Size, and raw
// binary.*Endian.UintN decodes in that package) to allocation and read
// sizes — make, io.CopyN, io.ReadFull on a resliced buffer — that are
// reached without a bounds check. A corrupt or hostile frame then picks
// the allocation size, which is the DoS the faultnet Corrupter probes
// dynamically; this analyzer proves the absence of the path statically.
//
// Propagation is the valueflow.Taint engine: assignments, struct
// fields, composite literals, arithmetic, conversions, and (via the
// call graph) function results. A comparison against a tainted value
// in an if condition before the sink sanitizes it.
var UntrustedLen = &Analyzer{
	Name:      "untrustedlen",
	Doc:       "wire-decoded lengths reaching make/io.ReadFull sizes without a bounds check",
	RunModule: runUntrustedLen,
}

const transportPathSuffix = "internal/transport"

// ulSinks holds the sink-reporting state over a finished taint run.
type ulSinks struct {
	pass  *ModulePass
	taint *valueflow.Taint
}

func runUntrustedLen(p *ModulePass) {
	seeds := seedTransportFields(p)
	if len(seeds) == 0 {
		return // no transport package in scope: nothing is untrusted
	}
	t := &valueflow.Taint{
		Graph: p.Graph,
		Seeds: seeds,
		// Raw wire decode inside the transport package is an original
		// source. Argument propagation stays off: the sinks care about
		// where lengths land, not every helper they pass through.
		SourceCall: func(n *callgraph.Node, call *ast.CallExpr) bool {
			fn := valueflow.StaticCallee(n.Pkg.Info, call)
			return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" &&
				strings.HasPrefix(fn.Name(), "Uint") &&
				strings.HasSuffix(n.Pkg.Path, transportPathSuffix)
		},
	}
	t.Run()
	st := &ulSinks{pass: p, taint: t}
	for _, n := range p.Graph.Nodes() {
		if n.Body != nil {
			st.reportSinks(n)
		}
	}
}

// seedTransportFields marks the wire-decoded integer length fields of the
// transport package's exported structs as taint sources.
func seedTransportFields(p *ModulePass) map[*types.Var]bool {
	seeds := make(map[*types.Var]bool)
	var tpkgs []*types.Package
	for _, pkg := range p.Pkgs {
		if strings.HasSuffix(pkg.ImportPath, transportPathSuffix) {
			tpkgs = append(tpkgs, pkg.Types)
		}
	}
	if len(tpkgs) == 0 {
		if t := p.FindPackage("hvac/" + transportPathSuffix); t != nil {
			tpkgs = append(tpkgs, t)
		}
	}
	for _, tpkg := range tpkgs {
		if tpkg == nil {
			continue
		}
		scope := tpkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			strct, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			for i := 0; i < strct.NumFields(); i++ {
				f := strct.Field(i)
				switch f.Name() {
				case "Len", "Off", "Size":
					if basic, ok := f.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsInteger != 0 {
						seeds[f] = true
					}
				}
			}
		}
	}
	return seeds
}

// lenCheck records a comparison over an object in an if condition; a
// later sink over the same object counts as bounds-checked.
type lenCheck struct {
	obj *types.Var
	pos token.Pos
}

// reportSinks scans n for make/io.CopyN/io.ReadFull sites fed by tainted
// lengths with no prior comparison on the same variable.
func (st *ulSinks) reportSinks(n *callgraph.Node) {
	info := n.Pkg.Info
	var checks []lenCheck
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		switch x := x.(type) {
		case *ast.IfStmt:
			ast.Inspect(x.Cond, func(y ast.Node) bool {
				if v := exprVar(info, y); v != nil {
					checks = append(checks, lenCheck{obj: v, pos: x.Pos()})
				}
				return true
			})
		case *ast.CallExpr:
			st.checkSink(n, x, checks)
		}
		return true
	})
}

// checkSink reports one sink call if any of its size arguments is tainted
// and unchecked.
func (st *ulSinks) checkSink(n *callgraph.Node, call *ast.CallExpr, checks []lenCheck) {
	info := n.Pkg.Info
	var sizeArgs []ast.Expr
	var what string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "make" && len(call.Args) >= 2 {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				sizeArgs, what = call.Args[1:], "make"
			}
		}
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "io" {
			break
		}
		switch fn.Name() {
		case "CopyN":
			if len(call.Args) == 3 {
				sizeArgs, what = call.Args[2:], "io.CopyN"
			}
		case "ReadFull", "ReadAtLeast":
			// The read size is the buffer length: flag buf[:n] reslices.
			if len(call.Args) >= 2 {
				if sl, ok := ast.Unparen(call.Args[1]).(*ast.SliceExpr); ok && sl.High != nil {
					sizeArgs, what = []ast.Expr{sl.High}, "io."+fn.Name()
				}
			}
		}
	}
	for _, arg := range sizeArgs {
		if !st.taint.Tainted(n, arg) || st.checked(info, arg, checks, call.Pos()) {
			continue
		}
		st.pass.Reportf(call.Pos(),
			"%s size %s derives from a wire-decoded length without a bounds check; compare it against a limit (e.g. transport.MaxFrame) before this call",
			what, types.ExprString(arg))
	}
}

// checked reports whether some variable of the sink argument appears in
// an if-condition comparison before the sink.
func (st *ulSinks) checked(info *types.Info, arg ast.Expr, checks []lenCheck, sink token.Pos) bool {
	ok := false
	ast.Inspect(arg, func(y ast.Node) bool {
		v := exprVar(info, y)
		if v == nil {
			return true
		}
		for _, c := range checks {
			if c.obj == v && c.pos < sink {
				ok = true
			}
		}
		return true
	})
	return ok
}

// exprVar resolves an identifier node to its variable object, or nil.
func exprVar(info *types.Info, x ast.Node) *types.Var {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
