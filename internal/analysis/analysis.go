// Package analysis is hvaclint: a project-specific static-analysis
// framework for the HVAC code base, built only on the standard library's
// go/ast, go/parser and go/types.
//
// HVAC's correctness rests on invariants the Go compiler cannot check:
// the simulation kernel promises bit-for-bit reproducible runs, the
// client must never silently bypass the cache and hit the PFS outside
// its designated fallback sites, and the real-mode server and transport
// are heavily concurrent. Each Analyzer here pins one of those
// invariants down mechanically; cmd/hvaclint runs them all over the
// module and fails the build on findings.
//
// Findings can be suppressed per line with a reasoned comment:
//
//	//hvaclint:ignore <rule> <reason>
//
// placed either at the end of the offending line or alone on the line
// above it. A suppression without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Rule is the reporting analyzer's name.
	Rule string
	// Message describes the violation.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// An Analyzer checks one invariant over one package.
type Analyzer struct {
	// Name is the rule name used in output and suppression comments.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Report.
	Run func(*Pass)
}

// A Pass carries one package through one analyzer.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Analyzers returns the full hvaclint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		PFSBypass,
		LockSafe,
		ErrDrop,
	}
}

// Run applies the analyzers to pkg, resolves suppression comments, and
// returns the surviving diagnostics sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Package: pkg, analyzer: a, diags: &diags}
		a.Run(pass)
	}
	diags = applySuppressions(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// suppression is one parsed //hvaclint:ignore comment.
type suppression struct {
	rule   string
	reason string
	pos    token.Position
}

const ignorePrefix = "//hvaclint:ignore"

// parseSuppressions collects the //hvaclint:ignore comments of a file,
// keyed by the line they apply to: their own line, which covers a
// trailing comment, plus the following line for a standalone comment.
func parseSuppressions(pkg *Package, f *ast.File) (map[string][]suppression, []Diagnostic) {
	byKey := make(map[string][]suppression)
	var malformed []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			rule, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if rule == "" || reason == "" {
				malformed = append(malformed, Diagnostic{
					Pos:     pos,
					Rule:    "suppress",
					Message: "malformed suppression: want //hvaclint:ignore <rule> <reason>",
				})
				continue
			}
			s := suppression{rule: rule, reason: reason, pos: pos}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := fmt.Sprintf("%s:%d", pos.Filename, line)
				byKey[key] = append(byKey[key], s)
			}
		}
	}
	return byKey, malformed
}

// applySuppressions drops diagnostics covered by a reasoned
// //hvaclint:ignore comment and appends diagnostics for malformed ones.
func applySuppressions(pkg *Package, diags []Diagnostic) []Diagnostic {
	byKey := make(map[string][]suppression)
	var out []Diagnostic
	for _, f := range pkg.Files {
		m, malformed := parseSuppressions(pkg, f)
		for k, v := range m {
			byKey[k] = append(byKey[k], v...)
		}
		out = append(out, malformed...)
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		suppressed := false
		for _, s := range byKey[key] {
			if s.rule == d.Rule {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
