// Package analysis is hvaclint: a project-specific static-analysis
// framework for the HVAC code base, built only on the standard library's
// go/ast, go/parser and go/types.
//
// HVAC's correctness rests on invariants the Go compiler cannot check:
// the simulation kernel promises bit-for-bit reproducible runs, the
// client must never silently bypass the cache and hit the PFS outside
// its designated fallback sites, and the real-mode server and transport
// are heavily concurrent. Each Analyzer here pins one of those
// invariants down mechanically; cmd/hvaclint runs them all over the
// module and fails the build on findings.
//
// Findings can be suppressed per line with a reasoned comment:
//
//	//hvaclint:ignore <rule> <reason>
//
// placed either at the end of the offending line or alone on the line
// above it. A suppression without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"hvac/internal/analysis/callgraph"
)

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Pos locates the finding (file, line, column).
	Pos token.Position
	// Rule is the reporting analyzer's name.
	Rule string
	// Message describes the violation.
	Message string
	// Suppressed marks a finding covered by a reasoned
	// //hvaclint:ignore comment. Suppressed findings do not gate the
	// build but survive into -format json output for auditing.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Message)
}

// An Analyzer checks one invariant over one package (Run) or over the
// whole analyzed package set at once (RunModule). Exactly one of the two
// hooks is set: interprocedural analyzers use RunModule, which sees every
// package plus the shared call graph.
type Analyzer struct {
	// Name is the rule name used in output and suppression comments.
	Name string
	// Doc is a one-line description of the protected invariant.
	Doc string
	// Run inspects the pass's package and reports findings via
	// Pass.Report.
	Run func(*Pass)
	// RunModule, if set, runs once over every analyzed package with the
	// shared call graph — the hook for interprocedural analyzers.
	RunModule func(*ModulePass)
}

// A ModulePass carries the whole analyzed package set through one
// interprocedural analyzer.
type ModulePass struct {
	// Pkgs are the analyzed packages, sorted by import path.
	Pkgs []*Package
	// Graph is the CHA call graph over Pkgs.
	Graph *callgraph.Graph
	// Fset positions every node of every package.
	Fset *token.FileSet

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// FindPackage resolves an import path to its type-checked package,
// searching the analyzed set first and the import graph second, so
// interprocedural analyzers can anchor on types (e.g. transport.Request)
// even when analyzing a subset of the module.
func (p *ModulePass) FindPackage(path string) *types.Package {
	for _, pkg := range p.Pkgs {
		if pkg.ImportPath == path {
			return pkg.Types
		}
	}
	seen := map[*types.Package]bool{}
	var find func(t *types.Package) *types.Package
	find = func(t *types.Package) *types.Package {
		if t == nil || seen[t] {
			return nil
		}
		seen[t] = true
		if t.Path() == path {
			return t
		}
		for _, imp := range t.Imports() {
			if found := find(imp); found != nil {
				return found
			}
		}
		return nil
	}
	for _, pkg := range p.Pkgs {
		if found := find(pkg.Types); found != nil {
			return found
		}
	}
	return nil
}

// A Pass carries one package through one analyzer.
type Pass struct {
	*Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Filename returns the base name of the file containing pos.
func (p *Pass) Filename(pos token.Pos) string {
	return filepath.Base(p.Fset.Position(pos).Filename)
}

// Analyzers returns the full hvaclint suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		PFSBypass,
		LockSafe,
		ErrDrop,
		LockOrder,
		GoroLeak,
		AtomicMix,
		UntrustedLen,
		OwnerPass,
		ChanLife,
		BlockGuard,
		StatPair,
	}
}

// ByName resolves a set of rule names to their analyzers, preserving
// suite order. Unknown names are an error listing the valid rules.
func ByName(names []string) ([]*Analyzer, error) {
	suite := Analyzers()
	want := make(map[string]bool, len(names))
	for _, n := range names {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []*Analyzer
	for _, a := range suite {
		if want[a.Name] {
			out = append(out, a)
			delete(want, a.Name)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for n := range want {
			unknown = append(unknown, n)
		}
		sort.Strings(unknown)
		valid := make([]string, len(suite))
		for i, a := range suite {
			valid[i] = a.Name
		}
		return nil, fmt.Errorf("unknown rule(s) %s (valid: %s)",
			strings.Join(unknown, ", "), strings.Join(valid, ", "))
	}
	return out, nil
}

// Timing is one analyzer's wall-clock cost over a run.
type Timing struct {
	Name    string
	Elapsed time.Duration
}

// Run applies the analyzers to one package, resolves suppression
// comments, and returns the surviving (unsuppressed) diagnostics sorted
// by position. Interprocedural analyzers see a one-package module.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	all := RunPackages([]*Package{pkg}, analyzers)
	out := all[:0]
	for _, d := range all {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// RunPackages applies the analyzers to the whole package set:
// per-package analyzers run over each package, interprocedural ones run
// once over the set with a shared call graph. Findings covered by a
// reasoned //hvaclint:ignore comment are marked Suppressed rather than
// dropped; the result is sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunPackagesTimed(pkgs, analyzers)
	return diags
}

// RunPackagesTimed is RunPackages plus a per-analyzer wall-clock
// breakdown in suite order; the first interprocedural analyzer's entry
// includes the shared call-graph construction.
func RunPackagesTimed(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	var graph *callgraph.Graph
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		switch {
		case a.RunModule != nil:
			if graph == nil {
				graph = BuildGraph(pkgs)
			}
			a.RunModule(&ModulePass{
				Pkgs: pkgs, Graph: graph, Fset: pkgs[0].Fset,
				analyzer: a, diags: &diags,
			})
		case a.Run != nil:
			for _, pkg := range pkgs {
				a.Run(&Pass{Package: pkg, analyzer: a, diags: &diags})
			}
		}
		timings = append(timings, Timing{Name: a.Name, Elapsed: time.Since(start)})
	}
	diags = applySuppressions(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags, timings
}

// BuildGraph constructs the shared CHA call graph over the package set.
func BuildGraph(pkgs []*Package) *callgraph.Graph {
	cg := make([]*callgraph.Package, len(pkgs))
	for i, pkg := range pkgs {
		cg[i] = &callgraph.Package{
			Path:  pkg.ImportPath,
			Files: pkg.Files,
			Info:  pkg.Info,
			Types: pkg.Types,
		}
	}
	return callgraph.Build(pkgs[0].Fset, cg)
}

// suppression is one parsed //hvaclint:ignore comment.
type suppression struct {
	rule   string
	reason string
	pos    token.Position
}

const ignorePrefix = "//hvaclint:ignore"

// parseSuppressions collects the //hvaclint:ignore comments of a file,
// keyed by the line they apply to: their own line, which covers a
// trailing comment, plus the following line for a standalone comment.
func parseSuppressions(pkg *Package, f *ast.File) (map[string][]suppression, []Diagnostic) {
	byKey := make(map[string][]suppression)
	var malformed []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
			rule, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if rule == "" || reason == "" {
				malformed = append(malformed, Diagnostic{
					Pos:     pos,
					Rule:    "suppress",
					Message: "malformed suppression: want //hvaclint:ignore <rule> <reason>",
				})
				continue
			}
			s := suppression{rule: rule, reason: reason, pos: pos}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				key := fmt.Sprintf("%s:%d", pos.Filename, line)
				byKey[key] = append(byKey[key], s)
			}
		}
	}
	return byKey, malformed
}

// applySuppressions marks diagnostics covered by a reasoned
// //hvaclint:ignore comment as Suppressed — a suppression silences
// exactly its named rule on its line, never a co-located finding of
// another rule — and appends diagnostics for malformed comments.
func applySuppressions(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	byKey := make(map[string][]suppression)
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			m, malformed := parseSuppressions(pkg, f)
			for k, v := range m {
				byKey[k] = append(byKey[k], v...)
			}
			out = append(out, malformed...)
		}
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		for _, s := range byKey[key] {
			if s.rule == d.Rule {
				d.Suppressed = true
				break
			}
		}
		out = append(out, d)
	}
	return out
}
