package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix reports variables — typically struct fields used as counters —
// that are accessed through sync/atomic in one place and with plain
// loads/stores in another, anywhere in the module. Mixing the two is the
// race class the -race detector only catches when both sides happen to
// execute in the same run; statically, one atomic access to &x.f commits
// every access of x.f to sync/atomic (or better: the typed atomic.Int64,
// which makes plain access unrepresentable).
var AtomicMix = &Analyzer{
	Name:      "atomicmix",
	Doc:       "fields accessed both via sync/atomic and plain loads/stores",
	RunModule: runAtomicMix,
}

// atomicUse records one sync/atomic access of a variable.
type atomicUse struct {
	obj *types.Var
	pos token.Pos
}

func runAtomicMix(p *ModulePass) {
	// Pass 1: every &x passed to a sync/atomic function commits x to
	// atomic access. atomicOperands remembers the exact AST nodes so pass
	// 2 does not report the atomic sites themselves.
	first := make(map[*types.Var]token.Pos)
	atomicOperands := make(map[ast.Expr]bool)
	for _, n := range p.Graph.Nodes() {
		if n.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false // literals are their own nodes
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc2(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				operand := ast.Unparen(un.X)
				obj := addressedVar(info, operand)
				if obj == nil {
					continue
				}
				atomicOperands[operand] = true
				if _, seen := first[obj]; !seen {
					first[obj] = un.Pos()
				}
			}
			return true
		})
	}
	if len(first) == 0 {
		return
	}

	// Pass 2: any other load or store of a committed variable is a mixed
	// access. Composite-literal field keys and the atomic operands from
	// pass 1 are not accesses.
	var mixed []atomicUse
	for _, n := range p.Graph.Nodes() {
		if n.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false
			}
			if kv, ok := x.(*ast.KeyValueExpr); ok {
				ast.Inspect(kv.Value, func(y ast.Node) bool {
					if use := plainUse(info, y, first, atomicOperands); use != nil {
						mixed = append(mixed, *use)
					}
					return true
				})
				return false
			}
			if use := plainUse(info, x, first, atomicOperands); use != nil {
				mixed = append(mixed, *use)
			}
			return true
		})
	}
	sort.Slice(mixed, func(i, j int) bool { return mixed[i].pos < mixed[j].pos })
	for _, m := range mixed {
		p.Reportf(m.pos,
			"%s is accessed with sync/atomic at %s but with a plain load/store here; make every access atomic, or switch the field to a typed atomic (atomic.Int64)",
			m.obj.Name(), p.Fset.Position(first[m.obj]))
	}
}

// plainUse reports a non-atomic access of a committed variable, or nil.
func plainUse(info *types.Info, x ast.Node, committed map[*types.Var]token.Pos, atomicOperands map[ast.Expr]bool) *atomicUse {
	expr, ok := x.(ast.Expr)
	if !ok || atomicOperands[expr] {
		return nil
	}
	var obj *types.Var
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		obj, _ = info.Uses[e.Sel].(*types.Var)
	case *ast.Ident:
		// Only bare identifiers: the Sel of a SelectorExpr is visited
		// separately and must not double-report.
		if v, isVar := info.Uses[e].(*types.Var); isVar && !v.IsField() {
			obj = v
		}
	}
	if obj == nil {
		return nil
	}
	if _, ok := committed[obj]; !ok {
		return nil
	}
	return &atomicUse{obj: obj, pos: expr.Pos()}
}

// addressedVar resolves the variable named by an atomic call's &operand:
// a struct field (x.f) or a plain variable.
func addressedVar(info *types.Info, operand ast.Expr) *types.Var {
	switch e := operand.(type) {
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	}
	return nil
}
