package analysis

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadSource writes src as a single-file package in a temp dir and loads
// it under importPath.
func loadSource(t *testing.T, importPath, filename, src string) []Diagnostic {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filename), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkg, Analyzers())
}

func TestLoaderEnumeratesModule(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := l.Packages()
	for _, want := range []string{"hvac", "hvac/internal/core", "hvac/internal/sim", "hvac/cmd/hvaclint"} {
		found := false
		for _, p := range pkgs {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Packages() is missing %s (got %d packages)", want, len(pkgs))
		}
	}
}

func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	// One RunPackages call over the whole module: the interprocedural
	// analyzers must see the full call graph, exactly as cmd/hvaclint
	// runs them.
	for _, d := range RunPackages(pkgs, Analyzers()) {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}

// TestSuppressionScopedPerRule pins down that //hvaclint:ignore silences
// exactly its named rule: a co-located finding of another analyzer on the
// same line must survive.
func TestSuppressionScopedPerRule(t *testing.T) {
	// Both sources put two rules on one line; each case suppresses one.
	const simSrc = `package sim

import (
	"io"
	"time"
)

func stamp(sink io.Writer) {
	%s
	sink.Write([]byte(time.Now().String()))
}
`
	const atomSrc = `package core

import "sync/atomic"

type counter struct{ n int64 }

func bump(c *counter) { atomic.AddInt64(&c.n, 1) }

func pump(c *counter) {
	%s
	go func() { for { c.n++ } }()
}
`
	cases := []struct {
		name     string
		src      string
		suppress string
		want     []string // surviving rules, sorted
	}{
		{"none-sim", simSrc, "_ = 0", []string{"errdrop", "simdeterminism"}},
		{"sim-suppressed", simSrc, "//hvaclint:ignore simdeterminism test wants the co-located errdrop to survive", []string{"errdrop"}},
		{"errdrop-suppressed", simSrc, "//hvaclint:ignore errdrop test wants the co-located simdeterminism to survive", []string{"simdeterminism"}},
		{"none-atomic", atomSrc, "_ = 0", []string{"atomicmix", "goroleak"}},
		{"goroleak-suppressed", atomSrc, "//hvaclint:ignore goroleak test wants the co-located atomicmix to survive", []string{"atomicmix"}},
		{"atomicmix-suppressed", atomSrc, "//hvaclint:ignore atomicmix test wants the co-located goroleak to survive", []string{"goroleak"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			importPath, filename := "hvac/internal/sim", "simscoped.go"
			if strings.HasPrefix(tc.src, "package core") {
				importPath, filename = "hvac/internal/core", "counters.go"
			}
			src := strings.Replace(tc.src, "%s", tc.suppress, 1)
			diags := loadSource(t, importPath, filename, src)
			var rules []string
			for _, d := range diags {
				rules = append(rules, d.Rule)
			}
			sort.Strings(rules)
			if strings.Join(rules, ",") != strings.Join(tc.want, ",") {
				t.Fatalf("want surviving rules %v, got %v", tc.want, diags)
			}
		})
	}
}

// TestCallGraphDeterministic builds the module call graph twice from two
// independent loaders and requires identical fingerprints: analyzer
// output and CI gating must not depend on map iteration order.
func TestCallGraphDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module twice")
	}
	fingerprint := func() string {
		l, err := NewLoader("../..")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		return BuildGraph(pkgs).Fingerprint()
	}
	a, b := fingerprint(), fingerprint()
	if a != b {
		t.Fatalf("call-graph fingerprint differs across builds:\n  %s\n  %s", a, b)
	}
}

func TestSuppressionRequiresMatchingRule(t *testing.T) {
	const src = `package sim

import "time"

func now() int64 {
	//hvaclint:ignore errdrop wrong rule on purpose
	return time.Now().UnixNano()
}
`
	diags := loadSource(t, "hvac/internal/sim", "clock.go", src)
	if len(diags) != 1 || diags[0].Rule != "simdeterminism" {
		t.Fatalf("want 1 simdeterminism diagnostic despite the mismatched suppression, got %v", diags)
	}
}

func TestMalformedSuppressionIsReported(t *testing.T) {
	const src = `package sim

import "time"

func now() int64 {
	//hvaclint:ignore simdeterminism
	return time.Now().UnixNano()
}
`
	diags := loadSource(t, "hvac/internal/sim", "clock.go", src)
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	// The reasonless suppression both fails to suppress and is itself
	// reported.
	if got != "suppress,simdeterminism" && got != "simdeterminism,suppress" {
		t.Fatalf("want suppress + simdeterminism diagnostics, got %v", diags)
	}
}

func TestSimDeterminismCoversCoreSimFiles(t *testing.T) {
	const src = `package core

import "time"

func simTick() int64 { return time.Now().UnixNano() }
`
	diags := loadSource(t, "hvac/internal/core", "simclock.go", src)
	if len(diags) != 1 || diags[0].Rule != "simdeterminism" {
		t.Fatalf("want simdeterminism to cover core's sim*.go files, got %v", diags)
	}
	// The same code in a non-sim file of core is out of scope.
	diags = loadSource(t, "hvac/internal/core", "realclock.go", src)
	if len(diags) != 0 {
		t.Fatalf("want no findings in a non-sim core file, got %v", diags)
	}
}

func TestPFSBypassCoversLoaderPackage(t *testing.T) {
	const src = `package loader

import "os"

func slurp(p string) ([]byte, error) { return os.ReadFile(p) }
`
	diags := loadSource(t, "hvac/loader", "anyfile.go", src)
	if len(diags) != 1 || diags[0].Rule != "pfsbypass" {
		t.Fatalf("want pfsbypass to cover every hvac/loader file, got %v", diags)
	}
}
