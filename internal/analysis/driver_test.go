package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSource writes src as a single-file package in a temp dir and loads
// it under importPath.
func loadSource(t *testing.T, importPath, filename, src string) []Diagnostic {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, filename), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return Run(pkg, Analyzers())
}

func TestLoaderEnumeratesModule(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := l.Packages()
	for _, want := range []string{"hvac", "hvac/internal/core", "hvac/internal/sim", "hvac/cmd/hvaclint"} {
		found := false
		for _, p := range pkgs {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Packages() is missing %s (got %d packages)", want, len(pkgs))
		}
	}
}

func TestModuleIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, Analyzers()) {
			t.Errorf("%s", d)
		}
	}
}

func TestSuppressionRequiresMatchingRule(t *testing.T) {
	const src = `package sim

import "time"

func now() int64 {
	//hvaclint:ignore errdrop wrong rule on purpose
	return time.Now().UnixNano()
}
`
	diags := loadSource(t, "hvac/internal/sim", "clock.go", src)
	if len(diags) != 1 || diags[0].Rule != "simdeterminism" {
		t.Fatalf("want 1 simdeterminism diagnostic despite the mismatched suppression, got %v", diags)
	}
}

func TestMalformedSuppressionIsReported(t *testing.T) {
	const src = `package sim

import "time"

func now() int64 {
	//hvaclint:ignore simdeterminism
	return time.Now().UnixNano()
}
`
	diags := loadSource(t, "hvac/internal/sim", "clock.go", src)
	var rules []string
	for _, d := range diags {
		rules = append(rules, d.Rule)
	}
	got := strings.Join(rules, ",")
	// The reasonless suppression both fails to suppress and is itself
	// reported.
	if got != "suppress,simdeterminism" && got != "simdeterminism,suppress" {
		t.Fatalf("want suppress + simdeterminism diagnostics, got %v", diags)
	}
}

func TestSimDeterminismCoversCoreSimFiles(t *testing.T) {
	const src = `package core

import "time"

func simTick() int64 { return time.Now().UnixNano() }
`
	diags := loadSource(t, "hvac/internal/core", "simclock.go", src)
	if len(diags) != 1 || diags[0].Rule != "simdeterminism" {
		t.Fatalf("want simdeterminism to cover core's sim*.go files, got %v", diags)
	}
	// The same code in a non-sim file of core is out of scope.
	diags = loadSource(t, "hvac/internal/core", "realclock.go", src)
	if len(diags) != 0 {
		t.Fatalf("want no findings in a non-sim core file, got %v", diags)
	}
}

func TestPFSBypassCoversLoaderPackage(t *testing.T) {
	const src = `package loader

import "os"

func slurp(p string) ([]byte, error) { return os.ReadFile(p) }
`
	diags := loadSource(t, "hvac/loader", "anyfile.go", src)
	if len(diags) != 1 || diags[0].Rule != "pfsbypass" {
		t.Fatalf("want pfsbypass to cover every hvac/loader file, got %v", diags)
	}
}
