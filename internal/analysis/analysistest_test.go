package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts // want "..." expectations from fixture sources.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// fixtureTest loads testdata/src/<dir> under importPath, runs exactly
// one analyzer (plus the driver's suppression layer), and compares the
// diagnostics against the fixtures' // want "regexp" comments: every
// want must be matched by a diagnostic on its line, and every diagnostic
// must be covered by a want.
func fixtureTest(t *testing.T, a *Analyzer, dir, importPath string) {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	fixDir := filepath.Join("testdata", "src", dir)
	pkg, err := l.LoadDir(fixDir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(pkg, []*Analyzer{a})

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	ents, err := os.ReadDir(fixDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(fixDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), i+1, m[1], err)
				}
				key := fmt.Sprintf("%s:%d", e.Name(), i+1)
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		covered := false
		for _, w := range wants[key] {
			if w.re.MatchString(d.Message) {
				w.matched = true
				covered = true
			}
		}
		if !covered {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Rule, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing diagnostic at %s: want match for %q", key, w.re)
			}
		}
	}
}
