package analysis

import (
	"go/ast"
	"go/types"

	"hvac/internal/analysis/callgraph"
)

// GoroLeak is the static twin of testutil.CheckLeaks: every go statement
// in a non-test package must have a termination path visible through the
// call graph. A spawned function passes if it (or a function it
// statically calls, transitively):
//
//   - calls (*sync.WaitGroup).Done — someone joins it;
//   - receives from a channel or contains a select — it parks on a
//     signal (context cancellation arrives as <-ctx.Done());
//   - ranges over a channel — it exits when the producer closes;
//   - or contains no loop at all — straight-line bodies terminate.
//
// Ticker channels are excluded from the channel evidence: time.Tick and
// time.Ticker.C are never closed, so `for range time.Tick(d)` loops
// forever and is exactly the leak this analyzer exists to catch.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "go statements whose goroutine has no context, close-channel or WaitGroup termination path",
	RunModule: runGoroLeak,
}

func runGoroLeak(p *ModulePass) {
	for _, n := range p.Graph.Nodes() {
		if n.Body == nil {
			continue
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false // nested literals report through their own node
			}
			g, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			spawned := spawnedNode(p.Graph, info, g.Call)
			if spawned == nil {
				return true // dynamic or external target: no claim
			}
			ev := gatherLeakEvidence(p.Graph, spawned)
			if ev.terminates() {
				return true
			}
			p.Reportf(g.Pos(),
				"goroutine %s has no termination path visible through the call graph: no WaitGroup.Done, channel receive/select, or channel range; tie it to a context, close-channel or WaitGroup (see testutil.CheckLeaks)",
				spawned.Name)
			return true
		})
	}
}

// spawnedNode resolves a go statement's call to the graph node that will
// run as the goroutine, or nil when the target is unresolvable.
func spawnedNode(g *callgraph.Graph, info *types.Info, call *ast.CallExpr) *callgraph.Node {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return g.LitNode(fun)
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.NodeOf(fn)
		}
	}
	return nil
}

// leakEvidence is what the transitive body scan found.
type leakEvidence struct {
	wgDone  bool // calls (*sync.WaitGroup).Done
	receive bool // channel receive or select
	chRange bool // ranges over a (closeable) channel
	loops   bool // contains any loop
}

func (e leakEvidence) terminates() bool {
	return e.wgDone || e.receive || e.chRange || !e.loops
}

// gatherLeakEvidence scans the spawned function and every module
// function it statically calls.
func gatherLeakEvidence(g *callgraph.Graph, start *callgraph.Node) leakEvidence {
	var ev leakEvidence
	g.Transitive(start, false, func(n *callgraph.Node) {
		if n.Body == nil {
			return
		}
		info := n.Pkg.Info
		ast.Inspect(n.Body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
				return false
			}
			switch x := x.(type) {
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					ev.receive = true
				}
			case *ast.SelectStmt:
				ev.receive = true
			case *ast.ForStmt:
				ev.loops = true
			case *ast.RangeStmt:
				ev.loops = true
				if t := info.TypeOf(x.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan && !neverClosedChan(info, x.X) {
						ev.chRange = true
					}
				}
			case *ast.CallExpr:
				if fn := calleeFunc2(info, x); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "sync" && fn.Name() == "Done" {
					ev.wgDone = true
				}
			}
			return true
		})
	})
	return ev
}

// neverClosedChan reports whether the channel expression is a ticker
// stream the runtime never closes: a time.Tick(...) call or the C field
// of a time.Ticker.
func neverClosedChan(info *types.Info, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.CallExpr:
		fn := calleeFunc2(info, e)
		return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Tick"
	case *ast.SelectorExpr:
		if e.Sel.Name != "C" {
			return false
		}
		t := info.TypeOf(e.X)
		for {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Ticker"
	}
	return false
}

// calleeFunc2 is calleeFunc against an explicit *types.Info (the module
// analyzers work per call-graph node, not per Pass).
func calleeFunc2(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
