package analysis

import (
	"strings"
	"testing"

	"hvac/internal/analysis/cfg"
	"hvac/internal/analysis/valueflow"
)

// TestValueFlowOverWholeModule mirrors TestCFGOverWholeModule for the
// valueflow engine: it builds def-use chains for every function and
// function literal in the module and holds them to basic sanity —
// every use's reaching definitions are definitions of the same
// variable, and rebuilding the flow reproduces the same fingerprint.
// A def-use bug that survives the unit tests' hand-written shapes gets
// caught here by whatever real function uses the shape.
func TestValueFlowOverWholeModule(t *testing.T) {
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	g := BuildGraph(pkgs)
	built := 0
	for _, n := range g.Nodes() {
		if n.Body == nil {
			continue
		}
		fl := valueflow.Flow(l.Fset(), n, cfg.New(n.Body))
		for _, u := range fl.Uses {
			for _, d := range u.Defs {
				if d.Var != u.Var {
					t.Errorf("%s: use of %s reached by a definition of %s",
						n.Name, u.Var.Name(), d.Var.Name())
				}
			}
		}
		if a, b := fl.Fingerprint(), valueflow.Flow(l.Fset(), n, cfg.New(n.Body)).Fingerprint(); a != b {
			t.Errorf("%s: flow fingerprint not deterministic: %s != %s", n.Name, a, b)
		}
		built++
	}
	if built < 100 {
		t.Fatalf("built value flow for only %d functions; expected the whole module (loader regression?)", built)
	}
}

// TestValueFlowModuleFingerprintDeterministic loads the module twice
// from scratch and requires the same module-wide value-flow hash:
// analyzer output ordering and CI reproducibility depend on it.
func TestValueFlowModuleFingerprintDeterministic(t *testing.T) {
	load := func() string {
		l, err := NewLoader("../..")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := l.LoadAll()
		if err != nil {
			t.Fatal(err)
		}
		return valueflow.ModuleFingerprint(BuildGraph(pkgs))
	}
	a, b := load(), load()
	if a != b {
		t.Fatalf("module value-flow fingerprint differs across loads:\n%s\n%s", a, b)
	}
	if len(a) != 64 || strings.Trim(a, "0123456789abcdef") != "" {
		t.Fatalf("fingerprint is not a sha256 hex digest: %q", a)
	}
}
