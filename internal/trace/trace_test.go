package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRecordAndSummarise(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Op: Read, Tier: TierCacheLocal, Bytes: 100, Duration: time.Millisecond})
	r.Record(Event{Op: Read, Tier: TierCacheLocal, Bytes: 200, Duration: 3 * time.Millisecond})
	r.Record(Event{Op: Read, Tier: TierPFS, Bytes: 50, Duration: 10 * time.Millisecond})
	r.Record(Event{Op: Open, Tier: TierCacheRemote, Duration: time.Microsecond})
	if r.Len() != 4 {
		t.Fatalf("len = %d", r.Len())
	}
	sum := r.Summarise()
	local := sum[Read][TierCacheLocal]
	if local.Ops != 2 || local.Bytes != 300 || local.MaxDur != 3*time.Millisecond {
		t.Fatalf("local summary = %+v", local)
	}
	if sum[Read][TierPFS].Ops != 1 {
		t.Fatal("pfs read missing")
	}
	if sum[Open][TierCacheRemote].Ops != 1 {
		t.Fatal("open missing")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Event{Op: Read}) // must not panic
	if r.Len() != 0 || r.Events() != nil {
		t.Fatal("nil recorder misbehaves")
	}
}

func TestCapacityBound(t *testing.T) {
	r := NewRecorder(3)
	for i := 0; i < 10; i++ {
		r.Record(Event{Op: Read, Bytes: int64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want capped 3", r.Len())
	}
}

func TestCSV(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Start: time.Second, Duration: 2 * time.Millisecond, Op: Read, Tier: TierNodeLocal, Bytes: 42, Path: "/d/f1"})
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	line := strings.TrimSpace(buf.String())
	if line != "1000000,2000,read,node-local,42,/d/f1" {
		t.Fatalf("csv = %q", line)
	}
}

func TestStringReport(t *testing.T) {
	r := NewRecorder(0)
	r.Record(Event{Op: Open, Tier: TierPFS, Duration: time.Millisecond})
	r.Record(Event{Op: Read, Tier: TierCacheRemote, Bytes: 1024, Duration: time.Millisecond})
	out := r.String()
	for _, want := range []string{"2 events", "open", "pfs", "read", "cache-remote"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestOpAndTierStrings(t *testing.T) {
	if Open.String() != "open" || Read.String() != "read" || Close.String() != "close" || Prefetch.String() != "prefetch" {
		t.Fatal("op names wrong")
	}
	if Op(99).String() != "op(99)" {
		t.Fatal("unknown op name wrong")
	}
	if TierUnknown.String() != "unknown" || TierPFS.String() != "pfs" {
		t.Fatal("tier names wrong")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := NewRecorder(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(Event{Op: Read, Bytes: 1})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 4000 {
		t.Fatalf("len = %d", r.Len())
	}
}
