// Package trace records per-operation I/O events — a Darshan-style
// profile of what a training job actually did: every <open, read, close>
// with its (virtual or wall-clock) start time, duration, byte count and
// serving tier. The paper's §III-F profiling of ResNet50's loader is
// exactly this kind of trace; the package lets any simulated or real run
// produce one.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Op is the traced operation kind.
type Op uint8

// Operation kinds.
const (
	Open Op = iota + 1
	Read
	Close
	Prefetch
)

// String renders the op name.
func (o Op) String() string {
	switch o {
	case Open:
		return "open"
	case Read:
		return "read"
	case Close:
		return "close"
	case Prefetch:
		return "prefetch"
	default:
		return fmt.Sprintf("op(%d)", o)
	}
}

// Tier identifies which layer served the operation.
type Tier uint8

// Serving tiers.
const (
	TierUnknown     Tier = iota
	TierPFS              // shared parallel file system
	TierCacheLocal       // HVAC server on the same node
	TierCacheRemote      // HVAC server on another node
	TierNodeLocal        // node-local FS (XFS-on-NVMe)
)

// String renders the tier name.
func (t Tier) String() string {
	switch t {
	case TierPFS:
		return "pfs"
	case TierCacheLocal:
		return "cache-local"
	case TierCacheRemote:
		return "cache-remote"
	case TierNodeLocal:
		return "node-local"
	default:
		return "unknown"
	}
}

// Event is one recorded operation.
type Event struct {
	Start    time.Duration // virtual or wall-clock offset from run start
	Duration time.Duration
	Op       Op
	Tier     Tier
	Bytes    int64
	Path     string
}

// Recorder collects events. It is safe for concurrent use (real mode);
// the simulated mode is effectively single-threaded but shares the type.
// A nil *Recorder is a valid no-op sink.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	cap    int
}

// NewRecorder returns a recorder keeping at most capHint events
// (0 = unbounded).
func NewRecorder(capHint int) *Recorder {
	return &Recorder{cap: capHint}
}

// Record appends one event; over-capacity events are dropped (the count
// of kept events is what Summarise reports on).
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && len(r.events) >= r.cap {
		return
	}
	r.events = append(r.events, e)
}

// Len reports the number of kept events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the kept events in record order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// WriteCSV dumps the trace as CSV: start_us,dur_us,op,tier,bytes,path.
func (r *Recorder) WriteCSV(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%d,%d,%s,%s,%d,%s\n",
			e.Start.Microseconds(), e.Duration.Microseconds(),
			e.Op, e.Tier, e.Bytes, e.Path); err != nil {
			return err
		}
	}
	return nil
}

// TierSummary aggregates one (op, tier) cell.
type TierSummary struct {
	Ops    int64
	Bytes  int64
	Total  time.Duration
	MaxDur time.Duration
}

// Summarise aggregates the trace per (op, tier).
func (r *Recorder) Summarise() map[Op]map[Tier]*TierSummary {
	out := map[Op]map[Tier]*TierSummary{}
	for _, e := range r.Events() {
		byTier, ok := out[e.Op]
		if !ok {
			byTier = map[Tier]*TierSummary{}
			out[e.Op] = byTier
		}
		s, ok := byTier[e.Tier]
		if !ok {
			s = &TierSummary{}
			byTier[e.Tier] = s
		}
		s.Ops++
		s.Bytes += e.Bytes
		s.Total += e.Duration
		if e.Duration > s.MaxDur {
			s.MaxDur = e.Duration
		}
	}
	return out
}

// String renders the summary as a compact report, ops sorted.
func (r *Recorder) String() string {
	sum := r.Summarise()
	var ops []Op
	for op := range sum {
		ops = append(ops, op)
	}
	sort.Slice(ops, func(i, j int) bool { return ops[i] < ops[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "trace: %d events\n", r.Len())
	for _, op := range ops {
		var tiers []Tier
		for tier := range sum[op] {
			tiers = append(tiers, tier)
		}
		sort.Slice(tiers, func(i, j int) bool { return tiers[i] < tiers[j] })
		for _, tier := range tiers {
			s := sum[op][tier]
			mean := time.Duration(0)
			if s.Ops > 0 {
				mean = s.Total / time.Duration(s.Ops)
			}
			fmt.Fprintf(&b, "  %-8s %-12s ops=%-8d bytes=%-12d mean=%-10v max=%v\n",
				op, tier, s.Ops, s.Bytes, mean.Round(time.Microsecond), s.MaxDur.Round(time.Microsecond))
		}
	}
	return b.String()
}
