package device

import (
	"testing"
	"time"

	"hvac/internal/sim"
)

func TestReadTiming(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", Profile{
		Name: "test", ReadBandwidth: 1e9, WriteBandwidth: 1e9,
		ReadLatency: time.Millisecond, Parallelism: 1, Capacity: 1e12,
	})
	var took time.Duration
	eng.Spawn("r", func(p *sim.Proc) { took = d.Read(p, 2_000_000_000) })
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	want := 2*time.Second + time.Millisecond
	if took != want {
		t.Fatalf("read took %v, want %v", took, want)
	}
}

func TestBandwidthCapsAggregate(t *testing.T) {
	// 8 concurrent 1 GB reads at 1 GB/s bus: the bus serialises them in
	// 8s no matter the queue depth.
	eng := sim.NewEngine()
	d := New(eng, "d0", Profile{
		Name: "test", ReadBandwidth: 1e9, WriteBandwidth: 1e9, Parallelism: 4, Capacity: 1e12,
	})
	var last sim.Time
	for i := 0; i < 8; i++ {
		eng.Spawn("r", func(p *sim.Proc) {
			d.Read(p, 1_000_000_000)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if last != sim.Time(8*time.Second) {
		t.Fatalf("makespan %v, want 8s (bus-bound)", time.Duration(last))
	}
}

func TestParallelismOverlapsLatency(t *testing.T) {
	// 8 tiny reads with 1s issue latency, queue depth 2: latency overlaps
	// two at a time -> ~4s, not 8s.
	eng := sim.NewEngine()
	d := New(eng, "d0", Profile{
		Name: "test", ReadBandwidth: 1e12, WriteBandwidth: 1e12,
		ReadLatency: time.Second, Parallelism: 2, Capacity: 1e12,
	})
	var last sim.Time
	for i := 0; i < 8; i++ {
		eng.Spawn("r", func(p *sim.Proc) {
			d.Read(p, 1)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(last); got > 4*time.Second+100*time.Millisecond {
		t.Fatalf("makespan %v, want ~4s (latency overlapped 2-deep)", got)
	}
}

func TestCapacityAccounting(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", Profile{Name: "t", ReadBandwidth: 1, WriteBandwidth: 1, Capacity: 100, Parallelism: 1})
	if err := d.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := d.Alloc(50); err == nil {
		t.Fatal("over-allocation should fail")
	}
	if d.Free() != 40 {
		t.Fatalf("free = %d, want 40", d.Free())
	}
	d.Release(60)
	if d.Used() != 0 {
		t.Fatalf("used = %d, want 0", d.Used())
	}
	if err := d.Alloc(100); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	eng := sim.NewEngine()
	d := New(eng, "d0", Profile{Name: "t", ReadBandwidth: 1, WriteBandwidth: 1, Capacity: 100, Parallelism: 1})
	d.Release(1)
}

func TestSummitNVMeAggregate(t *testing.T) {
	// The paper (§II-C): 4,096 node-local NVMe aggregate ~22.5 TB/s vs
	// GPFS 2.5 TB/s. Check our per-device read bandwidth reproduces that.
	p := SummitNVMe()
	agg := p.ReadBandwidth * 4096
	if agg < 22e12 || agg > 23.5e12 {
		t.Fatalf("aggregate NVMe bandwidth = %.1f TB/s, want ~22.5", agg/1e12)
	}
	if p.Capacity != 1600e9 {
		t.Fatalf("capacity = %d, want 1.6 TB (Table I)", p.Capacity)
	}
}

func TestProfilesDistinct(t *testing.T) {
	n, r, h := SummitNVMe(), RAMDisk(1e9), SlowDisk()
	if !(r.ReadBandwidth > n.ReadBandwidth && n.ReadBandwidth > h.ReadBandwidth) {
		t.Fatal("bandwidth ordering ram > nvme > hdd violated")
	}
	if !(r.ReadLatency < n.ReadLatency && n.ReadLatency < h.ReadLatency) {
		t.Fatal("latency ordering ram < nvme < hdd violated")
	}
}

func TestOpCounters(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, "d0", RAMDisk(1e12))
	eng.Spawn("w", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			d.Write(p, 1000)
		}
		for i := 0; i < 3; i++ {
			d.Read(p, 1000)
		}
	})
	if err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	if d.WritesCompleted() != 5 || d.ReadsCompleted() != 3 {
		t.Fatalf("ops = %d writes / %d reads, want 5/3", d.WritesCompleted(), d.ReadsCompleted())
	}
}
