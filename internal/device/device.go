// Package device models block storage devices for the simulated Summit
// substrate: the 1.6 TB Samsung NVMe SSD on every compute node (Table I of
// the paper), plus slower profiles used in tests and ablations.
//
// A device is a sim.Resource with bounded internal parallelism (queue
// depth); an I/O occupies one slot for issueLatency + bytes/bandwidth.
// Aggregate behaviour matches the paper's headline numbers: one NVMe
// sustains ~5.5 GB/s of reads, so 4,096 nodes sustain ~22.5 TB/s (§II-C).
package device

import (
	"fmt"
	"time"

	"hvac/internal/sim"
)

// Profile describes a device's performance envelope.
type Profile struct {
	Name string
	// ReadBandwidth and WriteBandwidth in bytes/second.
	ReadBandwidth  float64
	WriteBandwidth float64
	// ReadLatency and WriteLatency are per-operation issue latencies.
	ReadLatency  time.Duration
	WriteLatency time.Duration
	// Parallelism is the number of I/Os the device services concurrently
	// (effective queue-depth benefit).
	Parallelism int
	// Capacity in bytes.
	Capacity int64
}

// SummitNVMe is the node-local 1.6 TB Samsung PM1725a-class NVMe SSD from
// Table I. Read bandwidth is set so that the aggregate of 4,096 devices is
// the paper's 22.5 TB/s.
func SummitNVMe() Profile {
	return Profile{
		Name:           "nvme",
		ReadBandwidth:  5.5e9,
		WriteBandwidth: 2.1e9,
		ReadLatency:    90 * time.Microsecond,
		WriteLatency:   30 * time.Microsecond,
		Parallelism:    8,
		Capacity:       1600e9,
	}
}

// RAMDisk is an approximately-instant device used in ablations and tests.
func RAMDisk(capacity int64) Profile {
	return Profile{
		Name:           "ram",
		ReadBandwidth:  80e9,
		WriteBandwidth: 80e9,
		ReadLatency:    2 * time.Microsecond,
		WriteLatency:   2 * time.Microsecond,
		Parallelism:    16,
		Capacity:       capacity,
	}
}

// SlowDisk is a spinning-disk profile used in failure-injection and
// contrast tests.
func SlowDisk() Profile {
	return Profile{
		Name:           "hdd",
		ReadBandwidth:  180e6,
		WriteBandwidth: 160e6,
		ReadLatency:    4 * time.Millisecond,
		WriteLatency:   4 * time.Millisecond,
		Parallelism:    1,
		Capacity:       4000e9,
	}
}

// Device is a simulated block device. An I/O passes two stages: an issue
// stage with Parallelism-way concurrency charging the per-op latency
// (overlapping command processing across the queue depth), then a single
// full-bandwidth bus serialising the byte transfer. This caps aggregate
// throughput at the profile bandwidth while letting deep queues of small
// I/Os reach the device's IOPS ceiling.
type Device struct {
	prof     Profile
	readLat  *sim.Resource
	readBus  *sim.Resource
	writeLat *sim.Resource
	writeBus *sim.Resource
	used     int64
	reads    int64
	writes   int64
}

// New constructs a device on the engine with the given profile.
func New(eng *sim.Engine, id string, prof Profile) *Device {
	if prof.Parallelism < 1 {
		prof.Parallelism = 1
	}
	return &Device{
		prof:     prof,
		readLat:  sim.NewResource(eng, id+"/read-issue", prof.Parallelism),
		readBus:  sim.NewRateResource(eng, id+"/read-bus", 1, prof.ReadBandwidth, 0),
		writeLat: sim.NewResource(eng, id+"/write-issue", prof.Parallelism),
		writeBus: sim.NewRateResource(eng, id+"/write-bus", 1, prof.WriteBandwidth, 0),
	}
}

// Profile returns the device's performance envelope.
func (d *Device) Profile() Profile { return d.prof }

// Read occupies the device for a read of n bytes, in virtual time.
func (d *Device) Read(p *sim.Proc, n int64) time.Duration {
	start := p.Now()
	d.readLat.Use(p, d.prof.ReadLatency)
	d.readBus.UseBytes(p, n)
	d.reads++
	return p.Now().Sub(start)
}

// Write occupies the device for a write of n bytes, in virtual time.
func (d *Device) Write(p *sim.Proc, n int64) time.Duration {
	start := p.Now()
	d.writeLat.Use(p, d.prof.WriteLatency)
	d.writeBus.UseBytes(p, n)
	d.writes++
	return p.Now().Sub(start)
}

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.prof.Capacity }

// Used returns the bytes currently allocated via Alloc.
func (d *Device) Used() int64 { return d.used }

// Free returns the unallocated capacity.
func (d *Device) Free() int64 { return d.prof.Capacity - d.used }

// Alloc reserves n bytes of capacity, failing if the device is full.
func (d *Device) Alloc(n int64) error {
	if d.used+n > d.prof.Capacity {
		return fmt.Errorf("device %s: allocation of %d bytes exceeds capacity (%d of %d used)",
			d.prof.Name, n, d.used, d.prof.Capacity)
	}
	d.used += n
	return nil
}

// Release returns n bytes of capacity. It panics if more is released than
// allocated, which would indicate an accounting bug.
func (d *Device) Release(n int64) {
	d.used -= n
	if d.used < 0 {
		panic("device: released more than allocated")
	}
}

// ReadsCompleted reports completed read operations.
func (d *Device) ReadsCompleted() int64 { return d.reads }

// WritesCompleted reports completed write operations.
func (d *Device) WritesCompleted() int64 { return d.writes }
