package train

import "hvac/internal/sim"

// epochSeedStep is the golden-ratio increment separating the per-epoch
// shuffle streams derived from one run seed.
const epochSeedStep = 0x9e3779b9

// EpochSeed derives the RNG seed of epoch e from the run seed — the
// exact derivation Run uses for its per-epoch shuffles, exported so
// out-of-band planners (the clairvoyant prefetcher) reconstruct the
// identical permutation.
func EpochSeed(seed uint64, epoch int) uint64 {
	return seed + uint64(epoch)*epochSeedStep
}

// Oracle is the clairvoyant view of one epoch's access order. Because
// the shuffle is a seeded Feistel permutation (NoPFS makes the same
// observation: the access sequence of every epoch is known the moment
// the seed is fixed), both directions are computable in O(1) without
// materialising the epoch: which dataset index is read at a global step,
// and at which global step a given index will be read.
type Oracle struct {
	perm *Perm
}

// NewOracle builds the access oracle for one epoch over n dataset files.
func NewOracle(seed uint64, epoch, n int) *Oracle {
	return &Oracle{perm: NewPerm(sim.NewRNG(EpochSeed(seed, epoch)), n)}
}

// N returns the dataset size.
func (o *Oracle) N() int { return o.perm.N() }

// At returns the dataset index read at global step k.
func (o *Oracle) At(step int) int { return o.perm.Index(step) }

// StepOf returns the global step at which dataset index i is read — the
// inverse enumeration: a server holding a subset of the keys scores each
// of them directly instead of scanning the n-step epoch.
func (o *Oracle) StepOf(index int) int { return o.perm.Invert(index) }
