package train

import (
	"testing"
	"testing/quick"

	"hvac/internal/sim"
)

// The satellite property: Invert is the exact inverse of Index over
// random domains and seeds, in both compositions.
func TestPermInvertRoundTrip(t *testing.T) {
	f := func(seed uint64, size uint16) bool {
		n := int(size%5000) + 1
		p := NewPerm(sim.NewRNG(seed), n)
		for i := 0; i < n; i++ {
			if p.Invert(p.Index(i)) != i {
				return false
			}
			if p.Index(p.Invert(i)) != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPermInvertTinyDomains(t *testing.T) {
	for n := 1; n <= 5; n++ {
		p := NewPerm(sim.NewRNG(uint64(n)), n)
		for i := 0; i < n; i++ {
			if got := p.Invert(p.Index(i)); got != i {
				t.Fatalf("n=%d: Invert(Index(%d)) = %d", n, i, got)
			}
		}
	}
}

func TestPermInvertOutOfRangePanics(t *testing.T) {
	p := NewPerm(sim.NewRNG(1), 10)
	for _, bad := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Invert(%d) did not panic", bad)
				}
			}()
			p.Invert(bad)
		}()
	}
}

// The oracle must reproduce the exact shuffle Run consumes: same seed
// derivation (EpochSeed), same permutation, per epoch.
func TestOracleMatchesRunShuffle(t *testing.T) {
	const seed, n = 42, 777
	for e := 0; e < 3; e++ {
		perm := NewPerm(sim.NewRNG(EpochSeed(seed, e)), n)
		o := NewOracle(seed, e, n)
		for k := 0; k < n; k++ {
			if o.At(k) != perm.Index(k) {
				t.Fatalf("epoch %d step %d: oracle %d, run shuffle %d", e, k, o.At(k), perm.Index(k))
			}
		}
	}
	// Distinct epochs must shuffle differently.
	a, b := NewOracle(seed, 0, n), NewOracle(seed, 1, n)
	same := 0
	for k := 0; k < n; k++ {
		if a.At(k) == b.At(k) {
			same++
		}
	}
	if same > n/20 {
		t.Fatalf("epochs 0 and 1 agree on %d/%d steps", same, n)
	}
}

// StepOf is the inverse enumeration: for every dataset index, the step
// the oracle claims must map back through At.
func TestOracleStepOf(t *testing.T) {
	o := NewOracle(7, 2, 1234)
	for i := 0; i < o.N(); i++ {
		if got := o.At(o.StepOf(i)); got != i {
			t.Fatalf("At(StepOf(%d)) = %d", i, got)
		}
	}
}

func BenchmarkPermInvert(b *testing.B) {
	p := NewPerm(sim.NewRNG(1), 11_797_632)
	for i := 0; i < b.N; i++ {
		p.Invert(i % 11_797_632)
	}
}
