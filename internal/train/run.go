package train

import (
	"fmt"
	"time"

	"hvac/internal/dataset"
	"hvac/internal/sim"
	"hvac/internal/vfs"
)

// Config parameterises one distributed training run.
type Config struct {
	// Model selects the application.
	Model Model
	// Data optionally overrides the model's dataset (e.g. a scaled copy
	// for the fast benchmark mode). Zero value means Model.Data.
	Data dataset.Spec
	// Nodes is the allocation size.
	Nodes int
	// ProcsPerNode is the number of training processes per node (the
	// paper runs two concurrent DL training jobs per node, Fig. 8).
	ProcsPerNode int
	// GPUsPerProc is how many of the node's six V100s each process
	// drives (default 3).
	GPUsPerProc int
	// LoaderWorkers is the number of parallel data-loader workers per
	// process (PyTorch DataLoader num_workers; default 6). The batch is
	// fetched synchronously before each iteration, matching the loader
	// profile the paper observed (§III-F).
	LoaderWorkers int
	// BatchSize is files per process per iteration.
	BatchSize int
	// Epochs is the number of passes over the training set.
	Epochs int
	// Seed drives the per-epoch shuffles; two runs with the same seed
	// consume files in the identical order regardless of file system.
	Seed uint64
	// RecordOrder, if > 0, records the first N file paths rank 0 reads in
	// each epoch (used to verify HVAC preserves the shuffle).
	RecordOrder int
	// AccuracyEveryIters, if > 0, records an accuracy point on rank 0
	// every k iterations (Fig. 14).
	AccuracyEveryIters int
}

func (c Config) withDefaults() Config {
	if c.Data.Name == "" {
		c.Data = c.Model.Data
	}
	if c.Nodes <= 0 {
		c.Nodes = 1
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 2
	}
	if c.GPUsPerProc <= 0 {
		c.GPUsPerProc = 3
	}
	if c.LoaderWorkers <= 0 {
		c.LoaderWorkers = 6
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 1
	}
	return c
}

// AccPoint is one accuracy observation (Fig. 14).
type AccPoint struct {
	Iteration  int
	Top1, Top5 float64
}

// Result reports a completed run.
type Result struct {
	// TrainTime is the wall-clock (virtual) duration of the whole run.
	TrainTime time.Duration
	// EpochTimes are per-epoch durations (epoch 1 first).
	EpochTimes []time.Duration
	// IOTime and ComputeTime are rank-0 totals: the per-iteration batch
	// fetch (the data stall) and the busy-GPU time.
	IOTime      time.Duration
	ComputeTime time.Duration
	// FilesRead counts file transactions across all ranks.
	FilesRead int64
	// BytesRead counts payload across all ranks.
	BytesRead int64
	// ReadErrors counts failed file reads (failure-injection runs).
	ReadErrors int64
	// OrderTrace is rank 0's recorded read order per epoch.
	OrderTrace [][]string
	// Accuracy is rank 0's accuracy curve.
	Accuracy []AccPoint
	// World is the total rank count.
	World int
}

// SamplesPerSecond reports end-to-end training throughput.
func (r *Result) SamplesPerSecond() float64 {
	if r.TrainTime <= 0 {
		return 0
	}
	return float64(r.FilesRead) / r.TrainTime.Seconds()
}

type loadJob struct {
	path string
	wg   *sim.WaitGroup
}

// Run executes the training job on eng, reading every rank's data through
// fsFor(node, proc), and drives the engine to completion. The engine must
// not have other unfinished work.
func Run(eng *sim.Engine, cfg Config, fsFor func(node, proc int) vfs.FS) (*Result, error) {
	cfg = cfg.withDefaults()
	world := cfg.Nodes * cfg.ProcsPerNode
	n := cfg.Data.TrainFiles
	res := &Result{World: world}

	epochBarrier := sim.NewBarrier(world)
	epochStart := eng.Now()
	runStart := eng.Now()
	var runEnd sim.Time
	iterTime := cfg.Model.ComputeTime(cfg.BatchSize, cfg.GPUsPerProc) +
		cfg.Model.AllreduceTime(world)

	for node := 0; node < cfg.Nodes; node++ {
		for proc := 0; proc < cfg.ProcsPerNode; proc++ {
			node, proc := node, proc
			rank := node*cfg.ProcsPerNode + proc
			fs := fsFor(node, proc)

			// Persistent loader-worker pool for this rank.
			jobs := &sim.Queue[loadJob]{}
			for w := 0; w < cfg.LoaderWorkers; w++ {
				eng.Spawn(fmt.Sprintf("rank%d-loader%d", rank, w), func(p *sim.Proc) {
					for {
						job, ok := jobs.Get(p)
						if !ok {
							return
						}
						got, err := vfs.ReadFile(p, fs, job.path)
						if err != nil {
							res.ReadErrors++
						} else {
							res.FilesRead++
							res.BytesRead += got
						}
						job.wg.Done()
					}
				})
			}

			eng.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Proc) {
				defer jobs.Close()
				var localIO, localCompute time.Duration
				for e := 0; e < cfg.Epochs; e++ {
					perm := NewPerm(sim.NewRNG(EpochSeed(cfg.Seed, e)), n)
					var order []string
					iter := 0
					// Strided shard of the global shuffle
					// (DistributedSampler semantics).
					for base := rank; base < n; base += world * cfg.BatchSize {
						ioStart := p.Now()
						var wg sim.WaitGroup
						for b := 0; b < cfg.BatchSize; b++ {
							k := base + b*world
							if k >= n {
								break
							}
							path := cfg.Data.TrainPath(perm.Index(k))
							if rank == 0 && len(order) < cfg.RecordOrder {
								order = append(order, path)
							}
							wg.Add(1)
							jobs.Put(loadJob{path: path, wg: &wg})
						}
						wg.Wait(p)
						localIO += p.Now().Sub(ioStart)
						// Forward + backward + allreduce.
						p.Sleep(iterTime)
						localCompute += iterTime
						iter++
						if rank == 0 && cfg.AccuracyEveryIters > 0 && iter%cfg.AccuracyEveryIters == 0 {
							seen := float64(e*n) + float64(iter*cfg.BatchSize*world)
							t1, t5 := cfg.Model.Accuracy(seen)
							itersPerEpoch := (n + world*cfg.BatchSize - 1) / (world * cfg.BatchSize)
							res.Accuracy = append(res.Accuracy, AccPoint{
								Iteration: e*itersPerEpoch + iter,
								Top1:      t1, Top5: t5,
							})
						}
					}
					epochBarrier.Wait(p)
					if rank == 0 {
						now := p.Now()
						res.EpochTimes = append(res.EpochTimes, now.Sub(epochStart))
						epochStart = now
						if cfg.RecordOrder > 0 {
							res.OrderTrace = append(res.OrderTrace, order)
						}
					}
				}
				if rank == 0 {
					res.IOTime = localIO
					res.ComputeTime = localCompute
					runEnd = p.Now()
				}
			})
		}
	}
	// RunAll drains everything, including background data-mover copies
	// that outlive the job's last iteration; training time is the last
	// epoch barrier, as a real job's walltime would be.
	if err := eng.RunAll(); err != nil {
		return nil, err
	}
	res.TrainTime = runEnd.Sub(runStart)
	return res, nil
}
