// Package train simulates distributed data-parallel deep-learning
// training (§II-A/B): per-epoch globally-shuffled sample streams consumed
// in batches by one rank per training process, compute overlapped with
// prefetching (PyTorch-DataLoader style), ring-allreduce gradient
// synchronisation after each iteration, and a samples-seen accuracy model
// for the Fig. 14 study.
//
// The file I/O of every rank flows through a vfs.FS, so the identical
// training loop runs against GPFS, XFS-on-NVMe or HVAC — the paper's
// portability property, and the property that makes the comparisons fair.
package train

import (
	"math"
	"time"

	"hvac/internal/dataset"
)

// Model describes one of the four evaluated applications (§IV-A2). The
// throughput figures are per V100 GPU with the batch sizes the paper uses,
// reconstructed from the MLPerf-HPC and vendor model zoos; the shapes of
// the reproduction depend on their ratios to the I/O rates, not on exact
// values.
type Model struct {
	// Name identifies the model in reports.
	Name string
	// ParamsMillion is the trainable parameter count, in millions
	// (gradient bytes = 4 * params for fp32 allreduce).
	ParamsMillion float64
	// SamplesPerSecPerGPU is sustained training throughput per V100.
	SamplesPerSecPerGPU float64
	// Data is the dataset the paper trains this model on.
	Data dataset.Spec
	// Top1Max and Top5Max are the asymptotic accuracies of the
	// samples-seen accuracy model.
	Top1Max, Top5Max float64
	// TauEpochs controls convergence speed: accuracy approaches its
	// asymptote as 1-exp(-epochsSeen/TauEpochs).
	TauEpochs float64
}

// ResNet50 is the 228-layer, 25.6M-parameter network of §IV-A2, trained
// on ImageNet21K with PyTorch + Horovod.
func ResNet50() Model {
	return Model{
		Name:                "resnet50",
		ParamsMillion:       25.6,
		SamplesPerSecPerGPU: 360,
		Data:                dataset.ImageNet21K(),
		Top1Max:             0.47, Top5Max: 0.77, TauEpochs: 18,
	}
}

// TResNetM is the TResNet_M ImageNet21K model.
func TResNetM() Model {
	return Model{
		Name:                "tresnet_m",
		ParamsMillion:       31.1,
		SamplesPerSecPerGPU: 290,
		Data:                dataset.ImageNet21K(),
		Top1Max:             0.49, Top5Max: 0.79, TauEpochs: 16,
	}
}

// CosmoFlow is the 3D-CNN cosmology model from MLPerf-HPC v0.5 (the paper
// cites its ~51K parameters), trained on cosmoUniverse.
func CosmoFlow() Model {
	return Model{
		Name:                "cosmoflow",
		ParamsMillion:       0.051,
		SamplesPerSecPerGPU: 110,
		Data:                dataset.CosmoUniverse(),
		Top1Max:             0.90, Top5Max: 0.99, TauEpochs: 12,
	}
}

// DeepCAM is the Gordon-Bell climate-segmentation model from MLPerf-HPC,
// training on 768x1152x16 samples.
func DeepCAM() Model {
	return Model{
		Name:                "deepcam",
		ParamsMillion:       56.0,
		SamplesPerSecPerGPU: 16,
		Data:                dataset.DeepCAMClimate(),
		Top1Max:             0.82, Top5Max: 0.97, TauEpochs: 10,
	}
}

// Models returns the four evaluated applications in paper order.
func Models() []Model {
	return []Model{ResNet50(), TResNetM(), CosmoFlow(), DeepCAM()}
}

// GradientBytes is the gradient payload exchanged per iteration (fp16
// compression, as Horovod deployments on Summit use).
func (m Model) GradientBytes() int64 { return int64(m.ParamsMillion * 1e6 * 2) }

// ComputeTime is the busy-GPU time for a batch on gpus GPUs.
func (m Model) ComputeTime(batch, gpus int) time.Duration {
	if gpus < 1 {
		gpus = 1
	}
	sec := float64(batch) / (m.SamplesPerSecPerGPU * float64(gpus))
	return time.Duration(sec * 1e9)
}

// AllreduceTime models the gradient allreduce across world ranks over the
// EDR fabric: 2(W-1)/W passes of the payload at the effective bandwidth
// of NCCL's hierarchical (tree/ring hybrid) algorithm, plus a logarithmic
// latency term.
func (m Model) AllreduceTime(world int) time.Duration {
	if world <= 1 {
		return 0
	}
	const effBW = 20e9 // effective allreduce bandwidth on dual-rail EDR, B/s
	const stepLat = 12 * time.Microsecond
	w := float64(world)
	bytes := float64(m.GradientBytes())
	transfer := 2 * (w - 1) / w * bytes / effBW
	steps := 0
	for p := 1; p < world; p *= 2 {
		steps++
	}
	return time.Duration(transfer*1e9) + time.Duration(2*steps)*stepLat
}

// Accuracy returns the (top1, top5) accuracy after seeing samplesSeen
// training samples — a saturating curve that depends only on samples seen
// and the model, never on which file system delivered the bytes. This is
// the formal content of the paper's Fig. 14 claim: HVAC preserves the
// shuffle, so at equal iteration counts accuracies are equal.
func (m Model) Accuracy(samplesSeen float64) (top1, top5 float64) {
	epochs := samplesSeen / float64(m.Data.TrainFiles)
	f := 1 - math.Exp(-epochs/m.TauEpochs)
	return m.Top1Max * f, m.Top5Max * f
}
