package train

import (
	"testing"
	"time"

	"hvac/internal/dataset"
	"hvac/internal/sim"
	"hvac/internal/summit"
)

// tinySpec is a small dataset for fast tests.
func tinySpec(files int, size int64) dataset.Spec {
	return dataset.Spec{
		Name: "tiny", TrainFiles: files, MeanFileSize: size,
		PathPrefix: "/gpfs/tiny",
	}
}

func tinyConfig(files int) Config {
	return Config{
		Model:        ResNet50(),
		Data:         tinySpec(files, 64<<10),
		Nodes:        2,
		ProcsPerNode: 2,
		BatchSize:    4,
		Epochs:       2,
		Seed:         7,
	}
}

func TestRunOnGPFS(t *testing.T) {
	cfg := tinyConfig(64)
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
	res, err := Run(eng, cfg, cl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	if res.World != 4 {
		t.Fatalf("world = %d", res.World)
	}
	if res.FilesRead != 2*64 {
		t.Fatalf("files read = %d, want 128 (2 epochs x 64)", res.FilesRead)
	}
	if len(res.EpochTimes) != 2 {
		t.Fatalf("epoch times = %v", res.EpochTimes)
	}
	if res.TrainTime <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	var sum time.Duration
	for _, e := range res.EpochTimes {
		sum += e
	}
	if diff := res.TrainTime - sum; diff < 0 || diff > res.TrainTime/10 {
		t.Fatalf("epochs (%v) do not account for train time (%v)", sum, res.TrainTime)
	}
	if res.ReadErrors != 0 {
		t.Fatalf("read errors = %d", res.ReadErrors)
	}
}

func TestEveryFileReadOncePerEpoch(t *testing.T) {
	cfg := tinyConfig(100)
	cfg.Epochs = 1
	cfg.RecordOrder = 1 << 20
	cfg.Nodes = 1
	cfg.ProcsPerNode = 1 // rank 0 reads everything; order trace is complete
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, 1, cfg.Data.Namespace())
	res, err := Run(eng, cfg, cl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OrderTrace) != 1 {
		t.Fatalf("order traces = %d", len(res.OrderTrace))
	}
	seen := map[string]bool{}
	for _, p := range res.OrderTrace[0] {
		if seen[p] {
			t.Fatalf("file %s read twice in one epoch", p)
		}
		seen[p] = true
	}
	if len(seen) != 100 {
		t.Fatalf("%d distinct files read, want 100", len(seen))
	}
}

func TestShuffleDiffersAcrossEpochs(t *testing.T) {
	cfg := tinyConfig(200)
	cfg.Nodes, cfg.ProcsPerNode = 1, 1
	cfg.Epochs = 2
	cfg.RecordOrder = 200
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, 1, cfg.Data.Namespace())
	res, err := Run(eng, cfg, cl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range res.OrderTrace[0] {
		if res.OrderTrace[0][i] == res.OrderTrace[1][i] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("epochs share %d/200 positions; shuffle not re-randomised", same)
	}
}

// The Fig. 14 invariant: the read order depends only on the seed, never on
// the file system — HVAC does not perturb SGD randomness.
func TestOrderIdenticalAcrossBackends(t *testing.T) {
	cfg := tinyConfig(128)
	cfg.RecordOrder = 64
	run := func(kind string) [][]string {
		eng := sim.NewEngine()
		cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
		var res *Result
		var err error
		switch kind {
		case "gpfs":
			res, err = Run(eng, cfg, cl.GPFSFS())
		case "xfs":
			res, err = Run(eng, cfg, cl.XFSFS())
		case "hvac":
			job := cl.StartHVAC(summit.HVACOptions{InstancesPerNode: 2})
			res, err = Run(eng, cfg, job.FS())
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.OrderTrace
	}
	g, x, h := run("gpfs"), run("xfs"), run("hvac")
	for e := range g {
		for i := range g[e] {
			if g[e][i] != x[e][i] || g[e][i] != h[e][i] {
				t.Fatalf("epoch %d position %d: order differs across backends", e, i)
			}
		}
	}
}

func TestAccuracyCurve(t *testing.T) {
	cfg := tinyConfig(256)
	cfg.AccuracyEveryIters = 4
	cfg.Epochs = 3
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
	res, err := Run(eng, cfg, cl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Accuracy) == 0 {
		t.Fatal("no accuracy points recorded")
	}
	prev := AccPoint{}
	for _, pt := range res.Accuracy {
		if pt.Top1 < prev.Top1 || pt.Top5 < prev.Top5 {
			t.Fatalf("accuracy regressed: %+v after %+v", pt, prev)
		}
		if pt.Top5 < pt.Top1 {
			t.Fatalf("top5 (%f) below top1 (%f)", pt.Top5, pt.Top1)
		}
		if pt.Iteration <= prev.Iteration {
			t.Fatalf("iterations not increasing: %+v", pt)
		}
		prev = pt
	}
}

func TestModelAccuracyProperties(t *testing.T) {
	for _, m := range Models() {
		t1a, t5a := m.Accuracy(float64(m.Data.TrainFiles))       // 1 epoch
		t1b, t5b := m.Accuracy(float64(m.Data.TrainFiles) * 100) // 100 epochs
		if !(t1b > t1a && t5b > t5a) {
			t.Fatalf("%s: accuracy not increasing", m.Name)
		}
		if t1b > m.Top1Max || t5b > m.Top5Max {
			t.Fatalf("%s: accuracy exceeds asymptote", m.Name)
		}
		if t1b < 0.99*m.Top1Max {
			t.Fatalf("%s: 100 epochs should approach the asymptote (%f vs %f)", m.Name, t1b, m.Top1Max)
		}
	}
}

func TestComputeAndAllreduceScaling(t *testing.T) {
	m := ResNet50()
	if m.ComputeTime(64, 3) >= m.ComputeTime(64, 1) {
		t.Fatal("more GPUs must be faster")
	}
	if m.ComputeTime(128, 3) <= m.ComputeTime(64, 3) {
		t.Fatal("bigger batch must take longer")
	}
	if m.AllreduceTime(1) != 0 {
		t.Fatal("single rank needs no allreduce")
	}
	if m.AllreduceTime(2048) <= m.AllreduceTime(2) {
		t.Fatal("allreduce must grow with world (latency term)")
	}
	// Allreduce transfer term saturates near 2x payload / ring bandwidth.
	if m.AllreduceTime(4096) > 10*m.AllreduceTime(4) {
		t.Fatal("allreduce grows implausibly")
	}
	if CosmoFlow().AllreduceTime(512) >= ResNet50().AllreduceTime(512) {
		t.Fatal("51K-parameter cosmoflow must allreduce faster than resnet50")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Model: ResNet50()}.withDefaults()
	if cfg.Data.Name != "imagenet21k" {
		t.Fatalf("default dataset = %s", cfg.Data.Name)
	}
	if cfg.ProcsPerNode != 2 || cfg.GPUsPerProc != 3 {
		t.Fatalf("defaults = %d procs, %d gpus", cfg.ProcsPerNode, cfg.GPUsPerProc)
	}
}

// The Fig. 12 claim: batch size barely moves training time (per-iteration
// compute scales with the batch, so epoch compute is constant; only
// per-iteration fixed costs change).
func TestBatchSizeNearlyNeutral(t *testing.T) {
	run := func(bs int) time.Duration {
		cfg := tinyConfig(512)
		// CosmoFlow's 51K parameters make the per-iteration allreduce
		// negligible, isolating the claim (with ResNet50's 100MB
		// gradients, tiny batches at tiny world sizes genuinely pay).
		cfg.Model = CosmoFlow()
		cfg.BatchSize = bs
		cfg.Epochs = 2
		eng := sim.NewEngine()
		cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
		res, err := Run(eng, cfg, cl.XFSFS())
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainTime
	}
	small, big := run(4), run(64)
	ratio := float64(small) / float64(big)
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("batch size moved training time by %2.fx (4: %v, 64: %v)", ratio, small, big)
	}
}

// Strong scaling on the XFS-on-NVMe upper bound: doubling nodes with a
// fixed dataset roughly halves epoch time (until fixed costs dominate).
func TestStrongScalingOnXFS(t *testing.T) {
	run := func(nodes int) time.Duration {
		cfg := tinyConfig(2048)
		cfg.Nodes = nodes
		cfg.Epochs = 1
		cfg.BatchSize = 8
		eng := sim.NewEngine()
		cl := summit.NewCluster(eng, nodes, cfg.Data.Namespace())
		res, err := Run(eng, cfg, cl.XFSFS())
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainTime
	}
	t2, t8 := run(2), run(8)
	speedup := float64(t2) / float64(t8)
	if speedup < 2.5 {
		t.Fatalf("4x nodes gave only %.2fx speedup (%v -> %v)", speedup, t2, t8)
	}
}

// I/O stall accounting: on a slow FS the recorded IOTime must dominate;
// on a fast one, compute must.
func TestStallAccounting(t *testing.T) {
	cfg := tinyConfig(512)
	cfg.Nodes = 8
	cfg.Epochs = 1
	gpfsEng := sim.NewEngine()
	gpfsCl := summit.NewCluster(gpfsEng, cfg.Nodes, cfg.Data.Namespace())
	gpfsCl.RegisterJob(4096) // heavy token pressure: slow metadata
	gpfsRes, err := Run(gpfsEng, cfg, gpfsCl.GPFSFS())
	if err != nil {
		t.Fatal(err)
	}
	xfsEng := sim.NewEngine()
	xfsCl := summit.NewCluster(xfsEng, cfg.Nodes, cfg.Data.Namespace())
	xfsRes, err := Run(xfsEng, cfg, xfsCl.XFSFS())
	if err != nil {
		t.Fatal(err)
	}
	if gpfsRes.IOTime <= xfsRes.IOTime {
		t.Fatalf("GPFS stall (%v) should exceed XFS stall (%v)", gpfsRes.IOTime, xfsRes.IOTime)
	}
	if xfsRes.ComputeTime <= xfsRes.IOTime {
		t.Fatalf("on XFS compute (%v) should dominate I/O (%v)", xfsRes.ComputeTime, xfsRes.IOTime)
	}
}

// Epoch 1 on HVAC is cold (reads GPFS through the movers); later epochs
// come from the distributed cache and are faster — the Fig. 11 effect.
func TestHVACWarmEpochsFaster(t *testing.T) {
	cfg := tinyConfig(256)
	cfg.Epochs = 4
	eng := sim.NewEngine()
	cl := summit.NewCluster(eng, cfg.Nodes, cfg.Data.Namespace())
	cl.RegisterJob(cfg.Nodes * cfg.ProcsPerNode)
	job := cl.StartHVAC(summit.HVACOptions{InstancesPerNode: 1})
	res, err := Run(eng, cfg, job.FS())
	if err != nil {
		t.Fatal(err)
	}
	cold := res.EpochTimes[0]
	for e, warm := range res.EpochTimes[1:] {
		if warm >= cold {
			t.Fatalf("warm epoch %d (%v) not faster than cold epoch (%v)", e+2, warm, cold)
		}
	}
	st := job.TotalStats()
	if st.Misses != 256 {
		t.Fatalf("misses = %d, want 256 (each file copied once)", st.Misses)
	}
}
